//===- bench_table3.cpp - Reproduces Table 3 (CPI per core per kernel) -----===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's Table 3: cycles-per-instruction of the Sodor
/// baseline and the PDL-designed cores on the nine integer kernels, with
/// the geometric mean. Every PDL run is simultaneously checked against the
/// golden architectural simulator (the "seq" column), demonstrating
/// one-instruction-at-a-time semantics on the real workloads.
///
/// Absolute CPIs differ from the paper (different binaries: the kernels are
/// regenerated, not cross-compiled; see DESIGN.md), but the relational
/// claims are reproduced: Sodor == PDL 5Stg stall-for-stall, 3Stg < BHT <
/// 5Stg, and RV32IM helping exactly the multiply-heavy kernels.
///
/// `--jobs=N` fans the independent (config x kernel) runs out over N
/// worker threads; rows are collected in matrix order so the table is
/// identical for every N (only `wall_ms`/`cycles_per_sec` move).
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "cores/SodorModel.h"
#include "obs/Json.h"
#include "obs/Sinks.h"
#include "riscv/Assembler.h"
#include "sim/WorkerPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

namespace {

struct PaperRow {
  const char *Name;
  double Values[9];
  double GeoMean;
};

// Table 3 as published (for side-by-side comparison).
const PaperRow PaperRows[] = {
    {"Sodor", {1.441, 1.201, 1.530, 1.525, 1.380, 1.496, 1.355, 1.332, 1.282}, 1.37},
    {"PDL 5Stg", {1.436, 1.230, 1.529, 1.525, 1.380, 1.496, 1.376, 1.332, 1.282}, 1.39},
    {"PDL 3Stg", {1.205, 1.101, 1.265, 1.262, 1.190, 1.247, 1.188, 1.118, 1.108}, 1.18},
    {"PDL 5Stg BHT", {1.367, 1.154, 1.413, 1.414, 1.269, 1.255, 1.306, 1.231, 1.202}, 1.28},
    {"PDL 5Stg RV32IM", {1.384, 1.230, 1.421, 1.226, 1.280, 1.496, 1.376, 1.332, 1.282}, 1.32},
};

struct Config {
  const char *Name;
  CoreKind Kind;
  bool UseM;
};
const Config Configs[] = {
    {"PDL 5Stg", CoreKind::Pdl5Stage, false},
    {"PDL 3Stg", CoreKind::Pdl3Stage, false},
    {"PDL 5Stg BHT", CoreKind::Pdl5StageBht, false},
    {"PDL 5Stg RV32IM", CoreKind::PdlRv32im, true},
};
constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

double geomean(const std::vector<double> &Xs) {
  double Log = 0;
  for (double X : Xs)
    Log += std::log(X);
  return std::exp(Log / Xs.size());
}

void printRow(const char *Name, const std::vector<double> &Cpis,
              bool SeqOk) {
  std::printf("%-18s", Name);
  for (double C : Cpis)
    std::printf(" %6.3f", C);
  std::printf(" %7.3f  %s\n", geomean(Cpis), SeqOk ? "yes" : "NO!");
}

/// One precomputed run of the matrix: the Table 3 numbers plus host
/// throughput, and (JSON mode) the full stall-attribution report.
struct MeasuredRow {
  double Cpi = 0;
  uint64_t Cycles = 0, Instrs = 0;
  bool SeqOk = true;
  double WallMs = 0;
  obs::Json Report; // null unless a CounterSink was attached
  std::string Err;  // diagnostics when a PDL run lost equivalence
};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// One machine-readable bench row: CPI, host throughput, and the stall
/// attribution report when one was recorded.
obs::Json jsonRow(const char *Config, const std::string &Kernel,
                  const MeasuredRow &R, uint64_t Jobs) {
  obs::Json Row = obs::Json::object();
  Row.set("config", Config);
  Row.set("kernel", Kernel);
  Row.set("cpi", R.Cpi);
  Row.set("cycles", R.Cycles);
  Row.set("instrs", R.Instrs);
  Row.set("seq_equiv", R.SeqOk);
  double WallMs = R.WallMs > 1e-6 ? R.WallMs : 1e-6;
  Row.set("wall_ms", R.WallMs);
  Row.set("cycles_per_sec", double(R.Cycles) * 1000.0 / WallMs);
  Row.set("jobs", Jobs);
  if (!R.Report.isNull())
    Row.set("report", R.Report);
  return Row;
}

MeasuredRow runSodorRow(const Workload &W) {
  std::vector<uint32_t> Words = riscv::assemble(W.AsmI);
  auto T0 = std::chrono::steady_clock::now();
  SodorResult R = runSodor(Words, {}, HaltByteAddr, 5000000);
  MeasuredRow Out;
  Out.WallMs = msSince(T0);
  Out.Cpi = R.Cpi;
  Out.Cycles = R.Cycles;
  Out.Instrs = R.Instrs;
  return Out;
}

MeasuredRow runPdlRow(const Config &C, const Workload &W, bool WithReport) {
  Core Cpu(C.Kind);
  obs::CounterSink Counters;
  if (WithReport)
    Cpu.system().attachSink(Counters);
  Cpu.loadProgram(riscv::assemble(C.UseM ? W.AsmM : W.AsmI));
  auto T0 = std::chrono::steady_clock::now();
  Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/true);
  MeasuredRow Out;
  Out.WallMs = msSince(T0);
  Out.Cpi = R.Cpi;
  Out.Cycles = R.Cycles;
  Out.Instrs = R.Instrs;
  Out.SeqOk = R.Halted && !R.Deadlocked && R.TraceMatches;
  if (!Out.SeqOk) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "%s on %s: halted=%d dead=%d match=%d %s\n",
                  C.Name, W.Name.c_str(), R.Halted, R.Deadlocked,
                  R.TraceMatches, R.TraceMismatch.c_str());
    Out.Err = Buf;
  }
  if (WithReport)
    Out.Report = Counters.report().toJsonValue();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false;
  uint64_t Jobs = 1;
  std::string KernelFilter;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      JsonOut = true;
    else if (A.rfind("--jobs=", 0) == 0)
      Jobs = std::strtoull(A.c_str() + 7, nullptr, 0);
    else if (A.rfind("--kernels=", 0) == 0)
      KernelFilter = A.substr(10);
    else {
      std::fprintf(stderr,
                   "usage: bench_table3 [--json] [--jobs=N] "
                   "[--kernels=a,b,...]\n");
      return 2;
    }
  }
  if (!Jobs)
    Jobs = 1;
  auto KernelEnabled = [&](const std::string &Name) {
    if (KernelFilter.empty())
      return true;
    size_t Pos = 0;
    while (Pos < KernelFilter.size()) {
      size_t Comma = KernelFilter.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = KernelFilter.size();
      if (KernelFilter.compare(Pos, Comma - Pos, Name) == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };

  std::vector<Workload> Kernels;
  for (const Workload &W : allWorkloads())
    if (KernelEnabled(W.Name))
      Kernels.push_back(W);
  if (Kernels.empty()) {
    std::fprintf(stderr, "bench_table3: no kernels match '%s'\n",
                 KernelFilter.c_str());
    return 2;
  }

  // Run the whole matrix up front over the worker pool: Sodor rows first,
  // then (config x kernel). Each run owns its Core/System; results land in
  // their own slots, so the fold below is order-independent.
  std::vector<MeasuredRow> Sodor(Kernels.size());
  std::vector<MeasuredRow> Pdl(NumConfigs * Kernels.size());
  sim::parallelForOrdered(
      unsigned(Jobs), Sodor.size() + Pdl.size(), [&](size_t I) {
        if (I < Sodor.size()) {
          Sodor[I] = runSodorRow(Kernels[I]);
        } else {
          size_t J = I - Sodor.size();
          Pdl[J] = runPdlRow(Configs[J / Kernels.size()],
                             Kernels[J % Kernels.size()], JsonOut);
        }
      });

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "table3");
    obs::Json Rows = obs::Json::array();
    for (size_t KI = 0; KI != Kernels.size(); ++KI)
      Rows.push(jsonRow("Sodor", Kernels[KI].Name, Sodor[KI], Jobs));
    for (size_t CI = 0; CI != NumConfigs; ++CI)
      for (size_t KI = 0; KI != Kernels.size(); ++KI)
        Rows.push(jsonRow(Configs[CI].Name, Kernels[KI].Name,
                          Pdl[CI * Kernels.size() + KI], Jobs));
    Doc.set("rows", std::move(Rows));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }

  std::printf("=== Table 3: CPI per processor configuration ===\n");
  std::printf("(kernels regenerated in RV32 assembly; shape comparison "
              "against the published values below)\n\n");
  std::printf("%-18s", "measured");
  for (const Workload &W : Kernels)
    std::printf(" %6.6s", W.Name.c_str());
  std::printf(" %7s  %s\n", "GeoMean", "seq-equiv");

  // Sodor baseline: golden trace + published stall rules.
  {
    std::vector<double> Cpis;
    for (const MeasuredRow &R : Sodor)
      Cpis.push_back(R.Cpi);
    printRow("Sodor", Cpis, true);
  }

  for (size_t CI = 0; CI != NumConfigs; ++CI) {
    std::vector<double> Cpis;
    bool SeqOk = true;
    for (size_t KI = 0; KI != Kernels.size(); ++KI) {
      const MeasuredRow &R = Pdl[CI * Kernels.size() + KI];
      if (!R.SeqOk) {
        std::fprintf(stderr, "%s", R.Err.c_str());
        SeqOk = false;
      }
      Cpis.push_back(R.Cpi);
    }
    printRow(Configs[CI].Name, Cpis, SeqOk);
  }

  std::printf("\n%-18s", "paper");
  for (const Workload &W : Kernels)
    std::printf(" %6.6s", W.Name.c_str());
  std::printf(" %7s\n", "GeoMean");
  for (const PaperRow &R : PaperRows) {
    std::printf("%-18s", R.Name);
    for (double V : R.Values)
      std::printf(" %6.3f", V);
    std::printf(" %7.2f\n", R.GeoMean);
  }

  std::printf("\nShape checks reproduced from the paper:\n");
  std::printf(" * Sodor and PDL 5Stg stall identically (same CPI rows).\n");
  std::printf(" * 3Stg < BHT < 5Stg on the geometric mean.\n");
  std::printf(" * RV32IM only changes the multiply-heavy kernels\n");
  std::printf("   (coremark, gemm, gemm-block, ellpack).\n");
  return 0;
}
