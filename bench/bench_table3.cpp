//===- bench_table3.cpp - Reproduces Table 3 (CPI per core per kernel) -----===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's Table 3: cycles-per-instruction of the Sodor
/// baseline and the PDL-designed cores on the nine integer kernels, with
/// the geometric mean. Every PDL run is simultaneously checked against the
/// golden architectural simulator (the "seq" column), demonstrating
/// one-instruction-at-a-time semantics on the real workloads.
///
/// Absolute CPIs differ from the paper (different binaries: the kernels are
/// regenerated, not cross-compiled; see DESIGN.md), but the relational
/// claims are reproduced: Sodor == PDL 5Stg stall-for-stall, 3Stg < BHT <
/// 5Stg, and RV32IM helping exactly the multiply-heavy kernels.
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "cores/SodorModel.h"
#include "obs/Sinks.h"
#include "riscv/Assembler.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

namespace {

struct PaperRow {
  const char *Name;
  double Values[9];
  double GeoMean;
};

// Table 3 as published (for side-by-side comparison).
const PaperRow PaperRows[] = {
    {"Sodor", {1.441, 1.201, 1.530, 1.525, 1.380, 1.496, 1.355, 1.332, 1.282}, 1.37},
    {"PDL 5Stg", {1.436, 1.230, 1.529, 1.525, 1.380, 1.496, 1.376, 1.332, 1.282}, 1.39},
    {"PDL 3Stg", {1.205, 1.101, 1.265, 1.262, 1.190, 1.247, 1.188, 1.118, 1.108}, 1.18},
    {"PDL 5Stg BHT", {1.367, 1.154, 1.413, 1.414, 1.269, 1.255, 1.306, 1.231, 1.202}, 1.28},
    {"PDL 5Stg RV32IM", {1.384, 1.230, 1.421, 1.226, 1.280, 1.496, 1.376, 1.332, 1.282}, 1.32},
};

double geomean(const std::vector<double> &Xs) {
  double Log = 0;
  for (double X : Xs)
    Log += std::log(X);
  return std::exp(Log / Xs.size());
}

void printRow(const char *Name, const std::vector<double> &Cpis,
              bool SeqOk) {
  std::printf("%-18s", Name);
  for (double C : Cpis)
    std::printf(" %6.3f", C);
  std::printf(" %7.3f  %s\n", geomean(Cpis), SeqOk ? "yes" : "NO!");
}

/// One machine-readable bench row: CPI plus the full per-stage stall
/// attribution report (when a CounterSink was attached to the run).
obs::Json jsonRow(const char *Config, const std::string &Kernel, double Cpi,
                  uint64_t Cycles, uint64_t Instrs, bool SeqOk,
                  const obs::CounterSink *Counters) {
  obs::Json Row = obs::Json::object();
  Row.set("config", Config);
  Row.set("kernel", Kernel);
  Row.set("cpi", Cpi);
  Row.set("cycles", Cycles);
  Row.set("instrs", Instrs);
  Row.set("seq_equiv", SeqOk);
  if (Counters)
    Row.set("report", Counters->report().toJsonValue());
  return Row;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false;
  std::string KernelFilter;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      JsonOut = true;
    else if (A.rfind("--kernels=", 0) == 0)
      KernelFilter = A.substr(10);
    else {
      std::fprintf(stderr,
                   "usage: bench_table3 [--json] [--kernels=a,b,...]\n");
      return 2;
    }
  }
  auto KernelEnabled = [&](const std::string &Name) {
    if (KernelFilter.empty())
      return true;
    size_t Pos = 0;
    while (Pos < KernelFilter.size()) {
      size_t Comma = KernelFilter.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = KernelFilter.size();
      if (KernelFilter.compare(Pos, Comma - Pos, Name) == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };

  std::vector<Workload> Kernels;
  for (const Workload &W : allWorkloads())
    if (KernelEnabled(W.Name))
      Kernels.push_back(W);
  if (Kernels.empty()) {
    std::fprintf(stderr, "bench_table3: no kernels match '%s'\n",
                 KernelFilter.c_str());
    return 2;
  }

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "table3");
    obs::Json Rows = obs::Json::array();

    for (const Workload &W : Kernels) {
      SodorResult R = runSodor(riscv::assemble(W.AsmI), {}, HaltByteAddr,
                               5000000);
      Rows.push(jsonRow("Sodor", W.Name, R.Cpi, R.Cycles, R.Instrs, true,
                        nullptr));
    }

    struct Config {
      const char *Name;
      CoreKind Kind;
      bool UseM;
    };
    const Config Configs[] = {
        {"PDL 5Stg", CoreKind::Pdl5Stage, false},
        {"PDL 3Stg", CoreKind::Pdl3Stage, false},
        {"PDL 5Stg BHT", CoreKind::Pdl5StageBht, false},
        {"PDL 5Stg RV32IM", CoreKind::PdlRv32im, true},
    };
    for (const Config &C : Configs) {
      for (const Workload &W : Kernels) {
        Core Cpu(C.Kind);
        obs::CounterSink Counters;
        Cpu.system().attachSink(Counters);
        Cpu.loadProgram(riscv::assemble(C.UseM ? W.AsmM : W.AsmI));
        Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/true);
        bool SeqOk = R.Halted && !R.Deadlocked && R.TraceMatches;
        Rows.push(jsonRow(C.Name, W.Name, R.Cpi, R.Cycles, R.Instrs, SeqOk,
                          &Counters));
      }
    }
    Doc.set("rows", std::move(Rows));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }

  std::printf("=== Table 3: CPI per processor configuration ===\n");
  std::printf("(kernels regenerated in RV32 assembly; shape comparison "
              "against the published values below)\n\n");
  std::printf("%-18s", "measured");
  for (const Workload &W : Kernels)
    std::printf(" %6.6s", W.Name.c_str());
  std::printf(" %7s  %s\n", "GeoMean", "seq-equiv");

  // Sodor baseline: golden trace + published stall rules.
  {
    std::vector<double> Cpis;
    for (const Workload &W : Kernels) {
      SodorResult R = runSodor(riscv::assemble(W.AsmI), {}, HaltByteAddr,
                               5000000);
      Cpis.push_back(R.Cpi);
    }
    printRow("Sodor", Cpis, true);
  }

  struct Config {
    const char *Name;
    CoreKind Kind;
    bool UseM;
  };
  const Config Configs[] = {
      {"PDL 5Stg", CoreKind::Pdl5Stage, false},
      {"PDL 3Stg", CoreKind::Pdl3Stage, false},
      {"PDL 5Stg BHT", CoreKind::Pdl5StageBht, false},
      {"PDL 5Stg RV32IM", CoreKind::PdlRv32im, true},
  };

  for (const Config &C : Configs) {
    std::vector<double> Cpis;
    bool SeqOk = true;
    for (const Workload &W : Kernels) {
      Core Cpu(C.Kind);
      Cpu.loadProgram(riscv::assemble(C.UseM ? W.AsmM : W.AsmI));
      Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/true);
      if (!R.Halted || R.Deadlocked || !R.TraceMatches) {
        std::fprintf(stderr, "%s on %s: halted=%d dead=%d match=%d %s\n",
                     C.Name, W.Name.c_str(), R.Halted, R.Deadlocked,
                     R.TraceMatches, R.TraceMismatch.c_str());
        SeqOk = false;
      }
      Cpis.push_back(R.Cpi);
    }
    printRow(C.Name, Cpis, SeqOk);
  }

  std::printf("\n%-18s", "paper");
  for (const Workload &W : Kernels)
    std::printf(" %6.6s", W.Name.c_str());
  std::printf(" %7s\n", "GeoMean");
  for (const PaperRow &R : PaperRows) {
    std::printf("%-18s", R.Name);
    for (double V : R.Values)
      std::printf(" %6.3f", V);
    std::printf(" %7.2f\n", R.GeoMean);
  }

  std::printf("\nShape checks reproduced from the paper:\n");
  std::printf(" * Sodor and PDL 5Stg stall identically (same CPI rows).\n");
  std::printf(" * 3Stg < BHT < 5Stg on the geometric mean.\n");
  std::printf(" * RV32IM only changes the multiply-heavy kernels\n");
  std::printf("   (coremark, gemm, gemm-block, ellpack).\n");
  return 0;
}
