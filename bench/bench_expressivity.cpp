//===- bench_expressivity.cpp - Section 6.2's design-delta claims ----------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quantifies Section 6.2: deriving each microarchitecture from the base
/// 5-stage design takes a handful of changed PDL lines ("about 20 lines"
/// in the paper), the mul/div pipes are ~32 lines, and the Figure 7 cache
/// is ~50 lines. Measured directly on the PDL sources in src/cores.
///
//===----------------------------------------------------------------------===//

#include "cores/CoreSources.h"

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace pdl;

namespace {

/// Non-empty, non-comment source lines (whitespace-normalized).
std::vector<std::string> codeLines(const std::string &Src) {
  std::vector<std::string> Out;
  std::istringstream In(Src);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t C = Line.find("//");
    if (C != std::string::npos)
      Line.resize(C);
    std::string Norm;
    for (char Ch : Line)
      if (!std::isspace(static_cast<unsigned char>(Ch)))
        Norm += Ch;
    if (!Norm.empty())
      Out.push_back(Norm);
  }
  return Out;
}

/// Lines in B not found in A plus lines in A not in B (multiset diff):
/// a simple proxy for the size of the design change.
unsigned diffLines(const std::string &A, const std::string &B) {
  std::multiset<std::string> SA, SB;
  for (const std::string &L : codeLines(A))
    SA.insert(L);
  for (const std::string &L : codeLines(B))
    SB.insert(L);
  unsigned Added = 0, Removed = 0;
  for (const std::string &L : SB)
    if (!SA.count(L))
      ++Added;
    else
      SA.erase(SA.find(L));
  Removed = SA.size();
  return Added > Removed ? Added : Removed;
}

/// Lines of the named pipe/def block (between "pipe <name>" and the
/// closing brace at column 0).
unsigned blockLines(const std::string &Src, const std::string &Header) {
  size_t Start = Src.find(Header);
  if (Start == std::string::npos)
    return 0;
  size_t End = Src.find("\n}", Start);
  if (End == std::string::npos)
    End = Src.size();
  return codeLines(Src.substr(Start, End - Start + 2)).size();
}

} // namespace

int main() {
  std::string Base = cores::rv32i5StageSource();
  std::string Prelude = cores::rvPrelude();
  unsigned PreludeLoc = codeLines(Prelude).size();

  std::printf("=== Section 6.2: expressivity and design deltas ===\n\n");
  std::printf("%-28s %8s %14s\n", "design", "PDL LoC", "delta vs 5Stg");
  auto Row = [&](const char *Name, const std::string &Src) {
    std::printf("%-28s %8zu %14u\n", Name, codeLines(Src).size() - PreludeLoc,
                diffLines(Base, Src));
  };
  std::printf("%-28s %8zu %14s\n", "shared RV32 decode prelude",
              (size_t)PreludeLoc, "-");
  Row("PDL 5Stg (base)", Base);
  Row("PDL 3Stg", cores::rv32i3StageSource());
  Row("PDL 5Stg BHT", cores::rv32i5StageBhtSource());
  Row("PDL RV32IM", cores::rv32imSource());

  std::string Im = cores::rv32imSource();
  std::printf("\nSub-designs inside the RV32IM program:\n");
  std::printf("  mulp (pipelined multiplier)   %3u lines (paper: mul+div "
              "= 32)\n",
              blockLines(Im, "pipe mulp"));
  std::printf("  divp (4-bit/stage divider)    %3u lines\n",
              blockLines(Im, "pipe divp"));

  std::string Cache = cores::cacheSource();
  std::printf("\nNon-processor design:\n");
  std::printf("  Figure 7 cache                %3zu lines (paper: ~50)\n",
              codeLines(Cache).size());

  std::printf("\nNote: the no-bypass and renaming variants require ZERO "
              "source changes —\nthey are elaboration-time lock choices "
              "(QueueLock / RenameLock on rf),\nwhich is the modularity "
              "argument of Section 2.3.\n");
  return 0;
}
