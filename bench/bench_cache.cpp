//===- bench_cache.cpp - Figure 7 cache characterization ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the Figure 7 design: the 2-stage direct-mapped write-allocate
/// write-through cache written in ~50 lines of PDL, with QueueLock-guarded
/// cache entries. Measures hit and miss service under three request
/// patterns, and checks every response against the sequential
/// interpretation of the same PDL program.
///
//===----------------------------------------------------------------------===//

#include "backend/System.h"
#include "cores/CoreSources.h"

#include <cstdio>
#include <vector>

using namespace pdl;
using namespace pdl::backend;

namespace {

struct Req {
  uint32_t Addr;
  uint32_t Data;
  bool IsWr;
};

struct Outcome {
  uint64_t Cycles = 0;
  std::vector<uint64_t> Responses;
};

Outcome drive(const CompiledProgram &CP, const std::vector<Req> &Reqs) {
  ElabConfig Cfg;
  Cfg.LockChoice["cache.entry"] = LockKind::Queue;
  Cfg.MemLatency["cache.main"] = 3; // DRAM-ish miss latency
  System Sys(CP, Cfg);
  // Pre-fill main memory so misses return recognizable data.
  for (uint32_t W = 0; W < 4096; ++W)
    Sys.memory("cache", "main").write(W, Bits(0xD000 + W, 32));

  size_t Next = 0;
  uint64_t Start = Sys.stats().Cycles;
  while (Sys.trace("cache").size() < Reqs.size() &&
         Sys.stats().Cycles - Start < 100000) {
    // Issue a request per cycle while the entry queue has room.
    if (Next < Reqs.size() && Sys.canAccept("cache")) {
      Sys.start("cache", {Bits(Reqs[Next].Addr, 32),
                          Bits(Reqs[Next].Data, 32),
                          Bits(Reqs[Next].IsWr ? 1 : 0, 1)});
      ++Next;
    }
    Sys.cycle();
  }
  Outcome O;
  O.Cycles = Sys.stats().Cycles - Start;
  for (const ThreadTrace &T : Sys.trace("cache"))
    O.Responses.push_back(T.Output ? T.Output->zext() : ~0ull);
  return O;
}

std::vector<uint64_t> oracle(const CompiledProgram &CP,
                             const std::vector<Req> &Reqs) {
  SeqInterpreter Seq(*CP.AST);
  for (uint32_t W = 0; W < 4096; ++W)
    Seq.memory("cache", "main").write(W, Bits(0xD000 + W, 32));
  std::vector<uint64_t> Out;
  for (const Req &R : Reqs) {
    auto Traces = Seq.run("cache",
                          {Bits(R.Addr, 32), Bits(R.Data, 32),
                           Bits(R.IsWr ? 1 : 0, 1)},
                          1);
    Out.push_back(Traces[0].Output ? Traces[0].Output->zext() : ~0ull);
  }
  return Out;
}

} // namespace

int main() {
  CompiledProgram CP = compile(cores::cacheSource(), "cache.pdl");
  if (!CP.ok()) {
    std::fprintf(stderr, "cache failed to compile:\n%s",
                 CP.Diags->render().c_str());
    return 1;
  }

  std::printf("=== Figure 7: 2-stage direct-mapped write-through cache "
              "===\n\n");

  struct Pattern {
    const char *Name;
    std::vector<Req> Reqs;
  };
  std::vector<Pattern> Patterns;

  // Warm hits: one miss then 31 hits on the same line.
  {
    std::vector<Req> R;
    for (int I = 0; I < 32; ++I)
      R.push_back({0x140, 0, false});
    Patterns.push_back({"repeat-line (1 miss + 31 hits)", R});
  }
  // Cold misses: 32 distinct lines.
  {
    std::vector<Req> R;
    for (int I = 0; I < 32; ++I)
      R.push_back({uint32_t(0x1000 + I * 4), 0, false});
    Patterns.push_back({"streaming (32 cold misses)", R});
  }
  // Write-then-read conflicts on one line (queue lock serializes).
  {
    std::vector<Req> R;
    for (int I = 0; I < 16; ++I) {
      R.push_back({0x80, uint32_t(0xAA00 + I), true});
      R.push_back({0x80, 0, false});
    }
    Patterns.push_back({"write/read same line x16", R});
  }

  for (const Pattern &P : Patterns) {
    Outcome O = drive(CP, P.Reqs);
    std::vector<uint64_t> Want = oracle(CP, P.Reqs);
    bool Match = O.Responses == Want;
    std::printf("%-36s %5zu reqs %7llu cycles  %.2f cyc/req  seq-equiv:%s\n",
                P.Name, P.Reqs.size(),
                static_cast<unsigned long long>(O.Cycles),
                double(O.Cycles) / double(P.Reqs.size()),
                Match ? "yes" : "NO!");
  }

  std::printf("\nHits stream close to one per cycle; misses pay the "
              "3-cycle main-memory\nlatency; same-line conflicts are "
              "serialized by the QueueLock on the cache\nentries, exactly "
              "as Section 6.2 describes.\n");
  return 0;
}
