//===- bench_cache.cpp - Figure 7 cache characterization ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the Figure 7 design: the 2-stage direct-mapped write-allocate
/// write-through cache written in ~50 lines of PDL, with QueueLock-guarded
/// cache entries. Measures hit and miss service under three request
/// patterns, and checks every response against the sequential
/// interpretation of the same PDL program.
///
//===----------------------------------------------------------------------===//

#include "backend/System.h"
#include "cores/CoreSources.h"
#include "obs/Sinks.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::backend;

namespace {

struct Req {
  uint32_t Addr;
  uint32_t Data;
  bool IsWr;
};

struct Outcome {
  uint64_t Cycles = 0;
  std::vector<uint64_t> Responses;
  /// PDL-cache-level accounting: every line fill reads `main`, so misses
  /// (read misses + write-allocate fills) equal the main model's reads and
  /// hits are the remaining requests.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  obs::StatsReport Report;
};

Outcome drive(const CompiledProgram &CP, const std::vector<Req> &Reqs) {
  ElabConfig Cfg;
  Cfg.LockChoice["cache.entry"] = LockKind::Queue;
  Cfg.MemLatency["cache.main"] = 3; // DRAM-ish miss latency
  obs::CounterSink Counters;
  Cfg.Sinks.push_back(&Counters);
  System Sys(CP, Cfg);
  // Pre-fill main memory so misses return recognizable data.
  for (uint32_t W = 0; W < 4096; ++W)
    Sys.memory("cache", "main").write(W, Bits(0xD000 + W, 32));

  size_t Next = 0;
  uint64_t Start = Sys.stats().Cycles;
  while (Sys.trace("cache").size() < Reqs.size() &&
         Sys.stats().Cycles - Start < 100000) {
    // Issue a request per cycle while the entry queue has room.
    if (Next < Reqs.size() && Sys.canAccept("cache")) {
      Sys.start("cache", {Bits(Reqs[Next].Addr, 32),
                          Bits(Reqs[Next].Data, 32),
                          Bits(Reqs[Next].IsWr ? 1 : 0, 1)});
      ++Next;
    }
    Sys.cycle();
  }
  Outcome O;
  O.Cycles = Sys.stats().Cycles - Start;
  for (const ThreadTrace &T : Sys.trace("cache"))
    O.Responses.push_back(T.Output ? T.Output->zext() : ~0ull);
  const mem::MemModel *Main = Sys.memModel(Sys.memHandle("cache", "main"));
  O.Misses = Main ? Main->stats().Reads : 0;
  O.Hits = Reqs.size() > O.Misses ? Reqs.size() - O.Misses : 0;
  Sys.finishTrace();
  O.Report = Counters.report();
  return O;
}

std::vector<uint64_t> oracle(const CompiledProgram &CP,
                             const std::vector<Req> &Reqs) {
  SeqInterpreter Seq(*CP.AST);
  for (uint32_t W = 0; W < 4096; ++W)
    Seq.memory("cache", "main").write(W, Bits(0xD000 + W, 32));
  std::vector<uint64_t> Out;
  for (const Req &R : Reqs) {
    auto Traces = Seq.run("cache",
                          {Bits(R.Addr, 32), Bits(R.Data, 32),
                           Bits(R.IsWr ? 1 : 0, 1)},
                          1);
    Out.push_back(Traces[0].Output ? Traces[0].Output->zext() : ~0ull);
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0) {
      JsonOut = true;
    } else {
      std::fprintf(stderr, "usage: bench_cache [--json]\n");
      return 2;
    }
  }

  CompiledProgram CP = compile(cores::cacheSource(), "cache.pdl");
  if (!CP.ok()) {
    std::fprintf(stderr, "cache failed to compile:\n%s",
                 CP.Diags->render().c_str());
    return 1;
  }

  struct Pattern {
    const char *Name;
    const char *Short; // JSON kernel id
    std::vector<Req> Reqs;
  };
  std::vector<Pattern> Patterns;

  // Warm hits: one miss then 31 hits on the same line.
  {
    std::vector<Req> R;
    for (int I = 0; I < 32; ++I)
      R.push_back({0x140, 0, false});
    Patterns.push_back({"repeat-line (1 miss + 31 hits)", "repeat-line", R});
  }
  // Cold misses: 32 distinct lines.
  {
    std::vector<Req> R;
    for (int I = 0; I < 32; ++I)
      R.push_back({uint32_t(0x1000 + I * 4), 0, false});
    Patterns.push_back({"streaming (32 cold misses)", "streaming", R});
  }
  // Write-then-read conflicts on one line (queue lock serializes).
  {
    std::vector<Req> R;
    for (int I = 0; I < 16; ++I) {
      R.push_back({0x80, uint32_t(0xAA00 + I), true});
      R.push_back({0x80, 0, false});
    }
    Patterns.push_back({"write/read same line x16", "write-read", R});
  }

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "cache");
    obs::Json Rows = obs::Json::array();
    for (const Pattern &P : Patterns) {
      Outcome O = drive(CP, P.Reqs);
      std::vector<uint64_t> Want = oracle(CP, P.Reqs);
      obs::Json Row = obs::Json::object();
      Row.set("config", "fig7-cache");
      Row.set("kernel", P.Short);
      Row.set("cpi", double(O.Cycles) / double(P.Reqs.size()));
      Row.set("cycles", O.Cycles);
      Row.set("instrs", uint64_t(P.Reqs.size()));
      Row.set("seq_equiv", O.Responses == Want);
      Row.set("hits", O.Hits);
      Row.set("misses", O.Misses);
      Row.set("report", O.Report.toJsonValue());
      Rows.push(std::move(Row));
    }
    Doc.set("rows", std::move(Rows));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }

  std::printf("=== Figure 7: 2-stage direct-mapped write-through cache "
              "===\n\n");

  for (const Pattern &P : Patterns) {
    Outcome O = drive(CP, P.Reqs);
    std::vector<uint64_t> Want = oracle(CP, P.Reqs);
    bool Match = O.Responses == Want;
    std::printf("%-36s %5zu reqs %7llu cycles  %.2f cyc/req  "
                "%2llu hits %2llu misses  seq-equiv:%s\n",
                P.Name, P.Reqs.size(),
                static_cast<unsigned long long>(O.Cycles),
                double(O.Cycles) / double(P.Reqs.size()),
                static_cast<unsigned long long>(O.Hits),
                static_cast<unsigned long long>(O.Misses),
                Match ? "yes" : "NO!");
  }

  std::printf("\nHits stream close to one per cycle; misses pay the "
              "3-cycle main-memory\nlatency; same-line conflicts are "
              "serialized by the QueueLock on the cache\nentries, exactly "
              "as Section 6.2 describes.\n");
  return 0;
}
