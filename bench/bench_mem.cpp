//===- bench_mem.cpp - Table 3 CPI under memory-hierarchy misses -----------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the Table 3 CPI comparison under three memory hierarchies:
/// the paper's always-hit assumption (Section 6), a realistic 4KiB split
/// L1, and a deliberately tiny 256B L1 that thrashes — both cache configs
/// over one shared single-ported backing bus. Every PDL run keeps the
/// golden-simulator sequential-equivalence check enabled, demonstrating
/// that variable-latency responses do not perturb one-instruction-at-a-time
/// semantics.
///
/// Shape claims asserted (exit 1 on violation):
///  * Sodor and PDL 5Stg produce the same CPI under always-hit (to the
///    three decimals Table 3 prints);
///  * 3Stg < BHT < 5Stg on the geometric mean under every hierarchy;
///  * per core, geomean CPI is monotone: always-hit <= l1-4k <= l1-tiny;
///  * every run is sequentially equivalent and its stall-attribution
///    matrix stays exact (fires + stalls == cycles per stage).
///
/// `--jobs=N` fans the (profile x core x kernel) runs out over N worker
/// threads; the fold that prints rows and evaluates the shape checks runs
/// serially in matrix order, so output and exit status are jobs-invariant.
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "cores/SodorModel.h"
#include "mem/MemModel.h"
#include "obs/Json.h"
#include "obs/Sinks.h"
#include "riscv/Assembler.h"
#include "sim/WorkerPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

namespace {

double geomean(const std::vector<double> &Xs) {
  double Log = 0;
  for (double X : Xs)
    Log += std::log(X);
  return std::exp(Log / Xs.size());
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// The Sodor-side replica of a CoreMemProfile: the same split caches over
/// the same shared bus, driven by the golden commit trace.
struct SodorMem {
  std::unique_ptr<mem::FixedLatency> Bus;
  std::unique_ptr<mem::SetAssocCache> I, D;
  SodorMemModels M;

  explicit SodorMem(const CoreMemProfile &P) {
    if (!P.Imem)
      return; // always-hit: no models
    Bus = std::make_unique<mem::FixedLatency>(P.Imem->ShareLatency,
                                              /*SinglePorted=*/true);
    I = std::make_unique<mem::SetAssocCache>(P.Imem->Cache, Bus.get());
    D = std::make_unique<mem::SetAssocCache>(P.Dmem->Cache, Bus.get());
    M.IFetch = I.get();
    M.Data = D.get();
  }
};

struct RowResult {
  double Cpi = 0;
  uint64_t Cycles = 0, Instrs = 0;
  uint64_t Hits = 0, Misses = 0;
  bool SeqOk = true;
  bool AttribOk = true;
  double WallMs = 0;
  obs::Json Report; // null for Sodor rows (no attribution matrix)
};

obs::Json jsonRow(const std::string &Config, const std::string &Kernel,
                  const RowResult &R, uint64_t Jobs) {
  obs::Json Row = obs::Json::object();
  Row.set("config", Config);
  Row.set("kernel", Kernel);
  Row.set("cpi", R.Cpi);
  Row.set("cycles", R.Cycles);
  Row.set("instrs", R.Instrs);
  Row.set("seq_equiv", R.SeqOk);
  Row.set("hits", R.Hits);
  Row.set("misses", R.Misses);
  double WallMs = R.WallMs > 1e-6 ? R.WallMs : 1e-6;
  Row.set("wall_ms", R.WallMs);
  Row.set("cycles_per_sec", double(R.Cycles) * 1000.0 / WallMs);
  Row.set("jobs", Jobs);
  if (!R.Report.isNull())
    Row.set("report", R.Report);
  return Row;
}

// Display names come from cores::coreName — one spelling repo-wide.
const CoreKind CoreRows[] = {CoreKind::Pdl5Stage, CoreKind::Pdl3Stage,
                             CoreKind::Pdl5StageBht};

RowResult runPdl(CoreKind Kind, const CoreMemProfile &Profile,
                 const Workload &W) {
  obs::CounterSink Counters;
  Core Cpu(Kind, PredictorKind::Bht2Bit, Profile);
  Cpu.system().attachSink(Counters);
  Cpu.loadProgram(riscv::assemble(W.AsmI));
  auto T0 = std::chrono::steady_clock::now();
  Core::RunResult R = Cpu.run(20000000, /*CheckGolden=*/true);
  RowResult Out;
  Out.WallMs = msSince(T0);
  Out.Cpi = R.Cpi;
  Out.Cycles = R.Cycles;
  Out.Instrs = R.Instrs;
  Out.SeqOk = R.Halted && !R.Deadlocked && R.TraceMatches;
  for (backend::MemHandle H : {Cpu.imem(), Cpu.dmem()}) {
    if (const mem::MemModel *M = Cpu.system().memModel(H)) {
      Out.Hits += M->stats().hits();
      Out.Misses += M->stats().misses();
    }
  }
  Cpu.system().finishTrace();
  Out.AttribOk = Counters.report().attributionExact();
  Out.Report = Counters.report().toJsonValue();
  return Out;
}

RowResult runSodorRow(const CoreMemProfile &Profile, const Workload &W) {
  SodorMem Mem(Profile);
  std::vector<uint32_t> Words = riscv::assemble(W.AsmI);
  auto T0 = std::chrono::steady_clock::now();
  SodorResult R = runSodor(Words, {}, HaltByteAddr, 5000000,
                           /*Bypassed=*/true, Mem.M.IFetch ? &Mem.M : nullptr);
  RowResult Out;
  Out.WallMs = msSince(T0);
  Out.Cpi = R.Cpi;
  Out.Cycles = R.Cycles;
  Out.Instrs = R.Instrs;
  for (mem::SetAssocCache *C : {Mem.I.get(), Mem.D.get()}) {
    if (C) {
      Out.Hits += C->stats().hits();
      Out.Misses += C->stats().misses();
    }
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false;
  uint64_t Jobs = 1;
  std::string KernelFilter;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      JsonOut = true;
    else if (A.rfind("--jobs=", 0) == 0)
      Jobs = std::strtoull(A.c_str() + 7, nullptr, 0);
    else if (A.rfind("--kernels=", 0) == 0)
      KernelFilter = A.substr(10);
    else {
      std::fprintf(stderr,
                   "usage: bench_mem [--json] [--jobs=N] [--kernels=a,b,...]\n");
      return 2;
    }
  }
  if (!Jobs)
    Jobs = 1;
  auto KernelEnabled = [&](const std::string &Name) {
    if (KernelFilter.empty())
      return true;
    size_t Pos = 0;
    while (Pos < KernelFilter.size()) {
      size_t Comma = KernelFilter.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = KernelFilter.size();
      if (KernelFilter.compare(Pos, Comma - Pos, Name) == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };

  std::vector<Workload> Kernels;
  for (const Workload &W : allWorkloads())
    if (KernelEnabled(W.Name))
      Kernels.push_back(W);
  if (Kernels.empty()) {
    std::fprintf(stderr, "bench_mem: no kernels match '%s'\n",
                 KernelFilter.c_str());
    return 2;
  }

  // The canonical profile list, round-tripped through the stable-name API
  // (so bench rows and service requests agree on spellings by construction).
  std::vector<CoreMemProfile> Profiles;
  for (const std::string &Name : memProfileNames())
    Profiles.push_back(*parseMemProfile(Name));

  // Precompute every run over the worker pool. Index layout: for each
  // profile, 3 core rows x kernels, then one Sodor row per kernel.
  const size_t K = Kernels.size();
  const size_t PerProfile = 4 * K; // 3 PDL cores + Sodor
  std::vector<RowResult> Rows(3 * PerProfile);
  sim::parallelForOrdered(unsigned(Jobs), Rows.size(), [&](size_t I) {
    const size_t PI = I / PerProfile;
    const size_t J = I % PerProfile;
    const size_t CI = J / K, KI = J % K;
    Rows[I] = CI < 3 ? runPdl(CoreRows[CI], Profiles[PI], Kernels[KI])
                     : runSodorRow(Profiles[PI], Kernels[KI]);
  });
  auto RowAt = [&](size_t PI, size_t CI, size_t KI) -> const RowResult & {
    return Rows[PI * PerProfile + CI * K + KI];
  };

  bool Ok = true;
  auto Check = [&](bool Cond, const char *Msg) {
    if (!Cond) {
      std::fprintf(stderr, "bench_mem: SHAPE VIOLATION: %s\n", Msg);
      Ok = false;
    }
  };

  obs::Json Doc = obs::Json::object();
  Doc.set("bench", "mem");
  obs::Json JsonRows = obs::Json::array();

  // geomean CPI per (profile, core row); Sodor is row index 3.
  std::vector<std::vector<double>> Geo(3, std::vector<double>(4, 0));

  for (unsigned PI = 0; PI != 3; ++PI) {
    const CoreMemProfile &Profile = Profiles[PI];
    if (!JsonOut)
      std::printf("=== CPI under '%s' ===\n%-14s %8s %10s %10s %10s  %s\n",
                  Profile.Name.c_str(), "core", "geomean", "cycles", "hits",
                  "misses", "seq-equiv");

    std::vector<double> SodorCpis, FiveStgCpis;
    for (unsigned CI = 0; CI != 3; ++CI) {
      const char *Name = coreName(CoreRows[CI]);
      std::vector<double> Cpis;
      uint64_t Cycles = 0, Hits = 0, Misses = 0;
      bool SeqOk = true;
      for (size_t KI = 0; KI != K; ++KI) {
        const RowResult &R = RowAt(PI, CI, KI);
        Check(R.SeqOk, "a PDL run lost sequential equivalence");
        Check(R.AttribOk, "stall-attribution matrix is not exact");
        SeqOk &= R.SeqOk;
        Cpis.push_back(R.Cpi);
        Cycles += R.Cycles;
        Hits += R.Hits;
        Misses += R.Misses;
        if (CI == 0)
          FiveStgCpis.push_back(R.Cpi);
        if (JsonOut)
          JsonRows.push(jsonRow(std::string(Name) + " / " + Profile.Name,
                                Kernels[KI].Name, R, Jobs));
      }
      Geo[PI][CI] = geomean(Cpis);
      if (!JsonOut)
        std::printf("%-14s %8.3f %10llu %10llu %10llu  %s\n", Name,
                    Geo[PI][CI], (unsigned long long)Cycles,
                    (unsigned long long)Hits, (unsigned long long)Misses,
                    SeqOk ? "yes" : "NO!");
      if (PI != 0)
        Check(Misses > 0, "a cache profile recorded no misses");
    }

    // Sodor: analytic timing over the golden trace, same cache geometry.
    {
      uint64_t Cycles = 0, Hits = 0, Misses = 0;
      for (size_t KI = 0; KI != K; ++KI) {
        const RowResult &R = RowAt(PI, 3, KI);
        SodorCpis.push_back(R.Cpi);
        Cycles += R.Cycles;
        Hits += R.Hits;
        Misses += R.Misses;
        if (JsonOut)
          JsonRows.push(jsonRow(std::string("Sodor / ") + Profile.Name,
                                Kernels[KI].Name, R, Jobs));
      }
      Geo[PI][3] = geomean(SodorCpis);
      if (!JsonOut)
        std::printf("%-14s %8.3f %10llu %10llu %10llu  %s\n", "Sodor",
                    Geo[PI][3], (unsigned long long)Cycles,
                    (unsigned long long)Hits, (unsigned long long)Misses,
                    "n/a");
    }

    // Sodor == PDL 5Stg stall-for-stall only under always-hit (identical
    // to the three decimals Table 3 prints; the analytic model counts the
    // pipeline fill one cycle differently). With misses the pipelined core
    // also pollutes the caches on wrong-path fetches, which the
    // trace-driven model cannot see, so equality is only asserted here.
    if (PI == 0)
      for (size_t I = 0; I != Kernels.size(); ++I)
        Check(std::fabs(SodorCpis[I] - FiveStgCpis[I]) < 0.005,
              "Sodor != PDL 5Stg under always-hit");

    // 3Stg < BHT < 5Stg must survive the miss latencies.
    Check(Geo[PI][1] < Geo[PI][2], "3Stg geomean not below BHT");
    Check(Geo[PI][2] < Geo[PI][0], "BHT geomean not below 5Stg");
    if (!JsonOut)
      std::printf("\n");
  }

  // Miss latencies only ever cost cycles: always-hit <= l1-4k <= l1-tiny.
  for (unsigned CI = 0; CI != 4; ++CI) {
    Check(Geo[0][CI] <= Geo[1][CI] + 1e-9,
          "4KiB L1 geomean below always-hit");
    Check(Geo[1][CI] <= Geo[2][CI] + 1e-9,
          "tiny L1 geomean below 4KiB L1");
  }

  if (JsonOut) {
    Doc.set("rows", std::move(JsonRows));
    std::printf("%s\n", Doc.dump(2).c_str());
  } else if (Ok) {
    std::printf("Shape checks held under every hierarchy:\n"
                " * Sodor == PDL 5Stg (always-hit), 3Stg < BHT < 5Stg,\n"
                " * geomean CPI monotone in miss cost per core.\n");
  }
  return Ok ? 0 : 1;
}
