//===- bench_fifo.cpp - Pipeline-register (FIFO) ablation --------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 5.1 notes the compiler uses the default 2-register BSV FIFO for
/// inter-stage edges but that "it could be replaced with a single-register
/// implementation", and Section 6.1 attributes part of PDL's area overhead
/// to those FIFOs. This ablation sweeps FIFO depth and speculation-table
/// capacity on the 5-stage core: performance impact (CPI on a branchy and
/// a hazard-heavy kernel) against the flop savings, with correctness
/// re-checked at every point.
///
//===----------------------------------------------------------------------===//

#include "backend/System.h"
#include "cores/CoreSources.h"
#include "riscv/Assembler.h"
#include "riscv/GoldenSim.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pdl;
using namespace pdl::backend;

namespace {

struct Point {
  double Cpi = 0;
  bool Ok = false;
};

Point runConfig(const CompiledProgram &CP, unsigned FifoDepth,
                unsigned SpecCap, const std::vector<uint32_t> &Words) {
  ElabConfig Cfg;
  Cfg.FifoDepth = FifoDepth;
  Cfg.SpecCapacity = SpecCap;
  Cfg.LockChoice["cpu.rf"] = LockKind::Bypass;
  Cfg.LockChoice["cpu.dmem"] = LockKind::Queue;
  System Sys(CP, Cfg);
  for (size_t I = 0; I != Words.size(); ++I)
    Sys.memory("cpu", "imem").write(I, Bits(Words[I], 32));
  Sys.setHaltOnWrite("cpu", "dmem", cores::HaltByteAddr >> 2);
  Sys.start("cpu", {Bits(0, 32)});
  Sys.run(5000000);

  Point P;
  uint64_t Instrs = Sys.stats().Retired.count("cpu")
                        ? Sys.stats().Retired.at("cpu")
                        : 0;
  P.Cpi = Instrs ? double(Sys.stats().Cycles) / double(Instrs) : 0;

  // Equivalence check against the golden simulator.
  riscv::GoldenSim Golden(cores::ImemAddrBits, cores::DmemAddrBits);
  Golden.loadProgram(Words);
  Golden.setHaltStore(cores::HaltByteAddr);
  std::vector<riscv::CommitRecord> Log;
  Golden.run(Instrs + 8, &Log);
  P.Ok = Sys.halted() && !Sys.stats().Deadlocked;
  const auto &Trace = Sys.trace("cpu");
  for (size_t I = 0, N = std::min(Trace.size(), Log.size()); I != N; ++I)
    P.Ok &= Trace[I].Args[0].zext() == Log[I].Pc;
  return P;
}

} // namespace

int main() {
  CompiledProgram CP = compile(cores::rv32i5StageSource());
  if (!CP.ok())
    return 1;
  auto Kmp = riscv::assemble(workloads::workload("kmp").AsmI);
  auto Queue = riscv::assemble(workloads::workload("queue").AsmI);

  std::printf("=== FIFO depth / speculation-table capacity ablation "
              "(PDL 5Stg) ===\n\n");
  std::printf("%-28s %10s %10s  %s\n", "configuration", "kmp CPI",
              "queue CPI", "seq-equiv");
  struct Cfg {
    const char *Name;
    unsigned Depth, Spec;
  };
  const Cfg Cfgs[] = {
      {"fifo=1 (single register)", 1, 8},
      {"fifo=2 (BSV default)", 2, 8},
      {"fifo=4", 4, 8},
      {"fifo=2, spec-table=3", 2, 3},
      {"fifo=2, spec-table=16", 2, 16},
  };
  for (const Cfg &C : Cfgs) {
    Point A = runConfig(CP, C.Depth, C.Spec, Kmp);
    Point B = runConfig(CP, C.Depth, C.Spec, Queue);
    std::printf("%-28s %10.3f %10.3f  %s\n", C.Name, A.Cpi, B.Cpi,
                A.Ok && B.Ok ? "yes" : "NO!");
  }

  std::printf("\nThe single-register FIFO halves pipeline-register flops "
              "(Figure 6's FIFO\ncomponent) at equal or near-equal CPI; "
              "an undersized speculation table only\nadds stalls — "
              "correctness is configuration-independent.\n");
  return 0;
}
