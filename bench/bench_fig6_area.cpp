//===- bench_fig6_area.cpp - Reproduces Figure 6 (design area) -------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 6: cell area of the 5-stage processors with and
/// without bypassing, from the structural area model over the *actual
/// elaborated circuits* (see src/area). Also prints the paper's
/// CACTI-based upper-bound argument: with even tiny 4KB L1 caches, the PDL
/// core's overhead is bounded by ~5% of the total.
///
//===----------------------------------------------------------------------===//

#include "area/AreaModel.h"
#include "cores/Core.h"
#include "cores/CoreSources.h"

#include <cstdio>

using namespace pdl;
using namespace pdl::area;
using backend::LockKind;

int main() {
  CompiledProgram P5 = compile(cores::rv32i5StageSource());
  if (!P5.ok()) {
    std::fprintf(stderr, "5-stage core failed to compile\n");
    return 1;
  }
  std::map<std::string, LockKind> Byp = {{"cpu.rf", LockKind::Bypass},
                                         {"cpu.dmem", LockKind::Queue}};
  std::map<std::string, LockKind> NoByp = {{"cpu.rf", LockKind::Queue},
                                           {"cpu.dmem", LockKind::Queue}};

  AreaBreakdown SodorNB = sodorArea(false);
  AreaBreakdown Sodor = sodorArea(true);
  AreaBreakdown PdlNB = estimatePdlArea(P5, NoByp);
  AreaBreakdown Pdl = estimatePdlArea(P5, Byp);

  std::printf("=== Figure 6: 5-stage processor design area (um^2) ===\n\n");
  std::printf("%-22s %10s %10s %10s   %s\n", "configuration", "flops",
              "comb", "total", "paper");
  auto Row = [](const char *Name, const AreaBreakdown &A, int Paper) {
    std::printf("%-22s %10.0f %10.0f %10.0f   %d\n", Name, A.FlopArea,
                A.CombArea, A.total(), Paper);
  };
  Row("Sodor - No Bypass", SodorNB, 14470);
  Row("Sodor", Sodor, 14624);
  Row("PDL 5 Stage - No Byp", PdlNB, 19018);
  Row("PDL 5 Stage", Pdl, 19581);

  std::printf("\nBypassing overhead:  Sodor +%.2f%% (paper +1.06%%),  "
              "PDL +%.2f%% (paper +2.96%%)\n",
              100 * (Sodor.total() - SodorNB.total()) / SodorNB.total(),
              100 * (Pdl.total() - PdlNB.total()) / PdlNB.total());
  std::printf("PDL core vs Sodor:   +%.1f%% (paper +33.9%%)\n",
              100 * (Pdl.total() - Sodor.total()) / Sodor.total());

  std::printf("\nPDL 5-stage component breakdown:\n");
  for (const auto &[Name, Area] : Pdl.ByComponent)
    std::printf("  %-24s %8.0f\n", Name.c_str(), Area);

  double L1 = cacheArea(4096, 2, 32);
  double Bound = (Pdl.total() - Sodor.total()) / (Sodor.total() + 2 * L1);
  std::printf("\nCACTI-style bound: 4KB 2-way L1 = %.0f um^2 each; with "
              "L1I+L1D the PDL\noverhead is %.1f%% of the total (paper: "
              "~5%% upper bound).\n",
              L1, 100 * Bound);

  // Extra (beyond the paper): the renaming register file's cost.
  std::map<std::string, LockKind> Ren = {{"cpu.rf", LockKind::Rename},
                                         {"cpu.dmem", LockKind::Queue}};
  std::printf("\nAblation: PDL 5 Stage with renaming register file: "
              "%.0f um^2 (+%.1f%% over bypass)\n",
              estimatePdlArea(P5, Ren).total(),
              100 * (estimatePdlArea(P5, Ren).total() - Pdl.total()) /
                  Pdl.total());
  return 0;
}
