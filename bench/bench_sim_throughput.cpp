//===- bench_sim_throughput.cpp - Host simulation throughput ---------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures how fast the cycle-accurate executor runs on the host:
/// simulated cycles per wall-clock second, per (core x kernel), plus one
/// whole-matrix row run through the batch worker pool. This is the repo's
/// perf canary — `BENCH_sim.json` at the repo root records the trajectory
/// (see docs/performance.md for how to read and update it), and
/// tools/check_bench_json.py validates the throughput fields.
///
/// Each per-row figure is the best of `--repeat=N` runs (default 3) to
/// shed scheduler noise; rows fan out over `--jobs=N` workers. The golden
/// sequential-equivalence check is off here — this bench times the
/// executor alone, not the oracle.
///
//===----------------------------------------------------------------------===//

#include "backend/Fuse.h"
#include "cores/Core.h"
#include "obs/Json.h"
#include "riscv/Assembler.h"
#include "sim/WorkerPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

namespace {

struct Config {
  const char *Name;
  CoreKind Kind;
};
const Config Configs[] = {
    {"PDL 5Stg", CoreKind::Pdl5Stage},
    {"PDL 3Stg", CoreKind::Pdl3Stage},
    {"PDL 5Stg BHT", CoreKind::Pdl5StageBht},
};
constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

struct Measure {
  uint64_t Cycles = 0, Instrs = 0;
  double WallMs = 0;
};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

Measure runOnce(CoreKind Kind, const Workload &W) {
  Core Cpu(Kind);
  Cpu.loadProgram(riscv::assemble(W.AsmI));
  auto T0 = std::chrono::steady_clock::now();
  Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/false);
  Measure M;
  M.WallMs = msSince(T0);
  M.Cycles = R.Cycles;
  M.Instrs = R.Instrs;
  return M;
}

double clampMs(double Ms) { return Ms > 1e-6 ? Ms : 1e-6; }

obs::Json jsonRow(const std::string &Config, const std::string &Kernel,
                  const Measure &M, uint64_t Jobs, double Speedup,
                  const std::string &EvalMode, uint64_t FusedOps) {
  obs::Json Row = obs::Json::object();
  Row.set("config", Config);
  Row.set("kernel", Kernel);
  Row.set("eval_mode", EvalMode);
  Row.set("dispatch", backend::bc::dispatchModeName());
  Row.set("fused_ops", FusedOps);
  Row.set("cpi", M.Instrs ? double(M.Cycles) / double(M.Instrs) : 0.0);
  Row.set("cycles", M.Cycles);
  Row.set("instrs", M.Instrs);
  Row.set("wall_ms", M.WallMs);
  Row.set("cycles_per_sec", double(M.Cycles) * 1000.0 / clampMs(M.WallMs));
  Row.set("jobs", Jobs);
  if (Speedup > 0)
    Row.set("speedup_vs_baseline", Speedup);
  return Row;
}

/// Baseline cycles/sec per (config, kernel) row, loaded from a committed
/// snapshot (BENCH_sim.json). The jobs-dependent "batch" row is skipped:
/// its wall clock measures pool contention, not per-System speed.
std::map<std::pair<std::string, std::string>, double>
loadBaseline(const std::string &Path) {
  std::map<std::pair<std::string, std::string>, double> Base;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_sim_throughput: cannot open baseline '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  std::optional<obs::Json> Doc = obs::Json::parse(Buf.str(), &Err);
  const obs::Json *Rows = Doc ? Doc->get("rows") : nullptr;
  if (!Rows) {
    std::fprintf(stderr, "bench_sim_throughput: bad baseline '%s': %s\n",
                 Path.c_str(), Doc ? "no rows array" : Err.c_str());
    std::exit(2);
  }
  for (const obs::Json &Row : Rows->items()) {
    const obs::Json *C = Row.get("config");
    const obs::Json *K = Row.get("kernel");
    const obs::Json *V = Row.get("cycles_per_sec");
    if (!C || !K || !V || C->asString() == "batch")
      continue;
    Base[{C->asString(), K->asString()}] = V->asDouble();
  }
  return Base;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false;
  uint64_t Jobs = 1, Repeat = 3;
  std::string KernelFilter, BaselinePath;
  // The evaluator under test. Defaults to the ambient environment so a
  // plain `PDL_EVAL_FUSED=1 bench_sim_throughput` also does the right
  // thing; --eval overrides.
  std::string EvalMode = std::getenv("PDL_EVAL_TREE") != nullptr ? "tree"
                         : backend::bc::fusedModeRequested()     ? "fused"
                                                                 : "bytecode";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      JsonOut = true;
    else if (A.rfind("--jobs=", 0) == 0)
      Jobs = std::strtoull(A.c_str() + 7, nullptr, 0);
    else if (A.rfind("--repeat=", 0) == 0)
      Repeat = std::strtoull(A.c_str() + 9, nullptr, 0);
    else if (A.rfind("--kernels=", 0) == 0)
      KernelFilter = A.substr(10);
    else if (A.rfind("--baseline=", 0) == 0)
      BaselinePath = A.substr(11);
    else if (A.rfind("--eval=", 0) == 0)
      EvalMode = A.substr(7);
    else {
      std::fprintf(stderr,
                   "usage: bench_sim_throughput [--json] [--jobs=N] "
                   "[--repeat=N] [--kernels=a,b,...] "
                   "[--eval=bytecode|tree|fused] "
                   "[--baseline=BENCH_sim.json]\n");
      return 2;
    }
  }
  if (EvalMode == "tree") {
    setenv("PDL_EVAL_TREE", "1", 1);
  } else if (EvalMode == "fused") {
    unsetenv("PDL_EVAL_TREE");
    setenv("PDL_EVAL_FUSED", "1", 1);
  } else if (EvalMode == "bytecode") {
    unsetenv("PDL_EVAL_TREE");
    unsetenv("PDL_EVAL_FUSED");
  } else {
    std::fprintf(stderr,
                 "bench_sim_throughput: --eval wants 'bytecode', 'tree' or "
                 "'fused', got '%s'\n",
                 EvalMode.c_str());
    return 2;
  }
  if (!Jobs)
    Jobs = 1;
  if (!Repeat)
    Repeat = 1;
  auto KernelEnabled = [&](const std::string &Name) {
    if (KernelFilter.empty())
      return true;
    size_t Pos = 0;
    while (Pos < KernelFilter.size()) {
      size_t Comma = KernelFilter.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = KernelFilter.size();
      if (KernelFilter.compare(Pos, Comma - Pos, Name) == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };

  std::vector<Workload> Kernels;
  for (const Workload &W : allWorkloads())
    if (KernelEnabled(W.Name))
      Kernels.push_back(W);
  if (Kernels.empty()) {
    std::fprintf(stderr, "bench_sim_throughput: no kernels match '%s'\n",
                 KernelFilter.c_str());
    return 2;
  }

  // Static fusion census per config: how many superinstructions the fused
  // lowering of each core's module carries (0 when not running fused —
  // the base bytecode never contains them by construction).
  std::vector<uint64_t> FusedOps(NumConfigs, 0);
  uint64_t FusedOpsTotal = 0;
  if (EvalMode == "fused")
    for (size_t CI = 0; CI != NumConfigs; ++CI) {
      backend::bc::FuseStats S;
      backend::bc::fuseModule(*sharedModuleIR(Configs[CI].Kind, false), &S);
      FusedOps[CI] = S.fusedInsns();
      FusedOpsTotal += S.fusedInsns();
    }

  // Every (config, kernel, repeat) run is independent; fan all of them out
  // and keep the best (minimum wall) repeat per row.
  const size_t K = Kernels.size();
  std::vector<Measure> Runs(NumConfigs * K * Repeat);
  sim::parallelForOrdered(unsigned(Jobs), Runs.size(), [&](size_t I) {
    const size_t Row = I / Repeat;
    Runs[I] = runOnce(Configs[Row / K].Kind, Kernels[Row % K]);
  });
  std::vector<Measure> Best(NumConfigs * K);
  for (size_t Row = 0; Row != Best.size(); ++Row) {
    Best[Row] = Runs[Row * Repeat];
    for (size_t R = 1; R != Repeat; ++R)
      if (Runs[Row * Repeat + R].WallMs < Best[Row].WallMs)
        Best[Row] = Runs[Row * Repeat + R];
  }

  // One whole-matrix measurement through the pool: aggregate host
  // throughput with `Jobs` concurrent single-threaded Systems.
  Measure Batch;
  {
    std::vector<Measure> M(NumConfigs * K);
    auto T0 = std::chrono::steady_clock::now();
    sim::parallelForOrdered(unsigned(Jobs), M.size(), [&](size_t I) {
      M[I] = runOnce(Configs[I / K].Kind, Kernels[I % K]);
    });
    Batch.WallMs = msSince(T0);
    for (const Measure &R : M) {
      Batch.Cycles += R.Cycles;
      Batch.Instrs += R.Instrs;
    }
  }

  // Per-row speedup against the committed snapshot (when requested), and
  // the geomean over every row the baseline knows about.
  std::map<std::pair<std::string, std::string>, double> Base;
  if (!BaselinePath.empty())
    Base = loadBaseline(BaselinePath);
  std::vector<double> Speedups(NumConfigs * K, 0.0);
  double LogSum = 0.0;
  size_t Compared = 0;
  for (size_t CI = 0; CI != NumConfigs; ++CI)
    for (size_t KI = 0; KI != K; ++KI) {
      auto It = Base.find({Configs[CI].Name, Kernels[KI].Name});
      if (It == Base.end() || It->second <= 0)
        continue;
      const Measure &M = Best[CI * K + KI];
      double Fresh = double(M.Cycles) * 1000.0 / clampMs(M.WallMs);
      double S = Fresh / It->second;
      Speedups[CI * K + KI] = S;
      LogSum += std::log(S);
      ++Compared;
    }
  double Geomean = Compared ? std::exp(LogSum / double(Compared)) : 0.0;

  int Exit = 0;
  if (Compared && Geomean < 0.9) {
    std::fprintf(stderr,
                 "bench_sim_throughput: REGRESSION: geomean %.3fx of "
                 "baseline '%s' (>10%% slower)\n",
                 Geomean, BaselinePath.c_str());
    Exit = 1;
  }

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "sim_throughput");
    obs::Json Rows = obs::Json::array();
    for (size_t CI = 0; CI != NumConfigs; ++CI)
      for (size_t KI = 0; KI != K; ++KI)
        Rows.push(jsonRow(Configs[CI].Name, Kernels[KI].Name,
                          Best[CI * K + KI], Jobs, Speedups[CI * K + KI],
                          EvalMode, FusedOps[CI]));
    Rows.push(jsonRow("batch", "matrix", Batch, Jobs, 0.0, EvalMode,
                      FusedOpsTotal));
    Doc.set("rows", std::move(Rows));
    if (Compared)
      Doc.set("geomean_speedup_vs_baseline", Geomean);
    std::printf("%s\n", Doc.dump(2).c_str());
    return Exit;
  }

  std::printf("=== Host simulation throughput (best of %llu, eval=%s, "
              "dispatch=%s) ===\n",
              (unsigned long long)Repeat, EvalMode.c_str(),
              backend::bc::dispatchModeName());
  std::printf("%-14s %-12s %12s %10s %14s%s\n", "core", "kernel", "cycles",
              "wall_ms", "cycles/sec", Compared ? "   speedup" : "");
  for (size_t CI = 0; CI != NumConfigs; ++CI)
    for (size_t KI = 0; KI != K; ++KI) {
      const Measure &M = Best[CI * K + KI];
      std::printf("%-14s %-12s %12llu %10.2f %14.0f", Configs[CI].Name,
                  Kernels[KI].Name.c_str(), (unsigned long long)M.Cycles,
                  M.WallMs, double(M.Cycles) * 1000.0 / clampMs(M.WallMs));
      if (Speedups[CI * K + KI] > 0)
        std::printf("   %6.2fx", Speedups[CI * K + KI]);
      std::printf("\n");
    }
  std::printf("%-14s %-12s %12llu %10.2f %14.0f  (jobs=%llu)\n", "batch",
              "matrix", (unsigned long long)Batch.Cycles, Batch.WallMs,
              double(Batch.Cycles) * 1000.0 / clampMs(Batch.WallMs),
              (unsigned long long)Jobs);
  if (Compared)
    std::printf("geomean speedup vs %s: %.2fx over %zu rows\n",
                BaselinePath.c_str(), Geomean, Compared);
  return Exit;
}
