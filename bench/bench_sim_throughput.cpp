//===- bench_sim_throughput.cpp - Host simulation throughput ---------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures how fast the cycle-accurate executor runs on the host:
/// simulated cycles per wall-clock second, per (core x kernel), plus one
/// whole-matrix row run through the batch worker pool. This is the repo's
/// perf canary — `BENCH_sim.json` at the repo root records the trajectory
/// (see docs/performance.md for how to read and update it), and
/// tools/check_bench_json.py validates the throughput fields.
///
/// Each per-row figure is the best of `--repeat=N` runs (default 3) to
/// shed scheduler noise; rows fan out over `--jobs=N` workers. The golden
/// sequential-equivalence check is off here — this bench times the
/// executor alone, not the oracle.
///
/// `--eval` selects the expression evaluator under test (bytecode, tree,
/// fused, or native); `--compare` runs every evaluator in one invocation
/// and prints a per-kernel speedup table against the bytecode tier. Under
/// the native tier, artifacts are compiled (or loaded warm) before any
/// timing starts, the one-time compile cost is reported separately, and
/// every row names the compiler plus whether the artifact cache hit.
///
//===----------------------------------------------------------------------===//

#include "backend/Fuse.h"
#include "backend/NativeCache.h"
#include "cores/Core.h"
#include "obs/Json.h"
#include "riscv/Assembler.h"
#include "sim/WorkerPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

namespace {

struct Config {
  const char *Name;
  CoreKind Kind;
};
const Config Configs[] = {
    {"PDL 5Stg", CoreKind::Pdl5Stage},
    {"PDL 3Stg", CoreKind::Pdl3Stage},
    {"PDL 5Stg BHT", CoreKind::Pdl5StageBht},
};
constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

struct Measure {
  uint64_t Cycles = 0, Instrs = 0;
  double WallMs = 0;
};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

Measure runOnce(CoreKind Kind, const Workload &W) {
  Core Cpu(Kind);
  Cpu.loadProgram(riscv::assemble(W.AsmI));
  auto T0 = std::chrono::steady_clock::now();
  Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/false);
  Measure M;
  M.WallMs = msSince(T0);
  M.Cycles = R.Cycles;
  M.Instrs = R.Instrs;
  return M;
}

double clampMs(double Ms) { return Ms > 1e-6 ? Ms : 1e-6; }
double perSec(const Measure &M) {
  return double(M.Cycles) * 1000.0 / clampMs(M.WallMs);
}

/// One evaluator's full measurement pass over the matrix.
struct ModeRun {
  std::string Requested;             // the --eval spelling
  std::vector<std::string> RowMode;  // actual per-config mode (native may
                                     // degrade to fused without a compiler)
  std::vector<Measure> Best;         // NumConfigs * K
  Measure Batch;
  std::vector<uint64_t> FusedOps;    // static census per config
  uint64_t FusedOpsTotal = 0;
  // Native provenance, empty/false elsewhere.
  std::vector<std::string> Compiler; // per config
  std::vector<bool> CacheHit;        // per config
  uint64_t ColdCompiles = 0, ColdCompileMs = 0, WarmHits = 0;
};

/// Evaluation mode is ambient (System construction consults the
/// environment, and the shared circuit cache keys on the tier), so a
/// measurement pass owns the env for its duration.
void applyEvalEnv(const std::string &Mode) {
  unsetenv("PDL_EVAL_TREE");
  unsetenv("PDL_EVAL_FUSED");
  unsetenv("PDL_EVAL_NATIVE");
  if (Mode == "tree")
    setenv("PDL_EVAL_TREE", "1", 1);
  else if (Mode == "fused")
    setenv("PDL_EVAL_FUSED", "1", 1);
  else if (Mode == "native")
    setenv("PDL_EVAL_NATIVE", "1", 1);
}

ModeRun measureMode(const std::string &Mode,
                    const std::vector<Workload> &Kernels, uint64_t Jobs,
                    uint64_t Repeat) {
  applyEvalEnv(Mode);
  const size_t K = Kernels.size();
  ModeRun R;
  R.Requested = Mode;
  R.RowMode.assign(NumConfigs, Mode);
  R.FusedOps.assign(NumConfigs, 0);
  R.Compiler.assign(NumConfigs, "");
  R.CacheHit.assign(NumConfigs, false);

  // Static fusion census per config: how many superinstructions the fused
  // lowering of each core's module carries. Native artifacts are emitted
  // from exactly this lowering, so the census applies to both tiers (base
  // bytecode never contains superinstructions by construction).
  if (Mode == "fused" || Mode == "native")
    for (size_t CI = 0; CI != NumConfigs; ++CI) {
      backend::bc::FuseStats S;
      backend::bc::fuseModule(*sharedModuleIR(Configs[CI].Kind, false), &S);
      R.FusedOps[CI] = S.fusedInsns();
      R.FusedOpsTotal += S.fusedInsns();
    }

  // Warm the native tier before any clock starts: certification plus
  // compile (or warm artifact load) is a one-time cost per (kind,
  // compiler), reported separately from steady-state throughput.
  if (Mode == "native") {
    backend::native::Stats Before = backend::native::stats();
    auto T0 = std::chrono::steady_clock::now();
    for (size_t CI = 0; CI != NumConfigs; ++CI) {
      std::shared_ptr<const backend::bc::ModuleIR> M =
          sharedModuleIR(Configs[CI].Kind, EvalTier::Native);
      R.Compiler[CI] = M->NativeCompiler;
      R.CacheHit[CI] = M->NativeCacheHit;
      if (M->NativeCompiler.empty())
        R.RowMode[CI] = "fused"; // attach fell back; rows must say so
    }
    backend::native::Stats After = backend::native::stats();
    R.ColdCompiles = After.Compiles - Before.Compiles;
    R.ColdCompileMs = After.CompileMs - Before.CompileMs;
    R.WarmHits = After.CacheHits - Before.CacheHits;
    std::fprintf(stderr,
                 "bench_sim_throughput: native warm-up %.0f ms: %llu "
                 "compile(s) (%llu ms in the compiler), %llu warm "
                 "artifact(s)\n",
                 msSince(T0), (unsigned long long)R.ColdCompiles,
                 (unsigned long long)R.ColdCompileMs,
                 (unsigned long long)R.WarmHits);
  }

  // Every (config, kernel, repeat) run is independent; fan all of them out
  // and keep the best (minimum wall) repeat per row.
  std::vector<Measure> Runs(NumConfigs * K * Repeat);
  sim::parallelForOrdered(unsigned(Jobs), Runs.size(), [&](size_t I) {
    const size_t Row = I / Repeat;
    Runs[I] = runOnce(Configs[Row / K].Kind, Kernels[Row % K]);
  });
  R.Best.resize(NumConfigs * K);
  for (size_t Row = 0; Row != R.Best.size(); ++Row) {
    R.Best[Row] = Runs[Row * Repeat];
    for (size_t Rep = 1; Rep != Repeat; ++Rep)
      if (Runs[Row * Repeat + Rep].WallMs < R.Best[Row].WallMs)
        R.Best[Row] = Runs[Row * Repeat + Rep];
  }

  // One whole-matrix measurement through the pool: aggregate host
  // throughput with `Jobs` concurrent single-threaded Systems.
  {
    std::vector<Measure> M(NumConfigs * K);
    auto T0 = std::chrono::steady_clock::now();
    sim::parallelForOrdered(unsigned(Jobs), M.size(), [&](size_t I) {
      M[I] = runOnce(Configs[I / K].Kind, Kernels[I % K]);
    });
    R.Batch.WallMs = msSince(T0);
    for (const Measure &X : M) {
      R.Batch.Cycles += X.Cycles;
      R.Batch.Instrs += X.Instrs;
    }
  }
  return R;
}

/// A mode's batch row degrades to "fused" only when every config fell back.
std::string batchMode(const ModeRun &R) {
  for (const std::string &M : R.RowMode)
    if (M == "native")
      return "native";
  return R.RowMode.empty() ? R.Requested : R.RowMode[0];
}

obs::Json jsonRow(const std::string &Config, const std::string &Kernel,
                  const Measure &M, uint64_t Jobs, double Speedup,
                  const std::string &EvalMode, uint64_t FusedOps,
                  const std::string &Compiler, bool CacheHit) {
  obs::Json Row = obs::Json::object();
  Row.set("config", Config);
  Row.set("kernel", Kernel);
  Row.set("eval_mode", EvalMode);
  Row.set("dispatch", backend::bc::dispatchModeName());
  Row.set("fused_ops", FusedOps);
  if (EvalMode == "native") {
    Row.set("compiler", Compiler);
    Row.set("native_cache_hit", CacheHit);
  }
  Row.set("cpi", M.Instrs ? double(M.Cycles) / double(M.Instrs) : 0.0);
  Row.set("cycles", M.Cycles);
  Row.set("instrs", M.Instrs);
  Row.set("wall_ms", M.WallMs);
  Row.set("cycles_per_sec", perSec(M));
  Row.set("jobs", Jobs);
  if (Speedup > 0)
    Row.set("speedup_vs_baseline", Speedup);
  return Row;
}

/// Emits every row of one measurement pass into \p Rows.
void pushModeRows(obs::Json &Rows, const ModeRun &R,
                  const std::vector<Workload> &Kernels, uint64_t Jobs,
                  const std::vector<double> &Speedups) {
  const size_t K = Kernels.size();
  for (size_t CI = 0; CI != NumConfigs; ++CI)
    for (size_t KI = 0; KI != K; ++KI)
      Rows.push(jsonRow(Configs[CI].Name, Kernels[KI].Name,
                        R.Best[CI * K + KI], Jobs,
                        Speedups.empty() ? 0.0 : Speedups[CI * K + KI],
                        R.RowMode[CI], R.FusedOps[CI], R.Compiler[CI],
                        R.CacheHit[CI]));
  // The batch row spans every config; it reports the one shared compiler
  // and a cache-hit flag that is true only when every artifact came warm.
  size_t NativeCI = 0;
  bool AllHit = true;
  for (size_t CI = 0; CI != NumConfigs; ++CI) {
    if (!R.Compiler[CI].empty())
      NativeCI = CI;
    AllHit = AllHit && R.CacheHit[CI];
  }
  Rows.push(jsonRow("batch", "matrix", R.Batch, Jobs, 0.0, batchMode(R),
                    R.FusedOpsTotal, R.Compiler[NativeCI], AllHit));
}

/// Baseline cycles/sec per (config, kernel) row, loaded from a committed
/// snapshot (BENCH_sim.json). The jobs-dependent "batch" row is skipped:
/// its wall clock measures pool contention, not per-System speed.
std::map<std::pair<std::string, std::string>, double>
loadBaseline(const std::string &Path) {
  std::map<std::pair<std::string, std::string>, double> Base;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_sim_throughput: cannot open baseline '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  std::optional<obs::Json> Doc = obs::Json::parse(Buf.str(), &Err);
  const obs::Json *Rows = Doc ? Doc->get("rows") : nullptr;
  if (!Rows) {
    std::fprintf(stderr, "bench_sim_throughput: bad baseline '%s': %s\n",
                 Path.c_str(), Doc ? "no rows array" : Err.c_str());
    std::exit(2);
  }
  for (const obs::Json &Row : Rows->items()) {
    const obs::Json *C = Row.get("config");
    const obs::Json *K = Row.get("kernel");
    const obs::Json *V = Row.get("cycles_per_sec");
    if (!C || !K || !V || C->asString() == "batch")
      continue;
    Base[{C->asString(), K->asString()}] = V->asDouble();
  }
  return Base;
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = false, Compare = false;
  uint64_t Jobs = 1, Repeat = 3;
  std::string KernelFilter, BaselinePath;
  // The evaluator under test. Defaults to the ambient environment so a
  // plain `PDL_EVAL_NATIVE=1 bench_sim_throughput` also does the right
  // thing; --eval overrides.
  std::string EvalMode =
      std::getenv("PDL_EVAL_TREE") != nullptr          ? "tree"
      : backend::native::nativeModeRequested()         ? "native"
      : backend::bc::fusedModeRequested()              ? "fused"
                                                       : "bytecode";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      JsonOut = true;
    else if (A == "--compare")
      Compare = true;
    else if (A.rfind("--jobs=", 0) == 0)
      Jobs = std::strtoull(A.c_str() + 7, nullptr, 0);
    else if (A.rfind("--repeat=", 0) == 0)
      Repeat = std::strtoull(A.c_str() + 9, nullptr, 0);
    else if (A.rfind("--kernels=", 0) == 0)
      KernelFilter = A.substr(10);
    else if (A.rfind("--baseline=", 0) == 0)
      BaselinePath = A.substr(11);
    else if (A.rfind("--eval=", 0) == 0)
      EvalMode = A.substr(7);
    else {
      std::fprintf(stderr,
                   "usage: bench_sim_throughput [--json] [--jobs=N] "
                   "[--repeat=N] [--kernels=a,b,...] "
                   "[--eval=bytecode|tree|fused|native] [--compare] "
                   "[--baseline=BENCH_sim.json]\n");
      return 2;
    }
  }
  if (EvalMode != "bytecode" && EvalMode != "tree" && EvalMode != "fused" &&
      EvalMode != "native") {
    std::fprintf(stderr,
                 "bench_sim_throughput: --eval wants 'bytecode', 'tree', "
                 "'fused' or 'native', got '%s'\n",
                 EvalMode.c_str());
    return 2;
  }
  if (!Jobs)
    Jobs = 1;
  if (!Repeat)
    Repeat = 1;
  auto KernelEnabled = [&](const std::string &Name) {
    if (KernelFilter.empty())
      return true;
    size_t Pos = 0;
    while (Pos < KernelFilter.size()) {
      size_t Comma = KernelFilter.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = KernelFilter.size();
      if (KernelFilter.compare(Pos, Comma - Pos, Name) == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };

  std::vector<Workload> Kernels;
  for (const Workload &W : allWorkloads())
    if (KernelEnabled(W.Name))
      Kernels.push_back(W);
  if (Kernels.empty()) {
    std::fprintf(stderr, "bench_sim_throughput: no kernels match '%s'\n",
                 KernelFilter.c_str());
    return 2;
  }
  const size_t K = Kernels.size();

  if (Compare) {
    // Every evaluator over the same matrix, one process: the shared
    // circuit cache keys per tier, so each pass reuses its own lowering
    // and nothing leaks between modes. Bytecode is the reference
    // denominator in the speedup table.
    std::vector<std::string> Modes = {"tree", "bytecode", "fused"};
    if (backend::native::available())
      Modes.push_back("native");
    else
      std::fprintf(stderr, "bench_sim_throughput: no C++ compiler found; "
                           "--compare skips the native tier\n");
    std::vector<ModeRun> Passes;
    for (const std::string &M : Modes)
      Passes.push_back(measureMode(M, Kernels, Jobs, Repeat));
    const size_t BcIx = 1; // Modes[1] == "bytecode"

    if (JsonOut) {
      obs::Json Doc = obs::Json::object();
      Doc.set("bench", "sim_throughput");
      Doc.set("compare", true);
      obs::Json Rows = obs::Json::array();
      for (const ModeRun &P : Passes)
        pushModeRows(Rows, P, Kernels, Jobs, {});
      Doc.set("rows", std::move(Rows));
      std::printf("%s\n", Doc.dump(2).c_str());
      return 0;
    }

    std::printf("=== Evaluator comparison (best of %llu, dispatch=%s, "
                "speedups vs bytecode) ===\n",
                (unsigned long long)Repeat,
                backend::bc::dispatchModeName());
    std::printf("%-14s %-12s", "core", "kernel");
    for (const ModeRun &P : Passes)
      std::printf(" %15s", P.Requested.c_str());
    std::printf("\n");
    std::vector<double> LogSum(Passes.size(), 0.0);
    for (size_t CI = 0; CI != NumConfigs; ++CI)
      for (size_t KI = 0; KI != K; ++KI) {
        const size_t Row = CI * K + KI;
        std::printf("%-14s %-12s", Configs[CI].Name,
                    Kernels[KI].Name.c_str());
        double Bc = perSec(Passes[BcIx].Best[Row]);
        for (size_t P = 0; P != Passes.size(); ++P) {
          double V = perSec(Passes[P].Best[Row]);
          LogSum[P] += std::log(V / Bc);
          std::printf(" %9.0f %4.2fx", V, V / Bc);
        }
        std::printf("\n");
      }
    std::printf("%-27s", "geomean speedup");
    for (size_t P = 0; P != Passes.size(); ++P)
      std::printf(" %14.2fx",
                  std::exp(LogSum[P] / double(NumConfigs * K)));
    std::printf("\n");
    for (const ModeRun &P : Passes)
      if (P.Requested == "native")
        std::printf("native one-time cost: %llu compile(s), %llu ms; %llu "
                    "warm artifact(s) (%s)\n",
                    (unsigned long long)P.ColdCompiles,
                    (unsigned long long)P.ColdCompileMs,
                    (unsigned long long)P.WarmHits,
                    P.Compiler[0].empty() ? "fallback" : P.Compiler[0].c_str());
    return 0;
  }

  ModeRun R = measureMode(EvalMode, Kernels, Jobs, Repeat);

  // Per-row speedup against the committed snapshot (when requested), and
  // the geomean over every row the baseline knows about.
  std::map<std::pair<std::string, std::string>, double> Base;
  if (!BaselinePath.empty())
    Base = loadBaseline(BaselinePath);
  std::vector<double> Speedups(NumConfigs * K, 0.0);
  double LogSum = 0.0;
  size_t Compared = 0;
  for (size_t CI = 0; CI != NumConfigs; ++CI)
    for (size_t KI = 0; KI != K; ++KI) {
      auto It = Base.find({Configs[CI].Name, Kernels[KI].Name});
      if (It == Base.end() || It->second <= 0)
        continue;
      double S = perSec(R.Best[CI * K + KI]) / It->second;
      Speedups[CI * K + KI] = S;
      LogSum += std::log(S);
      ++Compared;
    }
  double Geomean = Compared ? std::exp(LogSum / double(Compared)) : 0.0;

  int Exit = 0;
  if (Compared && Geomean < 0.9) {
    std::fprintf(stderr,
                 "bench_sim_throughput: REGRESSION: geomean %.3fx of "
                 "baseline '%s' (>10%% slower)\n",
                 Geomean, BaselinePath.c_str());
    Exit = 1;
  }

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "sim_throughput");
    obs::Json Rows = obs::Json::array();
    pushModeRows(Rows, R, Kernels, Jobs, Speedups);
    Doc.set("rows", std::move(Rows));
    if (Compared)
      Doc.set("geomean_speedup_vs_baseline", Geomean);
    if (EvalMode == "native") {
      Doc.set("native_compiles", R.ColdCompiles);
      Doc.set("native_compile_ms", R.ColdCompileMs);
      Doc.set("native_cache_hits", R.WarmHits);
    }
    std::printf("%s\n", Doc.dump(2).c_str());
    return Exit;
  }

  std::printf("=== Host simulation throughput (best of %llu, eval=%s, "
              "dispatch=%s) ===\n",
              (unsigned long long)Repeat, EvalMode.c_str(),
              backend::bc::dispatchModeName());
  std::printf("%-14s %-12s %12s %10s %14s%s\n", "core", "kernel", "cycles",
              "wall_ms", "cycles/sec", Compared ? "   speedup" : "");
  for (size_t CI = 0; CI != NumConfigs; ++CI)
    for (size_t KI = 0; KI != K; ++KI) {
      const Measure &M = R.Best[CI * K + KI];
      std::printf("%-14s %-12s %12llu %10.2f %14.0f", Configs[CI].Name,
                  Kernels[KI].Name.c_str(), (unsigned long long)M.Cycles,
                  M.WallMs, perSec(M));
      if (Speedups[CI * K + KI] > 0)
        std::printf("   %6.2fx", Speedups[CI * K + KI]);
      std::printf("\n");
    }
  std::printf("%-14s %-12s %12llu %10.2f %14.0f  (jobs=%llu)\n", "batch",
              "matrix", (unsigned long long)R.Batch.Cycles, R.Batch.WallMs,
              perSec(R.Batch), (unsigned long long)Jobs);
  if (Compared)
    std::printf("geomean speedup vs %s: %.2fx over %zu rows\n",
                BaselinePath.c_str(), Geomean, Compared);
  return Exit;
}
