//===- bench_compile.cpp - Compiler and simulator throughput ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the toolchain itself: front-half
/// compile times (with SMT query/decision counters, standing in for the
/// paper's Z3-based checking cost), elaboration, and the cycle rate of the
/// pipelined executor vs the sequential interpreter.
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "cores/CoreSources.h"
#include "riscv/Assembler.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace pdl;
using namespace pdl::cores;

static void BM_Compile5Stage(benchmark::State &State) {
  std::string Src = rv32i5StageSource();
  unsigned Queries = 0, Decisions = 0;
  for (auto _ : State) {
    CompiledProgram CP = compile(Src);
    benchmark::DoNotOptimize(CP.ok());
    Queries = CP.SolverQueries;
    Decisions = CP.SolverDecisions;
  }
  State.counters["smt_queries"] = Queries;
  State.counters["smt_decisions"] = Decisions;
}
BENCHMARK(BM_Compile5Stage)->Unit(benchmark::kMillisecond);

static void BM_CompileRv32im(benchmark::State &State) {
  std::string Src = rv32imSource();
  unsigned Queries = 0;
  for (auto _ : State) {
    CompiledProgram CP = compile(Src);
    benchmark::DoNotOptimize(CP.ok());
    Queries = CP.SolverQueries;
  }
  State.counters["smt_queries"] = Queries;
}
BENCHMARK(BM_CompileRv32im)->Unit(benchmark::kMillisecond);

static void BM_CompileCache(benchmark::State &State) {
  std::string Src = cacheSource();
  for (auto _ : State) {
    CompiledProgram CP = compile(Src);
    benchmark::DoNotOptimize(CP.ok());
  }
}
BENCHMARK(BM_CompileCache)->Unit(benchmark::kMillisecond);

static void BM_PipelinedSimulator(benchmark::State &State) {
  auto Words = riscv::assemble(workloads::workload("nw").AsmI);
  uint64_t Cycles = 0;
  for (auto _ : State) {
    Core C(CoreKind::Pdl5Stage);
    C.loadProgram(Words);
    Core::RunResult R = C.run(1000000);
    Cycles += R.Cycles;
    benchmark::DoNotOptimize(R.Cpi);
  }
  State.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(Cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelinedSimulator)->Unit(benchmark::kMillisecond);

static void BM_GoldenSimulator(benchmark::State &State) {
  auto Words = riscv::assemble(workloads::workload("nw").AsmI);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    riscv::GoldenSim Sim;
    Sim.loadProgram(Words);
    Sim.setHaltStore(HaltByteAddr);
    Instrs += Sim.run(1000000);
  }
  State.counters["instrs_per_sec"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoldenSimulator)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
