//===- bench_spec.cpp - Speculation ablation ---------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the speculation machinery of Section 2.4 across branch
/// behaviours: always-not-taken (the base 5-stage), the BHT-predicted
/// variant, and the 3-stage core's shallow penalty — plus squash counts
/// from the speculation table, per kernel.
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "obs/Sinks.h"
#include "riscv/Assembler.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace pdl;
using namespace pdl::cores;
using namespace pdl::workloads;

int main(int argc, char **argv) {
  bool JsonOut = argc > 1 && std::string(argv[1]) == "--json";
  const char *Kernels[] = {"kmp", "nw", "queue", "radix", "coremark"};
  struct Cfg {
    const char *Name;
    CoreKind Kind;
    PredictorKind Pred;
  };
  const Cfg Cfgs[] = {
      {"5Stg not-taken", CoreKind::Pdl5Stage, PredictorKind::Bht2Bit},
      {"5Stg BHT", CoreKind::Pdl5StageBht, PredictorKind::Bht2Bit},
      {"5Stg gshare", CoreKind::Pdl5StageBht, PredictorKind::Gshare},
      {"3Stg", CoreKind::Pdl3Stage, PredictorKind::Bht2Bit},
  };

  if (JsonOut) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "spec");
    obs::Json Rows = obs::Json::array();
    for (const Cfg &C : Cfgs) {
      for (const char *KName : Kernels) {
        Core Cpu(C.Kind, C.Pred);
        obs::CounterSink Counters;
        Cpu.system().attachSink(Counters);
        Cpu.loadProgram(riscv::assemble(workload(KName).AsmI));
        Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/true);
        const auto &St = Cpu.system().stats();
        uint64_t Killed = St.Killed.count("cpu") ? St.Killed.at("cpu") : 0;
        obs::Json Row = obs::Json::object();
        Row.set("config", C.Name);
        Row.set("kernel", KName);
        Row.set("cpi", R.Cpi);
        Row.set("cycles", R.Cycles);
        Row.set("instrs", R.Instrs);
        Row.set("squashed", Killed);
        Row.set("seq_equiv", R.Halted && R.TraceMatches && !R.Deadlocked);
        Row.set("report", Counters.report().toJsonValue());
        Rows.push(std::move(Row));
      }
    }
    Doc.set("rows", std::move(Rows));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }

  std::printf("=== Speculation ablation: CPI and squashed threads ===\n\n");
  std::printf("%-16s", "config");
  for (const char *K : Kernels)
    std::printf(" %9s %7s", K, "kill%");
  std::printf("\n");

  for (const Cfg &C : Cfgs) {
    std::printf("%-16s", C.Name);
    for (const char *KName : Kernels) {
      Core Cpu(C.Kind, C.Pred);
      Cpu.loadProgram(riscv::assemble(workload(KName).AsmI));
      Core::RunResult R = Cpu.run(5000000, /*CheckGolden=*/true);
      const auto &St = Cpu.system().stats();
      uint64_t Killed = St.Killed.count("cpu") ? St.Killed.at("cpu") : 0;
      double KillPct =
          R.Instrs ? 100.0 * double(Killed) / double(R.Instrs + Killed) : 0;
      if (!R.Halted || !R.TraceMatches)
        std::printf(" %9s %7s", "FAIL", "-");
      else
        std::printf(" %9.3f %6.1f%%", R.Cpi, KillPct);
    }
    std::printf("\n");
  }

  std::printf("\nEvery run is trace-checked against the sequential "
              "specification: prediction\nquality changes CPI and squash "
              "rates but can never change results (Section 2.4:\n"
              "\"predicted values cannot affect functional "
              "correctness\").\n");
  return 0;
}
