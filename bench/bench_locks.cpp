//===- bench_locks.cpp - Hazard-lock design-space ablation ------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The design choice DESIGN.md calls out: one PDL source, three lock
/// implementations on the register file (Section 2.3), measured on
/// dependence-heavy and independent code. Shows what the lock abstraction
/// buys: swapping stall-only / bypassing / renaming hazard resolution
/// without touching the pipeline description.
///
//===----------------------------------------------------------------------===//

#include "cores/Core.h"
#include "obs/Sinks.h"
#include "riscv/Assembler.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace pdl;
using namespace pdl::cores;

namespace {

double cpiOn(CoreKind K, const std::string &Program,
             obs::Json *JsonRow = nullptr) {
  Core C(K);
  obs::CounterSink Counters;
  if (JsonRow)
    C.system().attachSink(Counters);
  C.loadProgram(riscv::assemble(Program));
  Core::RunResult R = C.run(5000000, /*CheckGolden=*/true);
  if (!R.Halted || !R.TraceMatches || R.Deadlocked) {
    std::fprintf(stderr, "%s failed (halted=%d match=%d dead=%d)\n",
                 coreName(K), R.Halted, R.TraceMatches, R.Deadlocked);
    return -1;
  }
  if (JsonRow) {
    JsonRow->set("cpi", R.Cpi);
    JsonRow->set("cycles", R.Cycles);
    JsonRow->set("instrs", R.Instrs);
    JsonRow->set("report", Counters.report().toJsonValue());
  }
  return R.Cpi;
}

std::string haltSuffix() {
  return "halt2: li t6, " + std::to_string(HaltByteAddr) +
         "\n sw zero, 0(t6)\nspin2: j spin2\n";
}

} // namespace

int main(int argc, char **argv) {
  bool JsonOut = argc > 1 && std::string(argv[1]) == "--json";
  // Dependence-heavy: a serial add chain.
  std::string Chain = "li t1, 1\n";
  for (int I = 0; I < 64; ++I)
    Chain += "add t1, t1, t1\n";
  Chain += haltSuffix();

  // Independent: round-robin over 8 registers.
  std::string Indep = "li t1, 1\n";
  for (int I = 0; I < 64; ++I)
    Indep += "addi x" + std::to_string(5 + (I % 8)) + ", zero, " +
             std::to_string(I) + "\n";
  Indep += haltSuffix();

  // Load-use heavy.
  std::string LoadUse = "li t0, 0x100\n sw t0, 0(t0)\n";
  for (int I = 0; I < 48; ++I)
    LoadUse += "lw t1, 0(t0)\n add t2, t1, t1\n";
  LoadUse += haltSuffix();

  const std::string Kmp = workloads::workload("kmp").AsmI;

  struct Row {
    const char *Name;
    CoreKind Kind;
  };
  const Row Rows[] = {
      {"QueueLock (stall only)", CoreKind::Pdl5StageNoBypass},
      {"BypassQueue", CoreKind::Pdl5Stage},
      {"RenamingRegFile", CoreKind::Pdl5StageRename},
  };

  if (JsonOut) {
    struct Prog {
      const char *Name;
      const std::string *Text;
    };
    const Prog Progs[] = {{"add-chain", &Chain},
                          {"indep", &Indep},
                          {"load-use", &LoadUse},
                          {"kmp", &Kmp}};
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", "locks");
    obs::Json JRows = obs::Json::array();
    for (const Row &R : Rows) {
      for (const Prog &P : Progs) {
        obs::Json JRow = obs::Json::object();
        JRow.set("config", R.Name);
        JRow.set("kernel", P.Name);
        cpiOn(R.Kind, *P.Text, &JRow);
        JRows.push(std::move(JRow));
      }
    }
    Doc.set("rows", std::move(JRows));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }

  std::printf("=== Lock-implementation ablation: CPI on the same 5-stage "
              "PDL source ===\n\n");
  std::printf("%-26s %10s %10s %10s %10s\n", "rf lock", "add-chain",
              "indep", "load-use", "kmp");
  for (const Row &R : Rows) {
    std::printf("%-26s %10.3f %10.3f %10.3f %10.3f\n", R.Name,
                cpiOn(R.Kind, Chain), cpiOn(R.Kind, Indep),
                cpiOn(R.Kind, LoadUse), cpiOn(R.Kind, Kmp));
  }
  std::printf("\nExpected shape: the queue lock pays heavily on dependent "
              "code and nothing on\nindependent code; the bypassing and "
              "renaming locks fully hide ALU dependences\n(1-cycle load-use "
              "stalls remain), matching Section 2.3.\n");
  return 0;
}
