file(REMOVE_RECURSE
  "CMakeFiles/bench_fifo.dir/bench_fifo.cpp.o"
  "CMakeFiles/bench_fifo.dir/bench_fifo.cpp.o.d"
  "bench_fifo"
  "bench_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
