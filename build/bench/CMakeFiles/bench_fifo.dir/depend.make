# Empty dependencies file for bench_fifo.
# This may be replaced when dependencies are built.
