file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_area.dir/bench_fig6_area.cpp.o"
  "CMakeFiles/bench_fig6_area.dir/bench_fig6_area.cpp.o.d"
  "bench_fig6_area"
  "bench_fig6_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
