file(REMOVE_RECURSE
  "CMakeFiles/bench_spec.dir/bench_spec.cpp.o"
  "CMakeFiles/bench_spec.dir/bench_spec.cpp.o.d"
  "bench_spec"
  "bench_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
