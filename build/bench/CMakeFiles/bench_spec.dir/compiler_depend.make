# Empty compiler generated dependencies file for bench_spec.
# This may be replaced when dependencies are built.
