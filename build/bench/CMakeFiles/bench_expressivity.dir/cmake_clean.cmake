file(REMOVE_RECURSE
  "CMakeFiles/bench_expressivity.dir/bench_expressivity.cpp.o"
  "CMakeFiles/bench_expressivity.dir/bench_expressivity.cpp.o.d"
  "bench_expressivity"
  "bench_expressivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expressivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
