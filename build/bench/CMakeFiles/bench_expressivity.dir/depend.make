# Empty dependencies file for bench_expressivity.
# This may be replaced when dependencies are built.
