# Empty dependencies file for bench_locks.
# This may be replaced when dependencies are built.
