file(REMOVE_RECURSE
  "CMakeFiles/bench_locks.dir/bench_locks.cpp.o"
  "CMakeFiles/bench_locks.dir/bench_locks.cpp.o.d"
  "bench_locks"
  "bench_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
