# Empty dependencies file for bench_cache.
# This may be replaced when dependencies are built.
