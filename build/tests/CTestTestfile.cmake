# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/BitsTest[1]_include.cmake")
include("/root/repo/build/tests/DiagnosticsTest[1]_include.cmake")
include("/root/repo/build/tests/SmtTest[1]_include.cmake")
include("/root/repo/build/tests/ParserTest[1]_include.cmake")
include("/root/repo/build/tests/CompilerTest[1]_include.cmake")
include("/root/repo/build/tests/LockTest[1]_include.cmake")
include("/root/repo/build/tests/SpecTableTest[1]_include.cmake")
include("/root/repo/build/tests/BackendTest[1]_include.cmake")
include("/root/repo/build/tests/CoreTest[1]_include.cmake")
include("/root/repo/build/tests/WorkloadTest[1]_include.cmake")
include("/root/repo/build/tests/AreaTest[1]_include.cmake")
include("/root/repo/build/tests/FuzzTest[1]_include.cmake")
include("/root/repo/build/tests/RegionTest[1]_include.cmake")
include("/root/repo/build/tests/TypeCheckerTest[1]_include.cmake")
include("/root/repo/build/tests/PropertyTest[1]_include.cmake")
include("/root/repo/build/tests/StageGraphTest[1]_include.cmake")
include("/root/repo/build/tests/RiscvTest[1]_include.cmake")
include("/root/repo/build/tests/SeqCoreTest[1]_include.cmake")
include("/root/repo/build/tests/ParserFuzzTest[1]_include.cmake")
