# Empty compiler generated dependencies file for WorkloadTest.
# This may be replaced when dependencies are built.
