file(REMOVE_RECURSE
  "CMakeFiles/WorkloadTest.dir/WorkloadTest.cpp.o"
  "CMakeFiles/WorkloadTest.dir/WorkloadTest.cpp.o.d"
  "WorkloadTest"
  "WorkloadTest.pdb"
  "WorkloadTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/WorkloadTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
