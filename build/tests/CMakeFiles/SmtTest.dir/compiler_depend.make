# Empty compiler generated dependencies file for SmtTest.
# This may be replaced when dependencies are built.
