file(REMOVE_RECURSE
  "CMakeFiles/SmtTest.dir/SmtTest.cpp.o"
  "CMakeFiles/SmtTest.dir/SmtTest.cpp.o.d"
  "SmtTest"
  "SmtTest.pdb"
  "SmtTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SmtTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
