# Empty compiler generated dependencies file for AreaTest.
# This may be replaced when dependencies are built.
