file(REMOVE_RECURSE
  "AreaTest"
  "AreaTest.pdb"
  "AreaTest[1]_tests.cmake"
  "CMakeFiles/AreaTest.dir/AreaTest.cpp.o"
  "CMakeFiles/AreaTest.dir/AreaTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AreaTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
