file(REMOVE_RECURSE
  "CMakeFiles/SeqCoreTest.dir/SeqCoreTest.cpp.o"
  "CMakeFiles/SeqCoreTest.dir/SeqCoreTest.cpp.o.d"
  "SeqCoreTest"
  "SeqCoreTest.pdb"
  "SeqCoreTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SeqCoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
