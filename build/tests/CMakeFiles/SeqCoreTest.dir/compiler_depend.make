# Empty compiler generated dependencies file for SeqCoreTest.
# This may be replaced when dependencies are built.
