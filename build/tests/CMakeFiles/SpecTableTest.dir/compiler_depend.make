# Empty compiler generated dependencies file for SpecTableTest.
# This may be replaced when dependencies are built.
