file(REMOVE_RECURSE
  "CMakeFiles/SpecTableTest.dir/SpecTableTest.cpp.o"
  "CMakeFiles/SpecTableTest.dir/SpecTableTest.cpp.o.d"
  "SpecTableTest"
  "SpecTableTest.pdb"
  "SpecTableTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SpecTableTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
