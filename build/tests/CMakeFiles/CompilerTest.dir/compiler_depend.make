# Empty compiler generated dependencies file for CompilerTest.
# This may be replaced when dependencies are built.
