file(REMOVE_RECURSE
  "CMakeFiles/CompilerTest.dir/CompilerTest.cpp.o"
  "CMakeFiles/CompilerTest.dir/CompilerTest.cpp.o.d"
  "CompilerTest"
  "CompilerTest.pdb"
  "CompilerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CompilerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
