file(REMOVE_RECURSE
  "CMakeFiles/ParserTest.dir/ParserTest.cpp.o"
  "CMakeFiles/ParserTest.dir/ParserTest.cpp.o.d"
  "ParserTest"
  "ParserTest.pdb"
  "ParserTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParserTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
