# Empty dependencies file for ParserTest.
# This may be replaced when dependencies are built.
