file(REMOVE_RECURSE
  "BackendTest"
  "BackendTest.pdb"
  "BackendTest[1]_tests.cmake"
  "CMakeFiles/BackendTest.dir/BackendTest.cpp.o"
  "CMakeFiles/BackendTest.dir/BackendTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BackendTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
