# Empty compiler generated dependencies file for BackendTest.
# This may be replaced when dependencies are built.
