file(REMOVE_RECURSE
  "CMakeFiles/StageGraphTest.dir/StageGraphTest.cpp.o"
  "CMakeFiles/StageGraphTest.dir/StageGraphTest.cpp.o.d"
  "StageGraphTest"
  "StageGraphTest.pdb"
  "StageGraphTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StageGraphTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
