# Empty compiler generated dependencies file for StageGraphTest.
# This may be replaced when dependencies are built.
