# Empty compiler generated dependencies file for DiagnosticsTest.
# This may be replaced when dependencies are built.
