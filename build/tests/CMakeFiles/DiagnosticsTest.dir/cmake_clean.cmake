file(REMOVE_RECURSE
  "CMakeFiles/DiagnosticsTest.dir/DiagnosticsTest.cpp.o"
  "CMakeFiles/DiagnosticsTest.dir/DiagnosticsTest.cpp.o.d"
  "DiagnosticsTest"
  "DiagnosticsTest.pdb"
  "DiagnosticsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DiagnosticsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
