# Empty compiler generated dependencies file for ParserFuzzTest.
# This may be replaced when dependencies are built.
