file(REMOVE_RECURSE
  "CMakeFiles/ParserFuzzTest.dir/ParserFuzzTest.cpp.o"
  "CMakeFiles/ParserFuzzTest.dir/ParserFuzzTest.cpp.o.d"
  "ParserFuzzTest"
  "ParserFuzzTest.pdb"
  "ParserFuzzTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParserFuzzTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
