file(REMOVE_RECURSE
  "CMakeFiles/TypeCheckerTest.dir/TypeCheckerTest.cpp.o"
  "CMakeFiles/TypeCheckerTest.dir/TypeCheckerTest.cpp.o.d"
  "TypeCheckerTest"
  "TypeCheckerTest.pdb"
  "TypeCheckerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TypeCheckerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
