# Empty dependencies file for TypeCheckerTest.
# This may be replaced when dependencies are built.
