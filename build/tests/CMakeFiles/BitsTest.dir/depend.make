# Empty dependencies file for BitsTest.
# This may be replaced when dependencies are built.
