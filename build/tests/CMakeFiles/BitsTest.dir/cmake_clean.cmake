file(REMOVE_RECURSE
  "BitsTest"
  "BitsTest.pdb"
  "BitsTest[1]_tests.cmake"
  "CMakeFiles/BitsTest.dir/BitsTest.cpp.o"
  "CMakeFiles/BitsTest.dir/BitsTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BitsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
