# Empty compiler generated dependencies file for LockTest.
# This may be replaced when dependencies are built.
