file(REMOVE_RECURSE
  "CMakeFiles/LockTest.dir/LockTest.cpp.o"
  "CMakeFiles/LockTest.dir/LockTest.cpp.o.d"
  "LockTest"
  "LockTest.pdb"
  "LockTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LockTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
