# Empty compiler generated dependencies file for FuzzTest.
# This may be replaced when dependencies are built.
