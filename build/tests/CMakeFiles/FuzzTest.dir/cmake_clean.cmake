file(REMOVE_RECURSE
  "CMakeFiles/FuzzTest.dir/FuzzTest.cpp.o"
  "CMakeFiles/FuzzTest.dir/FuzzTest.cpp.o.d"
  "FuzzTest"
  "FuzzTest.pdb"
  "FuzzTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FuzzTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
