# Empty compiler generated dependencies file for RiscvTest.
# This may be replaced when dependencies are built.
