file(REMOVE_RECURSE
  "CMakeFiles/RiscvTest.dir/RiscvTest.cpp.o"
  "CMakeFiles/RiscvTest.dir/RiscvTest.cpp.o.d"
  "RiscvTest"
  "RiscvTest.pdb"
  "RiscvTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RiscvTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
