file(REMOVE_RECURSE
  "CMakeFiles/RegionTest.dir/RegionTest.cpp.o"
  "CMakeFiles/RegionTest.dir/RegionTest.cpp.o.d"
  "RegionTest"
  "RegionTest.pdb"
  "RegionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RegionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
