# Empty dependencies file for RegionTest.
# This may be replaced when dependencies are built.
