# Empty dependencies file for pdl_area.
# This may be replaced when dependencies are built.
