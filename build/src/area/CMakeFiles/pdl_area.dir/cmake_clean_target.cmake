file(REMOVE_RECURSE
  "libpdl_area.a"
)
