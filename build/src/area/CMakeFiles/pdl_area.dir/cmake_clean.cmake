file(REMOVE_RECURSE
  "CMakeFiles/pdl_area.dir/AreaModel.cpp.o"
  "CMakeFiles/pdl_area.dir/AreaModel.cpp.o.d"
  "libpdl_area.a"
  "libpdl_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
