# Empty compiler generated dependencies file for pdl_cores.
# This may be replaced when dependencies are built.
