file(REMOVE_RECURSE
  "CMakeFiles/pdl_cores.dir/Core.cpp.o"
  "CMakeFiles/pdl_cores.dir/Core.cpp.o.d"
  "CMakeFiles/pdl_cores.dir/CoreSources.cpp.o"
  "CMakeFiles/pdl_cores.dir/CoreSources.cpp.o.d"
  "CMakeFiles/pdl_cores.dir/SodorModel.cpp.o"
  "CMakeFiles/pdl_cores.dir/SodorModel.cpp.o.d"
  "libpdl_cores.a"
  "libpdl_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
