file(REMOVE_RECURSE
  "libpdl_cores.a"
)
