file(REMOVE_RECURSE
  "CMakeFiles/pdl_smt.dir/FormulaContext.cpp.o"
  "CMakeFiles/pdl_smt.dir/FormulaContext.cpp.o.d"
  "CMakeFiles/pdl_smt.dir/Solver.cpp.o"
  "CMakeFiles/pdl_smt.dir/Solver.cpp.o.d"
  "libpdl_smt.a"
  "libpdl_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
