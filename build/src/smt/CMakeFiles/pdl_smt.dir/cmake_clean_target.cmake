file(REMOVE_RECURSE
  "libpdl_smt.a"
)
