# Empty compiler generated dependencies file for pdl_smt.
# This may be replaced when dependencies are built.
