
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/Compiler.cpp" "src/passes/CMakeFiles/pdl_passes.dir/Compiler.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/Compiler.cpp.o.d"
  "/root/repo/src/passes/Liveness.cpp" "src/passes/CMakeFiles/pdl_passes.dir/Liveness.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/Liveness.cpp.o.d"
  "/root/repo/src/passes/LockChecker.cpp" "src/passes/CMakeFiles/pdl_passes.dir/LockChecker.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/LockChecker.cpp.o.d"
  "/root/repo/src/passes/PathCondition.cpp" "src/passes/CMakeFiles/pdl_passes.dir/PathCondition.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/PathCondition.cpp.o.d"
  "/root/repo/src/passes/SeqExtract.cpp" "src/passes/CMakeFiles/pdl_passes.dir/SeqExtract.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/SeqExtract.cpp.o.d"
  "/root/repo/src/passes/SpecChecker.cpp" "src/passes/CMakeFiles/pdl_passes.dir/SpecChecker.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/SpecChecker.cpp.o.d"
  "/root/repo/src/passes/StageGraph.cpp" "src/passes/CMakeFiles/pdl_passes.dir/StageGraph.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/StageGraph.cpp.o.d"
  "/root/repo/src/passes/TypeChecker.cpp" "src/passes/CMakeFiles/pdl_passes.dir/TypeChecker.cpp.o" "gcc" "src/passes/CMakeFiles/pdl_passes.dir/TypeChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdl/CMakeFiles/pdl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/pdl_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
