# Empty dependencies file for pdl_passes.
# This may be replaced when dependencies are built.
