file(REMOVE_RECURSE
  "CMakeFiles/pdl_passes.dir/Compiler.cpp.o"
  "CMakeFiles/pdl_passes.dir/Compiler.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/Liveness.cpp.o"
  "CMakeFiles/pdl_passes.dir/Liveness.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/LockChecker.cpp.o"
  "CMakeFiles/pdl_passes.dir/LockChecker.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/PathCondition.cpp.o"
  "CMakeFiles/pdl_passes.dir/PathCondition.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/SeqExtract.cpp.o"
  "CMakeFiles/pdl_passes.dir/SeqExtract.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/SpecChecker.cpp.o"
  "CMakeFiles/pdl_passes.dir/SpecChecker.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/StageGraph.cpp.o"
  "CMakeFiles/pdl_passes.dir/StageGraph.cpp.o.d"
  "CMakeFiles/pdl_passes.dir/TypeChecker.cpp.o"
  "CMakeFiles/pdl_passes.dir/TypeChecker.cpp.o.d"
  "libpdl_passes.a"
  "libpdl_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
