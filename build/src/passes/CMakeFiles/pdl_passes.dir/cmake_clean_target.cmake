file(REMOVE_RECURSE
  "libpdl_passes.a"
)
