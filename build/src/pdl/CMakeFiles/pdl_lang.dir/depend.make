# Empty dependencies file for pdl_lang.
# This may be replaced when dependencies are built.
