file(REMOVE_RECURSE
  "libpdl_lang.a"
)
