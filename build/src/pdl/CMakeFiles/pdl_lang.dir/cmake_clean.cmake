file(REMOVE_RECURSE
  "CMakeFiles/pdl_lang.dir/AST.cpp.o"
  "CMakeFiles/pdl_lang.dir/AST.cpp.o.d"
  "CMakeFiles/pdl_lang.dir/Lexer.cpp.o"
  "CMakeFiles/pdl_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/pdl_lang.dir/Parser.cpp.o"
  "CMakeFiles/pdl_lang.dir/Parser.cpp.o.d"
  "libpdl_lang.a"
  "libpdl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
