file(REMOVE_RECURSE
  "libpdl_workloads.a"
)
