file(REMOVE_RECURSE
  "CMakeFiles/pdl_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/pdl_workloads.dir/Workloads.cpp.o.d"
  "libpdl_workloads.a"
  "libpdl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
