# Empty dependencies file for pdl_workloads.
# This may be replaced when dependencies are built.
