file(REMOVE_RECURSE
  "libpdl_support.a"
)
