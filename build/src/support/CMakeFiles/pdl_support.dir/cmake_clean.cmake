file(REMOVE_RECURSE
  "CMakeFiles/pdl_support.dir/Bits.cpp.o"
  "CMakeFiles/pdl_support.dir/Bits.cpp.o.d"
  "CMakeFiles/pdl_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/pdl_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/pdl_support.dir/SourceMgr.cpp.o"
  "CMakeFiles/pdl_support.dir/SourceMgr.cpp.o.d"
  "libpdl_support.a"
  "libpdl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
