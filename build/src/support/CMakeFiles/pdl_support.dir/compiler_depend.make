# Empty compiler generated dependencies file for pdl_support.
# This may be replaced when dependencies are built.
