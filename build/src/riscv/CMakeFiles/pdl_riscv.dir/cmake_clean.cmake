file(REMOVE_RECURSE
  "CMakeFiles/pdl_riscv.dir/Assembler.cpp.o"
  "CMakeFiles/pdl_riscv.dir/Assembler.cpp.o.d"
  "CMakeFiles/pdl_riscv.dir/GoldenSim.cpp.o"
  "CMakeFiles/pdl_riscv.dir/GoldenSim.cpp.o.d"
  "libpdl_riscv.a"
  "libpdl_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
