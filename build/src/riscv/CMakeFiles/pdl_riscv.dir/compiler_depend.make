# Empty compiler generated dependencies file for pdl_riscv.
# This may be replaced when dependencies are built.
