file(REMOVE_RECURSE
  "libpdl_riscv.a"
)
