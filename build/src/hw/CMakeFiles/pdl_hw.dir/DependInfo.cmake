
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/BypassQueue.cpp" "src/hw/CMakeFiles/pdl_hw.dir/BypassQueue.cpp.o" "gcc" "src/hw/CMakeFiles/pdl_hw.dir/BypassQueue.cpp.o.d"
  "/root/repo/src/hw/Extern.cpp" "src/hw/CMakeFiles/pdl_hw.dir/Extern.cpp.o" "gcc" "src/hw/CMakeFiles/pdl_hw.dir/Extern.cpp.o.d"
  "/root/repo/src/hw/QueueLock.cpp" "src/hw/CMakeFiles/pdl_hw.dir/QueueLock.cpp.o" "gcc" "src/hw/CMakeFiles/pdl_hw.dir/QueueLock.cpp.o.d"
  "/root/repo/src/hw/RenameLock.cpp" "src/hw/CMakeFiles/pdl_hw.dir/RenameLock.cpp.o" "gcc" "src/hw/CMakeFiles/pdl_hw.dir/RenameLock.cpp.o.d"
  "/root/repo/src/hw/SpecTable.cpp" "src/hw/CMakeFiles/pdl_hw.dir/SpecTable.cpp.o" "gcc" "src/hw/CMakeFiles/pdl_hw.dir/SpecTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
