file(REMOVE_RECURSE
  "CMakeFiles/pdl_hw.dir/BypassQueue.cpp.o"
  "CMakeFiles/pdl_hw.dir/BypassQueue.cpp.o.d"
  "CMakeFiles/pdl_hw.dir/Extern.cpp.o"
  "CMakeFiles/pdl_hw.dir/Extern.cpp.o.d"
  "CMakeFiles/pdl_hw.dir/QueueLock.cpp.o"
  "CMakeFiles/pdl_hw.dir/QueueLock.cpp.o.d"
  "CMakeFiles/pdl_hw.dir/RenameLock.cpp.o"
  "CMakeFiles/pdl_hw.dir/RenameLock.cpp.o.d"
  "CMakeFiles/pdl_hw.dir/SpecTable.cpp.o"
  "CMakeFiles/pdl_hw.dir/SpecTable.cpp.o.d"
  "libpdl_hw.a"
  "libpdl_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
