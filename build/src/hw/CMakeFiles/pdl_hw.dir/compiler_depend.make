# Empty compiler generated dependencies file for pdl_hw.
# This may be replaced when dependencies are built.
