file(REMOVE_RECURSE
  "libpdl_hw.a"
)
