# Empty compiler generated dependencies file for pdl_backend.
# This may be replaced when dependencies are built.
