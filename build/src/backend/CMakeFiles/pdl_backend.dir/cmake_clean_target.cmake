file(REMOVE_RECURSE
  "libpdl_backend.a"
)
