file(REMOVE_RECURSE
  "CMakeFiles/pdl_backend.dir/Eval.cpp.o"
  "CMakeFiles/pdl_backend.dir/Eval.cpp.o.d"
  "CMakeFiles/pdl_backend.dir/SeqInterp.cpp.o"
  "CMakeFiles/pdl_backend.dir/SeqInterp.cpp.o.d"
  "CMakeFiles/pdl_backend.dir/System.cpp.o"
  "CMakeFiles/pdl_backend.dir/System.cpp.o.d"
  "libpdl_backend.a"
  "libpdl_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdl_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
