file(REMOVE_RECURSE
  "CMakeFiles/cache_pipeline.dir/cache_pipeline.cpp.o"
  "CMakeFiles/cache_pipeline.dir/cache_pipeline.cpp.o.d"
  "cache_pipeline"
  "cache_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
