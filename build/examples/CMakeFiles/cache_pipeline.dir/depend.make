# Empty dependencies file for cache_pipeline.
# This may be replaced when dependencies are built.
