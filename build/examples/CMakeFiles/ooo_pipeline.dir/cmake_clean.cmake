file(REMOVE_RECURSE
  "CMakeFiles/ooo_pipeline.dir/ooo_pipeline.cpp.o"
  "CMakeFiles/ooo_pipeline.dir/ooo_pipeline.cpp.o.d"
  "ooo_pipeline"
  "ooo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
