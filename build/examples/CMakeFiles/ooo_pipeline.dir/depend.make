# Empty dependencies file for ooo_pipeline.
# This may be replaced when dependencies are built.
