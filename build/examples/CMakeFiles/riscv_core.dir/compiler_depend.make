# Empty compiler generated dependencies file for riscv_core.
# This may be replaced when dependencies are built.
