file(REMOVE_RECURSE
  "CMakeFiles/riscv_core.dir/riscv_core.cpp.o"
  "CMakeFiles/riscv_core.dir/riscv_core.cpp.o.d"
  "riscv_core"
  "riscv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
