
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/riscv_core.cpp" "examples/CMakeFiles/riscv_core.dir/riscv_core.cpp.o" "gcc" "examples/CMakeFiles/riscv_core.dir/riscv_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cores/CMakeFiles/pdl_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/pdl_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/pdl_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/pdl/CMakeFiles/pdl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/pdl_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pdl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/pdl_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
