# Empty dependencies file for pdlc.
# This may be replaced when dependencies are built.
