file(REMOVE_RECURSE
  "CMakeFiles/pdlc.dir/pdlc.cpp.o"
  "CMakeFiles/pdlc.dir/pdlc.cpp.o.d"
  "pdlc"
  "pdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
