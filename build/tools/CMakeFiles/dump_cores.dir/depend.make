# Empty dependencies file for dump_cores.
# This may be replaced when dependencies are built.
