file(REMOVE_RECURSE
  "CMakeFiles/dump_cores.dir/dump_cores.cpp.o"
  "CMakeFiles/dump_cores.dir/dump_cores.cpp.o.d"
  "dump_cores"
  "dump_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
