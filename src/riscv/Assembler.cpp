//===- Assembler.cpp - Two-pass RV32I/M assembler ---------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "riscv/Assembler.h"

#include "riscv/Encoding.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace pdl;
using namespace pdl::riscv;

namespace {

[[noreturn]] void asmFatal(unsigned Line, const std::string &Msg) {
  std::fprintf(stderr, "assembler error: line %u: %s\n", Line, Msg.c_str());
  std::abort();
}

unsigned regNumber(const std::string &Name, unsigned Line) {
  static const std::map<std::string, unsigned> Abi = {
      {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},  {"tp", 4},
      {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},  {"fp", 8},
      {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12}, {"a3", 13},
      {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17}, {"s2", 18},
      {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22}, {"s7", 23},
      {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
      {"t4", 29},  {"t5", 30}, {"t6", 31}};
  if (Name.size() >= 2 && Name[0] == 'x' &&
      std::isdigit(static_cast<unsigned char>(Name[1]))) {
    unsigned N = std::strtoul(Name.c_str() + 1, nullptr, 10);
    if (N < 32)
      return N;
  }
  auto It = Abi.find(Name);
  if (It == Abi.end())
    asmFatal(Line, "unknown register '" + Name + "'");
  return It->second;
}

struct Operand {
  std::string Text;
};

/// One parsed source line: a mnemonic plus comma-separated operands.
struct AsmLine {
  unsigned LineNo = 0;
  std::string Mnemonic;
  std::vector<std::string> Ops;
};

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

} // namespace

std::vector<uint32_t> riscv::assemble(const std::string &Source,
                                      uint32_t BaseAddr) {
  // Pass 0: strip comments, split labels from instructions.
  std::vector<AsmLine> Lines;
  std::map<std::string, uint32_t> Labels;
  uint32_t Addr = BaseAddr;

  auto SizeOf = [](const AsmLine &L) -> uint32_t {
    // li/la always expand to lui+addi so label addresses are stable.
    return (L.Mnemonic == "li" || L.Mnemonic == "la") ? 8 : 4;
  };

  std::istringstream In(Source);
  std::string Raw;
  unsigned LineNo = 0;
  while (std::getline(In, Raw)) {
    ++LineNo;
    size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.resize(Hash);
    size_t Slash = Raw.find("//");
    if (Slash != std::string::npos)
      Raw.resize(Slash);
    std::string Text = trim(Raw);
    // Peel off any leading labels.
    size_t Colon;
    while ((Colon = Text.find(':')) != std::string::npos &&
           Text.find_first_of(" \t(") > Colon) {
      std::string Label = trim(Text.substr(0, Colon));
      if (Label.empty() || Labels.count(Label))
        asmFatal(LineNo, "bad or duplicate label '" + Label + "'");
      Labels[Label] = Addr;
      Text = trim(Text.substr(Colon + 1));
    }
    if (Text.empty())
      continue;

    AsmLine L;
    L.LineNo = LineNo;
    size_t Sp = Text.find_first_of(" \t");
    L.Mnemonic = Text.substr(0, Sp);
    if (Sp != std::string::npos) {
      std::string Rest = Text.substr(Sp + 1);
      size_t Pos = 0;
      while (Pos < Rest.size()) {
        size_t Comma = Rest.find(',', Pos);
        std::string Op = trim(Rest.substr(
            Pos, Comma == std::string::npos ? std::string::npos
                                            : Comma - Pos));
        if (!Op.empty())
          L.Ops.push_back(Op);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    }
    Addr += SizeOf(L);
    Lines.push_back(std::move(L));
  }

  // Pass 1: encode.
  auto ParseInt = [&](const std::string &S, unsigned Line) -> int64_t {
    // Labels may be used where absolute values are accepted (li/la/.word).
    auto It = Labels.find(S);
    if (It != Labels.end())
      return It->second;
    char *End = nullptr;
    long long V = std::strtoll(S.c_str(), &End, 0);
    if (End == S.c_str() || *End != '\0')
      asmFatal(Line, "bad integer or unknown label '" + S + "'");
    return V;
  };
  auto LabelAddr = [&](const std::string &S, unsigned Line) -> uint32_t {
    auto It = Labels.find(S);
    if (It == Labels.end())
      asmFatal(Line, "unknown label '" + S + "'");
    return It->second;
  };
  // Parses "imm(base)".
  auto ParseMem = [&](const std::string &S, unsigned Line, int32_t &Imm,
                      unsigned &Base) {
    size_t L = S.find('(');
    size_t R = S.find(')');
    if (L == std::string::npos || R == std::string::npos || R < L)
      asmFatal(Line, "expected imm(base), got '" + S + "'");
    std::string ImmS = trim(S.substr(0, L));
    Imm = ImmS.empty() ? 0
                       : static_cast<int32_t>(ParseInt(ImmS, Line));
    Base = regNumber(trim(S.substr(L + 1, R - L - 1)), Line);
  };

  std::vector<uint32_t> Out;
  Addr = BaseAddr;
  for (const AsmLine &L : Lines) {
    unsigned Ln = L.LineNo;
    auto Need = [&](size_t N) {
      if (L.Ops.size() != N)
        asmFatal(Ln, L.Mnemonic + " expects " + std::to_string(N) +
                         " operands");
    };
    auto Reg = [&](size_t I) { return regNumber(L.Ops[I], Ln); };
    auto Imm = [&](size_t I) {
      return static_cast<int32_t>(ParseInt(L.Ops[I], Ln));
    };
    auto Emit = [&](uint32_t Word) {
      Out.push_back(Word);
      Addr += 4;
    };
    auto EmitLiLa = [&](unsigned Rd, int64_t Value) {
      uint32_t V = static_cast<uint32_t>(Value);
      int32_t Lo = static_cast<int32_t>(V << 20) >> 20; // low 12, signed
      uint32_t Hi = V - static_cast<uint32_t>(Lo);
      Emit(encU(static_cast<int32_t>(Hi), Rd, OpLui));
      Emit(encI(Lo, Rd, F3AddSub, Rd, OpImm));
    };

    const std::string &M = L.Mnemonic;
    if (M == ".word") {
      Need(1);
      Emit(static_cast<uint32_t>(ParseInt(L.Ops[0], Ln)));
    } else if (M == "nop") {
      Emit(addi(0, 0, 0));
    } else if (M == "mv") {
      Need(2);
      Emit(addi(Reg(0), Reg(1), 0));
    } else if (M == "li" || M == "la") {
      Need(2);
      EmitLiLa(Reg(0), ParseInt(L.Ops[1], Ln));
    } else if (M == "j") {
      Need(1);
      Emit(encJ(static_cast<int32_t>(LabelAddr(L.Ops[0], Ln) - Addr), 0,
                OpJal));
    } else if (M == "jal") {
      if (L.Ops.size() == 1) {
        Emit(encJ(static_cast<int32_t>(LabelAddr(L.Ops[0], Ln) - Addr), 1,
                  OpJal));
      } else {
        Need(2);
        Emit(encJ(static_cast<int32_t>(LabelAddr(L.Ops[1], Ln) - Addr),
                  Reg(0), OpJal));
      }
    } else if (M == "jalr") {
      if (L.Ops.size() == 1) {
        Emit(encI(0, Reg(0), 0, 0, OpJalr));
      } else {
        Need(3);
        Emit(encI(Imm(2), Reg(1), 0, Reg(0), OpJalr));
      }
    } else if (M == "ret") {
      Emit(encI(0, 1, 0, 0, OpJalr));
    } else if (M == "lui") {
      Need(2);
      Emit(encU(static_cast<int32_t>(ParseInt(L.Ops[1], Ln) << 12), Reg(0),
                OpLui));
    } else if (M == "auipc") {
      Need(2);
      Emit(encU(static_cast<int32_t>(ParseInt(L.Ops[1], Ln) << 12), Reg(0),
                OpAuipc));
    } else if (M == "lw") {
      Need(2);
      int32_t Off;
      unsigned Base;
      ParseMem(L.Ops[1], Ln, Off, Base);
      Emit(lw(Reg(0), Base, Off));
    } else if (M == "sw") {
      Need(2);
      int32_t Off;
      unsigned Base;
      ParseMem(L.Ops[1], Ln, Off, Base);
      Emit(sw(Reg(0), Base, Off));
    } else if (M == "beq" || M == "bne" || M == "blt" || M == "bge" ||
               M == "bltu" || M == "bgeu") {
      Need(3);
      uint32_t F3 = M == "beq"    ? F3Beq
                    : M == "bne"  ? F3Bne
                    : M == "blt"  ? F3Blt
                    : M == "bge"  ? F3Bge
                    : M == "bltu" ? F3Bltu
                                  : F3Bgeu;
      int32_t Off = static_cast<int32_t>(LabelAddr(L.Ops[2], Ln) - Addr);
      Emit(encB(Off, Reg(1), Reg(0), F3, OpBranch));
    } else if (M == "addi" || M == "slti" || M == "sltiu" || M == "xori" ||
               M == "ori" || M == "andi" || M == "slli" || M == "srli" ||
               M == "srai") {
      Need(3);
      uint32_t F3 = M == "addi"    ? F3AddSub
                    : M == "slti"  ? F3Slt
                    : M == "sltiu" ? F3Sltu
                    : M == "xori"  ? F3Xor
                    : M == "ori"   ? F3Or
                    : M == "andi"  ? F3And
                    : M == "slli"  ? F3Sll
                                   : F3SrlSra;
      int32_t I = Imm(2);
      if (M == "slli" || M == "srli" || M == "srai") {
        if (I < 0 || I > 31)
          asmFatal(Ln, "shift amount out of range");
        if (M == "srai")
          I |= 0x400; // funct7 bit 30 in the immediate field
      }
      Emit(encI(I, Reg(1), F3, Reg(0), OpImm));
    } else if (M == "add" || M == "sub" || M == "sll" || M == "slt" ||
               M == "sltu" || M == "xor" || M == "srl" || M == "sra" ||
               M == "or" || M == "and") {
      Need(3);
      uint32_t F7 = (M == "sub" || M == "sra") ? 0x20 : 0;
      uint32_t F3 = (M == "add" || M == "sub") ? F3AddSub
                    : M == "sll"               ? F3Sll
                    : M == "slt"               ? F3Slt
                    : M == "sltu"              ? F3Sltu
                    : M == "xor"               ? F3Xor
                    : (M == "srl" || M == "sra") ? F3SrlSra
                    : M == "or"                ? F3Or
                                               : F3And;
      Emit(encR(F7, Reg(2), Reg(1), F3, Reg(0), OpReg));
    } else if (M == "mul" || M == "mulh" || M == "mulhsu" || M == "mulhu" ||
               M == "div" || M == "divu" || M == "rem" || M == "remu") {
      Need(3);
      uint32_t F3 = M == "mul"      ? F3Mul
                    : M == "mulh"   ? F3Mulh
                    : M == "mulhsu" ? F3Mulhsu
                    : M == "mulhu"  ? F3Mulhu
                    : M == "div"    ? F3Div
                    : M == "divu"   ? F3Divu
                    : M == "rem"    ? F3Rem
                                    : F3Remu;
      Emit(encR(1, Reg(2), Reg(1), F3, Reg(0), OpReg));
    } else {
      asmFatal(Ln, "unknown mnemonic '" + M + "'");
    }
  }
  return Out;
}
