//===- Encoding.h - RV32I/M instruction encodings --------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction encodings for the ISA subset the reproduced cores implement:
/// RV32I integer ops, word loads/stores, branches, jumps, LUI/AUIPC, plus
/// the M extension's multiply/divide. Sub-word memory accesses, FENCE,
/// and SYSTEM instructions are outside the subset (the paper's kernels are
/// regenerated as word-oriented assembly; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_RISCV_ENCODING_H
#define PDL_RISCV_ENCODING_H

#include <cassert>
#include <cstdint>

namespace pdl {
namespace riscv {

// Major opcodes.
enum Opcode : uint32_t {
  OpLui = 0b0110111,
  OpAuipc = 0b0010111,
  OpJal = 0b1101111,
  OpJalr = 0b1100111,
  OpBranch = 0b1100011,
  OpLoad = 0b0000011,
  OpStore = 0b0100011,
  OpImm = 0b0010011,
  OpReg = 0b0110011,
};

// funct3 values.
enum Funct3 : uint32_t {
  F3AddSub = 0b000,
  F3Sll = 0b001,
  F3Slt = 0b010,
  F3Sltu = 0b011,
  F3Xor = 0b100,
  F3SrlSra = 0b101,
  F3Or = 0b110,
  F3And = 0b111,
  F3Beq = 0b000,
  F3Bne = 0b001,
  F3Blt = 0b100,
  F3Bge = 0b101,
  F3Bltu = 0b110,
  F3Bgeu = 0b111,
  F3Lw = 0b010,
  F3Sw = 0b010,
  // M extension (OpReg with funct7 = 1).
  F3Mul = 0b000,
  F3Mulh = 0b001,
  F3Mulhsu = 0b010,
  F3Mulhu = 0b011,
  F3Div = 0b100,
  F3Divu = 0b101,
  F3Rem = 0b110,
  F3Remu = 0b111,
};

inline uint32_t fieldRd(uint32_t I) { return (I >> 7) & 31; }
inline uint32_t fieldRs1(uint32_t I) { return (I >> 15) & 31; }
inline uint32_t fieldRs2(uint32_t I) { return (I >> 20) & 31; }
inline uint32_t fieldF3(uint32_t I) { return (I >> 12) & 7; }
inline uint32_t fieldF7(uint32_t I) { return I >> 25; }
inline uint32_t fieldOpcode(uint32_t I) { return I & 127; }

inline int32_t immI(uint32_t I) { return static_cast<int32_t>(I) >> 20; }
inline int32_t immS(uint32_t I) {
  return ((static_cast<int32_t>(I) >> 25) << 5) | fieldRd(I);
}
inline int32_t immB(uint32_t I) {
  int32_t Imm = ((static_cast<int32_t>(I) >> 31) << 12) |
                (((I >> 7) & 1) << 11) | (((I >> 25) & 63) << 5) |
                (((I >> 8) & 15) << 1);
  return Imm;
}
inline int32_t immU(uint32_t I) { return static_cast<int32_t>(I & ~0xfffu); }
inline int32_t immJ(uint32_t I) {
  return ((static_cast<int32_t>(I) >> 31) << 20) | (I & 0xff000) |
         (((I >> 20) & 1) << 11) | (((I >> 21) & 0x3ff) << 1);
}

// Instruction builders.
inline uint32_t encR(uint32_t F7, uint32_t Rs2, uint32_t Rs1, uint32_t F3,
                     uint32_t Rd, uint32_t Op) {
  return (F7 << 25) | (Rs2 << 20) | (Rs1 << 15) | (F3 << 12) | (Rd << 7) |
         Op;
}
inline uint32_t encI(int32_t Imm, uint32_t Rs1, uint32_t F3, uint32_t Rd,
                     uint32_t Op) {
  assert(Imm >= -2048 && Imm < 2048 && "I-immediate out of range");
  return (static_cast<uint32_t>(Imm & 0xfff) << 20) | (Rs1 << 15) |
         (F3 << 12) | (Rd << 7) | Op;
}
inline uint32_t encS(int32_t Imm, uint32_t Rs2, uint32_t Rs1, uint32_t F3,
                     uint32_t Op) {
  assert(Imm >= -2048 && Imm < 2048 && "S-immediate out of range");
  uint32_t U = static_cast<uint32_t>(Imm & 0xfff);
  return ((U >> 5) << 25) | (Rs2 << 20) | (Rs1 << 15) | (F3 << 12) |
         ((U & 31) << 7) | Op;
}
inline uint32_t encB(int32_t Imm, uint32_t Rs2, uint32_t Rs1, uint32_t F3,
                     uint32_t Op) {
  assert(Imm >= -4096 && Imm < 4096 && (Imm & 1) == 0 &&
         "B-immediate out of range");
  uint32_t U = static_cast<uint32_t>(Imm);
  return (((U >> 12) & 1) << 31) | (((U >> 5) & 63) << 25) | (Rs2 << 20) |
         (Rs1 << 15) | (F3 << 12) | (((U >> 1) & 15) << 8) |
         (((U >> 11) & 1) << 7) | Op;
}
inline uint32_t encU(int32_t Imm, uint32_t Rd, uint32_t Op) {
  return (static_cast<uint32_t>(Imm) & ~0xfffu) | (Rd << 7) | Op;
}
inline uint32_t encJ(int32_t Imm, uint32_t Rd, uint32_t Op) {
  assert(Imm >= -(1 << 20) && Imm < (1 << 20) && (Imm & 1) == 0 &&
         "J-immediate out of range");
  uint32_t U = static_cast<uint32_t>(Imm);
  return (((U >> 20) & 1) << 31) | (((U >> 1) & 0x3ff) << 21) |
         (((U >> 11) & 1) << 20) | (((U >> 12) & 0xff) << 12) | (Rd << 7) |
         Op;
}

// Convenience builders used by tests and workload generators.
inline uint32_t addi(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return encI(Imm, Rs1, F3AddSub, Rd, OpImm);
}
inline uint32_t add(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return encR(0, Rs2, Rs1, F3AddSub, Rd, OpReg);
}
inline uint32_t sub(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return encR(0x20, Rs2, Rs1, F3AddSub, Rd, OpReg);
}
inline uint32_t lw(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return encI(Imm, Rs1, F3Lw, Rd, OpLoad);
}
inline uint32_t sw(unsigned Rs2, unsigned Rs1, int32_t Imm) {
  return encS(Imm, Rs2, Rs1, F3Sw, OpStore);
}
inline uint32_t beq(unsigned Rs1, unsigned Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, F3Beq, OpBranch);
}
inline uint32_t bne(unsigned Rs1, unsigned Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, F3Bne, OpBranch);
}
inline uint32_t jal(unsigned Rd, int32_t Off) { return encJ(Off, Rd, OpJal); }
inline uint32_t lui(unsigned Rd, int32_t Imm) { return encU(Imm, Rd, OpLui); }
inline uint32_t mul(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return encR(1, Rs2, Rs1, F3Mul, Rd, OpReg);
}
inline uint32_t div(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return encR(1, Rs2, Rs1, F3Div, Rd, OpReg);
}

} // namespace riscv
} // namespace pdl

#endif // PDL_RISCV_ENCODING_H
