//===- Assembler.h - Two-pass RV32I/M assembler ----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small two-pass assembler for the benchmark kernels. Supported syntax:
///
///   label:                     # labels (own line or before an instr)
///   addi x1, sp, -4            # numeric and ABI register names
///   lw   a0, 8(s1)             # loads/stores with offset(base)
///   beq  a0, zero, done        # branch / jal targets are labels
///   li   t0, 0x12345678        # pseudo: always lui+addi (2 words)
///   la   t0, buffer            # pseudo: absolute address, lui+addi
///   mv / j / nop / ret         # common pseudos
///   .word 42                   # literal data words
///
/// Comments start with '#' or '//'. Errors abort with a message including
/// the line number (kernels are internal inputs, not user programs).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_RISCV_ASSEMBLER_H
#define PDL_RISCV_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <vector>

namespace pdl {
namespace riscv {

/// Assembles \p Source into instruction words. \p BaseAddr is the byte
/// address of the first word (labels resolve relative to it).
std::vector<uint32_t> assemble(const std::string &Source,
                               uint32_t BaseAddr = 0);

} // namespace riscv
} // namespace pdl

#endif // PDL_RISCV_ASSEMBLER_H
