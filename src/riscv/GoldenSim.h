//===- GoldenSim.h - Architectural RV32I/M reference simulator -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-instruction-at-a-time RV32I/M interpreter over word-addressed
/// memories, matching the geometry of the PDL cores (separate instruction
/// and data word memories, single-cycle "always hit" semantics). It is the
/// architectural oracle for the processor-equivalence tests: each executed
/// instruction's register and memory writebacks are logged and compared
/// against the pipelined cores' committed traces.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_RISCV_GOLDENSIM_H
#define PDL_RISCV_GOLDENSIM_H

#include <cstdint>
#include <optional>
#include <vector>

namespace pdl {
namespace riscv {

/// What one retired instruction did.
struct CommitRecord {
  uint32_t Pc = 0;
  uint32_t Insn = 0;
  /// (rd, value) when the instruction wrote a register (rd != 0).
  std::optional<std::pair<unsigned, uint32_t>> RegWrite;
  /// (word address, value) when the instruction stored.
  std::optional<std::pair<uint32_t, uint32_t>> MemWrite;
  /// (word address, value) when the instruction loaded — consumed by the
  /// trace-driven timing models to replay data-memory traffic.
  std::optional<std::pair<uint32_t, uint32_t>> MemRead;
};

class GoldenSim {
public:
  /// Word-memory sizes as address-bit widths (2^N words each).
  GoldenSim(unsigned ImemAddrBits = 12, unsigned DmemAddrBits = 14);

  void loadProgram(const std::vector<uint32_t> &Words, uint32_t ByteBase = 0);
  void storeData(uint32_t WordAddr, uint32_t Value);
  uint32_t loadData(uint32_t WordAddr) const;
  uint32_t reg(unsigned R) const { return Regs[R]; }
  void setReg(unsigned R, uint32_t V);

  /// Execution stops when a store hits this byte address.
  void setHaltStore(uint32_t ByteAddr) { HaltAddr = ByteAddr; }

  /// Executes up to \p MaxInstrs; returns the number retired. When
  /// \p Log is non-null, appends one CommitRecord per instruction.
  uint64_t run(uint64_t MaxInstrs, std::vector<CommitRecord> *Log = nullptr);

  bool halted() const { return Halted; }
  uint32_t pc() const { return Pc; }
  void setPc(uint32_t NewPc) { Pc = NewPc; }

  /// Dynamic mix counters (used by the benchmark harness narrative).
  uint64_t takenBranches() const { return TakenBranches; }
  uint64_t loads() const { return Loads; }

private:
  uint32_t fetch(uint32_t ByteAddr) const;

  unsigned ImemBits, DmemBits;
  std::vector<uint32_t> Imem, Dmem;
  uint32_t Regs[32] = {};
  uint32_t Pc = 0;
  std::optional<uint32_t> HaltAddr;
  bool Halted = false;
  uint64_t TakenBranches = 0, Loads = 0;
};

} // namespace riscv
} // namespace pdl

#endif // PDL_RISCV_GOLDENSIM_H
