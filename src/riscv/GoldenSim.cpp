//===- GoldenSim.cpp - Architectural RV32I/M reference simulator ------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "riscv/GoldenSim.h"

#include "riscv/Encoding.h"

#include <cassert>

using namespace pdl;
using namespace pdl::riscv;

GoldenSim::GoldenSim(unsigned ImemAddrBits, unsigned DmemAddrBits)
    : ImemBits(ImemAddrBits), DmemBits(DmemAddrBits),
      Imem(size_t(1) << ImemAddrBits, 0), Dmem(size_t(1) << DmemAddrBits,
                                               0) {}

void GoldenSim::loadProgram(const std::vector<uint32_t> &Words,
                            uint32_t ByteBase) {
  assert(ByteBase % 4 == 0 && "program base must be word-aligned");
  for (size_t I = 0; I != Words.size(); ++I) {
    size_t W = (ByteBase / 4) + I;
    assert(W < Imem.size() && "program exceeds instruction memory");
    Imem[W] = Words[I];
  }
}

void GoldenSim::storeData(uint32_t WordAddr, uint32_t Value) {
  assert(WordAddr < Dmem.size() && "data address out of range");
  Dmem[WordAddr] = Value;
}

uint32_t GoldenSim::loadData(uint32_t WordAddr) const {
  assert(WordAddr < Dmem.size() && "data address out of range");
  return Dmem[WordAddr];
}

void GoldenSim::setReg(unsigned R, uint32_t V) {
  assert(R < 32);
  if (R != 0)
    Regs[R] = V;
}

uint32_t GoldenSim::fetch(uint32_t ByteAddr) const {
  uint32_t W = (ByteAddr >> 2) & ((1u << ImemBits) - 1);
  return Imem[W];
}

uint64_t GoldenSim::run(uint64_t MaxInstrs, std::vector<CommitRecord> *Log) {
  uint64_t Done = 0;
  while (Done < MaxInstrs && !Halted) {
    uint32_t I = fetch(Pc);
    CommitRecord Rec;
    Rec.Pc = Pc;
    Rec.Insn = I;

    uint32_t Op = fieldOpcode(I);
    unsigned Rd = fieldRd(I), Rs1 = fieldRs1(I), Rs2 = fieldRs2(I);
    uint32_t F3 = fieldF3(I), F7 = fieldF7(I);
    uint32_t A = Regs[Rs1], B = Regs[Rs2];
    uint32_t Next = Pc + 4;

    auto WriteRd = [&](uint32_t V) {
      if (Rd != 0) {
        Regs[Rd] = V;
        Rec.RegWrite = {Rd, V};
      }
    };
    auto AluOp = [&](uint32_t F3v, bool Alt, uint32_t X,
                     uint32_t Y) -> uint32_t {
      switch (F3v) {
      case F3AddSub:
        return Alt ? X - Y : X + Y;
      case F3Sll:
        return X << (Y & 31);
      case F3Slt:
        return static_cast<int32_t>(X) < static_cast<int32_t>(Y);
      case F3Sltu:
        return X < Y;
      case F3Xor:
        return X ^ Y;
      case F3SrlSra:
        return Alt ? static_cast<uint32_t>(static_cast<int32_t>(X) >>
                                           (Y & 31))
                   : X >> (Y & 31);
      case F3Or:
        return X | Y;
      case F3And:
        return X & Y;
      }
      return 0;
    };

    switch (Op) {
    case OpLui:
      WriteRd(static_cast<uint32_t>(immU(I)));
      break;
    case OpAuipc:
      WriteRd(Pc + static_cast<uint32_t>(immU(I)));
      break;
    case OpJal:
      WriteRd(Pc + 4);
      Next = Pc + static_cast<uint32_t>(immJ(I));
      ++TakenBranches;
      break;
    case OpJalr:
      WriteRd(Pc + 4);
      Next = (A + static_cast<uint32_t>(immI(I))) & ~1u;
      ++TakenBranches;
      break;
    case OpBranch: {
      bool Taken = false;
      switch (F3) {
      case F3Beq:
        Taken = A == B;
        break;
      case F3Bne:
        Taken = A != B;
        break;
      case F3Blt:
        Taken = static_cast<int32_t>(A) < static_cast<int32_t>(B);
        break;
      case F3Bge:
        Taken = static_cast<int32_t>(A) >= static_cast<int32_t>(B);
        break;
      case F3Bltu:
        Taken = A < B;
        break;
      case F3Bgeu:
        Taken = A >= B;
        break;
      }
      if (Taken) {
        Next = Pc + static_cast<uint32_t>(immB(I));
        ++TakenBranches;
      }
      break;
    }
    case OpLoad: {
      assert(F3 == F3Lw && "only word loads are in the ISA subset");
      uint32_t Addr = A + static_cast<uint32_t>(immI(I));
      assert(Addr % 4 == 0 && "misaligned load");
      uint32_t W = (Addr >> 2) & ((1u << DmemBits) - 1);
      WriteRd(Dmem[W]);
      Rec.MemRead = {W, Dmem[W]};
      ++Loads;
      break;
    }
    case OpStore: {
      assert(F3 == F3Sw && "only word stores are in the ISA subset");
      uint32_t Addr = A + static_cast<uint32_t>(immS(I));
      assert(Addr % 4 == 0 && "misaligned store");
      uint32_t W = (Addr >> 2) & ((1u << DmemBits) - 1);
      Dmem[W] = B;
      Rec.MemWrite = {W, B};
      if (HaltAddr && Addr == *HaltAddr)
        Halted = true;
      break;
    }
    case OpImm: {
      int32_t Imm = immI(I);
      bool Alt = F3 == F3SrlSra && (I & (1u << 30));
      uint32_t Y = (F3 == F3Sll || F3 == F3SrlSra)
                       ? (static_cast<uint32_t>(Imm) & 31)
                       : static_cast<uint32_t>(Imm);
      if (F3 == F3AddSub)
        WriteRd(A + static_cast<uint32_t>(Imm)); // no subi
      else
        WriteRd(AluOp(F3, Alt, A, Y));
      break;
    }
    case OpReg: {
      if (F7 == 1) {
        // M extension.
        int64_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
        uint64_t UA = A, UB = B;
        uint32_t V = 0;
        switch (F3) {
        case F3Mul:
          V = A * B;
          break;
        case F3Mulh:
          V = static_cast<uint32_t>((SA * SB) >> 32);
          break;
        case F3Mulhsu:
          V = static_cast<uint32_t>(
              (SA * static_cast<int64_t>(UB)) >> 32);
          break;
        case F3Mulhu:
          V = static_cast<uint32_t>((UA * UB) >> 32);
          break;
        case F3Div:
          V = B == 0 ? ~0u
              : (A == 0x80000000u && B == ~0u)
                  ? A
                  : static_cast<uint32_t>(static_cast<int32_t>(A) /
                                          static_cast<int32_t>(B));
          break;
        case F3Divu:
          V = B == 0 ? ~0u : A / B;
          break;
        case F3Rem:
          V = B == 0 ? A
              : (A == 0x80000000u && B == ~0u)
                  ? 0
                  : static_cast<uint32_t>(static_cast<int32_t>(A) %
                                          static_cast<int32_t>(B));
          break;
        case F3Remu:
          V = B == 0 ? A : A % B;
          break;
        }
        WriteRd(V);
      } else {
        WriteRd(AluOp(F3, F7 == 0x20, A, B));
      }
      break;
    }
    default:
      assert(false && "illegal instruction in the ISA subset");
    }

    Pc = Next;
    ++Done;
    if (Log)
      Log->push_back(Rec);
  }
  return Done;
}
