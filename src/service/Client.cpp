//===- Client.cpp - Thin synchronous client for pdlsimd ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pdl;
using namespace pdl::service;

SimClient::~SimClient() { close(); }

bool SimClient::connect(const std::string &SocketPath, std::string *Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path empty or longer than sun_path";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = "connect(" + SocketPath + "): " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  return true;
}

void SimClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

bool SimClient::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t W = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (W <= 0)
      return false;
    Off += size_t(W);
  }
  return true;
}

std::optional<std::string> SimClient::recvLine() {
  if (Fd < 0)
    return std::nullopt;
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return Line;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      return std::nullopt;
    Buf.append(Chunk, size_t(N));
  }
}

std::optional<obs::Json> SimClient::call(const std::string &Line,
                                         std::string *Err) {
  if (!sendLine(Line)) {
    if (Err)
      *Err = "send failed (daemon gone?)";
    return std::nullopt;
  }
  std::optional<std::string> Resp = recvLine();
  if (!Resp) {
    if (Err)
      *Err = "connection closed before response";
    return std::nullopt;
  }
  return obs::Json::parse(*Resp, Err);
}
