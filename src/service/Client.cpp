//===- Client.cpp - Thin synchronous client for pdlsimd ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>
#include <chrono>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pdl;
using namespace pdl::service;

SimClient::~SimClient() { close(); }

const char *SimClient::transportName(Transport T) {
  switch (T) {
  case Transport::Ok:
    return "ok";
  case Transport::Refused:
    return "refused";
  case Transport::Timeout:
    return "timeout";
  case Transport::Closed:
    return "closed";
  case Transport::Error:
    return "error";
  }
  return "?";
}

bool SimClient::connect(const std::string &SocketPath, std::string *Err) {
  close();
  Path = SocketPath;
  Status = Transport::Error;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path empty or longer than sun_path";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }

  // Non-blocking connect + poll so a wedged daemon cannot hang us past
  // the configured timeout (Unix-socket connects normally complete
  // immediately; EAGAIN means the listen backlog is full).
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC < 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    pollfd P{Fd, POLLOUT, 0};
    int N = ::poll(&P, 1, TimeoutMs ? int(TimeoutMs) : -1);
    if (N <= 0) {
      Status = Transport::Timeout;
      if (Err)
        *Err = "connect(" + SocketPath + "): timed out";
      ::close(Fd);
      Fd = -1;
      return false;
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    RC = SoErr ? -1 : 0;
    errno = SoErr;
  }
  if (RC < 0) {
    Status = (errno == ECONNREFUSED || errno == ENOENT) ? Transport::Refused
                                                        : Transport::Error;
    if (Err)
      *Err = "connect(" + SocketPath + "): " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  ::fcntl(Fd, F_SETFL, Flags);
  Status = Transport::Ok;
  return true;
}

/// Deterministic jitter: a hash of the attempt number, scaled to a
/// quarter of the base delay. Reproducible in drills, still spreads a
/// thundering herd of distinct attempt sequences.
static unsigned jitterMs(unsigned Attempt, unsigned BaseMs) {
  uint64_t H = 1469598103934665603ull;
  H = (H ^ (Attempt + 1)) * 1099511628211ull;
  return BaseMs ? unsigned(H % (BaseMs / 4 + 1)) : 0;
}

bool SimClient::connectWithRetry(const std::string &SocketPath,
                                 const RetryPolicy &P, std::string *Err) {
  unsigned Delay = P.InitialDelayMs;
  std::string LastErr;
  for (unsigned A = 0; A < (P.Attempts ? P.Attempts : 1); ++A) {
    if (A) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Delay + jitterMs(A, Delay)));
      Delay = Delay >= P.MaxDelayMs / 2 ? P.MaxDelayMs : Delay * 2;
    }
    if (connect(SocketPath, &LastErr))
      return true;
    if (Status == Transport::Error)
      break; // not a liveness problem; retrying cannot help
  }
  if (Err)
    *Err = LastErr +
           " (after " + std::to_string(P.Attempts ? P.Attempts : 1) +
           " attempts)";
  return false;
}

void SimClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

bool SimClient::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    // MSG_NOSIGNAL: a daemon that died mid-batch must surface as a
    // retryable failure, not kill the client with SIGPIPE.
    ssize_t W = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (W <= 0) {
      Status = Transport::Closed;
      return false;
    }
    Off += size_t(W);
  }
  Status = Transport::Ok;
  return true;
}

bool SimClient::waitReadable() {
  if (!TimeoutMs)
    return true; // block in read()
  pollfd P{Fd, POLLIN, 0};
  int N = ::poll(&P, 1, int(TimeoutMs));
  return N > 0;
}

std::optional<std::string> SimClient::recvLine() {
  if (Fd < 0) {
    Status = Transport::Closed;
    return std::nullopt;
  }
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      Status = Transport::Ok;
      return Line;
    }
    if (!waitReadable()) {
      Status = Transport::Timeout;
      return std::nullopt;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      Status = Transport::Closed;
      return std::nullopt;
    }
    Buf.append(Chunk, size_t(N));
  }
}

std::optional<obs::Json> SimClient::call(const std::string &Line,
                                         std::string *Err) {
  if (!sendLine(Line)) {
    if (Err)
      *Err = "send failed (daemon gone?)";
    return std::nullopt;
  }
  std::optional<std::string> Resp = recvLine();
  if (!Resp) {
    if (Err)
      *Err = Status == Transport::Timeout ? "timed out waiting for response"
                                          : "connection closed before response";
    return std::nullopt;
  }
  std::optional<obs::Json> V = obs::Json::parse(*Resp, Err);
  if (!V)
    Status = Transport::Error; // protocol, not liveness — do not retry
  return V;
}

std::optional<obs::Json> SimClient::callWithRetry(const std::string &Line,
                                                  const RetryPolicy &P,
                                                  std::string *Err) {
  std::string LastErr;
  unsigned Attempts = P.Attempts ? P.Attempts : 1;
  for (unsigned A = 0; A < Attempts; ++A) {
    if (A) {
      // The exchange failed mid-flight: reconnect (with the policy's
      // backoff) and resubmit the identical line. Idempotent by digest —
      // the daemon replays a finished job's bytes from its cache.
      close();
      if (!connectWithRetry(Path, P, &LastErr))
        break;
    }
    if (std::optional<obs::Json> R = call(Line, &LastErr))
      return R;
    if (Status == Transport::Error)
      break; // malformed response, not a transport wobble
  }
  if (Err)
    *Err = LastErr;
  return std::nullopt;
}
