//===- Protocol.h - pdlsimd wire protocol ----------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pdlsimd wire protocol: newline-delimited compact JSON over a
/// Unix-domain socket, one request object per line, one response line per
/// request (docs/service.md has the full schema).
///
/// Requests:
///   {"id":N,"op":"sim","request":{...SimRequest::toJson...}}
///   {"id":N,"op":"stats"} | {"id":N,"op":"ping"} | {"id":N,"op":"drain"}
///   {"id":N,"op":"shutdown"}
///
/// Responses:
///   {"id":N,"ok":true,"cached":B,"result":{...DiffResult::toJson...}}
///   {"id":N,"ok":true,"stats":{...}} / {"id":N,"ok":true,"pong":true} ...
///   {"id":N,"ok":false,"error":"..."}
///
/// Responses to one client always arrive in that client's submission
/// order, whatever order the worker pool finishes in. A malformed line
/// yields an ok:false response (id 0 when no id could be parsed), never a
/// disconnect.
///
/// Response construction is deliberately textual: the serialized result
/// payload is spliced into the response line verbatim, so a cache hit
/// replays byte-identical result bytes (ServiceTest asserts this).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_PROTOCOL_H
#define PDL_SERVICE_PROTOCOL_H

#include "sim/SimRequest.h"

#include <optional>
#include <string>

namespace pdl {
namespace service {

enum class Op { Sim, Stats, Ping, Drain, Shutdown };

const char *opName(Op O);
std::optional<Op> parseOp(const std::string &S);

/// One parsed request line. Sim is meaningful only for Op::Sim.
struct Request {
  uint64_t Id = 0;
  Op O = Op::Ping;
  sim::SimRequest Sim;
};

/// Parses one wire line. On failure returns nullopt, sets \p Err, and
/// stores whatever id could be salvaged in \p IdOut (0 otherwise) so the
/// error response can still be correlated.
std::optional<Request> parseRequestLine(const std::string &Line,
                                        std::string *Err, uint64_t *IdOut);

/// Client-side encoders (no trailing newline; the transport adds it).
std::string encodeSimRequest(uint64_t Id, const sim::SimRequest &R);
std::string encodeControlRequest(uint64_t Id, Op O);

/// Server-side encoders. \p ResultJson is spliced in verbatim — it must be
/// a serialized JSON value (DiffResult::toJson()).
std::string encodeSimResponse(uint64_t Id, bool Cached,
                              const std::string &ResultJson);
std::string encodeErrorResponse(uint64_t Id, const std::string &Error);
std::string encodeOkResponse(uint64_t Id, const char *Key,
                             const obs::Json &Body);

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_PROTOCOL_H
