//===- Client.h - Thin synchronous client for pdlsimd ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the pdlsimd wire protocol: connect to the
/// daemon's Unix-domain socket, send newline-delimited request lines, read
/// newline-delimited response lines. Request ids are assigned by the
/// caller (the protocol echoes them back), so tests can pipeline many
/// requests before reading any responses and still match them up.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_CLIENT_H
#define PDL_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <optional>
#include <string>

namespace pdl {
namespace service {

class SimClient {
public:
  SimClient() = default;
  ~SimClient();
  SimClient(const SimClient &) = delete;
  SimClient &operator=(const SimClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False (with \p Err set) on
  /// failure — e.g. no daemon is listening there.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends one raw line (newline appended). False if the peer is gone.
  bool sendLine(const std::string &Line);

  /// Blocks for the next complete response line (newline stripped).
  /// nullopt on EOF / error.
  std::optional<std::string> recvLine();

  /// Sends a request line and waits for the matching response — the
  /// simple sequential mode used by the pdlsim tool. The response is
  /// returned as parsed JSON; nullopt (with \p Err set) on transport
  /// failure or unparseable response.
  std::optional<obs::Json> call(const std::string &Line,
                                std::string *Err = nullptr);

private:
  int Fd = -1;
  std::string Buf; // bytes read past the last delivered line
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_CLIENT_H
