//===- Client.h - Thin synchronous client for pdlsimd ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the pdlsimd wire protocol: connect to the
/// daemon's Unix-domain socket, send newline-delimited request lines, read
/// newline-delimited response lines. Request ids are assigned by the
/// caller (the protocol echoes them back), so tests can pipeline many
/// requests before reading any responses and still match them up.
///
/// Robustness: every blocking operation honors an optional timeout
/// (poll-based), failures are classified (refused / timed out / closed)
/// so callers can pick distinct exit codes, and connectWithRetry wraps
/// connect in bounded exponential backoff with deterministic jitter.
/// callWithRetry goes one step further: on a dropped connection it
/// reconnects and resubmits the same request line — safe because
/// requests are content-addressed (same digest, same result bytes,
/// usually straight from the daemon's persistent cache).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_CLIENT_H
#define PDL_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <optional>
#include <string>

namespace pdl {
namespace service {

class SimClient {
public:
  /// Why the last transport operation failed (Ok after a success).
  enum class Transport { Ok, Refused, Timeout, Closed, Error };

  /// Backoff schedule for connectWithRetry/callWithRetry: delays grow
  /// InitialDelayMs, 2x, 4x, ... capped at MaxDelayMs, each widened by a
  /// deterministic jitter derived from the attempt number (so drills are
  /// reproducible and herds still spread).
  struct RetryPolicy {
    unsigned Attempts = 5;
    unsigned InitialDelayMs = 50;
    unsigned MaxDelayMs = 2000;
  };

  SimClient() = default;
  ~SimClient();
  SimClient(const SimClient &) = delete;
  SimClient &operator=(const SimClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False (with \p Err set) on
  /// failure — e.g. no daemon is listening there.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);

  /// connect() under \p P: retries refused/timed-out attempts with
  /// bounded exponential backoff. False once the attempts are exhausted.
  bool connectWithRetry(const std::string &SocketPath, const RetryPolicy &P,
                        std::string *Err = nullptr);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Per-operation timeout for connect/recv, in milliseconds. 0 (the
  /// default) blocks indefinitely.
  void setTimeoutMs(unsigned Ms) { TimeoutMs = Ms; }

  /// Classification of the most recent transport failure.
  Transport status() const { return Status; }
  static const char *transportName(Transport T);

  /// Sends one raw line (newline appended). False if the peer is gone.
  bool sendLine(const std::string &Line);

  /// Blocks (up to the configured timeout) for the next complete response
  /// line (newline stripped). nullopt on EOF / error / timeout — status()
  /// tells which.
  std::optional<std::string> recvLine();

  /// Sends a request line and waits for the matching response — the
  /// simple sequential mode used by the pdlsim tool. The response is
  /// returned as parsed JSON; nullopt (with \p Err set) on transport
  /// failure or unparseable response.
  std::optional<obs::Json> call(const std::string &Line,
                                std::string *Err = nullptr);

  /// call() with recovery: a dropped/timed-out exchange reconnects under
  /// \p P and resubmits the identical line. The request's digest key makes
  /// the resubmission idempotent (a completed-but-unacknowledged job is
  /// replayed from the daemon's cache, byte-identical).
  std::optional<obs::Json> callWithRetry(const std::string &Line,
                                         const RetryPolicy &P,
                                         std::string *Err = nullptr);

private:
  bool waitReadable(); // poll() honoring TimeoutMs

  int Fd = -1;
  std::string Buf; // bytes read past the last delivered line
  std::string Path; // last socket path, for reconnects
  unsigned TimeoutMs = 0;
  Transport Status = Transport::Ok;
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_CLIENT_H
