//===- ResultCache.cpp - Digest-keyed LRU result cache ----------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

using namespace pdl;
using namespace pdl::service;

std::optional<std::string> ResultCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Guard(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  return It->second->second;
}

void ResultCache::insert(const std::string &Key, std::string Payload) {
  if (!Cap)
    return;
  std::lock_guard<std::mutex> Guard(M);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    // Concurrent identical misses both simulate; determinism makes their
    // payloads identical, so refreshing is as good as first-wins.
    It->second->second = std::move(Payload);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, std::move(Payload));
  Map[Key] = Lru.begin();
  while (Map.size() > Cap) {
    Map.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Guard(M);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Size = Map.size();
  S.Capacity = Cap;
  return S;
}
