//===- ResultCache.cpp - Digest-keyed LRU result cache ----------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "support/Persist.h"
#include "support/BinIO.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include <unistd.h>

using namespace pdl;
using namespace pdl::service;

using persist::kCacheEntryMagic;

ResultCache::ResultCache(size_t Capacity, std::string StateDir)
    : Cap(Capacity), Dir(std::move(StateDir)) {
  if (Dir.empty())
    return;
  std::string Err;
  if (!persist::ensureDir(Dir, &Err)) {
    // Unusable state directory degrades to a memory-only cache rather
    // than taking the daemon down.
    std::fprintf(stderr, "pdl-service: cache persistence disabled: %s\n",
                 Err.c_str());
    Dir.clear();
    return;
  }
  reload();
}

std::string ResultCache::entryPath(const std::string &Key) const {
  return Dir + "/" + persist::hexDigest(persist::fnv1a64(Key)) + ".entry";
}

void ResultCache::installLocked(const std::string &Key, std::string Payload) {
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second->second = std::move(Payload);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, std::move(Payload));
  Map[Key] = Lru.begin();
  while (Map.size() > Cap) {
    // Unlink before forgetting: an evicted entry must not resurrect when
    // a restarted daemon reloads the directory.
    if (!Dir.empty())
      ::unlink(entryPath(Lru.back().first).c_str());
    Map.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

void ResultCache::reload() {
  std::lock_guard<std::mutex> Guard(M);
  struct Loaded {
    uint64_t Seq;
    std::string Name, Key, Payload;
  };
  std::vector<Loaded> Entries;
  for (const persist::DirEntry &E : persist::listDir(Dir, ".entry")) {
    std::string Path = Dir + "/" + E.Name;
    std::optional<std::string> Bytes = persist::readFileBytes(Path);
    std::vector<std::string> Sections;
    std::string Err;
    uint64_t Seq = 0;
    bool Ok = Bytes &&
              persist::decodeRecord(*Bytes, kCacheEntryMagic, &Sections,
                                    &Err) &&
              Sections.size() == 3 && Path == entryPath(Sections[0]);
    if (Ok) {
      support::BinReader R(Sections[2]);
      Seq = R.u64();
      Ok = R.done();
    }
    if (!Ok) {
      // Detected, not trusted: move the damaged file aside so it is
      // inspectable but never reloaded again.
      ::rename(Path.c_str(), (Path + ".quarantined").c_str());
      ++Quarantined;
      continue;
    }
    Entries.push_back(
        {Seq, E.Name, std::move(Sections[0]), std::move(Sections[1])});
  }
  // Install in write order so LRU recency survives the restart; capacity
  // enforcement inside installLocked evicts (and unlinks) the oldest
  // overflow when the cache reopened smaller.
  std::sort(Entries.begin(), Entries.end(),
            [](const Loaded &A, const Loaded &B) {
              return A.Seq != B.Seq ? A.Seq < B.Seq : A.Name < B.Name;
            });
  for (Loaded &E : Entries) {
    NextSeq = std::max(NextSeq, E.Seq + 1);
    if (!Cap)
      continue; // capacity 0 disables caching; leave files untouched
    installLocked(std::move(E.Key), std::move(E.Payload));
    ++Reloaded;
  }
}

std::optional<std::string> ResultCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Guard(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  return It->second->second;
}

void ResultCache::insert(const std::string &Key, std::string Payload) {
  if (!Cap)
    return;
  std::lock_guard<std::mutex> Guard(M);
  if (!Dir.empty()) {
    support::BinWriter SeqW;
    SeqW.u64(NextSeq++);
    std::string Bytes =
        persist::encodeRecord(kCacheEntryMagic, {Key, Payload, SeqW.take()});
    std::string Err;
    if (persist::writeFileAtomic(entryPath(Key), Bytes, &Err)) {
      ++Persisted;
    } else {
      // Graceful degradation: the entry still serves from memory; only
      // restart durability is lost, and the failure is visible in stats.
      ++PersistErrors;
    }
  }
  installLocked(Key, std::move(Payload));
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Guard(M);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Size = Map.size();
  S.Capacity = Cap;
  S.Persisted = Persisted;
  S.Reloaded = Reloaded;
  S.Quarantined = Quarantined;
  S.PersistErrors = PersistErrors;
  return S;
}
