//===- Server.cpp - Unix-domain socket front end for SimService -------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "support/SvcFault.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pdl;
using namespace pdl::service;

SimServer::SimServer(Options O)
    : Opts(std::move(O)),
      Service({Opts.Workers, Opts.CacheEntries, Opts.StateDir,
               Opts.CheckpointEvery}) {}

SimServer::~SimServer() {
  requestStop();
  waitAndDrain();
}

bool SimServer::start(std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path empty or longer than sun_path ("
             + std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket()");

  // A socket file may be left behind by a crashed daemon (stale, safe to
  // remove) or owned by a live one (must not be stolen — two daemons on
  // one path would strand the first's clients). Probe with a connect():
  // only a refused/dead socket is unlinked.
  struct stat St;
  if (::lstat(Opts.SocketPath.c_str(), &St) == 0) {
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Alive = Probe >= 0 &&
                 ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                           sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Alive) {
      if (Err)
        *Err = "a daemon is already listening on " + Opts.SocketPath;
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    ::unlink(Opts.SocketPath.c_str()); // stale socket from a dead daemon
  }

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind(" + Opts.SocketPath + ")");
  BoundSocket = true;
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen()");

  // Owning the socket also guards the state directory (the liveness
  // probe above failed any second daemon), so it is now safe to finish
  // the crashed predecessor's checkpointed jobs. Early connects queue in
  // the listen backlog until the acceptor spawns.
  Service.recoverOrphans();

  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SimServer::requestStop() { Stop.store(true); }

void SimServer::acceptLoop() {
  // Poll with a short timeout instead of blocking in accept() so the stop
  // flag (set by a signal forwarder or the shutdown op) is noticed
  // promptly without any async-signal trickery.
  while (!Stop.load() && !Service.shutdownRequested()) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout_ms=*/100);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Guard(ConnsM);
    Conns.emplace_back([this, Fd] { serveConnection(Fd); });
  }
  Stop.store(true);
}

void SimServer::serveConnection(int Fd) {
  // Writes come from worker threads (via Deliver) and must not interleave
  // half-lines; one mutex per connection serializes them.
  auto WriteM = std::make_shared<std::mutex>();
  uint64_t Client = Service.openClient([Fd, WriteM](const std::string &Line) {
    std::lock_guard<std::mutex> Guard(*WriteM);
    // Injected transport fault: sever the connection just before this
    // response goes out. The result is already computed (and cached);
    // the client's reconnect-and-resubmit path must recover it.
    if (consumeSvcFault(SvcFaultKind::DropConnection)) {
      ::shutdown(Fd, SHUT_RDWR);
      return;
    }
    std::string Out = Line + "\n";
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t W = ::write(Fd, Out.data() + Off, Out.size() - Off);
      if (W <= 0)
        return; // client went away; SimService keeps the job's cache entry
      Off += size_t(W);
    }
  });

  std::string Buf;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buf.append(Chunk, size_t(N));
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        Service.handleLine(Client, Line);
    }
    if (Service.shutdownRequested())
      break;
  }
  // Let this connection's queued responses flush before unregistering:
  // EOF from the client is a request to finish, not to abandon work.
  Service.drain();
  Service.closeClient(Client);
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
}

void SimServer::waitAndDrain() {
  while (!Stop.load() && !Service.shutdownRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stop.store(true);
  if (Acceptor.joinable())
    Acceptor.join();
  // In-flight jobs finish and their responses are delivered before the
  // connection threads see EOF/close; join whatever connections remain.
  Service.drain();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Guard(ConnsM);
    ToJoin.swap(Conns);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
  if (BoundSocket) {
    ::unlink(Opts.SocketPath.c_str());
    BoundSocket = false;
  }
}
