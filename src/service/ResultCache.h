//===- ResultCache.h - Digest-keyed LRU result cache -----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's memoization table: serialized SimResult payloads keyed by
/// SimRequest::cacheKey() (core kind, mem profile, program hash, cycle
/// budget, monitor/digest flags, fault plan). Values are the exact bytes a
/// cold run serialized — the jobs=N determinism contract makes every rerun
/// of a key produce those same bytes, so replaying them from the cache is
/// indistinguishable from re-simulating, only faster.
///
/// Bounded LRU: at capacity, an insert evicts the least-recently-used
/// entry (lookups refresh recency). Thread-safe; one lock, held only for
/// map/list surgery and small entry-file writes, never across a
/// simulation.
///
/// Persistence (optional): give the constructor a state directory and the
/// cache survives daemon restarts. Each entry is one CRC-guarded record
/// file (persist::encodeRecord) named by the FNV-1a digest of its key,
/// written via write-temp + fsync + atomic rename, carrying a monotonic
/// write-sequence number (filesystem mtimes are too coarse to order
/// back-to-back writes). On construction the directory is reloaded in
/// sequence order — so LRU recency follows write order exactly — with
/// capacity enforced and every undecodable or misnamed file renamed
/// aside to `*.quarantined`: a torn or bit-flipped entry is detected and
/// retired, never replayed. Evicting an entry unlinks its file, so an
/// evicted result cannot resurrect on reload. A failed persist (e.g.
/// disk full) only degrades: the entry stays usable in memory and the
/// failure is counted, not fatal.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_RESULTCACHE_H
#define PDL_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace pdl {
namespace service {

class ResultCache {
public:
  /// \p Capacity 0 disables caching (every lookup misses, inserts drop).
  /// A non-empty \p StateDir enables persistence: the directory is
  /// created if needed and any entries already there are reloaded,
  /// oldest first, up to capacity.
  explicit ResultCache(size_t Capacity, std::string StateDir = "");

  /// Returns the payload for \p Key and refreshes its recency, or nullopt
  /// on a miss. Counts a hit/miss either way.
  std::optional<std::string> lookup(const std::string &Key);

  /// Installs (or refreshes) \p Key -> \p Payload, evicting the LRU entry
  /// when over capacity, and persists the entry when a state directory is
  /// configured.
  void insert(const std::string &Key, std::string Payload);

  struct Stats {
    uint64_t Hits = 0, Misses = 0, Evictions = 0;
    uint64_t Size = 0, Capacity = 0;
    /// Persistence counters (all 0 when no state directory).
    uint64_t Persisted = 0, Reloaded = 0, Quarantined = 0, PersistErrors = 0;
  };
  Stats stats() const;

  bool persistent() const { return !Dir.empty(); }
  const std::string &stateDir() const { return Dir; }

private:
  using Entry = std::pair<std::string, std::string>; // key, payload
  std::string entryPath(const std::string &Key) const;
  void reload();
  /// Inserts without persisting; evicts (and unlinks) over capacity.
  /// Caller holds M.
  void installLocked(const std::string &Key, std::string Payload);

  mutable std::mutex M;
  size_t Cap;
  std::string Dir;
  uint64_t NextSeq = 1; // next write-sequence stamp for persisted entries
  std::list<Entry> Lru; // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Map;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
  uint64_t Persisted = 0, Reloaded = 0, Quarantined = 0, PersistErrors = 0;
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_RESULTCACHE_H
