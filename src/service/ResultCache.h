//===- ResultCache.h - Digest-keyed LRU result cache -----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's memoization table: serialized SimResult payloads keyed by
/// SimRequest::cacheKey() (core kind, mem profile, program hash, cycle
/// budget, monitor/digest flags, fault plan). Values are the exact bytes a
/// cold run serialized — the jobs=N determinism contract makes every rerun
/// of a key produce those same bytes, so replaying them from the cache is
/// indistinguishable from re-simulating, only faster.
///
/// Bounded LRU: at capacity, an insert evicts the least-recently-used
/// entry (lookups refresh recency). Thread-safe; one lock, held only for
/// map/list surgery, never across a simulation.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_RESULTCACHE_H
#define PDL_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace pdl {
namespace service {

class ResultCache {
public:
  /// \p Capacity 0 disables caching (every lookup misses, inserts drop).
  explicit ResultCache(size_t Capacity) : Cap(Capacity) {}

  /// Returns the payload for \p Key and refreshes its recency, or nullopt
  /// on a miss. Counts a hit/miss either way.
  std::optional<std::string> lookup(const std::string &Key);

  /// Installs (or refreshes) \p Key -> \p Payload, evicting the LRU entry
  /// when over capacity.
  void insert(const std::string &Key, std::string Payload);

  struct Stats {
    uint64_t Hits = 0, Misses = 0, Evictions = 0;
    uint64_t Size = 0, Capacity = 0;
  };
  Stats stats() const;

private:
  using Entry = std::pair<std::string, std::string>; // key, payload
  mutable std::mutex M;
  size_t Cap;
  std::list<Entry> Lru; // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Map;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_RESULTCACHE_H
