//===- Service.cpp - In-process multi-tenant simulation service -------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

using namespace pdl;
using namespace pdl::service;

SimService::SimService(Config C)
    : Cfg(C), Pool(C.Workers ? C.Workers : 1), Cache(C.CacheEntries) {}

SimService::~SimService() { drain(); }

uint64_t SimService::openClient(Deliver D) {
  std::lock_guard<std::mutex> Guard(ClientsM);
  uint64_t Id = NextClient++;
  auto C = std::make_shared<ClientState>();
  C->Id = Id;
  C->D = std::move(D);
  Clients[Id] = std::move(C);
  return Id;
}

void SimService::closeClient(uint64_t Client) {
  std::shared_ptr<ClientState> C;
  {
    std::lock_guard<std::mutex> Guard(ClientsM);
    auto It = Clients.find(Client);
    if (It == Clients.end())
      return;
    C = It->second;
    Clients.erase(It);
  }
  std::lock_guard<std::mutex> Guard(C->M);
  C->Closed = true;
  C->D = nullptr;
}

std::shared_ptr<SimService::ClientState> SimService::client(uint64_t Id) {
  std::lock_guard<std::mutex> Guard(ClientsM);
  auto It = Clients.find(Id);
  return It == Clients.end() ? nullptr : It->second;
}

std::shared_ptr<SimService::Slot>
SimService::enqueue(const std::shared_ptr<ClientState> &C, bool Done,
                    std::string Line) {
  auto S = std::make_shared<Slot>();
  S->Done = Done;
  S->Line = std::move(Line);
  {
    std::lock_guard<std::mutex> Guard(C->M);
    C->Fifo.push_back(S);
    ++C->Submitted;
  }
  if (Done)
    flush(C);
  return S;
}

void SimService::finishSlot(const std::shared_ptr<ClientState> &C,
                            const std::shared_ptr<Slot> &S, std::string Line) {
  {
    std::lock_guard<std::mutex> Guard(C->M);
    S->Line = std::move(Line);
    S->Done = true;
  }
  flush(C);
}

void SimService::flush(const std::shared_ptr<ClientState> &C) {
  // Holding the client mutex across Deliver serializes delivery per
  // client (the contract Deliver relies on); clients never share a lock,
  // so one slow socket cannot stall another client's responses.
  std::lock_guard<std::mutex> Guard(C->M);
  while (!C->Fifo.empty() && C->Fifo.front()->Done) {
    std::shared_ptr<Slot> S = C->Fifo.front();
    C->Fifo.pop_front();
    ++C->Completed;
    if (!C->Closed && C->D)
      C->D(S->Line);
  }
}

obs::Json SimService::statsJson(const std::shared_ptr<ClientState> &C) {
  ResultCache::Stats CS = Cache.stats();
  obs::Json CacheV = obs::Json::object();
  CacheV.set("hits", obs::Json(CS.Hits));
  CacheV.set("misses", obs::Json(CS.Misses));
  CacheV.set("evictions", obs::Json(CS.Evictions));
  CacheV.set("size", obs::Json(CS.Size));
  CacheV.set("capacity", obs::Json(CS.Capacity));

  obs::Json ClientV = obs::Json::object();
  {
    std::lock_guard<std::mutex> Guard(C->M);
    ClientV.set("id", obs::Json(C->Id));
    ClientV.set("submitted", obs::Json(C->Submitted));
    ClientV.set("completed", obs::Json(C->Completed));
    ClientV.set("hits", obs::Json(C->Hits));
    ClientV.set("misses", obs::Json(C->Misses));
    ClientV.set("errors", obs::Json(C->Errors));
    // Built before the stats line's own slot is enqueued, so the FIFO
    // holds exactly the client's still-undelivered earlier submissions.
    ClientV.set("inflight", obs::Json(uint64_t(C->Fifo.size())));
  }

  obs::Json V = obs::Json::object();
  V.set("workers", obs::Json(uint64_t(Pool.workers())));
  V.set("inflight", obs::Json(uint64_t(Pool.inflight())));
  V.set("cache", std::move(CacheV));
  V.set("client", std::move(ClientV));
  return V;
}

void SimService::handleLine(uint64_t Client, const std::string &Line) {
  std::shared_ptr<ClientState> C = client(Client);
  if (!C)
    return; // already closed; nothing to deliver to

  std::string Err;
  uint64_t Id = 0;
  std::optional<Request> R = parseRequestLine(Line, &Err, &Id);
  if (!R) {
    {
      std::lock_guard<std::mutex> Guard(C->M);
      ++C->Errors;
    }
    enqueue(C, /*Done=*/true, encodeErrorResponse(Id, Err));
    return;
  }

  switch (R->O) {
  case Op::Ping:
    enqueue(C, true, encodeOkResponse(R->Id, "pong", obs::Json(true)));
    return;
  case Op::Stats:
    enqueue(C, true, encodeOkResponse(R->Id, "stats", statsJson(C)));
    return;
  case Op::Drain:
    // One FIFO slot like any other: delivered only once every earlier
    // slot of this client has completed — that is the drain semantics.
    enqueue(C, true, encodeOkResponse(R->Id, "drained", obs::Json(true)));
    return;
  case Op::Shutdown:
    enqueue(C, true, encodeOkResponse(R->Id, "shutting_down", obs::Json(true)));
    Shutdown.store(true);
    return;
  case Op::Sim:
    break;
  }

  const sim::SimRequest Req = std::move(R->Sim);
  const uint64_t RespId = R->Id;
  if (Req.cacheable()) {
    if (std::optional<std::string> Cached = Cache.lookup(Req.cacheKey())) {
      {
        std::lock_guard<std::mutex> Guard(C->M);
        ++C->Hits;
      }
      enqueue(C, true, encodeSimResponse(RespId, /*Cached=*/true, *Cached));
      return;
    }
    std::lock_guard<std::mutex> Guard(C->M);
    ++C->Misses;
  }

  std::shared_ptr<Slot> S = enqueue(C, /*Done=*/false, "");
  Pool.submit([this, C, S, Req, RespId] {
    std::string Payload = sim::runSim(Req).toJson();
    if (Req.cacheable())
      Cache.insert(Req.cacheKey(), Payload);
    finishSlot(C, S, encodeSimResponse(RespId, /*Cached=*/false, Payload));
  });
}

void SimService::drain() { Pool.drain(); }
