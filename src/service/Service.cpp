//===- Service.cpp - In-process multi-tenant simulation service -------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "support/Persist.h"

#include <cstdio>

#include <unistd.h>

using namespace pdl;
using namespace pdl::service;

using persist::kJobMagic;

static std::string jobsDirFor(const SimService::Config &C) {
  if (C.StateDir.empty() || !C.CheckpointEvery)
    return "";
  std::string Dir = C.StateDir + "/jobs";
  std::string Err;
  if (!persist::ensureDir(Dir, &Err)) {
    std::fprintf(stderr, "pdl-service: job checkpointing disabled: %s\n",
                 Err.c_str());
    return "";
  }
  return Dir;
}

SimService::SimService(Config C)
    : Cfg(C), JobsDir(jobsDirFor(C)), Pool(C.Workers ? C.Workers : 1),
      Cache(C.CacheEntries,
            C.StateDir.empty() ? std::string() : C.StateDir + "/cache") {}

SimService::~SimService() { drain(); }

uint64_t SimService::openClient(Deliver D) {
  std::lock_guard<std::mutex> Guard(ClientsM);
  uint64_t Id = NextClient++;
  auto C = std::make_shared<ClientState>();
  C->Id = Id;
  C->D = std::move(D);
  Clients[Id] = std::move(C);
  return Id;
}

void SimService::closeClient(uint64_t Client) {
  std::shared_ptr<ClientState> C;
  {
    std::lock_guard<std::mutex> Guard(ClientsM);
    auto It = Clients.find(Client);
    if (It == Clients.end())
      return;
    C = It->second;
    Clients.erase(It);
  }
  std::lock_guard<std::mutex> Guard(C->M);
  C->Closed = true;
  C->D = nullptr;
}

std::shared_ptr<SimService::ClientState> SimService::client(uint64_t Id) {
  std::lock_guard<std::mutex> Guard(ClientsM);
  auto It = Clients.find(Id);
  return It == Clients.end() ? nullptr : It->second;
}

std::shared_ptr<SimService::Slot>
SimService::enqueue(const std::shared_ptr<ClientState> &C, bool Done,
                    std::string Line) {
  auto S = std::make_shared<Slot>();
  S->Done = Done;
  S->Line = std::move(Line);
  {
    std::lock_guard<std::mutex> Guard(C->M);
    C->Fifo.push_back(S);
    ++C->Submitted;
  }
  if (Done)
    flush(C);
  return S;
}

void SimService::finishSlot(const std::shared_ptr<ClientState> &C,
                            const std::shared_ptr<Slot> &S, std::string Line) {
  {
    std::lock_guard<std::mutex> Guard(C->M);
    S->Line = std::move(Line);
    S->Done = true;
  }
  flush(C);
}

void SimService::flush(const std::shared_ptr<ClientState> &C) {
  // Holding the client mutex across Deliver serializes delivery per
  // client (the contract Deliver relies on); clients never share a lock,
  // so one slow socket cannot stall another client's responses.
  std::lock_guard<std::mutex> Guard(C->M);
  while (!C->Fifo.empty() && C->Fifo.front()->Done) {
    std::shared_ptr<Slot> S = C->Fifo.front();
    C->Fifo.pop_front();
    ++C->Completed;
    if (!C->Closed && C->D)
      C->D(S->Line);
  }
}

obs::Json SimService::statsJson(const std::shared_ptr<ClientState> &C) {
  ResultCache::Stats CS = Cache.stats();
  obs::Json CacheV = obs::Json::object();
  CacheV.set("hits", obs::Json(CS.Hits));
  CacheV.set("misses", obs::Json(CS.Misses));
  CacheV.set("evictions", obs::Json(CS.Evictions));
  CacheV.set("size", obs::Json(CS.Size));
  CacheV.set("capacity", obs::Json(CS.Capacity));
  CacheV.set("persistent", obs::Json(Cache.persistent()));
  CacheV.set("persisted", obs::Json(CS.Persisted));
  CacheV.set("reloaded", obs::Json(CS.Reloaded));
  CacheV.set("quarantined", obs::Json(CS.Quarantined));
  CacheV.set("persist_errors", obs::Json(CS.PersistErrors));

  obs::Json ClientV = obs::Json::object();
  {
    std::lock_guard<std::mutex> Guard(C->M);
    ClientV.set("id", obs::Json(C->Id));
    ClientV.set("submitted", obs::Json(C->Submitted));
    ClientV.set("completed", obs::Json(C->Completed));
    ClientV.set("hits", obs::Json(C->Hits));
    ClientV.set("misses", obs::Json(C->Misses));
    ClientV.set("errors", obs::Json(C->Errors));
    // Built before the stats line's own slot is enqueued, so the FIFO
    // holds exactly the client's still-undelivered earlier submissions.
    ClientV.set("inflight", obs::Json(uint64_t(C->Fifo.size())));
  }

  obs::Json V = obs::Json::object();
  V.set("workers", obs::Json(uint64_t(Pool.workers())));
  V.set("inflight", obs::Json(uint64_t(Pool.inflight())));
  V.set("checkpoint_every", obs::Json(Cfg.CheckpointEvery));
  V.set("cache", std::move(CacheV));
  V.set("client", std::move(ClientV));
  return V;
}

void SimService::handleLine(uint64_t Client, const std::string &Line) {
  std::shared_ptr<ClientState> C = client(Client);
  if (!C)
    return; // already closed; nothing to deliver to

  std::string Err;
  uint64_t Id = 0;
  std::optional<Request> R = parseRequestLine(Line, &Err, &Id);
  if (!R) {
    {
      std::lock_guard<std::mutex> Guard(C->M);
      ++C->Errors;
    }
    enqueue(C, /*Done=*/true, encodeErrorResponse(Id, Err));
    return;
  }

  switch (R->O) {
  case Op::Ping:
    enqueue(C, true, encodeOkResponse(R->Id, "pong", obs::Json(true)));
    return;
  case Op::Stats:
    enqueue(C, true, encodeOkResponse(R->Id, "stats", statsJson(C)));
    return;
  case Op::Drain:
    // One FIFO slot like any other: delivered only once every earlier
    // slot of this client has completed — that is the drain semantics.
    enqueue(C, true, encodeOkResponse(R->Id, "drained", obs::Json(true)));
    return;
  case Op::Shutdown:
    enqueue(C, true, encodeOkResponse(R->Id, "shutting_down", obs::Json(true)));
    Shutdown.store(true);
    return;
  case Op::Sim:
    break;
  }

  const sim::SimRequest Req = std::move(R->Sim);
  const uint64_t RespId = R->Id;
  if (Req.cacheable()) {
    if (std::optional<std::string> Cached = Cache.lookup(Req.cacheKey())) {
      {
        std::lock_guard<std::mutex> Guard(C->M);
        ++C->Hits;
      }
      enqueue(C, true, encodeSimResponse(RespId, /*Cached=*/true, *Cached));
      return;
    }
    std::lock_guard<std::mutex> Guard(C->M);
    ++C->Misses;
  }

  std::shared_ptr<Slot> S = enqueue(C, /*Done=*/false, "");
  Pool.submit([this, C, S, Req, RespId] {
    std::string Payload = runJob(Req, /*ResumeBlob=*/"");
    if (Req.cacheable())
      Cache.insert(Req.cacheKey(), Payload);
    finishSlot(C, S, encodeSimResponse(RespId, /*Cached=*/false, Payload));
  });
}

std::string SimService::runJob(const sim::SimRequest &Req,
                               std::string ResumeBlob) {
  sim::SimRequest R = Req;
  std::string JobPath;
  if (!JobsDir.empty() && Req.cacheable()) {
    JobPath = JobsDir + "/" +
              persist::hexDigest(persist::fnv1a64(Req.cacheKey())) + ".job";
    const std::string ReqJson = Req.toJson();
    R.Cfg.CkptEvery = Cfg.CheckpointEvery;
    R.Cfg.CkptSave = [JobPath, ReqJson](uint64_t, const std::string &Blob) {
      // A failed checkpoint write only costs resumability of this job;
      // the simulation itself keeps running.
      std::string Err;
      persist::writeFileAtomic(
          JobPath, persist::encodeRecord(kJobMagic, {ReqJson, Blob}), &Err);
    };
  }
  R.Cfg.ResumeBlob = std::move(ResumeBlob);
  sim::SimResult Res = sim::runSim(R);
  if (Res.Outcome == "resume_rejected") {
    // The checkpoint blob was torn or corrupt: detected, not trusted.
    // Fall back to a cold run — correctness over saved cycles.
    R.Cfg.ResumeBlob.clear();
    Res = sim::runSim(R);
  }
  std::string Payload = Res.toJson();
  // The job completed and its result is durable via the cache; retire
  // the checkpoint so a restart does not replay finished work.
  if (!JobPath.empty())
    ::unlink(JobPath.c_str());
  return Payload;
}

size_t SimService::recoverOrphans() {
  if (JobsDir.empty())
    return 0;
  size_t N = 0;
  for (const persist::DirEntry &E : persist::listDir(JobsDir, ".job")) {
    std::string Path = JobsDir + "/" + E.Name;
    std::optional<std::string> Bytes = persist::readFileBytes(Path);
    std::vector<std::string> Sections;
    std::string Err;
    std::optional<sim::SimRequest> Req;
    if (Bytes && persist::decodeRecord(*Bytes, kJobMagic, &Sections, &Err) &&
        Sections.size() == 2)
      Req = sim::SimRequest::fromJson(Sections[0], &Err);
    if (!Req) {
      // Undecodable job file (torn final write, bit rot): set it aside
      // for inspection; the client's retry will resubmit the request.
      ::rename(Path.c_str(), (Path + ".quarantined").c_str());
      continue;
    }
    // runJob resumes from the snapshot (cold rerun if the blob fails
    // restore validation), re-checkpoints, and unlinks the job file.
    std::string Payload = runJob(*Req, std::move(Sections[1]));
    if (Req->cacheable())
      Cache.insert(Req->cacheKey(), Payload);
    ++N;
  }
  return N;
}

void SimService::drain() { Pool.drain(); }
