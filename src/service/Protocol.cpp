//===- Protocol.cpp - pdlsimd wire protocol ---------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

using namespace pdl;
using namespace pdl::service;

const char *service::opName(Op O) {
  switch (O) {
  case Op::Sim:
    return "sim";
  case Op::Stats:
    return "stats";
  case Op::Ping:
    return "ping";
  case Op::Drain:
    return "drain";
  case Op::Shutdown:
    return "shutdown";
  }
  return "?";
}

std::optional<Op> service::parseOp(const std::string &S) {
  for (Op O : {Op::Sim, Op::Stats, Op::Ping, Op::Drain, Op::Shutdown})
    if (S == opName(O))
      return O;
  return std::nullopt;
}

std::optional<Request> service::parseRequestLine(const std::string &Line,
                                                 std::string *Err,
                                                 uint64_t *IdOut) {
  if (IdOut)
    *IdOut = 0;
  auto Fail = [Err](const std::string &Why) -> std::optional<Request> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };

  std::string ParseErr;
  std::optional<obs::Json> V = obs::Json::parse(Line, &ParseErr);
  if (!V)
    return Fail("malformed request: " + ParseErr);
  if (V->kind() != obs::Json::Kind::Object)
    return Fail("request line is not a JSON object");

  Request R;
  if (const obs::Json *Id = V->get("id")) {
    if (!Id->isNumber())
      return Fail("request 'id' is not a number");
    R.Id = Id->asU64();
    if (IdOut)
      *IdOut = R.Id;
  }

  const obs::Json *OpV = V->get("op");
  if (!OpV)
    return Fail("request has no 'op'");
  std::optional<Op> O = parseOp(OpV->asString());
  if (!O)
    return Fail("unknown op '" + OpV->asString() + "'");
  R.O = *O;

  if (R.O == Op::Sim) {
    const obs::Json *Req = V->get("request");
    if (!Req)
      return Fail("sim request has no 'request' object");
    std::string SimErr;
    std::optional<sim::SimRequest> S =
        sim::SimRequest::fromJsonValue(*Req, &SimErr);
    if (!S)
      return Fail("bad sim request: " + SimErr);
    R.Sim = std::move(*S);
  }
  return R;
}

std::string service::encodeSimRequest(uint64_t Id, const sim::SimRequest &R) {
  obs::Json V = obs::Json::object();
  V.set("id", obs::Json(Id));
  V.set("op", obs::Json(opName(Op::Sim)));
  V.set("request", R.toJsonValue());
  return V.dump();
}

std::string service::encodeControlRequest(uint64_t Id, Op O) {
  obs::Json V = obs::Json::object();
  V.set("id", obs::Json(Id));
  V.set("op", obs::Json(opName(O)));
  return V.dump();
}

std::string service::encodeSimResponse(uint64_t Id, bool Cached,
                                       const std::string &ResultJson) {
  // Textual splice: the cached result bytes pass through untouched, which
  // is what makes "a hit is byte-identical to the cold run" a guarantee
  // about the wire, not just about parsed values.
  std::string Out = "{\"id\":" + std::to_string(Id) + ",\"ok\":true";
  Out += Cached ? ",\"cached\":true,\"result\":" : ",\"cached\":false,\"result\":";
  Out += ResultJson;
  Out += '}';
  return Out;
}

std::string service::encodeErrorResponse(uint64_t Id,
                                         const std::string &Error) {
  obs::Json V = obs::Json::object();
  V.set("id", obs::Json(Id));
  V.set("ok", obs::Json(false));
  V.set("error", obs::Json(Error));
  return V.dump();
}

std::string service::encodeOkResponse(uint64_t Id, const char *Key,
                                      const obs::Json &Body) {
  obs::Json V = obs::Json::object();
  V.set("id", obs::Json(Id));
  V.set("ok", obs::Json(true));
  V.set(Key, Body);
  return V.dump();
}
