//===- Service.h - In-process multi-tenant simulation service -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's engine, factored away from sockets so tests drive it
/// in-process: N protocol clients submit request lines, jobs execute on a
/// standing worker pool (sim::StandingPool), results come back through a
/// digest-keyed LRU cache, and each client's responses are delivered — via
/// its callback — in that client's submission order no matter how the pool
/// interleaves completions.
///
/// Ordering: every accepted line occupies one slot in its client's FIFO.
/// Immediately-answerable slots (cache hits, control ops, errors) are
/// marked done on arrival; simulation slots are marked done by the worker
/// that finishes them. Delivery always walks the FIFO from the front and
/// stops at the first unfinished slot, so a cache hit behind a running
/// miss waits its turn — per-client order is part of the API, wall-clock
/// is not.
///
/// Caching: keyed by SimRequest::cacheKey(); the stored value is the
/// serialized result payload of the cold run, replayed verbatim on a hit
/// (byte-identical by the jobs=N determinism contract). Requests that
/// write waveforms are uncacheable and always simulate.
///
/// Crash safety: with a state directory configured, cache entries persist
/// across restarts (CRC-guarded record files, see ResultCache.h) and
/// simulation jobs checkpoint their full System snapshot every N cycles
/// into a job store; recoverOrphans() resumes whatever a crash stranded
/// mid-run (docs/service.md, "Crash recovery & persistence").
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_SERVICE_H
#define PDL_SERVICE_SERVICE_H

#include "service/Protocol.h"
#include "service/ResultCache.h"
#include "sim/StandingPool.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pdl {
namespace service {

class SimService {
public:
  struct Config {
    unsigned Workers;
    size_t CacheEntries;
    /// Crash-safety root. Empty disables persistence entirely; otherwise
    /// result-cache entries live under <StateDir>/cache and in-flight job
    /// checkpoints under <StateDir>/jobs, and both survive a restart.
    std::string StateDir;
    /// Checkpoint cadence for simulation jobs, in cycles. 0 disables
    /// checkpointing; requires StateDir to take effect.
    uint64_t CheckpointEvery;
    // Constructor instead of member initializers so the enclosing class
    // can default a Config argument while still incomplete.
    Config(unsigned W = 4, size_t C = 256, std::string SD = "",
           uint64_t CE = 0)
        : Workers(W), CacheEntries(C), StateDir(std::move(SD)),
          CheckpointEvery(CE) {}
  };

  explicit SimService(Config C = Config());
  ~SimService(); // drains in-flight work first

  /// Replays whatever <StateDir>/jobs left behind after a crash: each
  /// orphaned checkpoint file is resumed from its saved snapshot (or
  /// rerun cold if the blob was damaged — a torn checkpoint is detected,
  /// never trusted), its result is inserted into the cache, and the job
  /// file is removed. Call once at startup, before serving clients.
  /// Returns the number of jobs recovered.
  size_t recoverOrphans();

  /// A client's response sink. Called with one complete response line (no
  /// trailing newline), in that client's submission order; may be called
  /// from worker threads or from inside handleLine, never concurrently
  /// for the same client.
  using Deliver = std::function<void(const std::string &Line)>;

  /// Registers a client and returns its id (1-based, process-unique).
  uint64_t openClient(Deliver D);

  /// Unregisters a client. In-flight jobs keep running (their results
  /// still warm the cache) but nothing more is delivered.
  void closeClient(uint64_t Client);

  /// Accepts one protocol line on behalf of \p Client. Every line —
  /// including malformed ones — produces exactly one response through the
  /// client's Deliver callback, in submission order.
  void handleLine(uint64_t Client, const std::string &Line);

  /// Blocks until every job submitted so far has finished and its
  /// response has been delivered — the graceful-drain half of SIGTERM
  /// handling (the daemon calls this before exiting).
  void drain();

  /// Set once a client issued the shutdown op (after its response was
  /// queued). The transport layer polls this to stop accepting.
  bool shutdownRequested() const { return Shutdown.load(); }

  ResultCache::Stats cacheStats() const { return Cache.stats(); }
  size_t inflight() const { return Pool.inflight(); }

private:
  struct Slot {
    bool Done = false;
    std::string Line;
  };
  struct ClientState {
    uint64_t Id = 0;
    Deliver D;
    bool Closed = false;
    std::mutex M; // guards everything in this struct
    std::deque<std::shared_ptr<Slot>> Fifo;
    // Per-client stats, reported by the stats op.
    uint64_t Submitted = 0, Completed = 0, Hits = 0, Misses = 0, Errors = 0;
  };

  std::shared_ptr<ClientState> client(uint64_t Id);
  /// Appends a slot to the client's FIFO; done slots may be deliverable
  /// immediately. Returns the slot for asynchronous completion.
  std::shared_ptr<Slot> enqueue(const std::shared_ptr<ClientState> &C,
                                bool Done, std::string Line);
  static void finishSlot(const std::shared_ptr<ClientState> &C,
                         const std::shared_ptr<Slot> &S, std::string Line);
  /// Delivers consecutive finished slots from the FIFO front.
  static void flush(const std::shared_ptr<ClientState> &C);
  obs::Json statsJson(const std::shared_ptr<ClientState> &C);
  /// Runs one simulation to completion, checkpointing to the job store
  /// when configured and resuming from \p ResumeBlob when non-empty.
  /// Returns the serialized result payload.
  std::string runJob(const sim::SimRequest &Req, std::string ResumeBlob);

  Config Cfg;
  std::string JobsDir; // empty when checkpointing is off
  sim::StandingPool Pool;
  ResultCache Cache;
  std::atomic<bool> Shutdown{false};
  std::mutex ClientsM;
  std::map<uint64_t, std::shared_ptr<ClientState>> Clients;
  uint64_t NextClient = 1;
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_SERVICE_H
