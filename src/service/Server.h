//===- Server.h - Unix-domain socket front end for SimService --*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of pdlsimd: binds a Unix-domain socket, accepts
/// connections, and pumps each connection's newline-delimited request
/// lines into a shared SimService. One reader thread per connection;
/// responses are written back from whatever thread completes them (the
/// per-client ordering guarantee lives in SimService, the per-connection
/// write atomicity here).
///
/// Lifecycle: start() binds and spawns the accept loop; the server runs
/// until requestStop() (the daemon's SIGTERM/SIGINT path) or a client's
/// shutdown op. Either way the wind-down is graceful: stop accepting,
/// let in-flight jobs finish, deliver every queued response, then close
/// — so a client that submitted before the signal always gets its
/// results (docs/service.md, "drain semantics").
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SERVICE_SERVER_H
#define PDL_SERVICE_SERVER_H

#include "service/Service.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace pdl {
namespace service {

class SimServer {
public:
  struct Options {
    std::string SocketPath;
    unsigned Workers = 4;
    size_t CacheEntries = 256;
    /// Crash-safety root (SimService::Config::StateDir). Empty disables
    /// cache persistence and job checkpointing.
    std::string StateDir;
    /// Job checkpoint cadence in cycles; 0 disables.
    uint64_t CheckpointEvery = 0;
  };

  explicit SimServer(Options O);
  ~SimServer();

  /// Binds + listens + spawns the accept loop. False (with \p Err set) if
  /// the socket cannot be created. An existing socket file at the path is
  /// probed first: if a live daemon answers, start fails with a clear
  /// "already running" error instead of stealing the path; only a dead
  /// daemon's stale socket is removed.
  bool start(std::string *Err);

  /// Asynchronously requests a graceful stop. Safe to call from a signal
  /// handler's forwarding thread, from any client thread, or repeatedly.
  void requestStop();

  /// Blocks until a stop was requested (signal or shutdown op), then
  /// drains: stops accepting, waits for every in-flight job, delivers
  /// every queued response, joins connection threads, unlinks the socket.
  void waitAndDrain();

  SimService &service() { return Service; }
  const Options &options() const { return Opts; }

private:
  void acceptLoop();
  void serveConnection(int Fd);

  Options Opts;
  SimService Service;
  int ListenFd = -1;
  /// True once we bound the socket path — only then may shutdown unlink
  /// it (a start() that lost to a live daemon must not remove its socket).
  bool BoundSocket = false;
  std::atomic<bool> Stop{false};
  std::thread Acceptor;
  std::mutex ConnsM;
  std::vector<std::thread> Conns;
};

} // namespace service
} // namespace pdl

#endif // PDL_SERVICE_SERVER_H
