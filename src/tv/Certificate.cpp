//===- Certificate.cpp - Certificate serialization and replay checking ----===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/Tv.h"

#include <sstream>

using namespace pdl;
using namespace pdl::tv;

namespace {

obs::Json u64(uint64_t V) { return obs::Json(V); }

/// Digests render as fixed-width hex so certificates diff cleanly and
/// MANIFEST entries stay lexicographically stable.
std::string hex64(uint64_t V) {
  std::ostringstream OS;
  OS << std::hex;
  OS.width(16);
  OS.fill('0');
  OS << V;
  return OS.str();
}

bool parseHex64(const obs::Json *J, uint64_t &Out) {
  if (!J || J->kind() != obs::Json::Kind::String)
    return false;
  const std::string &S = J->asString();
  if (S.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

bool getU(const obs::Json &V, const char *Key, unsigned &Out) {
  const obs::Json *J = V.get(Key);
  if (!J || !J->isNumber())
    return false;
  Out = static_cast<unsigned>(J->asU64());
  return true;
}

bool getS(const obs::Json &V, const char *Key, std::string &Out) {
  const obs::Json *J = V.get(Key);
  if (!J || J->kind() != obs::Json::Kind::String)
    return false;
  Out = J->asString();
  return true;
}

bool getB(const obs::Json &V, const char *Key, bool &Out) {
  const obs::Json *J = V.get(Key);
  if (!J || J->kind() != obs::Json::Kind::Bool)
    return false;
  Out = J->asBool();
  return true;
}

obs::Json programToJson(const ProgramCert &P) {
  obs::Json O = obs::Json::object();
  O.set("pipe", P.Pipe);
  O.set("label", P.Label);
  O.set("kind", P.Kind);
  O.set("source", P.Source);
  O.set("tree_digest", hex64(P.TreeDigest));
  O.set("bc_digest", hex64(P.BcDigest));
  O.set("obligations_digest", hex64(P.ObligationsDigest));
  O.set("paths", P.Paths);
  O.set("syntactic", P.Syntactic);
  O.set("solver", P.Solver);
  O.set("unproven", P.Unproven);
  O.set("refuted", P.Refuted);
  O.set("budget_exceeded", obs::Json(P.BudgetExceeded));
  O.set("status", P.ProgStatus);
  obs::Json Notes = obs::Json::array();
  for (const std::string &N : P.Notes)
    Notes.push(obs::Json(N));
  O.set("notes", std::move(Notes));
  return O;
}

bool programFromJson(const obs::Json &V, ProgramCert &P) {
  if (V.kind() != obs::Json::Kind::Object)
    return false;
  if (!getS(V, "pipe", P.Pipe) || !getS(V, "label", P.Label) ||
      !getS(V, "kind", P.Kind) || !getS(V, "source", P.Source) ||
      !parseHex64(V.get("tree_digest"), P.TreeDigest) ||
      !parseHex64(V.get("bc_digest"), P.BcDigest) ||
      !parseHex64(V.get("obligations_digest"), P.ObligationsDigest) ||
      !getU(V, "paths", P.Paths) || !getU(V, "syntactic", P.Syntactic) ||
      !getU(V, "solver", P.Solver) || !getU(V, "unproven", P.Unproven) ||
      !getU(V, "refuted", P.Refuted) ||
      !getB(V, "budget_exceeded", P.BudgetExceeded) ||
      !getS(V, "status", P.ProgStatus))
    return false;
  const obs::Json *Notes = V.get("notes");
  if (!Notes || Notes->kind() != obs::Json::Kind::Array)
    return false;
  P.Notes.clear();
  for (const obs::Json &N : Notes->items()) {
    if (N.kind() != obs::Json::Kind::String)
      return false;
    P.Notes.push_back(N.asString());
  }
  return true;
}

} // namespace

obs::Json Certificate::toJsonValue() const {
  obs::Json O = obs::Json::object();
  O.set("version", Version);
  O.set("module", Module);
  O.set("status", statusName(St));
  obs::Json Progs = obs::Json::array();
  for (const ProgramCert &P : Programs)
    Progs.push(programToJson(P));
  O.set("programs", std::move(Progs));
  O.set("layout_checks", LayoutChecks);
  O.set("layout_failures", LayoutFailures);
  obs::Json LN = obs::Json::array();
  for (const std::string &N : LayoutNotes)
    LN.push(obs::Json(N));
  O.set("layout_notes", std::move(LN));
  O.set("smt_queries", SolverQueries);
  O.set("smt_decisions", SolverDecisions);
  O.set("wall_us", u64(WallUs));
  return O;
}

bool Certificate::fromJsonValue(const obs::Json &V, Certificate &Out) {
  if (V.kind() != obs::Json::Kind::Object)
    return false;
  if (!getU(V, "version", Out.Version) || Out.Version != 1)
    return false;
  if (!getS(V, "module", Out.Module))
    return false;
  std::string St;
  if (!getS(V, "status", St))
    return false;
  if (St == "certified")
    Out.St = Status::Certified;
  else if (St == "fuzz-trusted")
    Out.St = Status::FuzzTrusted;
  else if (St == "rejected")
    Out.St = Status::Rejected;
  else
    return false;
  const obs::Json *Progs = V.get("programs");
  if (!Progs || Progs->kind() != obs::Json::Kind::Array)
    return false;
  Out.Programs.clear();
  for (const obs::Json &P : Progs->items()) {
    ProgramCert PC;
    if (!programFromJson(P, PC))
      return false;
    Out.Programs.push_back(std::move(PC));
  }
  if (!getU(V, "layout_checks", Out.LayoutChecks) ||
      !getU(V, "layout_failures", Out.LayoutFailures) ||
      !getU(V, "smt_queries", Out.SolverQueries) ||
      !getU(V, "smt_decisions", Out.SolverDecisions))
    return false;
  const obs::Json *LN = V.get("layout_notes");
  if (!LN || LN->kind() != obs::Json::Kind::Array)
    return false;
  Out.LayoutNotes.clear();
  for (const obs::Json &N : LN->items()) {
    if (N.kind() != obs::Json::Kind::String)
      return false;
    Out.LayoutNotes.push_back(N.asString());
  }
  const obs::Json *Wall = V.get("wall_us");
  if (!Wall || !Wall->isNumber())
    return false;
  Out.WallUs = Wall->asU64();
  return true;
}

uint64_t Certificate::digest() const {
  Certificate Canon = *this;
  Canon.WallUs = 0;
  const std::string S = Canon.toJson();
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

CheckResult tv::checkCertificate(const Certificate &Cert,
                                 const CompiledProgram &CP,
                                 const backend::bc::ModuleIR &IR) {
  CheckResult R;
  auto fail = [&R](std::string Msg) {
    R.Ok = false;
    R.Error = std::move(Msg);
    return R;
  };

  if (Cert.Version != 1)
    return fail("unsupported certificate version");

  // Solver-free replay of the deterministic co-execution.
  ValidateOptions Opts;
  Opts.UseSolver = false;
  Certificate Re = validateModule(CP, IR, Cert.Module, Opts);

  if (Re.Programs.size() != Cert.Programs.size())
    return fail("program count differs: certificate " +
                std::to_string(Cert.Programs.size()) + " vs replay " +
                std::to_string(Re.Programs.size()));
  if (Re.LayoutChecks != Cert.LayoutChecks ||
      Re.LayoutFailures != Cert.LayoutFailures)
    return fail("layout obligation tallies differ");

  for (size_t I = 0; I != Re.Programs.size(); ++I) {
    const ProgramCert &C = Cert.Programs[I];
    const ProgramCert &P = Re.Programs[I];
    std::string Id = C.Pipe + "/" + C.Label;
    if (P.Pipe != C.Pipe || P.Label != C.Label || P.Kind != C.Kind)
      return fail("program " + std::to_string(I) + " identity differs (" +
                  Id + " vs " + P.Pipe + "/" + P.Label + ")");
    if (P.TreeDigest != C.TreeDigest)
      return fail(Id + ": tree digest differs");
    if (P.BcDigest != C.BcDigest)
      return fail(Id + ": bytecode digest differs");
    if (P.ObligationsDigest != C.ObligationsDigest)
      return fail(Id + ": obligations digest differs");
    if (P.Paths != C.Paths || P.BudgetExceeded != C.BudgetExceeded)
      return fail(Id + ": path exploration differs");
    if (P.Syntactic != C.Syntactic)
      return fail(Id + ": syntactic tally differs");
    if (P.Refuted != C.Refuted)
      return fail(Id + ": refuted tally differs");
    // The replay counts every would-be-solver obligation as unproven; the
    // certificate may have proved some of those, but never more than exist.
    if (C.Solver + C.Unproven != P.Unproven)
      return fail(Id + ": solver+unproven tally (" +
                  std::to_string(C.Solver + C.Unproven) +
                  ") does not match replay needs-solver count (" +
                  std::to_string(P.Unproven) + ")");
    // Status must be consistent with the claimed tallies.
    std::string Want = C.Refuted              ? "rejected"
                       : (C.Unproven || C.BudgetExceeded) ? "fuzz-trusted"
                                                          : "proved";
    if (C.ProgStatus != Want)
      return fail(Id + ": status '" + C.ProgStatus +
                  "' inconsistent with tallies (expect '" + Want + "')");
  }

  // Module status must follow from the parts.
  Status Want = Status::Certified;
  for (const ProgramCert &C : Cert.Programs) {
    if (C.ProgStatus == "rejected")
      Want = Status::Rejected;
    else if (C.ProgStatus == "fuzz-trusted" && Want != Status::Rejected)
      Want = Status::FuzzTrusted;
  }
  if (Cert.LayoutFailures)
    Want = Status::Rejected;
  if (Cert.St != Want)
    return fail("module status inconsistent with program statuses");

  return R;
}
