//===- Tv.h - Translation validation of compiled bytecode ------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation for the bytecode expression compiler
/// (backend/Compile.h), in the Fe-Si "certified artifact" style: instead of
/// trusting the compiler, every compiled program is re-proved equal to its
/// type-checked expression tree after each compilation.
///
/// The validator co-executes both representations symbolically over a
/// shared store of hash-consed terms (one Var term per frame slot, one Hook
/// term per memory-read / extern-call event). Branches split the state
/// space path by path: each completed path yields one equivalence
/// obligation — same result term and the same hook-call trace (site, order,
/// and arguments) on both sides. Obligations discharge three ways:
///
///   * syntactic  — both sides produced pointer-identical terms (the common
///                  case for a faithful compile, since terms are interned);
///   * solver     — the DPLL(T) solver (smt/Solver.h) proved the residual
///                  equalities from the path condition, with the bytecode
///                  opcode vocabulary as interpreted bit-vector symbols and
///                  a sound uninterpreted fallback;
///   * refuted    — a structural counterexample: constant results that
///                  differ, diverging hook traces, a read of an
///                  uninitialized scratch slot, a width violation, or a
///                  runaway bytecode loop. Any refutation rejects the
///                  module.
///
/// Everything else (solver gave up, path budget exhausted) stays a
/// structured warning: the program is downgraded to "fuzz-trusted", the
/// trust level the differential fuzzer already provides.
///
/// The result is a serializable Certificate. tv::checkCertificate replays a
/// certificate against a freshly compiled module WITHOUT the solver: it
/// re-runs the deterministic symbolic co-execution, recomputes every
/// per-program obligations digest, and cross-checks the claimed verdict
/// counts — an independent check in the sense that no solver verdict is
/// taken on faith.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_TV_TV_H
#define PDL_TV_TV_H

#include "backend/Bytecode.h"
#include "obs/Json.h"
#include "passes/Compiler.h"

#include <string>
#include <vector>

namespace pdl {
namespace tv {

/// Module-level certification status, ordered worst-last.
enum class Status { Certified, FuzzTrusted, Rejected };

/// "certified" / "fuzz-trusted" / "rejected".
const char *statusName(Status S);

/// The validation record for one compiled program (an expression program or
/// a fused guard program).
struct ProgramCert {
  std::string Pipe;
  std::string Label;  // stable unit name, e.g. "e3" or "s1.edge0"
  std::string Kind;   // "expr" | "guard"
  std::string Source; // truncated source rendering, for humans
  uint64_t TreeDigest = 0;
  uint64_t BcDigest = 0;
  /// Digest over every path's decisions, result terms, and hook traces —
  /// deliberately verdict-free so the replay checker can recompute it
  /// without a solver.
  uint64_t ObligationsDigest = 0;
  unsigned Paths = 0;
  unsigned Syntactic = 0;
  unsigned Solver = 0;
  unsigned Unproven = 0;
  unsigned Refuted = 0;
  bool BudgetExceeded = false;
  std::string ProgStatus; // "proved" | "fuzz-trusted" | "rejected"
  std::vector<std::string> Notes;
};

/// A machine-checkable certificate for one compiled module.
struct Certificate {
  unsigned Version = 1;
  std::string Module;
  Status St = Status::Certified;
  std::vector<ProgramCert> Programs;
  /// Structural layout obligations: the stage mirrors must point at the
  /// same programs the statement walk compiled, and destinations must match
  /// the slot table.
  unsigned LayoutChecks = 0;
  unsigned LayoutFailures = 0;
  std::vector<std::string> LayoutNotes;
  unsigned SolverQueries = 0;
  unsigned SolverDecisions = 0;
  /// Validation wall time in microseconds. Excluded from digest() and from
  /// replay comparison.
  uint64_t WallUs = 0;

  obs::Json toJsonValue() const;
  std::string toJson() const { return toJsonValue().dump(); }
  /// Parses a certificate serialized by toJsonValue. Returns false on
  /// missing or ill-typed fields.
  static bool fromJsonValue(const obs::Json &V, Certificate &Out);

  /// FNV-1a over the canonical serialization with WallUs zeroed, so equal
  /// validation outcomes produce equal digests across runs.
  uint64_t digest() const;
};

struct ValidateOptions {
  /// When false, obligations that would need the solver are recorded as
  /// "needs-solver" (counted unproven) instead of being discharged. The
  /// replay checker runs in this mode.
  bool UseSolver = true;
  /// Per-program cap on explored paths; exceeding it downgrades the program
  /// to fuzz-trusted (never to certified).
  unsigned MaxPathsPerProgram = 20000;
  /// Cap on human-readable notes kept per program.
  unsigned MaxNotes = 4;
};

/// Validates every compiled program of \p IR against the expression trees
/// in \p CP and returns the certificate. \p ModuleName labels the
/// certificate (a file name or cores::coreKindId spelling).
Certificate validateModule(const CompiledProgram &CP,
                           const backend::bc::ModuleIR &IR,
                           const std::string &ModuleName,
                           const ValidateOptions &Opts = {});

struct CheckResult {
  bool Ok = true;
  std::string Error;
};

/// Replays \p Cert against a fresh solver-free validation of (\p CP, \p IR)
/// and cross-checks program identity, digests, path counts, and verdict
/// tallies. A certificate that claims solver verdicts must have exactly as
/// many solver+unproven obligations as the replay finds needs-solver paths;
/// syntactic and refuted counts must match exactly.
CheckResult checkCertificate(const Certificate &Cert,
                             const CompiledProgram &CP,
                             const backend::bc::ModuleIR &IR);

} // namespace tv
} // namespace pdl

#endif // PDL_TV_TV_H
