//===- Validate.cpp - Symbolic co-execution translation validator ---------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The validator proper: symbolic evaluation of the expression tree
// (mirroring backend/Eval.cpp term for term) and of the compiled bytecode
// (mirroring the bc::exec interpreter loop), path-split over a shared
// decision map, with obligations discharged syntactically or via the
// DPLL(T) solver. See Tv.h for the contract.
//
//===----------------------------------------------------------------------===//

#include "tv/Tv.h"

#include "smt/Solver.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <sstream>

using namespace pdl;
using namespace pdl::tv;
namespace bc = pdl::backend::bc;
using bc::Op;

const char *tv::statusName(Status S) {
  switch (S) {
  case Status::Certified:
    return "certified";
  case Status::FuzzTrusted:
    return "fuzz-trusted";
  case Status::Rejected:
    return "rejected";
  }
  return "?";
}

namespace {

//===----------------------------------------------------------------------===//
// Digest helpers (FNV-1a, the same flavor sim::fnv1aHash uses)
//===----------------------------------------------------------------------===//

constexpr uint64_t FnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x100000001b3ull;

uint64_t fnvBytes(uint64_t H, const void *P, size_t N) {
  const unsigned char *B = static_cast<const unsigned char *>(P);
  for (size_t I = 0; I != N; ++I) {
    H ^= B[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnvU64(uint64_t H, uint64_t V) { return fnvBytes(H, &V, 8); }

uint64_t fnvStr(uint64_t H, const std::string &S) {
  return fnvBytes(H, S.data(), S.size());
}

//===----------------------------------------------------------------------===//
// Symbolic terms
//===----------------------------------------------------------------------===//

/// A node of the shared symbolic store. Hash-consed per validated unit, so
/// a faithful compile makes the tree side and the bytecode side produce
/// pointer-identical terms.
struct Term {
  enum class K : uint8_t { Const, Var, App, Hook };
  K Kind;
  Op Opc = Op::Const;    // App: the bytecode opcode vocabulary
  unsigned Width = 1;    // result width in bits
  Bits KVal;             // Const
  uint16_t Slot = 0;     // Var: frame slot index
  uint32_t Imm = 0;      // App: slice bounds / extension width
  bool IsExtern = false; // Hook
  unsigned SiteOrd = 0;  // Hook: per-unit site ordinal, first-use order
  unsigned Seq = 0;      // Hook: position in the hook-call trace
  std::vector<const Term *> Args;
};

class Arena {
public:
  const Term *constant(const Bits &B) {
    Term T;
    T.Kind = Term::K::Const;
    T.Width = B.width();
    T.KVal = B;
    std::ostringstream OS;
    OS << "c:" << B.zext() << ':' << B.width();
    return intern(std::move(T), OS.str());
  }

  const Term *var(uint16_t Slot, unsigned Width) {
    Term T;
    T.Kind = Term::K::Var;
    T.Width = Width;
    T.Slot = Slot;
    std::ostringstream OS;
    OS << "v:" << Slot << ':' << Width;
    return intern(std::move(T), OS.str());
  }

  const Term *hook(bool IsExtern, const void *Site, unsigned Seq,
                   unsigned Width, std::vector<const Term *> Args) {
    Term T;
    T.Kind = Term::K::Hook;
    T.Width = Width;
    T.IsExtern = IsExtern;
    T.SiteOrd = siteOrd(Site);
    T.Seq = Seq;
    T.Args = std::move(Args);
    std::ostringstream OS;
    OS << "h:" << (IsExtern ? 'x' : 'm') << T.SiteOrd << ':' << Seq << ':'
       << Width;
    for (const Term *A : T.Args)
      OS << ':' << A;
    return intern(std::move(T), OS.str());
  }

  /// Applies \p Opc, computing the result width and checking the width
  /// preconditions the Bits domain asserts. Folds to a constant when every
  /// operand is one — exactly the folding the compiler and both evaluators
  /// perform, no more. Returns nullptr on a width violation (a miscompile
  /// signal for the bytecode side).
  const Term *applyOp(Op Opc, const Term *B, const Term *C, uint32_t Imm) {
    unsigned W;
    switch (Opc) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::UDiv:
    case Op::SDiv:
    case Op::URem:
    case Op::SRem:
    case Op::And:
    case Op::Or:
    case Op::Xor:
      if (!C || B->Width != C->Width)
        return nullptr;
      W = B->Width;
      break;
    case Op::Shl:
    case Op::LShr:
    case Op::AShr:
      if (!C)
        return nullptr;
      W = B->Width;
      break;
    case Op::Eq:
    case Op::Ne:
    case Op::ULt:
    case Op::ULe:
    case Op::SLt:
    case Op::SLe:
      if (!C || B->Width != C->Width)
        return nullptr;
      W = 1;
      break;
    case Op::LogAnd:
    case Op::LogOr:
      if (!C)
        return nullptr;
      W = 1;
      break;
    case Op::LogNot:
      W = 1;
      break;
    case Op::BitNot:
    case Op::Neg:
      W = B->Width;
      break;
    case Op::Slice: {
      unsigned Hi = Imm >> 16, Lo = Imm & 0xffff;
      if (Hi < Lo || Hi >= B->Width)
        return nullptr;
      W = Hi - Lo + 1;
      break;
    }
    case Op::ZExt:
    case Op::SExt:
      if (Imm < 1 || Imm > 64)
        return nullptr;
      W = Imm;
      break;
    case Op::Concat:
      if (!C || B->Width + C->Width > 64)
        return nullptr;
      W = B->Width + C->Width;
      break;
    default:
      return nullptr;
    }

    if (B->Kind == Term::K::Const && (!C || C->Kind == Term::K::Const))
      return constant(fold(Opc, B->KVal, C ? &C->KVal : nullptr, Imm));

    Term T;
    T.Kind = Term::K::App;
    T.Opc = Opc;
    T.Width = W;
    T.Imm = Imm;
    T.Args.push_back(B);
    if (C)
      T.Args.push_back(C);
    std::ostringstream OS;
    OS << "a:" << static_cast<int>(Opc) << ':' << Imm;
    for (const Term *A : T.Args)
      OS << ':' << A;
    return intern(std::move(T), OS.str());
  }

  unsigned siteOrd(const void *Site) {
    auto It = SiteOrds.find(Site);
    if (It != SiteOrds.end())
      return It->second;
    unsigned Ord = static_cast<unsigned>(SiteOrds.size());
    SiteOrds.emplace(Site, Ord);
    return Ord;
  }

  /// Structural hash, stable across processes (pointer-free).
  uint64_t termHash(const Term *T) {
    auto It = Hashes.find(T);
    if (It != Hashes.end())
      return It->second;
    uint64_t H = FnvBasis;
    H = fnvU64(H, static_cast<uint64_t>(T->Kind));
    H = fnvU64(H, T->Width);
    switch (T->Kind) {
    case Term::K::Const:
      H = fnvU64(H, T->KVal.zext());
      break;
    case Term::K::Var:
      H = fnvU64(H, T->Slot);
      break;
    case Term::K::App:
      H = fnvU64(H, static_cast<uint64_t>(T->Opc));
      H = fnvU64(H, T->Imm);
      break;
    case Term::K::Hook:
      H = fnvU64(H, T->IsExtern ? 1 : 0);
      H = fnvU64(H, T->SiteOrd);
      H = fnvU64(H, T->Seq);
      break;
    }
    for (const Term *A : T->Args)
      H = fnvU64(H, termHash(A));
    Hashes.emplace(T, H);
    return H;
  }

private:
  static Bits fold(Op Opc, const Bits &L, const Bits *RP, uint32_t Imm) {
    // Mirrors the bc::exec cases (which mirror evalExpr/evalBinary).
    const Bits &R = RP ? *RP : L;
    switch (Opc) {
    case Op::Add:
      return L.add(R);
    case Op::Sub:
      return L.sub(R);
    case Op::Mul:
      return L.mul(R);
    case Op::UDiv:
      return L.udiv(R);
    case Op::SDiv:
      return L.sdiv(R);
    case Op::URem:
      return L.urem(R);
    case Op::SRem:
      return L.srem(R);
    case Op::And:
      return L.and_(R);
    case Op::Or:
      return L.or_(R);
    case Op::Xor:
      return L.xor_(R);
    case Op::Shl:
      return L.shl(R);
    case Op::LShr:
      return L.lshr(R);
    case Op::AShr:
      return L.ashr(R);
    case Op::Eq:
      return L.eq(R);
    case Op::Ne:
      return L.ne(R);
    case Op::ULt:
      return L.ult(R);
    case Op::ULe:
      return L.ule(R);
    case Op::SLt:
      return L.slt(R);
    case Op::SLe:
      return L.sle(R);
    case Op::LogAnd:
      return Bits(L.toBool() && R.toBool() ? 1 : 0, 1);
    case Op::LogOr:
      return Bits(L.toBool() || R.toBool() ? 1 : 0, 1);
    case Op::LogNot:
      return Bits(L.isZero() ? 1 : 0, 1);
    case Op::BitNot:
      return L.not_();
    case Op::Neg:
      return Bits(0, L.width()).sub(L);
    case Op::Slice:
      return L.slice(Imm >> 16, Imm & 0xffff);
    case Op::ZExt:
      return L.zextTo(Imm);
    case Op::SExt:
      return L.sextTo(Imm);
    case Op::Concat:
      return L.concat(R);
    default:
      assert(false && "fold of non-pure opcode");
      return Bits();
    }
  }

  const Term *intern(Term &&T, std::string Key) {
    auto It = Map.find(Key);
    if (It != Map.end())
      return It->second;
    Store.push_back(std::move(T));
    const Term *P = &Store.back();
    Map.emplace(std::move(Key), P);
    return P;
  }

  std::deque<Term> Store;
  std::map<std::string, const Term *> Map;
  std::map<const void *, unsigned> SiteOrds;
  std::map<const Term *, uint64_t> Hashes;
};

/// Depth- and length-capped rendering for certificate notes.
std::string printTerm(const Term *T, const bc::PipeProgram &PP,
                      unsigned Depth = 0) {
  if (Depth > 4)
    return "...";
  std::ostringstream OS;
  switch (T->Kind) {
  case Term::K::Const:
    OS << T->KVal.str();
    break;
  case Term::K::Var:
    if (T->Slot < PP.SlotNames.size())
      OS << PP.SlotNames[T->Slot];
    else
      OS << "s" << T->Slot;
    break;
  case Term::K::App:
    OS << "op" << static_cast<int>(T->Opc) << "(";
    for (unsigned I = 0, E = static_cast<unsigned>(T->Args.size()); I != E;
         ++I)
      OS << (I ? ", " : "") << printTerm(T->Args[I], PP, Depth + 1);
    OS << ")";
    break;
  case Term::K::Hook:
    OS << (T->IsExtern ? "extern" : "mem") << T->SiteOrd << "#" << T->Seq
       << "(";
    for (unsigned I = 0, E = static_cast<unsigned>(T->Args.size()); I != E;
         ++I)
      OS << (I ? ", " : "") << printTerm(T->Args[I], PP, Depth + 1);
    OS << ")";
    break;
  }
  std::string S = OS.str();
  if (S.size() > 160)
    S = S.substr(0, 157) + "...";
  return S;
}

//===----------------------------------------------------------------------===//
// Symbolic evaluation
//===----------------------------------------------------------------------===//

using DecisionMap = std::map<const Term *, bool>;

/// One symbolic run of either representation under a decision map.
struct Run {
  enum class St { Ok, Fork, Err };
  St S = St::Ok;
  const Term *Result = nullptr;
  std::vector<const Term *> Trace; // Hook terms in call order
  const Term *ForkOn = nullptr;
  std::string Err;
};

/// Shared branch resolution: constants decide themselves, decided terms
/// look up the path's decision, anything else forks the path.
bool decideTerm(const Term *T, const DecisionMap &D, Run &R, bool &Out) {
  if (T->Kind == Term::K::Const) {
    Out = T->KVal.toBool();
    return true;
  }
  auto It = D.find(T);
  if (It != D.end()) {
    Out = It->second;
    return true;
  }
  R.S = Run::St::Fork;
  R.ForkOn = T;
  return false;
}

/// Symbolic mirror of backend/Eval.cpp: same unbound-read-as-zero rule,
/// same eager logical connectives, same lazy ternary, same hook sequencing,
/// and constant folding exactly when every operand is constant (matching
/// the compiler, so both sides intern identical terms).
class TreeEval {
public:
  TreeEval(Arena &A, const ast::Program &Prog, const bc::PipeProgram &PP,
           const DecisionMap &D, Run &R)
      : A(A), Prog(Prog), PP(PP), D(D), R(R) {}

  using Scope = std::map<std::string, const Term *>;

  const Term *eval(const ast::Expr &E, const Scope *Sc) {
    using ast::Expr;
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return A.constant(
          Bits(cast<ast::IntLitExpr>(&E)->value(), E.type().width()));
    case Expr::Kind::BoolLit:
      return A.constant(
          Bits(cast<ast::BoolLitExpr>(&E)->value() ? 1 : 0, 1));
    case Expr::Kind::VarRef: {
      const auto *V = cast<ast::VarRefExpr>(&E);
      if (Sc) {
        auto It = Sc->find(V->name());
        if (It != Sc->end())
          return It->second;
        return A.constant(Bits(0, E.type().width()));
      }
      uint16_t S = PP.slotOf(V->name());
      if (S == bc::NoSlot)
        return err("variable '" + V->name() + "' missing from slot table");
      return A.var(S, PP.InitFrame[S].width());
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<ast::UnaryExpr>(&E);
      const Term *V = eval(*U->operand(), Sc);
      if (!V)
        return nullptr;
      switch (U->op()) {
      case ast::UnaryOp::LogicalNot:
        return apply(Op::LogNot, V, nullptr, 0);
      case ast::UnaryOp::BitNot:
        return apply(Op::BitNot, V, nullptr, 0);
      case ast::UnaryOp::Negate:
        return apply(Op::Neg, V, nullptr, 0);
      }
      break;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<ast::BinaryExpr>(&E);
      const Term *L = eval(*B->lhs(), Sc);
      if (!L)
        return nullptr;
      const Term *R2 = eval(*B->rhs(), Sc);
      if (!R2)
        return nullptr;
      bool Signed = B->lhs()->type().isSigned();
      switch (B->op()) {
      case ast::BinaryOp::Add:
        return apply(Op::Add, L, R2, 0);
      case ast::BinaryOp::Sub:
        return apply(Op::Sub, L, R2, 0);
      case ast::BinaryOp::Mul:
        return apply(Op::Mul, L, R2, 0);
      case ast::BinaryOp::Div:
        return apply(Signed ? Op::SDiv : Op::UDiv, L, R2, 0);
      case ast::BinaryOp::Rem:
        return apply(Signed ? Op::SRem : Op::URem, L, R2, 0);
      case ast::BinaryOp::BitAnd:
        return apply(Op::And, L, R2, 0);
      case ast::BinaryOp::BitOr:
        return apply(Op::Or, L, R2, 0);
      case ast::BinaryOp::BitXor:
        return apply(Op::Xor, L, R2, 0);
      case ast::BinaryOp::Shl:
        return apply(Op::Shl, L, R2, 0);
      case ast::BinaryOp::Shr:
        return apply(Signed ? Op::AShr : Op::LShr, L, R2, 0);
      case ast::BinaryOp::Eq:
        return apply(Op::Eq, L, R2, 0);
      case ast::BinaryOp::Ne:
        return apply(Op::Ne, L, R2, 0);
      case ast::BinaryOp::Lt:
        return apply(Signed ? Op::SLt : Op::ULt, L, R2, 0);
      case ast::BinaryOp::Le:
        return apply(Signed ? Op::SLe : Op::ULe, L, R2, 0);
      case ast::BinaryOp::Gt: // swapped operands, like the tree walker
        return apply(Signed ? Op::SLt : Op::ULt, R2, L, 0);
      case ast::BinaryOp::Ge:
        return apply(Signed ? Op::SLe : Op::ULe, R2, L, 0);
      case ast::BinaryOp::LogicalAnd:
        return apply(Op::LogAnd, L, R2, 0);
      case ast::BinaryOp::LogicalOr:
        return apply(Op::LogOr, L, R2, 0);
      case ast::BinaryOp::Concat:
        return apply(Op::Concat, L, R2, 0);
      }
      break;
    }
    case Expr::Kind::Ternary: {
      const auto *T = cast<ast::TernaryExpr>(&E);
      const Term *C = eval(*T->cond(), Sc);
      if (!C)
        return nullptr;
      bool B;
      if (!decideTerm(C, D, R, B))
        return nullptr;
      return eval(B ? *T->thenExpr() : *T->elseExpr(), Sc);
    }
    case Expr::Kind::Slice: {
      const auto *S = cast<ast::SliceExpr>(&E);
      const Term *V = eval(*S->base(), Sc);
      if (!V)
        return nullptr;
      return apply(Op::Slice, V, nullptr,
                   (static_cast<uint32_t>(S->hi()) << 16) | S->lo());
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<ast::CastExpr>(&E);
      const Term *V = eval(*C->operand(), Sc);
      if (!V)
        return nullptr;
      bool SrcSigned = C->operand()->type().isSigned();
      return apply(SrcSigned ? Op::SExt : Op::ZExt, V, nullptr,
                   C->target().width());
    }
    case Expr::Kind::MemRead: {
      const auto *M = cast<ast::MemReadExpr>(&E);
      const Term *Addr = eval(*M->addr(), Sc);
      if (!Addr)
        return nullptr;
      const Term *H =
          A.hook(false, M, static_cast<unsigned>(R.Trace.size()),
                 E.type().width(), {Addr});
      R.Trace.push_back(H);
      return H;
    }
    case Expr::Kind::FuncCall: {
      const auto *C = cast<ast::FuncCallExpr>(&E);
      const ast::FuncDecl *F = Prog.findFunc(C->callee());
      if (!F)
        return err("call of unknown function '" + C->callee() + "'");
      if (Depth >= 64)
        return err("def-function inlining too deep");
      Scope Local;
      for (unsigned I = 0, N = static_cast<unsigned>(C->args().size());
           I != N; ++I) {
        const Term *V = eval(*C->args()[I], Sc);
        if (!V)
          return nullptr;
        Local[F->Params[I].Name] = V;
      }
      ++Depth;
      const Term *Ret = A.constant(Bits());
      for (const ast::StmtPtr &S : F->Body) {
        if (const auto *AS = dyn_cast<ast::AssignStmt>(S.get())) {
          const Term *V = eval(*AS->value(), &Local);
          if (!V) {
            --Depth;
            return nullptr;
          }
          Local[AS->name()] = V;
          continue;
        }
        Ret = eval(*cast<ast::ReturnStmt>(S.get())->value(), &Local);
        break;
      }
      --Depth;
      return Ret;
    }
    case Expr::Kind::ExternCall: {
      const auto *C = cast<ast::ExternCallExpr>(&E);
      std::vector<const Term *> Args;
      for (const ast::ExprPtr &Arg : C->args()) {
        const Term *V = eval(*Arg, Sc);
        if (!V)
          return nullptr;
        Args.push_back(V);
      }
      const Term *H =
          A.hook(true, C, static_cast<unsigned>(R.Trace.size()),
                 E.type().width(), std::move(Args));
      R.Trace.push_back(H);
      return H;
    }
    }
    return err("unknown expression kind");
  }

  /// Mirror of evalGuard: terms evaluate (and fire hooks) in order, and
  /// evaluation stops at the first term that disagrees with its polarity.
  const Term *evalGuard(const Guard &G) {
    for (const GuardTerm &T : G) {
      const Term *V = eval(*T.Cond, nullptr);
      if (!V)
        return nullptr;
      bool B;
      if (!decideTerm(V, D, R, B))
        return nullptr;
      if (B != T.Polarity)
        return A.constant(Bits(0, 1));
    }
    return A.constant(Bits(1, 1));
  }

private:
  const Term *apply(Op Opc, const Term *B, const Term *C, uint32_t Imm) {
    const Term *T = A.applyOp(Opc, B, C, Imm);
    if (!T)
      return err("width violation in tree evaluation");
    return T;
  }

  const Term *err(std::string Msg) {
    R.S = Run::St::Err;
    R.Err = std::move(Msg);
    return nullptr;
  }

  Arena &A;
  const ast::Program &Prog;
  const bc::PipeProgram &PP;
  const DecisionMap &D;
  Run &R;
  unsigned Depth = 0;
};

/// Symbolic mirror of the bc::exec interpreter loop. Scratch slots start
/// uninitialized (nullptr): a read before a write is a hard refutation —
/// exactly the defect the dropped-CSE-invalidation mutation introduces.
class BcEval {
public:
  BcEval(Arena &A, const bc::PipeProgram &PP, const DecisionMap &D, Run &R)
      : A(A), PP(PP), D(D), R(R) {}

  void run(const bc::ExprProgram &P) {
    std::vector<const Term *> F(PP.FrameSize, nullptr);
    for (unsigned V = 0; V != PP.NumVars && V < F.size(); ++V)
      F[V] = A.var(static_cast<uint16_t>(V), PP.InitFrame[V].width());

    const size_t N = P.Code.size();
    if (N == 0)
      return err("empty bytecode program");
    size_t Steps = 0, Budget = 4 * N + 16;
    size_t PC = 0;
    for (;;) {
      if (PC >= N)
        return err("bytecode ran off the end");
      if (++Steps > Budget)
        return err("runaway bytecode (branch cycle)");
      const bc::Insn &I = P.Code[PC];
      switch (I.Opc) {
      case Op::Const:
        if (I.Imm >= P.Pool.size())
          return err("constant pool index out of range");
        if (!store(F, I.A, A.constant(P.Pool[I.Imm])))
          return;
        break;
      case Op::Copy: {
        const Term *V = load(F, I.B);
        if (!V || !store(F, I.A, V))
          return;
        break;
      }
      case Op::ZExt:
      case Op::SExt: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        const Term *T2 = A.applyOp(I.Opc, V, nullptr, I.C);
        if (!T2)
          return err("width violation in bytecode");
        if (!store(F, I.A, T2))
          return;
        break;
      }
      case Op::LogNot:
      case Op::BitNot:
      case Op::Neg:
      case Op::Slice: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        const Term *T2 = A.applyOp(I.Opc, V, nullptr, I.Imm);
        if (!T2)
          return err("width violation in bytecode");
        if (!store(F, I.A, T2))
          return;
        break;
      }
      case Op::MemRead: {
        if (I.Imm >= P.MemSites.size())
          return err("mem-site index out of range");
        const Term *Addr = load(F, I.B);
        if (!Addr)
          return;
        const ast::MemReadExpr *Site = P.MemSites[I.Imm];
        const Term *H =
            A.hook(false, Site, static_cast<unsigned>(R.Trace.size()),
                   Site->type().width(), {Addr});
        R.Trace.push_back(H);
        if (!store(F, I.A, H))
          return;
        break;
      }
      case Op::Extern: {
        if (I.Imm >= P.ExternSites.size())
          return err("extern-site index out of range");
        std::vector<const Term *> Args;
        for (unsigned K = 0; K != I.C; ++K) {
          const Term *V = load(F, static_cast<uint16_t>(I.B + K));
          if (!V)
            return;
          Args.push_back(V);
        }
        const ast::ExternCallExpr *Site = P.ExternSites[I.Imm];
        const Term *H =
            A.hook(true, Site, static_cast<unsigned>(R.Trace.size()),
                   Site->type().width(), std::move(Args));
        R.Trace.push_back(H);
        if (!store(F, I.A, H))
          return;
        break;
      }
      case Op::BrFalse:
      case Op::BrTrue: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        bool B;
        if (!decideTerm(V, D, R, B))
          return;
        bool Taken = (I.Opc == Op::BrTrue) == B;
        if (Taken) {
          PC = I.Imm;
          continue;
        }
        break;
      }
      case Op::Jump:
        PC = I.Imm;
        continue;
      case Op::Ret: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        R.Result = V;
        return;
      }
      case Op::RetTrue:
        R.Result = A.constant(Bits(1, 1));
        return;
      case Op::RetFalse:
        R.Result = A.constant(Bits(0, 1));
        return;

      // Superinstructions (backend/Fuse.h): each executes its documented
      // unfused expansion symbolically — same applyOp calls on base
      // opcodes (so the interned terms are pointer-identical to the
      // unfused run's) and same decideTerm forks (so the decision order,
      // and with it the obligations digest, is unchanged). The folded-away
      // compare/arm store is deliberately NOT performed: an illegally
      // fused window (PDL_TV_MUTATE=fuse-window) leaves a later read of
      // that slot uninitialized or stale, which this evaluator refutes.
      case Op::FusedCmpBr: {
        const Term *B = load(F, I.B);
        if (!B)
          return;
        const Term *C = load(F, I.C);
        if (!C)
          return;
        const Term *T2 = A.applyOp(Op(I.A & 0xff), B, C, 0);
        if (!T2)
          return err("width violation in bytecode");
        bool Bv;
        if (!decideTerm(T2, D, R, Bv))
          return;
        if (Bv == ((I.A & 0x100) != 0)) {
          PC = I.Imm;
          continue;
        }
        break;
      }
      case Op::FusedCmpRetBool: {
        const Term *B = load(F, I.B);
        if (!B)
          return;
        const Term *C = load(F, I.C);
        if (!C)
          return;
        const Term *T2 = A.applyOp(Op(I.A & 0xff), B, C, 0);
        if (!T2)
          return err("width violation in bytecode");
        bool Bv;
        if (!decideTerm(T2, D, R, Bv))
          return;
        R.Result = A.constant(Bits(Bv != ((I.A & 0x100) != 0) ? 1 : 0, 1));
        return;
      }
      case Op::FusedRetBool: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        bool Bv;
        if (!decideTerm(V, D, R, Bv))
          return;
        R.Result = A.constant(Bits(Bv != (I.A != 0) ? 1 : 0, 1));
        return;
      }
      case Op::FusedSelect: {
        const Term *V = load(F, I.B);
        if (!V)
          return;
        bool Bv;
        if (!decideTerm(V, D, R, Bv))
          return;
        const bool IsConst = (I.Imm & (1u << (Bv ? 16 : 17))) != 0;
        const uint32_t Operand = Bv ? I.C : (I.Imm & 0xffff);
        const Term *Picked;
        if (IsConst) {
          if (Operand >= P.Pool.size())
            return err("constant pool index out of range");
          Picked = A.constant(P.Pool[Operand]);
        } else {
          Picked = load(F, static_cast<uint16_t>(Operand));
          if (!Picked)
            return;
        }
        if (!store(F, I.A, Picked))
          return;
        break;
      }
      case Op::FusedBinK: {
        if (I.Imm >= P.Pool.size())
          return err("constant pool index out of range");
        const Term *K = A.constant(P.Pool[I.Imm]);
        const Term *V = load(F, I.B);
        if (!V)
          return;
        const Term *T2 = (I.C & 0x100) ? A.applyOp(Op(I.C & 0xff), K, V, 0)
                                       : A.applyOp(Op(I.C & 0xff), V, K, 0);
        if (!T2)
          return err("width violation in bytecode");
        if (!store(F, I.A, T2))
          return;
        break;
      }
      case Op::FusedRetOp: {
        const Op Sub = Op(I.A);
        const Term *V = nullptr;
        switch (Sub) {
        case Op::Const:
          if (I.Imm >= P.Pool.size())
            return err("constant pool index out of range");
          V = A.constant(P.Pool[I.Imm]);
          break;
        case Op::Copy:
          V = load(F, I.B);
          break;
        case Op::LogNot:
        case Op::BitNot:
        case Op::Neg:
        case Op::Slice: {
          const Term *B = load(F, I.B);
          if (!B)
            return;
          V = A.applyOp(Sub, B, nullptr, I.Imm);
          break;
        }
        case Op::ZExt:
        case Op::SExt: {
          const Term *B = load(F, I.B);
          if (!B)
            return;
          V = A.applyOp(Sub, B, nullptr, I.C);
          break;
        }
        default: { // pure binary sub-ops
          const Term *B = load(F, I.B);
          if (!B)
            return;
          const Term *C = load(F, I.C);
          if (!C)
            return;
          V = A.applyOp(Sub, B, C, 0);
          break;
        }
        }
        if (!V) {
          if (R.S != Run::St::Err)
            err("width violation in bytecode");
          return;
        }
        R.Result = V;
        return;
      }

      default: { // pure binary ops
        const Term *B = load(F, I.B);
        if (!B)
          return;
        const Term *C = load(F, I.C);
        if (!C)
          return;
        const Term *T2 = A.applyOp(I.Opc, B, C, I.Imm);
        if (!T2)
          return err("width violation in bytecode");
        if (!store(F, I.A, T2))
          return;
        break;
      }
      }
      ++PC;
    }
  }

private:
  const Term *load(std::vector<const Term *> &F, uint16_t S) {
    if (S >= F.size()) {
      err("slot index out of range");
      return nullptr;
    }
    if (!F[S]) {
      err("read of uninitialized scratch slot s" + std::to_string(S));
      return nullptr;
    }
    return F[S];
  }

  bool store(std::vector<const Term *> &F, uint16_t S, const Term *V) {
    if (S >= F.size()) {
      err("slot index out of range");
      return false;
    }
    F[S] = V;
    return true;
  }

  void err(std::string Msg) {
    R.S = Run::St::Err;
    R.Err = std::move(Msg);
  }

  Arena &A;
  const bc::PipeProgram &PP;
  const DecisionMap &D;
  Run &R;
};

//===----------------------------------------------------------------------===//
// Units
//===----------------------------------------------------------------------===//

/// One validated program: an expression unit or a guard unit. A guard unit
/// with a null bytecode program claims "always true" and must fold
/// constant-true on every path.
struct Unit {
  std::string Label;
  std::string Kind; // "expr" | "guard"
  std::string Source;
  const ast::Expr *E = nullptr;
  const Guard *G = nullptr;
  const bc::ExprProgram *Prog = nullptr;
};

std::string truncateSource(std::string S, size_t Max = 64) {
  std::replace(S.begin(), S.end(), '\n', ' ');
  if (S.size() > Max)
    S = S.substr(0, Max - 3) + "...";
  return S;
}

std::string guardSource(const Guard &G) {
  std::string S;
  for (unsigned I = 0, E = static_cast<unsigned>(G.size()); I != E; ++I) {
    if (I)
      S += " && ";
    S += (G[I].Polarity ? "" : "!");
    S += "(" + ast::printExpr(*G[I].Cond) + ")";
  }
  return truncateSource(std::move(S));
}

/// Mirrors compileStmtPrograms' visit order, so unit labels are stable and
/// every compiled statement program is covered.
void walkStmtExprs(const ast::Stmt &S, std::vector<const ast::Expr *> &Out) {
  using ast::Stmt;
  switch (S.kind()) {
  case Stmt::Kind::Assign:
    Out.push_back(cast<ast::AssignStmt>(&S)->value());
    return;
  case Stmt::Kind::SyncRead:
    Out.push_back(cast<ast::SyncReadStmt>(&S)->addr());
    return;
  case Stmt::Kind::PipeCall:
    for (const ast::ExprPtr &A : cast<ast::PipeCallStmt>(&S)->args())
      Out.push_back(A.get());
    return;
  case Stmt::Kind::MemWrite:
    Out.push_back(cast<ast::MemWriteStmt>(&S)->addr());
    Out.push_back(cast<ast::MemWriteStmt>(&S)->value());
    return;
  case Stmt::Kind::Output:
    Out.push_back(cast<ast::OutputStmt>(&S)->value());
    return;
  case Stmt::Kind::Lock:
    if (const ast::Expr *A = cast<ast::LockStmt>(&S)->addr())
      Out.push_back(A);
    return;
  case Stmt::Kind::Verify: {
    const auto *V = cast<ast::VerifyStmt>(&S);
    Out.push_back(V->actual());
    if (const ast::ExternCallExpr *U = V->predictorUpdate())
      for (const ast::ExprPtr &A : U->args())
        Out.push_back(A.get());
    return;
  }
  case Stmt::Kind::Update:
    Out.push_back(cast<ast::UpdateStmt>(&S)->newPred());
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<ast::IfStmt>(&S);
    Out.push_back(I->cond());
    for (const ast::StmtPtr &T : I->thenBody())
      walkStmtExprs(*T, Out);
    for (const ast::StmtPtr &T : I->elseBody())
      walkStmtExprs(*T, Out);
    return;
  }
  case Stmt::Kind::Return:
    if (const ast::Expr *V = cast<ast::ReturnStmt>(&S)->value())
      Out.push_back(V);
    return;
  case Stmt::Kind::SpecCheck:
  case Stmt::Kind::StageSep:
    return;
  }
}

uint64_t exprTreeDigest(const ast::Expr &E) {
  return fnvStr(FnvBasis, ast::printExpr(E));
}

uint64_t guardTreeDigest(const Guard &G) {
  uint64_t H = FnvBasis;
  for (const GuardTerm &T : G) {
    H = fnvU64(H, T.Polarity ? 1 : 0);
    H = fnvStr(H, ast::printExpr(*T.Cond));
  }
  return H;
}

uint64_t bcProgramDigest(const bc::ExprProgram *P) {
  uint64_t H = FnvBasis;
  if (!P)
    return fnvStr(H, "null");
  for (const bc::Insn &I : P->Code) {
    H = fnvU64(H, static_cast<uint64_t>(I.Opc));
    H = fnvU64(H, I.A);
    H = fnvU64(H, I.B);
    H = fnvU64(H, I.C);
    H = fnvU64(H, I.Imm);
  }
  for (const Bits &B : P->Pool) {
    H = fnvU64(H, B.zext());
    H = fnvU64(H, B.width());
  }
  H = fnvU64(H, P->MemSites.size());
  H = fnvU64(H, P->ExternSites.size());
  return H;
}

//===----------------------------------------------------------------------===//
// Per-unit validation
//===----------------------------------------------------------------------===//

/// Maps an App/Hook term onto the solver's function-symbol grammar
/// (Solver.h groundEval for the interpreted part).
std::string smtSymbol(const Term *T) {
  if (T->Kind == Term::K::Hook) {
    std::ostringstream OS;
    OS << "hook:" << (T->IsExtern ? 'x' : 'm') << T->SiteOrd << ':' << T->Seq;
    return OS.str();
  }
  const char *N = nullptr;
  switch (T->Opc) {
  case Op::Add:
    N = "add";
    break;
  case Op::Sub:
    N = "sub";
    break;
  case Op::Mul:
    N = "mul";
    break;
  case Op::UDiv:
    N = "udiv";
    break;
  case Op::SDiv:
    N = "sdiv";
    break;
  case Op::URem:
    N = "urem";
    break;
  case Op::SRem:
    N = "srem";
    break;
  case Op::And:
    N = "and";
    break;
  case Op::Or:
    N = "or";
    break;
  case Op::Xor:
    N = "xor";
    break;
  case Op::Shl:
    N = "shl";
    break;
  case Op::LShr:
    N = "lshr";
    break;
  case Op::AShr:
    N = "ashr";
    break;
  case Op::Eq:
    N = "eq";
    break;
  case Op::Ne:
    N = "ne";
    break;
  case Op::ULt:
    N = "ult";
    break;
  case Op::ULe:
    N = "ule";
    break;
  case Op::SLt:
    N = "slt";
    break;
  case Op::SLe:
    N = "sle";
    break;
  case Op::LogAnd:
    N = "logand";
    break;
  case Op::LogOr:
    N = "logor";
    break;
  case Op::LogNot:
    N = "lognot";
    break;
  case Op::BitNot:
    N = "bitnot";
    break;
  case Op::Neg:
    N = "neg";
    break;
  case Op::Slice:
    N = "slice";
    break;
  case Op::ZExt:
    N = "zext";
    break;
  case Op::SExt:
    N = "sext";
    break;
  case Op::Concat:
    N = "concat";
    break;
  default:
    N = "unknown";
    break;
  }
  std::string S = std::string(N) + ":" + std::to_string(T->Width);
  if (T->Opc == Op::Slice)
    S += ":" + std::to_string(T->Imm);
  return S;
}

class UnitValidator {
public:
  UnitValidator(Arena &A, const ast::Program &Prog, const bc::PipeProgram &PP,
                const Unit &U, const ValidateOptions &Opts)
      : A(A), Prog(Prog), PP(PP), U(U), Opts(Opts) {}

  ProgramCert validate(unsigned &QueriesOut, unsigned &DecisionsOut) {
    ProgramCert C;
    C.Label = U.Label;
    C.Kind = U.Kind;
    C.Source = U.Source;
    C.TreeDigest = U.E ? exprTreeDigest(*U.E) : guardTreeDigest(*U.G);
    C.BcDigest = bcProgramDigest(U.Prog);

    struct Item {
      std::vector<std::pair<const Term *, bool>> Ord;
      DecisionMap D;
    };
    std::deque<Item> Work;
    Work.push_back({});
    uint64_t OblAcc = FnvBasis;

    while (!Work.empty()) {
      if (C.Paths >= Opts.MaxPathsPerProgram) {
        C.BudgetExceeded = true;
        note(C, "path budget (" + std::to_string(Opts.MaxPathsPerProgram) +
                    ") exhausted; remaining paths unproven");
        break;
      }
      Item It = std::move(Work.front());
      Work.pop_front();

      Run TR;
      TreeEval TE(A, Prog, PP, It.D, TR);
      TR.Result = U.E ? TE.eval(*U.E, nullptr) : TE.evalGuard(*U.G);
      if (TR.S == Run::St::Fork) {
        fork(Work, It, TR.ForkOn);
        continue;
      }
      Run BR;
      if (U.Prog) {
        BcEval BE(A, PP, It.D, BR);
        BE.run(*U.Prog);
      } else {
        // Null program: the compiler claims this guard is constant-true.
        BR.Result = A.constant(Bits(1, 1));
      }
      if (BR.S == Run::St::Fork) {
        fork(Work, It, BR.ForkOn);
        continue;
      }

      ++C.Paths;
      OblAcc = fnvU64(OblAcc, pathHash(It, TR, BR));
      judge(C, It, TR, BR);
    }

    C.ObligationsDigest = OblAcc;
    if (C.Refuted)
      C.ProgStatus = "rejected";
    else if (C.Unproven || C.BudgetExceeded)
      C.ProgStatus = "fuzz-trusted";
    else
      C.ProgStatus = "proved";
    QueriesOut += Sol ? Sol->queryCount() : 0;
    DecisionsOut += Sol ? Sol->decisionCount() : 0;
    return C;
  }

private:
  template <typename WorkT>
  void fork(WorkT &Work, const typename WorkT::value_type &It,
            const Term *On) {
    for (bool B : {false, true}) {
      auto Child = It;
      Child.Ord.emplace_back(On, B);
      Child.D.emplace(On, B);
      Work.push_back(std::move(Child));
    }
  }

  template <typename ItemT>
  uint64_t pathHash(const ItemT &It, const Run &TR, const Run &BR) {
    uint64_t H = FnvBasis;
    H = fnvU64(H, It.Ord.size());
    for (const auto &D : It.Ord) {
      H = fnvU64(H, A.termHash(D.first));
      H = fnvU64(H, D.second ? 1 : 0);
    }
    for (const Run *R : {&TR, &BR}) {
      H = fnvU64(H, static_cast<uint64_t>(R->S));
      if (R->S == Run::St::Err) {
        H = fnvStr(H, R->Err);
        continue;
      }
      H = fnvU64(H, R->Result ? A.termHash(R->Result) : 0);
      H = fnvU64(H, R->Trace.size());
      for (const Term *T : R->Trace)
        H = fnvU64(H, A.termHash(T));
    }
    return H;
  }

  void note(ProgramCert &C, std::string Msg) {
    if (C.Notes.size() < Opts.MaxNotes)
      C.Notes.push_back(std::move(Msg));
  }

  template <typename ItemT>
  void judge(ProgramCert &C, const ItemT &It, const Run &TR, const Run &BR) {
    if (TR.S == Run::St::Err) {
      ++C.Refuted;
      note(C, "tree evaluation error: " + TR.Err);
      return;
    }
    if (BR.S == Run::St::Err) {
      ++C.Refuted;
      note(C, "bytecode error: " + BR.Err);
      return;
    }

    // Syntactic: interning makes "same computation" pointer equality.
    if (TR.Result == BR.Result && TR.Trace == BR.Trace) {
      ++C.Syntactic;
      return;
    }

    // Structural refutations.
    if (TR.Trace.size() != BR.Trace.size()) {
      ++C.Refuted;
      note(C, "hook trace length differs: tree " +
                  std::to_string(TR.Trace.size()) + " vs bytecode " +
                  std::to_string(BR.Trace.size()));
      return;
    }
    std::vector<std::pair<const Term *, const Term *>> Residual;
    for (size_t K = 0; K != TR.Trace.size(); ++K) {
      const Term *TH = TR.Trace[K], *BH = BR.Trace[K];
      if (TH == BH)
        continue;
      if (TH->IsExtern != BH->IsExtern || TH->SiteOrd != BH->SiteOrd ||
          TH->Args.size() != BH->Args.size()) {
        ++C.Refuted;
        note(C, "hook #" + std::to_string(K) + " site/shape differs");
        return;
      }
      for (size_t J = 0; J != TH->Args.size(); ++J) {
        const Term *TA = TH->Args[J], *BA = BH->Args[J];
        if (TA == BA)
          continue;
        if (TA->Kind == Term::K::Const && BA->Kind == Term::K::Const) {
          ++C.Refuted;
          note(C, "hook #" + std::to_string(K) + " argument differs: " +
                      printTerm(TA, PP) + " vs " + printTerm(BA, PP));
          return;
        }
        Residual.emplace_back(TA, BA);
      }
    }
    if (TR.Result != BR.Result) {
      if (TR.Result->Kind == Term::K::Const &&
          BR.Result->Kind == Term::K::Const) {
        ++C.Refuted;
        note(C, "result differs: tree " + printTerm(TR.Result, PP) +
                    " vs bytecode " + printTerm(BR.Result, PP));
        return;
      }
      Residual.emplace_back(TR.Result, BR.Result);
    }

    // Residual equalities under the path condition: ask the solver.
    if (!Opts.UseSolver) {
      ++C.Unproven;
      note(C, "needs-solver: " + std::to_string(Residual.size()) +
                  " residual equalities");
      return;
    }
    if (proveResidual(It, Residual)) {
      ++C.Solver;
      return;
    }
    ++C.Unproven;
    if (!Residual.empty())
      note(C, "unproven: " + printTerm(Residual.front().first, PP) +
                  " == " + printTerm(Residual.front().second, PP));
    return;
  }

  template <typename ItemT>
  bool proveResidual(
      const ItemT &It,
      const std::vector<std::pair<const Term *, const Term *>> &Residual) {
    if (!Ctx) {
      Ctx = std::make_unique<smt::FormulaContext>();
      Sol = std::make_unique<smt::Solver>(*Ctx);
    }
    std::vector<const smt::Formula *> Assume;
    for (const auto &D : It.Ord) {
      const smt::Formula *NonZero = Ctx->notF(Ctx->eq(
          enc(D.first), Ctx->constant(0, D.first->Width)));
      Assume.push_back(D.second ? NonZero : Ctx->notF(NonZero));
    }
    std::vector<const smt::Formula *> Goals;
    for (const auto &P : Residual)
      Goals.push_back(Ctx->eq(enc(P.first), enc(P.second)));
    return Sol->proves(Ctx->andF(std::move(Assume)),
                       Ctx->andF(std::move(Goals)));
  }

  smt::TermId enc(const Term *T) {
    auto It = Enc.find(T);
    if (It != Enc.end())
      return It->second;
    smt::TermId Id = 0;
    switch (T->Kind) {
    case Term::K::Const:
      Id = Ctx->constant(T->KVal.zext(), T->KVal.width());
      break;
    case Term::K::Var:
      Id = Ctx->variable("s" + std::to_string(T->Slot));
      break;
    case Term::K::App:
    case Term::K::Hook: {
      std::vector<smt::TermId> Args;
      for (const Term *Arg : T->Args)
        Args.push_back(enc(Arg));
      Id = Ctx->apply(smtSymbol(T), std::move(Args));
      break;
    }
    }
    Enc.emplace(T, Id);
    return Id;
  }

  Arena &A;
  const ast::Program &Prog;
  const bc::PipeProgram &PP;
  const Unit &U;
  const ValidateOptions &Opts;
  std::unique_ptr<smt::FormulaContext> Ctx;
  std::unique_ptr<smt::Solver> Sol;
  std::map<const Term *, smt::TermId> Enc;
};

//===----------------------------------------------------------------------===//
// Layout obligations
//===----------------------------------------------------------------------===//

void layoutNote(Certificate &Cert, const std::string &Pipe, std::string Msg) {
  ++Cert.LayoutFailures;
  if (Cert.LayoutNotes.size() < 16)
    Cert.LayoutNotes.push_back(Pipe + ": " + std::move(Msg));
}

void checkLayoutEq(Certificate &Cert, const std::string &Pipe, bool Ok,
                   const std::string &What) {
  ++Cert.LayoutChecks;
  if (!Ok)
    layoutNote(Cert, Pipe, What);
}

/// Structural obligations: the stage mirrors must reference exactly the
/// programs the statement walk compiled, and destinations must match the
/// slot table — the wiring the executor trusts blindly every cycle.
void checkLayout(Certificate &Cert, const std::string &PipeName,
                 const StageGraph &G, const bc::PipeProgram &PP) {
  using ast::Stmt;
  checkLayoutEq(Cert, PipeName, PP.Stages.size() == G.Stages.size(),
                "stage count differs from graph");
  if (PP.Stages.size() != G.Stages.size())
    return;
  for (const Stage &S : G.Stages) {
    const bc::StageProg &SP = PP.Stages[S.Id];
    std::string SN = "stage " + std::to_string(S.Id);
    checkLayoutEq(Cert, PipeName, SP.Ops.size() == S.Ops.size(),
                  SN + ": op count");
    checkLayoutEq(Cert, PipeName, SP.EdgeGuards.size() == S.Succs.size(),
                  SN + ": edge-guard count");
    checkLayoutEq(Cert, PipeName, SP.TagGuards.size() == S.TagRules.size(),
                  SN + ": tag-guard count");
    if (SP.Ops.size() != S.Ops.size())
      continue;
    for (size_t I = 0; I != S.Ops.size(); ++I) {
      const bc::OpProg &OP = SP.Ops[I];
      const ast::Stmt *St = S.Ops[I].S;
      std::string ON = SN + ".op" + std::to_string(I);
      auto Expect = [&](const bc::ExprProgram *Got, const ast::Expr *E,
                        const char *Which) {
        checkLayoutEq(Cert, PipeName, Got == PP.programFor(E),
                      ON + ": " + Which + " program mismatch");
      };
      switch (St->kind()) {
      case Stmt::Kind::Assign: {
        const auto *AS = cast<ast::AssignStmt>(St);
        Expect(OP.E0, AS->value(), "value");
        checkLayoutEq(Cert, PipeName, OP.Dest == PP.slotOf(AS->name()),
                      ON + ": dest slot");
        break;
      }
      case Stmt::Kind::SyncRead: {
        const auto *Rd = cast<ast::SyncReadStmt>(St);
        Expect(OP.E0, Rd->addr(), "addr");
        checkLayoutEq(Cert, PipeName, OP.Dest == PP.slotOf(Rd->name()),
                      ON + ": dest slot");
        break;
      }
      case Stmt::Kind::PipeCall: {
        const auto *PC = cast<ast::PipeCallStmt>(St);
        checkLayoutEq(Cert, PipeName, OP.Args.size() == PC->args().size(),
                      ON + ": arg count");
        if (OP.Args.size() == PC->args().size())
          for (size_t K = 0; K != OP.Args.size(); ++K)
            Expect(OP.Args[K], PC->args()[K].get(), "arg");
        if (PC->hasResult() && !PC->isSpec())
          checkLayoutEq(Cert, PipeName,
                        OP.Dest == PP.slotOf(PC->resultName()),
                        ON + ": result slot");
        break;
      }
      case Stmt::Kind::MemWrite: {
        const auto *W = cast<ast::MemWriteStmt>(St);
        Expect(OP.E0, W->addr(), "addr");
        Expect(OP.E1, W->value(), "value");
        break;
      }
      case Stmt::Kind::Output:
        Expect(OP.E0, cast<ast::OutputStmt>(St)->value(), "value");
        break;
      case Stmt::Kind::Lock:
        if (const ast::Expr *Ad = cast<ast::LockStmt>(St)->addr())
          Expect(OP.E0, Ad, "addr");
        break;
      case Stmt::Kind::Verify: {
        const auto *V = cast<ast::VerifyStmt>(St);
        Expect(OP.E0, V->actual(), "actual");
        if (const ast::ExternCallExpr *Up = V->predictorUpdate()) {
          checkLayoutEq(Cert, PipeName, OP.Args.size() == Up->args().size(),
                        ON + ": update-arg count");
          if (OP.Args.size() == Up->args().size())
            for (size_t K = 0; K != OP.Args.size(); ++K)
              Expect(OP.Args[K], Up->args()[K].get(), "update-arg");
        }
        break;
      }
      case Stmt::Kind::Update:
        Expect(OP.E0, cast<ast::UpdateStmt>(St)->newPred(), "new-pred");
        break;
      default:
        break;
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Module driver
//===----------------------------------------------------------------------===//

Certificate tv::validateModule(const CompiledProgram &CP,
                               const bc::ModuleIR &IR,
                               const std::string &ModuleName,
                               const ValidateOptions &Opts) {
  auto T0 = std::chrono::steady_clock::now();
  Certificate Cert;
  Cert.Module = ModuleName;

  for (const auto &Entry : CP.Pipes) {
    const std::string &PipeName = Entry.first;
    const CompiledPipe &CPipe = Entry.second;
    const bc::PipeProgram *PP = IR.pipe(PipeName);
    ++Cert.LayoutChecks;
    if (!PP) {
      layoutNote(Cert, PipeName, "pipe missing from compiled module");
      continue;
    }

    // Expression units, in statement-walk (= compile) order.
    std::vector<Unit> Units;
    std::vector<const ast::Expr *> Exprs;
    for (const ast::StmtPtr &S : CPipe.Decl->Body)
      walkStmtExprs(*S, Exprs);
    for (size_t I = 0; I != Exprs.size(); ++I) {
      const bc::ExprProgram *Prog = PP->programFor(Exprs[I]);
      ++Cert.LayoutChecks;
      if (!Prog) {
        layoutNote(Cert, PipeName,
                   "expression e" + std::to_string(I) + " has no program");
        continue;
      }
      Unit U;
      U.Label = "e" + std::to_string(I);
      U.Kind = "expr";
      U.Source = truncateSource(ast::printExpr(*Exprs[I]));
      U.E = Exprs[I];
      U.Prog = Prog;
      Units.push_back(std::move(U));
    }

    // Guard units from the stage mirrors, plus the structural layout pass.
    checkLayout(Cert, PipeName, CPipe.Graph, *PP);
    if (PP->Stages.size() == CPipe.Graph.Stages.size()) {
      for (const Stage &S : CPipe.Graph.Stages) {
        const bc::StageProg &SP = PP->Stages[S.Id];
        auto addGuard = [&](const Guard &G, const bc::ExprProgram *Prog,
                            std::string Label) {
          if (G.empty() && !Prog)
            return; // trivially true on both sides
          Unit U;
          U.Label = std::move(Label);
          U.Kind = "guard";
          U.Source = guardSource(G);
          U.G = &G;
          U.Prog = Prog;
          Units.push_back(std::move(U));
        };
        std::string SN = "s" + std::to_string(S.Id);
        if (SP.Ops.size() == S.Ops.size())
          for (size_t I = 0; I != S.Ops.size(); ++I)
            addGuard(S.Ops[I].G, SP.Ops[I].Guard,
                     SN + ".op" + std::to_string(I) + ".guard");
        if (SP.EdgeGuards.size() == S.Succs.size())
          for (size_t I = 0; I != S.Succs.size(); ++I)
            addGuard(S.Succs[I].G, SP.EdgeGuards[I],
                     SN + ".edge" + std::to_string(I));
        if (SP.TagGuards.size() == S.TagRules.size())
          for (size_t I = 0; I != S.TagRules.size(); ++I)
            addGuard(S.TagRules[I].G, SP.TagGuards[I],
                     SN + ".tag" + std::to_string(I));
      }
    }

    for (const Unit &U : Units) {
      Arena A;
      UnitValidator V(A, *CP.AST, *PP, U, Opts);
      ProgramCert C = V.validate(Cert.SolverQueries, Cert.SolverDecisions);
      C.Pipe = PipeName;
      Cert.Programs.push_back(std::move(C));
    }
  }

  Cert.St = Status::Certified;
  for (const ProgramCert &C : Cert.Programs) {
    if (C.ProgStatus == "rejected")
      Cert.St = Status::Rejected;
    else if (C.ProgStatus == "fuzz-trusted" && Cert.St != Status::Rejected)
      Cert.St = Status::FuzzTrusted;
  }
  if (Cert.LayoutFailures)
    Cert.St = Status::Rejected;

  Cert.WallUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  return Cert;
}
