//===- SeqExtract.h - Sequential specification extraction ------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The erasure translation of Section 3.1: every PDL pipe accepted by the
/// compiler denotes a sequential program obtained by
///
///  * erasing stage separators, speculation checks/initiations, and lock
///    operations;
///  * replacing verify statements with recursive call statements (the next
///    thread runs with the *actual* value regardless of the prediction);
///  * delaying memory writes and recursive calls to the end of the body
///    (no thread observes its own writes).
///
/// extractSequential renders that program as source text (Figure 3b). The
/// runtime counterpart — an interpreter with exactly these semantics used
/// as the correctness oracle — lives in backend/SeqInterp.h.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_SEQEXTRACT_H
#define PDL_PASSES_SEQEXTRACT_H

#include "pdl/AST.h"

#include <string>

namespace pdl {

/// Renders the sequential specification of \p Pipe as PDL-like source text.
std::string extractSequential(const ast::PipeDecl &Pipe);

} // namespace pdl

#endif // PDL_PASSES_SEQEXTRACT_H
