//===- SpecChecker.cpp - Speculation typestate checking --------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/SpecChecker.h"

#include <algorithm>

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::smt;

namespace {

/// Figure 5 typestate, ordered so that meet = min.
enum class SpecState { Unknown = 0, Speculative = 1, Nonspeculative = 2 };

const char *stateName(SpecState S) {
  switch (S) {
  case SpecState::Unknown:
    return "Unknown";
  case SpecState::Speculative:
    return "Speculative";
  case SpecState::Nonspeculative:
    return "Nonspeculative";
  }
  return "?";
}

bool pipeUsesSpec(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts) {
    if (const auto *C = dyn_cast<PipeCallStmt>(S.get()))
      if (C->isSpec())
        return true;
    if (const auto *I = dyn_cast<IfStmt>(S.get()))
      if (pipeUsesSpec(I->thenBody()) || pipeUsesSpec(I->elseBody()))
        return true;
  }
  return false;
}

class SpecCheckerImpl {
public:
  SpecCheckerImpl(const PipeDecl &Pipe, const StageGraph &G,
                  const LockAnalysis &Locks, ConditionAbstractor &Abs,
                  Solver &Solver, DiagnosticEngine &Diags)
      : Pipe(Pipe), G(G), Locks(Locks), Abs(Abs), S(Solver), Diags(Diags),
        Ctx(Abs.context()) {}

  SpecAnalysis run() {
    Result.UsesSpeculation = pipeUsesSpec(Pipe.Body);
    Reach = Abs.reachConditions(G);
    computeTypestates();
    NextCond = Ctx.falseF();
    for (const Stage &Stg : G.Stages) {
      SpecState St = Entry[Stg.Id];
      for (const StagedOp &Op : Stg.Ops)
        St = visitOp(Stg, Op, St);
    }
    finish();
    return std::move(Result);
  }

private:
  /// Computes the typestate at each stage entry by forward propagation
  /// (stage ids are topologically ordered). Joins take the weakest
  /// incoming state; crossing a stage boundary decays Speculative to
  /// Unknown (its status may have been resolved meanwhile).
  void computeTypestates() {
    SpecState Init = Result.UsesSpeculation ? SpecState::Unknown
                                            : SpecState::Nonspeculative;
    Entry.assign(G.Stages.size(), SpecState::Nonspeculative);
    Entry[G.Entry] = Init;
    std::vector<SpecState> Exit(G.Stages.size(), SpecState::Nonspeculative);

    for (const Stage &Stg : G.Stages) {
      SpecState St = Entry[Stg.Id];
      for (const StagedOp &Op : Stg.Ops) {
        const auto *C = dyn_cast<SpecCheckStmt>(Op.S);
        if (!C)
          continue;
        if (!Op.G.empty())
          Diags.error(Op.S->loc(),
                      "speculation checks may not be conditional");
        if (C->isBlocking())
          St = SpecState::Nonspeculative;
        else if (St == SpecState::Unknown)
          St = SpecState::Speculative;
      }
      Exit[Stg.Id] = St;
      for (const StageEdge &E : Stg.Succs) {
        SpecState Crossed = St == SpecState::Speculative
                                ? SpecState::Unknown
                                : St;
        Entry[E.To] = std::min(Entry[E.To], Crossed);
      }
    }
  }

  SpecState visitOp(const Stage &Stg, const StagedOp &Op, SpecState St) {
    const Formula *P = Ctx.andF(Reach[Stg.Id], Abs.guard(Op.G));
    bool Spec = Result.UsesSpeculation;

    switch (Op.S->kind()) {
    case Stmt::Kind::SpecCheck: {
      const auto *C = cast<SpecCheckStmt>(Op.S);
      if (C->isBlocking())
        return SpecState::Nonspeculative;
      return St == SpecState::Unknown ? SpecState::Speculative : St;
    }
    case Stmt::Kind::PipeCall: {
      const auto *C = cast<PipeCallStmt>(Op.S);
      if (C->isSpec()) {
        if (St == SpecState::Unknown)
          Diags.error(C->loc(),
                      "speculative call from a thread in Unknown state; "
                      "run spec_check() or spec_barrier() first");
        recordSpawn(C->resultName(), P, C->loc());
        recordContinuation(P, C->loc());
      } else if (C->pipe() == Pipe.Name) {
        recordContinuation(P, C->loc());
      }
      return St;
    }
    case Stmt::Kind::Output:
      recordContinuation(P, Op.S->loc());
      return St;
    case Stmt::Kind::Lock: {
      const auto *L = cast<LockStmt>(Op.S);
      if (!Spec)
        return St;
      if ((L->op() == LockOp::Reserve || L->op() == LockOp::Acquire) &&
          St == SpecState::Unknown)
        Diags.error(L->loc(), "lock reservation from a thread in Unknown "
                              "state; run spec_check() first");
      if (L->op() == LockOp::Release &&
          St != SpecState::Nonspeculative) {
        auto It = Locks.WriteReleaseStages.find(L->mem());
        if (It != Locks.WriteReleaseStages.end() &&
            It->second.count(Stg.Id))
          Diags.error(L->loc(),
                      std::string("write lock released by a thread in ") +
                          stateName(St) +
                          " state; write releases must be non-speculative "
                          "(spec_barrier() missing?)");
      }
      return St;
    }
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(Op.S);
      if (Spec && St != SpecState::Nonspeculative)
        Diags.error(V->loc(), std::string("verify from a thread in ") +
                                  stateName(St) +
                                  " state; only non-speculative threads may "
                                  "resolve speculation");
      auto It = Spawns.find(V->handle());
      if (It != Spawns.end() && !S.proves(P, It->second.Cond))
        Diags.error(V->loc(), "verify of '" + V->handle() +
                                  "' may execute on a path where the "
                                  "speculative call did not");
      Verified[V->handle()] =
          Ctx.orF(lookupOrFalse(Verified, V->handle()), P);
      return St;
    }
    case Stmt::Kind::Update: {
      const auto *U = cast<UpdateStmt>(Op.S);
      // Unlike verify, update may run speculatively: if the updater is
      // later killed, the mispredict cascade kills its re-steered child
      // too. Only Unknown threads are barred (Figure 5).
      if (Spec && St == SpecState::Unknown)
        Diags.error(U->loc(), "update from a thread in Unknown state; run "
                              "spec_check() first");
      auto It = Spawns.find(U->handle());
      if (It != Spawns.end() && !S.proves(P, It->second.Cond))
        Diags.error(U->loc(), "update of '" + U->handle() +
                                  "' may execute on a path where the "
                                  "speculative call did not");
      return St;
    }
    default:
      return St;
    }
  }

  const Formula *lookupOrFalse(std::map<std::string, const Formula *> &M,
                               const std::string &Key) {
    auto It = M.find(Key);
    return It == M.end() ? Ctx.falseF() : It->second;
  }

  void recordSpawn(const std::string &Handle, const Formula *P,
                   SourceLoc Loc) {
    auto It = Spawns.find(Handle);
    if (It == Spawns.end())
      Spawns.emplace(Handle, Spawn{P, Loc});
    else
      It->second.Cond = Ctx.orF(It->second.Cond, P);
  }

  void recordContinuation(const Formula *P, SourceLoc Loc) {
    if (S.isSatisfiable(Ctx.andF(P, NextCond)))
      Diags.error(Loc, "a thread may spawn two successors on some path "
                       "(each thread makes one recursive call or one "
                       "output)");
    NextCond = Ctx.orF(NextCond, P);
  }

  void finish() {
    // Every speculative call must be verified on every path where it ran.
    for (const auto &[Handle, Sp] : Spawns) {
      const Formula *V = lookupOrFalse(Verified, Handle);
      if (!S.proves(Sp.Cond, V))
        Diags.error(Sp.Loc, "speculative call '" + Handle +
                                "' is not verified on every path; add a "
                                "verify(" +
                                Handle + ", ...) statement");
    }
    // Every path must spawn exactly one successor (or output).
    if (!S.isValid(NextCond))
      Diags.error(Pipe.Loc, "pipe '" + Pipe.Name +
                                "' has a path that neither makes a "
                                "recursive call nor outputs a value");

    // Checkpoints: one per write-locked memory, in the stage holding the
    // final reservation (Section 2.5).
    if (Result.UsesSpeculation) {
      for (const std::string &Mem : Locks.WriteLocked) {
        auto It = Locks.RegionStages.find(Mem);
        if (It != Locks.RegionStages.end() && !It->second.empty())
          Result.CheckpointStage[Mem] = *It->second.rbegin();
      }
    }
  }

  struct Spawn {
    const Formula *Cond;
    SourceLoc Loc;
  };

  const PipeDecl &Pipe;
  const StageGraph &G;
  const LockAnalysis &Locks;
  ConditionAbstractor &Abs;
  Solver &S;
  DiagnosticEngine &Diags;
  FormulaContext &Ctx;

  SpecAnalysis Result;
  std::vector<const Formula *> Reach;
  std::vector<SpecState> Entry;
  std::map<std::string, Spawn> Spawns;
  std::map<std::string, const Formula *> Verified;
  const Formula *NextCond = nullptr;
};

} // namespace

SpecAnalysis pdl::checkSpeculation(const PipeDecl &Pipe, const StageGraph &G,
                                   const LockAnalysis &Locks,
                                   ConditionAbstractor &Abs,
                                   smt::Solver &Solver,
                                   DiagnosticEngine &Diags) {
  SpecCheckerImpl Impl(Pipe, G, Locks, Abs, Solver, Diags);
  return Impl.run();
}
