//===- PathCondition.cpp - Branch-condition abstraction --------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/PathCondition.h"

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::smt;

std::string pdl::addrKey(const Expr &Addr) { return printExpr(Addr); }

TermId ConditionAbstractor::termFor(const Expr &E) {
  if (const auto *V = dyn_cast<VarRefExpr>(&E))
    return Ctx.variable("v:" + V->name());
  if (const auto *L = dyn_cast<IntLitExpr>(&E))
    return Ctx.constant(L->value());
  if (const auto *B = dyn_cast<BoolLitExpr>(&E))
    return Ctx.constant(B->value() ? 1 : 0);
  // Opaque term: identical spellings share one term.
  return Ctx.variable("t:" + printExpr(E));
}

const Formula *ConditionAbstractor::condition(const Expr &E) {
  if (const auto *B = dyn_cast<BoolLitExpr>(&E))
    return Ctx.boolOf(B->value());
  if (const auto *V = dyn_cast<VarRefExpr>(&E))
    return Ctx.boolVar(Ctx.variable("b:" + V->name()));
  if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
    if (U->op() == UnaryOp::LogicalNot)
      return Ctx.notF(condition(*U->operand()));
  }
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    switch (B->op()) {
    case BinaryOp::LogicalAnd:
      return Ctx.andF(condition(*B->lhs()), condition(*B->rhs()));
    case BinaryOp::LogicalOr:
      return Ctx.orF(condition(*B->lhs()), condition(*B->rhs()));
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      const Formula *EqF;
      if (B->lhs()->type().isBool() || B->rhs()->type().isBool())
        EqF = Ctx.iff(condition(*B->lhs()), condition(*B->rhs()));
      else
        EqF = Ctx.eq(termFor(*B->lhs()), termFor(*B->rhs()));
      return B->op() == BinaryOp::Eq ? EqF : Ctx.notF(EqF);
    }
    default:
      break;
    }
  }
  // Anything else is abstracted as an opaque boolean variable.
  return Ctx.boolVar(Ctx.variable("c:" + printExpr(E)));
}

const Formula *ConditionAbstractor::guard(const Guard &G) {
  std::vector<const Formula *> Terms;
  for (const GuardTerm &T : G) {
    const Formula *C = condition(*T.Cond);
    Terms.push_back(T.Polarity ? C : Ctx.notF(C));
  }
  return Ctx.andF(std::move(Terms));
}

std::vector<const Formula *>
ConditionAbstractor::reachConditions(const StageGraph &G) {
  std::vector<const Formula *> Reach(G.Stages.size(), Ctx.falseF());
  Reach[G.Entry] = Ctx.trueF();
  // Stages are created in program order, so a single forward pass suffices
  // (the graph is a DAG whose edges go from lower to higher ids except for
  // none — joins are created after their predecessors).
  for (const Stage &S : G.Stages)
    for (const StageEdge &E : S.Succs)
      Reach[E.To] = Ctx.orF(Reach[E.To],
                            Ctx.andF(Reach[E.From], guard(E.G)));
  return Reach;
}
