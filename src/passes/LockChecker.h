//===- LockChecker.h - Hazard-lock protocol checking -----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enforces the hazard-lock rules of Section 4.1 / Table 1:
///
///  * every lock transitions through reserve -> block -> read/write ->
///    release on every path (checked path-sensitively with the SMT solver);
///  * reserve and release-write operations execute in in-order stages, with
///    the paper's relaxation that all of a memory's reservations may instead
///    sit inside a single branch of an out-of-order region;
///  * reservations for one memory are grouped into a lock region (the stages
///    from first to last reservation), which the backend serializes when it
///    spans more than one stage;
///  * every memory access (combinational read, synchronous read, write) is
///    covered by an acquired lock for the same handle.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_LOCKCHECKER_H
#define PDL_PASSES_LOCKCHECKER_H

#include "passes/PathCondition.h"
#include "passes/StageGraph.h"

#include <map>
#include <set>
#include <string>

namespace pdl {

/// Facts the lock checker derives for use by later phases.
struct LockAnalysis {
  /// Memories that are read-locked / write-locked anywhere in the pipe.
  std::set<std::string> ReadLocked, WriteLocked;

  /// Per memory: the set of stages containing reservations (the lock
  /// region). A region spanning more than one stage must be serialized by
  /// the backend so reservations stay atomic per thread.
  std::map<std::string, std::set<unsigned>> RegionStages;

  /// Stage ids that contain a release of a write lock, per memory (used by
  /// the speculation checker: write releases must be non-speculative).
  std::map<std::string, std::set<unsigned>> WriteReleaseStages;
};

/// Runs the checks; returns the analysis. Errors go to \p Diags.
LockAnalysis checkLocks(const ast::PipeDecl &Pipe, const StageGraph &G,
                        ConditionAbstractor &Abs, smt::Solver &Solver,
                        DiagnosticEngine &Diags);

} // namespace pdl

#endif // PDL_PASSES_LOCKCHECKER_H
