//===- Liveness.h - Live-variable analysis over the stage graph -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-variable analysis of Section 5.1: annotates each stage-graph
/// edge with the variables a later stage still needs. In the paper's
/// compiler this decides what each inter-stage FIFO carries; here it also
/// sizes the pipeline registers for the area model.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_LIVENESS_H
#define PDL_PASSES_LIVENESS_H

#include "passes/StageGraph.h"

#include <map>
#include <set>
#include <string>

namespace pdl {

struct LivenessInfo {
  /// Variables live on each edge (keyed by (From, To)).
  std::map<std::pair<unsigned, unsigned>, std::set<std::string>> LiveOnEdge;
  /// Bit width of every variable (params included).
  std::map<std::string, unsigned> WidthOf;

  /// Total payload bits carried by the FIFO on \p Edge.
  unsigned edgeBits(std::pair<unsigned, unsigned> Edge) const;
};

/// Computes liveness for \p Pipe over its stage graph (a single reverse
/// pass; the graph is a DAG with topologically ordered ids).
LivenessInfo computeLiveness(const ast::PipeDecl &Pipe, const StageGraph &G);

} // namespace pdl

#endif // PDL_PASSES_LIVENESS_H
