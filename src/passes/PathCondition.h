//===- PathCondition.h - Branch-condition abstraction ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts PDL branch conditions into SMT formulas for the path-sensitive
/// checks of Section 4.3. The abstraction is the one the paper describes:
/// boolean variables and (dis)equalities between variables and constants are
/// modeled precisely; any other condition becomes an opaque boolean variable
/// keyed by its canonical printed form, so syntactically identical
/// conditions are recognized as equal.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_PATHCONDITION_H
#define PDL_PASSES_PATHCONDITION_H

#include "passes/StageGraph.h"
#include "pdl/AST.h"
#include "smt/Solver.h"

#include <map>
#include <string>
#include <vector>

namespace pdl {

/// Maps AST conditions and guards to formulas in one FormulaContext.
class ConditionAbstractor {
public:
  explicit ConditionAbstractor(smt::FormulaContext &Ctx) : Ctx(Ctx) {}

  /// Abstracts a boolean-typed expression.
  const smt::Formula *condition(const ast::Expr &E);

  /// Conjunction of the polarity-adjusted conditions of \p G.
  const smt::Formula *guard(const Guard &G);

  /// Per-stage reachability conditions: Reach[entry] = true and
  /// Reach[S] = OR over pred edges (Reach[pred] AND edge guard). The
  /// result is indexed by stage id.
  std::vector<const smt::Formula *> reachConditions(const StageGraph &G);

  smt::FormulaContext &context() { return Ctx; }

private:
  smt::TermId termFor(const ast::Expr &E);

  smt::FormulaContext &Ctx;
};

/// Canonical text for an address expression, used to identify lock handles
/// (e.g. every occurrence of rf[rs1] maps to the same handle).
std::string addrKey(const ast::Expr &Addr);

} // namespace pdl

#endif // PDL_PASSES_PATHCONDITION_H
