//===- TypeChecker.cpp - PDL type and definedness checking ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/TypeChecker.h"

using namespace pdl;
using namespace pdl::ast;

bool TypeChecker::check() {
  for (const ExternDecl &E : Program.Externs)
    checkExtern(E);
  for (FuncDecl &F : Program.Funcs)
    checkFunc(F);
  for (PipeDecl &P : Program.Pipes)
    checkPipe(P);
  return !Diags.hasErrors();
}

bool TypeChecker::containsStageSep(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts) {
    if (isa<StageSepStmt>(S.get()))
      return true;
    if (const auto *I = dyn_cast<IfStmt>(S.get()))
      if (containsStageSep(I->thenBody()) || containsStageSep(I->elseBody()))
        return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void TypeChecker::checkExtern(const ExternDecl &E) {
  std::set<std::string> Names;
  for (const ExternMethod &M : E.Methods) {
    if (!Names.insert(M.Name).second)
      Diags.error(M.Loc, "duplicate method '" + M.Name + "' in extern '" +
                             E.Name + "'");
    for (const Param &P : M.Params)
      if (P.Ty.isVoid())
        Diags.error(P.Loc, "extern method parameter cannot be void");
  }
}

void TypeChecker::checkFunc(FuncDecl &F) {
  CurFunc = &F;
  Env E;
  for (const Param &P : F.Params) {
    if (E.Types.count(P.Name))
      Diags.error(P.Loc, "duplicate parameter '" + P.Name + "'");
    E.Types[P.Name] = P.Ty;
    E.Defs[P.Name] = DefState::Defined;
  }

  if (F.Body.empty() || !isa<ReturnStmt>(F.Body.back().get())) {
    Diags.error(F.Loc, "def function '" + F.Name +
                           "' must end with a return statement");
  }
  for (unsigned I = 0, N = F.Body.size(); I != N; ++I) {
    Stmt &S = *F.Body[I];
    if (auto *A = dyn_cast<AssignStmt>(&S)) {
      Type T = checkExpr(*A->value(), E,
                         A->declaredType().value_or(Type()));
      defineVar(A->loc(), E, A->name(),
                A->declaredType() ? *A->declaredType() : T);
    } else if (auto *R = dyn_cast<ReturnStmt>(&S)) {
      if (I + 1 != N)
        Diags.error(R->loc(), "return must be the last statement in a def");
      checkExpr(*R->value(), E, F.RetType);
    } else {
      Diags.error(S.loc(),
                  "def functions may contain only assignments and a return");
    }
  }
  CurFunc = nullptr;
  CheckedFuncs.insert(F.Name);
}

void TypeChecker::checkPipe(PipeDecl &P) {
  CurPipe = &P;
  SpecHandles.clear();
  Env E;
  for (const Param &Pm : P.Params) {
    if (E.Types.count(Pm.Name))
      Diags.error(Pm.Loc, "duplicate parameter '" + Pm.Name + "'");
    E.Types[Pm.Name] = Pm.Ty;
    E.Defs[Pm.Name] = DefState::Defined;
  }
  std::set<std::string> MemNames;
  for (const MemDecl &M : P.Mems) {
    if (!MemNames.insert(M.Name).second || E.Types.count(M.Name))
      Diags.error(M.Loc, "duplicate name '" + M.Name + "' in pipe '" +
                             P.Name + "'");
    if (!M.ElemType.isInt())
      Diags.error(M.Loc, "memory element type must be an integer type");
  }
  checkStmtList(P.Body, E, P);
  CurPipe = nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void TypeChecker::defineVar(SourceLoc Loc, Env &E, const std::string &Name,
                            Type Ty) {
  if (CurPipe && CurPipe->findMem(Name)) {
    Diags.error(Loc, "'" + Name + "' is a memory and cannot be assigned");
    return;
  }
  if (SpecHandles.count(Name)) {
    Diags.error(Loc, "'" + Name + "' is a speculation handle");
    return;
  }
  auto It = E.Defs.find(Name);
  if (It != E.Defs.end() && It->second != DefState::Undefined) {
    Diags.error(Loc, "variable '" + Name +
                         "' is assigned more than once (PDL variables are "
                         "single-assignment)");
    return;
  }
  E.Types[Name] = Ty;
  E.Defs[Name] = DefState::Defined;
}

Type TypeChecker::mergeBranchTypes(SourceLoc Loc, Type A, Type B) {
  if (!A.isValid())
    return B;
  if (!B.isValid())
    return A;
  if (A != B)
    Diags.error(Loc, "variable assigned different types on different "
                     "branches: " +
                         A.str() + " vs " + B.str());
  return A;
}

void TypeChecker::checkStmtList(StmtList &Stmts, Env &E, PipeDecl &P) {
  for (const StmtPtr &S : Stmts)
    checkStmt(*S, E, P);
}

void TypeChecker::checkStmt(Stmt &S, Env &E, PipeDecl &P) {
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    auto &A = *cast<AssignStmt>(&S);
    Type T = checkExpr(*A.value(), E, A.declaredType().value_or(Type()));
    defineVar(A.loc(), E, A.name(), A.declaredType() ? *A.declaredType() : T);
    return;
  }
  case Stmt::Kind::SyncRead: {
    auto &R = *cast<SyncReadStmt>(&S);
    const MemDecl *M = P.findMem(R.mem());
    if (!M) {
      Diags.error(R.loc(), "unknown memory '" + R.mem() + "'");
      return;
    }
    if (!M->IsSync)
      Diags.error(R.loc(), "memory '" + R.mem() +
                               "' is combinational; read it as an "
                               "expression instead of with '<-'");
    checkExpr(*R.addr(), E, Type::intTy(M->AddrWidth, false));
    if (R.declaredType() && *R.declaredType() != M->ElemType)
      Diags.error(R.loc(), "declared type " + R.declaredType()->str() +
                               " does not match memory element type " +
                               M->ElemType.str());
    defineVar(R.loc(), E, R.name(), M->ElemType);
    return;
  }
  case Stmt::Kind::PipeCall: {
    auto &C = *cast<PipeCallStmt>(&S);
    PipeDecl *Callee = Program.findPipe(C.pipe());
    if (!Callee) {
      Diags.error(C.loc(), "unknown pipe '" + C.pipe() + "'");
      return;
    }
    if (C.args().size() != Callee->Params.size()) {
      Diags.error(C.loc(), "pipe '" + C.pipe() + "' expects " +
                               std::to_string(Callee->Params.size()) +
                               " arguments, got " +
                               std::to_string(C.args().size()));
      return;
    }
    for (unsigned I = 0, N = C.args().size(); I != N; ++I)
      checkExpr(*C.args()[I], E, Callee->Params[I].Ty);

    if (C.isSpec()) {
      if (Callee != &P)
        Diags.error(C.loc(), "speculative calls must target the enclosing "
                             "pipe (they spawn the next thread)");
      if (Callee->Params.size() != 1)
        Diags.error(C.loc(), "speculatively called pipes must take exactly "
                             "one parameter (the predicted value)");
      if (!C.hasResult()) {
        Diags.error(C.loc(), "speculative call must bind a handle: "
                             "'s <- spec call ...'");
        return;
      }
      if (!SpecHandles.insert(C.resultName()).second ||
          E.Types.count(C.resultName()))
        Diags.error(C.loc(), "speculation handle '" + C.resultName() +
                                 "' conflicts with an existing name");
      return;
    }
    if (C.hasResult()) {
      if (Callee == &P) {
        Diags.error(C.loc(),
                    "a recursive call cannot produce a result in-pipe");
        return;
      }
      if (Callee->RetType.isVoid()) {
        Diags.error(C.loc(), "pipe '" + C.pipe() + "' produces no output");
        return;
      }
      if (C.declaredType() && *C.declaredType() != Callee->RetType)
        Diags.error(C.loc(), "declared type " + C.declaredType()->str() +
                                 " does not match pipe output type " +
                                 Callee->RetType.str());
      defineVar(C.loc(), E, C.resultName(), Callee->RetType);
    }
    return;
  }
  case Stmt::Kind::MemWrite: {
    auto &W = *cast<MemWriteStmt>(&S);
    const MemDecl *M = P.findMem(W.mem());
    if (!M) {
      Diags.error(W.loc(), "unknown memory '" + W.mem() + "'");
      return;
    }
    checkExpr(*W.addr(), E, Type::intTy(M->AddrWidth, false));
    checkExpr(*W.value(), E, M->ElemType);
    return;
  }
  case Stmt::Kind::Output: {
    auto &O = *cast<OutputStmt>(&S);
    if (P.RetType.isVoid()) {
      Diags.error(O.loc(), "pipe '" + P.Name +
                               "' declares no output type; add ': T' to "
                               "the pipe signature");
      return;
    }
    checkExpr(*O.value(), E, P.RetType);
    return;
  }
  case Stmt::Kind::Lock: {
    auto &L = *cast<LockStmt>(&S);
    const MemDecl *M = P.findMem(L.mem());
    if (!M) {
      Diags.error(L.loc(), "unknown memory '" + L.mem() + "'");
      return;
    }
    if (!L.addr()) {
      Diags.error(L.loc(), "lock operations require an address: '" +
                               std::string(lockOpSpelling(L.op())) + "(" +
                               L.mem() + "[addr], ...)'");
      return;
    }
    checkExpr(*L.addr(), E, Type::intTy(M->AddrWidth, false));
    // A mode-less reserve/acquire takes an exclusive (read+write) lock,
    // like the dmem lock in the paper's Figure 1.
    return;
  }
  case Stmt::Kind::SpecCheck:
    return;
  case Stmt::Kind::Verify: {
    auto &V = *cast<VerifyStmt>(&S);
    if (!SpecHandles.count(V.handle()))
      Diags.error(V.loc(), "'" + V.handle() +
                               "' is not a speculation handle in scope");
    Type Expected =
        P.Params.size() == 1 ? P.Params[0].Ty : Type();
    checkExpr(*V.actual(), E, Expected);
    if (ExternCallExpr *U = V.predictorUpdate()) {
      const ExternDecl *Ext = Program.findExtern(U->module());
      if (!Ext) {
        Diags.error(U->loc(), "unknown extern module '" + U->module() + "'");
        return;
      }
      const ExternMethod *M = Ext->findMethod(U->method());
      if (!M) {
        Diags.error(U->loc(), "extern '" + U->module() + "' has no method '" +
                                  U->method() + "'");
        return;
      }
      if (!M->RetType.isVoid())
        Diags.error(U->loc(),
                    "predictor-update methods must not return a value");
      if (U->args().size() != M->Params.size()) {
        Diags.error(U->loc(), "method '" + U->method() + "' expects " +
                                  std::to_string(M->Params.size()) +
                                  " arguments");
        return;
      }
      for (unsigned I = 0, N = U->args().size(); I != N; ++I)
        checkExpr(*U->args()[I], E, M->Params[I].Ty);
    }
    return;
  }
  case Stmt::Kind::Update: {
    auto &U = *cast<UpdateStmt>(&S);
    if (!SpecHandles.count(U.handle()))
      Diags.error(U.loc(), "'" + U.handle() +
                               "' is not a speculation handle in scope");
    Type Expected = P.Params.size() == 1 ? P.Params[0].Ty : Type();
    checkExpr(*U.newPred(), E, Expected);
    return;
  }
  case Stmt::Kind::If: {
    auto &I = *cast<IfStmt>(&S);
    checkExpr(*I.cond(), E, Type::boolTy());
    Env ThenEnv = E, ElseEnv = E;
    checkStmtList(I.thenBody(), ThenEnv, P);
    checkStmtList(I.elseBody(), ElseEnv, P);
    // Merge: variables defined in both arms stay Defined; one-sided
    // definitions become Maybe (hardware don't-care off that path).
    for (const auto &[Name, ThenState] : ThenEnv.Defs) {
      auto ElseIt = ElseEnv.Defs.find(Name);
      DefState ElseState =
          ElseIt != ElseEnv.Defs.end() ? ElseIt->second : DefState::Undefined;
      auto OldIt = E.Defs.find(Name);
      if (OldIt != E.Defs.end() && OldIt->second == ThenState &&
          ThenState == ElseState)
        continue; // unchanged
      DefState Merged = (ThenState == DefState::Defined &&
                         ElseState == DefState::Defined)
                            ? DefState::Defined
                            : DefState::Maybe;
      Type Ty = mergeBranchTypes(
          I.loc(), ThenEnv.Types.count(Name) ? ThenEnv.Types[Name] : Type(),
          ElseIt != ElseEnv.Defs.end() ? ElseEnv.Types[Name] : Type());
      E.Defs[Name] = Merged;
      E.Types[Name] = Ty;
    }
    for (const auto &[Name, ElseState] : ElseEnv.Defs) {
      if (ThenEnv.Defs.count(Name) || E.Defs.count(Name))
        continue;
      (void)ElseState;
      E.Defs[Name] = DefState::Maybe;
      E.Types[Name] = ElseEnv.Types[Name];
    }
    return;
  }
  case Stmt::Kind::StageSep:
    return;
  case Stmt::Kind::Return:
    Diags.error(S.loc(), "return is only valid inside def functions");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// True for literals whose width cannot be determined without context.
static bool isUnconstrainedLiteral(const Expr &E) {
  if (isa<IntLitExpr>(&E))
    return true;
  if (const auto *U = dyn_cast<UnaryExpr>(&E))
    return U->op() == UnaryOp::Negate && isUnconstrainedLiteral(*U->operand());
  return false;
}

/// True if \p Value fits in \p Ty (as a raw bit pattern).
static bool literalFits(uint64_t Value, Type Ty) {
  unsigned W = Ty.width();
  return W >= 64 || Value < (uint64_t(1) << W);
}

Type TypeChecker::checkExpr(Expr &E, Env &Env, Type Expected) {
  auto Mismatch = [&](Type Actual) -> Type {
    if (Expected.isValid() && Actual.isValid() && Actual != Expected) {
      Diags.error(E.loc(), "expected " + Expected.str() + ", got " +
                               Actual.str());
      E.setType(Expected);
      return Expected;
    }
    E.setType(Actual);
    return Actual;
  };

  switch (E.kind()) {
  case Expr::Kind::IntLit: {
    auto &L = *cast<IntLitExpr>(&E);
    if (!Expected.isValid()) {
      Diags.error(E.loc(), "cannot infer the width of this integer literal; "
                           "add a cast like uint<8>(...)");
      E.setType(Type::intTy(32, false));
      return E.type();
    }
    if (Expected.isBool()) {
      Diags.error(E.loc(), "expected bool, got an integer literal (use "
                           "true/false)");
      E.setType(Type::boolTy());
      return E.type();
    }
    if (!literalFits(L.value(), Expected))
      Diags.error(E.loc(), "literal " + std::to_string(L.value()) +
                               " does not fit in " + Expected.str());
    E.setType(Expected);
    return Expected;
  }
  case Expr::Kind::BoolLit:
    return Mismatch(Type::boolTy());
  case Expr::Kind::VarRef: {
    auto &V = *cast<VarRefExpr>(&E);
    auto It = Env.Types.find(V.name());
    if (It == Env.Types.end()) {
      if (SpecHandles.count(V.name()))
        Diags.error(E.loc(), "speculation handle '" + V.name() +
                                 "' cannot be used as a value");
      else
        Diags.error(E.loc(), "use of undefined variable '" + V.name() + "'");
      E.setType(Expected.isValid() ? Expected : Type::intTy(32, false));
      return E.type();
    }
    return Mismatch(It->second);
  }
  case Expr::Kind::Unary: {
    auto &U = *cast<UnaryExpr>(&E);
    switch (U.op()) {
    case UnaryOp::LogicalNot: {
      checkExpr(*U.operand(), Env, Type::boolTy());
      return Mismatch(Type::boolTy());
    }
    case UnaryOp::BitNot:
    case UnaryOp::Negate: {
      Type T = checkExpr(*U.operand(), Env, Expected);
      if (T.isValid() && !T.isInt()) {
        Diags.error(E.loc(), "operand of '~'/'-' must be an integer");
        T = Type::intTy(32, false);
      }
      return Mismatch(T);
    }
    }
    return Type();
  }
  case Expr::Kind::Binary:
    return checkBinary(*cast<BinaryExpr>(&E), Env, Expected);
  case Expr::Kind::Ternary: {
    auto &T = *cast<TernaryExpr>(&E);
    checkExpr(*T.cond(), Env, Type::boolTy());
    Type Want = Expected;
    if (!Want.isValid() && isUnconstrainedLiteral(*T.thenExpr()))
      Want = checkExpr(*T.elseExpr(), Env);
    Type Then = checkExpr(*T.thenExpr(), Env, Want);
    Type Else = checkExpr(*T.elseExpr(), Env, Want.isValid() ? Want : Then);
    return Mismatch(Then.isValid() ? Then : Else);
  }
  case Expr::Kind::Slice: {
    auto &S = *cast<SliceExpr>(&E);
    Type Base = checkExpr(*S.base(), Env);
    if (Base.isValid() && Base.isInt() && S.hi() >= Base.width())
      Diags.error(E.loc(), "slice bound " + std::to_string(S.hi()) +
                               " exceeds operand width " +
                               std::to_string(Base.width()));
    return Mismatch(Type::intTy(S.hi() - S.lo() + 1, false));
  }
  case Expr::Kind::MemRead: {
    auto &M = *cast<MemReadExpr>(&E);
    if (!CurPipe) {
      Diags.error(E.loc(), "def functions cannot access memories");
      return Mismatch(Type::intTy(32, false));
    }
    const MemDecl *Mem = CurPipe->findMem(M.mem());
    if (!Mem) {
      Diags.error(E.loc(), "unknown memory '" + M.mem() + "'");
      return Mismatch(Type::intTy(32, false));
    }
    if (Mem->IsSync)
      Diags.error(E.loc(), "memory '" + M.mem() +
                               "' is synchronous; read it with "
                               "'x <- " +
                               M.mem() + "[addr];'");
    checkExpr(*M.addr(), Env, Type::intTy(Mem->AddrWidth, false));
    return Mismatch(Mem->ElemType);
  }
  case Expr::Kind::FuncCall: {
    auto &C = *cast<FuncCallExpr>(&E);
    const FuncDecl *F = Program.findFunc(C.callee());
    if (!F) {
      Diags.error(E.loc(), "unknown function '" + C.callee() + "'");
      return Mismatch(Expected.isValid() ? Expected : Type::intTy(32, false));
    }
    if (CurFunc && !CheckedFuncs.count(C.callee()))
      Diags.error(E.loc(), "function '" + C.callee() +
                               "' must be declared before use (def "
                               "functions cannot be recursive)");
    if (C.args().size() != F->Params.size()) {
      Diags.error(E.loc(), "function '" + C.callee() + "' expects " +
                               std::to_string(F->Params.size()) +
                               " arguments, got " +
                               std::to_string(C.args().size()));
    } else {
      for (unsigned I = 0, N = C.args().size(); I != N; ++I)
        checkExpr(*C.args()[I], Env, F->Params[I].Ty);
    }
    return Mismatch(F->RetType);
  }
  case Expr::Kind::ExternCall: {
    auto &C = *cast<ExternCallExpr>(&E);
    if (CurFunc) {
      Diags.error(E.loc(), "def functions cannot call extern modules");
      return Mismatch(Type::intTy(32, false));
    }
    const ExternDecl *Ext = Program.findExtern(C.module());
    if (!Ext) {
      Diags.error(E.loc(), "unknown extern module '" + C.module() + "'");
      return Mismatch(Expected.isValid() ? Expected : Type::intTy(32, false));
    }
    const ExternMethod *M = Ext->findMethod(C.method());
    if (!M) {
      Diags.error(E.loc(), "extern '" + C.module() + "' has no method '" +
                               C.method() + "'");
      return Mismatch(Expected.isValid() ? Expected : Type::intTy(32, false));
    }
    if (M->RetType.isVoid()) {
      Diags.error(E.loc(), "method '" + C.method() +
                               "' returns no value and can only be used in "
                               "a verify { } block");
      return Mismatch(Expected.isValid() ? Expected : Type::intTy(32, false));
    }
    if (C.args().size() != M->Params.size()) {
      Diags.error(E.loc(), "method '" + C.method() + "' expects " +
                               std::to_string(M->Params.size()) +
                               " arguments");
    } else {
      for (unsigned I = 0, N = C.args().size(); I != N; ++I)
        checkExpr(*C.args()[I], Env, M->Params[I].Ty);
    }
    return Mismatch(M->RetType);
  }
  case Expr::Kind::Cast: {
    auto &C = *cast<CastExpr>(&E);
    Type Inner = checkExpr(*C.operand(), Env,
                           isUnconstrainedLiteral(*C.operand()) ? C.target()
                                                                : Type());
    if (Inner.isValid() && !Inner.isInt() && !Inner.isBool())
      Diags.error(E.loc(), "cast operand must be an integer or bool");
    return Mismatch(C.target());
  }
  }
  return Type();
}

Type TypeChecker::checkBinary(BinaryExpr &B, Env &Env, Type Expected) {
  auto Finish = [&](Type Actual) -> Type {
    if (Expected.isValid() && Actual.isValid() && Actual != Expected) {
      Diags.error(B.loc(), "expected " + Expected.str() + ", got " +
                               Actual.str());
      B.setType(Expected);
      return Expected;
    }
    B.setType(Actual);
    return Actual;
  };

  switch (B.op()) {
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    checkExpr(*B.lhs(), Env, Type::boolTy());
    checkExpr(*B.rhs(), Env, Type::boolTy());
    return Finish(Type::boolTy());

  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    // Check the non-literal side first so literals inherit its width;
    // when both sides are concrete, check them independently so width and
    // signedness mismatches get precise diagnostics.
    Type L, R;
    bool Ordered = B.op() != BinaryOp::Eq && B.op() != BinaryOp::Ne;
    if (isUnconstrainedLiteral(*B.lhs()) && !isUnconstrainedLiteral(*B.rhs())) {
      R = checkExpr(*B.rhs(), Env);
      L = checkExpr(*B.lhs(), Env, R);
    } else if (isUnconstrainedLiteral(*B.rhs())) {
      L = checkExpr(*B.lhs(), Env);
      R = checkExpr(*B.rhs(), Env, L);
    } else {
      L = checkExpr(*B.lhs(), Env);
      R = checkExpr(*B.rhs(), Env);
      if (L.isValid() && R.isValid()) {
        if (L.isBool() != R.isBool() ||
            (L.isInt() && R.isInt() && L.width() != R.width()))
          Diags.error(B.loc(), "comparison operands have different types: " +
                                   L.str() + " vs " + R.str());
        else if (Ordered && L.isInt() && L.isSigned() != R.isSigned())
          Diags.error(B.loc(),
                      "ordered comparison between signed and unsigned "
                      "operands; cast one side");
      }
    }
    if (Ordered && L.isValid() && L.isBool())
      Diags.error(B.loc(), "ordered comparison requires integer operands");
    return Finish(Type::boolTy());
  }

  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    Type L = checkExpr(*B.lhs(), Env, Expected);
    // The shift amount may have any integer width.
    Type R = checkExpr(*B.rhs(), Env,
                       isUnconstrainedLiteral(*B.rhs()) && L.isValid()
                           ? Type::intTy(L.isInt() ? L.width() : 32, false)
                           : Type());
    if (R.isValid() && !R.isInt())
      Diags.error(B.loc(), "shift amount must be an integer");
    if (L.isValid() && !L.isInt()) {
      Diags.error(B.loc(), "shifted value must be an integer");
      L = Type::intTy(32, false);
    }
    return Finish(L);
  }

  case BinaryOp::Concat: {
    Type L = checkExpr(*B.lhs(), Env);
    Type R = checkExpr(*B.rhs(), Env);
    if (!L.isInt() || !R.isInt()) {
      Diags.error(B.loc(), "'++' requires integer operands of known width");
      return Finish(Type::intTy(32, false));
    }
    if (L.width() + R.width() > 64) {
      Diags.error(B.loc(), "concatenation exceeds the 64-bit value limit");
      return Finish(Type::intTy(64, false));
    }
    return Finish(Type::intTy(L.width() + R.width(), false));
  }

  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor: {
    Type L, R;
    if (isUnconstrainedLiteral(*B.lhs()) && !isUnconstrainedLiteral(*B.rhs())) {
      R = checkExpr(*B.rhs(), Env, Expected);
      L = checkExpr(*B.lhs(), Env, R);
    } else {
      L = checkExpr(*B.lhs(), Env, Expected);
      R = checkExpr(*B.rhs(), Env, L);
    }
    if (L.isValid() && !L.isInt()) {
      Diags.error(B.loc(), "arithmetic requires integer operands");
      L = Type::intTy(32, false);
    }
    return Finish(L);
  }
  }
  return Type();
}
