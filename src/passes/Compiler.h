//===- Compiler.h - PDL compilation driver ---------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end front half of the PDL compiler (Figure 4): parse, type-check,
/// build stage graphs, run the lock and speculation checkers (backed by the
/// SMT solver). The result feeds backend elaboration (backend/Elaborator.h),
/// which plays the role of the paper's BSV code generator.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_COMPILER_H
#define PDL_PASSES_COMPILER_H

#include "passes/LockChecker.h"
#include "passes/SpecChecker.h"
#include "passes/StageGraph.h"
#include "pdl/AST.h"
#include "smt/Solver.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace pdl {

/// The checked artifacts for one pipe.
struct CompiledPipe {
  const ast::PipeDecl *Decl = nullptr;
  StageGraph Graph;
  LockAnalysis Locks;
  SpecAnalysis Spec;
};

/// A fully checked program plus everything needed to report diagnostics
/// about it. Move-only; owns the AST.
struct CompiledProgram {
  std::unique_ptr<SourceMgr> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ast::Program> AST;
  std::map<std::string, CompiledPipe> Pipes;
  /// SMT statistics accumulated across all checker queries.
  unsigned SolverQueries = 0;
  unsigned SolverDecisions = 0;

  bool ok() const { return Diags && !Diags->hasErrors(); }
};

/// Runs the whole front half on \p Source. Always returns the program (so
/// callers can inspect diagnostics); check ok() before elaborating.
CompiledProgram compile(const std::string &Source,
                        const std::string &Name = "<pdl>");

} // namespace pdl

#endif // PDL_PASSES_COMPILER_H
