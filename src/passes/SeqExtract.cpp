//===- SeqExtract.cpp - Sequential specification extraction ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/SeqExtract.h"

#include <sstream>

using namespace pdl;
using namespace pdl::ast;

namespace {

/// Walks a body, emitting the retained statements and collecting the
/// delayed ones (writes and next-thread spawns) with their guard context.
class Extractor {
public:
  std::string run(const PipeDecl &Pipe) {
    std::ostringstream OS;
    OS << "pipe " << Pipe.Name << "(";
    for (unsigned I = 0, N = Pipe.Params.size(); I != N; ++I) {
      if (I)
        OS << ", ";
      OS << Pipe.Params[I].Name << ": " << Pipe.Params[I].Ty.str();
    }
    OS << ")[";
    for (unsigned I = 0, N = Pipe.Mems.size(); I != N; ++I) {
      if (I)
        OS << ", ";
      OS << Pipe.Mems[I].Name;
    }
    OS << "] {\n";
    emitList(Pipe.Body, 2);
    if (!Delayed.empty()) {
      OS2 << "  // delayed writes and tail call:\n";
      for (const std::string &Line : Delayed)
        OS2 << Line;
    }
    OS << Body.str() << OS2.str() << "}\n";
    return OS.str();
  }

private:
  void emitLine(unsigned Indent, const std::string &Text) {
    Body << std::string(Indent, ' ') << Text << '\n';
  }

  void delay(const std::string &Text) {
    Delayed.push_back("  " + Text + "\n");
  }

  /// Renders the guard prefix for delayed statements hoisted out of
  /// conditionals.
  std::string guarded(const std::string &Stmt) {
    if (GuardText.empty())
      return Stmt;
    std::string Out;
    for (const std::string &G : GuardText)
      Out += "if (" + G + ") ";
    return Out + "{ " + Stmt + " }";
  }

  void emitList(const StmtList &Stmts, unsigned Indent) {
    for (const StmtPtr &S : Stmts)
      emitStmt(*S, Indent);
  }

  void emitStmt(const Stmt &S, unsigned Indent) {
    switch (S.kind()) {
    case Stmt::Kind::StageSep:
    case Stmt::Kind::Lock:
    case Stmt::Kind::SpecCheck:
    case Stmt::Kind::Update:
      return; // erased

    case Stmt::Kind::PipeCall: {
      const auto *C = cast<PipeCallStmt>(&S);
      if (C->isSpec())
        return; // erased; the matching verify becomes the tail call
      std::string Text = printStmt(S);
      Text.erase(Text.find_last_not_of('\n') + 1);
      if (!C->hasResult() && C->pipe() == pipeName) {
        delay(guarded(Text));
        return;
      }
      emitLine(Indent, Text);
      return;
    }
    case Stmt::Kind::MemWrite: {
      std::string Text = printStmt(S);
      Text.erase(Text.find_last_not_of('\n') + 1);
      delay(guarded(Text));
      return;
    }
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(&S);
      delay(guarded("call " + pipeName + "(" + printExpr(*V->actual()) +
                    ");"));
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      std::string Cond = printExpr(*I->cond());
      // Retained statements keep their structure; delayed statements carry
      // the guard textually.
      emitLine(Indent, "if (" + Cond + ") {");
      GuardText.push_back(Cond);
      emitList(I->thenBody(), Indent + 2);
      GuardText.pop_back();
      if (!I->elseBody().empty()) {
        emitLine(Indent, "} else {");
        GuardText.push_back("!(" + Cond + ")");
        emitList(I->elseBody(), Indent + 2);
        GuardText.pop_back();
      }
      emitLine(Indent, "}");
      return;
    }
    default: {
      std::string Text = printStmt(S);
      Text.erase(Text.find_last_not_of('\n') + 1);
      emitLine(Indent, Text);
      return;
    }
    }
  }

public:
  explicit Extractor(const PipeDecl &Pipe) : pipeName(Pipe.Name) {}

private:
  std::string pipeName;
  std::ostringstream Body, OS2;
  std::vector<std::string> Delayed;
  std::vector<std::string> GuardText;
};

} // namespace

std::string pdl::extractSequential(const PipeDecl &Pipe) {
  Extractor E(Pipe);
  return E.run(Pipe);
}
