//===- LockChecker.cpp - Hazard-lock protocol checking ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/LockChecker.h"

#include <functional>

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::smt;

namespace {

/// A lock handle: one memory location as spelled in the source, in one of
/// three modes. LockMode::None denotes an exclusive (read+write) lock, the
/// meaning of a mode-less acquire/reserve.
struct LockKey {
  std::string Mem;
  std::string Addr;
  LockMode Mode = LockMode::None;

  bool operator<(const LockKey &O) const {
    return std::tie(Mem, Addr, Mode) < std::tie(O.Mem, O.Addr, O.Mode);
  }
  std::string str() const {
    std::string S = Mem + "[" + Addr + "]";
    if (Mode == LockMode::Read)
      S += " (R)";
    else if (Mode == LockMode::Write)
      S += " (W)";
    return S;
  }
};

/// Path-indexed protocol state for one handle: each formula gives the
/// condition under which the lock is in that phase.
struct KeyState {
  const Formula *Reserved;
  const Formula *Acquired;
  const Formula *Accessed;
};

/// Collects combinational memory reads nested in \p E, in evaluation order.
void collectCombReads(const Expr &E, std::vector<const MemReadExpr *> &Out) {
  switch (E.kind()) {
  case Expr::Kind::MemRead: {
    const auto *M = cast<MemReadExpr>(&E);
    collectCombReads(*M->addr(), Out);
    Out.push_back(M);
    return;
  }
  case Expr::Kind::Unary:
    collectCombReads(*cast<UnaryExpr>(&E)->operand(), Out);
    return;
  case Expr::Kind::Binary:
    collectCombReads(*cast<BinaryExpr>(&E)->lhs(), Out);
    collectCombReads(*cast<BinaryExpr>(&E)->rhs(), Out);
    return;
  case Expr::Kind::Ternary:
    collectCombReads(*cast<TernaryExpr>(&E)->cond(), Out);
    collectCombReads(*cast<TernaryExpr>(&E)->thenExpr(), Out);
    collectCombReads(*cast<TernaryExpr>(&E)->elseExpr(), Out);
    return;
  case Expr::Kind::Slice:
    collectCombReads(*cast<SliceExpr>(&E)->base(), Out);
    return;
  case Expr::Kind::Cast:
    collectCombReads(*cast<CastExpr>(&E)->operand(), Out);
    return;
  case Expr::Kind::FuncCall:
    for (const ExprPtr &A : cast<FuncCallExpr>(&E)->args())
      collectCombReads(*A, Out);
    return;
  case Expr::Kind::ExternCall:
    for (const ExprPtr &A : cast<ExternCallExpr>(&E)->args())
      collectCombReads(*A, Out);
    return;
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    return;
  }
}

class LockCheckerImpl {
public:
  LockCheckerImpl(const PipeDecl &Pipe, const StageGraph &G,
                  ConditionAbstractor &Abs, Solver &Solver,
                  DiagnosticEngine &Diags)
      : Pipe(Pipe), G(G), Abs(Abs), S(Solver), Diags(Diags),
        Ctx(Abs.context()) {}

  LockAnalysis run() {
    scanLockedMems();
    Reach = Abs.reachConditions(G);
    for (const Stage &Stg : G.Stages)
      for (const StagedOp &Op : Stg.Ops)
        visitOp(Stg, Op);
    checkAllReleased();
    checkInOrderStages();
    return std::move(Result);
  }

private:
  /// First pass: find which memories have any lock statements at all.
  /// Memories without locks (e.g. a DRAM-backed `main` interface) are
  /// accessed unguarded, like the paper's Figure 7 cache does.
  void scanLockedMems() {
    std::function<void(const StmtList &)> Walk = [&](const StmtList &L) {
      for (const StmtPtr &St : L) {
        if (const auto *Lk = dyn_cast<LockStmt>(St.get())) {
          LockedMems.insert(Lk->mem());
          LockMode M = Lk->mode();
          if (Lk->op() == LockOp::Reserve || Lk->op() == LockOp::Acquire) {
            if (M == LockMode::Read || M == LockMode::None)
              Result.ReadLocked.insert(Lk->mem());
            if (M == LockMode::Write || M == LockMode::None)
              Result.WriteLocked.insert(Lk->mem());
          }
        }
        if (const auto *I = dyn_cast<IfStmt>(St.get())) {
          Walk(I->thenBody());
          Walk(I->elseBody());
        }
      }
    };
    Walk(Pipe.Body);
  }

  KeyState &state(const LockKey &K) {
    auto It = States.find(K);
    if (It != States.end())
      return It->second;
    KeyState Init{Ctx.falseF(), Ctx.falseF(), Ctx.falseF()};
    return States.emplace(K, Init).first->second;
  }

  const Formula *freeCond(const KeyState &St) {
    return Ctx.notF(Ctx.orF(St.Reserved, St.Acquired));
  }

  void visitOp(const Stage &Stg, const StagedOp &Op) {
    const Formula *P = Ctx.andF(Reach[Stg.Id], Abs.guard(Op.G));

    // Memory accesses nested in the statement's expressions.
    std::vector<const MemReadExpr *> Reads;
    forEachExpr(*Op.S, [&](const Expr &E) { collectCombReads(E, Reads); });
    for (const MemReadExpr *R : Reads)
      checkAccess(Stg, P, R->mem(), addrKey(*R->addr()), /*IsWrite=*/false,
                  R->loc());

    switch (Op.S->kind()) {
    case Stmt::Kind::SyncRead: {
      const auto *R = cast<SyncReadStmt>(Op.S);
      checkAccess(Stg, P, R->mem(), addrKey(*R->addr()), /*IsWrite=*/false,
                  R->loc());
      return;
    }
    case Stmt::Kind::MemWrite: {
      const auto *W = cast<MemWriteStmt>(Op.S);
      checkAccess(Stg, P, W->mem(), addrKey(*W->addr()), /*IsWrite=*/true,
                  W->loc());
      return;
    }
    case Stmt::Kind::Lock:
      visitLock(Stg, *cast<LockStmt>(Op.S), P);
      return;
    default:
      return;
    }
  }

  /// Applies \p F to every expression directly owned by \p S (not those of
  /// nested statements; nested ifs appear as their own staged ops).
  template <typename Fn> void forEachExpr(const Stmt &St, Fn F) {
    switch (St.kind()) {
    case Stmt::Kind::Assign:
      F(*cast<AssignStmt>(&St)->value());
      return;
    case Stmt::Kind::SyncRead:
      F(*cast<SyncReadStmt>(&St)->addr());
      return;
    case Stmt::Kind::PipeCall:
      for (const ExprPtr &A : cast<PipeCallStmt>(&St)->args())
        F(*A);
      return;
    case Stmt::Kind::MemWrite:
      F(*cast<MemWriteStmt>(&St)->addr());
      F(*cast<MemWriteStmt>(&St)->value());
      return;
    case Stmt::Kind::Output:
      F(*cast<OutputStmt>(&St)->value());
      return;
    case Stmt::Kind::Lock:
      if (cast<LockStmt>(&St)->addr())
        F(*cast<LockStmt>(&St)->addr());
      return;
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(&St);
      F(*V->actual());
      if (V->predictorUpdate())
        F(*V->predictorUpdate());
      return;
    }
    case Stmt::Kind::Update:
      F(*cast<UpdateStmt>(&St)->newPred());
      return;
    default:
      return;
    }
  }

  void checkAccess(const Stage &Stg, const Formula *P, const std::string &Mem,
                   const std::string &Addr, bool IsWrite, SourceLoc Loc) {
    if (!LockedMems.count(Mem))
      return; // Unlocked memory: accesses are unguarded by design.
    LockKey Exact{Mem, Addr, IsWrite ? LockMode::Write : LockMode::Read};
    LockKey Excl{Mem, Addr, LockMode::None};
    const Formula *Held =
        Ctx.orF(state(Exact).Acquired, state(Excl).Acquired);
    if (!S.proves(P, Held)) {
      Diags.error(Loc, std::string(IsWrite ? "write to '" : "read of '") +
                           Mem + "[" + Addr + "]' without an acquired " +
                           (IsWrite ? "write" : "read") +
                           " lock (acquire missing?)");
      return;
    }
    // Mark whichever handles are held as accessed.
    state(Exact).Accessed = Ctx.orF(state(Exact).Accessed,
                                    Ctx.andF(P, state(Exact).Acquired));
    state(Excl).Accessed =
        Ctx.orF(state(Excl).Accessed, Ctx.andF(P, state(Excl).Acquired));
    (void)Stg;
  }

  /// Resolves a mode-less block/release to the unique outstanding handle.
  bool resolveMode(const LockStmt &L, const Formula *P, LockKey &K) {
    if (L.mode() != LockMode::None) {
      K = {L.mem(), addrKey(*L.addr()), L.mode()};
      return true;
    }
    std::vector<LockKey> Active;
    for (LockMode M : {LockMode::Read, LockMode::Write, LockMode::None}) {
      LockKey Cand{L.mem(), addrKey(*L.addr()), M};
      auto It = States.find(Cand);
      if (It == States.end())
        continue;
      const Formula *Out = Ctx.orF(It->second.Reserved, It->second.Acquired);
      if (S.isSatisfiable(Ctx.andF(P, Out)))
        Active.push_back(Cand);
    }
    if (Active.size() == 1) {
      K = Active.front();
      return true;
    }
    if (Active.empty())
      Diags.error(L.loc(), std::string(lockOpSpelling(L.op())) + " of '" +
                               L.mem() + "[" + addrKey(*L.addr()) +
                               "]' with no outstanding reservation");
    else
      Diags.error(L.loc(), std::string(lockOpSpelling(L.op())) +
                               " is ambiguous: both R and W locks are "
                               "outstanding for '" +
                               L.mem() + "[" + addrKey(*L.addr()) +
                               "]'; specify a mode");
    return false;
  }

  void doReserve(const Stage &Stg, const LockStmt &L, const Formula *P) {
    LockKey K{L.mem(), addrKey(*L.addr()), L.mode()};
    KeyState &St = state(K);
    if (!S.proves(P, freeCond(St)))
      Diags.error(L.loc(), "lock for '" + K.str() +
                               "' may already be reserved here (each handle "
                               "is reserved once per thread)");
    St.Reserved = Ctx.orF(St.Reserved, P);
    Result.RegionStages[L.mem()].insert(Stg.Id);
    ReserveStages[L.mem()].insert(Stg.Id);
  }

  void doBlock(const Stage &Stg, const LockStmt &L, const Formula *P) {
    LockKey K;
    if (!resolveMode(L, P, K))
      return;
    KeyState &St = state(K);
    if (!S.proves(P, Ctx.orF(St.Reserved, St.Acquired)))
      Diags.error(L.loc(), "block of '" + K.str() +
                               "' requires a prior reservation on every "
                               "path reaching it");
    St.Acquired = Ctx.orF(St.Acquired, P);
    St.Reserved = Ctx.andF(St.Reserved, Ctx.notF(P));
    (void)Stg;
  }

  void doRelease(const Stage &Stg, const LockStmt &L, const Formula *P) {
    LockKey K;
    if (!resolveMode(L, P, K))
      return;
    KeyState &St = state(K);
    if (!S.proves(P, St.Acquired))
      Diags.error(L.loc(), "release of '" + K.str() +
                               "' requires the lock to be acquired (block "
                               "missing?)");
    else if (!S.proves(P, St.Accessed))
      Diags.error(L.loc(), "release of '" + K.str() +
                               "' before the associated memory operation "
                               "has executed");
    St.Reserved = Ctx.andF(St.Reserved, Ctx.notF(P));
    St.Acquired = Ctx.andF(St.Acquired, Ctx.notF(P));
    St.Accessed = Ctx.andF(St.Accessed, Ctx.notF(P));
    if (K.Mode != LockMode::Read)
      Result.WriteReleaseStages[L.mem()].insert(Stg.Id);
  }

  void visitLock(const Stage &Stg, const LockStmt &L, const Formula *P) {
    switch (L.op()) {
    case LockOp::Reserve:
      doReserve(Stg, L, P);
      return;
    case LockOp::Acquire:
      doReserve(Stg, L, P);
      doBlock(Stg, L, P);
      return;
    case LockOp::Block:
      doBlock(Stg, L, P);
      return;
    case LockOp::Release:
      doRelease(Stg, L, P);
      return;
    }
  }

  void checkAllReleased() {
    for (const auto &[K, St] : States) {
      const Formula *Outstanding = Ctx.orF(St.Reserved, St.Acquired);
      if (S.isSatisfiable(Outstanding))
        Diags.error(Pipe.Loc, "lock for '" + K.str() +
                                  "' may be left unreleased at the end of "
                                  "pipe '" +
                                  Pipe.Name + "'");
    }
  }

  /// Reserve and write-release stages must be in-order, or all inside one
  /// branch of an out-of-order region (Section 4.1's relaxation).
  void checkInOrderStages() {
    for (const auto &[Mem, Stages] : ReserveStages)
      checkStageSet(Mem, Stages, "reservations");
    for (const auto &[Mem, Stages] : Result.WriteReleaseStages)
      checkStageSet(Mem, Stages, "write releases");
  }

  void checkStageSet(const std::string &Mem, const std::set<unsigned> &Set,
                     const char *What) {
    const std::vector<std::pair<unsigned, unsigned>> *ArmPath = nullptr;
    for (unsigned Id : Set) {
      const Stage &Stg = G.Stages[Id];
      if (Stg.Ordered)
        continue;
      if (!ArmPath) {
        ArmPath = &Stg.ArmPath;
        continue;
      }
      if (*ArmPath != Stg.ArmPath)
        Diags.error(Pipe.Loc,
                    std::string("lock ") + What + " for memory '" + Mem +
                        "' occur in more than one branch of an "
                        "out-of-order region; they must stay within one "
                        "branch to preserve thread-order reservation");
    }
  }

  const PipeDecl &Pipe;
  const StageGraph &G;
  ConditionAbstractor &Abs;
  Solver &S;
  DiagnosticEngine &Diags;
  FormulaContext &Ctx;

  std::vector<const Formula *> Reach;
  std::map<LockKey, KeyState> States;
  std::set<std::string> LockedMems;
  std::map<std::string, std::set<unsigned>> ReserveStages;
  LockAnalysis Result;
};

} // namespace

LockAnalysis pdl::checkLocks(const PipeDecl &Pipe, const StageGraph &G,
                             ConditionAbstractor &Abs, Solver &Solver,
                             DiagnosticEngine &Diags) {
  LockCheckerImpl Impl(Pipe, G, Abs, Solver, Diags);
  return Impl.run();
}
