//===- Liveness.cpp - Live-variable analysis over the stage graph -----------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Liveness.h"

#include <functional>

using namespace pdl;
using namespace pdl::ast;

namespace {

void collectReads(const Expr &E, std::set<std::string> &Out) {
  switch (E.kind()) {
  case Expr::Kind::VarRef:
    Out.insert(cast<VarRefExpr>(&E)->name());
    return;
  case Expr::Kind::Unary:
    collectReads(*cast<UnaryExpr>(&E)->operand(), Out);
    return;
  case Expr::Kind::Binary:
    collectReads(*cast<BinaryExpr>(&E)->lhs(), Out);
    collectReads(*cast<BinaryExpr>(&E)->rhs(), Out);
    return;
  case Expr::Kind::Ternary:
    collectReads(*cast<TernaryExpr>(&E)->cond(), Out);
    collectReads(*cast<TernaryExpr>(&E)->thenExpr(), Out);
    collectReads(*cast<TernaryExpr>(&E)->elseExpr(), Out);
    return;
  case Expr::Kind::Slice:
    collectReads(*cast<SliceExpr>(&E)->base(), Out);
    return;
  case Expr::Kind::Cast:
    collectReads(*cast<CastExpr>(&E)->operand(), Out);
    return;
  case Expr::Kind::MemRead:
    collectReads(*cast<MemReadExpr>(&E)->addr(), Out);
    return;
  case Expr::Kind::FuncCall:
    for (const ExprPtr &A : cast<FuncCallExpr>(&E)->args())
      collectReads(*A, Out);
    return;
  case Expr::Kind::ExternCall:
    for (const ExprPtr &A : cast<ExternCallExpr>(&E)->args())
      collectReads(*A, Out);
    return;
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
    return;
  }
}

/// Variables a statement reads / the one it defines (empty if none).
void stmtReads(const Stmt &S, std::set<std::string> &Out) {
  switch (S.kind()) {
  case Stmt::Kind::Assign:
    collectReads(*cast<AssignStmt>(&S)->value(), Out);
    return;
  case Stmt::Kind::SyncRead:
    collectReads(*cast<SyncReadStmt>(&S)->addr(), Out);
    return;
  case Stmt::Kind::PipeCall:
    for (const ExprPtr &A : cast<PipeCallStmt>(&S)->args())
      collectReads(*A, Out);
    return;
  case Stmt::Kind::MemWrite:
    collectReads(*cast<MemWriteStmt>(&S)->addr(), Out);
    collectReads(*cast<MemWriteStmt>(&S)->value(), Out);
    return;
  case Stmt::Kind::Output:
    collectReads(*cast<OutputStmt>(&S)->value(), Out);
    return;
  case Stmt::Kind::Lock:
    if (cast<LockStmt>(&S)->addr())
      collectReads(*cast<LockStmt>(&S)->addr(), Out);
    return;
  case Stmt::Kind::Verify: {
    const auto *V = cast<VerifyStmt>(&S);
    collectReads(*V->actual(), Out);
    if (V->predictorUpdate())
      collectReads(*V->predictorUpdate(), Out);
    return;
  }
  case Stmt::Kind::Update:
    collectReads(*cast<UpdateStmt>(&S)->newPred(), Out);
    return;
  default:
    return;
  }
}

std::string stmtDef(const Stmt &S) {
  if (const auto *A = dyn_cast<AssignStmt>(&S))
    return A->name();
  if (const auto *R = dyn_cast<SyncReadStmt>(&S))
    return R->name();
  if (const auto *C = dyn_cast<PipeCallStmt>(&S))
    if (C->hasResult() && !C->isSpec())
      return C->resultName();
  return "";
}

} // namespace

unsigned LivenessInfo::edgeBits(std::pair<unsigned, unsigned> Edge) const {
  auto It = LiveOnEdge.find(Edge);
  if (It == LiveOnEdge.end())
    return 0;
  unsigned Bits = 0;
  for (const std::string &V : It->second) {
    auto W = WidthOf.find(V);
    Bits += W == WidthOf.end() ? 1 : W->second;
  }
  return Bits;
}

LivenessInfo pdl::computeLiveness(const PipeDecl &Pipe, const StageGraph &G) {
  LivenessInfo Info;

  // Widths: params, then every defining statement.
  for (const Param &P : Pipe.Params)
    Info.WidthOf[P.Name] = P.Ty.width();
  std::function<void(const StmtList &)> Widths = [&](const StmtList &L) {
    for (const StmtPtr &S : L) {
      if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
        Type T = A->declaredType() ? *A->declaredType() : A->value()->type();
        Info.WidthOf[A->name()] = T.isValid() ? T.width() : 32;
      } else if (const auto *R = dyn_cast<SyncReadStmt>(S.get())) {
        const MemDecl *M = Pipe.findMem(R->mem());
        Info.WidthOf[R->name()] = M ? M->ElemType.width() : 32;
      } else if (const auto *C = dyn_cast<PipeCallStmt>(S.get())) {
        if (C->hasResult() && !C->isSpec())
          Info.WidthOf[C->resultName()] = 32; // resolved by callee ret type
      } else if (const auto *I = dyn_cast<IfStmt>(S.get())) {
        Widths(I->thenBody());
        Widths(I->elseBody());
      }
    }
  };
  Widths(Pipe.Body);

  // Per-stage use/def, respecting in-stage op order and guards.
  std::vector<std::set<std::string>> Use(G.Stages.size()),
      Def(G.Stages.size());
  for (const Stage &S : G.Stages) {
    std::set<std::string> Defined;
    for (const StagedOp &Op : S.Ops) {
      std::set<std::string> Reads;
      for (const GuardTerm &T : Op.G)
        collectReads(*T.Cond, Reads);
      stmtReads(*Op.S, Reads);
      for (const std::string &R : Reads)
        if (!Defined.count(R))
          Use[S.Id].insert(R);
      std::string D = stmtDef(*Op.S);
      if (!D.empty())
        Defined.insert(D);
    }
    // Successor-edge guards and coordination-tag rules read at stage exit.
    std::set<std::string> ExitReads;
    for (const StageEdge &E : S.Succs)
      for (const GuardTerm &T : E.G)
        collectReads(*T.Cond, ExitReads);
    for (const Stage &J : G.Stages)
      if (J.ForkStage == S.Id)
        for (const TagRule &TR : J.TagRules)
          for (const GuardTerm &T : TR.G)
            collectReads(*T.Cond, ExitReads);
    for (const std::string &R : ExitReads)
      if (!Defined.count(R))
        Use[S.Id].insert(R);
    Def[S.Id] = std::move(Defined);
  }

  // Reverse pass (ids are topologically ordered).
  std::vector<std::set<std::string>> LiveIn(G.Stages.size());
  for (unsigned Id = G.Stages.size(); Id-- > 0;) {
    const Stage &S = G.Stages[Id];
    std::set<std::string> Out;
    for (const StageEdge &E : S.Succs) {
      const std::set<std::string> &SuccIn = LiveIn[E.To];
      Out.insert(SuccIn.begin(), SuccIn.end());
    }
    std::set<std::string> In = Use[Id];
    for (const std::string &V : Out)
      if (!Def[Id].count(V))
        In.insert(V);
    LiveIn[Id] = std::move(In);
    for (const StageEdge &E : S.Succs)
      Info.LiveOnEdge[{E.From, E.To}] = LiveIn[E.To];
  }
  return Info;
}
