//===- TypeChecker.h - PDL type and definedness checking -------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard type checking for PDL programs: sized-integer typing with
/// bidirectional literal-width inference, single-assignment enforcement,
/// memory access modes (combinational vs synchronous), pipe-call arity and
/// result typing, and speculation-handle scoping. Lock sequencing and
/// speculation typestate are checked by the dedicated LockChecker /
/// SpecChecker passes.
///
/// Definedness follows hardware wire semantics: a variable assigned on only
/// some paths may still be read (the value is a don't-care off those paths,
/// and simulates as zero); reading a name with no reaching definition on any
/// path is an error.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_TYPECHECKER_H
#define PDL_PASSES_TYPECHECKER_H

#include "pdl/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>

namespace pdl {

/// Type-checks a whole program, annotating expression nodes with their
/// resolved types in place.
class TypeChecker {
public:
  TypeChecker(ast::Program &P, DiagnosticEngine &Diags)
      : Program(P), Diags(Diags) {}

  /// Returns true when the program type-checks with no errors.
  bool check();

private:
  enum class DefState { Undefined, Maybe, Defined };

  struct Env {
    std::map<std::string, Type> Types;
    std::map<std::string, DefState> Defs;
  };

  void checkFunc(ast::FuncDecl &F);
  void checkExtern(const ast::ExternDecl &E);
  void checkPipe(ast::PipeDecl &P);
  void checkStmtList(ast::StmtList &Stmts, Env &E, ast::PipeDecl &P);
  void checkStmt(ast::Stmt &S, Env &E, ast::PipeDecl &P);

  /// Checks \p E with optional expected type \p Expected (used to give
  /// widths to integer literals); returns the resolved type (Invalid on
  /// error, after reporting).
  Type checkExpr(ast::Expr &E, Env &Env, Type Expected = Type());

  Type checkBinary(ast::BinaryExpr &B, Env &Env, Type Expected);
  void defineVar(SourceLoc Loc, Env &E, const std::string &Name, Type Ty);
  Type mergeBranchTypes(SourceLoc Loc, Type A, Type B);

  /// True if \p E (or some statement beneath it) contains a stage separator.
  static bool containsStageSep(const ast::StmtList &Stmts);

  ast::Program &Program;
  DiagnosticEngine &Diags;
  /// Functions already checked; calls may only reference these (enforces
  /// declaration-before-use and rules out recursion).
  std::set<std::string> CheckedFuncs;
  /// The pipe currently being checked (for recursive-call detection).
  ast::PipeDecl *CurPipe = nullptr;
  /// Speculation handles in scope within the current pipe.
  std::set<std::string> SpecHandles;
  /// Non-null while checking a def function body (return type context).
  const ast::FuncDecl *CurFunc = nullptr;
};

} // namespace pdl

#endif // PDL_PASSES_TYPECHECKER_H
