//===- StageGraph.h - Pipeline stage DAG -----------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stage graph a PDL pipe elaborates to (Section 2.1 / Figure 2):
/// statements split at `---` separators into stages; separators inside
/// conditional branches fork the graph into unordered regions that re-join
/// at a coordination-tagged join stage. Each stage later becomes one
/// atomic rule in the generated circuit; each edge becomes a FIFO.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_STAGEGRAPH_H
#define PDL_PASSES_STAGEGRAPH_H

#include "pdl/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace pdl {

/// One conjunct of a guard: the branch condition expression and the arm
/// polarity (true = then-arm).
struct GuardTerm {
  const ast::Expr *Cond = nullptr;
  bool Polarity = true;
};

/// A conjunction of branch conditions under which an operation executes or
/// an edge is taken. Empty means unconditional.
using Guard = std::vector<GuardTerm>;

/// A statement placed into a stage, together with the in-stage guard under
/// which it executes (conditionals that do not contain stage separators
/// become predication).
struct StagedOp {
  const ast::Stmt *S = nullptr;
  Guard G;
};

/// A directed edge between stages. At runtime a thread leaving the source
/// stage takes the unique successor edge whose guard holds.
struct StageEdge {
  unsigned From = 0;
  unsigned To = 0;
  Guard G;
};

/// For join stages: when a thread passes the fork and \p G holds, the fork
/// enqueues \p PredIndex into the join's coordination-tag FIFO, committing
/// the thread to arrive at the join via that predecessor edge.
struct TagRule {
  Guard G;
  unsigned PredIndex = 0;
};

struct Stage {
  unsigned Id = 0;
  std::string Name;
  std::vector<StagedOp> Ops;
  std::vector<StageEdge> Succs;
  std::vector<unsigned> Preds;

  /// True when all threads traverse this stage in thread order. Stages
  /// strictly inside a fork/join region are unordered (Figure 2).
  bool Ordered = true;

  /// Fork/join nesting path: (fork stage id, arm index) pairs identifying
  /// which out-of-order branch this stage belongs to. Empty for ordered
  /// stages on the spine.
  std::vector<std::pair<unsigned, unsigned>> ArmPath;

  /// For join stages: the fork stage that enqueues coordination tags, else
  /// ~0u. The tag tells the join which predecessor to dequeue from next.
  unsigned ForkStage = ~0u;
  std::vector<TagRule> TagRules;

  bool isJoin() const { return ForkStage != ~0u; }
};

/// The stage DAG for one pipe.
struct StageGraph {
  const ast::PipeDecl *Pipe = nullptr;
  std::vector<Stage> Stages;
  unsigned Entry = 0;

  /// Stage containing each statement (conditions of splitting ifs map to
  /// the fork stage).
  std::map<const ast::Stmt *, unsigned> StageOf;

  /// Renders the graph for debugging/tests: one line per stage listing ops
  /// counts and successor edges.
  std::string str() const;
};

/// Builds the stage graph for \p Pipe. Reports structural problems (e.g. a
/// pipe whose body is empty) to \p Diags.
StageGraph buildStageGraph(const ast::PipeDecl &Pipe, DiagnosticEngine &Diags);

} // namespace pdl

#endif // PDL_PASSES_STAGEGRAPH_H
