//===- StageGraph.cpp - Pipeline stage DAG ---------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/StageGraph.h"

#include <sstream>

using namespace pdl;
using namespace pdl::ast;

namespace {

bool listContainsSep(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts) {
    if (isa<StageSepStmt>(S.get()))
      return true;
    if (const auto *I = dyn_cast<IfStmt>(S.get()))
      if (listContainsSep(I->thenBody()) || listContainsSep(I->elseBody()))
        return true;
  }
  return false;
}

/// Walks a pipe body, materializing stages, edges, and join coordination.
class GraphBuilder {
public:
  GraphBuilder(const PipeDecl &Pipe, DiagnosticEngine &Diags)
      : Diags(Diags), Pipe(Pipe) {
    G.Pipe = &Pipe;
    Cur = newStage(/*Ordered=*/true, /*ArmPath=*/{});
    G.Entry = Cur;
  }

  StageGraph build() {
    processList(Pipe.Body);
    for (Stage &S : G.Stages)
      S.Name = "S" + std::to_string(S.Id);
    return std::move(G);
  }

private:
  unsigned newStage(bool Ordered,
                    std::vector<std::pair<unsigned, unsigned>> ArmPath) {
    Stage S;
    S.Id = G.Stages.size();
    S.Ordered = Ordered;
    S.ArmPath = std::move(ArmPath);
    G.Stages.push_back(std::move(S));
    return G.Stages.back().Id;
  }

  void addEdge(unsigned From, unsigned To, Guard G2) {
    G.Stages[From].Succs.push_back({From, To, std::move(G2)});
    G.Stages[To].Preds.push_back(From);
  }

  void processList(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts) {
      if (isa<StageSepStmt>(S.get())) {
        unsigned Next = newStage(Ord, CurArmPath);
        addEdge(Cur, Next, CurGuard);
        G.StageOf[S.get()] = Next;
        Cur = Next;
        CurGuard.clear();
        continue;
      }
      if (const auto *I = dyn_cast<IfStmt>(S.get())) {
        processIf(*I);
        continue;
      }
      G.Stages[Cur].Ops.push_back({S.get(), CurGuard});
      G.StageOf[S.get()] = Cur;
    }
  }

  void processIf(const IfStmt &I) {
    bool Splits = listContainsSep(I.thenBody()) ||
                  listContainsSep(I.elseBody());
    G.StageOf[&I] = Cur;

    if (!Splits) {
      // Pure predication: ops execute in the current stage under the
      // branch condition.
      Guard Saved = CurGuard;
      CurGuard.push_back({I.cond(), true});
      processList(I.thenBody());
      CurGuard = Saved;
      if (!I.elseBody().empty()) {
        CurGuard.push_back({I.cond(), false});
        processList(I.elseBody());
        CurGuard = Saved;
      }
      return;
    }

    // The graph forks here: arm-internal stages are unordered; a join
    // stage with a coordination tag restores thread order (Figure 2).
    unsigned Fork = Cur;
    Guard ForkGuard = CurGuard;
    bool OuterOrd = Ord;
    auto OuterArmPath = CurArmPath;

    Guard ThenEntry = ForkGuard, ElseEntry = ForkGuard;
    ThenEntry.push_back({I.cond(), true});
    ElseEntry.push_back({I.cond(), false});

    // Then arm.
    Ord = false;
    CurArmPath = OuterArmPath;
    CurArmPath.push_back({Fork, 0});
    Cur = Fork;
    CurGuard = ThenEntry;
    processList(I.thenBody());
    unsigned ThenExit = Cur;
    Guard ThenExitGuard = CurGuard;

    // Else arm.
    CurArmPath = OuterArmPath;
    CurArmPath.push_back({Fork, 1});
    Cur = Fork;
    CurGuard = ElseEntry;
    processList(I.elseBody());
    unsigned ElseExit = Cur;
    Guard ElseExitGuard = CurGuard;

    // Join.
    Ord = OuterOrd;
    CurArmPath = OuterArmPath;
    unsigned Join = newStage(OuterOrd, OuterArmPath);
    Stage &J = G.Stages[Join];
    J.ForkStage = Fork;
    addEdge(ThenExit, Join, std::move(ThenExitGuard));
    addEdge(ElseExit, Join, std::move(ElseExitGuard));
    // Tag rules are evaluated when a thread passes the fork stage; the
    // pred index matches the insertion order of the two edges above.
    G.Stages[Join].TagRules.push_back({std::move(ThenEntry), 0});
    G.Stages[Join].TagRules.push_back({std::move(ElseEntry), 1});

    Cur = Join;
    CurGuard.clear();
  }

  DiagnosticEngine &Diags;
  const PipeDecl &Pipe;
  StageGraph G;
  unsigned Cur = 0;
  Guard CurGuard;
  bool Ord = true;
  std::vector<std::pair<unsigned, unsigned>> CurArmPath;
};

} // namespace

StageGraph pdl::buildStageGraph(const PipeDecl &Pipe,
                                DiagnosticEngine &Diags) {
  GraphBuilder B(Pipe, Diags);
  return B.build();
}

std::string StageGraph::str() const {
  std::ostringstream OS;
  for (const Stage &S : Stages) {
    OS << S.Name << (S.Ordered ? " ordered" : " unordered");
    if (S.isJoin())
      OS << " join(fork=S" << S.ForkStage << ")";
    OS << " ops=" << S.Ops.size();
    if (!S.Succs.empty()) {
      OS << " ->";
      for (const StageEdge &E : S.Succs) {
        OS << " S" << E.To;
        if (!E.G.empty())
          OS << "[g" << E.G.size() << "]";
      }
    }
    OS << '\n';
  }
  return OS.str();
}
