//===- Compiler.cpp - PDL compilation driver --------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Compiler.h"

#include "passes/TypeChecker.h"
#include "pdl/Parser.h"

using namespace pdl;

CompiledProgram pdl::compile(const std::string &Source,
                             const std::string &Name) {
  CompiledProgram Out;
  Out.SM = std::make_unique<SourceMgr>();
  Out.SM->setBuffer(Source, Name);
  Out.Diags = std::make_unique<DiagnosticEngine>(*Out.SM);
  Out.AST = std::make_unique<ast::Program>(
      Parser::parse(*Out.SM, *Out.Diags));
  if (Out.Diags->hasErrors())
    return Out;

  TypeChecker TC(*Out.AST, *Out.Diags);
  if (!TC.check())
    return Out;

  smt::FormulaContext Ctx;
  smt::Solver Solver(Ctx);
  ConditionAbstractor Abs(Ctx);

  for (const ast::PipeDecl &Pipe : Out.AST->Pipes) {
    CompiledPipe CP;
    CP.Decl = &Pipe;
    CP.Graph = buildStageGraph(Pipe, *Out.Diags);
    CP.Locks = checkLocks(Pipe, CP.Graph, Abs, Solver, *Out.Diags);
    CP.Spec = checkSpeculation(Pipe, CP.Graph, CP.Locks, Abs, Solver,
                               *Out.Diags);
    Out.Pipes.emplace(Pipe.Name, std::move(CP));
  }
  Out.SolverQueries = Solver.queryCount();
  Out.SolverDecisions = Solver.decisionCount();
  return Out;
}
