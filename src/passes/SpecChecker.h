//===- SpecChecker.h - Speculation typestate checking ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enforces the speculation rules of Section 4.2 using the typestate of
/// Figure 5 (Unknown / Speculative / Nonspeculative):
///
///  * threads start Unknown; spec_check establishes Speculative (not
///    definitely misspeculated); spec_barrier establishes Nonspeculative;
///    a stage separator decays Speculative back to Unknown;
///  * Unknown threads may not make speculative calls or reserve locks;
///  * only Nonspeculative threads may verify/update speculation or release
///    write locks;
///  * every speculative call is verified on every program path (checked
///    with the SMT solver);
///  * each thread spawns exactly one successor: one recursive/speculative
///    call or one output on every path (Section 4.3).
///
/// Pipes that never speculate are Nonspeculative throughout.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_PASSES_SPECCHECKER_H
#define PDL_PASSES_SPECCHECKER_H

#include "passes/LockChecker.h"
#include "passes/PathCondition.h"
#include "passes/StageGraph.h"

namespace pdl {

struct SpecAnalysis {
  /// True when the pipe contains speculative calls.
  bool UsesSpeculation = false;
  /// Stages in which the compiler must take a lock checkpoint (after the
  /// thread's final reservation; Section 2.5). Filled per memory.
  std::map<std::string, unsigned> CheckpointStage;
};

SpecAnalysis checkSpeculation(const ast::PipeDecl &Pipe, const StageGraph &G,
                              const LockAnalysis &Locks,
                              ConditionAbstractor &Abs, smt::Solver &Solver,
                              DiagnosticEngine &Diags);

} // namespace pdl

#endif // PDL_PASSES_SPECCHECKER_H
