//===- MemModel.cpp - Memory-hierarchy timing models ------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mem/MemModel.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace pdl;
using namespace pdl::mem;

MemModel::~MemModel() = default;

//===----------------------------------------------------------------------===//
// FixedLatency
//===----------------------------------------------------------------------===//

unsigned FixedLatency::occupyPort(uint64_t Now) {
  if (!SinglePorted)
    return Lat;
  uint64_t Wait = FreeAt > Now ? FreeAt - Now : 0;
  unsigned Total = static_cast<unsigned>(Wait) + Lat;
  FreeAt = Now + Total;
  return Total;
}

Access FixedLatency::read(uint64_t Addr, uint64_t Now) {
  (void)Addr;
  ++S.Reads;
  return {Outcome::Uncached, occupyPort(Now)};
}

Access FixedLatency::write(uint64_t Addr, uint64_t Now) {
  (void)Addr;
  ++S.Writes;
  // Posted store: it still occupies the single port, so a store burst
  // delays the next line fill behind it.
  return {Outcome::Uncached, occupyPort(Now)};
}

//===----------------------------------------------------------------------===//
// SetAssocCache
//===----------------------------------------------------------------------===//

SetAssocCache::SetAssocCache(CacheParams P, MemModel *Next)
    : P(P), Next(Next) {
  assert(P.Sets >= 1 && P.Ways >= 1 && P.LineElems >= 1 &&
         "degenerate cache geometry");
  assert(P.MshrCount >= 1 && "cache needs at least one outstanding miss");
  Lines.resize(size_t(P.Sets) * P.Ways);
}

const SetAssocCache::Line *SetAssocCache::findLine(uint64_t LineAddr) const {
  uint64_t Set = LineAddr % P.Sets;
  uint64_t Tag = LineAddr / P.Sets;
  const Line *Base = &Lines[size_t(Set) * P.Ways];
  for (unsigned W = 0; W != P.Ways; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return &Base[W];
  return nullptr;
}

SetAssocCache::Line *SetAssocCache::findLine(uint64_t LineAddr) {
  return const_cast<Line *>(
      static_cast<const SetAssocCache *>(this)->findLine(LineAddr));
}

const SetAssocCache::Mshr *SetAssocCache::findMshr(uint64_t LineAddr,
                                                   uint64_t Now) const {
  for (const Mshr &M : Mshrs)
    if (M.CompleteAt > Now && M.LineAddr == LineAddr)
      return &M;
  return nullptr;
}

unsigned SetAssocCache::liveMshrs(uint64_t Now) const {
  unsigned N = 0;
  for (const Mshr &M : Mshrs)
    if (M.CompleteAt > Now)
      ++N;
  return N;
}

unsigned SetAssocCache::missesInFlight(uint64_t Now) const {
  return liveMshrs(Now);
}

bool SetAssocCache::probeLine(uint64_t Addr) const {
  return findLine(lineAddr(Addr)) != nullptr;
}

bool SetAssocCache::canAcceptRead(uint64_t Addr, uint64_t Now) const {
  uint64_t LA = lineAddr(Addr);
  if (findLine(LA))
    return true; // hit: no miss resources needed
  if (findMshr(LA, Now))
    return true; // merges into the outstanding miss for this line
  return liveMshrs(Now) < P.MshrCount;
}

bool SetAssocCache::canAcceptWrite(uint64_t Addr, uint64_t Now) const {
  if (!P.WriteBack)
    return true; // write-through stores are posted past the cache
  // Write-allocate: a write miss needs an MSHR slot just like a read miss.
  return canAcceptRead(Addr, Now);
}

unsigned SetAssocCache::fillLine(uint64_t LineAddr, uint64_t Addr,
                                 uint64_t Now) {
  // Reclaim completed miss slots lazily.
  Mshrs.erase(std::remove_if(Mshrs.begin(), Mshrs.end(),
                             [&](const Mshr &M) {
                               return M.CompleteAt <= Now;
                             }),
              Mshrs.end());
  assert(Mshrs.size() < P.MshrCount &&
         "fill with a full miss queue (probe pass must prevent this)");

  uint64_t Set = LineAddr % P.Sets;
  uint64_t Tag = LineAddr / P.Sets;
  Line *Base = &Lines[size_t(Set) * P.Ways];
  Line *Victim = nullptr;
  for (unsigned W = 0; W != P.Ways; ++W) {
    if (!Base[W].Valid) {
      Victim = &Base[W];
      break;
    }
    if (!Victim || Base[W].LastUse < Victim->LastUse)
      Victim = &Base[W];
  }

  unsigned Lat = P.MissPenalty;
  if (Victim->Valid) {
    ++S.Evictions;
    if (Victim->Dirty) {
      ++S.Writebacks;
      Lat += P.WritebackPenalty;
      if (Next)
        Next->write(Addr, Now); // the victim line drains to the next level
    }
  }
  if (Next)
    Lat += Next->read(Addr, Now).Latency;
  if (Lat < 1)
    Lat = 1;

  Victim->Valid = true;
  Victim->Dirty = false;
  Victim->Tag = Tag;
  Victim->LastUse = ++UseTick;
  Mshrs.push_back({LineAddr, Now + Lat});
  return Lat;
}

Access SetAssocCache::read(uint64_t Addr, uint64_t Now) {
  ++S.Reads;
  uint64_t LA = lineAddr(Addr);
  if (Line *L = findLine(LA)) {
    // A hit on a line whose fill is still in flight waits for the fill.
    if (const Mshr *M = findMshr(LA, Now)) {
      ++S.ReadMisses;
      uint64_t Remaining = M->CompleteAt - Now;
      L->LastUse = ++UseTick;
      return {Outcome::Miss,
              static_cast<unsigned>(Remaining < 1 ? 1 : Remaining)};
    }
    ++S.ReadHits;
    L->LastUse = ++UseTick;
    return {Outcome::Hit, P.HitLatency < 1 ? 1 : P.HitLatency};
  }
  ++S.ReadMisses;
  return {Outcome::Miss, fillLine(LA, Addr, Now)};
}

Access SetAssocCache::write(uint64_t Addr, uint64_t Now) {
  ++S.Writes;
  uint64_t LA = lineAddr(Addr);
  Line *L = findLine(LA);
  if (!P.WriteBack) {
    // Write-through, no-write-allocate: update the line if resident and
    // forward the store to the next level either way.
    if (L) {
      ++S.WriteHits;
      L->LastUse = ++UseTick;
    } else {
      ++S.WriteMisses;
    }
    if (Next)
      Next->write(Addr, Now);
    return {L ? Outcome::Hit : Outcome::Miss,
            P.HitLatency < 1 ? 1 : P.HitLatency};
  }
  // Write-back, write-allocate.
  if (L) {
    ++S.WriteHits;
    L->LastUse = ++UseTick;
    L->Dirty = true;
    return {Outcome::Hit, P.HitLatency < 1 ? 1 : P.HitLatency};
  }
  ++S.WriteMisses;
  unsigned Lat = fillLine(LA, Addr, Now);
  findLine(LA)->Dirty = true;
  return {Outcome::Miss, Lat};
}

//===----------------------------------------------------------------------===//
// Hierarchy
//===----------------------------------------------------------------------===//

Hierarchy::Hierarchy(CacheParams L1I, CacheParams L1D,
                     unsigned BackingLatency)
    : B(std::make_unique<FixedLatency>(BackingLatency,
                                       /*SinglePorted=*/true)),
      I(std::make_unique<SetAssocCache>(L1I, B.get())),
      D(std::make_unique<SetAssocCache>(L1D, B.get())) {}

//===----------------------------------------------------------------------===//
// Configuration parsing
//===----------------------------------------------------------------------===//

namespace {

/// Splits "k=v" / bare-flag fields on commas.
std::vector<std::string> splitFields(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

bool parseUnsigned(const std::string &V, unsigned &Out) {
  if (V.empty())
    return false;
  char *End = nullptr;
  unsigned long N = std::strtoul(V.c_str(), &End, 0);
  if (*End != '\0' || N > 0xffffffffUL)
    return false;
  Out = static_cast<unsigned>(N);
  return true;
}

} // namespace

std::optional<MemConfig> mem::parseMemConfig(const std::string &Spec,
                                             std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<MemConfig> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };

  size_t Colon = Spec.find(':');
  std::string Head = Spec.substr(0, Colon);
  std::string Rest = Colon == std::string::npos ? "" : Spec.substr(Colon + 1);

  MemConfig C;
  if (Head == "fixed") {
    C.K = MemConfig::Kind::Fixed;
    for (const std::string &F : splitFields(Rest)) {
      size_t Eq = F.find('=');
      std::string K = F.substr(0, Eq);
      std::string V = Eq == std::string::npos ? "" : F.substr(Eq + 1);
      unsigned N = 0;
      if (K == "latency" && parseUnsigned(V, N) && N >= 1)
        C.FixedLat = N;
      else if (Eq == std::string::npos && parseUnsigned(K, N) && N >= 1)
        C.FixedLat = N; // shorthand: fixed:3
      else if (K == "port" && parseUnsigned(V, N))
        C.SinglePorted = N == 1;
      else
        return Fail("bad fixed-latency field '" + F + "'");
    }
    return C;
  }
  if (Head != "cache")
    return Fail("unknown memory model '" + Head + "' (fixed|cache)");

  C.K = MemConfig::Kind::Cache;
  for (const std::string &F : splitFields(Rest)) {
    size_t Eq = F.find('=');
    std::string K = F.substr(0, Eq);
    std::string V = Eq == std::string::npos ? "" : F.substr(Eq + 1);
    unsigned N = 0;
    if (K == "wb" && Eq == std::string::npos)
      C.Cache.WriteBack = true;
    else if (K == "wt" && Eq == std::string::npos)
      C.Cache.WriteBack = false;
    else if (K == "share")
      C.ShareTag = V;
    else if (!parseUnsigned(V, N))
      return Fail("bad cache field '" + F + "'");
    else if (K == "sets" && N >= 1)
      C.Cache.Sets = N;
    else if (K == "ways" && N >= 1)
      C.Cache.Ways = N;
    else if (K == "line" && N >= 1)
      C.Cache.LineElems = N;
    else if (K == "hit" && N >= 1)
      C.Cache.HitLatency = N;
    else if (K == "miss")
      C.Cache.MissPenalty = N;
    else if (K == "mshr" && N >= 1)
      C.Cache.MshrCount = N;
    else if (K == "wbpen")
      C.Cache.WritebackPenalty = N;
    else if (K == "sharelat" && N >= 1)
      C.ShareLatency = N;
    else
      return Fail("bad cache field '" + F + "'");
  }
  return C;
}

std::string mem::memConfigSummary(const MemConfig &C) {
  if (C.K == MemConfig::Kind::Fixed)
    return "fixed latency=" + std::to_string(C.FixedLat) +
           (C.SinglePorted ? " single-ported" : "");
  const CacheParams &P = C.Cache;
  std::string S = "cache " + std::to_string(P.Sets) + "x" +
                  std::to_string(P.Ways) + "x" +
                  std::to_string(P.LineElems) + "w (" +
                  std::to_string(P.sizeElems()) + " elems) " +
                  (P.WriteBack ? "wb" : "wt") +
                  " hit=" + std::to_string(P.HitLatency) +
                  " miss=+" + std::to_string(P.MissPenalty) +
                  " mshr=" + std::to_string(P.MshrCount);
  if (!C.ShareTag.empty())
    S += " share=" + C.ShareTag + "@" + std::to_string(C.ShareLatency);
  return S;
}
