//===- MemModel.h - Memory-hierarchy timing models -------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-hierarchy subsystem: timing models that sit between the
/// pipeline executor and the `hw::Memory` backing storage. The paper's
/// evaluation "assumes cache hits for every access" (Section 6); these
/// models lift that assumption without touching value semantics — a
/// `MemModel` never stores data, it only answers *when* a request completes
/// and whether the hierarchy can accept another one:
///
///  * `FixedLatency`    — every access completes after a constant number of
///                        cycles (latency 1 reproduces the paper's
///                        always-hit behaviour bit-for-bit); optionally
///                        single-ported so concurrent requests serialize.
///  * `SetAssocCache`   — parameterized sets/ways/line size with LRU
///                        replacement, write-through/no-allocate or
///                        write-back/write-allocate policies, configurable
///                        hit and miss latencies, and a bounded
///                        outstanding-miss queue (MSHRs) that exerts
///                        backpressure when full. Composes over an optional
///                        next-level model.
///  * `Hierarchy`       — the two-level composition used by the CPI-under-
///                        miss evaluation: split L1I/L1D caches over one
///                        shared single-ported backing memory.
///
/// The executor consults the model on every synchronous read (scheduling
/// the response `Latency` cycles out and emitting `MemHit`/`MemMiss` obs
/// events for cache models) and notifies it of every store; a rejected
/// request (`canAcceptRead() == false`, miss queue full) becomes a
/// `Backpressure` stall in the per-stage attribution matrix plus a
/// `MemBackpressure` event naming the memory.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_MEM_MEMMODEL_H
#define PDL_MEM_MEMMODEL_H

#include "support/BinIO.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pdl {
namespace mem {

/// How an access resolved. `Uncached` models have no hit/miss notion
/// (plain storage timing); the executor emits no hit/miss events for them,
/// which is what keeps the default `FixedLatency(1)` traces bit-identical
/// to the pre-subsystem ones.
enum class Outcome : uint8_t { Uncached, Hit, Miss };

/// The timing answer for one accepted access.
struct Access {
  Outcome Out = Outcome::Uncached;
  /// Cycles until the response value is available (>= 1): latency 1 means
  /// "next cycle", the classic synchronous-SRAM behaviour.
  unsigned Latency = 1;
};

/// Cheap always-on counters, one set per model instance.
struct ModelStats {
  uint64_t Reads = 0, Writes = 0;
  uint64_t ReadHits = 0, ReadMisses = 0;
  uint64_t WriteHits = 0, WriteMisses = 0;
  uint64_t Evictions = 0, Writebacks = 0;

  uint64_t hits() const { return ReadHits + WriteHits; }
  uint64_t misses() const { return ReadMisses + WriteMisses; }
};

/// A request-in/response-after-N-cycles timing model over one memory.
/// Addresses are element (word) addresses, exactly what the elaborated
/// `hw::Memory` uses. Models are deterministic: the same access sequence
/// at the same cycles produces the same latencies.
class MemModel {
public:
  virtual ~MemModel();

  virtual const char *kindName() const = 0;

  /// Backpressure probes: can the model take one more read/write at cycle
  /// \p Now? Pure (called from the executor's probe pass; must not change
  /// model state). A model with no resource limits always returns true.
  virtual bool canAcceptRead(uint64_t Addr, uint64_t Now) const {
    (void)Addr;
    (void)Now;
    return true;
  }
  virtual bool canAcceptWrite(uint64_t Addr, uint64_t Now) const {
    (void)Addr;
    (void)Now;
    return true;
  }

  /// A synchronous read issued at cycle \p Now. Updates model state (tags,
  /// LRU, miss queue) and returns when the value arrives.
  virtual Access read(uint64_t Addr, uint64_t Now) = 0;

  /// A store issued at cycle \p Now. Stores are posted (the pipeline does
  /// not wait for them); the returned Access carries the hit/miss outcome
  /// for observability.
  virtual Access write(uint64_t Addr, uint64_t Now) = 0;

  const ModelStats &stats() const { return S; }

  /// Snapshot support: serializes the model's timing state (port
  /// occupancy, tags, LRU, MSHRs) plus the counters. Composed models
  /// (`Next` pointers) are NOT followed — every distinct model instance is
  /// serialized exactly once by its owner.
  virtual void saveState(support::BinWriter &W) const { saveStats(W); }
  virtual bool loadState(support::BinReader &R) { return loadStats(R); }

protected:
  void saveStats(support::BinWriter &W) const {
    W.u64(S.Reads);
    W.u64(S.Writes);
    W.u64(S.ReadHits);
    W.u64(S.ReadMisses);
    W.u64(S.WriteHits);
    W.u64(S.WriteMisses);
    W.u64(S.Evictions);
    W.u64(S.Writebacks);
  }
  bool loadStats(support::BinReader &R) {
    S.Reads = R.u64();
    S.Writes = R.u64();
    S.ReadHits = R.u64();
    S.ReadMisses = R.u64();
    S.WriteHits = R.u64();
    S.WriteMisses = R.u64();
    S.Evictions = R.u64();
    S.Writebacks = R.u64();
    return R.ok();
  }

  ModelStats S;
};

/// Constant-latency storage: today's executor behaviour, parameterized.
/// With \p SinglePorted set, overlapping requests serialize on the one
/// port — the second requester waits until the first response completes
/// (used as the shared backing memory of a `Hierarchy`).
class FixedLatency : public MemModel {
public:
  explicit FixedLatency(unsigned Latency = 1, bool SinglePorted = false)
      : Lat(Latency < 1 ? 1 : Latency), SinglePorted(SinglePorted) {}

  const char *kindName() const override { return "fixed"; }
  unsigned latency() const { return Lat; }

  Access read(uint64_t Addr, uint64_t Now) override;
  Access write(uint64_t Addr, uint64_t Now) override;

  void saveState(support::BinWriter &W) const override {
    saveStats(W);
    W.u64(FreeAt);
  }
  bool loadState(support::BinReader &R) override {
    if (!loadStats(R))
      return false;
    FreeAt = R.u64();
    return R.ok();
  }

private:
  unsigned occupyPort(uint64_t Now);

  unsigned Lat;
  bool SinglePorted;
  uint64_t FreeAt = 0; // single-ported: cycle the port frees up
};

/// Geometry and timing knobs for `SetAssocCache`.
struct CacheParams {
  unsigned Sets = 64;
  unsigned Ways = 4;
  unsigned LineElems = 4; ///< line size in memory elements (words)
  unsigned HitLatency = 1;
  /// Cycles a miss pays on top of the next level's latency (the full miss
  /// latency when the cache has no next level).
  unsigned MissPenalty = 10;
  /// Extra cycles when a miss must first write back a dirty victim.
  unsigned WritebackPenalty = 4;
  /// Bounded outstanding-miss queue: misses in flight at once. A miss with
  /// no free slot is refused (executor backpressure).
  unsigned MshrCount = 4;
  /// false: write-through + no-write-allocate; true: write-back +
  /// write-allocate.
  bool WriteBack = false;

  uint64_t sizeElems() const {
    return uint64_t(Sets) * Ways * LineElems;
  }
};

/// An N-way set-associative cache timing model with LRU replacement and a
/// bounded miss queue. Optionally composes over a next-level model (the
/// next level sees one read per line fill and, for write-through, every
/// store).
class SetAssocCache : public MemModel {
public:
  /// \p Next is caller-owned and must outlive this cache; null means the
  /// miss penalty alone covers the fill.
  explicit SetAssocCache(CacheParams P, MemModel *Next = nullptr);

  const char *kindName() const override { return "cache"; }
  const CacheParams &params() const { return P; }

  bool canAcceptRead(uint64_t Addr, uint64_t Now) const override;
  bool canAcceptWrite(uint64_t Addr, uint64_t Now) const override;
  Access read(uint64_t Addr, uint64_t Now) override;
  Access write(uint64_t Addr, uint64_t Now) override;

  /// Outstanding misses at cycle \p Now (for tests/debug).
  unsigned missesInFlight(uint64_t Now) const;

  /// True when \p Addr's line is resident (no LRU update; tests/debug).
  bool probeLine(uint64_t Addr) const;

  void saveState(support::BinWriter &W) const override {
    saveStats(W);
    W.u32(static_cast<uint32_t>(Lines.size()));
    for (const Line &L : Lines) {
      W.b(L.Valid);
      W.b(L.Dirty);
      W.u64(L.Tag);
      W.u64(L.LastUse);
    }
    W.u32(static_cast<uint32_t>(Mshrs.size()));
    for (const Mshr &M : Mshrs) {
      W.u64(M.LineAddr);
      W.u64(M.CompleteAt);
    }
    W.u64(UseTick);
  }
  bool loadState(support::BinReader &R) override {
    if (!loadStats(R))
      return false;
    if (R.u32() != Lines.size())
      return false; // geometry mismatch
    for (Line &L : Lines) {
      L.Valid = R.b();
      L.Dirty = R.b();
      L.Tag = R.u64();
      L.LastUse = R.u64();
    }
    // The miss queue is a dynamic vector (completed slots are reclaimed
    // lazily): restore its saved length, bounded by the MSHR capacity.
    uint32_t NMshrs = R.u32();
    if (!R.ok() || NMshrs > P.MshrCount)
      return false;
    Mshrs.resize(NMshrs);
    for (Mshr &M : Mshrs) {
      M.LineAddr = R.u64();
      M.CompleteAt = R.u64();
    }
    UseTick = R.u64();
    return R.ok();
  }

private:
  struct Line {
    bool Valid = false;
    bool Dirty = false;
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
  };
  struct Mshr {
    uint64_t LineAddr = 0;
    uint64_t CompleteAt = 0; ///< first cycle the slot is free again
  };

  uint64_t lineAddr(uint64_t Addr) const { return Addr / P.LineElems; }
  const Line *findLine(uint64_t LineAddr) const;
  Line *findLine(uint64_t LineAddr);
  /// The line fill shared by read misses and write-allocate write misses:
  /// picks a victim, accounts eviction/writeback, installs the tag, books
  /// the MSHR slot, and returns the total latency.
  unsigned fillLine(uint64_t LineAddr, uint64_t Addr, uint64_t Now);
  const Mshr *findMshr(uint64_t LineAddr, uint64_t Now) const;
  unsigned liveMshrs(uint64_t Now) const;

  CacheParams P;
  MemModel *Next;
  std::vector<Line> Lines; // Sets * Ways, row-major by set
  std::vector<Mshr> Mshrs;
  uint64_t UseTick = 0;
};

/// The two-level composition of the CPI-under-miss evaluation: split
/// instruction/data L1 caches over one shared, single-ported backing
/// memory. Owns all three models; the L1s are handed to the executor (one
/// per memory handle) while the backing serializes their misses.
class Hierarchy {
public:
  Hierarchy(CacheParams L1I, CacheParams L1D, unsigned BackingLatency);

  SetAssocCache &l1i() { return *I; }
  SetAssocCache &l1d() { return *D; }
  FixedLatency &backing() { return *B; }

private:
  std::unique_ptr<FixedLatency> B;
  std::unique_ptr<SetAssocCache> I, D;
};

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

/// Declarative description of the model to build for one memory handle —
/// the `ElabConfig`/`pdlc --mem-model=` surface. Caches carrying the same
/// non-empty `ShareTag` are elaborated over one shared single-ported
/// `FixedLatency(ShareLatency)` backing (the `Hierarchy` composition).
struct MemConfig {
  enum class Kind { Fixed, Cache } K = Kind::Fixed;
  unsigned FixedLat = 1;
  bool SinglePorted = false;
  CacheParams Cache;
  std::string ShareTag;
  unsigned ShareLatency = 20;
};

/// Parses a `--mem-model` spec:
///
///   fixed[:latency=N][,port=1]
///   cache:sets=N,ways=N,line=N[,hit=N][,miss=N][,mshr=N][,wbpen=N]
///        [,wb|,wt][,share=TAG][,sharelat=N]
///
/// Returns nullopt and sets \p Err on malformed input.
std::optional<MemConfig> parseMemConfig(const std::string &Spec,
                                        std::string *Err = nullptr);

/// One-line human summary ("cache 64x4x4w wb mshr=4 ...") for logs/benches.
std::string memConfigSummary(const MemConfig &C);

} // namespace mem
} // namespace pdl

#endif // PDL_MEM_MEMMODEL_H
