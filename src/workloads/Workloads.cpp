//===- Workloads.cpp - Table 3 benchmark kernels ----------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "cores/CoreSources.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace pdl;
using namespace pdl::workloads;

namespace {

void replaceAll(std::string &S, const std::string &From,
                const std::string &To) {
  for (size_t Pos = 0; (Pos = S.find(From, Pos)) != std::string::npos;
       Pos += To.size())
    S.replace(Pos, From.size(), To);
}

/// Shared epilogue: store to the halt address, then spin.
std::string haltEpilogue() {
  return "halt: li t6, " + std::to_string(cores::HaltByteAddr) +
         "\n  sw zero, 0(t6)\nspin: j spin\n";
}

/// Software shift-add multiply used by the RV32I variants:
/// a0 = a0 * a1, clobbers t4/t5.
const char *MulsoftRoutine = R"(
mulsoft:
  li   t5, 0
mulchk:
  beq  a1, zero, muldone
  andi t4, a1, 1
  beq  t4, zero, mulskip
  add  t5, t5, a0
mulskip:
  slli a0, a0, 1
  srli a1, a1, 1
  j    mulchk
muldone:
  mv   a0, t5
  ret
)";

Workload make(const char *Name, const std::string &Body) {
  Workload W;
  W.Name = Name;
  W.UsesMulDiv = Body.find("MULCALL") != std::string::npos;
  std::string I = Body, M = Body;
  replaceAll(I, "MULCALL", "jal  ra, mulsoft");
  replaceAll(M, "MULCALL", "mul  a0, a0, a1");
  W.AsmI = I + haltEpilogue() + MulsoftRoutine;
  W.AsmM = M + haltEpilogue() + MulsoftRoutine;
  return W;
}

std::string coremarkBody() {
  return R"(
# --- coremark: linked-list walk + multiply phase + CRC bit loop ---
  li   s0, 0x1000           # 32 list nodes: [next, val]
  li   t0, 0
  li   t1, 32
cmbuild:
  slli t2, t0, 3
  add  t2, t2, s0
  addi t3, t0, 1
  slli t3, t3, 3
  add  t3, t3, s0
  sw   t3, 0(t2)
  xori t4, t0, 21
  addi t4, t4, 3
  sw   t4, 4(t2)
  addi t0, t0, 1
  bne  t0, t1, cmbuild
  sw   zero, 0(t2)          # terminate the list
  li   s1, 0                # checksum
  li   s2, 10               # walk repetitions
cmwalkrep:
  mv   t0, s0
cmwalk:
  lw   t1, 4(t0)            # value (load)
  add  s1, s1, t1
  lw   t0, 0(t0)            # next pointer (load-use into the branch)
  bne  t0, zero, cmwalk
  addi s2, s2, -1
  bne  s2, zero, cmwalkrep
  li   s3, 0                # multiply phase over 16 node values
  li   s4, 16
cmmul:
  slli t0, s3, 3
  add  t0, t0, s0
  lw   a0, 4(t0)
  andi a1, s3, 7
  addi a1, a1, 3
  MULCALL
  add  s1, s1, a0
  addi s3, s3, 1
  bne  s3, s4, cmmul
  li   s5, 64               # CRC bit loop
  li   s6, 0xEDB88320
cmcrc:
  andi t1, s1, 1
  srli s1, s1, 1
  beq  t1, zero, cmnox
  xor  s1, s1, s6
cmnox:
  addi s5, s5, -1
  bne  s5, zero, cmcrc
  li   t0, 0x800
  sw   s1, 0(t0)
)";
}

std::string aesBody() {
  return R"(
# --- aes: sbox substitution + rotate/xor mixing over a 16-word state ---
  li   s0, 0x4000           # sbox (256 words)
  li   s1, 0x5000           # state (16 words)
  li   s2, 0x5100           # round key (16 words)
  li   s3, 0x12345678       # xorshift seed
  li   t0, 0
  li   t1, 256
aessb:
  slli t2, s3, 13
  xor  s3, s3, t2
  srli t2, s3, 17
  xor  s3, s3, t2
  slli t2, s3, 5
  xor  s3, s3, t2
  slli t2, t0, 2
  add  t2, t2, s0
  sw   s3, 0(t2)
  addi t0, t0, 1
  bne  t0, t1, aessb
  li   t0, 0
  li   t1, 16
aesin:
  slli t2, t0, 2
  add  t3, t2, s1
  xori t4, t0, 9
  sw   t4, 0(t3)
  add  t3, t2, s2
  addi t4, t0, 77
  sw   t4, 0(t3)
  addi t0, t0, 1
  bne  t0, t1, aesin
  li   s4, 8                # rounds
aesrnd:
  li   t0, 0
  li   t1, 16
aesw:
  slli t2, t0, 2
  add  t3, t2, s1
  lw   t4, 0(t3)            # state word
  add  t5, t2, s2
  lw   t5, 0(t5)            # key word
  xor  t4, t4, t5
  andi t4, t4, 255
  slli t4, t4, 2
  add  t4, t4, s0
  lw   t4, 0(t4)            # sbox lookup (load-use chain)
  addi t5, t0, 15           # left neighbor index (mod 16)
  andi t5, t5, 15
  slli t5, t5, 2
  add  t5, t5, s1
  lw   t5, 0(t5)
  slli a2, t5, 7            # rotate-left 7
  srli a3, t5, 25
  or   a2, a2, a3
  xor  t4, t4, a2
  sw   t4, 0(t3)
  addi t0, t0, 1
  bne  t0, t1, aesw
  addi s4, s4, -1
  bne  s4, zero, aesrnd
  lw   t0, 0(s1)
  li   t1, 0x800
  sw   t0, 0(t1)
)";
}

/// Shared matrix init for the gemm kernels: A[i]=i+1, B[i]=(i^5)&15.
const char *GemmInit = R"(
  li   s0, 0x1000           # A (6x6)
  li   s1, 0x2000           # B
  li   s2, 0x3000           # C
  li   t0, 0
  li   t1, 36
gminit:
  slli t2, t0, 2
  add  t3, t2, s0
  addi t4, t0, 1
  sw   t4, 0(t3)
  add  t3, t2, s1
  xori t4, t0, 5
  andi t4, t4, 15
  sw   t4, 0(t3)
  addi t0, t0, 1
  bne  t0, t1, gminit
)";

std::string gemmBody() {
  return std::string(GemmInit) + R"(
# --- gemm: naive triple loop, C[i][j] += A[i][k] * B[k][j] ---
  li   s3, 0                # i
ggi:
  li   s4, 0                # j
ggj:
  li   s5, 0                # k
  li   s6, 0                # acc
ggk:
  slli t0, s3, 1            # i*6 = i*2 + i*4
  slli t1, s3, 2
  add  t0, t0, t1
  add  t0, t0, s5
  slli t0, t0, 2
  add  t0, t0, s0
  lw   a0, 0(t0)            # A[i][k]
  slli t1, s5, 1
  slli t2, s5, 2
  add  t1, t1, t2
  add  t1, t1, s4
  slli t1, t1, 2
  add  t1, t1, s1
  lw   a1, 0(t1)            # B[k][j]
  MULCALL
  add  s6, s6, a0
  addi s5, s5, 1
  li   t2, 6
  bne  s5, t2, ggk
  slli t0, s3, 1
  slli t1, s3, 2
  add  t0, t0, t1
  add  t0, t0, s4
  slli t0, t0, 2
  add  t0, t0, s2
  sw   s6, 0(t0)            # C[i][j]
  addi s4, s4, 1
  li   t2, 6
  bne  s4, t2, ggj
  addi s3, s3, 1
  li   t2, 6
  bne  s3, t2, ggi
)";
}

std::string gemmBlockBody() {
  return std::string(GemmInit) + R"(
# --- gemm-block: 2x2 register blocking (4 MACs per k-iteration) ---
  li   s3, 0                # i (step 2)
gbi:
  li   s4, 0                # j (step 2)
gbj:
  li   s5, 0                # k
  li   s6, 0                # acc00
  li   s7, 0                # acc01
  li   s8, 0                # acc10
  li   s9, 0                # acc11
gbk:
  slli t0, s3, 1            # row i base
  slli t1, s3, 2
  add  t0, t0, t1
  add  t0, t0, s5
  slli t0, t0, 2
  add  t0, t0, s0
  lw   s10, 0(t0)           # A[i][k]
  lw   s11, 24(t0)          # A[i+1][k] (next row, +6 words)
  slli t1, s5, 1            # row k base in B
  slli t2, s5, 2
  add  t1, t1, t2
  add  t1, t1, s4
  slli t1, t1, 2
  add  t1, t1, s1
  lw   a2, 0(t1)            # B[k][j]
  lw   a3, 4(t1)            # B[k][j+1]
  mv   a0, s10
  mv   a1, a2
  MULCALL
  add  s6, s6, a0
  mv   a0, s10
  mv   a1, a3
  MULCALL
  add  s7, s7, a0
  mv   a0, s11
  mv   a1, a2
  MULCALL
  add  s8, s8, a0
  mv   a0, s11
  mv   a1, a3
  MULCALL
  add  s9, s9, a0
  addi s5, s5, 1
  li   t2, 6
  bne  s5, t2, gbk
  slli t0, s3, 1
  slli t1, s3, 2
  add  t0, t0, t1
  add  t0, t0, s4
  slli t0, t0, 2
  add  t0, t0, s2
  sw   s6, 0(t0)
  sw   s7, 4(t0)
  sw   s8, 24(t0)
  sw   s9, 28(t0)
  addi s4, s4, 2
  li   t2, 6
  bne  s4, t2, gbj
  addi s3, s3, 2
  li   t2, 6
  bne  s3, t2, gbi
)";
}

std::string ellpackBody() {
  return R"(
# --- ellpack: sparse matrix-vector product, 16 rows x 4 nonzeros ---
  li   s0, 0x1000           # cols (64)
  li   s1, 0x1400           # vals (64)
  li   s2, 0x1800           # x (16)
  li   s3, 0x1c00           # y (16)
  li   t0, 0
  li   t1, 64
elinit:
  slli t2, t0, 2
  srli t3, t0, 2            # row
  andi t4, t0, 3            # entry
  slli a2, t3, 3            # row*8... col = (row*7 + e*3) & 15
  sub  a2, a2, t3           # row*7
  slli a3, t4, 1
  add  a3, a3, t4           # e*3
  add  a2, a2, a3
  andi a2, a2, 15
  add  a3, t2, s0
  sw   a2, 0(a3)
  add  a2, t3, t4
  addi a2, a2, 1
  andi a2, a2, 7
  add  a3, t2, s1
  sw   a2, 0(a3)
  addi t0, t0, 1
  bne  t0, t1, elinit
  li   t0, 0
  li   t1, 16
elx:
  slli t2, t0, 2
  add  t2, t2, s2
  addi t3, t0, 1
  sw   t3, 0(t2)
  addi t0, t0, 1
  bne  t0, t1, elx
  li   s4, 0                # row
elrow:
  li   s5, 0                # entry
  li   s6, 0                # acc
elent:
  slli t0, s4, 2
  add  t0, t0, s5
  slli t0, t0, 2
  add  t1, t0, s0
  lw   t2, 0(t1)            # column index (feeds address: load-use)
  add  t1, t0, s1
  lw   a0, 0(t1)            # value
  slli t2, t2, 2
  add  t2, t2, s2
  lw   a1, 0(t2)            # x[col]
  MULCALL
  add  s6, s6, a0
  addi s5, s5, 1
  li   t3, 4
  bne  s5, t3, elent
  slli t0, s4, 2
  add  t0, t0, s3
  sw   s6, 0(t0)
  addi s4, s4, 1
  li   t3, 16
  bne  s4, t3, elrow
)";
}

std::string kmpBody() {
  return R"(
# --- kmp: failure-function string matching over a 256-symbol text ---
  li   s0, 0x1000           # text (256 words, binary symbols)
  li   s1, 0x2000           # pattern [0,1,0,1]
  li   s2, 0x2100           # failure table [0,0,1,2]
  li   s3, 0x13572468       # xorshift seed
  li   t0, 0
  li   t1, 256
kmpinit:
  slli t2, s3, 13
  xor  s3, s3, t2
  srli t2, s3, 17
  xor  s3, s3, t2
  slli t2, s3, 5
  xor  s3, s3, t2
  andi t3, s3, 1
  slli t2, t0, 2
  add  t2, t2, s0
  sw   t3, 0(t2)
  addi t0, t0, 1
  bne  t0, t1, kmpinit
  sw   zero, 0(s1)          # pattern = 0,1,0,1
  li   t0, 1
  sw   t0, 4(s1)
  sw   zero, 8(s1)
  li   t0, 1
  sw   t0, 12(s1)
  sw   zero, 0(s2)          # fail = 0,0,1,2
  sw   zero, 4(s2)
  li   t0, 1
  sw   t0, 8(s2)
  li   t0, 2
  sw   t0, 12(s2)
  li   s4, 0                # i
  li   s5, 0                # j (match length)
  li   s6, 0                # match count
kmpscan:
  slli t0, s4, 2
  add  t0, t0, s0
  lw   t1, 0(t0)            # t = text[i]
kmpwhile:
  beq  s5, zero, kmptest
  slli t2, s5, 2
  add  t2, t2, s1
  lw   t3, 0(t2)            # pat[j]
  beq  t1, t3, kmptest
  addi t2, s5, -1           # j = fail[j-1]
  slli t2, t2, 2
  add  t2, t2, s2
  lw   s5, 0(t2)
  j    kmpwhile
kmptest:
  slli t2, s5, 2
  add  t2, t2, s1
  lw   t3, 0(t2)
  bne  t1, t3, kmpnext
  addi s5, s5, 1
  li   t4, 4
  bne  s5, t4, kmpnext
  addi s6, s6, 1            # full match
  lw   s5, 12(s2)           # j = fail[3]
kmpnext:
  addi s4, s4, 1
  li   t4, 256
  bne  s4, t4, kmpscan
  li   t0, 0x800
  sw   s6, 0(t0)
)";
}

std::string nwBody() {
  return R"(
# --- nw: Needleman-Wunsch alignment DP over two length-10 sequences ---
  li   s0, 0x1000           # seq a (10)
  li   s1, 0x1100           # seq b (10)
  li   s2, 0x2000           # score matrix (11x11 words)
  li   t0, 0
  li   t1, 10
nwinit:
  slli t2, t0, 2
  andi t3, t0, 3
  add  t4, t2, s0
  sw   t3, 0(t4)
  xori t3, t0, 2
  andi t3, t3, 3
  add  t4, t2, s1
  sw   t3, 0(t4)
  addi t0, t0, 1
  bne  t0, t1, nwinit
  li   t0, 0                # border: M[0][j] = -j, M[i][0] = -i
  li   t1, 11
nwbord:
  sub  t2, zero, t0
  slli t3, t0, 2
  add  t3, t3, s2
  sw   t2, 0(t3)            # M[0][t0]
  slli t3, t0, 5            # t0*44 = t0*32 + t0*8 + t0*4
  slli t4, t0, 3
  add  t3, t3, t4
  slli t4, t0, 2
  add  t3, t3, t4
  add  t3, t3, s2
  sw   t2, 0(t3)            # M[t0][0]
  addi t0, t0, 1
  bne  t0, t1, nwbord
  li   s3, 1                # i
nwi:
  li   s4, 1                # j
nwj:
  slli t0, s3, 5            # row i base = i*44
  slli t1, s3, 3
  add  t0, t0, t1
  slli t1, s3, 2
  add  t0, t0, t1
  add  t0, t0, s2           # &M[i][0]
  slli t1, s4, 2
  add  t1, t1, t0           # &M[i][j]
  lw   t2, -48(t1)          # M[i-1][j-1] (44+4 back)
  lw   t3, -44(t1)          # M[i-1][j]
  lw   t4, -4(t1)           # M[i][j-1]
  addi t5, s3, -1
  slli t5, t5, 2
  add  t5, t5, s0
  lw   a2, 0(t5)            # a[i-1]
  addi t5, s4, -1
  slli t5, t5, 2
  add  t5, t5, s1
  lw   a3, 0(t5)            # b[j-1]
  addi a4, t2, -1           # mismatch score
  bne  a2, a3, nwmis
  addi a4, t2, 1            # match score
nwmis:
  addi t3, t3, -1           # up gap
  addi t4, t4, -1           # left gap
  blt  t3, a4, nwskip1      # max3 with branches
  mv   a4, t3
nwskip1:
  blt  t4, a4, nwskip2
  mv   a4, t4
nwskip2:
  sw   a4, 0(t1)
  addi s4, s4, 1
  li   t5, 11
  bne  s4, t5, nwj
  addi s3, s3, 1
  li   t5, 11
  bne  s3, t5, nwi
  li   t0, 0x800
  sw   a4, 0(t0)
)";
}

std::string queueBody() {
  return R"(
# --- queue: circular buffer enqueue/dequeue with in-memory pointers ---
  li   s0, 0x1000           # ring buffer (16 words)
  li   s1, 0x1100           # [head, tail, count, sum]
  sw   zero, 0(s1)
  sw   zero, 4(s1)
  sw   zero, 8(s1)
  sw   zero, 12(s1)
  li   s2, 0x77654321       # xorshift seed
  li   s3, 0                # op index
  li   s4, 256
qloop:
  andi t0, s3, 3
  li   t1, 3
  beq  t0, t1, qdeq         # every 4th op dequeues
  lw   t2, 8(s1)            # count
  li   t3, 16
  beq  t2, t3, qdeq         # full -> dequeue instead
  slli t0, s2, 13           # xorshift value
  xor  s2, s2, t0
  srli t0, s2, 17
  xor  s2, s2, t0
  slli t0, s2, 5
  xor  s2, s2, t0
  lw   t3, 4(s1)            # tail
  slli t4, t3, 2
  add  t4, t4, s0
  sw   s2, 0(t4)            # buffer[tail] = v
  addi t3, t3, 1
  andi t3, t3, 15
  sw   t3, 4(s1)            # tail'
  addi t2, t2, 1
  sw   t2, 8(s1)            # count'
  j    qnext
qdeq:
  lw   t2, 8(s1)
  beq  t2, zero, qnext      # empty -> skip
  lw   t3, 0(s1)            # head
  slli t4, t3, 2
  add  t4, t4, s0
  lw   t5, 0(t4)            # value (load-use)
  lw   a2, 12(s1)
  add  a2, a2, t5
  sw   a2, 12(s1)           # sum +=
  addi t3, t3, 1
  andi t3, t3, 15
  sw   t3, 0(s1)
  addi t2, t2, -1
  sw   t2, 8(s1)
qnext:
  addi s3, s3, 1
  bne  s3, s4, qloop
)";
}

std::string radixBody() {
  return R"(
# --- radix: two-pass 4-bit counting sort of 32 elements ---
  li   s0, 0x1000           # src array
  li   s1, 0x1200           # dst array
  li   s2, 0x1400           # count[16]
  li   s3, 0x2468ACE1       # xorshift seed
  li   t0, 0
  li   t1, 32
rdinit:
  slli t2, s3, 13
  xor  s3, s3, t2
  srli t2, s3, 17
  xor  s3, s3, t2
  slli t2, s3, 5
  xor  s3, s3, t2
  andi t3, s3, 255
  slli t2, t0, 2
  add  t2, t2, s0
  sw   t3, 0(t2)
  addi t0, t0, 1
  bne  t0, t1, rdinit
  li   s4, 0                # shift (0 then 4)
rdpass:
  li   t0, 0                # zero the counts
  li   t1, 16
rdzero:
  slli t2, t0, 2
  add  t2, t2, s2
  sw   zero, 0(t2)
  addi t0, t0, 1
  bne  t0, t1, rdzero
  li   t0, 0                # histogram
  li   t1, 32
rdcount:
  slli t2, t0, 2
  add  t2, t2, s0
  lw   t3, 0(t2)
  srl  t3, t3, s4
  andi t3, t3, 15           # digit
  slli t3, t3, 2
  add  t3, t3, s2
  lw   t4, 0(t3)            # count[d] (load-mod-store)
  addi t4, t4, 1
  sw   t4, 0(t3)
  addi t0, t0, 1
  bne  t0, t1, rdcount
  li   t0, 1                # prefix sum
rdpref:
  slli t2, t0, 2
  add  t2, t2, s2
  lw   t3, 0(t2)
  lw   t4, -4(t2)
  add  t3, t3, t4
  sw   t3, 0(t2)
  addi t0, t0, 1
  li   t1, 16
  bne  t0, t1, rdpref
  li   t0, 32               # scatter (backwards, stable)
rdscat:
  addi t0, t0, -1
  slli t2, t0, 2
  add  t2, t2, s0
  lw   t3, 0(t2)            # v
  srl  t4, t3, s4
  andi t4, t4, 15
  slli t4, t4, 2
  add  t4, t4, s2
  lw   t5, 0(t4)            # count[d]
  addi t5, t5, -1
  sw   t5, 0(t4)
  slli t5, t5, 2
  add  t5, t5, s1
  sw   t3, 0(t5)            # dst[pos] = v
  bne  t0, zero, rdscat
  mv   t2, s0               # swap src/dst for the next pass
  mv   s0, s1
  mv   s1, t2
  addi s4, s4, 4
  li   t1, 8
  bne  s4, t1, rdpass
  lw   t0, 0(s0)            # checksum: smallest element
  li   t1, 0x800
  sw   t0, 0(t1)
)";
}

} // namespace

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> All = {
      make("coremark", coremarkBody()), make("aes", aesBody()),
      make("gemm", gemmBody()),         make("gemm-block", gemmBlockBody()),
      make("ellpack", ellpackBody()),   make("kmp", kmpBody()),
      make("nw", nwBody()),             make("queue", queueBody()),
      make("radix", radixBody()),
  };
  return All;
}

const Workload &workloads::workload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return W;
  std::fprintf(stderr, "unknown workload '%s'\n", Name.c_str());
  std::abort();
}
