//===- Workloads.h - Table 3 benchmark kernels -----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nine integer kernels of Table 3 — coremark (EEMBC-style mix) plus
/// the MachSuite selection (aes, gemm, gemm-block, ellpack, kmp, nw, queue,
/// radix) — regenerated as hand-written RV32 assembly with the same
/// dynamic-behaviour profile as the originals (see DESIGN.md for the
/// substitution rationale):
///
///   coremark    mixed linked-list walk + multiply phase + CRC bit loop
///   aes         table-lookup substitution + xor/rotate mixing rounds
///   gemm        dense triple-loop matrix multiply
///   gemm-block  the 2x2-blocked variant (less loop overhead per MAC)
///   ellpack     sparse matrix-vector product (indirect load-use chains)
///   kmp         failure-function string matching (data-dependent branches)
///   nw          Needleman-Wunsch dynamic programming (max-of-3 branches)
///   queue       circular-buffer enqueue/dequeue (pointer load-mod-store)
///   radix       two-pass 4-bit counting sort (count, prefix, scatter)
///
/// Each kernel has an RV32I version (software shift-add multiply) and an
/// RV32IM version. Only the four multiply-heavy kernels differ between the
/// two — matching which rows change in the paper's Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_WORKLOADS_WORKLOADS_H
#define PDL_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace pdl {
namespace workloads {

struct Workload {
  std::string Name;
  std::string AsmI; // RV32I assembly (complete program, ends in halt)
  std::string AsmM; // RV32IM assembly
  bool UsesMulDiv;  // true when AsmM differs from AsmI
};

/// All nine kernels, in Table 3 column order.
const std::vector<Workload> &allWorkloads();

/// The named kernel (aborts if unknown).
const Workload &workload(const std::string &Name);

} // namespace workloads
} // namespace pdl

#endif // PDL_WORKLOADS_WORKLOADS_H
