//===- Json.cpp - Minimal JSON value, writer and parser ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace pdl;
using namespace pdl::obs;

uint64_t Json::asU64() const {
  switch (K) {
  case Kind::UInt:
    return U;
  case Kind::Int:
    return static_cast<uint64_t>(I);
  case Kind::Double:
    return static_cast<uint64_t>(D);
  default:
    return 0;
  }
}

int64_t Json::asI64() const {
  switch (K) {
  case Kind::UInt:
    return static_cast<int64_t>(U);
  case Kind::Int:
    return I;
  case Kind::Double:
    return static_cast<int64_t>(D);
  default:
    return 0;
  }
}

double Json::asDouble() const {
  switch (K) {
  case Kind::UInt:
    return static_cast<double>(U);
  case Kind::Int:
    return static_cast<double>(I);
  case Kind::Double:
    return D;
  default:
    return 0;
  }
}

void Json::set(const std::string &Key, Json V) {
  for (auto &[K2, V2] : Obj) {
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  }
  Obj.emplace_back(Key, std::move(V));
}

const Json *Json::get(const std::string &Key) const {
  for (const auto &[K2, V2] : Obj)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

bool Json::operator==(const Json &O) const {
  if (isNumber() && O.isNumber()) {
    // Integer kinds compare by value so a round-trip through the parser
    // (which re-derives signedness from the lexeme) stays equal.
    if (K != Kind::Double && O.K != Kind::Double)
      return asI64() == O.asI64() && asU64() == O.asU64();
    return asDouble() == O.asDouble();
  }
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return B == O.B;
  case Kind::String:
    return Str == O.Str;
  case Kind::Array:
    return Arr == O.Arr;
  case Kind::Object:
    return Obj == O.Obj;
  default:
    return true; // numbers handled above
  }
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

static void escapeTo(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Json::dumpTo(std::string &Out, int Indent, int Depth) const {
  auto Newline = [&](int D) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  char Buf[64];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)U);
    Out += Buf;
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)I);
    Out += Buf;
    break;
  case Kind::Double:
    if (std::isfinite(D)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no inf/nan
    }
    break;
  case Kind::String:
    escapeTo(Out, Str);
    break;
  case Kind::Array: {
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I2 = 0; I2 != Arr.size(); ++I2) {
      if (I2)
        Out += Indent < 0 ? "," : ",";
      Newline(Depth + 1);
      Arr[I2].dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    bool First = true;
    for (const auto &[Key, Val] : Obj) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Depth + 1);
      escapeTo(Out, Key);
      Out += Indent < 0 ? ":" : ": ";
      Val.dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
  }
}

std::string Json::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &S;
  size_t P = 0;
  std::string Err;

  explicit Parser(const std::string &S) : S(S) {}

  bool fail(const std::string &Msg) {
    if (Err.empty()) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), " at offset %zu", P);
      Err = Msg + Buf;
    }
    return false;
  }

  void skipWs() {
    while (P < S.size() &&
           (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' || S[P] == '\r'))
      ++P;
  }

  bool consume(char C) {
    skipWs();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (P < S.size() && S[P] != '"') {
      char C = S[P++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (P >= S.size())
        return fail("truncated escape");
      char E = S[P++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (P + 4 > S.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = S[P++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= H - '0';
          else if (H >= 'a' && H <= 'f')
            V |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            V |= H - 'A' + 10;
          else
            return fail("bad \\u escape");
        }
        // Encode as UTF-8 (no surrogate-pair handling; the writer never
        // emits them).
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xc0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3f));
        } else {
          Out += static_cast<char>(0xe0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3f));
          Out += static_cast<char>(0x80 | (V & 0x3f));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (P >= S.size())
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseValue(Json &Out) {
    skipWs();
    if (P >= S.size())
      return fail("unexpected end of input");
    char C = S[P];
    if (C == '{') {
      ++P;
      Out = Json::object();
      skipWs();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      while (true) {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return false;
        Json V;
        if (!parseValue(V))
          return false;
        Out.set(Key, std::move(V));
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++P;
      Out = Json::array();
      skipWs();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      while (true) {
        Json V;
        if (!parseValue(V))
          return false;
        Out.push(std::move(V));
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      std::string Str;
      if (!parseString(Str))
        return false;
      Out = Json(std::move(Str));
      return true;
    }
    if (S.compare(P, 4, "true") == 0) {
      P += 4;
      Out = Json(true);
      return true;
    }
    if (S.compare(P, 5, "false") == 0) {
      P += 5;
      Out = Json(false);
      return true;
    }
    if (S.compare(P, 4, "null") == 0) {
      P += 4;
      Out = Json();
      return true;
    }
    return parseNumber(Out);
  }

  bool parseNumber(Json &Out) {
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    bool IsFloat = false;
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '.' ||
            S[P] == 'e' || S[P] == 'E' || S[P] == '+' || S[P] == '-')) {
      if (S[P] == '.' || S[P] == 'e' || S[P] == 'E')
        IsFloat = true;
      ++P;
    }
    if (P == Start)
      return fail("expected a value");
    std::string Lex = S.substr(Start, P - Start);
    if (IsFloat) {
      Out = Json(std::strtod(Lex.c_str(), nullptr));
      return true;
    }
    if (Lex[0] == '-')
      Out = Json(static_cast<int64_t>(std::strtoll(Lex.c_str(), nullptr, 10)));
    else
      Out = Json(
          static_cast<uint64_t>(std::strtoull(Lex.c_str(), nullptr, 10)));
    return true;
  }
};

} // namespace

std::optional<Json> Json::parse(const std::string &Text, std::string *Err) {
  Parser P(Text);
  Json V;
  if (!P.parseValue(V)) {
    if (Err)
      *Err = P.Err;
    return std::nullopt;
  }
  P.skipWs();
  if (P.P != Text.size()) {
    if (Err)
      *Err = "trailing garbage after JSON value";
    return std::nullopt;
  }
  return V;
}
