//===- VcdWriter.h - Value-change-dump trace sink --------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TraceSink that renders the event stream as a Value Change Dump (IEEE
/// 1364), so a simulation can be inspected in any waveform viewer
/// (GTKWave, Surfer, ...). One simulated cycle is 10 time units with a
/// `clk` signal toggling at the half-period. Per pipe, each stage exposes
/// a `fire` bit, a 3-bit `outcome` code (the StallCause numbering) and a
/// 32-bit `tid`; each inter-stage FIFO (and the entry queue) exposes its
/// end-of-cycle depth.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_VCDWRITER_H
#define PDL_OBS_VCDWRITER_H

#include "obs/TraceSink.h"

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pdl {
namespace obs {

class VcdWriter : public TraceSink {
public:
  /// Writes the dump to \p OS (caller keeps the stream alive and open
  /// until after end()).
  explicit VcdWriter(std::ostream &OS) : OS(OS) {}

  void begin(const TraceMeta &Meta) override;
  void event(const Event &E) override;
  void end() override;

private:
  struct Signal {
    std::string Id; // VCD identifier code
    unsigned Width = 1;
    uint64_t Cur = 0;
    uint64_t Last = 0;
    bool Dumped = false; // written at least once
  };

  unsigned newSignal(unsigned Width);
  void declareVar(const std::string &Name, unsigned Sig);
  void writeValue(unsigned Sig, uint64_t V);
  void flushCycle();

  std::ostream &OS;
  std::vector<Signal> Signals;
  unsigned ClkSig = 0;
  /// Per pipe, per stage: {fire, outcome, tid} signal indices.
  std::vector<std::vector<std::array<unsigned, 3>>> StageSigs;
  /// Per pipe: entry-queue depth signal.
  std::vector<unsigned> EntrySigs;
  /// Per pipe: (from, to) -> depth signal.
  std::vector<std::map<std::pair<unsigned, unsigned>, unsigned>> EdgeSigs;
  uint64_t CurCycle = 0;
  bool HavePending = false;
  bool Ended = false;
};

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_VCDWRITER_H
