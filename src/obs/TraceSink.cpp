//===- TraceSink.cpp - Trace sink interface ---------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSink.h"

using namespace pdl::obs;

TraceSink::~TraceSink() = default;
