//===- Json.h - Minimal JSON value, writer and parser ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON value type with a serializer and a recursive
/// descent parser, sized for the observability layer's needs: machine
/// readable stats reports and bench rows. Unsigned 64-bit integers are
/// preserved exactly (cycle counts overflow doubles long before they
/// overflow uint64_t); object keys keep insertion order so serialized
/// output is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_JSON_H
#define PDL_OBS_JSON_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace obs {

class Json {
public:
  enum class Kind { Null, Bool, UInt, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), B(B) {}
  Json(uint64_t U) : K(Kind::UInt), U(U) {}
  Json(int64_t I) : K(Kind::Int), I(I) {}
  Json(int I) : K(Kind::Int), I(I) {}
  Json(unsigned U) : K(Kind::UInt), U(U) {}
  Json(double D) : K(Kind::Double), D(D) {}
  Json(const char *S) : K(Kind::String), Str(S) {}
  Json(std::string S) : K(Kind::String), Str(std::move(S)) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const {
    return K == Kind::UInt || K == Kind::Int || K == Kind::Double;
  }

  bool asBool() const { return B; }
  uint64_t asU64() const;
  int64_t asI64() const;
  double asDouble() const;
  const std::string &asString() const { return Str; }

  /// Array access.
  void push(Json V) { Arr.push_back(std::move(V)); }
  const std::vector<Json> &items() const { return Arr; }
  size_t size() const { return K == Kind::Object ? Obj.size() : Arr.size(); }

  /// Object access (insertion-ordered).
  void set(const std::string &Key, Json V);
  const Json *get(const std::string &Key) const;
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Obj;
  }

  /// Serializes. \p Indent < 0 means compact single-line output.
  std::string dump(int Indent = -1) const;

  /// Parses \p Text; returns std::nullopt (and sets \p Err if given) on
  /// malformed input or trailing garbage.
  static std::optional<Json> parse(const std::string &Text,
                                   std::string *Err = nullptr);

  bool operator==(const Json &O) const;
  bool operator!=(const Json &O) const { return !(*this == O); }

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool B = false;
  uint64_t U = 0;
  int64_t I = 0;
  double D = 0;
  std::string Str;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;
};

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_JSON_H
