//===- StatsReport.cpp - Structured simulation statistics -------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/StatsReport.h"

using namespace pdl;
using namespace pdl::obs;

const char *obs::stallCauseName(StallCause C) {
  switch (C) {
  case StallCause::None:
    return "fire";
  case StallCause::Idle:
    return "idle";
  case StallCause::Lock:
    return "lock";
  case StallCause::Spec:
    return "spec";
  case StallCause::Response:
    return "response";
  case StallCause::Backpressure:
    return "backpressure";
  case StallCause::Kill:
    return "kill";
  }
  return "?";
}

const char *obs::eventKindName(Event::Kind K) {
  switch (K) {
  case Event::Kind::CycleBegin:
    return "cycle";
  case Event::Kind::StageOutcome:
    return "stage";
  case Event::Kind::ThreadSpawn:
    return "spawn";
  case Event::Kind::ThreadRetire:
    return "retire";
  case Event::Kind::ThreadSquash:
    return "squash";
  case Event::Kind::FifoEnq:
    return "enq";
  case Event::Kind::FifoDeq:
    return "deq";
  case Event::Kind::LockReserve:
    return "reserve";
  case Event::Kind::LockRelease:
    return "release";
  case Event::Kind::SpecResolve:
    return "spec-resolve";
  case Event::Kind::SpecRollback:
    return "spec-rollback";
  case Event::Kind::Deadlock:
    return "deadlock";
  case Event::Kind::MemHit:
    return "mem-hit";
  case Event::Kind::MemMiss:
    return "mem-miss";
  case Event::Kind::MemBackpressure:
    return "mem-stall";
  case Event::Kind::SpecAlloc:
    return "spec-alloc";
  case Event::Kind::FaultInjected:
    return "fault";
  }
  return "?";
}

uint64_t StageStats::stallTotal() const {
  uint64_t N = 0;
  for (uint64_t S : Stalls)
    N += S;
  return N;
}

uint64_t PipeStats::fires() const {
  uint64_t N = 0;
  for (const StageStats &S : Stages)
    N += S.Fires;
  return N;
}

uint64_t PipeStats::stalls(StallCause C) const {
  uint64_t N = 0;
  for (const StageStats &S : Stages)
    N += S.stalls(C);
  return N;
}

uint64_t StatsReport::totalFires() const {
  uint64_t N = 0;
  for (const PipeStats &P : Pipes)
    N += P.fires();
  return N;
}

uint64_t StatsReport::totalStalls(StallCause C) const {
  uint64_t N = 0;
  for (const PipeStats &P : Pipes)
    N += P.stalls(C);
  return N;
}

const PipeStats *StatsReport::pipe(const std::string &Name) const {
  for (const PipeStats &P : Pipes)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

bool StatsReport::attributionExact() const {
  for (const PipeStats &P : Pipes)
    for (const StageStats &S : P.Stages)
      if (S.Fires + S.stallTotal() != Cycles)
        return false;
  return true;
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

static StallCause matrixCause(unsigned I) {
  return static_cast<StallCause>(I + 1);
}

Json StatsReport::toJsonValue() const {
  Json Root = Json::object();
  Root.set("cycles", Json(Cycles));
  Root.set("deadlocked", Json(Deadlocked));
  if (!Outcome.empty())
    Root.set("outcome", Json(Outcome));
  Root.set("faults_injected", Json(FaultsInjected));
  Root.set("violations", Json(Violations));
  Json PipesJ = Json::array();
  for (const PipeStats &P : Pipes) {
    Json PJ = Json::object();
    PJ.set("name", Json(P.Name));
    PJ.set("spawned", Json(P.Spawned));
    PJ.set("retired", Json(P.Retired));
    PJ.set("squashed", Json(P.Squashed));
    PJ.set("spec_correct", Json(P.SpecCorrect));
    PJ.set("spec_mispredict", Json(P.SpecMispredict));
    Json StagesJ = Json::array();
    for (const StageStats &S : P.Stages) {
      Json SJ = Json::object();
      SJ.set("name", Json(S.Name));
      SJ.set("fires", Json(S.Fires));
      Json StallsJ = Json::object();
      for (unsigned I = 0; I != NumMatrixCauses; ++I)
        StallsJ.set(stallCauseName(matrixCause(I)), Json(S.Stalls[I]));
      SJ.set("stalls", std::move(StallsJ));
      StagesJ.push(std::move(SJ));
    }
    PJ.set("stages", std::move(StagesJ));
    Json MemsJ = Json::array();
    for (const MemStats &M : P.Mems) {
      Json MJ = Json::object();
      MJ.set("name", Json(M.Name));
      MJ.set("lock_stalls", Json(M.LockStalls));
      MJ.set("reserves", Json(M.Reserves));
      MJ.set("releases", Json(M.Releases));
      MJ.set("rollbacks", Json(M.Rollbacks));
      MJ.set("hits", Json(M.Hits));
      MJ.set("misses", Json(M.Misses));
      MJ.set("mem_stalls", Json(M.MemStalls));
      MemsJ.push(std::move(MJ));
    }
    PJ.set("mems", std::move(MemsJ));
    PipesJ.push(std::move(PJ));
  }
  Root.set("pipes", std::move(PipesJ));
  return Root;
}

std::optional<StatsReport> StatsReport::fromJson(const std::string &Text,
                                                 std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::optional<StatsReport> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };
  std::optional<Json> Root = Json::parse(Text, Err);
  if (!Root)
    return std::nullopt;
  if (Root->kind() != Json::Kind::Object)
    return Fail("report must be a JSON object");
  StatsReport R;
  const Json *Cycles = Root->get("cycles");
  const Json *Dead = Root->get("deadlocked");
  const Json *PipesJ = Root->get("pipes");
  if (!Cycles || !Cycles->isNumber() || !Dead || !PipesJ ||
      PipesJ->kind() != Json::Kind::Array)
    return Fail("missing cycles/deadlocked/pipes");
  R.Cycles = Cycles->asU64();
  R.Deadlocked = Dead->asBool();
  if (const Json *Out = Root->get("outcome"))
    R.Outcome = Out->asString();
  if (const Json *F = Root->get("faults_injected"))
    R.FaultsInjected = F->asU64();
  if (const Json *V = Root->get("violations"))
    R.Violations = V->asU64();
  for (const Json &PJ : PipesJ->items()) {
    PipeStats P;
    const Json *Name = PJ.get("name");
    if (!Name)
      return Fail("pipe missing name");
    P.Name = Name->asString();
    auto U64 = [&](const char *Key) {
      const Json *V = PJ.get(Key);
      return V ? V->asU64() : 0;
    };
    P.Spawned = U64("spawned");
    P.Retired = U64("retired");
    P.Squashed = U64("squashed");
    P.SpecCorrect = U64("spec_correct");
    P.SpecMispredict = U64("spec_mispredict");
    if (const Json *StagesJ = PJ.get("stages")) {
      for (const Json &SJ : StagesJ->items()) {
        StageStats S;
        if (const Json *N = SJ.get("name"))
          S.Name = N->asString();
        if (const Json *F = SJ.get("fires"))
          S.Fires = F->asU64();
        const Json *StallsJ = SJ.get("stalls");
        if (!StallsJ)
          return Fail("stage missing stalls");
        for (unsigned I = 0; I != NumMatrixCauses; ++I) {
          const Json *V = StallsJ->get(stallCauseName(matrixCause(I)));
          if (!V)
            return Fail("stall matrix missing a cause column");
          S.Stalls[I] = V->asU64();
        }
        P.Stages.push_back(std::move(S));
      }
    }
    if (const Json *MemsJ = PJ.get("mems")) {
      for (const Json &MJ : MemsJ->items()) {
        MemStats M;
        if (const Json *N = MJ.get("name"))
          M.Name = N->asString();
        auto MU64 = [&](const char *Key) {
          const Json *V = MJ.get(Key);
          return V ? V->asU64() : 0;
        };
        M.LockStalls = MU64("lock_stalls");
        M.Reserves = MU64("reserves");
        M.Releases = MU64("releases");
        M.Rollbacks = MU64("rollbacks");
        M.Hits = MU64("hits");
        M.Misses = MU64("misses");
        M.MemStalls = MU64("mem_stalls");
        P.Mems.push_back(std::move(M));
      }
    }
    R.Pipes.push_back(std::move(P));
  }
  return R;
}
