//===- TraceSink.h - Trace sink interface and dispatch bus -----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sink side of the observability layer. A `TraceSink` consumes the
/// executor's `Event` stream; `TraceMeta` (handed to `begin()`) maps the
/// interned pipe/stage/memory indices in events back to names. `TraceBus`
/// is the dispatch point the executor owns: emission is guarded by
/// `enabled()`, so a run with no attached sinks pays one branch per
/// emission site and constructs no events.
///
/// Sinks are passive and caller-owned; one sink instance observes one
/// System for one run (begin / events / end).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_TRACESINK_H
#define PDL_OBS_TRACESINK_H

#include "obs/Event.h"

#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace obs {

/// Static description of the elaborated system: resolves the interned
/// indices used in events. Built once at elaboration.
struct TraceMeta {
  struct PipeMeta {
    std::string Name;
    /// Stage names, indexed by stage id.
    std::vector<std::string> Stages;
    /// Memory names, indexed by the interned memory index.
    std::vector<std::string> Mems;
    /// Inter-stage FIFO edges as (from, to) stage ids. The entry queue is
    /// implicit (every pipe has one; events use From == NoEdge for it).
    std::vector<std::pair<unsigned, unsigned>> Edges;
  };
  std::vector<PipeMeta> Pipes;
};

class TraceSink {
public:
  virtual ~TraceSink();

  /// Called once when the sink is attached, before any event.
  virtual void begin(const TraceMeta &Meta) { (void)Meta; }

  /// Called for every observed event, in deterministic execution order.
  virtual void event(const Event &E) = 0;

  /// Called when the observed System finishes (destruction or explicit
  /// finishTrace()). Sinks that buffer (e.g. the VCD writer) flush here.
  virtual void end() {}
};

/// The executor-side dispatcher. Emission sites check `enabled()` before
/// building an event, keeping the disabled path free of work.
class TraceBus {
public:
  bool enabled() const { return !Sinks.empty(); }

  void attach(TraceSink *S) { Sinks.push_back(S); }

  void emit(const Event &E) {
    for (TraceSink *S : Sinks)
      S->event(E);
  }

  /// Delivers end() to every sink once (idempotent).
  void finish() {
    if (Finished)
      return;
    Finished = true;
    for (TraceSink *S : Sinks)
      S->end();
  }

private:
  std::vector<TraceSink *> Sinks;
  bool Finished = false;
};

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_TRACESINK_H
