//===- StatsReport.h - Structured simulation statistics --------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured successor of the old six-counter `SystemStats`: per-pipe,
/// per-stage, per-cause cycle attribution plus thread accounting, with a
/// JSON serializer/deserializer so benches and tools emit machine-readable
/// rows. Produced by `CounterSink` from the event stream.
///
/// The core invariant (asserted by the executor and checked by tests): for
/// every stage, `Fires + sum(Stalls[*]) == Cycles` — every cycle of every
/// stage is attributed to exactly one outcome.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_STATSREPORT_H
#define PDL_OBS_STATSREPORT_H

#include "obs/Event.h"
#include "obs/Json.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pdl {
namespace obs {

struct StageStats {
  std::string Name;
  uint64_t Fires = 0;
  /// Non-fire outcomes, indexed by matrixIndex(): Idle, Lock, Spec,
  /// Response, Backpressure, Kill. Sums to Cycles - Fires.
  std::array<uint64_t, NumMatrixCauses> Stalls{};

  uint64_t stallTotal() const;
  uint64_t stalls(StallCause C) const { return Stalls[matrixIndex(C)]; }
};

struct MemStats {
  std::string Name;
  /// Stage-stall cycles attributed to this memory's lock (readiness,
  /// reservation resources, or its multi-stage lock region).
  uint64_t LockStalls = 0;
  uint64_t Reserves = 0;
  uint64_t Releases = 0;
  uint64_t Rollbacks = 0;
  /// Memory-hierarchy traffic (cache models only; zero under the default
  /// FixedLatency model, which has no hit/miss notion).
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Stage-stall cycles where this memory's miss queue refused a request
  /// (counted in the matrix's Backpressure column).
  uint64_t MemStalls = 0;
};

struct PipeStats {
  std::string Name;
  uint64_t Spawned = 0;
  uint64_t Retired = 0;
  uint64_t Squashed = 0;
  uint64_t SpecCorrect = 0;
  uint64_t SpecMispredict = 0;
  std::vector<StageStats> Stages;
  std::vector<MemStats> Mems;

  uint64_t fires() const;
  uint64_t stalls(StallCause C) const;
};

struct StatsReport {
  uint64_t Cycles = 0;
  bool Deadlocked = false;
  /// Structured run outcome ("halted" / "drained" / "deadlocked" /
  /// "timed_out"). Empty when the producer predates outcomes (old JSON) or
  /// the system has not finished running; omitted from JSON when empty so
  /// pre-existing serializations stay byte-identical.
  std::string Outcome;
  /// Verification-harness accounting: faults injected by an armed
  /// hw::FaultPlan and invariant violations flagged by verify::MonitorSink.
  uint64_t FaultsInjected = 0;
  uint64_t Violations = 0;
  std::vector<PipeStats> Pipes;

  uint64_t totalFires() const;
  uint64_t totalStalls(StallCause C) const;

  const PipeStats *pipe(const std::string &Name) const;

  /// True when every stage of every pipe satisfies
  /// Fires + sum(Stalls) == Cycles.
  bool attributionExact() const;

  Json toJsonValue() const;
  std::string toJson(int Indent = 2) const { return toJsonValue().dump(Indent); }

  static std::optional<StatsReport> fromJson(const std::string &Text,
                                             std::string *Err = nullptr);
};

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_STATSREPORT_H
