//===- VcdWriter.cpp - Value-change-dump trace sink -------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/VcdWriter.h"

#include <cassert>
#include <cctype>

using namespace pdl;
using namespace pdl::obs;

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
static std::string vcdId(unsigned N) {
  std::string Id;
  do {
    Id += static_cast<char>(33 + N % 94);
    N /= 94;
  } while (N);
  return Id;
}

static std::string sanitize(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_') ? C : '_';
  if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), 's');
  return Out;
}

unsigned VcdWriter::newSignal(unsigned Width) {
  Signal S;
  S.Id = vcdId(static_cast<unsigned>(Signals.size()));
  S.Width = Width;
  Signals.push_back(std::move(S));
  return static_cast<unsigned>(Signals.size() - 1);
}

void VcdWriter::declareVar(const std::string &Name, unsigned Sig) {
  const Signal &S = Signals[Sig];
  OS << "$var wire " << S.Width << " " << S.Id << " " << Name;
  if (S.Width > 1)
    OS << " [" << (S.Width - 1) << ":0]";
  OS << " $end\n";
}

void VcdWriter::begin(const TraceMeta &Meta) {
  OS << "$version PDL simulation observability layer $end\n"
     << "$timescale 1ns $end\n"
     << "$scope module pdl $end\n";
  ClkSig = newSignal(1);
  declareVar("clk", ClkSig);
  StageSigs.resize(Meta.Pipes.size());
  EntrySigs.resize(Meta.Pipes.size());
  EdgeSigs.resize(Meta.Pipes.size());
  for (size_t PI = 0; PI != Meta.Pipes.size(); ++PI) {
    const TraceMeta::PipeMeta &PM = Meta.Pipes[PI];
    OS << "$scope module " << sanitize(PM.Name) << " $end\n";
    for (const std::string &SN : PM.Stages) {
      std::array<unsigned, 3> Sigs = {newSignal(1), newSignal(3),
                                      newSignal(32)};
      std::string Base = sanitize(SN);
      declareVar(Base + "_fire", Sigs[0]);
      declareVar(Base + "_outcome", Sigs[1]);
      declareVar(Base + "_tid", Sigs[2]);
      StageSigs[PI].push_back(Sigs);
    }
    EntrySigs[PI] = newSignal(8);
    declareVar("entry_depth", EntrySigs[PI]);
    for (const auto &[From, To] : PM.Edges) {
      unsigned Sig = newSignal(8);
      declareVar("fifo_" + std::to_string(From) + "_" + std::to_string(To) +
                     "_depth",
                 Sig);
      EdgeSigs[PI][{From, To}] = Sig;
    }
    OS << "$upscope $end\n";
  }
  OS << "$upscope $end\n$enddefinitions $end\n";
  // Initial values: everything 0 at time 0.
  OS << "#0\n$dumpvars\n";
  for (Signal &S : Signals) {
    // clk starts high in the first half-period written by flushCycle.
    writeValue(static_cast<unsigned>(&S - Signals.data()), 0);
    S.Dumped = true;
  }
  OS << "$end\n";
}

void VcdWriter::writeValue(unsigned Sig, uint64_t V) {
  Signal &S = Signals[Sig];
  if (S.Width == 1) {
    OS << (V ? '1' : '0') << S.Id << "\n";
    return;
  }
  OS << 'b';
  bool Leading = true;
  for (unsigned B = S.Width; B-- > 0;) {
    bool Bit = (V >> B) & 1;
    if (Leading && !Bit && B != 0)
      continue; // VCD allows dropped leading zeros
    Leading = false;
    OS << (Bit ? '1' : '0');
  }
  OS << ' ' << S.Id << "\n";
}

void VcdWriter::flushCycle() {
  if (!HavePending)
    return;
  uint64_t T = CurCycle * 10;
  OS << '#' << T << "\n";
  writeValue(ClkSig, 1);
  for (unsigned I = 0; I != Signals.size(); ++I) {
    Signal &S = Signals[I];
    if (I == ClkSig)
      continue;
    if (!S.Dumped || S.Cur != S.Last) {
      writeValue(I, S.Cur);
      S.Last = S.Cur;
      S.Dumped = true;
    }
  }
  OS << '#' << (T + 5) << "\n";
  writeValue(ClkSig, 0);
  HavePending = false;
}

void VcdWriter::event(const Event &E) {
  switch (E.K) {
  case Event::Kind::CycleBegin:
    flushCycle();
    CurCycle = E.Cycle;
    HavePending = true;
    return;
  case Event::Kind::StageOutcome: {
    auto &Sigs = StageSigs[E.Pipe][E.Stage];
    Signals[Sigs[0]].Cur = E.Cause == StallCause::None;
    Signals[Sigs[1]].Cur = static_cast<uint64_t>(E.Cause);
    Signals[Sigs[2]].Cur = E.Cause == StallCause::Idle ? 0 : E.Tid;
    return;
  }
  case Event::Kind::FifoEnq:
  case Event::Kind::FifoDeq: {
    unsigned Sig;
    if (E.From == NoEdge) {
      Sig = EntrySigs[E.Pipe];
    } else {
      auto It = EdgeSigs[E.Pipe].find({E.From, E.To});
      if (It == EdgeSigs[E.Pipe].end())
        return;
      Sig = It->second;
    }
    Signals[Sig].Cur = E.Value;
    return;
  }
  default:
    return; // thread/lock/spec events have no waveform representation
  }
}

void VcdWriter::end() {
  if (Ended)
    return;
  Ended = true;
  flushCycle();
  OS << '#' << ((CurCycle + 1) * 10) << "\n";
  OS.flush();
}
