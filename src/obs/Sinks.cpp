//===- Sinks.cpp - Shipped trace sinks --------------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Sinks.h"

#include <cassert>
#include <cstdio>

using namespace pdl;
using namespace pdl::obs;

//===----------------------------------------------------------------------===//
// CounterSink
//===----------------------------------------------------------------------===//

void CounterSink::begin(const TraceMeta &Meta) {
  R = StatsReport();
  for (const TraceMeta::PipeMeta &PM : Meta.Pipes) {
    PipeStats P;
    P.Name = PM.Name;
    for (const std::string &SN : PM.Stages) {
      StageStats S;
      S.Name = SN;
      P.Stages.push_back(std::move(S));
    }
    for (const std::string &MN : PM.Mems) {
      MemStats M;
      M.Name = MN;
      P.Mems.push_back(std::move(M));
    }
    R.Pipes.push_back(std::move(P));
  }
}

void CounterSink::event(const Event &E) {
  switch (E.K) {
  case Event::Kind::CycleBegin:
    ++R.Cycles;
    return;
  case Event::Kind::StageOutcome: {
    assert(E.Pipe < R.Pipes.size());
    PipeStats &P = R.Pipes[E.Pipe];
    assert(E.Stage < P.Stages.size());
    StageStats &S = P.Stages[E.Stage];
    if (E.Cause == StallCause::None) {
      ++S.Fires;
    } else {
      ++S.Stalls[matrixIndex(E.Cause)];
      if (E.Cause == StallCause::Lock && E.Mem != NoMem)
        ++P.Mems[E.Mem].LockStalls;
    }
    return;
  }
  case Event::Kind::ThreadSpawn:
    ++R.Pipes[E.Pipe].Spawned;
    return;
  case Event::Kind::ThreadRetire:
    ++R.Pipes[E.Pipe].Retired;
    return;
  case Event::Kind::ThreadSquash:
    ++R.Pipes[E.Pipe].Squashed;
    return;
  case Event::Kind::LockReserve:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].Reserves;
    return;
  case Event::Kind::LockRelease:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].Releases;
    return;
  case Event::Kind::SpecResolve:
    if (E.Flag)
      ++R.Pipes[E.Pipe].SpecCorrect;
    else
      ++R.Pipes[E.Pipe].SpecMispredict;
    return;
  case Event::Kind::SpecRollback:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].Rollbacks;
    return;
  case Event::Kind::Deadlock:
    R.Deadlocked = true;
    return;
  case Event::Kind::MemHit:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].Hits;
    return;
  case Event::Kind::MemMiss:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].Misses;
    return;
  case Event::Kind::MemBackpressure:
    if (E.Mem != NoMem)
      ++R.Pipes[E.Pipe].Mems[E.Mem].MemStalls;
    return;
  case Event::Kind::FaultInjected:
    ++R.FaultsInjected;
    return;
  case Event::Kind::SpecAlloc:
  case Event::Kind::FifoEnq:
  case Event::Kind::FifoDeq:
    return;
  }
}

//===----------------------------------------------------------------------===//
// TimelineSink
//===----------------------------------------------------------------------===//

char TimelineSink::outcomeChar(StallCause C) {
  switch (C) {
  case StallCause::None:
    return '#';
  case StallCause::Idle:
    return '.';
  case StallCause::Lock:
    return 'L';
  case StallCause::Spec:
    return 'S';
  case StallCause::Response:
    return 'R';
  case StallCause::Backpressure:
    return 'B';
  case StallCause::Kill:
    return 'K';
  }
  return '?';
}

void TimelineSink::begin(const TraceMeta &M) {
  Meta = M;
  Rows.clear();
  Rows.resize(Meta.Pipes.size());
  for (size_t I = 0; I != Meta.Pipes.size(); ++I)
    Rows[I].resize(Meta.Pipes[I].Stages.size());
  Recorded = 0;
}

void TimelineSink::event(const Event &E) {
  if (E.K == Event::Kind::CycleBegin) {
    if (Recorded < MaxCycles)
      ++Recorded;
    return;
  }
  if (E.K != Event::Kind::StageOutcome || Recorded > MaxCycles)
    return;
  std::string &Row = Rows[E.Pipe][E.Stage];
  if (Row.size() < MaxCycles)
    Row += outcomeChar(E.Cause);
}

std::string TimelineSink::render() const {
  std::string Out;
  for (size_t PI = 0; PI != Rows.size(); ++PI) {
    if (Rows.size() > 1 || PI == 0) {
      Out += "pipe ";
      Out += Meta.Pipes[PI].Name;
      Out += " (#=fire .=idle L=lock S=spec R=response B=backpressure "
             "K=kill)\n";
    }
    size_t Width = 0;
    for (const std::string &SN : Meta.Pipes[PI].Stages)
      Width = std::max(Width, SN.size());
    for (size_t SI = 0; SI != Rows[PI].size(); ++SI) {
      const std::string &Name = Meta.Pipes[PI].Stages[SI];
      Out += Name;
      Out.append(Width - Name.size() + 1, ' ');
      Out += Rows[PI][SI];
      Out += '\n';
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// LogSink
//===----------------------------------------------------------------------===//

void LogSink::begin(const TraceMeta &M) {
  Meta = M;
  Log.clear();
}

void LogSink::event(const Event &E) {
  char Buf[192];
  const TraceMeta::PipeMeta &PM = Meta.Pipes[E.Pipe];
  const char *Pipe = PM.Name.c_str();
  auto MemName = [&](uint16_t M) {
    return M == NoMem ? "-" : PM.Mems[M].c_str();
  };
  switch (E.K) {
  case Event::Kind::CycleBegin:
    std::snprintf(Buf, sizeof(Buf), "-- cycle %llu\n",
                  (unsigned long long)E.Cycle);
    break;
  case Event::Kind::StageOutcome:
    if (E.Cause == StallCause::Idle)
      return; // idle stages would dominate the log; counters keep them
    std::snprintf(Buf, sizeof(Buf), "%s/%s %s tid=%llu%s%s\n", Pipe,
                  PM.Stages[E.Stage].c_str(), stallCauseName(E.Cause),
                  (unsigned long long)E.Tid,
                  E.Cause == StallCause::Lock && E.Mem != NoMem ? " mem=" : "",
                  E.Cause == StallCause::Lock && E.Mem != NoMem
                      ? MemName(E.Mem)
                      : "");
    break;
  case Event::Kind::ThreadSpawn:
  case Event::Kind::ThreadRetire:
  case Event::Kind::ThreadSquash:
    std::snprintf(Buf, sizeof(Buf), "%s %s tid=%llu\n", Pipe,
                  eventKindName(E.K), (unsigned long long)E.Tid);
    break;
  case Event::Kind::FifoEnq:
  case Event::Kind::FifoDeq:
    if (E.From == NoEdge)
      std::snprintf(Buf, sizeof(Buf), "%s %s entry tid=%llu depth=%llu\n",
                    Pipe, eventKindName(E.K), (unsigned long long)E.Tid,
                    (unsigned long long)E.Value);
    else
      std::snprintf(Buf, sizeof(Buf), "%s %s %u->%u tid=%llu depth=%llu\n",
                    Pipe, eventKindName(E.K), E.From, E.To,
                    (unsigned long long)E.Tid, (unsigned long long)E.Value);
    break;
  case Event::Kind::LockReserve:
  case Event::Kind::LockRelease:
    std::snprintf(Buf, sizeof(Buf), "%s %s %s[%llu] tid=%llu\n", Pipe,
                  eventKindName(E.K), MemName(E.Mem),
                  (unsigned long long)E.Value, (unsigned long long)E.Tid);
    break;
  case Event::Kind::SpecResolve:
    std::snprintf(Buf, sizeof(Buf), "%s spec-resolve id=%llu %s\n", Pipe,
                  (unsigned long long)E.Value,
                  E.Flag ? "correct" : "mispredict");
    break;
  case Event::Kind::SpecRollback:
    std::snprintf(Buf, sizeof(Buf), "%s spec-rollback %s tid=%llu\n", Pipe,
                  MemName(E.Mem), (unsigned long long)E.Tid);
    break;
  case Event::Kind::MemHit:
  case Event::Kind::MemMiss:
  case Event::Kind::MemBackpressure:
    std::snprintf(Buf, sizeof(Buf), "%s %s %s[%llu] tid=%llu\n", Pipe,
                  eventKindName(E.K), MemName(E.Mem),
                  (unsigned long long)E.Value, (unsigned long long)E.Tid);
    break;
  case Event::Kind::Deadlock:
    std::snprintf(Buf, sizeof(Buf), "deadlock at cycle %llu\n",
                  (unsigned long long)E.Cycle);
    break;
  case Event::Kind::SpecAlloc:
    // Kept out of the log so golden digests pinned before this event kind
    // existed stay bit-for-bit identical (same policy as Idle outcomes).
    return;
  case Event::Kind::FaultInjected:
    std::snprintf(Buf, sizeof(Buf), "%s fault-injected kind=%llu tid=%llu\n",
                  Pipe, (unsigned long long)E.Value,
                  (unsigned long long)E.Tid);
    break;
  }
  Log += Buf;
}

uint64_t LogSink::digest() const {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Log) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}
