//===- Event.h - Structured simulation trace events ------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate event model of the observability layer: everything the
/// cycle-accurate executor does that costs or explains a cycle is emitted
/// as one flat `Event` record. Sinks (counters, timelines, VCD) consume the
/// stream without knowing executor internals, so new tooling composes
/// against this model rather than against `System`.
///
/// Identities are interned: pipes, stages and memories are small indices
/// into the `TraceMeta` table handed to every sink at `begin()`. Events are
/// PODs; emission sites construct them with the factory helpers below.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_EVENT_H
#define PDL_OBS_EVENT_H

#include <cstdint>

namespace pdl {
namespace obs {

/// Why a stage did not fire this cycle. `None` means it fired. The causes
/// mirror the stall conditions of the paper's rule-per-stage circuits
/// (Section 5.1): lock readiness/resources, unresolved speculation,
/// outstanding synchronous responses, and full downstream FIFOs — plus
/// `Idle` (no input thread) and `Kill` (the input was squashed at entry),
/// so that per stage, fires + every-other-outcome sums to total cycles.
enum class StallCause : uint8_t {
  None = 0,     // the stage fired
  Idle,         // no input thread available
  Lock,         // block()/acquire not ready, reserve resources, lock region
  Spec,         // spec_barrier unresolved or spec-table capacity
  Response,     // outstanding synchronous memory/call response
  Backpressure, // downstream FIFO / entry queue / tag queue full
  Kill,         // input thread was squashed at stage entry
};

/// Number of non-fire outcomes (the columns of the stall attribution
/// matrix, StallCause::Idle .. StallCause::Kill).
constexpr unsigned NumMatrixCauses = 6;

/// Matrix column for a non-fire cause (Idle -> 0 .. Kill -> 5).
inline unsigned matrixIndex(StallCause C) {
  return static_cast<unsigned>(C) - 1;
}

const char *stallCauseName(StallCause C);

/// Sentinels for the optional identity fields of Event.
constexpr uint16_t NoStage = 0xffff;
constexpr uint16_t NoMem = 0xffff;
constexpr uint16_t NoEdge = 0xffff; // Event::From for entry-queue events

/// One observation from the executor. Field meaning depends on `K`; unused
/// fields keep their sentinel/zero defaults.
struct Event {
  enum class Kind : uint8_t {
    CycleBegin,   // Cycle
    StageOutcome, // Pipe, Stage, Cause, Tid (0 when Idle), Mem (lock stalls)
    ThreadSpawn,  // Pipe, Tid
    ThreadRetire, // Pipe, Tid
    ThreadSquash, // Pipe, Tid
    FifoEnq,      // Pipe, From/To (From==NoEdge: entry queue), Tid, Value=depth
    FifoDeq,      // same fields as FifoEnq
    LockReserve,  // Pipe, Mem, Tid, Value=address
    LockRelease,  // Pipe, Mem, Tid, Value=address
    SpecResolve,  // Pipe, Value=spec id, Flag=prediction was correct
    SpecRollback, // Pipe, Mem, Tid (the verifying thread)
    Deadlock,     // Cycle (no rule can ever fire again)
    MemHit,       // Pipe, Mem, Tid, Value=address (cache models only)
    MemMiss,      // same fields as MemHit
    MemBackpressure, // Pipe, Mem, Tid, Value=address (miss queue full)
    SpecAlloc,    // Pipe, Tid (the child), Value=spec id
    FaultInjected, // Pipe, Tid, Value=hw::FaultKind (src/hw/Fault.h)
  };

  Kind K = Kind::CycleBegin;
  uint16_t Pipe = 0;
  uint16_t Stage = NoStage;
  uint16_t Mem = NoMem;
  uint16_t From = NoEdge, To = NoEdge;
  StallCause Cause = StallCause::None;
  bool Flag = false;
  uint64_t Cycle = 0;
  uint64_t Tid = 0;
  uint64_t Value = 0;

  static Event cycleBegin(uint64_t Cycle) {
    Event E;
    E.K = Kind::CycleBegin;
    E.Cycle = Cycle;
    return E;
  }
  static Event stageOutcome(uint64_t Cycle, uint16_t Pipe, uint16_t Stage,
                            StallCause Cause, uint64_t Tid,
                            uint16_t Mem = NoMem) {
    Event E;
    E.K = Kind::StageOutcome;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Stage = Stage;
    E.Cause = Cause;
    E.Tid = Tid;
    E.Mem = Mem;
    return E;
  }
  static Event thread(Kind K, uint64_t Cycle, uint16_t Pipe, uint64_t Tid) {
    Event E;
    E.K = K;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Tid = Tid;
    return E;
  }
  static Event fifo(Kind K, uint64_t Cycle, uint16_t Pipe, uint16_t From,
                    uint16_t To, uint64_t Tid, uint64_t Depth) {
    Event E;
    E.K = K;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.From = From;
    E.To = To;
    E.Tid = Tid;
    E.Value = Depth;
    return E;
  }
  static Event lock(Kind K, uint64_t Cycle, uint16_t Pipe, uint16_t Mem,
                    uint64_t Tid, uint64_t Addr) {
    Event E;
    E.K = K;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Mem = Mem;
    E.Tid = Tid;
    E.Value = Addr;
    return E;
  }
  static Event specResolve(uint64_t Cycle, uint16_t Pipe, uint64_t SpecId,
                           bool Correct) {
    Event E;
    E.K = Kind::SpecResolve;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Value = SpecId;
    E.Flag = Correct;
    return E;
  }
  /// \p Final is true when the checkpoint is also freed (a verify), false
  /// when the rollback keeps checkpoints live (an update re-steer). The
  /// ckpt-once monitor uses it to flag double rollbacks.
  static Event specRollback(uint64_t Cycle, uint16_t Pipe, uint16_t Mem,
                            uint64_t Tid, bool Final = true) {
    Event E;
    E.K = Kind::SpecRollback;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Mem = Mem;
    E.Tid = Tid;
    E.Flag = Final;
    return E;
  }
  static Event specAlloc(uint64_t Cycle, uint16_t Pipe, uint64_t ChildTid,
                         uint64_t SpecId) {
    Event E;
    E.K = Kind::SpecAlloc;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Tid = ChildTid;
    E.Value = SpecId;
    return E;
  }
  static Event fault(uint64_t Cycle, uint16_t Pipe, uint64_t FaultKind,
                     uint64_t Tid) {
    Event E;
    E.K = Kind::FaultInjected;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Value = FaultKind;
    E.Tid = Tid;
    return E;
  }
  /// MemHit / MemMiss / MemBackpressure: one memory-hierarchy observation.
  static Event memAccess(Kind K, uint64_t Cycle, uint16_t Pipe, uint16_t Mem,
                         uint64_t Tid, uint64_t Addr) {
    Event E;
    E.K = K;
    E.Cycle = Cycle;
    E.Pipe = Pipe;
    E.Mem = Mem;
    E.Tid = Tid;
    E.Value = Addr;
    return E;
  }
  static Event deadlock(uint64_t Cycle) {
    Event E;
    E.K = Kind::Deadlock;
    E.Cycle = Cycle;
    return E;
  }
};

const char *eventKindName(Event::Kind K);

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_EVENT_H
