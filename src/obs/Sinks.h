//===- Sinks.h - Shipped trace sinks ---------------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sinks shipped with the observability layer:
///
///  * CounterSink  — aggregates the event stream into a `StatsReport`: the
///                   per-stage x per-cause stall attribution matrix plus
///                   per-memory lock traffic and thread accounting.
///  * TimelineSink — a pipeline-occupancy timeline: one character per stage
///                   per cycle (fire / idle / stall cause / kill), rendered
///                   as text for quick visual inspection.
///  * LogSink      — renders every event as one deterministic text line;
///                   the golden-trace tests digest this log.
///
/// The VCD writer lives in VcdWriter.h.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_OBS_SINKS_H
#define PDL_OBS_SINKS_H

#include "obs/StatsReport.h"
#include "obs/TraceSink.h"
#include "support/BinIO.h"

#include <string>
#include <vector>

namespace pdl {
namespace obs {

class CounterSink : public TraceSink {
public:
  void begin(const TraceMeta &Meta) override;
  void event(const Event &E) override;

  /// The aggregated report. Valid any time; final after the run ends.
  const StatsReport &report() const { return R; }

  /// Snapshot support (checkpointed service jobs): serializes the
  /// aggregated report so a resumed run continues counting where the
  /// interrupted one stopped. Uses the StatsReport JSON codec.
  void saveState(support::BinWriter &W) const { W.str(R.toJson(-1)); }
  bool loadState(support::BinReader &Rd) {
    std::string Text = Rd.str();
    if (!Rd.ok())
      return false;
    std::optional<StatsReport> Loaded = StatsReport::fromJson(Text);
    if (!Loaded)
      return false;
    R = std::move(*Loaded);
    return true;
  }

private:
  StatsReport R;
};

class TimelineSink : public TraceSink {
public:
  /// Records at most \p MaxCycles cycles (the timeline is O(stages x
  /// cycles) memory; long runs keep the first window).
  explicit TimelineSink(uint64_t MaxCycles = 4096) : MaxCycles(MaxCycles) {}

  void begin(const TraceMeta &Meta) override;
  void event(const Event &E) override;

  /// One character per stage per cycle:
  ///   '#' fire, '.' idle, 'L' lock, 'S' spec, 'R' response,
  ///   'B' backpressure, 'K' kill.
  static char outcomeChar(StallCause C);

  /// Renders the recorded window as per-pipe stage rows.
  std::string render() const;

private:
  TraceMeta Meta;
  uint64_t MaxCycles;
  uint64_t Recorded = 0;
  /// Rows[pipe][stage] is a string of outcome chars, one per cycle.
  std::vector<std::vector<std::string>> Rows;
};

class LogSink : public TraceSink {
public:
  void begin(const TraceMeta &Meta) override;
  void event(const Event &E) override;

  const std::string &log() const { return Log; }

  /// FNV-1a 64-bit digest of the log text (the golden-trace fingerprint).
  uint64_t digest() const;

  /// Snapshot support: the accumulated log text (Meta is rebuilt by
  /// begin() when the sink re-attaches; it is derived from the System).
  /// A resumed run's final digest covers the full event stream from cycle
  /// 0, byte-identical to an uninterrupted run.
  void saveState(support::BinWriter &W) const { W.str(Log); }
  bool loadState(support::BinReader &R) {
    std::string Text = R.str();
    if (!R.ok())
      return false;
    Log = std::move(Text);
    return true;
  }

private:
  TraceMeta Meta;
  std::string Log;
};

} // namespace obs
} // namespace pdl

#endif // PDL_OBS_SINKS_H
