//===- FormulaContext.h - Formula arena and builders -----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns all Formula nodes and Terms, hash-consing on construction and
/// applying cheap local simplifications (constant folding, flattening,
/// deduplication, complement detection) so client code can build formulas
/// freely without bloating solver input.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SMT_FORMULACONTEXT_H
#define PDL_SMT_FORMULACONTEXT_H

#include "smt/Formula.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace smt {

/// Arena + factory for terms and formulas. The returned Formula pointers are
/// canonical: structural equality implies pointer equality.
class FormulaContext {
public:
  FormulaContext();

  // Terms.
  TermId variable(const std::string &Name);
  TermId constant(uint64_t Value);
  /// A width-sorted bit-vector constant (the tv fragment). Constants of
  /// different widths are distinct terms and never compare equal.
  TermId constant(uint64_t Value, unsigned Width);
  /// An application of function symbol \p Fn to \p Args, hash-consed:
  /// identical (Fn, Args) yields the same TermId.
  TermId apply(const std::string &Fn, std::vector<TermId> Args);
  const Term &term(TermId Id) const { return Terms[Id]; }
  unsigned numTerms() const { return static_cast<unsigned>(Terms.size()); }

  // Formula builders (simplifying).
  const Formula *trueF() const { return TrueF; }
  const Formula *falseF() const { return FalseF; }
  const Formula *boolOf(bool B) const { return B ? TrueF : FalseF; }
  const Formula *boolVar(TermId Var);
  const Formula *eq(TermId Lhs, TermId Rhs);
  const Formula *neq(TermId Lhs, TermId Rhs) { return notF(eq(Lhs, Rhs)); }
  const Formula *notF(const Formula *F);
  const Formula *andF(const Formula *A, const Formula *B);
  const Formula *orF(const Formula *A, const Formula *B);
  const Formula *andF(std::vector<const Formula *> Fs);
  const Formula *orF(std::vector<const Formula *> Fs);
  const Formula *implies(const Formula *A, const Formula *B) {
    return orF(notF(A), B);
  }
  const Formula *iff(const Formula *A, const Formula *B) {
    return andF(implies(A, B), implies(B, A));
  }

private:
  const Formula *intern(std::unique_ptr<Formula> F, const std::string &Key);
  const Formula *makeNary(Formula::Kind K, std::vector<const Formula *> Fs);

  std::vector<Term> Terms;
  std::map<std::string, TermId> VarIds;
  std::map<std::pair<uint64_t, unsigned>, TermId> ConstIds;
  std::map<std::string, TermId> ApplyIds;

  std::vector<std::unique_ptr<Formula>> Nodes;
  /// Structural-key -> canonical node map implementing hash-consing.
  std::map<std::string, const Formula *> Interned;

  const Formula *TrueF;
  const Formula *FalseF;
};

} // namespace smt
} // namespace pdl

#endif // PDL_SMT_FORMULACONTEXT_H
