//===- FormulaContext.cpp - Formula arena and builders --------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/FormulaContext.h"

#include <algorithm>
#include <functional>
#include <sstream>

using namespace pdl;
using namespace pdl::smt;

// Out-of-line virtual anchor.
Formula::~Formula() = default;

/// Builds a structural key unique per canonical node. Operand identity is
/// encoded by pointer value, which is stable because nodes are arena-owned.
static std::string keyFor(Formula::Kind K, const void *A, const void *B) {
  std::ostringstream OS;
  OS << static_cast<int>(K) << ':' << A << ':' << B;
  return OS.str();
}

FormulaContext::FormulaContext() {
  auto T = std::make_unique<ConstFormula>(true);
  auto F = std::make_unique<ConstFormula>(false);
  TrueF = T.get();
  FalseF = F.get();
  Nodes.push_back(std::move(T));
  Nodes.push_back(std::move(F));
}

TermId FormulaContext::variable(const std::string &Name) {
  auto It = VarIds.find(Name);
  if (It != VarIds.end())
    return It->second;
  TermId Id = Terms.size();
  Terms.push_back({Term::Kind::Variable, Name, 0, 0, {}});
  VarIds.emplace(Name, Id);
  return Id;
}

TermId FormulaContext::constant(uint64_t Value) { return constant(Value, 0); }

TermId FormulaContext::constant(uint64_t Value, unsigned Width) {
  auto Key = std::make_pair(Value, Width);
  auto It = ConstIds.find(Key);
  if (It != ConstIds.end())
    return It->second;
  TermId Id = Terms.size();
  Terms.push_back({Term::Kind::Constant, "", Value, Width, {}});
  ConstIds.emplace(Key, Id);
  return Id;
}

TermId FormulaContext::apply(const std::string &Fn, std::vector<TermId> Args) {
  std::string Key = Fn;
  for (TermId A : Args) {
    Key += ',';
    Key += std::to_string(A);
  }
  auto It = ApplyIds.find(Key);
  if (It != ApplyIds.end())
    return It->second;
  TermId Id = Terms.size();
  Terms.push_back({Term::Kind::Apply, Fn, 0, 0, std::move(Args)});
  ApplyIds.emplace(std::move(Key), Id);
  return Id;
}

const Formula *FormulaContext::intern(std::unique_ptr<Formula> F,
                                      const std::string &Key) {
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  const Formula *Raw = F.get();
  Nodes.push_back(std::move(F));
  Interned.emplace(Key, Raw);
  return Raw;
}

const Formula *FormulaContext::boolVar(TermId Var) {
  assert(Terms[Var].TermKind == Term::Kind::Variable &&
         "boolVar requires a variable term");
  std::string Key = "b:" + std::to_string(Var);
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  return intern(std::make_unique<BoolVarFormula>(Var), Key);
}

const Formula *FormulaContext::eq(TermId Lhs, TermId Rhs) {
  if (Lhs == Rhs)
    return TrueF;
  // Distinct constants can never be equal (width is part of the sort: a
  // width-8 five and a width-16 five are different bit vectors).
  const Term &L = Terms[Lhs], &R = Terms[Rhs];
  if (L.TermKind == Term::Kind::Constant && R.TermKind == Term::Kind::Constant)
    return L.Value == R.Value && L.Width == R.Width ? TrueF : FalseF;
  if (Lhs > Rhs)
    std::swap(Lhs, Rhs);
  std::string Key = "e:" + std::to_string(Lhs) + ":" + std::to_string(Rhs);
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  return intern(std::make_unique<EqFormula>(Lhs, Rhs), Key);
}

const Formula *FormulaContext::notF(const Formula *F) {
  if (F == TrueF)
    return FalseF;
  if (F == FalseF)
    return TrueF;
  if (const auto *N = dyn_cast<NotFormula>(F))
    return N->operand();
  return intern(std::make_unique<NotFormula>(F),
                keyFor(Formula::Kind::Not, F, nullptr));
}

const Formula *FormulaContext::makeNary(Formula::Kind K,
                                        std::vector<const Formula *> Fs) {
  const Formula *Unit = K == Formula::Kind::And ? TrueF : FalseF;
  const Formula *Zero = K == Formula::Kind::And ? FalseF : TrueF;

  // Flatten nested nodes of the same kind and drop units.
  std::vector<const Formula *> Flat;
  for (const Formula *F : Fs) {
    if (F == Unit)
      continue;
    if (F == Zero)
      return Zero;
    if (const auto *N = dyn_cast<NaryFormula>(F); N && N->kind() == K) {
      for (const Formula *Op : N->operands())
        Flat.push_back(Op);
      continue;
    }
    Flat.push_back(F);
  }
  std::sort(Flat.begin(), Flat.end());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());

  // x AND NOT x => false; x OR NOT x => true.
  for (const Formula *F : Flat) {
    const auto *N = dyn_cast<NotFormula>(F);
    if (N && std::binary_search(Flat.begin(), Flat.end(), N->operand()))
      return Zero;
  }

  if (Flat.empty())
    return Unit;
  if (Flat.size() == 1)
    return Flat.front();

  std::ostringstream OS;
  OS << static_cast<int>(K);
  for (const Formula *F : Flat)
    OS << ':' << F;
  return intern(std::make_unique<NaryFormula>(K, std::move(Flat)), OS.str());
}

const Formula *FormulaContext::andF(const Formula *A, const Formula *B) {
  return makeNary(Formula::Kind::And, {A, B});
}

const Formula *FormulaContext::orF(const Formula *A, const Formula *B) {
  return makeNary(Formula::Kind::Or, {A, B});
}

const Formula *FormulaContext::andF(std::vector<const Formula *> Fs) {
  return makeNary(Formula::Kind::And, std::move(Fs));
}

const Formula *FormulaContext::orF(std::vector<const Formula *> Fs) {
  return makeNary(Formula::Kind::Or, std::move(Fs));
}

std::string Formula::str(const FormulaContext &Ctx) const {
  std::function<std::string(TermId)> TermStr = [&](TermId Id) -> std::string {
    const Term &T = Ctx.term(Id);
    switch (T.TermKind) {
    case Term::Kind::Variable:
      return T.Name;
    case Term::Kind::Constant:
      return T.Width ? std::to_string(T.Width) + "'d" + std::to_string(T.Value)
                     : std::to_string(T.Value);
    case Term::Kind::Apply: {
      std::string Out = T.Name + "(";
      for (unsigned I = 0, E = T.Args.size(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += TermStr(T.Args[I]);
      }
      return Out + ")";
    }
    }
    return "<?>";
  };
  switch (FKind) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::BoolVar:
    return TermStr(cast<BoolVarFormula>(this)->var());
  case Kind::Eq: {
    const auto *E = cast<EqFormula>(this);
    return TermStr(E->lhs()) + " == " + TermStr(E->rhs());
  }
  case Kind::Not:
    return "!(" + cast<NotFormula>(this)->operand()->str(Ctx) + ")";
  case Kind::And:
  case Kind::Or: {
    const auto *N = cast<NaryFormula>(this);
    std::string Sep = FKind == Kind::And ? " && " : " || ";
    std::string Out = "(";
    for (unsigned I = 0, E = N->operands().size(); I != E; ++I) {
      if (I)
        Out += Sep;
      Out += N->operands()[I]->str(Ctx);
    }
    return Out + ")";
  }
  }
  return "<?>";
}
