//===- Solver.h - DPLL(T) satisfiability/validity solver -------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small DPLL(T) solver standing in for Z3 in the PDL compiler (Figure 4).
/// The propositional skeleton is solved with Tseitin CNF conversion + DPLL
/// with unit propagation; equality atoms are checked against a union-find
/// theory of uninterpreted variables and integer constants, with theory
/// conflicts fed back as blocking clauses.
///
/// The fragment (booleans + variable/constant equalities) matches the
/// abstraction the paper's compiler uses for branch conditions, so the
/// solver is complete for every query the checkers pose.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SMT_SOLVER_H
#define PDL_SMT_SOLVER_H

#include "smt/FormulaContext.h"

#include <vector>

namespace pdl {
namespace smt {

/// Decides satisfiability and validity of formulas built in a
/// FormulaContext. Stateless between queries apart from statistics.
class Solver {
public:
  explicit Solver(FormulaContext &Ctx) : Ctx(Ctx) {}

  /// True if some assignment to boolean atoms and term values satisfies \p F.
  bool isSatisfiable(const Formula *F);

  /// True if \p F holds under every assignment.
  bool isValid(const Formula *F) { return !isSatisfiable(Ctx.notF(F)); }

  /// True if \p Assumption entails \p Goal.
  bool proves(const Formula *Assumption, const Formula *Goal) {
    return isValid(Ctx.implies(Assumption, Goal));
  }

  /// Number of top-level satisfiability queries answered so far.
  unsigned queryCount() const { return NumQueries; }

  /// Total DPLL decisions across all queries (for the compile-cost bench).
  unsigned decisionCount() const { return NumDecisions; }

private:
  FormulaContext &Ctx;
  unsigned NumQueries = 0;
  unsigned NumDecisions = 0;
};

} // namespace smt
} // namespace pdl

#endif // PDL_SMT_SOLVER_H
