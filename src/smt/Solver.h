//===- Solver.h - DPLL(T) satisfiability/validity solver -------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small DPLL(T) solver standing in for Z3 in the PDL compiler (Figure 4).
/// The propositional skeleton is solved with Tseitin CNF conversion + DPLL
/// with unit propagation; equality atoms are checked against a congruence
/// closure over variables, width-sorted constants, and function
/// applications, with theory conflicts fed back as blocking clauses.
///
/// Interpreted function symbols ("add:32", "slice:5:196608", ... — see
/// groundEval) are evaluated when all arguments are known constants, which
/// gives the translation validator (src/tv/) real bit-vector reasoning on
/// the ground fragment. Symbols the evaluator does not know stay
/// uninterpreted: congruence still applies, and any resulting
/// over-approximation of satisfiability only ever weakens validity answers
/// from "proved" to "not proved" — never the reverse.
///
/// The original fragment (booleans + variable/constant equalities) matches
/// the abstraction the paper's compiler uses for branch conditions, so the
/// solver remains complete for every query the front-end checkers pose.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SMT_SOLVER_H
#define PDL_SMT_SOLVER_H

#include "smt/FormulaContext.h"
#include "support/Bits.h"

#include <optional>
#include <vector>

namespace pdl {
namespace smt {

/// Evaluates the interpreted function symbol \p Fn over constant bit-vector
/// arguments. The symbol grammar is "name:resultwidth[:imm]"; known names
/// cover the bytecode opcode vocabulary (add, sub, mul, udiv, sdiv, urem,
/// srem, and, or, xor, shl, lshr, ashr, eq, ne, ult, ule, slt, sle, logand,
/// logor, lognot, bitnot, neg, slice, zext, sext, concat, ite). Returns
/// std::nullopt for unknown symbols, arity mismatches, or width
/// preconditions the Bits domain would assert on — callers must treat such
/// applications as uninterpreted.
std::optional<Bits> groundEval(const std::string &Fn,
                               const std::vector<Bits> &Args);

/// Decides satisfiability and validity of formulas built in a
/// FormulaContext. Stateless between queries apart from statistics.
class Solver {
public:
  explicit Solver(FormulaContext &Ctx) : Ctx(Ctx) {}

  /// True if some assignment to boolean atoms and term values satisfies \p F.
  bool isSatisfiable(const Formula *F);

  /// True if \p F holds under every assignment.
  bool isValid(const Formula *F) { return !isSatisfiable(Ctx.notF(F)); }

  /// True if \p Assumption entails \p Goal.
  bool proves(const Formula *Assumption, const Formula *Goal) {
    return isValid(Ctx.implies(Assumption, Goal));
  }

  /// Number of top-level satisfiability queries answered so far.
  unsigned queryCount() const { return NumQueries; }

  /// Total DPLL decisions across all queries (for the compile-cost bench).
  unsigned decisionCount() const { return NumDecisions; }

private:
  FormulaContext &Ctx;
  unsigned NumQueries = 0;
  unsigned NumDecisions = 0;
};

} // namespace smt
} // namespace pdl

#endif // PDL_SMT_SOLVER_H
