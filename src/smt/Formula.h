//===- Formula.h - Propositional + equality formulas -----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formula representation for the PDL compiler's path-sensitive checks
/// (Section 4.3 of the paper). The fragment is deliberately small: boolean
/// program variables, equalities between program variables and constants,
/// and the propositional connectives. This is exactly the abstraction the
/// paper asks designers to stay within ("simplify branch conditions into
/// booleans or comparisons between variables") and it is decided by the
/// DPLL(T) solver in Solver.h, standing in for Z3.
///
/// Formulas are hash-consed: structurally equal formulas are pointer-equal.
/// All nodes are owned by a FormulaContext and live as long as it does.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SMT_FORMULA_H
#define PDL_SMT_FORMULA_H

#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pdl {
namespace smt {

/// A first-order term: an interned program variable, an integer constant,
/// or an application of a named function symbol to other terms. Terms are
/// identified by a small integer handle.
///
/// Applications carry the bit-vector vocabulary the translation validator
/// (src/tv/) needs: the symbol is an opcode spelling like "add:32" or
/// "slice:5:393216" ("name:resultwidth[:imm]"). The solver's theory layer
/// ground-evaluates known symbols over constant arguments and treats
/// everything else as uninterpreted (congruence only), which is sound for
/// validity queries: an uninterpreted symbol can only make the solver say
/// "not proved", never "proved" incorrectly.
struct Term {
  enum class Kind { Variable, Constant, Apply };
  Kind TermKind;
  /// Variable name for variables; function symbol for applications; empty
  /// for constants.
  std::string Name;
  /// Constant value for constants.
  uint64_t Value = 0;
  /// Bit width of a constant; 0 means "unsorted" (the legacy front-end
  /// fragment, where constants are plain integers). Two constants are equal
  /// iff both value and width match.
  unsigned Width = 0;
  /// Argument terms for applications.
  std::vector<unsigned> Args;
};

using TermId = unsigned;

class FormulaContext;

/// Base class for hash-consed formula nodes.
class Formula {
public:
  enum class Kind { True, False, BoolVar, Eq, Not, And, Or };

  Kind kind() const { return FKind; }

  /// Prints a human-readable rendering (for diagnostics and tests).
  std::string str(const FormulaContext &Ctx) const;

  virtual ~Formula();

protected:
  explicit Formula(Kind K) : FKind(K) {}

private:
  Kind FKind;
};

/// The constants `true` / `false`.
class ConstFormula : public Formula {
public:
  explicit ConstFormula(bool Value)
      : Formula(Value ? Kind::True : Kind::False) {}

  bool value() const { return kind() == Kind::True; }

  static bool classof(const Formula *F) {
    return F->kind() == Kind::True || F->kind() == Kind::False;
  }
};

/// A boolean program variable used as an atom.
class BoolVarFormula : public Formula {
public:
  explicit BoolVarFormula(TermId Var) : Formula(Kind::BoolVar), Var(Var) {}

  TermId var() const { return Var; }

  static bool classof(const Formula *F) { return F->kind() == Kind::BoolVar; }

private:
  TermId Var;
};

/// Equality between two terms. Operands are stored in canonical (sorted)
/// order so Eq(a,b) and Eq(b,a) hash-cons to the same node.
class EqFormula : public Formula {
public:
  EqFormula(TermId Lhs, TermId Rhs) : Formula(Kind::Eq), Lhs(Lhs), Rhs(Rhs) {}

  TermId lhs() const { return Lhs; }
  TermId rhs() const { return Rhs; }

  static bool classof(const Formula *F) { return F->kind() == Kind::Eq; }

private:
  TermId Lhs, Rhs;
};

/// Logical negation.
class NotFormula : public Formula {
public:
  explicit NotFormula(const Formula *Operand)
      : Formula(Kind::Not), Operand(Operand) {}

  const Formula *operand() const { return Operand; }

  static bool classof(const Formula *F) { return F->kind() == Kind::Not; }

private:
  const Formula *Operand;
};

/// N-ary conjunction or disjunction (operands deduplicated and sorted).
class NaryFormula : public Formula {
public:
  NaryFormula(Kind K, std::vector<const Formula *> Operands)
      : Formula(K), Operands(std::move(Operands)) {
    assert((kind() == Kind::And || kind() == Kind::Or) && "bad n-ary kind");
  }

  const std::vector<const Formula *> &operands() const { return Operands; }

  static bool classof(const Formula *F) {
    return F->kind() == Kind::And || F->kind() == Kind::Or;
  }

private:
  std::vector<const Formula *> Operands;
};

} // namespace smt
} // namespace pdl

#endif // PDL_SMT_FORMULA_H
