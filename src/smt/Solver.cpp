//===- Solver.cpp - DPLL(T) satisfiability/validity solver ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>

using namespace pdl;
using namespace pdl::smt;

namespace {

/// Literal encoding: variable index V (1-based) becomes +V / -V.
using Lit = int;
using Clause = std::vector<Lit>;

/// Tseitin transformation: every distinct subformula gets a SAT variable;
/// clauses constrain each gate variable to equal its definition. Atom
/// variables (BoolVar / Eq) are recorded so the theory checker can interpret
/// them.
class CnfBuilder {
public:
  explicit CnfBuilder(const FormulaContext &Ctx) : Ctx(Ctx) {}

  /// Converts \p F, returning the literal representing it. Clauses accumulate
  /// in clauses().
  Lit convert(const Formula *F) {
    auto It = Cache.find(F);
    if (It != Cache.end())
      return It->second;
    Lit Result = convertUncached(F);
    Cache.emplace(F, Result);
    return Result;
  }

  std::vector<Clause> &clauses() { return Clauses; }
  unsigned numVars() const { return NumVars; }

  /// Eq atoms by SAT variable: (lhs term, rhs term), or {~0,~0} for non-Eq.
  struct AtomInfo {
    bool IsEq = false;
    TermId Lhs = 0, Rhs = 0;
  };
  const std::vector<AtomInfo> &atoms() const { return Atoms; }

private:
  Lit freshVar() {
    Atoms.push_back({});
    return static_cast<Lit>(++NumVars);
  }

  Lit convertUncached(const Formula *F) {
    switch (F->kind()) {
    case Formula::Kind::True: {
      Lit V = freshVar();
      Clauses.push_back({V});
      return V;
    }
    case Formula::Kind::False: {
      Lit V = freshVar();
      Clauses.push_back({-V});
      return V;
    }
    case Formula::Kind::BoolVar:
      return freshVar();
    case Formula::Kind::Eq: {
      const auto *E = cast<EqFormula>(F);
      Lit V = freshVar();
      Atoms[V - 1] = {true, E->lhs(), E->rhs()};
      return V;
    }
    case Formula::Kind::Not:
      return -convert(cast<NotFormula>(F)->operand());
    case Formula::Kind::And:
    case Formula::Kind::Or: {
      const auto *N = cast<NaryFormula>(F);
      std::vector<Lit> Ops;
      for (const Formula *Op : N->operands())
        Ops.push_back(convert(Op));
      Lit V = freshVar();
      bool IsAnd = F->kind() == Formula::Kind::And;
      // AND: V -> op_i for all i; (op_1 & ... & op_n) -> V.
      // OR is the dual.
      Clause Long;
      Long.push_back(IsAnd ? V : -V);
      for (Lit Op : Ops) {
        Clauses.push_back({IsAnd ? -V : V, IsAnd ? Op : -Op});
        Long.push_back(IsAnd ? -Op : Op);
      }
      Clauses.push_back(std::move(Long));
      return V;
    }
    }
    assert(false && "unknown formula kind");
    return 0;
  }

  const FormulaContext &Ctx;
  std::map<const Formula *, Lit> Cache;
  std::vector<Clause> Clauses;
  std::vector<AtomInfo> Atoms;
  unsigned NumVars = 0;
};

/// Straightforward DPLL over the Tseitin CNF with a union-find equality
/// theory consulted at full assignments.
class Dpll {
public:
  Dpll(const FormulaContext &Ctx, CnfBuilder &Cnf, unsigned &DecisionCounter)
      : Ctx(Ctx), Cnf(Cnf), NumDecisions(DecisionCounter) {}

  bool solve() {
    std::vector<int8_t> Assignment(Cnf.numVars(), -1);
    return search(Assignment);
  }

private:
  /// Unit-propagates in place. Returns false on an empty clause.
  bool propagate(std::vector<int8_t> &A) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Clause &C : Cnf.clauses()) {
        Lit Unit = 0;
        bool Satisfied = false;
        unsigned Unassigned = 0;
        for (Lit L : C) {
          unsigned V = std::abs(L) - 1;
          if (A[V] == -1) {
            ++Unassigned;
            Unit = L;
          } else if (A[V] == (L > 0 ? 1 : 0)) {
            Satisfied = true;
            break;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0)
          return false;
        if (Unassigned == 1) {
          A[std::abs(Unit) - 1] = Unit > 0 ? 1 : 0;
          Changed = true;
        }
      }
    }
    return true;
  }

  bool search(std::vector<int8_t> A) {
    if (!propagate(A))
      return false;
    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      if (A[V] != -1)
        continue;
      ++NumDecisions;
      for (int8_t Try : {int8_t(1), int8_t(0)}) {
        std::vector<int8_t> Next = A;
        Next[V] = Try;
        if (search(std::move(Next)))
          return true;
      }
      return false;
    }
    // Full assignment: consult the equality theory.
    if (theoryConsistent(A))
      return true;
    // Block this combination of equality-atom values and keep searching.
    Clause Blocking;
    for (unsigned V = 0, E = A.size(); V != E; ++V)
      if (Cnf.atoms()[V].IsEq)
        Blocking.push_back(A[V] ? -(Lit)(V + 1) : (Lit)(V + 1));
    assert(!Blocking.empty() && "theory conflict without equality atoms");
    Cnf.clauses().push_back(std::move(Blocking));
    std::vector<int8_t> Fresh(Cnf.numVars(), -1);
    return search(std::move(Fresh));
  }

  /// Union-find over terms: merge classes for true equalities; reject if a
  /// class acquires two distinct constants or a false equality's operands
  /// are in one class. Complete for equality over variables and constants.
  bool theoryConsistent(const std::vector<int8_t> &A) {
    unsigned NumTerms = 0;
    for (unsigned V = 0, E = A.size(); V != E; ++V)
      if (Cnf.atoms()[V].IsEq)
        NumTerms = std::max(
            {NumTerms, Cnf.atoms()[V].Lhs + 1, Cnf.atoms()[V].Rhs + 1});
    if (NumTerms == 0)
      return true;

    std::vector<unsigned> Parent(NumTerms);
    std::iota(Parent.begin(), Parent.end(), 0u);
    auto Find = [&](unsigned X) {
      while (Parent[X] != X)
        X = Parent[X] = Parent[Parent[X]];
      return X;
    };

    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      const auto &Atom = Cnf.atoms()[V];
      if (Atom.IsEq && A[V] == 1)
        Parent[Find(Atom.Lhs)] = Find(Atom.Rhs);
    }

    // A class may contain at most one constant value.
    std::map<unsigned, uint64_t> ClassConst;
    for (unsigned T = 0; T != NumTerms; ++T) {
      if (Ctx.term(T).TermKind != Term::Kind::Constant)
        continue;
      unsigned Root = Find(T);
      auto It = ClassConst.find(Root);
      if (It != ClassConst.end() && It->second != Ctx.term(T).Value)
        return false;
      ClassConst.emplace(Root, Ctx.term(T).Value);
    }

    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      const auto &Atom = Cnf.atoms()[V];
      if (Atom.IsEq && A[V] == 0 && Find(Atom.Lhs) == Find(Atom.Rhs))
        return false;
    }
    return true;
  }

  const FormulaContext &Ctx;
  CnfBuilder &Cnf;
  unsigned &NumDecisions;
};

} // namespace

bool Solver::isSatisfiable(const Formula *F) {
  ++NumQueries;
  if (F->kind() == Formula::Kind::True)
    return true;
  if (F->kind() == Formula::Kind::False)
    return false;

  CnfBuilder Cnf(Ctx);
  Lit Root = Cnf.convert(F);
  Cnf.clauses().push_back({Root});
  Dpll Engine(Ctx, Cnf, NumDecisions);
  return Engine.solve();
}
