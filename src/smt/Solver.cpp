//===- Solver.cpp - DPLL(T) satisfiability/validity solver ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>

using namespace pdl;
using namespace pdl::smt;

std::optional<Bits> smt::groundEval(const std::string &Fn,
                                    const std::vector<Bits> &Args) {
  // Parse "name:resultwidth[:imm]".
  size_t Colon = Fn.find(':');
  if (Colon == std::string::npos)
    return std::nullopt;
  std::string Name = Fn.substr(0, Colon);
  const char *S = Fn.c_str() + Colon + 1;
  char *End = nullptr;
  unsigned long WL = std::strtoul(S, &End, 10);
  if (End == S || WL < 1 || WL > 64)
    return std::nullopt;
  unsigned W = static_cast<unsigned>(WL);
  uint32_t Imm = 0;
  bool HasImm = false;
  if (*End == ':') {
    const char *S2 = End + 1;
    unsigned long IL = std::strtoul(S2, &End, 10);
    if (End == S2 || *End != '\0')
      return std::nullopt;
    Imm = static_cast<uint32_t>(IL);
    HasImm = true;
  } else if (*End != '\0') {
    return std::nullopt;
  }
  if (HasImm && Name != "slice")
    return std::nullopt;

  const Bits *A0 = Args.size() > 0 ? &Args[0] : nullptr;
  const Bits *A1 = Args.size() > 1 ? &Args[1] : nullptr;

  // Width-preserving binary ops over same-width operands.
  if (Name == "add" || Name == "sub" || Name == "mul" || Name == "udiv" ||
      Name == "sdiv" || Name == "urem" || Name == "srem" || Name == "and" ||
      Name == "or" || Name == "xor") {
    if (Args.size() != 2 || A0->width() != A1->width() || A0->width() != W)
      return std::nullopt;
    if (Name == "add")
      return A0->add(*A1);
    if (Name == "sub")
      return A0->sub(*A1);
    if (Name == "mul")
      return A0->mul(*A1);
    if (Name == "udiv")
      return A0->udiv(*A1);
    if (Name == "sdiv")
      return A0->sdiv(*A1);
    if (Name == "urem")
      return A0->urem(*A1);
    if (Name == "srem")
      return A0->srem(*A1);
    if (Name == "and")
      return A0->and_(*A1);
    if (Name == "or")
      return A0->or_(*A1);
    return A0->xor_(*A1);
  }
  // Shifts: the amount's width is unconstrained in the Bits domain.
  if (Name == "shl" || Name == "lshr" || Name == "ashr") {
    if (Args.size() != 2 || A0->width() != W)
      return std::nullopt;
    if (Name == "shl")
      return A0->shl(*A1);
    if (Name == "lshr")
      return A0->lshr(*A1);
    return A0->ashr(*A1);
  }
  // Comparisons: 1-bit results over same-width operands.
  if (Name == "eq" || Name == "ne" || Name == "ult" || Name == "ule" ||
      Name == "slt" || Name == "sle") {
    if (Args.size() != 2 || A0->width() != A1->width() || W != 1)
      return std::nullopt;
    if (Name == "eq")
      return A0->eq(*A1);
    if (Name == "ne")
      return A0->ne(*A1);
    if (Name == "ult")
      return A0->ult(*A1);
    if (Name == "ule")
      return A0->ule(*A1);
    if (Name == "slt")
      return A0->slt(*A1);
    return A0->sle(*A1);
  }
  // Eager boolean connectives accept any operand widths.
  if (Name == "logand" || Name == "logor") {
    if (Args.size() != 2 || W != 1)
      return std::nullopt;
    bool B = Name == "logand" ? (A0->toBool() && A1->toBool())
                              : (A0->toBool() || A1->toBool());
    return Bits(B ? 1 : 0, 1);
  }
  if (Name == "lognot") {
    if (Args.size() != 1 || W != 1)
      return std::nullopt;
    return Bits(A0->isZero() ? 1 : 0, 1);
  }
  if (Name == "bitnot") {
    if (Args.size() != 1 || A0->width() != W)
      return std::nullopt;
    return A0->not_();
  }
  if (Name == "neg") {
    if (Args.size() != 1 || A0->width() != W)
      return std::nullopt;
    return Bits(0, W).sub(*A0);
  }
  if (Name == "slice") {
    unsigned Hi = Imm >> 16, Lo = Imm & 0xffff;
    if (Args.size() != 1 || !HasImm || Hi < Lo || Hi >= A0->width() ||
        W != Hi - Lo + 1)
      return std::nullopt;
    return A0->slice(Hi, Lo);
  }
  if (Name == "zext" || Name == "sext") {
    if (Args.size() != 1)
      return std::nullopt;
    return Name == "zext" ? A0->zextTo(W) : A0->sextTo(W);
  }
  if (Name == "concat") {
    if (Args.size() != 2 || W != A0->width() + A1->width())
      return std::nullopt;
    return A0->concat(*A1);
  }
  if (Name == "ite") {
    if (Args.size() != 3 || Args[1].width() != W || Args[2].width() != W)
      return std::nullopt;
    return A0->toBool() ? Args[1] : Args[2];
  }
  return std::nullopt;
}

namespace {

/// Literal encoding: variable index V (1-based) becomes +V / -V.
using Lit = int;
using Clause = std::vector<Lit>;

/// Tseitin transformation: every distinct subformula gets a SAT variable;
/// clauses constrain each gate variable to equal its definition. Atom
/// variables (BoolVar / Eq) are recorded so the theory checker can interpret
/// them.
class CnfBuilder {
public:
  explicit CnfBuilder(const FormulaContext &Ctx) : Ctx(Ctx) {}

  /// Converts \p F, returning the literal representing it. Clauses accumulate
  /// in clauses().
  Lit convert(const Formula *F) {
    auto It = Cache.find(F);
    if (It != Cache.end())
      return It->second;
    Lit Result = convertUncached(F);
    Cache.emplace(F, Result);
    return Result;
  }

  std::vector<Clause> &clauses() { return Clauses; }
  unsigned numVars() const { return NumVars; }

  /// Eq atoms by SAT variable: (lhs term, rhs term), or {~0,~0} for non-Eq.
  struct AtomInfo {
    bool IsEq = false;
    TermId Lhs = 0, Rhs = 0;
  };
  const std::vector<AtomInfo> &atoms() const { return Atoms; }

private:
  Lit freshVar() {
    Atoms.push_back({});
    return static_cast<Lit>(++NumVars);
  }

  Lit convertUncached(const Formula *F) {
    switch (F->kind()) {
    case Formula::Kind::True: {
      Lit V = freshVar();
      Clauses.push_back({V});
      return V;
    }
    case Formula::Kind::False: {
      Lit V = freshVar();
      Clauses.push_back({-V});
      return V;
    }
    case Formula::Kind::BoolVar:
      return freshVar();
    case Formula::Kind::Eq: {
      const auto *E = cast<EqFormula>(F);
      Lit V = freshVar();
      Atoms[V - 1] = {true, E->lhs(), E->rhs()};
      return V;
    }
    case Formula::Kind::Not:
      return -convert(cast<NotFormula>(F)->operand());
    case Formula::Kind::And:
    case Formula::Kind::Or: {
      const auto *N = cast<NaryFormula>(F);
      std::vector<Lit> Ops;
      for (const Formula *Op : N->operands())
        Ops.push_back(convert(Op));
      Lit V = freshVar();
      bool IsAnd = F->kind() == Formula::Kind::And;
      // AND: V -> op_i for all i; (op_1 & ... & op_n) -> V.
      // OR is the dual.
      Clause Long;
      Long.push_back(IsAnd ? V : -V);
      for (Lit Op : Ops) {
        Clauses.push_back({IsAnd ? -V : V, IsAnd ? Op : -Op});
        Long.push_back(IsAnd ? -Op : Op);
      }
      Clauses.push_back(std::move(Long));
      return V;
    }
    }
    assert(false && "unknown formula kind");
    return 0;
  }

  const FormulaContext &Ctx;
  std::map<const Formula *, Lit> Cache;
  std::vector<Clause> Clauses;
  std::vector<AtomInfo> Atoms;
  unsigned NumVars = 0;
};

/// Straightforward DPLL over the Tseitin CNF with a union-find equality
/// theory consulted at full assignments.
class Dpll {
public:
  Dpll(const FormulaContext &Ctx, CnfBuilder &Cnf, unsigned &DecisionCounter)
      : Ctx(Ctx), Cnf(Cnf), NumDecisions(DecisionCounter) {}

  bool solve() {
    std::vector<int8_t> Assignment(Cnf.numVars(), -1);
    return search(Assignment);
  }

private:
  /// Unit-propagates in place. Returns false on an empty clause.
  bool propagate(std::vector<int8_t> &A) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Clause &C : Cnf.clauses()) {
        Lit Unit = 0;
        bool Satisfied = false;
        unsigned Unassigned = 0;
        for (Lit L : C) {
          unsigned V = std::abs(L) - 1;
          if (A[V] == -1) {
            ++Unassigned;
            Unit = L;
          } else if (A[V] == (L > 0 ? 1 : 0)) {
            Satisfied = true;
            break;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0)
          return false;
        if (Unassigned == 1) {
          A[std::abs(Unit) - 1] = Unit > 0 ? 1 : 0;
          Changed = true;
        }
      }
    }
    return true;
  }

  bool search(std::vector<int8_t> A) {
    if (!propagate(A))
      return false;
    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      if (A[V] != -1)
        continue;
      ++NumDecisions;
      for (int8_t Try : {int8_t(1), int8_t(0)}) {
        std::vector<int8_t> Next = A;
        Next[V] = Try;
        if (search(std::move(Next)))
          return true;
      }
      return false;
    }
    // Full assignment: consult the equality theory.
    if (theoryConsistent(A))
      return true;
    // Block this combination of equality-atom values and keep searching.
    Clause Blocking;
    for (unsigned V = 0, E = A.size(); V != E; ++V)
      if (Cnf.atoms()[V].IsEq)
        Blocking.push_back(A[V] ? -(Lit)(V + 1) : (Lit)(V + 1));
    if (Blocking.empty())
      // The conflict holds under every equality-atom valuation, so the
      // formula has no model at all.
      return false;
    Cnf.clauses().push_back(std::move(Blocking));
    std::vector<int8_t> Fresh(Cnf.numVars(), -1);
    return search(std::move(Fresh));
  }

  /// Congruence closure over every term in the context: merge classes for
  /// true equalities, propagate known constant values, merge congruent
  /// applications of the same symbol, and ground-evaluate interpreted
  /// symbols whose arguments all have known values. Reject if a class
  /// acquires two distinct values or a false equality's operands end up in
  /// one class (or in classes with the same known value). Complete for the
  /// front-end's variable/constant fragment; sound (SAT may be
  /// over-approximated, never UNSAT) for the tv bit-vector fragment.
  bool theoryConsistent(const std::vector<int8_t> &A) {
    bool AnyEq = false;
    for (unsigned V = 0, E = A.size(); V != E; ++V)
      if (Cnf.atoms()[V].IsEq)
        AnyEq = true;
    if (!AnyEq)
      return true;
    const unsigned NumTerms = Ctx.numTerms();
    if (NumTerms == 0)
      return true;

    std::vector<unsigned> Parent(NumTerms);
    std::iota(Parent.begin(), Parent.end(), 0u);
    auto Find = [&](unsigned X) {
      while (Parent[X] != X)
        X = Parent[X] = Parent[Parent[X]];
      return X;
    };

    // Per-class known (value, width); width 0 is the legacy unsorted
    // constant fragment.
    std::vector<char> HasVal(NumTerms, 0);
    std::vector<std::pair<uint64_t, unsigned>> Val(NumTerms);
    auto Unite = [&](unsigned X, unsigned Y) {
      X = Find(X);
      Y = Find(Y);
      if (X == Y)
        return true;
      Parent[X] = Y;
      if (HasVal[X]) {
        if (HasVal[Y] && Val[Y] != Val[X])
          return false;
        HasVal[Y] = 1;
        Val[Y] = Val[X];
      }
      return true;
    };

    std::vector<unsigned> Applies;
    for (unsigned T = 0; T != NumTerms; ++T) {
      const Term &TT = Ctx.term(T);
      if (TT.TermKind == Term::Kind::Apply)
        Applies.push_back(T);
      else if (TT.TermKind == Term::Kind::Constant) {
        HasVal[T] = 1;
        Val[T] = {TT.Value, TT.Width};
      }
    }

    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      const auto &Atom = Cnf.atoms()[V];
      if (Atom.IsEq && A[V] == 1 && !Unite(Atom.Lhs, Atom.Rhs))
        return false;
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned T : Applies) {
        const Term &TT = Ctx.term(T);
        // "ite" selects an arm as soon as its condition is known, even if
        // the arms themselves are not.
        if (TT.Name.compare(0, 4, "ite:") == 0 && TT.Args.size() == 3) {
          unsigned CR = Find(TT.Args[0]);
          if (HasVal[CR]) {
            unsigned Arm = TT.Args[Val[CR].first != 0 ? 1 : 2];
            if (Find(T) != Find(Arm)) {
              if (!Unite(T, Arm))
                return false;
              Changed = true;
            }
            continue;
          }
        }
        // Ground evaluation of interpreted symbols.
        std::vector<Bits> ArgVals;
        bool AllKnown = true;
        for (unsigned Arg : TT.Args) {
          unsigned R = Find(Arg);
          if (!HasVal[R] || Val[R].second < 1 || Val[R].second > 64) {
            AllKnown = false;
            break;
          }
          ArgVals.emplace_back(Val[R].first, Val[R].second);
        }
        if (AllKnown && !TT.Args.empty()) {
          if (std::optional<Bits> Res = groundEval(TT.Name, ArgVals)) {
            unsigned R = Find(T);
            std::pair<uint64_t, unsigned> RV{Res->zext(), Res->width()};
            if (HasVal[R]) {
              if (Val[R] != RV)
                return false;
            } else {
              HasVal[R] = 1;
              Val[R] = RV;
              Changed = true;
            }
          }
        }
        // Congruence: f(a...) == f(b...) when the arguments are pairwise
        // merged.
        for (unsigned U : Applies) {
          if (U <= T)
            continue;
          const Term &UT = Ctx.term(U);
          if (UT.Name != TT.Name || UT.Args.size() != TT.Args.size() ||
              Find(T) == Find(U))
            continue;
          bool ArgsEq = true;
          for (size_t I = 0, N = TT.Args.size(); I != N; ++I)
            if (Find(TT.Args[I]) != Find(UT.Args[I])) {
              ArgsEq = false;
              break;
            }
          if (!ArgsEq)
            continue;
          if (!Unite(T, U))
            return false;
          Changed = true;
        }
      }
    }

    for (unsigned V = 0, E = A.size(); V != E; ++V) {
      const auto &Atom = Cnf.atoms()[V];
      if (!Atom.IsEq || A[V] != 0)
        continue;
      unsigned L = Find(Atom.Lhs), R = Find(Atom.Rhs);
      if (L == R)
        return false;
      // Two classes pinned to the same bit-vector value denote one value;
      // a disequality between them has no model.
      if (HasVal[L] && HasVal[R] && Val[L] == Val[R])
        return false;
    }
    return true;
  }

  const FormulaContext &Ctx;
  CnfBuilder &Cnf;
  unsigned &NumDecisions;
};

} // namespace

bool Solver::isSatisfiable(const Formula *F) {
  ++NumQueries;
  if (F->kind() == Formula::Kind::True)
    return true;
  if (F->kind() == Formula::Kind::False)
    return false;

  CnfBuilder Cnf(Ctx);
  Lit Root = Cnf.convert(F);
  Cnf.clauses().push_back({Root});
  Dpll Engine(Ctx, Cnf, NumDecisions);
  return Engine.solve();
}
