//===- SpecTable.h - Speculation tracking table ----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculation-state table of Section 2.4: a circular buffer of entries
/// allocated by speculative calls. verify/update mark entries correct or
/// mispredicted; marking one entry mispredicted cascades to all newer
/// entries (their threads descend from the killed child). Child threads
/// poll their entry via spec_check / spec_barrier and free it once their
/// status is known. Status updates are combinationally visible to polls in
/// the same cycle because the executor runs deeper stages first.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_SPECTABLE_H
#define PDL_HW_SPECTABLE_H

#include "support/BinIO.h"
#include "support/Bits.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

namespace pdl {
namespace hw {

enum class SpecStatus { Pending, Correct, Mispredicted };

using SpecId = uint64_t;

class SpecTable {
public:
  /// Observability hook: called whenever an entry's status resolves away
  /// from Pending — once per entry, including entries mispredicted by
  /// cascade. Null by default; the executor wires it to the trace bus.
  using Observer = std::function<void(SpecId, SpecStatus)>;

  explicit SpecTable(unsigned Capacity = 8) : Capacity(Capacity) {}

  void setObserver(Observer O) { Obs = std::move(O); }

  bool canAlloc() const { return Entries.size() < Capacity; }

  /// Allocates an entry for a child spawned with prediction \p Prediction.
  SpecId alloc(Bits Prediction);

  /// Resolves entry \p Id against the actual value. Returns true when the
  /// prediction was correct; otherwise the entry and every newer entry are
  /// marked mispredicted.
  bool verify(SpecId Id, Bits Actual);

  /// Re-steers the prediction (Table 2's update). If \p NewPred differs
  /// from the recorded prediction, the old child (and newer entries) are
  /// marked mispredicted and a fresh entry is allocated for the corrected
  /// child; its id is returned. Returns std::nullopt when the prediction
  /// was already identical (nothing to do).
  std::optional<SpecId> update(SpecId Id, Bits NewPred);

  SpecStatus status(SpecId Id) const;

  /// True while \p Id names a live (not yet freed) entry. Normally a parent
  /// always outlives its child's entry; an injected SkipSquash can keep a
  /// wrong-path parent running after its squashed child freed the entry.
  bool knows(SpecId Id) const { return Entries.count(Id) != 0; }

  /// Frees the entry once the child thread has observed its status.
  void free(SpecId Id);

  Bits prediction(SpecId Id) const { return Entries.at(Id).Prediction; }
  size_t live() const { return Entries.size(); }
  unsigned capacity() const { return Capacity; }

  /// Fault injection (src/hw/Fault.h): make the \p Nth verify() of a wrong
  /// prediction report Correct instead of cascading a misprediction.
  void armSuppressMispredict(uint64_t Nth,
                             std::function<void()> OnFire = nullptr) {
    SuppressArm = Nth;
    SuppressOnFire = std::move(OnFire);
  }

  /// Fault injection: make the \p Nth cascadeMispredict() mark only the
  /// directly-verified entry, leaving descendants Pending (orphans).
  void armSkipCascade(uint64_t Nth, std::function<void()> OnFire = nullptr) {
    SkipCascadeArm = Nth;
    SkipCascadeOnFire = std::move(OnFire);
  }

  /// Snapshot support: remaining armed-fault counters (0 = unarmed).
  uint64_t suppressArm() const { return SuppressArm; }
  uint64_t skipCascadeArm() const { return SkipCascadeArm; }

  /// Serializes entries and the id counter (not the observer or armed
  /// fault closures — the restorer re-installs both).
  void saveState(support::BinWriter &W) const {
    W.u64(Entries.size());
    for (const auto &[Id, E] : Entries) {
      W.u64(Id);
      W.bits(E.Prediction);
      W.u8(static_cast<uint8_t>(E.St));
    }
    W.u64(NextId);
  }

  /// Inverse of saveState; does not fire the observer.
  bool loadState(support::BinReader &R) {
    uint64_t N = R.u64();
    if (!R.ok() || N > Capacity)
      return false;
    Entries.clear();
    for (uint64_t I = 0; I != N && R.ok(); ++I) {
      SpecId Id = R.u64();
      Entry E;
      E.Prediction = R.bits();
      uint8_t St = R.u8();
      if (St > 2)
        return false;
      E.St = static_cast<SpecStatus>(St);
      Entries[Id] = E;
    }
    NextId = R.u64();
    return R.ok();
  }

private:
  struct Entry {
    Bits Prediction;
    SpecStatus St = SpecStatus::Pending;
  };

  void cascadeMispredict(SpecId From);
  bool consumeArm(uint64_t &Arm, std::function<void()> &OnFire);

  unsigned Capacity;
  std::map<SpecId, Entry> Entries; // key order = age order
  SpecId NextId = 1;
  Observer Obs;
  bool WarnedCapacity = false;
  uint64_t SuppressArm = 0, SkipCascadeArm = 0;
  std::function<void()> SuppressOnFire, SkipCascadeOnFire;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_SPECTABLE_H
