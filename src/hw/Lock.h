//===- Lock.h - Hazard-lock interface (Table 1) ----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime interface of PDL hazard locks (Table 1 of the paper):
/// reserve / block / read-write / release plus the checkpoint-rollback
/// extension of Section 2.5. One lock instance guards one memory. The
/// compiler-checked protocol guarantees reservations arrive in thread
/// order, accesses only happen on ready reservations, and write releases
/// are in-order and non-speculative; implementations rely on those
/// invariants (and assert them).
///
/// Three implementations mirror Section 2.3:
///  * QueueLock      — associative array of per-location FIFOs; stalls,
///                     no bypassing.
///  * BypassQueueLock— write buffer with combinational forwarding; fully
///                     bypasses a 5-stage in-order core.
///  * RenameLock     — renaming register file (map table + free list), the
///                     out-of-order-style design.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_LOCK_H
#define PDL_HW_LOCK_H

#include "hw/Memory.h"
#include "support/BinIO.h"
#include "support/Bits.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace hw {

enum class Access { Read, Write, ReadWrite };

using ResId = uint64_t;
using CkptId = uint64_t;

/// Probe context for evaluating a stage's stall signal before committing
/// it: the stage may release reservations and make new ones earlier in its
/// own op sequence, and later ops' readiness can depend on those (e.g. a
/// queue lock's head advances when the same thread releases first).
struct LockProbe {
  /// Real reservations the stage releases before the op being probed.
  std::vector<ResId> Released;
  /// Reservations the stage makes before the op being probed (still live).
  std::vector<std::pair<uint64_t, Access>> Reserved;

  bool releasedHas(ResId R) const {
    for (ResId X : Released)
      if (X == R)
        return true;
    return false;
  }
};

/// Abstract hazard lock. All operations are combinational method calls on
/// the module's state; the pipeline executor invokes them inside stage
/// rules, so same-cycle forwarding falls out of rule ordering.
class HazardLock {
public:
  explicit HazardLock(Memory &Mem) : Mem(Mem) {}
  virtual ~HazardLock();

  /// True if a reservation for \p Addr can be accepted this cycle (lock
  /// resources may be exhausted; the stage stalls otherwise).
  virtual bool canReserve(uint64_t Addr, Access M) const = 0;

  /// Records the reservation, defining this thread's position in the
  /// memory-order for \p Addr. Must be preceded by a successful canReserve.
  virtual ResId reserve(uint64_t Addr, Access M) = 0;

  /// True when block() would fall through: the associated access can
  /// execute without observing a stale value or clobbering state.
  virtual bool ready(ResId R) const = 0;

  /// Combinational probe: would a reservation for \p Addr made this
  /// instant be immediately ready? Used by acquire (reserve;block in one
  /// stage), whose stall signal must be known before the reservation is
  /// actually recorded.
  virtual bool readyNow(uint64_t Addr, Access M) const = 0;

  /// Combinational probe companion to readyNow: the value a fresh, ready
  /// reservation for \p Addr would read this instant. Must agree with a
  /// reserve(); read() pair executed now.
  virtual Bits peek(uint64_t Addr, Access M) const = 0;

  /// Executes the read for \p R (may forward buffered write data).
  virtual Bits read(ResId R) = 0;

  /// Executes the write for \p R (buffers or writes through, per design).
  virtual void write(ResId R, Bits V) = 0;

  /// Releases the lock: the in-order commit point. For write reservations
  /// this publishes the data to the architectural store.
  virtual void release(ResId R) = 0;

  /// Snapshots lock state. Taken by the compiler after a thread's final
  /// reservation so speculative children can be undone (Section 2.5).
  virtual CkptId checkpoint() = 0;

  /// Reverts all reservations made after \p C was taken, then frees \p C.
  virtual void rollback(CkptId C) = 0;

  /// Frees \p C without rolling back (the speculation was correct).
  virtual void commitCheckpoint(CkptId C) = 0;

  /// Reads the committed architectural value of \p Addr (bypassing any
  /// in-flight reservations). Used for final-state comparison.
  virtual Bits archRead(uint64_t Addr) const { return Mem.read(Addr); }

  virtual std::string name() const = 0;

  // Probe-aware variants used by the executor's stall computation. The
  // defaults ignore the probe context, which is correct for locks whose
  // readiness cannot be affected by same-stage releases/reserves
  // (BypassQueue readiness depends only on older writes; RenameLock on
  // valid bits). QueueLock overrides them.
  virtual bool canReserveP(const LockProbe &, uint64_t Addr,
                           Access M) const {
    return canReserve(Addr, M);
  }
  virtual bool readyP(const LockProbe &, ResId R) const { return ready(R); }
  virtual bool readyNowP(const LockProbe &, uint64_t Addr, Access M) const {
    return readyNow(Addr, M);
  }
  /// Probe read of a real reservation whose readiness was established by
  /// readyP (possibly counting same-stage releases).
  virtual Bits readP(const LockProbe &, ResId R) { return read(R); }

  Memory &memory() { return Mem; }

  /// Fault injection (src/hw/Fault.h): make the implementation silently
  /// swallow the \p Nth release() from now, leaking the reservation inside
  /// the lock. Implementations call consumeDropRelease() at the top of
  /// release(); \p OnFire runs when the fault actually triggers.
  void armDropRelease(uint64_t Nth, std::function<void()> OnFire = nullptr) {
    DropReleaseArm = Nth;
    DropReleaseOnFire = std::move(OnFire);
  }

  /// Snapshot support: remaining drop-release arm count (0 = unarmed).
  uint64_t dropReleaseArm() const { return DropReleaseArm; }

  /// Serializes the implementation's full dynamic state (reservations,
  /// buffered data, checkpoints, id counters) — everything but the armed
  /// fault closures, which the restorer re-arms separately.
  virtual void saveState(support::BinWriter &W) const = 0;

  /// Inverse of saveState into an already-elaborated lock of the same kind
  /// over the same memory. Returns false on a malformed blob.
  virtual bool loadState(support::BinReader &R) = 0;

protected:
  /// Returns true when this release() call should be swallowed.
  bool consumeDropRelease() {
    if (DropReleaseArm == 0 || --DropReleaseArm != 0)
      return false;
    auto Fire = std::move(DropReleaseOnFire);
    DropReleaseOnFire = nullptr;
    if (Fire)
      Fire();
    return true;
  }

  Memory &Mem;

private:
  uint64_t DropReleaseArm = 0;
  std::function<void()> DropReleaseOnFire;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_LOCK_H
