//===- RenameLock.cpp - Renaming register-file hazard lock -----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/RenameLock.h"

#include <algorithm>

using namespace pdl;
using namespace pdl::hw;

RenameLock::RenameLock(Memory &Mem, unsigned ExtraPhys) : HazardLock(Mem) {
  assert(Mem.addrWidth() <= 10 &&
         "renaming locks are meant for register files, not large memories");
  ArchCount = static_cast<unsigned>(Mem.size());
  unsigned PhysCount = ArchCount + ExtraPhys;
  Phys.resize(PhysCount, Bits(0, Mem.elemWidth()));
  Valid.assign(PhysCount, true);
  MapTable.resize(ArchCount);
  CommitTable.resize(ArchCount);
  for (unsigned I = 0; I != ArchCount; ++I) {
    Phys[I] = Mem.read(I);
    MapTable[I] = I;
    CommitTable[I] = I;
  }
  for (unsigned I = ArchCount; I != PhysCount; ++I)
    FreeList.push_back(I);
}

bool RenameLock::canReserve(uint64_t, Access M) const {
  return M == Access::Read || !FreeList.empty();
}

ResId RenameLock::reserve(uint64_t Addr, Access M) {
  assert(Addr < ArchCount && "address out of range");
  ResId R = NextRes++;
  Reservation Res;
  Res.Addr = Addr;
  Res.M = M;
  if (M == Access::Read) {
    Res.PhysReg = MapTable[Addr]; // name lookup
  } else {
    assert(!FreeList.empty() && "reserve without canReserve");
    unsigned P = FreeList.front(); // name allocation
    FreeList.pop_front();
    Res.PhysReg = P;
    Res.OldPhys = MapTable[Addr];
    MapTable[Addr] = P;
    Valid[P] = false;
  }
  Reservations[R] = Res;
  return R;
}

bool RenameLock::ready(ResId R) const {
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  const Reservation &Res = It->second;
  switch (Res.M) {
  case Access::Read:
    return Valid[Res.PhysReg];
  case Access::Write:
    return true;
  case Access::ReadWrite:
    // Reading the previous value requires the prior producer to be done.
    return Valid[Res.OldPhys];
  }
  return true;
}

bool RenameLock::readyNow(uint64_t Addr, Access M) const {
  if (M == Access::Write)
    return true;
  return Valid[MapTable[Addr]];
}

Bits RenameLock::peek(uint64_t Addr, Access) const {
  unsigned P = MapTable[Addr];
  assert(Valid[P] && "peek of a not-ready register");
  return Phys[P];
}

Bits RenameLock::read(ResId R) {
  const Reservation &Res = Reservations.at(R);
  unsigned P = Res.M == Access::ReadWrite ? Res.OldPhys : Res.PhysReg;
  assert(Valid[P] && "read of an invalid physical register");
  return Phys[P];
}

void RenameLock::write(ResId R, Bits V) {
  const Reservation &Res = Reservations.at(R);
  assert(Res.M != Access::Read && "write on a read reservation");
  Phys[Res.PhysReg] = V;
  Valid[Res.PhysReg] = true;
}

void RenameLock::release(ResId R) {
  if (consumeDropRelease())
    return;
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  const Reservation &Res = It->second;
  if (Res.M != Access::Read) {
    // Commit: the new name becomes architectural; the old one recycles.
    if (Valid[Res.PhysReg]) {
      CommitTable[Res.Addr] = Res.PhysReg;
      FreeList.push_back(Res.OldPhys);
    } else {
      // Exclusive reservation that never wrote: undo the allocation.
      MapTable[Res.Addr] = Res.OldPhys;
      FreeList.push_back(Res.PhysReg);
    }
  }
  Reservations.erase(It);
}

CkptId RenameLock::checkpoint() {
  CkptId C = NextCkpt++;
  Checkpoints[C] = {MapTable};
  CheckpointFloors[C] = NextRes;
  return C;
}

void RenameLock::recomputeFreeList() {
  std::vector<bool> InUse(Phys.size(), false);
  for (unsigned P : MapTable)
    InUse[P] = true;
  for (unsigned P : CommitTable)
    InUse[P] = true;
  FreeList.clear();
  for (unsigned P = 0, E = Phys.size(); P != E; ++P)
    if (!InUse[P])
      FreeList.push_back(P);
}

void RenameLock::rollback(CkptId C) {
  auto It = Checkpoints.find(C);
  assert(It != Checkpoints.end() && "unknown checkpoint");
  MapTable = It->second.MapTable;
  ResId Floor = CheckpointFloors[C];
  for (auto I = Reservations.begin(); I != Reservations.end();)
    I = I->first >= Floor ? Reservations.erase(I) : std::next(I);
  recomputeFreeList();
  for (auto I = Checkpoints.begin(); I != Checkpoints.end();)
    I = I->first > C ? Checkpoints.erase(I) : std::next(I);
  for (auto I = CheckpointFloors.begin(); I != CheckpointFloors.end();)
    I = I->first > C ? CheckpointFloors.erase(I) : std::next(I);
}

void RenameLock::commitCheckpoint(CkptId C) {
  Checkpoints.erase(C);
  CheckpointFloors.erase(C);
}

Bits RenameLock::archRead(uint64_t Addr) const {
  assert(Addr < ArchCount && "address out of range");
  return Phys[CommitTable[Addr]];
}

void RenameLock::saveState(support::BinWriter &W) const {
  W.u32(static_cast<uint32_t>(Phys.size()));
  for (const Bits &V : Phys)
    W.bits(V);
  for (bool V : Valid)
    W.b(V);
  W.u32(ArchCount);
  for (unsigned P : MapTable)
    W.u32(P);
  for (unsigned P : CommitTable)
    W.u32(P);
  W.u32(static_cast<uint32_t>(FreeList.size()));
  for (unsigned P : FreeList)
    W.u32(P);
  W.u64(Reservations.size());
  for (const auto &[Id, Res] : Reservations) {
    W.u64(Id);
    W.u64(Res.Addr);
    W.u8(static_cast<uint8_t>(Res.M));
    W.u32(Res.PhysReg);
    W.u32(Res.OldPhys);
  }
  W.u64(Checkpoints.size());
  for (const auto &[C, Snap] : Checkpoints) {
    W.u64(C);
    for (unsigned P : Snap.MapTable)
      W.u32(P);
  }
  W.u64(CheckpointFloors.size());
  for (const auto &[C, Floor] : CheckpointFloors) {
    W.u64(C);
    W.u64(Floor);
  }
  W.u64(NextRes);
  W.u64(NextCkpt);
}

bool RenameLock::loadState(support::BinReader &R) {
  if (R.u32() != Phys.size())
    return false; // geometry mismatch
  for (Bits &V : Phys)
    V = R.bits();
  for (size_t I = 0, E = Valid.size(); I != E; ++I)
    Valid[I] = R.b();
  if (R.u32() != ArchCount)
    return false;
  auto LoadTable = [&](std::vector<unsigned> &T) {
    for (unsigned &P : T) {
      P = R.u32();
      if (P >= Phys.size())
        R.fail();
    }
  };
  LoadTable(MapTable);
  LoadTable(CommitTable);
  uint32_t NFree = R.u32();
  if (!R.ok() || NFree > Phys.size())
    return false;
  FreeList.clear();
  for (uint32_t I = 0; I != NFree; ++I) {
    unsigned P = R.u32();
    if (P >= Phys.size())
      return false;
    FreeList.push_back(P);
  }
  uint64_t NRes = R.u64();
  Reservations.clear();
  for (uint64_t I = 0; I != NRes && R.ok(); ++I) {
    ResId Id = R.u64();
    Reservation Res;
    Res.Addr = R.u64();
    uint8_t M = R.u8();
    Res.PhysReg = R.u32();
    Res.OldPhys = R.u32();
    if (M > 2 || Res.PhysReg >= Phys.size() || Res.OldPhys >= Phys.size())
      return false;
    Res.M = static_cast<Access>(M);
    Reservations[Id] = Res;
  }
  uint64_t NCkpt = R.u64();
  Checkpoints.clear();
  for (uint64_t I = 0; I != NCkpt && R.ok(); ++I) {
    CkptId C = R.u64();
    Snapshot Snap;
    Snap.MapTable.resize(ArchCount);
    LoadTable(Snap.MapTable);
    Checkpoints[C] = std::move(Snap);
  }
  uint64_t NFloor = R.u64();
  CheckpointFloors.clear();
  for (uint64_t I = 0; I != NFloor && R.ok(); ++I) {
    CkptId C = R.u64();
    CheckpointFloors[C] = R.u64();
  }
  NextRes = R.u64();
  NextCkpt = R.u64();
  return R.ok();
}
