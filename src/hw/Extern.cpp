//===- Extern.cpp - External (RTL) module binding ----------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/Extern.h"

#include <cassert>

using namespace pdl;
using namespace pdl::hw;

ExternModule::~ExternModule() = default;

std::optional<Bits> Bht::invoke(const std::string &Method,
                                const std::vector<Bits> &Args) {
  if (Method == "req") {
    assert(Args.size() == 1 && "bht.req takes (pc)");
    return Bits(Counters[index(Args[0])] >= 2 ? 1 : 0, 1);
  }
  if (Method == "upd") {
    assert(Args.size() == 3 && "bht.upd takes (pc, isbr, taken)");
    if (!Args[1].toBool())
      return std::nullopt; // only branches train the table
    uint8_t &C = Counters[index(Args[0])];
    if (Args[2].toBool())
      C = C < 3 ? C + 1 : 3;
    else
      C = C > 0 ? C - 1 : 0;
    return std::nullopt;
  }
  assert(false && "unknown bht method");
  return std::nullopt;
}

std::optional<Bits> Gshare::invoke(const std::string &Method,
                                   const std::vector<Bits> &Args) {
  if (Method == "req") {
    assert(Args.size() == 1 && "gshare.req takes (pc)");
    return Bits(Counters[index(Args[0])] >= 2 ? 1 : 0, 1);
  }
  if (Method == "upd") {
    assert(Args.size() == 3 && "gshare.upd takes (pc, isbr, taken)");
    if (!Args[1].toBool())
      return std::nullopt;
    uint8_t &C = Counters[index(Args[0])];
    bool Taken = Args[2].toBool();
    if (Taken)
      C = C < 3 ? C + 1 : 3;
    else
      C = C > 0 ? C - 1 : 0;
    History = (History << 1) | (Taken ? 1 : 0);
    return std::nullopt;
  }
  assert(false && "unknown gshare method");
  return std::nullopt;
}
