//===- BypassQueue.cpp - Bypassing write-buffer hazard lock ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/BypassQueue.h"

#include <algorithm>

using namespace pdl;
using namespace pdl::hw;

const BypassQueueLock::WriteEntry *
BypassQueueLock::findEntry(ResId Seq) const {
  for (const WriteEntry &E : WQ)
    if (E.Seq == Seq)
      return &E;
  return nullptr;
}

BypassQueueLock::WriteEntry *BypassQueueLock::findEntry(ResId Seq) {
  return const_cast<WriteEntry *>(
      static_cast<const BypassQueueLock *>(this)->findEntry(Seq));
}

ResId BypassQueueLock::newestConflict(uint64_t Addr, ResId Before) const {
  ResId Best = 0;
  for (const WriteEntry &E : WQ)
    if (E.Addr == Addr && E.Seq < Before && E.Seq > Best)
      Best = E.Seq;
  return Best;
}

bool BypassQueueLock::canReserve(uint64_t, Access M) const {
  if (M == Access::Read)
    return Reads.size() < ReadDepth;
  if (M == Access::Write)
    return WQ.size() < WriteDepth;
  return Reads.size() < ReadDepth && WQ.size() < WriteDepth;
}

ResId BypassQueueLock::reserve(uint64_t Addr, Access M) {
  assert(canReserve(Addr, M) && "reserve without canReserve");
  ResId R = NextRes++;
  if (M == Access::Read || M == Access::ReadWrite) {
    ReadRes Res;
    Res.Addr = Addr;
    Res.Buffered = Mem.read(Addr); // access memory in the reservation cycle
    Res.DepSeq = newestConflict(Addr, R);
    Res.HasDep = Res.DepSeq != 0;
    Reads[R] = Res;
  }
  if (M == Access::Write || M == Access::ReadWrite) {
    WriteEntry E;
    E.Seq = R;
    E.Addr = Addr;
    E.Data = Bits(0, Mem.elemWidth());
    WQ.push_back(E);
  }
  return R;
}

bool BypassQueueLock::ready(ResId R) const {
  auto It = Reads.find(R);
  if (It == Reads.end())
    return true; // write-only reservations never block
  const ReadRes &Res = It->second;
  if (!Res.HasDep)
    return true;
  const WriteEntry *Dep = findEntry(Res.DepSeq);
  // A committed dependence forwarded its data into Buffered already.
  return !Dep || Dep->Valid;
}

bool BypassQueueLock::readyNow(uint64_t Addr, Access M) const {
  if (M == Access::Write)
    return true;
  ResId Dep = newestConflict(Addr, NextRes);
  if (Dep == 0)
    return true;
  const WriteEntry *E = findEntry(Dep);
  return !E || E->Valid;
}

Bits BypassQueueLock::peek(uint64_t Addr, Access) const {
  ResId Dep = newestConflict(Addr, NextRes);
  if (Dep != 0) {
    const WriteEntry *E = findEntry(Dep);
    if (E) {
      assert(E->Valid && "peek of a not-ready location");
      return E->Data;
    }
  }
  return Mem.read(Addr);
}

Bits BypassQueueLock::read(ResId R) {
  auto It = Reads.find(R);
  assert(It != Reads.end() && "read on a write-only reservation");
  ReadRes &Res = It->second;
  if (Res.HasDep) {
    const WriteEntry *Dep = findEntry(Res.DepSeq);
    if (Dep) {
      assert(Dep->Valid && "read forwarded from an unexecuted write");
      return Dep->Data;
    }
  }
  return Res.Buffered;
}

void BypassQueueLock::write(ResId R, Bits V) {
  WriteEntry *E = findEntry(R);
  assert(E && "write on a read-only reservation");
  E->Data = V;
  E->Valid = true;
  E->Written = true;
}

void BypassQueueLock::forwardCommit(const WriteEntry &E) {
  for (auto &[Id, Res] : Reads) {
    if (Res.HasDep && Res.DepSeq == E.Seq) {
      Res.Buffered = E.Data;
      Res.HasDep = false;
    }
  }
}

void BypassQueueLock::release(ResId R) {
  if (consumeDropRelease())
    return;
  auto RIt = Reads.find(R);
  bool IsRead = RIt != Reads.end();
  WriteEntry *E = findEntry(R);
  assert((IsRead || E) && "unknown reservation");
  if (E) {
    assert(!WQ.empty() && WQ.front().Seq == R &&
           "write release out of reservation order");
    if (E->Written) {
      Mem.write(E->Addr, E->Data);
      forwardCommit(*E);
    }
    WQ.pop_front();
  }
  if (IsRead)
    Reads.erase(RIt);
}

CkptId BypassQueueLock::checkpoint() {
  CkptId C = NextCkpt++;
  Checkpoints[C] = NextRes;
  return C;
}

void BypassQueueLock::rollback(CkptId C) {
  auto It = Checkpoints.find(C);
  assert(It != Checkpoints.end() && "unknown checkpoint");
  ResId Floor = It->second;
  while (!WQ.empty() && WQ.back().Seq >= Floor)
    WQ.pop_back();
  for (auto I = Reads.begin(); I != Reads.end();)
    I = I->first >= Floor ? Reads.erase(I) : std::next(I);
  for (auto I = Checkpoints.begin(); I != Checkpoints.end();)
    I = I->first > C ? Checkpoints.erase(I) : std::next(I);
}

void BypassQueueLock::commitCheckpoint(CkptId C) { Checkpoints.erase(C); }

void BypassQueueLock::saveState(support::BinWriter &W) const {
  W.u32(static_cast<uint32_t>(WQ.size()));
  for (const WriteEntry &E : WQ) {
    W.u64(E.Seq);
    W.u64(E.Addr);
    W.bits(E.Data);
    W.b(E.Valid);
    W.b(E.Written);
  }
  W.u64(Reads.size());
  for (const auto &[Id, Res] : Reads) {
    W.u64(Id);
    W.u64(Res.Addr);
    W.bits(Res.Buffered);
    W.u64(Res.DepSeq);
    W.b(Res.HasDep);
  }
  W.u64(Checkpoints.size());
  for (const auto &[C, Floor] : Checkpoints) {
    W.u64(C);
    W.u64(Floor);
  }
  W.u64(NextRes);
  W.u64(NextCkpt);
}

bool BypassQueueLock::loadState(support::BinReader &R) {
  uint32_t NW = R.u32();
  if (!R.ok() || NW > WriteDepth)
    return false;
  WQ.clear();
  for (uint32_t I = 0; I != NW; ++I) {
    WriteEntry E;
    E.Seq = R.u64();
    E.Addr = R.u64();
    E.Data = R.bits();
    E.Valid = R.b();
    E.Written = R.b();
    WQ.push_back(E);
  }
  uint64_t NR = R.u64();
  if (!R.ok() || NR > ReadDepth)
    return false;
  Reads.clear();
  for (uint64_t I = 0; I != NR && R.ok(); ++I) {
    ResId Id = R.u64();
    ReadRes Res;
    Res.Addr = R.u64();
    Res.Buffered = R.bits();
    Res.DepSeq = R.u64();
    Res.HasDep = R.b();
    Reads[Id] = Res;
  }
  uint64_t NCkpt = R.u64();
  Checkpoints.clear();
  for (uint64_t I = 0; I != NCkpt && R.ok(); ++I) {
    CkptId C = R.u64();
    Checkpoints[C] = R.u64();
  }
  NextRes = R.u64();
  NextCkpt = R.u64();
  return R.ok();
}
