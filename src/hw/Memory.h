//===- Memory.h - Simulated addressed storage ------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage behind a PDL memory declaration: 2^AddrWidth elements of
/// ElemWidth bits. Combinational memories respond in the same cycle;
/// synchronous memories respond the next cycle (single-cycle latency — the
/// paper's evaluation simulates cache hits on every access). The response
/// scheduling itself is handled by the pipeline executor; this class is
/// plain storage with sparse backing so large address spaces are cheap.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_MEMORY_H
#define PDL_HW_MEMORY_H

#include "support/Bits.h"

#include <cassert>
#include <string>
#include <unordered_map>

namespace pdl {
namespace hw {

class Memory {
public:
  Memory(std::string Name, unsigned ElemWidth, unsigned AddrWidth,
         bool IsSync)
      : Name(std::move(Name)), ElemWidth(ElemWidth), AddrWidth(AddrWidth),
        IsSync(IsSync) {
    assert(ElemWidth >= 1 && ElemWidth <= 64 && "bad element width");
    assert(AddrWidth >= 1 && AddrWidth <= 30 && "bad address width");
  }

  const std::string &name() const { return Name; }
  unsigned elemWidth() const { return ElemWidth; }
  unsigned addrWidth() const { return AddrWidth; }
  bool isSync() const { return IsSync; }
  uint64_t size() const { return uint64_t(1) << AddrWidth; }

  Bits read(uint64_t Addr) const {
    assert(Addr < size() && "memory read out of range");
    auto It = Data.find(Addr);
    return Bits(It == Data.end() ? 0 : It->second, ElemWidth);
  }

  void write(uint64_t Addr, Bits V) {
    assert(Addr < size() && "memory write out of range");
    assert(V.width() == ElemWidth && "memory write width mismatch");
    Data[Addr] = V.zext();
  }

  /// Number of distinct locations ever written (for tests/debug).
  size_t population() const { return Data.size(); }

  void clear() { Data.clear(); }

private:
  std::string Name;
  unsigned ElemWidth, AddrWidth;
  bool IsSync;
  std::unordered_map<uint64_t, uint64_t> Data;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_MEMORY_H
