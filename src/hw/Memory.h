//===- Memory.h - Simulated addressed storage ------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage behind a PDL memory declaration: 2^AddrWidth elements of
/// ElemWidth bits. Combinational memories respond in the same cycle;
/// synchronous memories respond after a model-determined latency (default
/// one cycle — the paper's evaluation simulates cache hits on every
/// access; see mem::MemModel for the hierarchy models that lift this).
/// The response scheduling itself is handled by the pipeline executor;
/// this class is plain storage with sparse backing so large address
/// spaces are cheap.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_MEMORY_H
#define PDL_HW_MEMORY_H

#include "support/BinIO.h"
#include "support/Bits.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pdl {
namespace hw {

class Memory {
public:
  Memory(std::string Name, unsigned ElemWidth, unsigned AddrWidth,
         bool IsSync)
      : Name(std::move(Name)), ElemWidth(ElemWidth), AddrWidth(AddrWidth),
        IsSync(IsSync) {
    assert(ElemWidth >= 1 && ElemWidth <= 64 && "bad element width");
    assert(AddrWidth >= 1 && AddrWidth <= 32 && "bad address width");
  }

  const std::string &name() const { return Name; }
  unsigned elemWidth() const { return ElemWidth; }
  unsigned addrWidth() const { return AddrWidth; }
  bool isSync() const { return IsSync; }
  uint64_t size() const { return uint64_t(1) << AddrWidth; }

  Bits read(uint64_t Addr) const {
    if (!inRange(Addr, "read"))
      return Bits(0, ElemWidth); // reads of dropped range return zero
    auto It = Data.find(Addr);
    return Bits(It == Data.end() ? 0 : It->second, ElemWidth);
  }

  void write(uint64_t Addr, Bits V) {
    assert(V.width() == ElemWidth && "memory write width mismatch");
    if (!inRange(Addr, "write"))
      return; // out-of-range writes are dropped
    Data[Addr] = V.zext();
  }

  /// Number of distinct locations ever written (for tests/debug).
  size_t population() const { return Data.size(); }

  void clear() { Data.clear(); }

  /// Snapshot support: serializes the sparse contents with sorted
  /// addresses, so identical logical state always yields identical bytes
  /// (the backing map's iteration order is not deterministic).
  void saveState(support::BinWriter &W) const {
    std::vector<std::pair<uint64_t, uint64_t>> Sorted(Data.begin(),
                                                      Data.end());
    std::sort(Sorted.begin(), Sorted.end());
    W.u64(Sorted.size());
    for (const auto &[Addr, Val] : Sorted) {
      W.u64(Addr);
      W.u64(Val);
    }
  }

  /// Inverse of saveState; replaces the contents wholesale.
  bool loadState(support::BinReader &R) {
    uint64_t N = R.u64();
    std::unordered_map<uint64_t, uint64_t> New;
    for (uint64_t I = 0; I != N && R.ok(); ++I) {
      uint64_t Addr = R.u64(), Val = R.u64();
      New[Addr] = Val;
    }
    if (!R.ok())
      return false;
    Data = std::move(New);
    return true;
  }

private:
  /// Debug builds assert on out-of-range accesses (a simulator bug or a
  /// misbehaving program); release builds report once per memory to stderr
  /// and drop the access instead of silently corrupting sparse storage.
  bool inRange(uint64_t Addr, const char *What) const {
    if (Addr < size())
      return true;
    assert(false && "memory access out of range");
    if (!WarnedOutOfRange) {
      WarnedOutOfRange = true;
      std::fprintf(stderr,
                   "pdl: memory '%s': out-of-range %s at address 0x%llx "
                   "(address width %u bits); access dropped\n",
                   Name.c_str(), What, (unsigned long long)Addr, AddrWidth);
    }
    return false;
  }

  std::string Name;
  unsigned ElemWidth, AddrWidth;
  bool IsSync;
  mutable bool WarnedOutOfRange = false;
  std::unordered_map<uint64_t, uint64_t> Data;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_MEMORY_H
