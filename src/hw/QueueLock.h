//===- QueueLock.h - FIFO-per-location hazard lock -------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simplest lock of Section 2.3: a First-In-First-Out queue of
/// reservations per memory location, realized as a fully associative array
/// of queues so any location can use any free queue. A reservation is ready
/// when it reaches the head of its location's queue; reads and writes go
/// straight to the memory (no bypassing), so conflicting threads simply
/// stall. The associative-array size and queue depth are design parameters
/// that influence performance (exhaustion stalls the reserving stage).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_QUEUELOCK_H
#define PDL_HW_QUEUELOCK_H

#include "hw/Lock.h"

#include <deque>
#include <map>
#include <vector>

namespace pdl {
namespace hw {

class QueueLock : public HazardLock {
public:
  /// \p NumQueues associative entries, each a queue of \p Depth
  /// reservations.
  QueueLock(Memory &Mem, unsigned NumQueues = 4, unsigned Depth = 4)
      : HazardLock(Mem), Queues(NumQueues), Depth(Depth) {}

  bool canReserve(uint64_t Addr, Access M) const override;
  ResId reserve(uint64_t Addr, Access M) override;
  bool ready(ResId R) const override;
  bool readyNow(uint64_t Addr, Access M) const override;
  Bits peek(uint64_t Addr, Access M) const override;
  Bits read(ResId R) override;
  void write(ResId R, Bits V) override;
  void release(ResId R) override;
  bool canReserveP(const LockProbe &P, uint64_t Addr,
                   Access M) const override;
  bool readyP(const LockProbe &P, ResId R) const override;
  bool readyNowP(const LockProbe &P, uint64_t Addr, Access M) const override;
  Bits readP(const LockProbe &P, ResId R) override;
  CkptId checkpoint() override;
  void rollback(CkptId C) override;
  void commitCheckpoint(CkptId C) override;
  void saveState(support::BinWriter &W) const override;
  bool loadState(support::BinReader &R) override;
  std::string name() const override { return "queue"; }

  unsigned numQueues() const { return Queues.size(); }
  unsigned depth() const { return Depth; }
  /// Live reservations (for tests).
  size_t outstanding() const { return Reservations.size(); }

private:
  struct Queue {
    bool InUse = false;
    uint64_t Addr = 0;
    std::deque<ResId> Waiters; // front = owner
  };
  struct Reservation {
    uint64_t Addr = 0;
    Access M = Access::Read;
    unsigned QueueIdx = 0;
    bool Accessed = false;
  };

  /// Index of the queue bound to \p Addr, or the first free queue, or -1.
  int findQueue(uint64_t Addr) const;

  std::vector<Queue> Queues;
  unsigned Depth;
  std::map<ResId, Reservation> Reservations;
  std::map<CkptId, ResId> Checkpoints;
  ResId NextRes = 1;
  CkptId NextCkpt = 1;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_QUEUELOCK_H
