//===- Extern.h - External (RTL) module binding ----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime counterpart of PDL `extern` declarations: modules implemented
/// outside PDL (in the paper, RTL; here, C++) and bound by name at
/// elaboration. Value-returning methods must be combinational/pure within
/// a cycle; void methods may update internal state (e.g. training a branch
/// predictor from a verify block). Predictions can never affect functional
/// correctness, so implementations are free to be arbitrarily wrong.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_EXTERN_H
#define PDL_HW_EXTERN_H

#include "support/BinIO.h"
#include "support/Bits.h"

#include <optional>
#include <string>
#include <vector>

namespace pdl {
namespace hw {

class ExternModule {
public:
  virtual ~ExternModule();

  /// Invokes \p Method with \p Args. Returns the result for value methods
  /// and std::nullopt for void (state-updating) methods.
  virtual std::optional<Bits> invoke(const std::string &Method,
                                     const std::vector<Bits> &Args) = 0;

  virtual std::string name() const = 0;

  /// Snapshot support. Stateless modules keep the no-op defaults; stateful
  /// ones (predictors) serialize their training state so a restored run
  /// predicts identically to an uninterrupted one.
  virtual void saveState(support::BinWriter &) const {}
  virtual bool loadState(support::BinReader &) { return true; }
};

/// A branch history table of 2-bit saturating counters, used by the PDL
/// 5-stage BHT core (Section 6.2). Methods:
///   req(pc: uint<32>): bool                      -- predict taken?
///   upd(pc: uint<32>, isbr: bool, taken: bool)   -- train (branches only)
class Bht : public ExternModule {
public:
  explicit Bht(unsigned IndexBits = 6)
      : IndexBits(IndexBits), Counters(1u << IndexBits, 1) {}

  std::optional<Bits> invoke(const std::string &Method,
                             const std::vector<Bits> &Args) override;
  std::string name() const override { return "bht"; }

  void saveState(support::BinWriter &W) const override {
    W.u32(static_cast<uint32_t>(Counters.size()));
    for (uint8_t C : Counters)
      W.u8(C);
  }
  bool loadState(support::BinReader &R) override {
    if (R.u32() != Counters.size())
      return false;
    for (uint8_t &C : Counters)
      C = R.u8();
    return R.ok();
  }

  unsigned indexBits() const { return IndexBits; }

private:
  unsigned index(Bits Pc) const {
    return static_cast<unsigned>((Pc.zext() >> 2) & ((1u << IndexBits) - 1));
  }

  unsigned IndexBits;
  std::vector<uint8_t> Counters; // 2-bit saturating, >=2 predicts taken
};

/// A gshare predictor: global-history XOR pc indexing into 2-bit
/// counters. Same interface as Bht, demonstrating that predictors are
/// swappable RTL modules whose accuracy cannot affect correctness.
class Gshare : public ExternModule {
public:
  explicit Gshare(unsigned IndexBits = 8)
      : IndexBits(IndexBits), Counters(1u << IndexBits, 1) {}

  std::optional<Bits> invoke(const std::string &Method,
                             const std::vector<Bits> &Args) override;
  std::string name() const override { return "gshare"; }

  void saveState(support::BinWriter &W) const override {
    W.u32(History);
    W.u32(static_cast<uint32_t>(Counters.size()));
    for (uint8_t C : Counters)
      W.u8(C);
  }
  bool loadState(support::BinReader &R) override {
    History = R.u32();
    if (R.u32() != Counters.size())
      return false;
    for (uint8_t &C : Counters)
      C = R.u8();
    return R.ok();
  }

private:
  unsigned index(Bits Pc) const {
    return static_cast<unsigned>(((Pc.zext() >> 2) ^ History) &
                                 ((1u << IndexBits) - 1));
  }

  unsigned IndexBits;
  uint32_t History = 0;
  std::vector<uint8_t> Counters;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_EXTERN_H
