//===- Fifo.h - Inter-stage FIFO -------------------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FIFO abstraction over pipeline registers (Section 5.1). The default
/// depth of 2 matches the default BSV FIFO the paper's compiler emits; a
/// depth-1 FIFO models a single pipeline register.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_FIFO_H
#define PDL_HW_FIFO_H

#include <cassert>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <deque>

namespace pdl {
namespace hw {

template <typename T> class Fifo {
public:
  /// Observability hook: notified after every enqueue/dequeue with the item
  /// and the resulting depth. Null (the default) costs one branch per
  /// operation. The executor installs adapters that forward to the trace
  /// bus; see src/obs.
  struct Listener {
    virtual ~Listener() = default;
    virtual void onEnq(const T &Item, size_t Depth) = 0;
    virtual void onDeq(const T &Item, size_t Depth) = 0;
  };

  explicit Fifo(unsigned Capacity = 2) : Capacity(Capacity) {
    assert(Capacity >= 1 && "FIFO capacity must be positive");
  }

  void setListener(Listener *NewListener) { L = NewListener; }

  bool canEnq() const { return Items.size() < Capacity; }
  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  unsigned capacity() const { return Capacity; }

  void enq(T Item) {
    if (!canEnq()) {
      // Debug builds assert (the executor's backpressure checks should make
      // overflow impossible); release builds report once and drop the item
      // instead of growing past the modeled hardware capacity.
      assert(false && "FIFO overflow");
      if (!WarnedOverflow) {
        WarnedOverflow = true;
        std::fprintf(stderr, "pdl: FIFO overflow (capacity %u); "
                             "enqueue dropped\n",
                     Capacity);
      }
      return;
    }
    if (DropArm > 0 && --DropArm == 0) {
      auto Fire = std::move(DropOnFire);
      DropOnFire = nullptr;
      if (Fire)
        Fire();
      return; // the item vanishes: no storage update, no listener event
    }
    if (CorruptArm > 0 && --CorruptArm == 0) {
      auto Mut = std::move(CorruptFn);
      CorruptFn = nullptr;
      if (Mut)
        Mut(Item);
    }
    bool Dup = DupArm > 0 && --DupArm == 0;
    Items.push_back(std::move(Item));
    if (L)
      L->onEnq(Items.back(), Items.size());
    if (Dup) {
      auto Fire = std::move(DupOnFire);
      DupOnFire = nullptr;
      if (Fire)
        Fire();
      if (canEnq()) {
        Items.push_back(Items.back());
        if (L)
          L->onEnq(Items.back(), Items.size());
      }
    }
  }

  T &front() {
    if (empty()) {
      assert(false && "front of an empty FIFO");
      warnUnderflow("front");
      static T Dummy{};
      return Dummy;
    }
    return Items.front();
  }
  const T &front() const {
    return const_cast<Fifo *>(this)->front();
  }

  T deq() {
    if (empty()) {
      assert(false && "dequeue of an empty FIFO");
      warnUnderflow("dequeue");
      return T{};
    }
    T Item = std::move(Items.front());
    Items.pop_front();
    if (L)
      L->onDeq(Item, Items.size());
    return Item;
  }

  void clear() { Items.clear(); }

  /// Removes items matching \p Pred (used to squash killed threads).
  template <typename Fn> void removeIf(Fn Pred) {
    for (auto It = Items.begin(); It != Items.end();)
      It = Pred(*It) ? Items.erase(It) : std::next(It);
  }

  auto begin() { return Items.begin(); }
  auto end() { return Items.end(); }
  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

  /// Fault injection (src/hw/Fault.h): swallow the \p Nth enqueue from now.
  /// \p OnFire runs when the fault actually triggers (for accounting).
  void armDropNext(uint64_t Nth, std::function<void()> OnFire = nullptr) {
    DropArm = Nth;
    DropOnFire = std::move(OnFire);
  }

  /// Fault injection: enqueue the \p Nth item twice (if capacity allows).
  void armDupNext(uint64_t Nth, std::function<void()> OnFire = nullptr) {
    DupArm = Nth;
    DupOnFire = std::move(OnFire);
  }

  /// Fault injection: pass the \p Nth enqueued item through \p Mutate before
  /// it is stored (e.g. flip one payload bit).
  void armCorruptNext(uint64_t Nth, std::function<void(T &)> Mutate) {
    CorruptArm = Nth;
    CorruptFn = std::move(Mutate);
  }

  /// Snapshot support: remaining armed-fault counters (0 = not armed or
  /// already fired). The closures themselves are rebuilt by the restorer,
  /// which re-arms with these counts.
  uint64_t dropArm() const { return DropArm; }
  uint64_t dupArm() const { return DupArm; }
  uint64_t corruptArm() const { return CorruptArm; }

  /// Snapshot support: replaces the stored items wholesale without firing
  /// listeners or armed faults. Used by System::restore to rebuild a
  /// snapshotted FIFO in place (the Fifo object itself — and any taps
  /// pointing at it — stays alive).
  void restoreItems(std::deque<T> NewItems) {
    assert(NewItems.size() <= Capacity && "restored FIFO over capacity");
    Items = std::move(NewItems);
  }

private:
  void warnUnderflow(const char *What) const {
    if (WarnedUnderflow)
      return;
    WarnedUnderflow = true;
    std::fprintf(stderr, "pdl: FIFO underflow (%s of an empty FIFO); "
                         "returning a default item\n",
                 What);
  }

  unsigned Capacity;
  std::deque<T> Items;
  Listener *L = nullptr;
  mutable bool WarnedOverflow = false, WarnedUnderflow = false;
  uint64_t DropArm = 0, DupArm = 0, CorruptArm = 0;
  std::function<void()> DropOnFire, DupOnFire;
  std::function<void(T &)> CorruptFn;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_FIFO_H
