//===- Fifo.h - Inter-stage FIFO -------------------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FIFO abstraction over pipeline registers (Section 5.1). The default
/// depth of 2 matches the default BSV FIFO the paper's compiler emits; a
/// depth-1 FIFO models a single pipeline register.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_FIFO_H
#define PDL_HW_FIFO_H

#include <cassert>
#include <cstddef>
#include <deque>

namespace pdl {
namespace hw {

template <typename T> class Fifo {
public:
  /// Observability hook: notified after every enqueue/dequeue with the item
  /// and the resulting depth. Null (the default) costs one branch per
  /// operation. The executor installs adapters that forward to the trace
  /// bus; see src/obs.
  struct Listener {
    virtual ~Listener() = default;
    virtual void onEnq(const T &Item, size_t Depth) = 0;
    virtual void onDeq(const T &Item, size_t Depth) = 0;
  };

  explicit Fifo(unsigned Capacity = 2) : Capacity(Capacity) {
    assert(Capacity >= 1 && "FIFO capacity must be positive");
  }

  void setListener(Listener *NewListener) { L = NewListener; }

  bool canEnq() const { return Items.size() < Capacity; }
  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  unsigned capacity() const { return Capacity; }

  void enq(T Item) {
    assert(canEnq() && "FIFO overflow");
    Items.push_back(std::move(Item));
    if (L)
      L->onEnq(Items.back(), Items.size());
  }

  T &front() {
    assert(!empty() && "front of an empty FIFO");
    return Items.front();
  }
  const T &front() const {
    assert(!empty() && "front of an empty FIFO");
    return Items.front();
  }

  T deq() {
    assert(!empty() && "dequeue of an empty FIFO");
    T Item = std::move(Items.front());
    Items.pop_front();
    if (L)
      L->onDeq(Item, Items.size());
    return Item;
  }

  void clear() { Items.clear(); }

  /// Removes items matching \p Pred (used to squash killed threads).
  template <typename Fn> void removeIf(Fn Pred) {
    for (auto It = Items.begin(); It != Items.end();)
      It = Pred(*It) ? Items.erase(It) : std::next(It);
  }

  auto begin() { return Items.begin(); }
  auto end() { return Items.end(); }
  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

private:
  unsigned Capacity;
  std::deque<T> Items;
  Listener *L = nullptr;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_FIFO_H
