//===- SpecTable.cpp - Speculation tracking table ---------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/SpecTable.h"

#include <cassert>
#include <cstdio>

using namespace pdl;
using namespace pdl::hw;

bool SpecTable::consumeArm(uint64_t &Arm, std::function<void()> &OnFire) {
  if (Arm == 0 || --Arm != 0)
    return false;
  auto Fire = std::move(OnFire);
  OnFire = nullptr;
  if (Fire)
    Fire();
  return true;
}

SpecId SpecTable::alloc(Bits Prediction) {
  if (!canAlloc()) {
    // Debug builds assert (callers gate on canAlloc, so this is an executor
    // bug); release builds report once and allocate anyway rather than
    // corrupting the entry map. The monitors flag the over-capacity state.
    assert(false && "speculation table full");
    if (!WarnedCapacity) {
      WarnedCapacity = true;
      std::fprintf(stderr,
                   "pdl: speculation table over capacity (%u); "
                   "allocating anyway\n",
                   Capacity);
    }
  }
  SpecId Id = NextId++;
  Entries[Id] = {Prediction, SpecStatus::Pending};
  return Id;
}

void SpecTable::cascadeMispredict(SpecId From) {
  if (consumeArm(SkipCascadeArm, SkipCascadeOnFire)) {
    // Injected fault: only the verified entry flips; descendants stay
    // Pending forever (orphaned speculation).
    auto It = Entries.find(From);
    if (It != Entries.end() && It->second.St != SpecStatus::Mispredicted) {
      It->second.St = SpecStatus::Mispredicted;
      if (Obs)
        Obs(From, SpecStatus::Mispredicted);
    }
    return;
  }
  for (auto &[Id, E] : Entries)
    if (Id >= From && E.St != SpecStatus::Mispredicted) {
      E.St = SpecStatus::Mispredicted;
      if (Obs)
        Obs(Id, SpecStatus::Mispredicted);
    }
}

bool SpecTable::verify(SpecId Id, Bits Actual) {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "verify of an unknown speculation");
  bool Correct = It->second.Prediction == Actual;
  if (!Correct && consumeArm(SuppressArm, SuppressOnFire))
    Correct = true; // injected fault: wrong-path child sails on
  if (Correct) {
    It->second.St = SpecStatus::Correct;
    if (Obs)
      Obs(Id, SpecStatus::Correct);
    return true;
  }
  cascadeMispredict(Id);
  return false;
}

std::optional<SpecId> SpecTable::update(SpecId Id, Bits NewPred) {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "update of an unknown speculation");
  if (It->second.Prediction == NewPred)
    return std::nullopt;
  cascadeMispredict(Id);
  // Callers gate the whole operation on canAlloc() before executing it.
  return alloc(NewPred);
}

SpecStatus SpecTable::status(SpecId Id) const {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "status of an unknown speculation");
  return It->second.St;
}

void SpecTable::free(SpecId Id) { Entries.erase(Id); }
