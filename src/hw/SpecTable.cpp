//===- SpecTable.cpp - Speculation tracking table ---------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/SpecTable.h"

#include <cassert>

using namespace pdl;
using namespace pdl::hw;

SpecId SpecTable::alloc(Bits Prediction) {
  assert(canAlloc() && "speculation table full");
  SpecId Id = NextId++;
  Entries[Id] = {Prediction, SpecStatus::Pending};
  return Id;
}

void SpecTable::cascadeMispredict(SpecId From) {
  for (auto &[Id, E] : Entries)
    if (Id >= From && E.St != SpecStatus::Mispredicted) {
      E.St = SpecStatus::Mispredicted;
      if (Obs)
        Obs(Id, SpecStatus::Mispredicted);
    }
}

bool SpecTable::verify(SpecId Id, Bits Actual) {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "verify of an unknown speculation");
  if (It->second.Prediction == Actual) {
    It->second.St = SpecStatus::Correct;
    if (Obs)
      Obs(Id, SpecStatus::Correct);
    return true;
  }
  cascadeMispredict(Id);
  return false;
}

std::optional<SpecId> SpecTable::update(SpecId Id, Bits NewPred) {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "update of an unknown speculation");
  if (It->second.Prediction == NewPred)
    return std::nullopt;
  cascadeMispredict(Id);
  // Callers gate the whole operation on canAlloc() before executing it.
  return alloc(NewPred);
}

SpecStatus SpecTable::status(SpecId Id) const {
  auto It = Entries.find(Id);
  assert(It != Entries.end() && "status of an unknown speculation");
  return It->second.St;
}

void SpecTable::free(SpecId Id) { Entries.erase(Id); }
