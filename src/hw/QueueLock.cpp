//===- QueueLock.cpp - FIFO-per-location hazard lock -----------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/QueueLock.h"

using namespace pdl;
using namespace pdl::hw;

HazardLock::~HazardLock() = default;

int QueueLock::findQueue(uint64_t Addr) const {
  int Free = -1;
  for (unsigned I = 0, E = Queues.size(); I != E; ++I) {
    if (Queues[I].InUse && Queues[I].Addr == Addr)
      return static_cast<int>(I);
    if (!Queues[I].InUse && Free < 0)
      Free = static_cast<int>(I);
  }
  return Free;
}

bool QueueLock::canReserve(uint64_t Addr, Access) const {
  int Idx = findQueue(Addr);
  if (Idx < 0)
    return false; // All queues bound to other locations.
  const Queue &Q = Queues[Idx];
  return !Q.InUse || Q.Waiters.size() < Depth;
}

ResId QueueLock::reserve(uint64_t Addr, Access M) {
  int Idx = findQueue(Addr);
  assert(Idx >= 0 && "reserve without canReserve");
  Queue &Q = Queues[Idx];
  if (!Q.InUse) {
    Q.InUse = true;
    Q.Addr = Addr;
  }
  assert(Q.Waiters.size() < Depth && "queue overflow");
  ResId R = NextRes++;
  Q.Waiters.push_back(R);
  Reservations[R] = {Addr, M, static_cast<unsigned>(Idx), false};
  return R;
}

bool QueueLock::ready(ResId R) const {
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  const Queue &Q = Queues[It->second.QueueIdx];
  return !Q.Waiters.empty() && Q.Waiters.front() == R;
}

bool QueueLock::readyNow(uint64_t Addr, Access) const {
  // A fresh reservation is immediately ready only if it would sit at the
  // head of its queue, i.e. no queue currently holds waiters for Addr.
  for (const Queue &Q : Queues)
    if (Q.InUse && Q.Addr == Addr)
      return Q.Waiters.empty();
  return true;
}

Bits QueueLock::peek(uint64_t Addr, Access) const {
  return Mem.read(Addr);
}

Bits QueueLock::read(ResId R) {
  assert(ready(R) && "read before the reservation reached the queue head");
  Reservation &Res = Reservations[R];
  Res.Accessed = true;
  return Mem.read(Res.Addr);
}

void QueueLock::write(ResId R, Bits V) {
  assert(ready(R) && "write before the reservation reached the queue head");
  Reservation &Res = Reservations[R];
  Res.Accessed = true;
  Mem.write(Res.Addr, V);
}

void QueueLock::release(ResId R) {
  if (consumeDropRelease())
    return;
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  Queue &Q = Queues[It->second.QueueIdx];
  assert(!Q.Waiters.empty() && Q.Waiters.front() == R &&
         "release out of order");
  Q.Waiters.pop_front();
  if (Q.Waiters.empty())
    Q.InUse = false; // Queue becomes reusable by another location.
  Reservations.erase(It);
}

bool QueueLock::canReserveP(const LockProbe &P, uint64_t Addr,
                            Access M) const {
  (void)M;
  // Simulate occupancy after the probe's releases and earlier reserves.
  std::map<uint64_t, unsigned> Count;
  unsigned Free = 0;
  for (const Queue &Q : Queues) {
    if (Q.InUse)
      Count[Q.Addr] = Q.Waiters.size();
    else
      ++Free;
  }
  for (ResId R : P.Released) {
    auto It = Reservations.find(R);
    if (It == Reservations.end())
      continue;
    auto CIt = Count.find(It->second.Addr);
    if (CIt != Count.end() && --CIt->second == 0) {
      Count.erase(CIt);
      ++Free;
    }
  }
  auto Place = [&](uint64_t A) -> bool {
    auto It = Count.find(A);
    if (It != Count.end()) {
      if (It->second >= Depth)
        return false;
      ++It->second;
      return true;
    }
    if (Free == 0)
      return false;
    --Free;
    Count[A] = 1;
    return true;
  };
  for (const auto &[A, Mode] : P.Reserved) {
    (void)Mode;
    if (!Place(A))
      return false; // an earlier same-stage reserve already fails
  }
  return Place(Addr);
}

bool QueueLock::readyP(const LockProbe &P, ResId R) const {
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  const Queue &Q = Queues[It->second.QueueIdx];
  // Ready once everything ahead of R has been released this stage.
  for (ResId W : Q.Waiters) {
    if (W == R)
      return true;
    if (!P.releasedHas(W))
      return false;
  }
  return false;
}

bool QueueLock::readyNowP(const LockProbe &P, uint64_t Addr,
                          Access M) const {
  (void)M;
  // A fresh reservation is immediately ready iff no live waiter (real and
  // not probe-released, or probe-reserved) precedes it for this address.
  for (const Queue &Q : Queues) {
    if (!Q.InUse || Q.Addr != Addr)
      continue;
    for (ResId W : Q.Waiters)
      if (!P.releasedHas(W))
        return false;
  }
  for (const auto &[A, Mode] : P.Reserved) {
    (void)Mode;
    if (A == Addr)
      return false;
  }
  return true;
}

Bits QueueLock::readP(const LockProbe &P, ResId R) {
  (void)P; // readiness was established via readyP
  auto It = Reservations.find(R);
  assert(It != Reservations.end() && "unknown reservation");
  return Mem.read(It->second.Addr);
}

CkptId QueueLock::checkpoint() {
  CkptId C = NextCkpt++;
  Checkpoints[C] = NextRes;
  return C;
}

void QueueLock::rollback(CkptId C) {
  auto It = Checkpoints.find(C);
  assert(It != Checkpoints.end() && "unknown checkpoint");
  ResId Floor = It->second;
  // Reservations made after the checkpoint sit at queue tails (reservations
  // are in thread order); strip them.
  for (Queue &Q : Queues) {
    while (!Q.Waiters.empty() && Q.Waiters.back() >= Floor) {
      Reservations.erase(Q.Waiters.back());
      Q.Waiters.pop_back();
    }
    if (Q.Waiters.empty())
      Q.InUse = false;
  }
  // Newer checkpoints belong to rolled-back threads.
  for (auto I = Checkpoints.begin(); I != Checkpoints.end();)
    I = I->first > C ? Checkpoints.erase(I) : std::next(I);
}

void QueueLock::commitCheckpoint(CkptId C) { Checkpoints.erase(C); }

void QueueLock::saveState(support::BinWriter &W) const {
  W.u32(static_cast<uint32_t>(Queues.size()));
  for (const Queue &Q : Queues) {
    W.b(Q.InUse);
    W.u64(Q.Addr);
    W.u32(static_cast<uint32_t>(Q.Waiters.size()));
    for (ResId R : Q.Waiters)
      W.u64(R);
  }
  W.u64(Reservations.size());
  for (const auto &[R, Res] : Reservations) {
    W.u64(R);
    W.u64(Res.Addr);
    W.u8(static_cast<uint8_t>(Res.M));
    W.u32(Res.QueueIdx);
    W.b(Res.Accessed);
  }
  W.u64(Checkpoints.size());
  for (const auto &[C, Floor] : Checkpoints) {
    W.u64(C);
    W.u64(Floor);
  }
  W.u64(NextRes);
  W.u64(NextCkpt);
}

bool QueueLock::loadState(support::BinReader &R) {
  if (R.u32() != Queues.size())
    return false; // geometry mismatch: not a snapshot of this lock
  for (Queue &Q : Queues) {
    Q.InUse = R.b();
    Q.Addr = R.u64();
    uint32_t NW = R.u32();
    if (!R.ok() || NW > Depth)
      return false;
    Q.Waiters.clear();
    for (uint32_t I = 0; I != NW; ++I)
      Q.Waiters.push_back(R.u64());
  }
  uint64_t NRes = R.u64();
  Reservations.clear();
  for (uint64_t I = 0; I != NRes && R.ok(); ++I) {
    ResId Id = R.u64();
    Reservation Res;
    Res.Addr = R.u64();
    uint8_t M = R.u8();
    Res.QueueIdx = R.u32();
    Res.Accessed = R.b();
    if (M > 2 || Res.QueueIdx >= Queues.size())
      return false;
    Res.M = static_cast<Access>(M);
    Reservations[Id] = Res;
  }
  uint64_t NCkpt = R.u64();
  Checkpoints.clear();
  for (uint64_t I = 0; I != NCkpt && R.ok(); ++I) {
    CkptId C = R.u64();
    Checkpoints[C] = R.u64();
  }
  NextRes = R.u64();
  NextCkpt = R.u64();
  return R.ok();
}
