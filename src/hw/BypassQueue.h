//===- BypassQueue.h - Bypassing write-buffer hazard lock ------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bypassing lock of Section 2.3: writes commit to memory in
/// reservation order from a queue of (address, data, valid) entries, and
/// pending write values are forwarded combinationally to younger reads.
/// Read reservations search the write queue for the newest conflicting
/// write; a read is ready once that write has executed (or there is none).
/// Read data is buffered at reservation time so the memory itself is only
/// accessed in the reservation cycle. This lock fully bypasses a standard
/// 5-stage in-order core. Checkpoint/rollback reuses the write queue: the
/// head position is the checkpoint, and rollback strips newer entries
/// (Section 2.5).
///
/// ReadWrite (exclusive) reservations own both directions: they enqueue a
/// write entry and also capture a read dependence on the newest older
/// write to the same address.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_BYPASSQUEUE_H
#define PDL_HW_BYPASSQUEUE_H

#include "hw/Lock.h"

#include <deque>
#include <map>

namespace pdl {
namespace hw {

class BypassQueueLock : public HazardLock {
public:
  explicit BypassQueueLock(Memory &Mem, unsigned WriteDepth = 4,
                           unsigned ReadDepth = 4)
      : HazardLock(Mem), WriteDepth(WriteDepth), ReadDepth(ReadDepth) {}

  bool canReserve(uint64_t Addr, Access M) const override;
  ResId reserve(uint64_t Addr, Access M) override;
  bool ready(ResId R) const override;
  bool readyNow(uint64_t Addr, Access M) const override;
  Bits peek(uint64_t Addr, Access M) const override;
  Bits read(ResId R) override;
  void write(ResId R, Bits V) override;
  void release(ResId R) override;
  CkptId checkpoint() override;
  void rollback(CkptId C) override;
  void commitCheckpoint(CkptId C) override;
  void saveState(support::BinWriter &W) const override;
  bool loadState(support::BinReader &R) override;
  std::string name() const override { return "bypass"; }

  unsigned writeDepth() const { return WriteDepth; }
  unsigned readDepth() const { return ReadDepth; }
  size_t pendingWrites() const { return WQ.size(); }
  size_t pendingReads() const { return Reads.size(); }

private:
  struct WriteEntry {
    ResId Seq = 0;
    uint64_t Addr = 0;
    Bits Data;
    bool Valid = false;   // data has been written
    bool Written = false; // a write op executed (exclusive may skip it)
  };
  struct ReadRes {
    uint64_t Addr = 0;
    Bits Buffered;     // memory (or committed forward) data
    ResId DepSeq = 0;  // newest older conflicting write
    bool HasDep = false;
  };

  const WriteEntry *findEntry(ResId Seq) const;
  WriteEntry *findEntry(ResId Seq);
  /// Newest write entry for \p Addr older than \p Before (0 = none).
  ResId newestConflict(uint64_t Addr, ResId Before) const;
  /// Publishes a committed write to dependent read reservations.
  void forwardCommit(const WriteEntry &E);

  unsigned WriteDepth, ReadDepth;
  std::deque<WriteEntry> WQ; // front = oldest
  std::map<ResId, ReadRes> Reads;
  std::map<CkptId, ResId> Checkpoints;
  ResId NextRes = 1;
  CkptId NextCkpt = 1;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_BYPASSQUEUE_H
