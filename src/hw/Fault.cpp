//===- Fault.cpp - Seeded fault-injection plans -----------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/Fault.h"

#include <cstdlib>

using namespace pdl;
using namespace pdl::hw;

std::optional<FaultKind> hw::parseFaultKind(const std::string &S) {
  for (unsigned K = 0; K <= unsigned(FaultKind::DropStageOutcome); ++K)
    if (S == faultKindName(FaultKind(K)))
      return FaultKind(K);
  return std::nullopt;
}

std::string hw::printFaultPlan(const FaultPlan &P) {
  std::string Out = faultKindName(P.Kind);
  std::string Fields;
  auto Add = [&Fields](const char *Key, const std::string &Val) {
    if (Val.empty())
      return;
    if (!Fields.empty())
      Fields += ',';
    Fields += Key;
    Fields += '=';
    Fields += Val;
  };
  Add("pipe", P.Pipe);
  Add("mem", P.Mem);
  Add("from", P.FromStage);
  Add("to", P.ToStage);
  if (P.Nth != 1)
    Add("nth", std::to_string(P.Nth));
  if (P.Bit != 0)
    Add("bit", std::to_string(P.Bit));
  Add("var", P.Var);
  if (!Fields.empty()) {
    Out += ':';
    Out += Fields;
  }
  return Out;
}

std::optional<FaultPlan> hw::parseFaultPlan(const std::string &S,
                                            std::string *Err) {
  auto Fail = [Err](const std::string &Why) -> std::optional<FaultPlan> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };

  size_t Colon = S.find(':');
  std::string KindStr = S.substr(0, Colon);
  std::optional<FaultKind> Kind = parseFaultKind(KindStr);
  if (!Kind)
    return Fail("unknown fault kind '" + KindStr + "'");

  FaultPlan P;
  P.Kind = *Kind;
  if (Colon == std::string::npos)
    return P;

  size_t Pos = Colon + 1;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    std::string Field = S.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Field.empty())
      continue;
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos)
      return Fail("fault field '" + Field + "' is not key=value");
    std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
    if (Key == "pipe") {
      P.Pipe = Val;
    } else if (Key == "mem") {
      P.Mem = Val;
    } else if (Key == "from") {
      P.FromStage = Val;
    } else if (Key == "to") {
      P.ToStage = Val;
    } else if (Key == "nth") {
      P.Nth = std::strtoull(Val.c_str(), nullptr, 0);
    } else if (Key == "bit") {
      P.Bit = unsigned(std::strtoul(Val.c_str(), nullptr, 0));
    } else if (Key == "var") {
      P.Var = Val;
    } else {
      return Fail("unknown fault field '" + Key + "'");
    }
  }
  return P;
}
