//===- Fault.h - Seeded fault-injection plans ------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-injection vocabulary for the dynamic verification harness. A
/// FaultPlan names one perturbation of one hardware primitive; the executor
/// (System::armFault) arms the primitive so the Nth matching operation is
/// perturbed. Every kind must be caught by a runtime monitor, by golden-model
/// divergence, or by the deadlock diagnosis — the (kind x detector) matrix is
/// asserted in tests/VerifyTest.cpp and documented in docs/robustness.md.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_FAULT_H
#define PDL_HW_FAULT_H

#include <cstdint>
#include <optional>
#include <string>

namespace pdl {
namespace hw {

enum class FaultKind : uint8_t {
  FifoDropThread,     // swallow the Nth enqueue onto a stage edge
  FifoDupThread,      // duplicate the Nth enqueue (same thread twice)
  FifoCorruptPayload, // flip bit `Bit` of variable `Var` in the Nth enqueue
  DropLockRelease,    // a lock release completes but is lost to observers
  HwDropLockRelease,  // the lock implementation itself swallows release()
  SuppressMispredict, // SpecTable::verify marks a wrong prediction Correct
  SkipSquash,         // a mispredicted thread escapes its kill
  SkipCascade,        // cascadeMispredict leaves descendants Pending
  DropMemResponse,    // a scheduled sync-memory delivery never arrives
  DoubleRollback,     // lock checkpoints rolled back twice on one verify
  DropStageOutcome,   // one non-idle stage outcome never reaches the stats
};

inline const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::FifoDropThread:
    return "fifo-drop-thread";
  case FaultKind::FifoDupThread:
    return "fifo-dup-thread";
  case FaultKind::FifoCorruptPayload:
    return "fifo-corrupt-payload";
  case FaultKind::DropLockRelease:
    return "drop-lock-release";
  case FaultKind::HwDropLockRelease:
    return "hw-drop-lock-release";
  case FaultKind::SuppressMispredict:
    return "suppress-mispredict";
  case FaultKind::SkipSquash:
    return "skip-squash";
  case FaultKind::SkipCascade:
    return "skip-cascade";
  case FaultKind::DropMemResponse:
    return "drop-mem-response";
  case FaultKind::DoubleRollback:
    return "double-rollback";
  case FaultKind::DropStageOutcome:
    return "drop-stage-outcome";
  }
  return "unknown-fault";
}

/// One armed perturbation. Stage and memory identities are by name so plans
/// can be written in tests and repro bundles without elaboration indices;
/// empty FromStage/ToStage selects the pipe's entry queue.
struct FaultPlan {
  FaultKind Kind;
  std::string Pipe;      // pipeline the fault targets
  std::string Mem;       // lock faults: the guarded memory's name
  std::string FromStage; // FIFO faults: producing stage ("" = entry queue)
  std::string ToStage;   // FIFO faults: consuming stage ("" = entry queue)
  uint64_t Nth = 1;      // perturb the Nth matching operation (1-based)
  unsigned Bit = 0;      // FifoCorruptPayload: bit to flip
  std::string Var;       // FifoCorruptPayload: thread variable to corrupt
};

/// Parses a faultKindName() spelling back to its kind.
std::optional<FaultKind> parseFaultKind(const std::string &S);

/// Stable single-token spelling of a full plan — the wire-protocol and
/// cache-key form:
///
///   kind[:pipe=P,mem=M,from=S,to=S,nth=N,bit=N,var=V]
///
/// Fields at their default values are omitted, so the spelling is
/// canonical: printFaultPlan(parseFaultPlan(S)) == S for any S the printer
/// emits, and parseFaultPlan(printFaultPlan(P)) reproduces P field for
/// field.
std::string printFaultPlan(const FaultPlan &P);
std::optional<FaultPlan> parseFaultPlan(const std::string &S,
                                        std::string *Err = nullptr);

} // namespace hw
} // namespace pdl

#endif // PDL_HW_FAULT_H
