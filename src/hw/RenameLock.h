//===- RenameLock.h - Renaming register-file hazard lock -------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The renaming-register-file lock of Section 2.3, the kind used in modern
/// out-of-order processors. A map table translates architectural addresses
/// to physical names; write reservation allocates a fresh physical name
/// (from a free list) and read reservation looks the current name up.
/// Per-register valid bits make reads block until the producer has written.
/// Release of a write frees the *previous* mapping and advances the commit
/// table (the architectural view). Checkpoints replicate the map table;
/// rollback restores it and recomputes the free list.
///
/// Data lives in the physical register file owned by this lock; the
/// underlying Memory provides only the initial contents and the geometry.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_HW_RENAMELOCK_H
#define PDL_HW_RENAMELOCK_H

#include "hw/Lock.h"

#include <deque>
#include <map>
#include <vector>

namespace pdl {
namespace hw {

class RenameLock : public HazardLock {
public:
  /// \p ExtraPhys additional physical registers beyond the architectural
  /// count (bounds the number of in-flight writes).
  explicit RenameLock(Memory &Mem, unsigned ExtraPhys = 8);

  bool canReserve(uint64_t Addr, Access M) const override;
  ResId reserve(uint64_t Addr, Access M) override;
  bool ready(ResId R) const override;
  bool readyNow(uint64_t Addr, Access M) const override;
  Bits peek(uint64_t Addr, Access M) const override;
  Bits read(ResId R) override;
  void write(ResId R, Bits V) override;
  void release(ResId R) override;
  CkptId checkpoint() override;
  void rollback(CkptId C) override;
  void commitCheckpoint(CkptId C) override;
  void saveState(support::BinWriter &W) const override;
  bool loadState(support::BinReader &R) override;
  Bits archRead(uint64_t Addr) const override;
  std::string name() const override { return "rename"; }

  unsigned physCount() const { return Phys.size(); }
  size_t freeRegs() const { return FreeList.size(); }

private:
  struct Reservation {
    uint64_t Addr = 0;
    Access M = Access::Read;
    unsigned PhysReg = 0; // producer target (W) or source (R)
    unsigned OldPhys = 0; // previous mapping, freed at release (W)
  };
  struct Snapshot {
    std::vector<unsigned> MapTable;
  };

  void recomputeFreeList();

  unsigned ArchCount;
  std::vector<Bits> Phys;
  std::vector<bool> Valid;
  std::vector<unsigned> MapTable;    // newest (speculative) mapping
  std::vector<unsigned> CommitTable; // committed architectural mapping
  std::deque<unsigned> FreeList;
  std::map<ResId, Reservation> Reservations;
  std::map<CkptId, Snapshot> Checkpoints;
  std::map<CkptId, ResId> CheckpointFloors;
  ResId NextRes = 1;
  CkptId NextCkpt = 1;
};

} // namespace hw
} // namespace pdl

#endif // PDL_HW_RENAMELOCK_H
