//===- Differ.cpp - Differential execution against the golden model ---------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/Differ.h"

#include "obs/Json.h"
#include "obs/Sinks.h"
#include "obs/VcdWriter.h"
#include "riscv/Assembler.h"
#include "riscv/GoldenSim.h"
#include "verify/ProgGen.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace pdl;
using namespace pdl::verify;

DiffResult verify::runDiff(const std::string &AsmSource, const DiffConfig &C) {
  DiffResult Res;
  std::vector<uint32_t> Words = riscv::assemble(AsmSource);

  // The architectural oracle: run to the halt store, keep the final state.
  riscv::GoldenSim Golden(cores::ImemAddrBits, cores::DmemAddrBits);
  Golden.loadProgram(Words);
  Golden.setHaltStore(cores::HaltByteAddr);
  uint64_t GoldenInstrs = Golden.run(4 * C.MaxCycles + 64);

  cores::Core Core(C.Kind, cores::PredictorKind::Bht2Bit, C.Profile);
  backend::System &Sys = Core.system();
  // Let older in-flight work (e.g. a load miss parked in writeback behind
  // the posted halt store) land before the clock stops, so the final
  // architectural state is comparable against the golden model.
  Sys.setDrainOnHalt(true);

  obs::CounterSink Counters;
  obs::LogSink Log;
  MonitorSink Monitors;
  std::ofstream VcdOS;
  std::unique_ptr<obs::VcdWriter> Vcd;
  Sys.attachSink(Counters);
  if (C.WantDigest)
    Sys.attachSink(Log);
  if (C.WithMonitors)
    Sys.attachSink(Monitors);
  if (!C.VcdPath.empty()) {
    VcdOS.open(C.VcdPath);
    if (VcdOS) {
      Vcd = std::make_unique<obs::VcdWriter>(VcdOS);
      Sys.attachSink(*Vcd);
    }
  }
  if (C.Fault)
    Sys.armFault(*C.Fault);

  Core.loadProgram(Words);
  cores::Core::RunResult R = Core.run(C.MaxCycles, /*CheckGolden=*/true);
  Sys.finishTrace();

  Res.Outcome = R.Outcome;
  Res.Cycles = R.Cycles;
  Res.Instrs = R.Instrs;
  Res.FaultsInjected = Sys.stats().FaultsInjected;
  if (C.WithMonitors) {
    Res.Violations = Monitors.count();
    Res.ViolationList = Monitors.violations();
  }
  if (C.WantDigest)
    Res.TraceDigest = Log.digest();
  if (R.Deadlocked && Sys.deadlockDiagnosis().valid())
    Res.DeadlockDiagnosis = Sys.deadlockDiagnosis().render();

  Res.Report = Counters.report();
  Res.Report.Outcome = Res.Outcome;
  Res.Report.Violations = Res.Violations;

  auto Diverge = [&](std::string Why) {
    if (!Res.Divergent)
      Res.Reason = std::move(Why);
    Res.Divergent = true;
  };

  if (!Golden.halted()) {
    Diverge("golden simulator did not halt (generator bug?)");
    return Res;
  }
  if (!R.Halted) {
    Diverge("core did not halt: outcome=" + Res.Outcome);
    return Res;
  }
  if (!R.TraceMatches)
    Diverge("commit trace mismatch: " + R.TraceMismatch);
  // The golden model counts the halting store; the core stops simulating
  // when that store commits, before the thread reaches retire — so an
  // exact run retires GoldenInstrs or GoldenInstrs - 1 instructions.
  // Dropped/duplicated instructions inside that window are still caught by
  // the per-commit trace compare and the final-state diff below.
  if (R.Instrs + 1 != GoldenInstrs && R.Instrs != GoldenInstrs)
    Diverge("retired " + std::to_string(R.Instrs) + " instrs vs golden " +
            std::to_string(GoldenInstrs));

  // Final architectural state: the register file and the scratch window
  // the generator's loads/stores alias.
  backend::MemHandle Rf = Sys.memHandle(Core.cpu(), "rf");
  for (unsigned Reg = 1; Reg != 32 && !Res.Divergent; ++Reg) {
    uint64_t Got = Sys.archRead(Rf, Reg).zext();
    if (Got != Golden.reg(Reg)) {
      std::ostringstream OS;
      OS << "final x" << Reg << " = 0x" << std::hex << Got << " vs golden 0x"
         << Golden.reg(Reg);
      Diverge(OS.str());
    }
  }
  for (uint32_t W = ScratchBaseWord;
       W != ScratchBaseWord + ScratchWords && !Res.Divergent; ++W) {
    uint64_t Got = Sys.archRead(Core.dmem(), W).zext();
    if (Got != Golden.loadData(W)) {
      std::ostringstream OS;
      OS << "final dmem[" << W << "] = 0x" << std::hex << Got
         << " vs golden 0x" << Golden.loadData(W);
      Diverge(OS.str());
    }
  }
  return Res;
}

std::string verify::shrink(const std::string &AsmSource, const DiffConfig &C) {
  // Re-runs during shrinking never need waveforms or digests.
  DiffConfig SC = C;
  SC.VcdPath.clear();
  SC.WantDigest = false;

  std::vector<std::string> Lines;
  {
    std::istringstream IS(AsmSource);
    std::string L;
    while (std::getline(IS, L))
      Lines.push_back(L);
  }
  // Only plain instruction lines are removable: labels must survive for
  // branch targets, and the halt epilogue (everything touching x31 plus
  // the final spin loop) keeps every variant terminating.
  auto Removable = [](const std::string &L) {
    return L.size() > 2 && L[0] == ' ' && L.find(':') == std::string::npos &&
           L.find("x31") == std::string::npos &&
           L.find("j halt") == std::string::npos;
  };
  auto Join = [](const std::vector<std::string> &Ls) {
    std::string Out;
    for (const std::string &L : Ls) {
      Out += L;
      Out += '\n';
    }
    return Out;
  };

  unsigned Budget = 400; // cap on re-executions
  bool Improved = true;
  while (Improved && Budget) {
    Improved = false;
    for (size_t I = 0; I != Lines.size() && Budget; ++I) {
      if (!Removable(Lines[I]))
        continue;
      std::vector<std::string> Cand = Lines;
      Cand.erase(Cand.begin() + I);
      --Budget;
      if (runDiff(Join(Cand), SC).failed()) {
        Lines = std::move(Cand);
        Improved = true;
        --I; // the next line shifted into this slot
      }
    }
  }
  return Join(Lines);
}

bool verify::writeReproBundle(const std::string &Dir,
                              const std::string &AsmSource,
                              const std::string &Shrunk, uint64_t Seed,
                              const DiffConfig &C, const DiffResult &R) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return false;

  auto WriteFile = [&](const char *Name, const std::string &Text) {
    std::ofstream OS(Dir + "/" + Name);
    OS << Text;
    return bool(OS);
  };
  if (!WriteFile("program.s", AsmSource))
    return false;
  if (!Shrunk.empty() && !WriteFile("shrunk.s", Shrunk))
    return false;

  obs::Json Repro = obs::Json::object();
  Repro.set("seed", obs::Json(Seed));
  Repro.set("core", obs::Json(cores::coreName(C.Kind)));
  Repro.set("mem_profile", obs::Json(C.Profile.Name));
  Repro.set("max_cycles", obs::Json(C.MaxCycles));
  if (C.Fault)
    Repro.set("fault", obs::Json(hw::faultKindName(C.Fault->Kind)));
  Repro.set("outcome", obs::Json(R.Outcome));
  Repro.set("divergent", obs::Json(R.Divergent));
  Repro.set("reason", obs::Json(R.Reason));
  Repro.set("cycles", obs::Json(R.Cycles));
  Repro.set("instrs", obs::Json(R.Instrs));
  Repro.set("faults_injected", obs::Json(R.FaultsInjected));
  Repro.set("violations", obs::Json(R.Violations));
  if (!R.ViolationList.empty()) {
    obs::Json Vs = obs::Json::array();
    for (const Violation &V : R.ViolationList)
      Vs.push(obs::Json(V.str()));
    Repro.set("violation_list", std::move(Vs));
  }
  if (!R.DeadlockDiagnosis.empty())
    Repro.set("deadlock_diagnosis", obs::Json(R.DeadlockDiagnosis));
  if (!WriteFile("repro.json", Repro.dump(2) + "\n"))
    return false;
  if (!WriteFile("stats.json", R.Report.toJson() + "\n"))
    return false;

  // Re-run once more with a waveform attached so the bundle is viewable.
  DiffConfig VC = C;
  VC.VcdPath = Dir + "/trace.vcd";
  VC.WantDigest = false;
  runDiff(AsmSource, VC);
  return true;
}
