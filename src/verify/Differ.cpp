//===- Differ.cpp - Differential execution against the golden model ---------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/Differ.h"

#include "obs/Json.h"
#include "obs/Sinks.h"
#include "obs/VcdWriter.h"
#include "riscv/Assembler.h"
#include "riscv/GoldenSim.h"
#include "sim/WorkerPool.h"
#include "support/BinIO.h"
#include "verify/ProgGen.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace pdl;
using namespace pdl::verify;

obs::Json DiffConfig::toJsonValue() const {
  obs::Json V = obs::Json::object();
  V.set("core", obs::Json(cores::coreKindId(Kind)));
  V.set("mem_profile", obs::Json(Profile.Name));
  V.set("max_cycles", obs::Json(MaxCycles));
  V.set("monitors", obs::Json(WithMonitors));
  V.set("digest", obs::Json(WantDigest));
  V.set("jobs", obs::Json(uint64_t(Jobs)));
  if (!VcdPath.empty())
    V.set("vcd_path", obs::Json(VcdPath));
  if (Fault)
    V.set("fault", obs::Json(hw::printFaultPlan(*Fault)));
  // Emitted only when set, so pre-certification configs serialize to the
  // same bytes as before.
  if (Certify)
    V.set("certify", obs::Json(true));
  return V;
}

std::optional<DiffConfig> DiffConfig::fromJsonValue(const obs::Json &V,
                                                    std::string *Err) {
  auto Fail = [Err](const std::string &Why) -> std::optional<DiffConfig> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };
  if (V.kind() != obs::Json::Kind::Object)
    return Fail("config is not an object");

  DiffConfig C;
  if (const obs::Json *Core = V.get("core")) {
    std::optional<cores::CoreKind> K = cores::parseCoreKind(Core->asString());
    if (!K)
      return Fail("unknown core '" + Core->asString() + "'");
    C.Kind = *K;
  }
  if (const obs::Json *Prof = V.get("mem_profile")) {
    std::optional<cores::CoreMemProfile> P =
        cores::parseMemProfile(Prof->asString());
    if (!P)
      return Fail("unknown mem_profile '" + Prof->asString() + "'");
    C.Profile = *P;
  }
  if (const obs::Json *MC = V.get("max_cycles")) {
    if (!MC->isNumber())
      return Fail("max_cycles is not a number");
    C.MaxCycles = MC->asU64();
  }
  if (const obs::Json *M = V.get("monitors"))
    C.WithMonitors = M->asBool();
  if (const obs::Json *D = V.get("digest"))
    C.WantDigest = D->asBool();
  if (const obs::Json *J = V.get("jobs")) {
    if (!J->isNumber())
      return Fail("jobs is not a number");
    C.Jobs = unsigned(J->asU64());
    if (!C.Jobs)
      C.Jobs = 1;
  }
  if (const obs::Json *P = V.get("vcd_path"))
    C.VcdPath = P->asString();
  if (const obs::Json *F = V.get("fault")) {
    std::string FErr;
    std::optional<hw::FaultPlan> Plan = hw::parseFaultPlan(F->asString(), &FErr);
    if (!Plan)
      return Fail("bad fault plan: " + FErr);
    C.Fault = *Plan;
  }
  if (const obs::Json *Cy = V.get("certify"))
    C.Certify = Cy->asBool();
  return C;
}

obs::Json DiffResult::toJsonValue() const {
  obs::Json V = obs::Json::object();
  V.set("divergent", obs::Json(Divergent));
  V.set("reason", obs::Json(Reason));
  V.set("outcome", obs::Json(Outcome));
  V.set("cycles", obs::Json(Cycles));
  V.set("instrs", obs::Json(Instrs));
  V.set("faults_injected", obs::Json(FaultsInjected));
  V.set("violations", obs::Json(Violations));
  V.set("trace_digest", obs::Json(TraceDigest));
  if (!Tv.empty())
    V.set("tv", obs::Json(Tv));
  if (!ViolationList.empty()) {
    obs::Json Vs = obs::Json::array();
    for (const Violation &Viol : ViolationList)
      Vs.push(obs::Json(Viol.str()));
    V.set("violation_list", std::move(Vs));
  }
  if (!DeadlockDiagnosis.empty())
    V.set("deadlock_diagnosis", obs::Json(DeadlockDiagnosis));
  V.set("report", Report.toJsonValue());
  return V;
}

DiffResult verify::runDiff(const std::string &AsmSource, const DiffConfig &C) {
  DiffResult Res;
  if (C.Certify) {
    Res.Tv = tv::statusName(cores::certify(C.Kind)->St);
    // A refuted certificate means the compiled (possibly fused) artifact
    // provably diverges from its expression trees — never execute it.
    // PDL_TV_MUTATE seeds exactly this; the row still fails (BatchRunner
    // treats tv=rejected as a failure) without running miscompiled code.
    if (Res.Tv == "rejected") {
      Res.Outcome = "uncertified";
      return Res;
    }
  }
  std::vector<uint32_t> Words = riscv::assemble(AsmSource);

  // The architectural oracle: run to the halt store, keep the final state.
  riscv::GoldenSim Golden(cores::ImemAddrBits, cores::DmemAddrBits);
  Golden.loadProgram(Words);
  Golden.setHaltStore(cores::HaltByteAddr);
  uint64_t GoldenInstrs = Golden.run(4 * C.MaxCycles + 64);

  cores::Core Core(C.Kind, cores::PredictorKind::Bht2Bit, C.Profile);
  backend::System &Sys = Core.system();
  // Let older in-flight work (e.g. a load miss parked in writeback behind
  // the posted halt store) land before the clock stops, so the final
  // architectural state is comparable against the golden model.
  Sys.setDrainOnHalt(true);

  obs::CounterSink Counters;
  obs::LogSink Log;
  MonitorSink Monitors;
  std::ofstream VcdOS;
  std::unique_ptr<obs::VcdWriter> Vcd;
  Sys.attachSink(Counters);
  if (C.WantDigest)
    Sys.attachSink(Log);
  if (C.WithMonitors)
    Sys.attachSink(Monitors);
  if (!C.VcdPath.empty()) {
    VcdOS.open(C.VcdPath);
    if (VcdOS) {
      Vcd = std::make_unique<obs::VcdWriter>(VcdOS);
      Sys.attachSink(*Vcd);
    }
  }
  Core.loadProgram(Words);

  // Job checkpoint blob: four length-prefixed sections — the System
  // snapshot, then the CounterSink / LogSink / MonitorSink states. The
  // blob is self-contained: restoring needs only a Core elaborated from
  // the same DiffConfig (the snapshot embeds the config digest).
  auto MakeCheckpoint = [&]() {
    support::BinWriter W;
    W.str(Sys.snapshot());
    support::BinWriter CW;
    Counters.saveState(CW);
    W.str(CW.take());
    support::BinWriter LW;
    Log.saveState(LW);
    W.str(LW.take());
    support::BinWriter MW;
    Monitors.saveState(MW);
    W.str(MW.take());
    return W.take();
  };

  bool Resumed = false;
  if (!C.ResumeBlob.empty()) {
    support::BinReader R(C.ResumeBlob);
    std::string SysBlob = R.str();
    std::string CtrBlob = R.str();
    std::string LogBlob = R.str();
    std::string MonBlob = R.str();
    std::string RErr;
    bool Ok = R.ok() && R.done();
    if (!Ok)
      RErr = "malformed job blob";
    Ok = Ok && Sys.restore(SysBlob, &RErr);
    if (Ok) {
      support::BinReader CR(CtrBlob);
      Ok = Counters.loadState(CR);
      if (!Ok)
        RErr = "counter state rejected";
    }
    if (Ok && C.WantDigest) {
      support::BinReader LR(LogBlob);
      Ok = Log.loadState(LR);
      if (!Ok)
        RErr = "log state rejected";
    }
    if (Ok && C.WithMonitors) {
      support::BinReader MR(MonBlob);
      Ok = Monitors.loadState(MR);
      if (!Ok)
        RErr = "monitor state rejected";
    }
    if (!Ok) {
      // Never trust a damaged checkpoint: structured rejection, the caller
      // discards the blob and re-runs from cycle 0.
      Res.Outcome = "resume_rejected";
      Res.Divergent = true;
      Res.Reason = "resume blob rejected: " + RErr;
      return Res;
    }
    Resumed = true;
  }

  // On resume the restore already re-armed whatever part of the fault plan
  // had not fired; arming again would double-inject.
  if (C.Fault && !Resumed)
    Sys.armFault(*C.Fault);
  if (C.CkptEvery && C.CkptSave)
    Sys.setCheckpointHook(C.CkptEvery, [&](uint64_t Cycle) {
      C.CkptSave(Cycle, MakeCheckpoint());
    });

  // MaxCycles is a total budget from cycle 0, resumed or not, so both
  // paths stop at the same wall cycle.
  uint64_t Budget = C.MaxCycles;
  if (Resumed)
    Budget = Sys.stats().Cycles < C.MaxCycles
                 ? C.MaxCycles - Sys.stats().Cycles
                 : 0;
  cores::Core::RunResult R = Core.run(Budget, /*CheckGolden=*/true, Resumed);
  Sys.finishTrace();

  Res.Outcome = R.Outcome;
  Res.Cycles = R.Cycles;
  Res.Instrs = R.Instrs;
  Res.FaultsInjected = Sys.stats().FaultsInjected;
  if (C.WithMonitors) {
    Res.Violations = Monitors.count();
    Res.ViolationList = Monitors.violations();
  }
  if (C.WantDigest)
    Res.TraceDigest = Log.digest();
  if (R.Deadlocked && Sys.deadlockDiagnosis().valid())
    Res.DeadlockDiagnosis = Sys.deadlockDiagnosis().render();

  Res.Report = Counters.report();
  Res.Report.Outcome = Res.Outcome;
  Res.Report.Violations = Res.Violations;

  auto Diverge = [&](std::string Why) {
    if (!Res.Divergent)
      Res.Reason = std::move(Why);
    Res.Divergent = true;
  };

  if (!Golden.halted()) {
    Diverge("golden simulator did not halt (generator bug?)");
    return Res;
  }
  if (!R.Halted) {
    Diverge("core did not halt: outcome=" + Res.Outcome);
    return Res;
  }
  if (!R.TraceMatches)
    Diverge("commit trace mismatch: " + R.TraceMismatch);
  // The golden model counts the halting store; the core stops simulating
  // when that store commits, before the thread reaches retire — so an
  // exact run retires GoldenInstrs or GoldenInstrs - 1 instructions.
  // Dropped/duplicated instructions inside that window are still caught by
  // the per-commit trace compare and the final-state diff below.
  if (R.Instrs + 1 != GoldenInstrs && R.Instrs != GoldenInstrs)
    Diverge("retired " + std::to_string(R.Instrs) + " instrs vs golden " +
            std::to_string(GoldenInstrs));

  // Final architectural state: the register file and the scratch window
  // the generator's loads/stores alias.
  backend::MemHandle Rf = Sys.memHandle(Core.cpu(), "rf");
  for (unsigned Reg = 1; Reg != 32 && !Res.Divergent; ++Reg) {
    uint64_t Got = Sys.archRead(Rf, Reg).zext();
    if (Got != Golden.reg(Reg)) {
      std::ostringstream OS;
      OS << "final x" << Reg << " = 0x" << std::hex << Got << " vs golden 0x"
         << Golden.reg(Reg);
      Diverge(OS.str());
    }
  }
  for (uint32_t W = ScratchBaseWord;
       W != ScratchBaseWord + ScratchWords && !Res.Divergent; ++W) {
    uint64_t Got = Sys.archRead(Core.dmem(), W).zext();
    if (Got != Golden.loadData(W)) {
      std::ostringstream OS;
      OS << "final dmem[" << W << "] = 0x" << std::hex << Got
         << " vs golden 0x" << Golden.loadData(W);
      Diverge(OS.str());
    }
  }
  return Res;
}

std::string verify::shrink(const std::string &AsmSource, const DiffConfig &C) {
  // Re-runs during shrinking never need waveforms or digests.
  DiffConfig SC = C;
  SC.VcdPath.clear();
  SC.WantDigest = false;

  std::vector<std::string> Lines;
  {
    std::istringstream IS(AsmSource);
    std::string L;
    while (std::getline(IS, L))
      Lines.push_back(L);
  }
  // Only plain instruction lines are removable: labels must survive for
  // branch targets, and the halt epilogue (everything touching x31 plus
  // the final spin loop) keeps every variant terminating.
  auto Removable = [](const std::string &L) {
    return L.size() > 2 && L[0] == ' ' && L.find(':') == std::string::npos &&
           L.find("x31") == std::string::npos &&
           L.find("j halt") == std::string::npos;
  };
  auto Join = [](const std::vector<std::string> &Ls) {
    std::string Out;
    for (const std::string &L : Ls) {
      Out += L;
      Out += '\n';
    }
    return Out;
  };

  // Round-based: evaluate every candidate's single-line removal against
  // the current program — in parallel over C.Jobs workers — then decide
  // from the whole round's results. The accept rule never looks at
  // completion order, so the shrunk program is identical for every jobs
  // count (pdlfuzz --jobs byte-identity covers the repro bundles too).
  unsigned Budget = 400; // cap on re-executions
  bool Improved = true;
  while (Improved && Budget) {
    Improved = false;
    std::vector<size_t> Cand;
    for (size_t I = 0; I != Lines.size(); ++I)
      if (Removable(Lines[I]))
        Cand.push_back(I);
    if (Cand.size() > Budget)
      Cand.resize(Budget);
    if (Cand.empty())
      break;
    Budget -= Cand.size();
    std::vector<char> StillFails(Cand.size(), 0);
    sim::parallelForOrdered(C.Jobs, Cand.size(), [&](size_t K) {
      std::vector<std::string> Trial = Lines;
      Trial.erase(Trial.begin() + Cand[K]);
      StillFails[K] = runDiff(Join(Trial), SC).failed();
    });
    std::vector<size_t> Keep;
    for (size_t K = 0; K != Cand.size(); ++K)
      if (StillFails[K])
        Keep.push_back(Cand[K]);
    if (Keep.empty())
      break;
    if (Keep.size() > 1 && Budget) {
      // Lines that are individually removable usually stay removable
      // together; one verification run commits the whole set.
      std::vector<std::string> Trial = Lines;
      for (size_t J = Keep.size(); J-- > 0;)
        Trial.erase(Trial.begin() + Keep[J]);
      --Budget;
      if (runDiff(Join(Trial), SC).failed()) {
        Lines = std::move(Trial);
        Improved = true;
        continue;
      }
    }
    // The combined removal repaired the failure (or there was only one
    // candidate): take the first line alone and re-evaluate next round.
    Lines.erase(Lines.begin() + Keep.front());
    Improved = true;
  }
  return Join(Lines);
}

bool verify::writeReproBundle(const std::string &Dir,
                              const std::string &AsmSource,
                              const std::string &Shrunk, uint64_t Seed,
                              const DiffConfig &C, const DiffResult &R) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return false;

  auto WriteFile = [&](const char *Name, const std::string &Text) {
    std::ofstream OS(Dir + "/" + Name);
    OS << Text;
    return bool(OS);
  };

  // Files are written in sorted name order — config.json, program.s,
  // repro.json, shrunk.s, stats.json, trace.vcd — so bundle listings and
  // archives diff stably across producers.
  //
  // config.json pins the serial replay: seed plus the exact run
  // configuration, with jobs fixed at 1 so a bundle produced under
  // `pdlfuzz --jobs=N` replays one System on one thread.
  obs::Json Config = obs::Json::object();
  Config.set("seed", obs::Json(Seed));
  Config.set("jobs", obs::Json(uint64_t(1)));
  Config.set("core", obs::Json(cores::coreName(C.Kind)));
  Config.set("mem_profile", obs::Json(C.Profile.Name));
  Config.set("max_cycles", obs::Json(C.MaxCycles));
  if (C.Fault)
    Config.set("fault", obs::Json(hw::faultKindName(C.Fault->Kind)));
  if (!WriteFile("config.json", Config.dump(2) + "\n"))
    return false;
  if (!WriteFile("program.s", AsmSource))
    return false;

  obs::Json Repro = obs::Json::object();
  Repro.set("seed", obs::Json(Seed));
  Repro.set("core", obs::Json(cores::coreName(C.Kind)));
  Repro.set("mem_profile", obs::Json(C.Profile.Name));
  Repro.set("max_cycles", obs::Json(C.MaxCycles));
  if (C.Fault)
    Repro.set("fault", obs::Json(hw::faultKindName(C.Fault->Kind)));
  Repro.set("outcome", obs::Json(R.Outcome));
  Repro.set("divergent", obs::Json(R.Divergent));
  Repro.set("reason", obs::Json(R.Reason));
  Repro.set("cycles", obs::Json(R.Cycles));
  Repro.set("instrs", obs::Json(R.Instrs));
  Repro.set("faults_injected", obs::Json(R.FaultsInjected));
  Repro.set("violations", obs::Json(R.Violations));
  if (!R.ViolationList.empty()) {
    obs::Json Vs = obs::Json::array();
    for (const Violation &V : R.ViolationList)
      Vs.push(obs::Json(V.str()));
    Repro.set("violation_list", std::move(Vs));
  }
  if (!R.DeadlockDiagnosis.empty())
    Repro.set("deadlock_diagnosis", obs::Json(R.DeadlockDiagnosis));
  if (!WriteFile("repro.json", Repro.dump(2) + "\n"))
    return false;
  if (!Shrunk.empty() && !WriteFile("shrunk.s", Shrunk))
    return false;
  if (!WriteFile("stats.json", R.Report.toJson() + "\n"))
    return false;

  // Re-run once more with a waveform attached so the bundle is viewable.
  DiffConfig VC = C;
  VC.VcdPath = Dir + "/trace.vcd";
  VC.WantDigest = false;
  runDiff(AsmSource, VC);
  return true;
}
