//===- ProgGen.cpp - Seeded hazard-biased RISC-V program generator ----------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/ProgGen.h"

#include <sstream>

using namespace pdl;
using namespace pdl::verify;

namespace {

/// Work registers the generator reads and writes. x20 is the scratch base
/// pointer and x31 the halt pointer; both stay out of the pool.
constexpr unsigned WorkRegs[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
constexpr unsigned NumWorkRegs = sizeof(WorkRegs) / sizeof(WorkRegs[0]);
constexpr unsigned BaseReg = 20;

class Emitter {
public:
  Emitter(const GenConfig &C) : C(C), R(C.Seed) {}

  std::string run() {
    OS << "# pdlfuzz generated program, seed " << C.Seed << "\n";
    prologue();
    for (unsigned B = 0; B != C.Blocks; ++B)
      block(B);
    epilogue();
    return OS.str();
  }

private:
  unsigned pickReg() { return WorkRegs[R.below(NumWorkRegs)]; }

  /// Source register, biased toward the most recent destination so that
  /// back-to-back RAW dependences exercise bypass/stall paths.
  unsigned pickSrc() { return R.pct(C.RawHazardPct) ? LastRd : pickReg(); }

  /// Scratch word offset, biased toward a few hot words so loads and
  /// stores alias.
  unsigned pickOffset() {
    unsigned Word =
        R.pct(50) ? unsigned(R.below(4)) : unsigned(R.below(ScratchWords));
    return Word * 4;
  }

  void prologue() {
    OS << "  li x" << BaseReg << ", " << (ScratchBaseWord * 4) << "\n";
    for (unsigned I = 0; I != 6; ++I)
      OS << "  li x" << WorkRegs[I] << ", " << R.below(0x10000) << "\n";
    LastRd = WorkRegs[5];
  }

  void instr() {
    if (R.pct(C.MemOpPct)) {
      if (R.pct(50)) {
        unsigned Rd = pickReg();
        OS << "  lw x" << Rd << ", " << pickOffset() << "(x" << BaseReg
           << ")\n";
        LastRd = Rd;
      } else {
        OS << "  sw x" << pickSrc() << ", " << pickOffset() << "(x" << BaseReg
           << ")\n";
      }
      return;
    }
    unsigned Rd = pickReg();
    if (R.pct(40)) {
      static const char *ImmOps[] = {"addi", "andi", "ori", "xori", "slti"};
      const char *Op = ImmOps[R.below(5)];
      int64_t Imm = int64_t(R.below(256)) - 128;
      OS << "  " << Op << " x" << Rd << ", x" << pickSrc() << ", " << Imm
         << "\n";
    } else {
      static const char *RegOps[] = {"add", "sub", "and", "or",  "xor",
                                     "sll", "srl", "sra", "slt", "sltu"};
      const char *Op = RegOps[R.below(10)];
      OS << "  " << Op << " x" << Rd << ", x" << pickSrc() << ", x"
         << pickReg() << "\n";
    }
    LastRd = Rd;
  }

  void block(unsigned B) {
    OS << "b" << B << ":\n";
    for (unsigned I = 0; I != C.InstrsPerBlock; ++I)
      instr();
    // Forward-only control flow keeps every program terminating.
    if (B + 1 < C.Blocks && R.pct(C.BranchPct)) {
      unsigned Target = B + 1 + unsigned(R.below(C.Blocks - B - 1));
      if (R.pct(15)) {
        // Unconditional forward jump; skipped blocks become dead code,
        // which is fine (the assembler keeps them, execution never loops).
        OS << "  j b" << Target << "\n";
      } else {
        static const char *Brs[] = {"beq", "bne", "blt", "bge", "bltu",
                                    "bgeu"};
        OS << "  " << Brs[R.below(6)] << " x" << pickSrc() << ", x"
           << pickReg() << ", b" << Target << "\n";
      }
    }
  }

  void epilogue() {
    OS << "  li x31, 65532\n";
    OS << "  sw x0, 0(x31)\n";
    OS << "halt:\n";
    OS << "  j halt\n";
  }

  const GenConfig &C;
  Rng R;
  std::ostringstream OS;
  unsigned LastRd = WorkRegs[0];
};

} // namespace

std::string verify::generateProgram(const GenConfig &C) {
  return Emitter(C).run();
}
