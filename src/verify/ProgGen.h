//===- ProgGen.h - Seeded hazard-biased RISC-V program generator -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random RV32I program generation for the differential
/// fuzzer. Programs are emitted as assembly text for `riscv::assemble` and
/// are guaranteed to terminate: control flow is a chain of basic blocks
/// with forward-only conditional branches, ending in the standard halt
/// epilogue (store to cores::HaltByteAddr).
///
/// The instruction mix is biased toward the situations that stress a
/// pipelined implementation rather than uniform randomness: read-after-
/// write chains on a small register window (bypass/stall paths), loads
/// and stores aliasing a handful of scratch words (memory ordering and
/// the dmem queue lock), and compare-branch pairs whose operands were
/// just computed (speculation resolve/squash traffic).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_VERIFY_PROGGEN_H
#define PDL_VERIFY_PROGGEN_H

#include <cstdint>
#include <string>

namespace pdl {
namespace verify {

/// Scratch data region the generator's loads/stores alias (word
/// addresses); the differ compares this window against the golden
/// simulator after the run.
constexpr uint32_t ScratchBaseWord = 64;
constexpr uint32_t ScratchWords = 16;

struct GenConfig {
  uint64_t Seed = 1;
  /// Basic blocks in the forward chain (each a potential branch target).
  unsigned Blocks = 6;
  /// Instructions per block before the optional block-ending branch.
  unsigned InstrsPerBlock = 8;
  /// Probability weights (percent) for the hazard-biased draws.
  unsigned RawHazardPct = 60; // reuse the last written register
  unsigned MemOpPct = 30;     // loads/stores vs ALU
  unsigned BranchPct = 70;    // end a block with a conditional branch
};

/// Deterministic xorshift-based generator state (no libc rand, so the
/// same seed produces the same program on every platform).
class Rng {
public:
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    // xorshift64*
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  /// Uniform draw in [0, N).
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  /// True with probability Pct/100.
  bool pct(unsigned Pct) { return below(100) < Pct; }

private:
  uint64_t S;
};

/// Generates one seeded program as assembly text (ends with the halt
/// epilogue; ready for riscv::assemble).
std::string generateProgram(const GenConfig &C);

} // namespace verify
} // namespace pdl

#endif // PDL_VERIFY_PROGGEN_H
