//===- Monitors.cpp - Runtime invariant monitors ----------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/Monitors.h"

#include <sstream>

using namespace pdl;
using namespace pdl::verify;
using obs::Event;

std::string Violation::str() const {
  std::ostringstream OS;
  OS << Monitor << " violation at cycle " << Cycle << " (pipe " << Pipe
     << ", tid " << Tid << "): " << Detail;
  return OS.str();
}

void MonitorSink::begin(const obs::TraceMeta &M) {
  Meta = M;
  Found.clear();
  Count = 0;
  CurCycle = 0;
  Held.clear();
  SpecChild.clear();
  Doomed.clear();
  Fifos.clear();
  Outcomes.clear();
  Outcomes.resize(Meta.Pipes.size());
  for (size_t I = 0; I != Meta.Pipes.size(); ++I)
    Outcomes[I].resize(Meta.Pipes[I].Stages.size(), 0);
  CycleOpen = false;
  RolledBack.clear();
}

const std::string &MonitorSink::pipeName(uint16_t P) const {
  static const std::string Unknown = "?";
  return P < Meta.Pipes.size() ? Meta.Pipes[P].Name : Unknown;
}

std::string MonitorSink::memName(uint16_t P, uint16_t M) const {
  if (P < Meta.Pipes.size() && M < Meta.Pipes[P].Mems.size())
    return Meta.Pipes[P].Mems[M];
  return "?";
}

void MonitorSink::flag(const char *Monitor, uint64_t Cycle, uint16_t Pipe,
                       uint64_t Tid, std::string Detail) {
  ++Count;
  if (Found.size() >= MaxViolations)
    return;
  Violation V;
  V.Monitor = Monitor;
  V.Cycle = Cycle;
  V.Pipe = pipeName(Pipe);
  V.Tid = Tid;
  V.Detail = std::move(Detail);
  Found.push_back(std::move(V));
}

void MonitorSink::checkCycleBalance() {
  for (size_t PI = 0; PI != Outcomes.size(); ++PI)
    for (size_t SI = 0; SI != Outcomes[PI].size(); ++SI) {
      if (Outcomes[PI][SI] == 0)
        flag("stall-balance", CurCycle, uint16_t(PI), 0,
             "stage '" + Meta.Pipes[PI].Stages[SI] +
                 "' has no outcome this cycle");
      // The >1 case is flagged eagerly at the second StageOutcome.
      Outcomes[PI][SI] = 0;
    }
}

void MonitorSink::event(const Event &E) {
  switch (E.K) {
  case Event::Kind::CycleBegin:
    if (CycleOpen)
      checkCycleBalance();
    CycleOpen = true;
    CurCycle = E.Cycle;
    return;

  case Event::Kind::StageOutcome: {
    if (E.Pipe >= Outcomes.size() || E.Stage >= Outcomes[E.Pipe].size())
      return;
    uint32_t &N = Outcomes[E.Pipe][E.Stage];
    if (++N == 2)
      flag("stall-balance", E.Cycle, E.Pipe, E.Tid,
           "stage '" + Meta.Pipes[E.Pipe].Stages[E.Stage] +
               "' attributed more than one outcome this cycle");
    return;
  }

  case Event::Kind::LockReserve:
    if (E.Mem != obs::NoMem)
      ++Held[{E.Pipe, E.Tid}][E.Mem];
    return;

  case Event::Kind::LockRelease: {
    if (E.Mem == obs::NoMem)
      return;
    int64_t &N = Held[{E.Pipe, E.Tid}][E.Mem];
    if (--N < 0) {
      flag("lock-discipline", E.Cycle, E.Pipe, E.Tid,
           "release of " + memName(E.Pipe, E.Mem) + " without a reserve");
      N = 0;
    }
    return;
  }

  case Event::Kind::ThreadRetire: {
    auto HeldIt = Held.find({E.Pipe, E.Tid});
    if (HeldIt != Held.end()) {
      for (auto &[Mem, N] : HeldIt->second)
        if (N != 0)
          flag("lock-discipline", E.Cycle, E.Pipe, E.Tid,
               "retired still holding " + std::to_string(N) +
                   " reservation(s) on " + memName(E.Pipe, Mem));
      Held.erase(HeldIt);
    }
    if (Doomed.count({E.Pipe, E.Tid}))
      flag("spec-tree", E.Cycle, E.Pipe, E.Tid,
           "thread retired although its speculation resolved as "
           "mispredicted (missing squash)");
    Doomed.erase({E.Pipe, E.Tid});
    for (auto It = RolledBack.begin(); It != RolledBack.end();)
      if (std::get<0>(*It) == E.Pipe && std::get<1>(*It) == E.Tid)
        It = RolledBack.erase(It);
      else
        ++It;
    return;
  }

  case Event::Kind::ThreadSquash:
    // A squash legitimately ends a doomed thread and voids its lock and
    // checkpoint bookkeeping (the executor rolls those back separately).
    Held.erase({E.Pipe, E.Tid});
    Doomed.erase({E.Pipe, E.Tid});
    for (auto It = RolledBack.begin(); It != RolledBack.end();)
      if (std::get<0>(*It) == E.Pipe && std::get<1>(*It) == E.Tid)
        It = RolledBack.erase(It);
      else
        ++It;
    return;

  case Event::Kind::SpecAlloc:
    SpecChild[E.Value] = {E.Pipe, E.Tid};
    return;

  case Event::Kind::SpecResolve: {
    auto It = SpecChild.find(E.Value);
    if (It != SpecChild.end()) {
      if (!E.Flag)
        Doomed.insert(It->second);
      SpecChild.erase(It);
    }
    return;
  }

  case Event::Kind::SpecRollback: {
    if (!E.Flag || E.Mem == obs::NoMem)
      return; // re-steer rollbacks keep the checkpoint live
    auto Key = std::make_tuple(E.Pipe, E.Tid, E.Mem);
    if (!RolledBack.insert(Key).second)
      flag("ckpt-once", E.Cycle, E.Pipe, E.Tid,
           "checkpoint on " + memName(E.Pipe, E.Mem) +
               " finally rolled back twice");
    return;
  }

  case Event::Kind::FifoEnq: {
    auto &Q = Fifos[{E.Pipe, E.From, E.To}];
    for (uint64_t T : Q)
      if (T == E.Tid) {
        flag("fifo-conservation", E.Cycle, E.Pipe, E.Tid,
             "thread enqueued twice into the same FIFO");
        break;
      }
    Q.push_back(E.Tid);
    return;
  }

  case Event::Kind::FifoDeq: {
    auto &Q = Fifos[{E.Pipe, E.From, E.To}];
    if (Q.empty()) {
      flag("fifo-conservation", E.Cycle, E.Pipe, E.Tid,
           "dequeue from a FIFO the mirror believes is empty");
      return;
    }
    if (Q.front() != E.Tid) {
      flag("fifo-conservation", E.Cycle, E.Pipe, E.Tid,
           "dequeued tid " + std::to_string(E.Tid) +
               " but the mirror front is tid " + std::to_string(Q.front()));
      // Resync so one fault yields one violation, not a cascade.
      for (auto It = Q.begin(); It != Q.end(); ++It)
        if (*It == E.Tid) {
          Q.erase(It);
          return;
        }
    }
    Q.pop_front();
    return;
  }

  case Event::Kind::ThreadSpawn:
  case Event::Kind::Deadlock:
  case Event::Kind::MemHit:
  case Event::Kind::MemMiss:
  case Event::Kind::MemBackpressure:
  case Event::Kind::FaultInjected:
    return;
  }
}

void MonitorSink::end() {
  if (CycleOpen)
    checkCycleBalance();
  CycleOpen = false;
}

std::string MonitorSink::render() const {
  std::string Out;
  for (const Violation &V : Found) {
    Out += V.str();
    Out += '\n';
  }
  if (Count > Found.size())
    Out += "... and " + std::to_string(Count - Found.size()) + " more\n";
  return Out;
}

void MonitorSink::saveState(support::BinWriter &W) const {
  W.u32(static_cast<uint32_t>(Found.size()));
  for (const Violation &V : Found) {
    W.str(V.Monitor);
    W.u64(V.Cycle);
    W.str(V.Pipe);
    W.u64(V.Tid);
    W.str(V.Detail);
  }
  W.u64(Count);
  W.u64(CurCycle);
  W.u32(static_cast<uint32_t>(Held.size()));
  for (const auto &[Key, Mems] : Held) {
    W.u16(Key.first);
    W.u64(Key.second);
    W.u32(static_cast<uint32_t>(Mems.size()));
    for (const auto &[Mem, N] : Mems) {
      W.u16(Mem);
      W.i64(N);
    }
  }
  W.u32(static_cast<uint32_t>(SpecChild.size()));
  for (const auto &[Id, Child] : SpecChild) {
    W.u64(Id);
    W.u16(Child.first);
    W.u64(Child.second);
  }
  W.u32(static_cast<uint32_t>(Doomed.size()));
  for (const auto &[Pipe, Tid] : Doomed) {
    W.u16(Pipe);
    W.u64(Tid);
  }
  W.u32(static_cast<uint32_t>(Fifos.size()));
  for (const auto &[Key, Tids] : Fifos) {
    W.u16(std::get<0>(Key));
    W.u16(std::get<1>(Key));
    W.u16(std::get<2>(Key));
    W.u32(static_cast<uint32_t>(Tids.size()));
    for (uint64_t Tid : Tids)
      W.u64(Tid);
  }
  W.u32(static_cast<uint32_t>(Outcomes.size()));
  for (const std::vector<uint32_t> &Row : Outcomes) {
    W.u32(static_cast<uint32_t>(Row.size()));
    for (uint32_t N : Row)
      W.u32(N);
  }
  W.b(CycleOpen);
  W.u32(static_cast<uint32_t>(RolledBack.size()));
  for (const auto &[Pipe, Tid, Mem] : RolledBack) {
    W.u16(Pipe);
    W.u64(Tid);
    W.u16(Mem);
  }
}

bool MonitorSink::loadState(support::BinReader &R) {
  uint32_t NFound = R.u32();
  Found.clear();
  for (uint32_t I = 0; I != NFound && R.ok(); ++I) {
    Violation V;
    V.Monitor = R.str();
    V.Cycle = R.u64();
    V.Pipe = R.str();
    V.Tid = R.u64();
    V.Detail = R.str();
    Found.push_back(std::move(V));
  }
  Count = R.u64();
  CurCycle = R.u64();
  uint32_t NHeld = R.u32();
  Held.clear();
  for (uint32_t I = 0; I != NHeld && R.ok(); ++I) {
    uint16_t Pipe = R.u16();
    uint64_t Tid = R.u64();
    std::map<uint16_t, int64_t> Mems;
    uint32_t NMems = R.u32();
    for (uint32_t J = 0; J != NMems && R.ok(); ++J) {
      uint16_t Mem = R.u16();
      Mems[Mem] = R.i64();
    }
    Held[{Pipe, Tid}] = std::move(Mems);
  }
  uint32_t NSpec = R.u32();
  SpecChild.clear();
  for (uint32_t I = 0; I != NSpec && R.ok(); ++I) {
    uint64_t Id = R.u64();
    uint16_t Pipe = R.u16();
    uint64_t Tid = R.u64();
    SpecChild[Id] = {Pipe, Tid};
  }
  uint32_t NDoomed = R.u32();
  Doomed.clear();
  for (uint32_t I = 0; I != NDoomed && R.ok(); ++I) {
    uint16_t Pipe = R.u16();
    uint64_t Tid = R.u64();
    Doomed.insert({Pipe, Tid});
  }
  uint32_t NFifos = R.u32();
  Fifos.clear();
  for (uint32_t I = 0; I != NFifos && R.ok(); ++I) {
    uint16_t Pipe = R.u16(), From = R.u16(), To = R.u16();
    std::deque<uint64_t> Tids;
    uint32_t NTids = R.u32();
    for (uint32_t J = 0; J != NTids && R.ok(); ++J)
      Tids.push_back(R.u64());
    Fifos[{Pipe, From, To}] = std::move(Tids);
  }
  // Outcomes was sized by begin() from the trace meta; a mismatched shape
  // means the blob belongs to a different elaboration.
  uint32_t NPipes = R.u32();
  if (!R.ok() || NPipes != Outcomes.size())
    return false;
  for (std::vector<uint32_t> &Row : Outcomes) {
    uint32_t NStages = R.u32();
    if (!R.ok() || NStages != Row.size())
      return false;
    for (uint32_t &N : Row)
      N = R.u32();
  }
  CycleOpen = R.b();
  uint32_t NRolled = R.u32();
  RolledBack.clear();
  for (uint32_t I = 0; I != NRolled && R.ok(); ++I) {
    uint16_t Pipe = R.u16();
    uint64_t Tid = R.u64();
    uint16_t Mem = R.u16();
    RolledBack.insert({Pipe, Tid, Mem});
  }
  return R.ok();
}
