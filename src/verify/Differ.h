//===- Differ.h - Differential execution against the golden model -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison engine of the differential fuzzer: run one assembly
/// program through a PDL core (any CoreKind x CoreMemProfile, optionally
/// with invariant monitors attached and a fault armed) and diff it against
/// the architectural golden simulator — per-commit writebacks, retired
/// instruction count, final register file and scratch memory, and the
/// structured run outcome. Divergences can be shrunk to a minimal
/// instruction sequence and dumped as a self-contained repro bundle.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_VERIFY_DIFFER_H
#define PDL_VERIFY_DIFFER_H

#include "cores/Core.h"
#include "hw/Fault.h"
#include "obs/StatsReport.h"
#include "verify/Monitors.h"

#include <functional>
#include <optional>
#include <string>

namespace pdl {
namespace verify {

struct DiffConfig {
  cores::CoreKind Kind = cores::CoreKind::Pdl5Stage;
  cores::CoreMemProfile Profile; // default: always-hit
  uint64_t MaxCycles = 50000;
  /// Attach the MonitorSink and count invariant violations.
  bool WithMonitors = true;
  /// Attach a LogSink and record its FNV digest (determinism checks).
  bool WantDigest = false;
  /// When non-empty, write a VCD waveform of the run to this path.
  std::string VcdPath;
  /// When set, armed on the System before the run (fault injection).
  std::optional<hw::FaultPlan> Fault;
  /// Translation-validate the core's compiled bytecode (cores::certify)
  /// and report the certification status in the result's "tv" field. The
  /// proof is cached per core kind, so the per-run cost after the first
  /// request is a map lookup.
  bool Certify = false;
  /// Worker threads for shrink candidate evaluation. The shrink result is
  /// identical for every value (the accept rule reads a whole round's
  /// results, never completion order); > 1 only changes wall-clock.
  unsigned Jobs = 1;

  /// --- Checkpoint / resume (crash-safe service jobs) -------------------
  /// These are local execution policy, NOT part of the wire protocol:
  /// toJsonValue never emits them, so the service cache key — and the
  /// result bytes keyed by it — are identical with and without
  /// checkpointing. A resumed run produces the same result as an
  /// uninterrupted one (the snapshot layer's resume-equivalence guarantee).
  ///
  /// When CkptEvery > 0 and CkptSave is set, the run invokes CkptSave
  /// every CkptEvery cycles with a self-contained job blob (System
  /// snapshot + sink states, see makeJobCheckpoint/runDiff).
  uint64_t CkptEvery = 0;
  std::function<void(uint64_t Cycle, const std::string &Blob)> CkptSave;
  /// When non-empty, a job blob from CkptSave: the run restores it and
  /// continues instead of starting from cycle 0. A corrupt or mismatched
  /// blob yields outcome "resume_rejected" (the caller re-runs cold —
  /// never trust a damaged checkpoint).
  std::string ResumeBlob;

  /// Stable JSON form — the config fields of the service wire protocol
  /// (docs/service.md). Kind and Profile serialize as their stable string
  /// names (cores::coreKindId, CoreMemProfile::Name), the fault plan as
  /// its hw::printFaultPlan spelling; VcdPath and a fault are omitted when
  /// unset. fromJsonValue accepts any object toJsonValue produced (missing
  /// fields keep their defaults) and rejects unknown names with an error.
  obs::Json toJsonValue() const;
  static std::optional<DiffConfig> fromJsonValue(const obs::Json &V,
                                                 std::string *Err = nullptr);
};

struct DiffResult {
  /// The pipelined core disagreed with the golden model (commit trace,
  /// retired count, final architectural state) or failed to halt.
  bool Divergent = false;
  std::string Reason;
  /// Structured run outcome ("halted" / "deadlocked" / "timed_out" / ...).
  std::string Outcome;
  uint64_t Cycles = 0;
  uint64_t Instrs = 0;
  uint64_t FaultsInjected = 0;
  uint64_t Violations = 0;
  std::vector<Violation> ViolationList;
  /// FNV-1a digest of the textual event log (when WantDigest).
  uint64_t TraceDigest = 0;
  /// Certification status of the core's compiled circuit ("certified" /
  /// "fuzz-trusted" / "rejected"), filled when DiffConfig::Certify is set;
  /// empty (and absent from the JSON form) otherwise.
  std::string Tv;
  /// Full stats report with Outcome/FaultsInjected/Violations filled in.
  obs::StatsReport Report;
  /// Rendered wait-for-graph diagnosis when the run deadlocked.
  std::string DeadlockDiagnosis;

  /// A divergence or any invariant violation.
  bool failed() const { return Divergent || Violations != 0; }

  /// Stable JSON form — the "result" payload of the service wire protocol.
  /// Scalar fields always appear (in a fixed key order, so two identical
  /// results serialize to identical bytes); violation_list and
  /// deadlock_diagnosis appear only when non-empty. There is deliberately
  /// no fromJsonValue: results travel as JSON documents, they are not
  /// reconstructed into DiffResults on the client side.
  obs::Json toJsonValue() const;
  std::string toJson(int Indent = -1) const { return toJsonValue().dump(Indent); }
};

/// Assembles \p AsmSource, runs it under \p C, and diffs against the
/// golden simulator.
DiffResult runDiff(const std::string &AsmSource, const DiffConfig &C);

/// Removes instructions from \p AsmSource while the failure under \p C
/// persists; returns the minimal failing program (or \p AsmSource itself
/// if no line can be removed). Candidate re-executions within a round run
/// on C.Jobs workers; the result is jobs-invariant.
std::string shrink(const std::string &AsmSource, const DiffConfig &C);

/// Writes a self-contained repro bundle into directory \p Dir, in sorted
/// stable file order: config.json (seed + serial replay config), program.s,
/// repro.json, shrunk.s, stats.json, trace.vcd. Returns false on I/O
/// failure.
bool writeReproBundle(const std::string &Dir, const std::string &AsmSource,
                      const std::string &Shrunk, uint64_t Seed,
                      const DiffConfig &C, const DiffResult &R);

} // namespace verify
} // namespace pdl

#endif // PDL_VERIFY_DIFFER_H
