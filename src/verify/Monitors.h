//===- Monitors.h - Runtime invariant monitors over the trace bus -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic verification harness's invariant layer: `MonitorSink` is an
/// `obs::TraceSink` that mirrors executor-visible state from the event
/// stream and flags violations of the structural invariants the executor
/// is supposed to maintain. Because it only consumes events, it works in
/// release builds and on any System — attach it next to the counters and
/// it re-checks, every cycle:
///
///   - lock-discipline:    every lock release matches a prior reserve by
///                         the same thread, and no thread retires still
///                         holding a reservation
///   - spec-tree:          a thread spawned under a prediction that
///                         resolved as mispredicted must be squashed, not
///                         retired
///   - fifo-conservation:  inter-stage FIFOs neither duplicate nor reorder
///                         thread ids (mirror queues replayed from
///                         enq/deq events)
///   - stall-balance:      each stage is attributed exactly one outcome
///                         per cycle (the Fires + Stalls == Cycles
///                         invariant, checked cycle-by-cycle)
///   - ckpt-once:          a thread's speculative checkpoint on a memory
///                         is finally rolled back at most once
///
/// Violations are collected (up to MaxViolations) rather than aborting, so
/// the fault-injection tests can assert that a given fault is caught by a
/// given named monitor.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_VERIFY_MONITORS_H
#define PDL_VERIFY_MONITORS_H

#include "obs/TraceSink.h"
#include "support/BinIO.h"

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pdl {
namespace verify {

/// One invariant violation, attributed to the monitor that caught it.
struct Violation {
  std::string Monitor; // "lock-discipline", "spec-tree", ...
  uint64_t Cycle = 0;
  std::string Pipe;
  uint64_t Tid = 0;
  std::string Detail;

  std::string str() const;
};

class MonitorSink : public obs::TraceSink {
public:
  /// Stop recording (but keep counting) past this many violations.
  size_t MaxViolations = 64;

  void begin(const obs::TraceMeta &Meta) override;
  void event(const obs::Event &E) override;
  void end() override;

  const std::vector<Violation> &violations() const { return Found; }
  /// Total violations flagged (>= violations().size() once capped).
  uint64_t count() const { return Count; }
  bool clean() const { return Count == 0; }
  /// Multi-line rendering of every recorded violation.
  std::string render() const;

  /// Snapshot support (checkpointed service jobs): serializes the mirrored
  /// executor state and recorded violations so a resumed run keeps
  /// checking invariants mid-stream (Meta is rebuilt by begin() when the
  /// sink re-attaches). All containers are ordered, so identical state
  /// yields identical bytes.
  void saveState(support::BinWriter &W) const;
  bool loadState(support::BinReader &R);

private:
  void flag(const char *Monitor, uint64_t Cycle, uint16_t Pipe, uint64_t Tid,
            std::string Detail);
  void checkCycleBalance();
  const std::string &pipeName(uint16_t P) const;
  std::string memName(uint16_t P, uint16_t M) const;

  obs::TraceMeta Meta;
  std::vector<Violation> Found;
  uint64_t Count = 0;
  uint64_t CurCycle = 0;

  // lock-discipline: (pipe, tid) -> mem index -> outstanding reserves.
  std::map<std::pair<uint16_t, uint64_t>, std::map<uint16_t, int64_t>> Held;

  // spec-tree: live spec id -> (pipe, child tid); doomed (pipe, tid) pairs
  // whose prediction resolved as mispredicted and must never retire.
  std::map<uint64_t, std::pair<uint16_t, uint64_t>> SpecChild;
  std::set<std::pair<uint16_t, uint64_t>> Doomed;

  // fifo-conservation: mirror of every FIFO's thread-id order, keyed by
  // (pipe, from, to); the entry queue uses from == obs::NoEdge.
  std::map<std::tuple<uint16_t, uint16_t, uint16_t>, std::deque<uint64_t>>
      Fifos;

  // stall-balance: per pipe, per stage, outcomes seen this cycle.
  std::vector<std::vector<uint32_t>> Outcomes;
  bool CycleOpen = false;

  // ckpt-once: (pipe, tid, mem) triples already finally rolled back.
  std::set<std::tuple<uint16_t, uint64_t, uint16_t>> RolledBack;
};

} // namespace verify
} // namespace pdl

#endif // PDL_VERIFY_MONITORS_H
