//===- SourceMgr.cpp - Source buffers and locations -----------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceMgr.h"

#include <algorithm>

using namespace pdl;

void SourceMgr::setBuffer(std::string NewText, std::string NewName) {
  Text = std::move(NewText);
  Name = std::move(NewName);
  LineStarts.clear();
  LineStarts.push_back(0);
  for (unsigned I = 0, E = Text.size(); I != E; ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

LineCol SourceMgr::resolve(SourceLoc Loc) const {
  LineCol Result;
  if (!Loc.isValid() || Loc.Offset > Text.size())
    return Result;
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Loc.Offset);
  unsigned LineIdx = static_cast<unsigned>(It - LineStarts.begin()) - 1;
  unsigned Start = LineStarts[LineIdx];
  unsigned End = LineIdx + 1 < LineStarts.size() ? LineStarts[LineIdx + 1] - 1
                                                 : Text.size();
  Result.Line = LineIdx + 1;
  Result.Col = Loc.Offset - Start + 1;
  Result.LineText = std::string_view(Text).substr(Start, End - Start);
  return Result;
}
