//===- SvcFault.cpp - Service-layer fault injection vocabulary --------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SvcFault.h"

#include <cstdlib>
#include <mutex>

using namespace pdl;
using namespace pdl::service;

const char *pdl::service::svcFaultKindName(SvcFaultKind K) {
  switch (K) {
  case SvcFaultKind::TornWrite:
    return "torn-write";
  case SvcFaultKind::ShortRead:
    return "short-read";
  case SvcFaultKind::Enospc:
    return "enospc";
  case SvcFaultKind::CorruptEntry:
    return "corrupt-entry";
  case SvcFaultKind::DropConnection:
    return "drop-connection";
  }
  return "?";
}

static std::optional<SvcFaultKind> parseKind(const std::string &S) {
  for (SvcFaultKind K :
       {SvcFaultKind::TornWrite, SvcFaultKind::ShortRead, SvcFaultKind::Enospc,
        SvcFaultKind::CorruptEntry, SvcFaultKind::DropConnection})
    if (S == svcFaultKindName(K))
      return K;
  return std::nullopt;
}

std::string pdl::service::printSvcFaultPlan(const SvcFaultPlan &P) {
  std::string S = svcFaultKindName(P.Kind);
  if (P.Nth != 1)
    S += ":nth=" + std::to_string(P.Nth);
  return S;
}

std::optional<SvcFaultPlan>
pdl::service::parseSvcFaultPlan(const std::string &Text, std::string *Err) {
  auto Fail = [&](const std::string &Why) -> std::optional<SvcFaultPlan> {
    if (Err)
      *Err = "bad service fault plan '" + Text + "': " + Why;
    return std::nullopt;
  };
  size_t Colon = Text.find(':');
  std::string KindStr = Text.substr(0, Colon);
  std::optional<SvcFaultKind> K = parseKind(KindStr);
  if (!K)
    return Fail("unknown kind '" + KindStr +
                "' (expected torn-write, short-read, enospc, corrupt-entry "
                "or drop-connection)");
  SvcFaultPlan P;
  P.Kind = *K;
  if (Colon != std::string::npos) {
    std::string Opt = Text.substr(Colon + 1);
    if (Opt.rfind("nth=", 0) != 0)
      return Fail("expected ':nth=N', got ':" + Opt + "'");
    std::string Num = Opt.substr(4);
    char *End = nullptr;
    unsigned long long V = std::strtoull(Num.c_str(), &End, 10);
    if (Num.empty() || *End || V == 0)
      return Fail("nth must be a positive integer, got '" + Num + "'");
    P.Nth = V;
  }
  return P;
}

namespace {
struct ArmedState {
  std::mutex M;
  std::optional<SvcFaultPlan> Plan;
  uint64_t Seen = 0; // matching operations observed since arming
};
} // namespace

static ArmedState &state() {
  static ArmedState S;
  return S;
}

void pdl::service::armSvcFault(std::optional<SvcFaultPlan> P) {
  ArmedState &S = state();
  std::lock_guard<std::mutex> Guard(S.M);
  S.Plan = P;
  S.Seen = 0;
}

std::optional<SvcFaultPlan> pdl::service::armSvcFaultFromEnv(std::string *Err) {
  const char *Env = std::getenv("PDL_SVC_FAULT");
  if (!Env || !*Env)
    return std::nullopt;
  std::optional<SvcFaultPlan> P = parseSvcFaultPlan(Env, Err);
  if (P)
    armSvcFault(P);
  return P;
}

std::optional<SvcFaultPlan> pdl::service::armedSvcFault() {
  ArmedState &S = state();
  std::lock_guard<std::mutex> Guard(S.M);
  return S.Plan;
}

bool pdl::service::consumeSvcFault(SvcFaultKind K) {
  ArmedState &S = state();
  std::lock_guard<std::mutex> Guard(S.M);
  if (!S.Plan || S.Plan->Kind != K)
    return false;
  if (++S.Seen < S.Plan->Nth)
    return false;
  S.Plan.reset(); // single-shot
  return true;
}
