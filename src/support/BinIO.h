//===- BinIO.h - Little-endian binary serialization helpers ----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width little-endian binary writers/readers plus a CRC32, shared by
/// every snapshot/persistence producer in the tree: `System::snapshot()`
/// (backend), the hw-primitive `saveState`/`loadState` hooks, the sink and
/// monitor state codecs (obs/verify), and the on-disk result cache
/// (service). The format is deliberately dumb — explicit widths, explicit
/// ordering, length-prefixed strings — so the bytes are deterministic
/// across hosts and a reader can never be tricked past the end of its
/// buffer: every accessor bounds-checks and latches a failure flag instead
/// of reading garbage.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_BINIO_H
#define PDL_SUPPORT_BINIO_H

#include "support/Bits.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace pdl {
namespace support {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over \p N bytes.
/// Pass a previous result as \p Seed to continue an incremental checksum.
inline uint32_t crc32(const void *Data, size_t N, uint32_t Seed = 0) {
  static const auto Table = [] {
    struct T {
      uint32_t E[256];
    } T;
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T.E[I] = C;
    }
    return T;
  }();
  uint32_t C = ~Seed;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != N; ++I)
    C = Table.E[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

inline uint32_t crc32(const std::string &S, uint32_t Seed = 0) {
  return crc32(S.data(), S.size(), Seed);
}

/// Appends fixed-width little-endian fields to a growing byte buffer.
class BinWriter {
public:
  void u8(uint8_t V) { Buf.push_back(char(V)); }
  void u16(uint16_t V) { le(V, 2); }
  void u32(uint32_t V) { le(V, 4); }
  void u64(uint64_t V) { le(V, 8); }
  void i64(int64_t V) { le(static_cast<uint64_t>(V), 8); }
  void b(bool V) { u8(V ? 1 : 0); }

  /// u32 byte count followed by the raw bytes.
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }

  /// u8 width then u64 zero-extended value.
  void bits(const Bits &V) {
    u8(static_cast<uint8_t>(V.width()));
    u64(V.zext());
  }

  void raw(const void *Data, size_t N) {
    Buf.append(static_cast<const char *>(Data), N);
  }

  const std::string &buffer() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  void le(uint64_t V, int Bytes) {
    for (int I = 0; I != Bytes; ++I)
      Buf.push_back(char((V >> (8 * I)) & 0xFF));
  }

  std::string Buf;
};

/// Reads fields back in write order. Overruns and malformed fields latch a
/// failure flag (checked via ok()) and yield zero values; they never read
/// out of bounds, so a truncated or corrupt blob is detected, not trusted.
class BinReader {
public:
  explicit BinReader(const std::string &Data)
      : Buf(Data.data()), Size(Data.size()) {}
  BinReader(const char *Data, size_t N) : Buf(Data), Size(N) {}

  uint8_t u8() { return static_cast<uint8_t>(le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(le(4)); }
  uint64_t u64() { return le(8); }
  int64_t i64() { return static_cast<int64_t>(le(8)); }
  bool b() { return u8() != 0; }

  std::string str() {
    uint32_t N = u32();
    if (Failed || N > Size - Pos) {
      Failed = true;
      return {};
    }
    std::string S(Buf + Pos, N);
    Pos += N;
    return S;
  }

  Bits bits() {
    uint8_t W = u8();
    uint64_t V = u64();
    if (Failed || W < 1 || W > 64) {
      Failed = true;
      return Bits();
    }
    return Bits(V, W);
  }

  bool ok() const { return !Failed; }
  /// True iff every byte has been consumed without a failure.
  bool done() const { return !Failed && Pos == Size; }
  size_t pos() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

  /// Marks the blob bad explicitly (e.g. a semantic check failed).
  void fail() { Failed = true; }

private:
  uint64_t le(int Bytes) {
    if (Failed || size_t(Bytes) > Size - Pos) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I != Bytes; ++I)
      V |= uint64_t(uint8_t(Buf[Pos + I])) << (8 * I);
    Pos += Bytes;
    return V;
  }

  const char *Buf;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace support
} // namespace pdl

#endif // PDL_SUPPORT_BINIO_H
