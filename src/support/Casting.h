//===- Casting.h - LLVM-style isa/cast/dyn_cast ----------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI helpers in the style of llvm/Support/Casting.h. A class
/// hierarchy opts in by providing `static bool classof(const Base *)` on each
/// derived class, typically implemented by inspecting a Kind discriminator
/// stored in the base class.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_CASTING_H
#define PDL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace pdl {

/// Returns true if \p Val is an instance of the class \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returning false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagating it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace pdl

#endif // PDL_SUPPORT_CASTING_H
