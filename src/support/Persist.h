//===- Persist.h - Crash-safe record files for the service -----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one on-disk format the service layer persists through: a "record"
/// is a magic-tagged, versioned, CRC-guarded sequence of length-prefixed
/// sections (support/BinIO framing). The persistent result cache stores
/// one record per entry ({key, payload}); the checkpointed job store
/// stores one per in-flight job ({request line, checkpoint blob}).
///
/// Durability discipline: writeFileAtomic writes to `path.tmp`, fsyncs,
/// then renames over the final path — a crash leaves either the old file
/// or the new one, never a blend. decodeRecord trusts nothing: wrong
/// magic, wrong version, short buffer, trailing bytes, or a CRC mismatch
/// all fail cleanly, so a torn or bit-flipped file is detected, not
/// replayed. Both ends host the SvcFault hooks (torn-write, enospc,
/// corrupt-entry on write; short-read on read) so every recovery path is
/// drill-testable without a real power cut.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_PERSIST_H
#define PDL_SUPPORT_PERSIST_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pdl {
namespace service {
namespace persist {

/// Record magics ("PDLE" / "PDLJ" / "PDLN"): one persistent cache entry
/// ({key, payload}), one checkpointed in-flight job
/// ({request JSON, snapshot blob}), and one native-artifact descriptor
/// (backend/NativeCache.cpp: {abi, compiler identity, flags, module
/// digest, certificate digest, symbol list}).
constexpr uint32_t kCacheEntryMagic = 0x50444C45u;
constexpr uint32_t kJobMagic = 0x50444C4Au;
constexpr uint32_t kNativeArtifactMagic = 0x50444C4Eu;

/// Encodes sections as: u32 magic, u32 version(=1), u32 count, count
/// length-prefixed strings, u32 CRC-32 of everything prior.
std::string encodeRecord(uint32_t Magic, const std::vector<std::string> &Sections);

/// Inverse of encodeRecord. False (with \p Err set) on any mismatch:
/// magic, version, truncation, trailing garbage, or CRC.
bool decodeRecord(const std::string &Bytes, uint32_t Magic,
                  std::vector<std::string> *SectionsOut, std::string *Err);

/// Write-to-temp + fsync + atomic rename. False (with \p Err) when the
/// bytes did not durably land — including the injected enospc (nothing
/// written) and torn-write (a truncated final file left behind, as after
/// a power cut) faults. The injected corrupt-entry fault flips one byte
/// and then reports success: silent corruption the reader must catch.
bool writeFileAtomic(const std::string &Path, const std::string &Bytes,
                     std::string *Err);

/// Whole-file read; nullopt if the file cannot be opened. The injected
/// short-read fault returns only a prefix of the bytes.
std::optional<std::string> readFileBytes(const std::string &Path);

/// FNV-1a 64 over \p Bytes, and its fixed-width lowercase hex spelling —
/// the digest that names cache entry and job files.
uint64_t fnv1a64(const std::string &Bytes);
std::string hexDigest(uint64_t V);

/// mkdir -p. False (with \p Err) when a component cannot be created.
bool ensureDir(const std::string &Path, std::string *Err);

/// Lists regular files directly under \p Dir whose names end with
/// \p Suffix, sorted by (mtime, name) so reload order follows write
/// order. Missing directory yields an empty list.
struct DirEntry {
  std::string Name; // leaf name, not full path
  int64_t Mtime = 0; // nanoseconds, so back-to-back writes still order
};
std::vector<DirEntry> listDir(const std::string &Dir,
                              const std::string &Suffix);

} // namespace persist
} // namespace service
} // namespace pdl

#endif // PDL_SUPPORT_PERSIST_H
