//===- Bits.cpp - Sized two's-complement hardware values -----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bits.h"

#include <cstdio>

using namespace pdl;

Bits Bits::sdiv(const Bits &O) const {
  assert(Width == O.Width && "width mismatch in Bits operation");
  int64_t A = sext(), B = O.sext();
  if (B == 0)
    return Bits(~uint64_t(0), Width);
  int64_t Min = Width == 64 ? INT64_MIN : -(int64_t(1) << (Width - 1));
  if (A == Min && B == -1)
    return fromSigned(Min, Width);
  return fromSigned(A / B, Width);
}

Bits Bits::srem(const Bits &O) const {
  assert(Width == O.Width && "width mismatch in Bits operation");
  int64_t A = sext(), B = O.sext();
  if (B == 0)
    return *this;
  int64_t Min = Width == 64 ? INT64_MIN : -(int64_t(1) << (Width - 1));
  if (A == Min && B == -1)
    return Bits(0, Width);
  return fromSigned(A % B, Width);
}

std::string Bits::str() const {
  char Buf[32];
  unsigned HexDigits = (Width + 3) / 4;
  std::snprintf(Buf, sizeof(Buf), "%u'h%0*llx", Width, HexDigits,
                static_cast<unsigned long long>(Value));
  return Buf;
}
