//===- Diagnostics.h - Compiler diagnostics --------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the PDL compiler. Errors are accumulated rather
/// than thrown (the library is exception-free); clients inspect the engine
/// after each phase and abort compilation on errors.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_DIAGNOSTICS_H
#define PDL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceMgr.h"

#include <string>
#include <vector>

namespace pdl {

enum class DiagSeverity { Note, Warning, Error };

/// One reported issue, tied to a source location when known.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics emitted by compiler phases.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceMgr &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "name:line:col: severity: message" plus the
  /// offending source line, one block per diagnostic.
  std::string render() const;

  /// True if some diagnostic message contains \p Needle (used by tests).
  bool contains(std::string_view Needle) const;

private:
  const SourceMgr &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace pdl

#endif // PDL_SUPPORT_DIAGNOSTICS_H
