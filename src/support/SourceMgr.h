//===- SourceMgr.h - Source buffers and locations --------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns PDL source text and maps byte offsets to human-readable line/column
/// locations for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_SOURCEMGR_H
#define PDL_SUPPORT_SOURCEMGR_H

#include <string>
#include <string_view>
#include <vector>

namespace pdl {

/// A position in the source buffer, stored as a byte offset. Offset ~0 is the
/// invalid/unknown location.
struct SourceLoc {
  unsigned Offset = ~0u;

  static SourceLoc invalid() { return SourceLoc(); }
  bool isValid() const { return Offset != ~0u; }
};

/// A resolved location: 1-based line and column plus the line's text.
struct LineCol {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string_view LineText;
};

/// Owns one source buffer (this reproduction compiles one file at a time)
/// and resolves SourceLocs within it.
class SourceMgr {
public:
  SourceMgr() = default;

  /// Installs the buffer to compile; \p Name is used in diagnostics.
  void setBuffer(std::string Text, std::string Name = "<pdl>");

  std::string_view buffer() const { return Text; }
  const std::string &bufferName() const { return Name; }

  /// Resolves \p Loc to line/column; returns a zeroed LineCol if invalid.
  LineCol resolve(SourceLoc Loc) const;

private:
  std::string Text;
  std::string Name = "<pdl>";
  /// Byte offsets of the first character of each line.
  std::vector<unsigned> LineStarts;
};

} // namespace pdl

#endif // PDL_SUPPORT_SOURCEMGR_H
