//===- Persist.cpp - Crash-safe record files for the service ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Persist.h"

#include "support/SvcFault.h"
#include "support/BinIO.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pdl;
using namespace pdl::service;
using support::BinReader;
using support::BinWriter;

static constexpr uint32_t kRecordVersion = 1;

std::string persist::encodeRecord(uint32_t Magic,
                                  const std::vector<std::string> &Sections) {
  BinWriter W;
  W.u32(Magic);
  W.u32(kRecordVersion);
  W.u32(static_cast<uint32_t>(Sections.size()));
  for (const std::string &S : Sections)
    W.str(S);
  uint32_t Crc = support::crc32(W.buffer());
  W.u32(Crc);
  return W.take();
}

bool persist::decodeRecord(const std::string &Bytes, uint32_t Magic,
                           std::vector<std::string> *SectionsOut,
                           std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err)
      *Err = Why;
    return false;
  };
  if (Bytes.size() < 16)
    return Fail("record too short");
  uint32_t Stored = support::crc32(Bytes.data(), Bytes.size() - 4);
  BinReader Tail(Bytes.data() + Bytes.size() - 4, 4);
  if (Tail.u32() != Stored)
    return Fail("record checksum mismatch");
  BinReader R(Bytes.data(), Bytes.size() - 4);
  if (R.u32() != Magic)
    return Fail("record magic mismatch");
  if (R.u32() != kRecordVersion)
    return Fail("unsupported record version");
  uint32_t N = R.u32();
  std::vector<std::string> Sections;
  for (uint32_t I = 0; R.ok() && I != N; ++I)
    Sections.push_back(R.str());
  if (!R.done())
    return Fail("record truncated or has trailing bytes");
  if (SectionsOut)
    *SectionsOut = std::move(Sections);
  return true;
}

bool persist::writeFileAtomic(const std::string &Path,
                              const std::string &Bytes, std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    return false;
  };

  if (consumeSvcFault(SvcFaultKind::Enospc))
    return Fail("write " + Path + ": no space left on device (injected)");

  std::string Out = Bytes;
  // Silent corruption: the write "succeeds" but one byte lies. Only the
  // record CRC can catch this on the next read.
  if (consumeSvcFault(SvcFaultKind::CorruptEntry) && !Out.empty())
    Out[Out.size() / 2] ^= 0x40;

  if (consumeSvcFault(SvcFaultKind::TornWrite)) {
    // Power loss halfway through a non-atomic rewrite: a truncated final
    // file is left behind and the caller is told the persist failed.
    int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      ssize_t Ignored = ::write(Fd, Out.data(), Out.size() / 2);
      (void)Ignored;
      ::close(Fd);
    }
    return Fail("write " + Path + ": torn write (injected)");
  }

  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Fail("open " + Tmp + ": " + std::strerror(errno));
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t W = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      std::string Why = std::strerror(errno);
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return Fail("write " + Tmp + ": " + Why);
    }
    Off += size_t(W);
  }
  if (::fsync(Fd) < 0) {
    std::string Why = std::strerror(errno);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return Fail("fsync " + Tmp + ": " + Why);
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Path.c_str()) < 0) {
    std::string Why = std::strerror(errno);
    ::unlink(Tmp.c_str());
    return Fail("rename " + Tmp + " -> " + Path + ": " + Why);
  }
  return true;
}

std::optional<std::string> persist::readFileBytes(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return std::nullopt;
  std::string Bytes;
  char Chunk[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return std::nullopt;
    }
    if (N == 0)
      break;
    Bytes.append(Chunk, size_t(N));
  }
  ::close(Fd);
  if (consumeSvcFault(SvcFaultKind::ShortRead))
    Bytes.resize(Bytes.size() / 2);
  return Bytes;
}

uint64_t persist::fnv1a64(const std::string &Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Bytes) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H;
}

std::string persist::hexDigest(uint64_t V) {
  static const char *Hex = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[size_t(I)] = Hex[V & 0xF];
  return S;
}

bool persist::ensureDir(const std::string &Path, std::string *Err) {
  std::string Prefix;
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t Slash = Path.find('/', Pos);
    Prefix = Slash == std::string::npos ? Path : Path.substr(0, Slash);
    Pos = Slash == std::string::npos ? Path.size() + 1 : Slash + 1;
    if (Prefix.empty())
      continue; // leading '/'
    if (::mkdir(Prefix.c_str(), 0755) < 0 && errno != EEXIST) {
      if (Err)
        *Err = "mkdir " + Prefix + ": " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

std::vector<persist::DirEntry> persist::listDir(const std::string &Dir,
                                                const std::string &Suffix) {
  std::vector<DirEntry> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Out.push_back(
        {Name, int64_t(St.st_mtim.tv_sec) * 1000000000 + St.st_mtim.tv_nsec});
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end(), [](const DirEntry &A, const DirEntry &B) {
    return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Name < B.Name;
  });
  return Out;
}
