//===- SvcFault.h - Service-layer fault injection vocabulary ---*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Injectable storage/transport faults for the crash-safety layer, the
/// service-side twin of the hardware FaultPlan vocabulary (hw/Fault.h):
/// every recovery path in the persistent result cache, the checkpointed
/// job store, and the client retry loop is exercised by arming one of
/// these, never by hoping a real crash lands in the right place.
///
/// Kinds:
///   torn-write     persist stops halfway through the final file (power
///                  loss mid-write; no atomic rename happened)
///   short-read     a reload sees only a prefix of the file's bytes
///   enospc         the persist write fails outright (disk full); the
///                  in-memory entry must survive, service degrades
///   corrupt-entry  one payload byte is flipped before the (otherwise
///                  atomic) persist completes — only the CRC can tell
///   drop-connection the server closes a client's socket just before
///                  writing a response (client must retry/resubmit)
///
/// Plans are spelled `kind[:nth=N]` (N counts matching operations,
/// 1-based, default 1) and armed process-wide either programmatically
/// (tests) or from the PDL_SVC_FAULT environment variable (the pdlsimd
/// daemon, CI crash drills). A plan fires exactly once: consumeSvcFault()
/// returns true on the Nth matching operation and never again.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_SVCFAULT_H
#define PDL_SUPPORT_SVCFAULT_H

#include <cstdint>
#include <optional>
#include <string>

namespace pdl {
namespace service {

enum class SvcFaultKind : uint8_t {
  TornWrite,
  ShortRead,
  Enospc,
  CorruptEntry,
  DropConnection,
};

const char *svcFaultKindName(SvcFaultKind K);

struct SvcFaultPlan {
  SvcFaultKind Kind = SvcFaultKind::TornWrite;
  /// Fire on the Nth matching operation (1-based).
  uint64_t Nth = 1;
};

/// Canonical spelling: `kind[:nth=N]` (nth omitted when 1).
std::string printSvcFaultPlan(const SvcFaultPlan &P);

/// Parses printSvcFaultPlan()'s spelling. nullopt (with \p Err set) on an
/// unknown kind or malformed nth.
std::optional<SvcFaultPlan> parseSvcFaultPlan(const std::string &Text,
                                              std::string *Err = nullptr);

/// Arms \p P process-wide (resetting the operation counter), or disarms
/// when nullopt. Thread-safe.
void armSvcFault(std::optional<SvcFaultPlan> P);

/// Arms from the PDL_SVC_FAULT environment variable if it is set and
/// non-empty. Returns the armed plan, nullopt if unset; a malformed value
/// sets \p Err and leaves the previous arming untouched.
std::optional<SvcFaultPlan> armSvcFaultFromEnv(std::string *Err = nullptr);

/// The currently armed, not-yet-fired plan (nullopt once fired/disarmed).
std::optional<SvcFaultPlan> armedSvcFault();

/// Called by fault sites: counts one operation of kind \p K and returns
/// true iff the armed plan matches and this was its Nth occurrence. The
/// plan disarms on firing — a fault is a single event, not a mode.
bool consumeSvcFault(SvcFaultKind K);

} // namespace service
} // namespace pdl

#endif // PDL_SUPPORT_SVCFAULT_H
