//===- Diagnostics.cpp - Compiler diagnostics -----------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace pdl;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    LineCol LC = SM.resolve(D.Loc);
    OS << SM.bufferName() << ':';
    if (LC.Line)
      OS << LC.Line << ':' << LC.Col << ':';
    OS << ' ' << severityName(D.Severity) << ": " << D.Message << '\n';
    if (LC.Line) {
      OS << "  " << LC.LineText << '\n';
      OS << "  ";
      for (unsigned I = 1; I < LC.Col; ++I)
        OS << (LC.LineText[I - 1] == '\t' ? '\t' : ' ');
      OS << "^\n";
    }
  }
  return OS.str();
}

bool DiagnosticEngine::contains(std::string_view Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
