//===- Bits.h - Sized two's-complement hardware values ---------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation value domain: a bit vector of explicit width (1..64 bits)
/// with two's-complement arithmetic, matching PDL's `int<N>` / `uint<N>`
/// combinational semantics (wrap-around arithmetic, logical/arithmetic
/// shifts, bit slicing `x{hi:lo}` and concatenation `a ++ b`).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SUPPORT_BITS_H
#define PDL_SUPPORT_BITS_H

#include <cassert>
#include <cstdint>
#include <string>

namespace pdl {

/// A value of an explicit bit width, stored zero-extended in a uint64_t.
///
/// All operators require matching widths (asserted); use zext/sext/trunc for
/// explicit resizing. Signedness is not a property of the value: signed
/// comparison and arithmetic-shift variants are provided as named methods and
/// selected by the evaluator based on the static type of the operands.
class Bits {
public:
  Bits() : Value(0), Width(1) {}

  Bits(uint64_t Value, unsigned Width) : Width(Width) {
    assert(Width >= 1 && Width <= 64 && "unsupported bit width");
    this->Value = Value & mask();
  }

  /// Builds a Bits from a signed integer, truncating to \p Width.
  static Bits fromSigned(int64_t Value, unsigned Width) {
    return Bits(static_cast<uint64_t>(Value), Width);
  }

  uint64_t zext() const { return Value; }

  /// Sign-extends the value to a full int64_t.
  int64_t sext() const {
    if (Width == 64)
      return static_cast<int64_t>(Value);
    uint64_t SignBit = uint64_t(1) << (Width - 1);
    return static_cast<int64_t>((Value ^ SignBit) - SignBit);
  }

  unsigned width() const { return Width; }
  bool isZero() const { return Value == 0; }
  bool toBool() const { return Value != 0; }

  /// Returns bit \p Idx (0 = LSB) as a bool.
  bool bit(unsigned Idx) const {
    assert(Idx < Width && "bit index out of range");
    return (Value >> Idx) & 1;
  }

  // Arithmetic (wrap-around, same-width).
  Bits add(const Bits &O) const { return binop(O, Value + O.Value); }
  Bits sub(const Bits &O) const { return binop(O, Value - O.Value); }
  Bits mul(const Bits &O) const { return binop(O, Value * O.Value); }

  /// Unsigned division; division by zero yields all-ones (RISC-V semantics).
  Bits udiv(const Bits &O) const {
    return binop(O, O.Value == 0 ? ~uint64_t(0) : Value / O.Value);
  }

  /// Signed division with RISC-V semantics (div-by-zero => -1; overflow of
  /// INT_MIN / -1 => INT_MIN).
  Bits sdiv(const Bits &O) const;

  /// Unsigned remainder; remainder by zero yields the dividend.
  Bits urem(const Bits &O) const {
    return binop(O, O.Value == 0 ? Value : Value % O.Value);
  }

  /// Signed remainder with RISC-V semantics.
  Bits srem(const Bits &O) const;

  // Bitwise.
  Bits and_(const Bits &O) const { return binop(O, Value & O.Value); }
  Bits or_(const Bits &O) const { return binop(O, Value | O.Value); }
  Bits xor_(const Bits &O) const { return binop(O, Value ^ O.Value); }
  Bits not_() const { return Bits(~Value, Width); }

  /// Logical left shift; shift amounts >= width yield zero.
  Bits shl(const Bits &O) const {
    uint64_t Amt = O.Value;
    return Bits(Amt >= Width ? 0 : Value << Amt, Width);
  }

  /// Logical right shift; shift amounts >= width yield zero.
  Bits lshr(const Bits &O) const {
    uint64_t Amt = O.Value;
    return Bits(Amt >= Width ? 0 : Value >> Amt, Width);
  }

  /// Arithmetic right shift; shift amounts >= width yield the sign fill.
  Bits ashr(const Bits &O) const {
    uint64_t Amt = O.Value >= Width ? Width - 1 : O.Value;
    return fromSigned(sext() >> Amt, Width);
  }

  // Comparisons (result is always a 1-bit Bits).
  Bits eq(const Bits &O) const { return pred(Value == O.Value, O); }
  Bits ne(const Bits &O) const { return pred(Value != O.Value, O); }
  Bits ult(const Bits &O) const { return pred(Value < O.Value, O); }
  Bits ule(const Bits &O) const { return pred(Value <= O.Value, O); }
  Bits slt(const Bits &O) const { return pred(sext() < O.sext(), O); }
  Bits sle(const Bits &O) const { return pred(sext() <= O.sext(), O); }

  /// Extracts bits Hi..Lo inclusive, PDL's `x{hi:lo}` notation.
  Bits slice(unsigned Hi, unsigned Lo) const {
    assert(Hi >= Lo && Hi < Width && "bad slice bounds");
    return Bits(Value >> Lo, Hi - Lo + 1);
  }

  /// Concatenation `a ++ b`: \p this forms the high bits.
  Bits concat(const Bits &Low) const {
    assert(Width + Low.Width <= 64 && "concat exceeds 64 bits");
    return Bits((Value << Low.Width) | Low.Value, Width + Low.Width);
  }

  /// Zero-extend or truncate to \p NewWidth.
  Bits zextTo(unsigned NewWidth) const { return Bits(Value, NewWidth); }

  /// Sign-extend or truncate to \p NewWidth.
  Bits sextTo(unsigned NewWidth) const {
    return fromSigned(sext(), NewWidth);
  }

  bool operator==(const Bits &O) const {
    return Width == O.Width && Value == O.Value;
  }
  bool operator!=(const Bits &O) const { return !(*this == O); }

  /// Renders as e.g. "32'h0000002a".
  std::string str() const;

private:
  uint64_t mask() const {
    return Width == 64 ? ~uint64_t(0) : (uint64_t(1) << Width) - 1;
  }
  Bits binop(const Bits &O, uint64_t Raw) const {
    assert(Width == O.Width && "width mismatch in Bits operation");
    return Bits(Raw, Width);
  }
  Bits pred(bool B, const Bits &O) const {
    assert(Width == O.Width && "width mismatch in Bits comparison");
    return Bits(B ? 1 : 0, 1);
  }

  uint64_t Value;
  unsigned Width;
};

} // namespace pdl

#endif // PDL_SUPPORT_BITS_H
