//===- StandingPool.h - Long-lived worker pool over a standing queue -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standing generalization of `parallelForOrdered`: where the one-shot
/// primitive spins up workers for a single batch and joins them, this pool
/// keeps its workers alive for the process lifetime and feeds them from a
/// shared task queue — the execution engine of the pdlsimd service, where
/// jobs arrive continuously from many clients rather than as one
/// pre-sized batch.
///
/// Scheduling is self-service exactly like `parallelForOrdered`'s atomic
/// counter: idle workers pull (steal) the next task from the shared queue,
/// so a long job on one worker never blocks the others. Nothing about
/// completion order is observable through the pool — ordering guarantees
/// (per-client FIFO delivery) live in the service layer, which tags each
/// submission and releases results in submission order.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SIM_STANDINGPOOL_H
#define PDL_SIM_STANDINGPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdl {
namespace sim {

/// A fixed-size pool of long-lived worker threads draining one shared FIFO
/// task queue. Tasks must not throw. Destruction drains: queued tasks
/// still run, then the workers exit and join.
class StandingPool {
public:
  explicit StandingPool(unsigned Workers) {
    if (Workers < 1)
      Workers = 1;
    Threads.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Threads.emplace_back([this] { work(); });
  }

  StandingPool(const StandingPool &) = delete;
  StandingPool &operator=(const StandingPool &) = delete;

  ~StandingPool() {
    {
      std::lock_guard<std::mutex> Guard(M);
      Stopping = true;
    }
    WorkCV.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  size_t workers() const { return Threads.size(); }

  /// Enqueues one task; returns immediately. Tasks start in FIFO order on
  /// the first idle worker.
  void submit(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Guard(M);
      Q.push_back(std::move(Task));
    }
    WorkCV.notify_one();
  }

  /// Tasks submitted but not yet finished (queued + running).
  size_t inflight() const {
    std::lock_guard<std::mutex> Guard(M);
    return Q.size() + Running;
  }

  /// Blocks until every task submitted so far has finished. Tasks may keep
  /// arriving from other threads; drain only guarantees the queue was
  /// empty and all workers idle at some instant after the call began.
  void drain() {
    std::unique_lock<std::mutex> Guard(M);
    IdleCV.wait(Guard, [this] { return Q.empty() && Running == 0; });
  }

private:
  void work() {
    std::unique_lock<std::mutex> Guard(M);
    for (;;) {
      WorkCV.wait(Guard, [this] { return Stopping || !Q.empty(); });
      if (Q.empty())
        return; // Stopping and drained
      std::function<void()> Task = std::move(Q.front());
      Q.pop_front();
      ++Running;
      Guard.unlock();
      Task();
      Guard.lock();
      --Running;
      if (Q.empty() && Running == 0)
        IdleCV.notify_all();
    }
  }

  mutable std::mutex M;
  std::condition_variable WorkCV, IdleCV;
  std::deque<std::function<void()>> Q;
  size_t Running = 0;
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

} // namespace sim
} // namespace pdl

#endif // PDL_SIM_STANDINGPOOL_H
