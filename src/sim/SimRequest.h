//===- SimRequest.h - The canonical simulation request/result API -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one run-configuration surface every simulation consumer speaks:
/// `SimRequest` (a program plus its full run configuration) in,
/// `SimResult` (the differ's structured verdict) out. `runBatch`,
/// `runFuzzBatch`, the pdlfuzz CLI, and the pdlsimd service all consume
/// this pair; the older `sim::SimJob` and the per-run fields of
/// `sim::FuzzOptions` are thin shims over it (kept for one release), and
/// `verify::DiffConfig` survives as the embedded engine configuration.
///
/// Requests have a stable JSON form (the wire protocol's "request" object,
/// docs/service.md) and a canonical digest cache key, so a simulation is
/// addressable by content: two requests with equal keys produce
/// byte-identical serialized results (the jobs=N determinism contract,
/// docs/performance.md).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SIM_SIMREQUEST_H
#define PDL_SIM_SIMREQUEST_H

#include "verify/Differ.h"

#include <optional>
#include <string>

namespace pdl {
namespace sim {

/// One simulation: a RISC-V assembly program plus the full run
/// configuration (core kind, memory profile, cycle budget, monitors,
/// optional fault plan — see verify::DiffConfig).
struct SimRequest {
  std::string Asm;
  /// Provenance label carried through to reporting (e.g. "seed-7").
  /// Deliberately excluded from the cache key: the same program under the
  /// same configuration is the same simulation whatever seed produced it.
  uint64_t Seed = 0;
  verify::DiffConfig Cfg;

  /// Stable JSON form: the Cfg fields (DiffConfig::toJsonValue) plus
  /// "asm" and "seed". fromJson* accepts anything toJson* produced;
  /// missing fields keep their defaults, unknown names are errors.
  obs::Json toJsonValue() const;
  std::string toJson() const { return toJsonValue().dump(); }
  static std::optional<SimRequest> fromJsonValue(const obs::Json &V,
                                                 std::string *Err = nullptr);
  static std::optional<SimRequest> fromJson(const std::string &Text,
                                            std::string *Err = nullptr);

  /// A request that writes a waveform is side-effectful and is never
  /// served from (or stored in) the result cache.
  bool cacheable() const { return Cfg.VcdPath.empty(); }

  /// The canonical digest cache key: core kind id, mem profile name,
  /// FNV-1a hash of the program text, cycle budget, monitor/digest flags,
  /// and the fault plan spelling. Seed (provenance), Jobs (wall-clock
  /// only) and VcdPath (uncacheable) are excluded by design — every field
  /// that can change a result's bytes is in the key, nothing else is.
  /// The ambient eval mode (PDL_EVAL_TREE / PDL_EVAL_FUSED) is
  /// deliberately NOT keyed: all three evaluators are proven (tv::) and
  /// fuzzed to produce byte-identical results, so a cached bytecode-mode
  /// result is a correct answer for a fused-mode request and vice versa.
  /// FusionTest and the check.sh differential legs enforce the identity.
  std::string cacheKey() const;
};

/// The canonical result type. A SimResult is exactly the differ's verdict;
/// the service layer serializes it once (DiffResult::toJson) and caches
/// those bytes verbatim.
using SimResult = verify::DiffResult;

/// Runs one request to completion on the calling thread.
SimResult runSim(const SimRequest &R);

/// FNV-1a over \p Bytes — the program-hash half of cacheKey(), exposed for
/// tests and external key computation.
uint64_t fnv1aHash(const std::string &Bytes);

} // namespace sim
} // namespace pdl

#endif // PDL_SIM_SIMREQUEST_H
