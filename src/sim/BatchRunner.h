//===- BatchRunner.h - Parallel batch-simulation engine --------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-simulation engine: one job is (program x core x mem-profile x
/// fault plan) -> DiffResult (stats report + trace digest), and a batch is
/// N such jobs executed over a fixed-size worker pool with results
/// collected in job order. Every `System` instance stays single-threaded —
/// workers share nothing — so a parallel batch is bit-identical to running
/// the same jobs serially, which BatchRunnerTest asserts byte-for-byte on
/// the fuzzer's JSON, failure log, and repro bundles.
///
/// `runFuzzBatch` is the library form of the pdlfuzz matrix driver
/// (seeds x cores x profiles): generation, diffing, shrinking, bundle
/// writing, and row serialization all live here so the CLI stays a thin
/// argument parser and tests can run the exact tool pipeline in-process.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SIM_BATCHRUNNER_H
#define PDL_SIM_BATCHRUNNER_H

#include "verify/Differ.h"

#include <optional>
#include <string>
#include <vector>

namespace pdl {
namespace sim {

/// One simulation job: a program and the full run configuration (core,
/// memory profile, cycle limit, optional fault plan — see DiffConfig).
struct SimJob {
  std::string Asm;
  verify::DiffConfig Cfg;
  /// Provenance label carried through to reporting (e.g. "seed-7").
  uint64_t Seed = 0;
};

/// Runs every job over at most \p Workers threads and returns the results
/// in job order (result[I] belongs to Jobs[I] no matter which worker ran
/// it or when it finished). Workers <= 1 runs serially on the caller.
std::vector<verify::DiffResult> runBatch(const std::vector<SimJob> &Jobs,
                                         unsigned Workers);

/// Options for the full fuzz matrix — mirrors the pdlfuzz command line.
struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Count = 100;
  uint64_t MaxCycles = 50000;
  std::vector<cores::CoreKind> Kinds = {cores::CoreKind::Pdl5Stage,
                                        cores::CoreKind::Pdl5StageBht};
  std::vector<cores::CoreMemProfile> Profiles = {cores::memProfileAlwaysHit(),
                                                 cores::memProfileL1Tiny()};
  std::string OutDir = "fuzz-out";
  bool Json = false;
  bool FailFast = false;
  /// Worker threads for the run matrix and for shrink candidates. The
  /// output is byte-identical for every value; see docs/performance.md.
  unsigned Jobs = 1;
  /// When set, armed on every pipelined run (never on the golden model).
  /// Test hook: makes the whole matrix diverge deterministically.
  std::optional<hw::FaultPlan> Fault;
};

struct FuzzBatchResult {
  uint64_t Runs = 0;
  uint64_t Failures = 0;
  /// The `--json` document (empty unless FuzzOptions::Json). Identical for
  /// every jobs count: rows are serialized in matrix order after the batch
  /// completes and never mention the worker count.
  std::string JsonDoc;
  /// The failure/shrink/bundle log lines the CLI prints to stderr.
  std::string Log;
};

/// Runs the seeds x cores x profiles diff matrix over the worker pool,
/// then folds results in matrix order: JSON rows, failure logging,
/// shrinking (itself parallel over candidates) and repro bundles. With
/// FailFast, everything after the first failing run is discarded, so the
/// result matches a serial run that stopped there.
FuzzBatchResult runFuzzBatch(const FuzzOptions &O);

} // namespace sim
} // namespace pdl

#endif // PDL_SIM_BATCHRUNNER_H
