//===- BatchRunner.h - Parallel batch-simulation engine --------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-simulation engine: one SimRequest -> SimResult (stats report +
/// trace digest), and a batch is N such requests executed over a fixed-size
/// worker pool with results collected in request order. Every `System`
/// instance stays single-threaded — workers share nothing — so a parallel
/// batch is bit-identical to running the same requests serially, which
/// BatchRunnerTest asserts byte-for-byte on the fuzzer's JSON, failure log,
/// and repro bundles.
///
/// `runFuzzBatch` is the library form of the pdlfuzz matrix driver
/// (seeds x cores x profiles): generation, diffing, shrinking, bundle
/// writing, and row serialization all live here so the CLI stays a thin
/// argument parser and tests can run the exact tool pipeline in-process.
/// The same expansion (`expandFuzzMatrix`) feeds the pdlsim client's
/// matrix mode, so the service smoke submits exactly the fuzz matrix.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SIM_BATCHRUNNER_H
#define PDL_SIM_BATCHRUNNER_H

#include "sim/SimRequest.h"

#include <optional>
#include <string>
#include <vector>

namespace pdl {
namespace sim {

/// Runs every request over at most \p Workers threads and returns the
/// results in request order (result[I] belongs to Reqs[I] no matter which
/// worker ran it or when it finished). Workers <= 1 runs serially on the
/// caller.
std::vector<SimResult> runBatch(const std::vector<SimRequest> &Reqs,
                                unsigned Workers);

/// Deprecated shim (one release): the pre-SimRequest job type. Use
/// SimRequest — same fields, with the configuration embedded as Cfg.
struct SimJob {
  std::string Asm;
  verify::DiffConfig Cfg;
  uint64_t Seed = 0;
};

/// Deprecated shim (one release): forwards to the SimRequest overload.
std::vector<verify::DiffResult> runBatch(const std::vector<SimJob> &Jobs,
                                         unsigned Workers);

/// Options for the full fuzz matrix — mirrors the pdlfuzz command line.
/// A matrix-level shim over SimRequest: expandFuzzMatrix turns one of
/// these into the canonical request list.
struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Count = 100;
  uint64_t MaxCycles = 50000;
  std::vector<cores::CoreKind> Kinds = {cores::CoreKind::Pdl5Stage,
                                        cores::CoreKind::Pdl5StageBht};
  std::vector<cores::CoreMemProfile> Profiles = {cores::memProfileAlwaysHit(),
                                                 cores::memProfileL1Tiny()};
  std::string OutDir = "fuzz-out";
  bool Json = false;
  bool FailFast = false;
  /// Worker threads for the run matrix and for shrink candidates. The
  /// output is byte-identical for every value; see docs/performance.md.
  unsigned Jobs = 1;
  /// When set, armed on every pipelined run (never on the golden model).
  /// Test hook: makes the whole matrix diverge deterministically.
  std::optional<hw::FaultPlan> Fault;
  /// Forwarded to every expanded request's DiffConfig: translation-validate
  /// each core's compiled bytecode and carry the status in the row's "tv"
  /// field. A "rejected" certificate counts as a run failure (there is no
  /// program to shrink, so no repro bundle is written for it).
  bool Certify = false;
};

/// Expands the seeds x cores x profiles matrix of programs [Begin, End)
/// into the canonical request list, in matrix order (program-major, then
/// core, then profile). Program N is generated from seed O.Seed + N, so
/// any subrange is identical to the same slice of the full expansion.
std::vector<SimRequest> expandFuzzMatrix(const FuzzOptions &O, uint64_t Begin,
                                         uint64_t End);
inline std::vector<SimRequest> expandFuzzMatrix(const FuzzOptions &O) {
  return expandFuzzMatrix(O, 0, O.Count);
}

struct FuzzBatchResult {
  uint64_t Runs = 0;
  uint64_t Failures = 0;
  /// Programs actually generated. Equal to FuzzOptions::Count except under
  /// FailFast, where generation short-circuits after the first failing
  /// wave of programs (fail-fast service jobs return promptly instead of
  /// generating and running the whole matrix).
  uint64_t ProgramsGenerated = 0;
  /// The `--json` document (empty unless FuzzOptions::Json). Identical for
  /// every jobs count: rows are serialized in matrix order after the batch
  /// completes and never mention the worker count.
  std::string JsonDoc;
  /// The failure/shrink/bundle log lines the CLI prints to stderr.
  std::string Log;
};

/// Runs the seeds x cores x profiles diff matrix over the worker pool,
/// then folds results in matrix order: JSON rows, failure logging,
/// shrinking (itself parallel over candidates) and repro bundles. With
/// FailFast, generation and execution proceed in waves and stop at the
/// first failing run; every observable byte matches a serial run that
/// stopped there.
FuzzBatchResult runFuzzBatch(const FuzzOptions &O);

} // namespace sim
} // namespace pdl

#endif // PDL_SIM_BATCHRUNNER_H
