//===- WorkerPool.h - Ordered parallel-for over independent jobs -*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency primitive under the batch-simulation engine: run N
/// independent closures across a fixed-size pool of worker threads. The
/// caller owns a results vector indexed by job and each closure writes
/// only its own slot, so completion order never leaks into observable
/// output — the determinism contract docs/performance.md spells out.
///
/// Header-only (a function template over the job body) so the verifier's
/// shrinker and the benches can fan out without linking the sim library.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_SIM_WORKERPOOL_H
#define PDL_SIM_WORKERPOOL_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace pdl {
namespace sim {

/// Invokes `Body(I)` exactly once for every I in [0, N), spread over at
/// most \p Jobs worker threads, and returns once all calls finished.
///
/// Jobs <= 1 degenerates to a plain loop on the calling thread — the
/// serial and parallel paths share this one entry point, which is what
/// lets tests assert `--jobs=8` output is byte-identical to `--jobs=1`.
/// \p Body must not touch shared mutable state beyond its own index's
/// result slot (each simulated System stays single-threaded).
template <typename Fn> void parallelForOrdered(unsigned Jobs, size_t N, Fn &&Body) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) < N;)
      Body(I);
  };
  size_t Workers = Jobs < N ? Jobs : N; // never spawn idle threads
  std::vector<std::thread> Pool;
  Pool.reserve(Workers - 1);
  for (size_t W = 1; W != Workers; ++W)
    Pool.emplace_back(Work);
  Work(); // the calling thread is worker 0
  for (std::thread &T : Pool)
    T.join();
}

} // namespace sim
} // namespace pdl

#endif // PDL_SIM_WORKERPOOL_H
