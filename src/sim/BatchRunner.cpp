//===- BatchRunner.cpp - Parallel batch-simulation engine -------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/BatchRunner.h"

#include "obs/Json.h"
#include "sim/WorkerPool.h"
#include "verify/ProgGen.h"

using namespace pdl;
using namespace pdl::sim;

std::vector<verify::DiffResult> sim::runBatch(const std::vector<SimJob> &Jobs,
                                              unsigned Workers) {
  std::vector<verify::DiffResult> Results(Jobs.size());
  parallelForOrdered(Workers, Jobs.size(), [&](size_t I) {
    Results[I] = verify::runDiff(Jobs[I].Asm, Jobs[I].Cfg);
  });
  return Results;
}

FuzzBatchResult sim::runFuzzBatch(const FuzzOptions &O) {
  FuzzBatchResult Out;
  const size_t NumKinds = O.Kinds.size(), NumProfiles = O.Profiles.size();
  if (!NumKinds || !NumProfiles || !O.Count)
    return Out;

  // Program generation is seeded and cheap; do it serially so job I of the
  // matrix is fully determined before any worker starts.
  std::vector<std::string> Programs(O.Count);
  for (uint64_t N = 0; N != O.Count; ++N) {
    verify::GenConfig G;
    G.Seed = O.Seed + N;
    Programs[N] = verify::generateProgram(G);
  }

  std::vector<SimJob> Batch;
  Batch.reserve(O.Count * NumKinds * NumProfiles);
  for (uint64_t N = 0; N != O.Count; ++N)
    for (size_t KI = 0; KI != NumKinds; ++KI)
      for (size_t PI = 0; PI != NumProfiles; ++PI) {
        SimJob J;
        J.Asm = Programs[N];
        J.Seed = O.Seed + N;
        J.Cfg.Kind = O.Kinds[KI];
        J.Cfg.Profile = O.Profiles[PI];
        J.Cfg.MaxCycles = O.MaxCycles;
        J.Cfg.Fault = O.Fault;
        J.Cfg.Jobs = O.Jobs; // shrink re-runs fan out over the same pool
        Batch.push_back(std::move(J));
      }

  std::vector<verify::DiffResult> Results = runBatch(Batch, O.Jobs);

  // Fold in matrix order. Under FailFast a serial run stops right after
  // processing the first failure; reproduce that by truncating here (the
  // extra completed runs are simply discarded).
  size_t Upto = Results.size();
  if (O.FailFast)
    for (size_t I = 0; I != Results.size(); ++I)
      if (Results[I].failed()) {
        Upto = I + 1;
        break;
      }

  auto Logf = [&Out](const std::string &Line) { Out.Log += Line; };
  obs::Json Rows = obs::Json::array();
  for (size_t I = 0; I != Upto; ++I) {
    const size_t KI = (I / NumProfiles) % NumKinds;
    const uint64_t N = I / (NumProfiles * NumKinds);
    const uint64_t RunSeed = O.Seed + N;
    const verify::DiffConfig &DC = Batch[I].Cfg;
    const verify::DiffResult &R = Results[I];
    ++Out.Runs;

    std::string Config =
        std::string(cores::coreName(DC.Kind)) + "/" + DC.Profile.Name;
    if (O.Json) {
      obs::Json Row = obs::Json::object();
      Row.set("config", obs::Json(Config));
      Row.set("kernel", obs::Json("seed-" + std::to_string(RunSeed)));
      Row.set("cpi", obs::Json(R.Instrs ? double(R.Cycles) / double(R.Instrs)
                                        : 0.0));
      Row.set("cycles", obs::Json(R.Cycles));
      Row.set("instrs", obs::Json(R.Instrs));
      Row.set("outcome", obs::Json(R.Outcome));
      Row.set("divergent", obs::Json(R.Divergent));
      Row.set("faults_injected", obs::Json(R.FaultsInjected));
      Row.set("violations", obs::Json(R.Violations));
      if (N == 0) // one attribution report per config keeps files small
        Row.set("report", R.Report.toJsonValue());
      Rows.push(std::move(Row));
    }

    if (!R.failed())
      continue;
    ++Out.Failures;
    Logf("pdlfuzz: FAIL seed=" + std::to_string(RunSeed) + " " + Config +
         ": " +
         (R.Divergent ? R.Reason : std::string("invariant violation(s)")) +
         "\n");
    for (const verify::Violation &V : R.ViolationList)
      Logf("  " + V.str() + "\n");
    if (!R.DeadlockDiagnosis.empty())
      Logf(R.DeadlockDiagnosis);

    Logf("pdlfuzz: shrinking...\n");
    std::string Shrunk = verify::shrink(Programs[N], DC);
    std::string Dir = O.OutDir + "/seed-" + std::to_string(RunSeed) + "-" +
                      std::to_string(KI) + "-" + DC.Profile.Name;
    if (verify::writeReproBundle(Dir, Programs[N], Shrunk, RunSeed, DC, R))
      Logf("pdlfuzz: repro bundle in " + Dir + "\n");
    else
      Logf("pdlfuzz: could not write " + Dir + "\n");
  }

  if (O.Json) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", obs::Json("pdlfuzz"));
    Doc.set("seed", obs::Json(O.Seed));
    Doc.set("programs", obs::Json(O.Count));
    Doc.set("runs", obs::Json(Out.Runs));
    Doc.set("failures", obs::Json(Out.Failures));
    Doc.set("rows", std::move(Rows));
    Out.JsonDoc = Doc.dump(2);
  }
  return Out;
}
