//===- BatchRunner.cpp - Parallel batch-simulation engine -------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/BatchRunner.h"

#include "backend/Fuse.h"
#include "backend/NativeCache.h"
#include "obs/Json.h"
#include "sim/WorkerPool.h"
#include "verify/ProgGen.h"

#include <algorithm>
#include <cstdlib>

using namespace pdl;
using namespace pdl::sim;

std::vector<SimResult> sim::runBatch(const std::vector<SimRequest> &Reqs,
                                     unsigned Workers) {
  std::vector<SimResult> Results(Reqs.size());
  parallelForOrdered(Workers, Reqs.size(),
                     [&](size_t I) { Results[I] = runSim(Reqs[I]); });
  return Results;
}

std::vector<verify::DiffResult> sim::runBatch(const std::vector<SimJob> &Jobs,
                                              unsigned Workers) {
  std::vector<SimRequest> Reqs(Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    Reqs[I].Asm = Jobs[I].Asm;
    Reqs[I].Seed = Jobs[I].Seed;
    Reqs[I].Cfg = Jobs[I].Cfg;
  }
  return runBatch(Reqs, Workers);
}

std::vector<SimRequest> sim::expandFuzzMatrix(const FuzzOptions &O,
                                              uint64_t Begin, uint64_t End) {
  std::vector<SimRequest> Batch;
  if (Begin >= End || O.Kinds.empty() || O.Profiles.empty())
    return Batch;
  Batch.reserve((End - Begin) * O.Kinds.size() * O.Profiles.size());
  for (uint64_t N = Begin; N != End; ++N) {
    // Program generation is seeded and cheap; do it serially so request I
    // of the matrix is fully determined before any worker starts.
    verify::GenConfig G;
    G.Seed = O.Seed + N;
    std::string Program = verify::generateProgram(G);
    for (cores::CoreKind Kind : O.Kinds)
      for (const cores::CoreMemProfile &Profile : O.Profiles) {
        SimRequest R;
        R.Asm = Program;
        R.Seed = O.Seed + N;
        R.Cfg.Kind = Kind;
        R.Cfg.Profile = Profile;
        R.Cfg.MaxCycles = O.MaxCycles;
        R.Cfg.Fault = O.Fault;
        R.Cfg.Certify = O.Certify;
        R.Cfg.Jobs = O.Jobs; // shrink re-runs fan out over the same pool
        Batch.push_back(std::move(R));
      }
  }
  return Batch;
}

FuzzBatchResult sim::runFuzzBatch(const FuzzOptions &O) {
  FuzzBatchResult Out;
  const size_t NumKinds = O.Kinds.size(), NumProfiles = O.Profiles.size();
  if (!NumKinds || !NumProfiles || !O.Count)
    return Out;

  // A run fails on a divergence/violation, or — under --certify — when the
  // core's compiled bytecode was refuted against its expression tree. A
  // rejected certificate is a property of the core, not the program, so it
  // fails every run of that core.
  auto RunFailed = [](const SimResult &R) {
    return R.failed() || R.Tv == "rejected";
  };

  std::vector<SimRequest> Batch;
  std::vector<SimResult> Results;
  if (!O.FailFast) {
    Batch = expandFuzzMatrix(O);
    Out.ProgramsGenerated = O.Count;
    Results = runBatch(Batch, O.Jobs);
  } else {
    // Fail-fast: generate and run one wave of programs at a time (enough
    // to keep every worker busy) and stop at the first failing run, so a
    // failing matrix returns promptly instead of generating and running
    // everything up front. The fold below only ever consumes results up
    // to the first failure, so the output is byte-identical to a serial
    // run that stopped there — whatever the wave size.
    const uint64_t WaveProgs = std::max<uint64_t>(O.Jobs ? O.Jobs : 1, 1);
    bool Failed = false;
    for (uint64_t N = 0; N != O.Count && !Failed; ) {
      uint64_t WaveEnd = std::min<uint64_t>(O.Count, N + WaveProgs);
      std::vector<SimRequest> Wave = expandFuzzMatrix(O, N, WaveEnd);
      std::vector<SimResult> WaveResults = runBatch(Wave, O.Jobs);
      Out.ProgramsGenerated += WaveEnd - N;
      for (const SimResult &R : WaveResults)
        Failed = Failed || RunFailed(R);
      std::move(Wave.begin(), Wave.end(), std::back_inserter(Batch));
      std::move(WaveResults.begin(), WaveResults.end(),
                std::back_inserter(Results));
      N = WaveEnd;
    }
  }

  // Fold in matrix order. Under FailFast a serial run stops right after
  // processing the first failure; reproduce that by truncating here (the
  // extra completed runs are simply discarded).
  size_t Upto = Results.size();
  if (O.FailFast)
    for (size_t I = 0; I != Results.size(); ++I)
      if (RunFailed(Results[I])) {
        Upto = I + 1;
        break;
      }

  auto Logf = [&Out](const std::string &Line) { Out.Log += Line; };
  // The eval mode every job in this batch ran under (workers consult the
  // environment at System construction; pdlfuzz --eval sets it up front).
  // Recorded per row so fuzz corpora from different modes can be told
  // apart; everything else in a row is byte-identical across modes.
  // Native reports the EFFECTIVE mode: requesting it without a usable
  // compiler degrades to fused interpretation, and the rows must say so.
  const char *EvalMode = std::getenv("PDL_EVAL_TREE") != nullptr ? "tree"
                         : backend::native::nativeModeRequested()
                             ? (backend::native::available() ? "native"
                                                             : "fused")
                         : backend::bc::fusedModeRequested() ? "fused"
                                                             : "bytecode";
  obs::Json Rows = obs::Json::array();
  for (size_t I = 0; I != Upto; ++I) {
    const size_t KI = (I / NumProfiles) % NumKinds;
    const uint64_t N = I / (NumProfiles * NumKinds);
    const uint64_t RunSeed = Batch[I].Seed;
    const verify::DiffConfig &DC = Batch[I].Cfg;
    const SimResult &R = Results[I];
    ++Out.Runs;

    std::string Config =
        std::string(cores::coreName(DC.Kind)) + "/" + DC.Profile.Name;
    if (O.Json) {
      obs::Json Row = obs::Json::object();
      Row.set("config", obs::Json(Config));
      Row.set("eval_mode", obs::Json(EvalMode));
      Row.set("kernel", obs::Json("seed-" + std::to_string(RunSeed)));
      Row.set("cpi", obs::Json(R.Instrs ? double(R.Cycles) / double(R.Instrs)
                                        : 0.0));
      Row.set("cycles", obs::Json(R.Cycles));
      Row.set("instrs", obs::Json(R.Instrs));
      Row.set("outcome", obs::Json(R.Outcome));
      Row.set("divergent", obs::Json(R.Divergent));
      if (!R.Tv.empty()) // only present under --certify
        Row.set("tv", obs::Json(R.Tv));
      Row.set("faults_injected", obs::Json(R.FaultsInjected));
      Row.set("violations", obs::Json(R.Violations));
      if (N == 0) // one attribution report per config keeps files small
        Row.set("report", R.Report.toJsonValue());
      Rows.push(std::move(Row));
    }

    if (!RunFailed(R))
      continue;
    ++Out.Failures;
    if (!R.failed()) {
      // Certification-only failure: the core's compiled bytecode was
      // refuted against its expression tree. That is independent of the
      // generated program, so there is nothing to shrink or bundle.
      Logf("pdlfuzz: FAIL seed=" + std::to_string(RunSeed) + " " + Config +
           ": bytecode certification rejected\n");
      continue;
    }
    Logf("pdlfuzz: FAIL seed=" + std::to_string(RunSeed) + " " + Config +
         ": " +
         (R.Divergent ? R.Reason : std::string("invariant violation(s)")) +
         "\n");
    for (const verify::Violation &V : R.ViolationList)
      Logf("  " + V.str() + "\n");
    if (!R.DeadlockDiagnosis.empty())
      Logf(R.DeadlockDiagnosis);

    Logf("pdlfuzz: shrinking...\n");
    std::string Shrunk = verify::shrink(Batch[I].Asm, DC);
    std::string Dir = O.OutDir + "/seed-" + std::to_string(RunSeed) + "-" +
                      std::to_string(KI) + "-" + DC.Profile.Name;
    if (verify::writeReproBundle(Dir, Batch[I].Asm, Shrunk, RunSeed, DC, R))
      Logf("pdlfuzz: repro bundle in " + Dir + "\n");
    else
      Logf("pdlfuzz: could not write " + Dir + "\n");
  }

  if (O.Json) {
    obs::Json Doc = obs::Json::object();
    Doc.set("bench", obs::Json("pdlfuzz"));
    Doc.set("seed", obs::Json(O.Seed));
    Doc.set("programs", obs::Json(O.Count));
    Doc.set("runs", obs::Json(Out.Runs));
    Doc.set("failures", obs::Json(Out.Failures));
    Doc.set("rows", std::move(Rows));
    Out.JsonDoc = Doc.dump(2);
  }
  return Out;
}
