//===- SimRequest.cpp - The canonical simulation request/result API ---------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SimRequest.h"

#include "backend/Fuse.h"
#include "backend/NativeCache.h"

#include <cstdio>
#include <cstdlib>

using namespace pdl;
using namespace pdl::sim;

uint64_t sim::fnv1aHash(const std::string &Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

obs::Json SimRequest::toJsonValue() const {
  obs::Json V = obs::Json::object();
  V.set("asm", obs::Json(Asm));
  V.set("seed", obs::Json(Seed));
  obs::Json CfgV = Cfg.toJsonValue();
  for (const auto &[Key, Val] : CfgV.members())
    V.set(Key, Val);
  return V;
}

std::optional<SimRequest> SimRequest::fromJsonValue(const obs::Json &V,
                                                    std::string *Err) {
  if (V.kind() != obs::Json::Kind::Object) {
    if (Err)
      *Err = "request is not an object";
    return std::nullopt;
  }
  std::optional<verify::DiffConfig> Cfg = verify::DiffConfig::fromJsonValue(V, Err);
  if (!Cfg)
    return std::nullopt;

  SimRequest R;
  R.Cfg = std::move(*Cfg);
  if (const obs::Json *A = V.get("asm"))
    R.Asm = A->asString();
  if (R.Asm.empty()) {
    if (Err)
      *Err = "request has no 'asm' program";
    return std::nullopt;
  }
  if (const obs::Json *S = V.get("seed")) {
    if (!S->isNumber()) {
      if (Err)
        *Err = "seed is not a number";
      return std::nullopt;
    }
    R.Seed = S->asU64();
  }
  return R;
}

std::optional<SimRequest> SimRequest::fromJson(const std::string &Text,
                                               std::string *Err) {
  std::optional<obs::Json> V = obs::Json::parse(Text, Err);
  if (!V)
    return std::nullopt;
  return fromJsonValue(*V, Err);
}

std::string SimRequest::cacheKey() const {
  char Hash[32];
  std::snprintf(Hash, sizeof(Hash), "%016llx",
                (unsigned long long)fnv1aHash(Asm));
  std::string Key = "core=";
  Key += cores::coreKindId(Cfg.Kind);
  Key += "|mem=";
  Key += Cfg.Profile.Name;
  Key += "|prog=";
  Key += Hash;
  Key += "|cycles=" + std::to_string(Cfg.MaxCycles);
  Key += Cfg.WithMonitors ? "|mon=1" : "|mon=0";
  Key += Cfg.WantDigest ? "|dig=1" : "|dig=0";
  Key += "|fault=";
  Key += Cfg.Fault ? hw::printFaultPlan(*Cfg.Fault) : "-";
  // Appended only when certification is requested, so every key minted
  // before the flag existed still addresses the same cache entry.
  if (Cfg.Certify)
    Key += "|certify=1";
  return Key;
}

SimResult sim::runSim(const SimRequest &R) {
  SimResult Res = verify::runDiff(R.Asm, R.Cfg);
  // PDL_CHECK_EVAL_IDENTITY=1 re-runs the request under the other bytecode
  // lowering (fused <-> base) and aborts unless the serialized results are
  // byte-identical — the invariant that lets cacheKey() ignore the eval
  // mode. It toggles the process environment, so it is only safe for
  // single-job runs (tests, check.sh legs), never the standing service.
  if (std::getenv("PDL_CHECK_EVAL_IDENTITY") != nullptr &&
      std::getenv("PDL_EVAL_TREE") == nullptr) {
    // Native and fused both check against plain bytecode; plain bytecode
    // checks against fused. Either way the cross-run exercises a genuinely
    // different dispatch path over the same request.
    const bool WasNative = backend::native::nativeModeRequested();
    const bool WasFused = backend::bc::fusedModeRequested();
    if (WasNative)
      unsetenv("PDL_EVAL_NATIVE");
    if (WasFused)
      unsetenv("PDL_EVAL_FUSED");
    if (!WasNative && !WasFused)
      setenv("PDL_EVAL_FUSED", "1", 1);
    SimResult Other = verify::runDiff(R.Asm, R.Cfg);
    if (WasNative)
      setenv("PDL_EVAL_NATIVE", "1", 1);
    if (WasFused)
      setenv("PDL_EVAL_FUSED", "1", 1);
    if (!WasNative && !WasFused)
      unsetenv("PDL_EVAL_FUSED");
    if (Other.toJson() != Res.toJson()) {
      std::fprintf(stderr,
                   "pdl: %s/%s eval-mode identity violated for request %s\n",
                   WasNative  ? "native"
                   : WasFused ? "fused"
                              : "bytecode",
                   WasNative || WasFused ? "bytecode" : "fused",
                   R.cacheKey().c_str());
      std::abort();
    }
  }
  return Res;
}
