//===- AreaModel.h - Structural area estimation (Figure 6) -----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stands in for the paper's synthesis flow (45nm FreePDK @ 100MHz) and
/// CACTI: a structural resource count over the *actual elaborated designs*,
/// multiplied by per-resource-class area constants calibrated once against
/// Figure 6's published totals.
///
/// What is counted, per Section 6.1's attribution of PDL's overhead:
///  * flops: pipeline FIFOs (depth 2 => double registers, "the FIFO
///    implementations consume significant area"), lock storage (including
///    the BypassQueue's "information redundant with data in pipeline
///    registers"), speculation table, register-file storage;
///  * combinational: datapath operators (width-weighted adders, muxes,
///    shifters, logic), lock search/priority networks ("a dynamic priority
///    calculation to determine which write is the most recent"), FIFO and
///    stall control.
///
/// The Sodor baseline is a hand-built inventory of the classic fully
/// bypassed 5-stage datapath, priced with the same constants — mirroring
/// that the paper's baseline is hand-written RTL.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_AREA_AREAMODEL_H
#define PDL_AREA_AREAMODEL_H

#include "backend/System.h"
#include "passes/Compiler.h"

#include <map>
#include <string>

namespace pdl {
namespace area {

/// Per-resource-class area constants (um^2, 45nm-flavored).
struct AreaConstants {
  double Flop = 6.2;       // one D flip-flop
  double AdderBit = 9.0;   // adder / subtractor / magnitude comparator
  double MuxBit = 2.2;     // one 2:1 mux
  double LogicBit = 1.4;   // and/or/xor gate bit
  double ShiftBit = 11.0;  // barrel shifter per output bit
  double EqBit = 2.8;      // equality comparator per bit
  double MulBit = 30.0;    // multiplier array per operand bit (32b scale)
  /// Post-synthesis logic-sharing factor applied to counted datapath
  /// operators: the counts are per syntactic occurrence, but synthesis
  /// CSEs repeated decode terms and shares mutually exclusive operators.
  double SynthSharing = 0.70;
};

struct AreaBreakdown {
  double FlopArea = 0;
  double CombArea = 0;
  std::map<std::string, double> ByComponent;

  double total() const { return FlopArea + CombArea; }
  void add(const std::string &Component, double Flops, double Comb,
           const AreaConstants &K);
};

/// Estimates the area of one elaborated PDL pipe (plus its sub-pipes when
/// \p IncludeSubPipes). Lock choices must match the elaboration config.
AreaBreakdown
estimatePdlArea(const CompiledProgram &Program,
                const std::map<std::string, backend::LockKind> &LockChoice,
                const AreaConstants &K = AreaConstants());

/// Hand-built inventory of the Sodor 5-stage baseline.
AreaBreakdown sodorArea(bool Bypassed, const AreaConstants &K = AreaConstants());

/// CACTI-flavored SRAM-array area for an L1 cache (um^2 at 45nm):
/// data + tag arrays with decoder/sense overhead.
double cacheArea(unsigned CapacityBytes, unsigned Ways, unsigned LineBytes);

} // namespace area
} // namespace pdl

#endif // PDL_AREA_AREAMODEL_H
