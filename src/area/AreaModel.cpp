//===- AreaModel.cpp - Structural area estimation (Figure 6) ----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "area/AreaModel.h"

#include "passes/Liveness.h"

#include <cmath>

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::area;

void AreaBreakdown::add(const std::string &Component, double Flops,
                        double Comb, const AreaConstants &K) {
  FlopArea += Flops * K.Flop;
  CombArea += Comb;
  ByComponent[Component] += Flops * K.Flop + Comb;
}

namespace {

/// Width-weighted combinational cost of an expression tree (one hardware
/// instance per syntactic occurrence). Def-function calls inline their
/// body cost per call site.
class CombCounter {
public:
  CombCounter(const Program &Prog, const AreaConstants &K)
      : Prog(Prog), K(K) {}

  double exprCost(const Expr &E) {
    unsigned W = E.type().isValid() ? E.type().width() : 32;
    switch (E.kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::VarRef:
      return 0;
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      double Inner = exprCost(*U->operand());
      switch (U->op()) {
      case UnaryOp::LogicalNot:
        return Inner + K.LogicBit;
      case UnaryOp::BitNot:
        return Inner + W * K.LogicBit;
      case UnaryOp::Negate:
        return Inner + W * K.AdderBit;
      }
      return Inner;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      double Inner = exprCost(*B->lhs()) + exprCost(*B->rhs());
      unsigned OW = B->lhs()->type().isValid() ? B->lhs()->type().width()
                                               : 32;
      switch (B->op()) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
        return Inner + W * K.AdderBit;
      case BinaryOp::Mul:
        return Inner + W * K.MulBit;
      case BinaryOp::Div:
      case BinaryOp::Rem:
        return Inner + W * K.MulBit * 2; // iterative divider array
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor:
        return Inner + W * K.LogicBit;
      case BinaryOp::Shl:
      case BinaryOp::Shr: {
        // Constant shift amounts are wiring.
        if (isa<IntLitExpr>(B->rhs()))
          return Inner;
        return Inner + W * K.ShiftBit;
      }
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        return Inner + OW * K.EqBit;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        return Inner + OW * K.AdderBit;
      case BinaryOp::LogicalAnd:
      case BinaryOp::LogicalOr:
        return Inner + K.LogicBit;
      case BinaryOp::Concat:
        return Inner; // wiring
      }
      return Inner;
    }
    case Expr::Kind::Ternary: {
      const auto *T = cast<TernaryExpr>(&E);
      return exprCost(*T->cond()) + exprCost(*T->thenExpr()) +
             exprCost(*T->elseExpr()) + W * K.MuxBit;
    }
    case Expr::Kind::Slice:
      return exprCost(*cast<SliceExpr>(&E)->base()); // wiring
    case Expr::Kind::Cast:
      return exprCost(*cast<CastExpr>(&E)->operand()); // wiring
    case Expr::Kind::MemRead:
      return exprCost(*cast<MemReadExpr>(&E)->addr());
    case Expr::Kind::ExternCall: {
      double C = 0;
      for (const ExprPtr &A : cast<ExternCallExpr>(&E)->args())
        C += exprCost(*A);
      return C; // the extern module's own area is out of scope
    }
    case Expr::Kind::FuncCall: {
      const auto *C = cast<FuncCallExpr>(&E);
      double Cost = funcCost(C->callee());
      for (const ExprPtr &A : C->args())
        Cost += exprCost(*A);
      return Cost;
    }
    }
    return 0;
  }

  double stmtCost(const Stmt &S) {
    double C = 0;
    switch (S.kind()) {
    case Stmt::Kind::Assign:
      return exprCost(*cast<AssignStmt>(&S)->value());
    case Stmt::Kind::SyncRead:
      return exprCost(*cast<SyncReadStmt>(&S)->addr());
    case Stmt::Kind::PipeCall:
      for (const ExprPtr &A : cast<PipeCallStmt>(&S)->args())
        C += exprCost(*A);
      return C;
    case Stmt::Kind::MemWrite:
      return exprCost(*cast<MemWriteStmt>(&S)->addr()) +
             exprCost(*cast<MemWriteStmt>(&S)->value());
    case Stmt::Kind::Output:
      return exprCost(*cast<OutputStmt>(&S)->value());
    case Stmt::Kind::Lock:
      return cast<LockStmt>(&S)->addr()
                 ? exprCost(*cast<LockStmt>(&S)->addr())
                 : 0;
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(&S);
      C = exprCost(*V->actual()) + 32 * K.EqBit; // prediction compare
      if (V->predictorUpdate())
        C += exprCost(*V->predictorUpdate());
      return C;
    }
    case Stmt::Kind::Update:
      return exprCost(*cast<UpdateStmt>(&S)->newPred()) + 32 * K.EqBit;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      C = exprCost(*I->cond());
      for (const StmtPtr &Sub : I->thenBody())
        C += stmtCost(*Sub);
      for (const StmtPtr &Sub : I->elseBody())
        C += stmtCost(*Sub);
      return C;
    }
    default:
      return 0;
    }
  }

private:
  double funcCost(const std::string &Name) {
    auto It = FuncCosts.find(Name);
    if (It != FuncCosts.end())
      return It->second;
    const FuncDecl *F = Prog.findFunc(Name);
    double C = 0;
    if (F)
      for (const StmtPtr &S : F->Body) {
        if (const auto *A = dyn_cast<AssignStmt>(S.get()))
          C += exprCost(*A->value());
        else if (const auto *R = dyn_cast<ReturnStmt>(S.get()))
          C += exprCost(*R->value());
      }
    FuncCosts[Name] = C;
    return C;
  }

  const Program &Prog;
  const AreaConstants &K;
  std::map<std::string, double> FuncCosts;
};

/// Lock area by implementation kind, mirroring the backend's default
/// module parameters.
void addLockArea(AreaBreakdown &A, const std::string &Mem,
                 backend::LockKind Kind, unsigned AddrW, unsigned ElemW,
                 const AreaConstants &K) {
  switch (Kind) {
  case backend::LockKind::Queue: {
    // 4 associative queues of depth 4: address tags + small id queues,
    // plus the CAM match network.
    double Flops = 4 * (AddrW + 1 + 4 * 3);
    double Comb = 4 * AddrW * K.EqBit + 4 * 8 * K.LogicBit;
    A.add("lock:" + Mem, Flops, Comb, K);
    return;
  }
  case backend::LockKind::Bypass: {
    // 4 write entries (addr+data+valid+written) and 4 read reservations
    // (dependence tags; the buffered read value shares the pipeline
    // register that carries it downstream) -- plus the associative search
    // and the dynamic newest-write priority network that make this lock
    // "more expensive than the hand-written version".
    double Flops = 4.0 * (AddrW + ElemW + 2) + 4.0 * 4;
    double Comb = 4 * AddrW * K.EqBit        // conflict search CAM
                  + 4 * ElemW * K.MuxBit     // forwarding mux tree
                  + 4 * 4 * K.LogicBit       // priority (newest) logic
                  + 4 * 4 * K.LogicBit;      // control
    A.add("lock:" + Mem, Flops, Comb, K);
    return;
  }
  case backend::LockKind::Rename: {
    unsigned Arch = 1u << AddrW;
    unsigned Phys = Arch + 8;
    unsigned Tag = 6; // log2(40) rounded up
    double Flops = double(Phys) * ElemW      // physical registers
                   + 2.0 * Arch * Tag        // map + commit tables
                   + Phys                    // valid bits
                   + Phys * Tag              // free list
                   + 2.0 * Arch * Tag;       // checkpoint replicas
    double Comb = Arch * Tag * K.MuxBit      // lookup muxing
                  + Phys * K.LogicBit + 2 * ElemW * K.MuxBit;
    A.add("lock:" + Mem, Flops, Comb, K);
    return;
  }
  }
}

} // namespace

AreaBreakdown pdl::area::estimatePdlArea(
    const CompiledProgram &Program,
    const std::map<std::string, backend::LockKind> &LockChoice,
    const AreaConstants &K) {
  AreaBreakdown A;
  CombCounter Counter(*Program.AST, K);

  for (const auto &[Name, CP] : Program.Pipes) {
    const PipeDecl &Pipe = *CP.Decl;
    LivenessInfo Live = computeLiveness(Pipe, CP.Graph);

    // Datapath logic: every statement's operators.
    double Comb = 0;
    for (const StmtPtr &S : Pipe.Body)
      Comb += Counter.stmtCost(*S);
    A.add("datapath:" + Name, 0, Comb * K.SynthSharing, K);

    // Inter-stage FIFOs: the default 2-register BSV FIFO doubles every
    // pipeline register, plus enq/deq muxing and control.
    double FifoFlops = 0, FifoComb = 0;
    for (const Stage &S : CP.Graph.Stages) {
      for (const StageEdge &E : S.Succs) {
        unsigned Bits = Live.edgeBits({E.From, E.To});
        FifoFlops += 2.0 * Bits + 3;
        FifoComb += Bits * K.MuxBit + 8 * K.LogicBit;
      }
      if (S.isJoin()) {
        FifoFlops += 8 * 2; // coordination-tag FIFO
        FifoComb += 16 * K.LogicBit;
      }
    }
    // Entry FIFO carries the pipe arguments.
    unsigned ArgBits = 0;
    for (const Param &P : Pipe.Params)
      ArgBits += P.Ty.width();
    FifoFlops += 4.0 * ArgBits;
    FifoComb += ArgBits * K.MuxBit;
    A.add("fifos:" + Name, FifoFlops, FifoComb, K);

    // Locks and register-file storage.
    for (const MemDecl &M : Pipe.Mems) {
      bool Locked = CP.Locks.ReadLocked.count(M.Name) ||
                    CP.Locks.WriteLocked.count(M.Name);
      backend::LockKind Kind = backend::LockKind::Bypass;
      auto It = LockChoice.find(Name + "." + M.Name);
      if (It == LockChoice.end())
        It = LockChoice.find(M.Name);
      if (It != LockChoice.end())
        Kind = It->second;
      if (Locked)
        addLockArea(A, Name + "." + M.Name, Kind, M.AddrWidth,
                    M.ElemType.width(), K);
      // Small memories are flop arrays inside the core; big ones are the
      // SRAM hierarchy the paper excludes. The rename lock owns its own
      // (physical) storage.
      if (M.AddrWidth <= 6 &&
          !(Locked && Kind == backend::LockKind::Rename))
        A.add("storage:" + Name + "." + M.Name,
              double(1u << M.AddrWidth) * M.ElemType.width(), 0, K);
    }

    // Speculation table (only for speculating pipes).
    if (CP.Spec.UsesSpeculation)
      A.add("spectable:" + Name, 6.0 * (32 + 2),
            32 * K.EqBit + 6 * 4 * K.LogicBit, K);
  }
  return A;
}

AreaBreakdown pdl::area::sodorArea(bool Bypassed, const AreaConstants &K) {
  AreaBreakdown A;
  // Register file: 32 x 32 flops.
  A.add("storage:rf", 32 * 32, 0, K);
  // Pipeline latches (single registers, hand-placed): IF/ID 64b,
  // ID/EX ~150b, EX/MEM ~110b, MEM/WB ~70b, pc 32b, misc control 24b.
  A.add("latches", 64 + 150 + 110 + 70 + 32 + 110, 0, K);
  // Datapath: ALU (add/sub, logic, barrel shifter, slt), pc adders,
  // branch compare, immediate/operand/writeback muxes, decoder.
  double Comb = 32 * K.AdderBit            // ALU adder/sub
                + 3 * 32 * K.LogicBit      // and/or/xor
                + 32 * K.ShiftBit          // barrel shifter
                + 32 * K.AdderBit          // slt / branch magnitude
                + 2 * 32 * K.AdderBit      // pc+4 and branch target
                + 32 * K.EqBit             // beq/bne compare
                + 6 * 32 * K.MuxBit        // imm select + operand muxes
                + 2 * 32 * K.MuxBit        // writeback mux
                + 4 * 32 * K.MuxBit        // memory-interface muxing
                + 1500 * K.LogicBit;       // decoder + control + CSR stubs
  A.add("datapath", 0, Comb, K);
  if (Bypassed) {
    // Forwarding: statically known sources, one mux per ALU operand,
    // plus rs/rd comparators.
    A.add("bypass", 0,
          2 * 32 * K.MuxBit + 6 * 5 * K.EqBit + 40 * K.LogicBit, K);
  } else {
    // Interlock-only: rs/rd comparators and stall logic.
    A.add("interlock", 0, 6 * 5 * K.EqBit + 30 * K.LogicBit, K);
  }
  return A;
}

double pdl::area::cacheArea(unsigned CapacityBytes, unsigned Ways,
                            unsigned LineBytes) {
  // CACTI-flavored: data array + tag array + decoder/sense amp overhead.
  // 45nm SRAM cell ~ 0.4 um^2; peripheral overhead factor ~2.2 for small
  // arrays; tags assume a 32-bit physical address space.
  unsigned Sets = CapacityBytes / (Ways * LineBytes);
  double DataBits = CapacityBytes * 8.0;
  unsigned IndexBits = 0;
  while ((1u << IndexBits) < Sets)
    ++IndexBits;
  unsigned OffsetBits = 0;
  while ((1u << OffsetBits) < LineBytes)
    ++OffsetBits;
  double TagBits = double(Sets) * Ways * (32 - IndexBits - OffsetBits + 2);
  return (DataBits + TagBits) * 0.40 * 2.2;
}
