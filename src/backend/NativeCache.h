//===- NativeCache.h - Compile, cache, and dlopen emitted circuits -*-C++-*===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native evaluation tier's runtime half: drive the system C++ compiler
/// over an emitted module (Emit.h), `dlopen` the shared object, verify its
/// ABI word and value-layout probe, bind the MemRead/Extern trampolines,
/// and patch every ExprProgram's Native thunk so bc::exec dispatches
/// straight into compiled code. Artifacts are content-addressed by
/// (module digest, compiler identity, flags) in an on-disk store whose
/// descriptor records reuse the support/Persist CRC/atomic discipline —
/// a warm cache never recompiles, across processes and daemon restarts.
///
/// Trust model: attachModule refuses to run anything unless the caller
/// attests that the exact bytecode being emitted carries a strict
/// translation-validation certificate (AttachOptions::Certified, minted by
/// tv::validateModule — cores::certify and pdlc --certify are the two
/// callers). The certificate digest is baked into the artifact descriptor
/// and must match on reload, so a cached .so can never outlive the proof
/// it was built under. When no compiler or dlopen is available the caller
/// falls back to fused interpretation; results are byte-identical either
/// way (PDL_CHECK_EVAL_IDENTITY cross-runs the modes to enforce it).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_NATIVECACHE_H
#define PDL_BACKEND_NATIVECACHE_H

#include "backend/Bytecode.h"

#include <cstdint>
#include <string>

namespace pdl {
namespace backend {
namespace native {

/// True when the environment requests native evaluation (PDL_EVAL_NATIVE,
/// the --eval=native surface). PDL_EVAL_TREE takes precedence, exactly as
/// it does over PDL_EVAL_FUSED; native in turn outranks fused.
bool nativeModeRequested();

/// First line of `$CXX --version` for the compiler the cache would use, or
/// "" when none is usable. PDL_NATIVE_CXX overrides discovery verbatim
/// (pointing it at a nonexistent binary is how CI proves the no-compiler
/// fallback); otherwise c++/g++/clang++ are probed in order, once per
/// process.
const std::string &compilerIdentity();

/// True when a compiler was found — the precondition for attachModule to
/// do anything but fail gracefully.
bool available();

/// Where artifacts live: PDL_NATIVE_CACHE_DIR, else a per-user directory
/// under TMPDIR. pdlsimd points this at <state-dir>/native so the daemon's
/// artifacts share its durability root.
std::string cacheDir();

struct AttachOptions {
  /// Artifact directory override; empty selects cacheDir().
  std::string CacheDir;
  /// tv::Certificate::digest() of the strict certificate covering exactly
  /// the module being attached. Recorded in the artifact descriptor.
  uint64_t CertDigest = 0;
  /// Caller's attestation that the certificate status is Status::Certified.
  /// attachModule hard-refuses when false — uncertified bytecode never
  /// reaches the system compiler.
  bool Certified = false;
  /// Diagnostic label ("5stage", a pdlc module name) for logs and errors.
  std::string ModuleName;
};

/// Emits \p M, compiles or reuses a cached artifact, verifies it, and
/// patches every program's Native thunk in place. On success M.NativeLib
/// keeps the dlopen handle alive, M.NativeCompiler records the identity,
/// and M.NativeCacheHit says whether the .so was reused. Returns false
/// (with \p Err) on any failure — compiler missing, compile error, ABI or
/// layout mismatch, certificate gate — leaving M untouched and fully
/// usable as fused bytecode.
bool attachModule(bc::ModuleIR &M, const AttachOptions &O, std::string *Err);

/// Process-wide counters, for bench rows, daemon drain stats, and the
/// warm-restart tests.
struct Stats {
  uint64_t Compiles = 0;  // cold compiles driven
  uint64_t CacheHits = 0; // artifacts reused from disk
  uint64_t Attached = 0;  // modules successfully patched
  uint64_t Fallbacks = 0; // attach attempts that degraded to fused interp
  double CompileMs = 0;   // wall time spent in cold compiles
};
Stats stats();
void resetStatsForTest();

} // namespace native
} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_NATIVECACHE_H
