//===- Compile.cpp - AST -> bytecode expression compiler -------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/Compile.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::backend;
using namespace pdl::backend::bc;

//===----------------------------------------------------------------------===//
// Interpreter loop
//===----------------------------------------------------------------------===//
//
// Threaded dispatch: on GNU-compatible compilers each opcode handler ends
// with its own indirect goto through a label table, so the branch predictor
// sees one distinct dispatch site per opcode instead of a single shared
// switch branch. PDL_NO_COMPUTED_GOTO (or a non-GNU compiler) selects the
// portable switch loop with identical semantics; both paths are built from
// the same handler bodies via the CASE/NEXT/JUMP_TO macros.

#if defined(__GNUC__) && !defined(PDL_NO_COMPUTED_GOTO)
#define PDL_BC_THREADED 1
#endif

namespace {

/// Applies a two-operand pure opcode — the shared core of the plain binary
/// handlers and the FusedBinK / FusedRetOp superinstructions. \p O must be
/// a binary op (Add..SLe, LogAnd, LogOr, Concat).
inline Bits applyBin(Op O, const Bits &B, const Bits &C) {
  switch (O) {
  case Op::Add:
    return B.add(C);
  case Op::Sub:
    return B.sub(C);
  case Op::Mul:
    return B.mul(C);
  case Op::UDiv:
    return B.udiv(C);
  case Op::SDiv:
    return B.sdiv(C);
  case Op::URem:
    return B.urem(C);
  case Op::SRem:
    return B.srem(C);
  case Op::And:
    return B.and_(C);
  case Op::Or:
    return B.or_(C);
  case Op::Xor:
    return B.xor_(C);
  case Op::Shl:
    return B.shl(C);
  case Op::LShr:
    return B.lshr(C);
  case Op::AShr:
    return B.ashr(C);
  case Op::Eq:
    return B.eq(C);
  case Op::Ne:
    return B.ne(C);
  case Op::ULt:
    return B.ult(C);
  case Op::ULe:
    return B.ule(C);
  case Op::SLt:
    return B.slt(C);
  case Op::SLe:
    return B.sle(C);
  case Op::LogAnd:
    return Bits(B.toBool() && C.toBool() ? 1 : 0, 1);
  case Op::LogOr:
    return Bits(B.toBool() || C.toBool() ? 1 : 0, 1);
  case Op::Concat:
    return B.concat(C);
  default:
    assert(false && "applyBin: not a binary opcode");
    return Bits(0, 1);
  }
}

/// FusedRetOp's sub-opcode evaluator: any pure op the fusion pass accepts
/// in an op→return tail (Fuse.cpp isRetFusable).
inline Bits applyRetOp(const ExprProgram &P, const Insn &I, const Bits *F) {
  const Op Sub = Op(I.A);
  switch (Sub) {
  case Op::Const:
    return P.Pool[I.Imm];
  case Op::Copy:
    return F[I.B];
  case Op::LogNot:
    return Bits(F[I.B].isZero() ? 1 : 0, 1);
  case Op::BitNot:
    return F[I.B].not_();
  case Op::Neg: {
    const Bits &V = F[I.B];
    return Bits(0, V.width()).sub(V);
  }
  case Op::Slice:
    return F[I.B].slice(I.Imm >> 16, I.Imm & 0xffff);
  case Op::ZExt:
    return F[I.B].zextTo(I.C);
  case Op::SExt:
    return F[I.B].sextTo(I.C);
  default:
    return applyBin(Sub, F[I.B], F[I.C]);
  }
}

} // namespace

Bits bc::execInterp(const ExprProgram &P, Bits *F, Hooks &H) {
  const Insn *Base = P.Code.data();
  const Bits *Pool = P.Pool.data();
  const Insn *I = Base;

#ifdef PDL_BC_THREADED
  // One table entry per opcode, in enum order (indexed by uint8_t value).
  static const void *const Tbl[NumOpcodes] = {
      &&L_Const,   &&L_Copy,    &&L_Add,      &&L_Sub,
      &&L_Mul,     &&L_UDiv,    &&L_SDiv,     &&L_URem,
      &&L_SRem,    &&L_And,     &&L_Or,       &&L_Xor,
      &&L_Shl,     &&L_LShr,    &&L_AShr,     &&L_Eq,
      &&L_Ne,      &&L_ULt,     &&L_ULe,      &&L_SLt,
      &&L_SLe,     &&L_LogAnd,  &&L_LogOr,    &&L_LogNot,
      &&L_BitNot,  &&L_Neg,     &&L_Slice,    &&L_ZExt,
      &&L_SExt,    &&L_Concat,  &&L_MemRead,  &&L_Extern,
      &&L_BrFalse, &&L_BrTrue,  &&L_Jump,     &&L_Ret,
      &&L_RetTrue, &&L_RetFalse, &&L_FusedCmpBr, &&L_FusedCmpRetBool,
      &&L_FusedRetBool, &&L_FusedSelect, &&L_FusedBinK, &&L_FusedRetOp};
#define CASE(Name) L_##Name:
#define NEXT                                                                  \
  do {                                                                        \
    ++I;                                                                      \
    goto *Tbl[size_t(I->Opc)];                                                \
  } while (0)
#define JUMP_TO(Target)                                                       \
  do {                                                                        \
    I = Base + (Target);                                                      \
    goto *Tbl[size_t(I->Opc)];                                                \
  } while (0)
  goto *Tbl[size_t(I->Opc)];
#else
#define CASE(Name) case Op::Name:
#define NEXT                                                                  \
  do {                                                                        \
    ++I;                                                                      \
    goto dispatch;                                                            \
  } while (0)
#define JUMP_TO(Target)                                                       \
  do {                                                                        \
    I = Base + (Target);                                                      \
    goto dispatch;                                                            \
  } while (0)
dispatch:
  switch (I->Opc) {
#endif

  CASE(Const) {
    F[I->A] = Pool[I->Imm];
    NEXT;
  }
  CASE(Copy) {
    F[I->A] = F[I->B];
    NEXT;
  }
  CASE(Add) {
    F[I->A] = F[I->B].add(F[I->C]);
    NEXT;
  }
  CASE(Sub) {
    F[I->A] = F[I->B].sub(F[I->C]);
    NEXT;
  }
  CASE(Mul) {
    F[I->A] = F[I->B].mul(F[I->C]);
    NEXT;
  }
  CASE(UDiv) {
    F[I->A] = F[I->B].udiv(F[I->C]);
    NEXT;
  }
  CASE(SDiv) {
    F[I->A] = F[I->B].sdiv(F[I->C]);
    NEXT;
  }
  CASE(URem) {
    F[I->A] = F[I->B].urem(F[I->C]);
    NEXT;
  }
  CASE(SRem) {
    F[I->A] = F[I->B].srem(F[I->C]);
    NEXT;
  }
  CASE(And) {
    F[I->A] = F[I->B].and_(F[I->C]);
    NEXT;
  }
  CASE(Or) {
    F[I->A] = F[I->B].or_(F[I->C]);
    NEXT;
  }
  CASE(Xor) {
    F[I->A] = F[I->B].xor_(F[I->C]);
    NEXT;
  }
  CASE(Shl) {
    F[I->A] = F[I->B].shl(F[I->C]);
    NEXT;
  }
  CASE(LShr) {
    F[I->A] = F[I->B].lshr(F[I->C]);
    NEXT;
  }
  CASE(AShr) {
    F[I->A] = F[I->B].ashr(F[I->C]);
    NEXT;
  }
  CASE(Eq) {
    F[I->A] = F[I->B].eq(F[I->C]);
    NEXT;
  }
  CASE(Ne) {
    F[I->A] = F[I->B].ne(F[I->C]);
    NEXT;
  }
  CASE(ULt) {
    F[I->A] = F[I->B].ult(F[I->C]);
    NEXT;
  }
  CASE(ULe) {
    F[I->A] = F[I->B].ule(F[I->C]);
    NEXT;
  }
  CASE(SLt) {
    F[I->A] = F[I->B].slt(F[I->C]);
    NEXT;
  }
  CASE(SLe) {
    F[I->A] = F[I->B].sle(F[I->C]);
    NEXT;
  }
  CASE(LogAnd) {
    F[I->A] = Bits(F[I->B].toBool() && F[I->C].toBool() ? 1 : 0, 1);
    NEXT;
  }
  CASE(LogOr) {
    F[I->A] = Bits(F[I->B].toBool() || F[I->C].toBool() ? 1 : 0, 1);
    NEXT;
  }
  CASE(LogNot) {
    F[I->A] = Bits(F[I->B].isZero() ? 1 : 0, 1);
    NEXT;
  }
  CASE(BitNot) {
    F[I->A] = F[I->B].not_();
    NEXT;
  }
  CASE(Neg) {
    const Bits &V = F[I->B];
    F[I->A] = Bits(0, V.width()).sub(V);
    NEXT;
  }
  CASE(Slice) {
    F[I->A] = F[I->B].slice(I->Imm >> 16, I->Imm & 0xffff);
    NEXT;
  }
  CASE(ZExt) {
    F[I->A] = F[I->B].zextTo(I->C);
    NEXT;
  }
  CASE(SExt) {
    F[I->A] = F[I->B].sextTo(I->C);
    NEXT;
  }
  CASE(Concat) {
    F[I->A] = F[I->B].concat(F[I->C]);
    NEXT;
  }
  CASE(MemRead) {
    F[I->A] = H.readMem(*P.MemSites[I->Imm], F[I->B].zext());
    NEXT;
  }
  CASE(Extern) {
    F[I->A] = H.callExtern(*P.ExternSites[I->Imm], &F[I->B], I->C);
    NEXT;
  }
  CASE(BrFalse) {
    if (!F[I->B].toBool())
      JUMP_TO(I->Imm);
    NEXT;
  }
  CASE(BrTrue) {
    if (F[I->B].toBool())
      JUMP_TO(I->Imm);
    NEXT;
  }
  CASE(Jump) { JUMP_TO(I->Imm); }
  CASE(Ret) { return F[I->B]; }
  CASE(RetTrue) { return Bits(1, 1); }
  CASE(RetFalse) { return Bits(0, 1); }

  // Superinstructions: each executes exactly the unfused expansion
  // documented in Bytecode.h, minus the dead scratch store.
  CASE(FusedCmpBr) {
    bool T = applyBin(Op(I->A & 0xff), F[I->B], F[I->C]).toBool();
    if (T == ((I->A & 0x100) != 0))
      JUMP_TO(I->Imm);
    NEXT;
  }
  CASE(FusedCmpRetBool) {
    bool T = applyBin(Op(I->A & 0xff), F[I->B], F[I->C]).toBool();
    return Bits(T != ((I->A & 0x100) != 0) ? 1 : 0, 1);
  }
  CASE(FusedRetBool) {
    return Bits(F[I->B].toBool() != (I->A != 0) ? 1 : 0, 1);
  }
  CASE(FusedSelect) {
    bool TC = (I->Imm & (1u << 16)) != 0, EC = (I->Imm & (1u << 17)) != 0;
    if (F[I->B].toBool())
      F[I->A] = TC ? Pool[I->C] : F[I->C];
    else
      F[I->A] = EC ? Pool[I->Imm & 0xffff] : F[I->Imm & 0xffff];
    NEXT;
  }
  CASE(FusedBinK) {
    const Bits &K = Pool[I->Imm];
    const Bits &V = F[I->B];
    F[I->A] = (I->C & 0x100) ? applyBin(Op(I->C & 0xff), K, V)
                             : applyBin(Op(I->C & 0xff), V, K);
    NEXT;
  }
  CASE(FusedRetOp) { return applyRetOp(P, *I, F); }

#ifndef PDL_BC_THREADED
  }
  assert(false && "bc::exec: fell off the opcode switch");
  return Bits(0, 1);
#endif
#undef CASE
#undef NEXT
#undef JUMP_TO
}

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

namespace {

/// Same operator semantics as evalBinary in Eval.cpp, applied at compile
/// time to literal operands.
Bits foldBinary(BinaryOp Op, bool Signed, const Bits &L, const Bits &R) {
  switch (Op) {
  case BinaryOp::Add:
    return L.add(R);
  case BinaryOp::Sub:
    return L.sub(R);
  case BinaryOp::Mul:
    return L.mul(R);
  case BinaryOp::Div:
    return Signed ? L.sdiv(R) : L.udiv(R);
  case BinaryOp::Rem:
    return Signed ? L.srem(R) : L.urem(R);
  case BinaryOp::BitAnd:
    return L.and_(R);
  case BinaryOp::BitOr:
    return L.or_(R);
  case BinaryOp::BitXor:
    return L.xor_(R);
  case BinaryOp::Shl:
    return L.shl(R);
  case BinaryOp::Shr:
    return Signed ? L.ashr(R) : L.lshr(R);
  case BinaryOp::Eq:
    return L.eq(R);
  case BinaryOp::Ne:
    return L.ne(R);
  case BinaryOp::Lt:
    return Signed ? L.slt(R) : L.ult(R);
  case BinaryOp::Le:
    return Signed ? L.sle(R) : L.ule(R);
  case BinaryOp::Gt:
    return Signed ? R.slt(L) : R.ult(L);
  case BinaryOp::Ge:
    return Signed ? R.sle(L) : R.ule(L);
  case BinaryOp::LogicalAnd:
    return Bits(L.toBool() && R.toBool() ? 1 : 0, 1);
  case BinaryOp::LogicalOr:
    return Bits(L.toBool() || R.toBool() ? 1 : 0, 1);
  case BinaryOp::Concat:
    return L.concat(R);
  }
  assert(false && "unknown binary operator");
  return Bits();
}

/// A compile-time value: either a known constant or a frame slot.
struct Val {
  bool IsConst = false;
  uint16_t Slot = NoSlot;
  Bits K;

  static Val constant(Bits B) {
    Val V;
    V.IsConst = true;
    V.K = B;
    return V;
  }
  static Val slot(uint16_t S) {
    Val V;
    V.Slot = S;
    return V;
  }
};

/// Compiles one pipe: slot table, statement/if-condition programs, and
/// (when a stage graph is supplied) the executor's stage mirrors.
/// Deliberate-miscompile switch for the translation validator's self-test
/// (src/tv/): PDL_TV_MUTATE=cse-ternary keeps the then-arm's value numbers
/// alive into the else arm (the classic dropped-invalidation bug — the else
/// path then reads scratch slots only the then path wrote);
/// PDL_TV_MUTATE=guard-drop neutralizes the last short-circuit branch of
/// each fused guard program. Both must be rejected by tv::validateModule.
enum class Mutation { None, CseTernary, GuardDrop };

Mutation requestedMutation() {
  const char *E = std::getenv("PDL_TV_MUTATE");
  if (!E)
    return Mutation::None;
  if (std::strcmp(E, "cse-ternary") == 0)
    return Mutation::CseTernary;
  if (std::strcmp(E, "guard-drop") == 0)
    return Mutation::GuardDrop;
  return Mutation::None;
}

class PipeCompiler {
public:
  PipeCompiler(const ast::Program &AST, const PipeDecl &Pipe, PipeProgram &PP)
      : AST(AST), Pipe(Pipe), PP(PP), Mut(requestedMutation()) {}

  void run(const StageGraph *G) {
    // Pass 1: discover every named variable and its declared width.
    for (const Param &P : Pipe.Params)
      noteWidth(P.Name, P.Ty.width());
    for (const StmtPtr &S : Pipe.Body)
      collectStmt(*S.get());
    PP.NumVars = static_cast<unsigned>(PP.SlotNames.size());
    PP.FrameSize = PP.NumVars;

    // Pass 2: compile statement-operand and if-condition programs.
    for (const StmtPtr &S : Pipe.Body)
      compileStmtPrograms(*S.get());

    // Pass 3: stage mirrors for the pipelined executor.
    if (G)
      compileStages(*G);

    // Finalise the frame template.
    PP.Name = Pipe.Name;
    PP.InitFrame.assign(PP.FrameSize, Bits());
    for (unsigned I = 0; I != PP.NumVars; ++I)
      PP.InitFrame[I] = Bits(0, VarWidths[I] ? VarWidths[I] : 1);
    for (const Param &P : Pipe.Params)
      PP.ParamSlots.push_back(PP.SlotIndex.at(P.Name));
  }

private:
  const ast::Program &AST;
  const PipeDecl &Pipe;
  PipeProgram &PP;
  Mutation Mut;
  std::vector<unsigned> VarWidths;

  // ---- per-program state ----
  ExprProgram *Cur = nullptr;
  uint16_t NextTemp = 0;
  unsigned HighWater = 0;
  unsigned InlineDepth = 0;
  // Value numbering: (opcode, B, C, Imm) -> slot holding the result.
  using VNKey = std::tuple<uint8_t, uint16_t, uint16_t, uint32_t>;
  std::map<VNKey, uint16_t> VN;
  std::map<std::pair<uint64_t, unsigned>, uint32_t> PoolIds;

  /// Function-inlining scope: `def` bodies resolve names here only,
  /// mirroring the Locals environment in Eval.cpp.
  struct Scope {
    std::map<std::string, Val> Map;
  };

  //===--------------------------------------------------------------------===//
  // Pass 1: slot collection
  //===--------------------------------------------------------------------===//

  uint16_t noteName(const std::string &N) {
    auto It = PP.SlotIndex.find(N);
    if (It != PP.SlotIndex.end())
      return It->second;
    assert(PP.SlotNames.size() < NoSlot && "too many variables in one pipe");
    uint16_t S = static_cast<uint16_t>(PP.SlotNames.size());
    PP.SlotIndex.emplace(N, S);
    PP.SlotNames.push_back(N);
    VarWidths.push_back(0);
    return S;
  }

  void noteWidth(const std::string &N, unsigned W) {
    uint16_t S = noteName(N);
    if (!VarWidths[S])
      VarWidths[S] = W;
  }

  void collectExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
      return;
    case Expr::Kind::VarRef:
      noteWidth(cast<VarRefExpr>(&E)->name(), E.type().width());
      return;
    case Expr::Kind::Unary:
      collectExpr(*cast<UnaryExpr>(&E)->operand());
      return;
    case Expr::Kind::Binary:
      collectExpr(*cast<BinaryExpr>(&E)->lhs());
      collectExpr(*cast<BinaryExpr>(&E)->rhs());
      return;
    case Expr::Kind::Ternary:
      collectExpr(*cast<TernaryExpr>(&E)->cond());
      collectExpr(*cast<TernaryExpr>(&E)->thenExpr());
      collectExpr(*cast<TernaryExpr>(&E)->elseExpr());
      return;
    case Expr::Kind::Slice:
      collectExpr(*cast<SliceExpr>(&E)->base());
      return;
    case Expr::Kind::Cast:
      collectExpr(*cast<CastExpr>(&E)->operand());
      return;
    case Expr::Kind::MemRead:
      collectExpr(*cast<MemReadExpr>(&E)->addr());
      return;
    case Expr::Kind::FuncCall:
      // Function bodies resolve names in function scope only; just the
      // arguments can reference pipe variables.
      for (const ExprPtr &A : cast<FuncCallExpr>(&E)->args())
        collectExpr(*A);
      return;
    case Expr::Kind::ExternCall:
      for (const ExprPtr &A : cast<ExternCallExpr>(&E)->args())
        collectExpr(*A);
      return;
    }
  }

  void collectStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      noteWidth(A->name(), A->value()->type().width());
      collectExpr(*A->value());
      return;
    }
    case Stmt::Kind::SyncRead: {
      const auto *Rd = cast<SyncReadStmt>(&S);
      if (const MemDecl *M = Pipe.findMem(Rd->mem()))
        noteWidth(Rd->name(), M->ElemType.width());
      else
        noteName(Rd->name());
      collectExpr(*Rd->addr());
      return;
    }
    case Stmt::Kind::PipeCall: {
      const auto *C = cast<PipeCallStmt>(&S);
      for (const ExprPtr &A : C->args())
        collectExpr(*A);
      if (C->hasResult() && !C->isSpec()) {
        if (const PipeDecl *Callee = AST.findPipe(C->pipe()))
          noteWidth(C->resultName(), Callee->RetType.width());
        else
          noteName(C->resultName());
      }
      return;
    }
    case Stmt::Kind::MemWrite:
      collectExpr(*cast<MemWriteStmt>(&S)->addr());
      collectExpr(*cast<MemWriteStmt>(&S)->value());
      return;
    case Stmt::Kind::Output:
      collectExpr(*cast<OutputStmt>(&S)->value());
      return;
    case Stmt::Kind::Lock:
      if (const Expr *A = cast<LockStmt>(&S)->addr())
        collectExpr(*A);
      return;
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(&S);
      collectExpr(*V->actual());
      if (const ExternCallExpr *U = V->predictorUpdate())
        collectExpr(*U);
      return;
    }
    case Stmt::Kind::Update:
      collectExpr(*cast<UpdateStmt>(&S)->newPred());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      collectExpr(*I->cond());
      for (const StmtPtr &T : I->thenBody())
        collectStmt(*T.get());
      for (const StmtPtr &T : I->elseBody())
        collectStmt(*T.get());
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(&S)->value())
        collectExpr(*V);
      return;
    case Stmt::Kind::SpecCheck:
    case Stmt::Kind::StageSep:
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Program emission helpers
  //===--------------------------------------------------------------------===//

  void beginProgram(ExprProgram *P) {
    Cur = P;
    NextTemp = static_cast<uint16_t>(PP.NumVars);
    HighWater = PP.NumVars;
    VN.clear();
    PoolIds.clear();
  }

  void endProgram() {
    PP.FrameSize = std::max(PP.FrameSize, HighWater);
    Cur = nullptr;
  }

  uint16_t allocTemp() {
    assert(NextTemp < NoSlot && "expression too large for slot space");
    uint16_t S = NextTemp++;
    HighWater = std::max<unsigned>(HighWater, NextTemp);
    return S;
  }

  uint32_t emit(Op Opc, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
                uint32_t Imm = 0) {
    Cur->Code.push_back(Insn{Opc, A, B, C, Imm});
    return static_cast<uint32_t>(Cur->Code.size() - 1);
  }

  uint32_t internConst(const Bits &K) {
    auto Key = std::make_pair(K.zext(), K.width());
    auto It = PoolIds.find(Key);
    if (It != PoolIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Cur->Pool.size());
    Cur->Pool.push_back(K);
    PoolIds.emplace(Key, Id);
    return Id;
  }

  uint16_t materialize(const Val &V) {
    if (!V.IsConst)
      return V.Slot;
    uint32_t Id = internConst(V.K);
    VNKey Key{static_cast<uint8_t>(Op::Const), 0, 0, Id};
    auto It = VN.find(Key);
    if (It != VN.end())
      return It->second;
    uint16_t D = allocTemp();
    emit(Op::Const, D, 0, 0, Id);
    VN.emplace(Key, D);
    return D;
  }

  /// Emits a pure three-address op with value numbering.
  Val emitVN(Op Opc, uint16_t B, uint16_t C = 0, uint32_t Imm = 0) {
    VNKey Key{static_cast<uint8_t>(Opc), B, C, Imm};
    auto It = VN.find(Key);
    if (It != VN.end())
      return Val::slot(It->second);
    uint16_t D = allocTemp();
    emit(Opc, D, B, C, Imm);
    VN.emplace(Key, D);
    return Val::slot(D);
  }

  void emitMove(uint16_t D, const Val &V) {
    if (V.IsConst)
      emit(Op::Const, D, 0, 0, internConst(V.K));
    else if (V.Slot != D)
      emit(Op::Copy, D, V.Slot);
  }

  //===--------------------------------------------------------------------===//
  // Expression lowering
  //===--------------------------------------------------------------------===//

  Val compileBinary(const BinaryExpr &B, const Scope *Sc) {
    Val L = compileExpr(*B.lhs(), Sc);
    Val R = compileExpr(*B.rhs(), Sc);
    bool Signed = B.lhs()->type().isSigned();
    if (L.IsConst && R.IsConst)
      return Val::constant(foldBinary(B.op(), Signed, L.K, R.K));
    uint16_t LS = materialize(L);
    uint16_t RS = materialize(R);
    switch (B.op()) {
    case BinaryOp::Add:
      return emitVN(Op::Add, LS, RS);
    case BinaryOp::Sub:
      return emitVN(Op::Sub, LS, RS);
    case BinaryOp::Mul:
      return emitVN(Op::Mul, LS, RS);
    case BinaryOp::Div:
      return emitVN(Signed ? Op::SDiv : Op::UDiv, LS, RS);
    case BinaryOp::Rem:
      return emitVN(Signed ? Op::SRem : Op::URem, LS, RS);
    case BinaryOp::BitAnd:
      return emitVN(Op::And, LS, RS);
    case BinaryOp::BitOr:
      return emitVN(Op::Or, LS, RS);
    case BinaryOp::BitXor:
      return emitVN(Op::Xor, LS, RS);
    case BinaryOp::Shl:
      return emitVN(Op::Shl, LS, RS);
    case BinaryOp::Shr:
      return emitVN(Signed ? Op::AShr : Op::LShr, LS, RS);
    case BinaryOp::Eq:
      return emitVN(Op::Eq, LS, RS);
    case BinaryOp::Ne:
      return emitVN(Op::Ne, LS, RS);
    case BinaryOp::Lt:
      return emitVN(Signed ? Op::SLt : Op::ULt, LS, RS);
    case BinaryOp::Le:
      return emitVN(Signed ? Op::SLe : Op::ULe, LS, RS);
    case BinaryOp::Gt: // swapped operands, like the tree walker
      return emitVN(Signed ? Op::SLt : Op::ULt, RS, LS);
    case BinaryOp::Ge:
      return emitVN(Signed ? Op::SLe : Op::ULe, RS, LS);
    case BinaryOp::LogicalAnd:
      return emitVN(Op::LogAnd, LS, RS);
    case BinaryOp::LogicalOr:
      return emitVN(Op::LogOr, LS, RS);
    case BinaryOp::Concat:
      return emitVN(Op::Concat, LS, RS);
    }
    assert(false && "unknown binary operator");
    return Val::constant(Bits());
  }

  Val compileTernary(const TernaryExpr &T, const Scope *Sc) {
    Val C = compileExpr(*T.cond(), Sc);
    // Constant condition: only the taken arm exists at runtime, exactly
    // like the tree walker (the untaken arm's hook sites never fire).
    if (C.IsConst)
      return compileExpr(C.K.toBool() ? *T.thenExpr() : *T.elseExpr(), Sc);
    uint16_t CS = materialize(C);
    uint16_t D = allocTemp();
    auto Snapshot = VN;
    uint16_t TempMark = NextTemp;
    uint32_t BrIx = emit(Op::BrFalse, 0, CS);
    Val TV = compileExpr(*T.thenExpr(), Sc);
    emitMove(D, TV);
    uint32_t JmpIx = emit(Op::Jump);
    Cur->Code[BrIx].Imm = static_cast<uint32_t>(Cur->Code.size());
    // Each arm starts from the post-condition value-numbering state; arm
    // temporaries are dead after the join, so the else arm reuses them.
    uint16_t ThenHigh = NextTemp;
    if (Mut != Mutation::CseTernary) {
      VN = Snapshot;
      NextTemp = TempMark;
    }
    Val EV = compileExpr(*T.elseExpr(), Sc);
    emitMove(D, EV);
    Cur->Code[JmpIx].Imm = static_cast<uint32_t>(Cur->Code.size());
    VN = std::move(Snapshot);
    NextTemp = std::max(NextTemp, ThenHigh);
    HighWater = std::max<unsigned>(HighWater, NextTemp);
    return Val::slot(D);
  }

  Val compileFuncCall(const FuncCallExpr &C, const Scope *Sc) {
    const FuncDecl *F = AST.findFunc(C.callee());
    assert(F && "call of unknown function survived type checking");
    assert(InlineDepth < 16 && "def-function recursion too deep to inline");
    Scope Local;
    for (unsigned I = 0, N = static_cast<unsigned>(C.args().size()); I != N;
         ++I)
      Local.Map[F->Params[I].Name] = compileExpr(*C.args()[I], Sc);
    ++InlineDepth;
    Val R = Val::constant(Bits());
    for (const StmtPtr &S : F->Body) {
      if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
        Local.Map[A->name()] = compileExpr(*A->value(), &Local);
        continue;
      }
      R = compileExpr(*cast<ReturnStmt>(S.get())->value(), &Local);
      break;
    }
    --InlineDepth;
    return R;
  }

  Val compileExpr(const Expr &E, const Scope *Sc) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return Val::constant(
          Bits(cast<IntLitExpr>(&E)->value(), E.type().width()));
    case Expr::Kind::BoolLit:
      return Val::constant(Bits(cast<BoolLitExpr>(&E)->value() ? 1 : 0, 1));
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRefExpr>(&E);
      if (Sc) {
        // Inside an inlined def body: function scope only; unbound names
        // read as zero at the reference site's width (Eval.cpp Locals).
        auto It = Sc->Map.find(V->name());
        if (It != Sc->Map.end())
          return It->second;
        return Val::constant(Bits(0, E.type().width()));
      }
      auto It = PP.SlotIndex.find(V->name());
      assert(It != PP.SlotIndex.end() && "variable missed by slot collection");
      return Val::slot(It->second);
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      Val V = compileExpr(*U->operand(), Sc);
      switch (U->op()) {
      case UnaryOp::LogicalNot:
        if (V.IsConst)
          return Val::constant(Bits(V.K.isZero() ? 1 : 0, 1));
        return emitVN(Op::LogNot, materialize(V));
      case UnaryOp::BitNot:
        if (V.IsConst)
          return Val::constant(V.K.not_());
        return emitVN(Op::BitNot, materialize(V));
      case UnaryOp::Negate:
        if (V.IsConst)
          return Val::constant(Bits(0, V.K.width()).sub(V.K));
        return emitVN(Op::Neg, materialize(V));
      }
      break;
    }
    case Expr::Kind::Binary:
      return compileBinary(*cast<BinaryExpr>(&E), Sc);
    case Expr::Kind::Ternary:
      return compileTernary(*cast<TernaryExpr>(&E), Sc);
    case Expr::Kind::Slice: {
      const auto *S = cast<SliceExpr>(&E);
      Val V = compileExpr(*S->base(), Sc);
      if (V.IsConst)
        return Val::constant(V.K.slice(S->hi(), S->lo()));
      return emitVN(Op::Slice, materialize(V), 0,
                    (static_cast<uint32_t>(S->hi()) << 16) | S->lo());
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(&E);
      Val V = compileExpr(*C->operand(), Sc);
      bool SrcSigned = C->operand()->type().isSigned();
      unsigned W = C->target().width();
      if (V.IsConst)
        return Val::constant(SrcSigned ? V.K.sextTo(W) : V.K.zextTo(W));
      return emitVN(SrcSigned ? Op::SExt : Op::ZExt, materialize(V),
                    static_cast<uint16_t>(W));
    }
    case Expr::Kind::MemRead: {
      const auto *M = cast<MemReadExpr>(&E);
      uint16_t AS = materialize(compileExpr(*M->addr(), Sc));
      uint32_t Site = static_cast<uint32_t>(Cur->MemSites.size());
      Cur->MemSites.push_back(M);
      uint16_t D = allocTemp(); // never value-numbered: hooks are stateful
      emit(Op::MemRead, D, AS, 0, Site);
      return Val::slot(D);
    }
    case Expr::Kind::FuncCall:
      return compileFuncCall(*cast<FuncCallExpr>(&E), Sc);
    case Expr::Kind::ExternCall: {
      const auto *C = cast<ExternCallExpr>(&E);
      std::vector<Val> Args;
      for (const ExprPtr &A : C->args())
        Args.push_back(compileExpr(*A, Sc));
      // Gather into a fresh contiguous block for the hook call.
      uint16_t Base = NextTemp;
      for (const Val &V : Args)
        emitMove(allocTemp(), V);
      uint32_t Site = static_cast<uint32_t>(Cur->ExternSites.size());
      Cur->ExternSites.push_back(C);
      uint16_t D = allocTemp();
      emit(Op::Extern, D, Base, static_cast<uint16_t>(Args.size()), Site);
      return Val::slot(D);
    }
    }
    assert(false && "unknown expression kind");
    return Val::constant(Bits());
  }

  //===--------------------------------------------------------------------===//
  // Pass 2/3 drivers
  //===--------------------------------------------------------------------===//

  const ExprProgram *compileExprProgram(const Expr &E) {
    auto It = PP.ExprIndex.find(&E);
    if (It != PP.ExprIndex.end())
      return It->second;
    ExprProgram &P = PP.Programs.emplace_back();
    beginProgram(&P);
    Val V = compileExpr(E, nullptr);
    emit(Op::Ret, 0, materialize(V));
    endProgram();
    PP.ExprIndex.emplace(&E, &P);
    return &P;
  }

  /// Fuses a guard conjunction into one short-circuiting program: each term
  /// evaluates in order and bails to RetFalse the moment it disagrees with
  /// its polarity — identical term-by-term evaluation (and hook) order to
  /// evalGuard, without re-entering the evaluator per term.
  const ExprProgram *compileGuardProgram(const Guard &G) {
    if (G.empty())
      return nullptr;
    ExprProgram &P = PP.Programs.emplace_back();
    beginProgram(&P);
    std::vector<uint32_t> FailFixups;
    bool ConstFalse = false;
    for (const GuardTerm &T : G) {
      Val V = compileExpr(*T.Cond, nullptr);
      if (V.IsConst) {
        if (V.K.toBool() != T.Polarity) {
          // Terms after a constantly-false one never evaluate — the tree
          // walker stops there too.
          emit(Op::RetFalse);
          ConstFalse = true;
          break;
        }
        continue; // constantly-true term: nothing to check at runtime
      }
      uint16_t S = materialize(V);
      FailFixups.push_back(emit(T.Polarity ? Op::BrFalse : Op::BrTrue, 0, S));
    }
    if (Mut == Mutation::GuardDrop && !FailFixups.empty()) {
      uint32_t Ix = FailFixups.back();
      FailFixups.pop_back();
      P.Code[Ix] = Insn{Op::Jump, 0, 0, 0, Ix + 1};
    }
    if (!ConstFalse)
      emit(Op::RetTrue);
    if (!FailFixups.empty()) {
      uint32_t FailAt = static_cast<uint32_t>(P.Code.size());
      emit(Op::RetFalse);
      for (uint32_t Ix : FailFixups)
        P.Code[Ix].Imm = FailAt;
    }
    endProgram();
    if (P.Code.size() == 1 && P.Code[0].Opc == Op::RetTrue) {
      // Every term folded away: an always-true guard is a null program.
      PP.Programs.pop_back();
      return nullptr;
    }
    return &P;
  }

  void compileStmtPrograms(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Assign:
      compileExprProgram(*cast<AssignStmt>(&S)->value());
      return;
    case Stmt::Kind::SyncRead:
      compileExprProgram(*cast<SyncReadStmt>(&S)->addr());
      return;
    case Stmt::Kind::PipeCall:
      for (const ExprPtr &A : cast<PipeCallStmt>(&S)->args())
        compileExprProgram(*A);
      return;
    case Stmt::Kind::MemWrite:
      compileExprProgram(*cast<MemWriteStmt>(&S)->addr());
      compileExprProgram(*cast<MemWriteStmt>(&S)->value());
      return;
    case Stmt::Kind::Output:
      compileExprProgram(*cast<OutputStmt>(&S)->value());
      return;
    case Stmt::Kind::Lock:
      if (const Expr *A = cast<LockStmt>(&S)->addr())
        compileExprProgram(*A);
      return;
    case Stmt::Kind::Verify: {
      const auto *V = cast<VerifyStmt>(&S);
      compileExprProgram(*V->actual());
      // The update method returns void, so the call cannot go through the
      // value-producing Extern opcode: compile each argument and let the
      // executor invoke the module directly.
      if (const ExternCallExpr *U = V->predictorUpdate())
        for (const ExprPtr &A : U->args())
          compileExprProgram(*A);
      return;
    }
    case Stmt::Kind::Update:
      compileExprProgram(*cast<UpdateStmt>(&S)->newPred());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      compileExprProgram(*I->cond());
      for (const StmtPtr &T : I->thenBody())
        compileStmtPrograms(*T.get());
      for (const StmtPtr &T : I->elseBody())
        compileStmtPrograms(*T.get());
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(&S)->value())
        compileExprProgram(*V);
      return;
    case Stmt::Kind::SpecCheck:
    case Stmt::Kind::StageSep:
      return;
    }
  }

  void compileStages(const StageGraph &G) {
    PP.Stages.resize(G.Stages.size());
    for (const Stage &S : G.Stages) {
      StageProg &SP = PP.Stages[S.Id];
      for (const StagedOp &O : S.Ops) {
        OpProg OP;
        OP.Guard = compileGuardProgram(O.G);
        switch (O.S->kind()) {
        case Stmt::Kind::Assign: {
          const auto *A = cast<AssignStmt>(O.S);
          OP.E0 = compileExprProgram(*A->value());
          OP.Dest = PP.SlotIndex.at(A->name());
          break;
        }
        case Stmt::Kind::SyncRead: {
          const auto *Rd = cast<SyncReadStmt>(O.S);
          OP.E0 = compileExprProgram(*Rd->addr());
          OP.Dest = PP.SlotIndex.at(Rd->name());
          break;
        }
        case Stmt::Kind::PipeCall: {
          const auto *C = cast<PipeCallStmt>(O.S);
          for (const ExprPtr &A : C->args())
            OP.Args.push_back(compileExprProgram(*A));
          if (C->hasResult() && !C->isSpec())
            OP.Dest = PP.SlotIndex.at(C->resultName());
          break;
        }
        case Stmt::Kind::MemWrite: {
          const auto *W = cast<MemWriteStmt>(O.S);
          OP.E0 = compileExprProgram(*W->addr());
          OP.E1 = compileExprProgram(*W->value());
          break;
        }
        case Stmt::Kind::Output:
          OP.E0 = compileExprProgram(*cast<OutputStmt>(O.S)->value());
          break;
        case Stmt::Kind::Lock:
          if (const Expr *A = cast<LockStmt>(O.S)->addr())
            OP.E0 = compileExprProgram(*A);
          break;
        case Stmt::Kind::Verify: {
          const auto *V = cast<VerifyStmt>(O.S);
          OP.E0 = compileExprProgram(*V->actual());
          // Predictor-update arguments; the update method is void, so the
          // executor invokes it directly instead of via the Extern opcode.
          if (const ExternCallExpr *U = V->predictorUpdate())
            for (const ExprPtr &A : U->args())
              OP.Args.push_back(compileExprProgram(*A));
          break;
        }
        case Stmt::Kind::Update:
          OP.E0 = compileExprProgram(*cast<UpdateStmt>(O.S)->newPred());
          break;
        default:
          break;
        }
        SP.Ops.push_back(std::move(OP));
      }
      for (const StageEdge &E : S.Succs)
        SP.EdgeGuards.push_back(compileGuardProgram(E.G));
      for (const TagRule &R : S.TagRules)
        SP.TagGuards.push_back(compileGuardProgram(R.G));
    }
  }
};

void compilePipe(const ast::Program &AST, const PipeDecl &Pipe,
                 const StageGraph *G, PipeProgram &PP) {
  PipeCompiler(AST, Pipe, PP).run(G);
}

} // namespace

std::shared_ptr<const ModuleIR> bc::compileModule(const CompiledProgram &CP) {
  auto M = std::make_shared<ModuleIR>();
  for (const auto &Entry : CP.Pipes)
    compilePipe(*CP.AST, *Entry.second.Decl, &Entry.second.Graph,
                M->Pipes[Entry.first]);
  return M;
}

std::shared_ptr<const ModuleIR> bc::compileModule(const ast::Program &AST) {
  auto M = std::make_shared<ModuleIR>();
  for (const PipeDecl &P : AST.Pipes)
    compilePipe(AST, P, nullptr, M->Pipes[P.Name]);
  return M;
}
