//===- System.cpp - Elaborated pipelined circuit executor ------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/System.h"

#include "hw/BypassQueue.h"
#include "hw/QueueLock.h"
#include "hw/RenameLock.h"
#include "passes/PathCondition.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

static bool traceOn() {
  static bool On = std::getenv("PDL_TRACE") != nullptr;
  return On;
}

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::backend;

namespace {

char modeChar(hw::Access M) {
  switch (M) {
  case hw::Access::Read:
    return 'R';
  case hw::Access::Write:
    return 'W';
  case hw::Access::ReadWrite:
    return 'X';
  }
  return '?';
}

hw::Access accessFor(LockMode M) {
  switch (M) {
  case LockMode::Read:
    return hw::Access::Read;
  case LockMode::Write:
    return hw::Access::Write;
  case LockMode::None:
    return hw::Access::ReadWrite;
  }
  return hw::Access::ReadWrite;
}

std::string resKey(const std::string &Mem, const std::string &AddrText,
                   hw::Access M) {
  return Mem + "#" + AddrText + "#" + modeChar(M);
}

} // namespace

System::System(const CompiledProgram &CP, ElabConfig Cfg)
    : CP(CP), Cfg(std::move(Cfg)) {
  assert(CP.ok() && "elaborating a program with errors");
  for (const auto &[Name, Pipe] : CP.Pipes) {
    auto PI = std::make_unique<PipeInstance>(this->Cfg.EntryDepth,
                                             this->Cfg.SpecCapacity);
    PI->CP = &Pipe;
    for (const MemDecl &M : Pipe.Decl->Mems)
      PI->Mems.emplace(M.Name, std::make_unique<hw::Memory>(
                                   M.Name, M.ElemType.width(), M.AddrWidth,
                                   M.IsSync));
    for (const Stage &S : Pipe.Graph.Stages) {
      for (const StageEdge &E : S.Succs)
        PI->EdgeFifos.emplace(std::make_pair(E.From, E.To),
                              hw::Fifo<Thread>(this->Cfg.FifoDepth));
    }
    // Multi-stage reservation regions are serialized (Section 4.1: "only
    // a single thread may execute inside a lock region at a time").
    for (const auto &[Mem, Stages] : Pipe.Locks.RegionStages) {
      if (Stages.size() < 2)
        continue; // single-stage regions are atomic by construction
      LockRegion R;
      R.Mem = Mem;
      R.First = *Stages.begin();
      R.Last = *Stages.rbegin();
      PI->Regions.push_back(R);
    }
    Pipes.emplace(Name, std::move(PI));
  }
}

System::~System() = default;

System::PipeInstance &System::pipe(const std::string &Name) {
  auto It = Pipes.find(Name);
  assert(It != Pipes.end() && "unknown pipe");
  return *It->second;
}

hw::Memory &System::memory(const std::string &Pipe, const std::string &Mem) {
  auto &P = pipe(Pipe);
  auto It = P.Mems.find(Mem);
  assert(It != P.Mems.end() && "unknown memory");
  return *It->second;
}

hw::HazardLock &System::lock(const std::string &Pipe,
                             const std::string &Mem) {
  auto &P = pipe(Pipe);
  auto It = P.Locks.find(Mem);
  assert(It != P.Locks.end() && "memory has no lock (or start() not called)");
  return *It->second;
}

void System::bindExtern(const std::string &Name, hw::ExternModule *Module) {
  Externs[Name] = Module;
}

void System::setHaltOnWrite(const std::string &Pipe, const std::string &Mem,
                            uint64_t Addr) {
  HaltWatch = {Pipe, Mem, Addr};
}

void System::elaborateLocks() {
  if (LocksBuilt)
    return;
  LocksBuilt = true;
  for (auto &[Name, PI] : Pipes) {
    const LockAnalysis &LA = PI->CP->Locks;
    for (const MemDecl &M : PI->CP->Decl->Mems) {
      // Only memories the pipe locks get a lock instance.
      if (!LA.ReadLocked.count(M.Name) && !LA.WriteLocked.count(M.Name))
        continue;
      hw::Memory &Mem = *PI->Mems.at(M.Name);
      LockKind Kind = Cfg.DefaultLock;
      auto It = Cfg.LockChoice.find(Name + "." + M.Name);
      if (It == Cfg.LockChoice.end())
        It = Cfg.LockChoice.find(M.Name);
      if (It != Cfg.LockChoice.end())
        Kind = It->second;
      std::unique_ptr<hw::HazardLock> L;
      switch (Kind) {
      case LockKind::Queue:
        L = std::make_unique<hw::QueueLock>(Mem);
        break;
      case LockKind::Bypass:
        L = std::make_unique<hw::BypassQueueLock>(Mem);
        break;
      case LockKind::Rename:
        L = std::make_unique<hw::RenameLock>(Mem);
        break;
      }
      PI->Locks.emplace(M.Name, std::move(L));
    }
  }
}

hw::HazardLock *System::lockFor(PipeInstance &P, const std::string &Mem) {
  auto It = P.Locks.find(Mem);
  return It == P.Locks.end() ? nullptr : It->second.get();
}

bool System::canAccept(const std::string &PipeName) {
  PipeInstance &P = pipe(PipeName);
  return P.Entry.size() + pendingEnqCount(P, /*ToEntry=*/true, {}) <
         P.Entry.capacity();
}

void System::start(const std::string &PipeName, std::vector<Bits> Args) {
  elaborateLocks();
  PipeInstance &P = pipe(PipeName);
  const PipeDecl *Decl = P.CP->Decl;
  assert(Args.size() == Decl->Params.size() && "argument count mismatch");
  Thread T;
  T.Tid = NextTid++;
  for (unsigned I = 0, N = Args.size(); I != N; ++I)
    T.Vars[Decl->Params[I].Name] = Args[I];
  T.Trace.Args = Args;
  P.Entry.enq(std::move(T));
}

Bits System::archRead(const std::string &Pipe, const std::string &Mem,
                      uint64_t Addr) {
  PipeInstance &P = pipe(Pipe);
  if (hw::HazardLock *L = lockFor(P, Mem))
    return L->archRead(Addr);
  return P.Mems.at(Mem)->read(Addr);
}

const std::vector<ThreadTrace> &
System::trace(const std::string &Pipe) const {
  auto It = Pipes.find(Pipe);
  assert(It != Pipes.end() && "unknown pipe");
  return It->second->Retired;
}

//===----------------------------------------------------------------------===//
// Evaluation hooks
//===----------------------------------------------------------------------===//

EvalHooks System::hooksFor(PipeInstance &P, Thread &T, WalkCtx &Ctx) {
  EvalHooks H;
  H.ReadMem = [this, &P, &T, &Ctx](const MemReadExpr &Site, uint64_t Addr) {
    hw::HazardLock *L = lockFor(P, Site.mem());
    if (!L)
      return P.Mems.at(Site.mem())->read(Addr);
    std::string Text = addrKey(*Site.addr());
    bool Probe = Ctx.Mode == WalkMode::Probe;
    for (hw::Access M : {hw::Access::Read, hw::Access::ReadWrite}) {
      std::string Key = resKey(Site.mem(), Text, M);
      auto It = T.Res.find(Key);
      if (It != T.Res.end())
        return Probe ? L->readP(Ctx.Probes[L], It->second)
                     : L->read(It->second);
      // Reserved earlier in this stage during the probe pass: peek the
      // value a fresh reservation would see.
      if (Probe && Ctx.ProbeReserved.count(Key))
        return L->peek(Addr, M);
    }
    assert(false && "combinational read of a locked memory without an "
                    "acquired reservation");
    return Bits(0, P.Mems.at(Site.mem())->elemWidth());
  };
  H.CallExtern = [this](const ExternCallExpr &Site,
                        const std::vector<Bits> &Args) {
    auto It = Externs.find(Site.module());
    assert(It != Externs.end() && "unbound extern module");
    auto R = It->second->invoke(Site.method(), Args);
    assert(R && "extern value method returned nothing");
    return *R;
  };
  return H;
}

//===----------------------------------------------------------------------===//
// Per-cycle stage firing
//===----------------------------------------------------------------------===//

unsigned System::pendingEnqCount(PipeInstance &P, bool ToEntry,
                                 std::pair<unsigned, unsigned> Edge) const {
  unsigned N = 0;
  for (const PendingEnq &E : PendingEnqs)
    if (E.P == &P && E.ToEntry == ToEntry && (ToEntry || E.Edge == Edge))
      ++N;
  return N;
}

System::Thread *System::stageInput(PipeInstance &P, const Stage &S,
                                   unsigned &PredIdx) {
  auto DrainDead = [&](hw::Fifo<Thread> &F) -> Thread * {
    while (!F.empty()) {
      Thread &T = F.front();
      if (T.MySpec != 0 &&
          P.Spec.status(T.MySpec) == hw::SpecStatus::Mispredicted) {
        Thread Dead = F.deq();
        killThread(P, std::move(Dead));
        continue;
      }
      return &T;
    }
    return nullptr;
  };

  if (S.Id == P.CP->Graph.Entry) {
    PredIdx = ~0u;
    return DrainDead(P.Entry);
  }
  if (S.isJoin()) {
    std::deque<TagTok> &Tags = P.TagQueues[S.Id];
    while (!Tags.empty()) {
      TagTok Tok = Tags.front();
      assert(Tok.Tag < S.Preds.size() && "bad coordination tag");
      auto &F = P.EdgeFifos.at({S.Preds[Tok.Tag], S.Id});
      if (F.empty())
        return nullptr; // the tagged thread has not arrived yet
      Thread &T = F.front();
      assert(T.Tid == Tok.Tid && "coordination tag out of sync");
      if (T.MySpec != 0 &&
          P.Spec.status(T.MySpec) == hw::SpecStatus::Mispredicted) {
        Thread Dead = F.deq();
        killThread(P, std::move(Dead)); // also purges its tag
        continue;
      }
      PredIdx = Tok.Tag;
      return &T;
    }
    return nullptr;
  }
  assert(S.Preds.size() == 1 && "non-join stage with multiple predecessors");
  PredIdx = 0;
  return DrainDead(P.EdgeFifos.at({S.Preds[0], S.Id}));
}

const StageEdge *System::pickSuccessor(PipeInstance &P, const Stage &S,
                                       const Env &Vars) {
  if (S.Succs.empty())
    return nullptr;
  for (const StageEdge &E : S.Succs) {
    bool Taken = true;
    for (const GuardTerm &G : E.G) {
      Thread Scratch; // hooks need a thread; guards contain no mem reads
      WalkCtx Ctx;
      EvalHooks H = hooksFor(P, Scratch, Ctx);
      if (evalExpr(*G.Cond, Vars, *CP.AST, H).toBool() != G.Polarity) {
        Taken = false;
        break;
      }
    }
    if (Taken)
      return &E;
  }
  assert(false && "no successor edge guard held (guards must partition)");
  return nullptr;
}

System::FireResult System::walkOp(PipeInstance &P, const Stmt &S, Thread &T,
                                  WalkCtx &Ctx) {
  bool Commit = Ctx.Mode == WalkMode::Commit;
  EvalHooks H = hooksFor(P, T, Ctx);
  auto Eval = [&](const Expr &E) { return evalExpr(E, Ctx.Vars, *CP.AST, H); };

  // Resolves a lock operand to its reservation key, trying the exact mode
  // first, then the others (mode-less block/release).
  auto ResolveKey = [&](const std::string &Mem, const std::string &Text,
                        LockMode Mode) -> std::string {
    std::vector<hw::Access> Try;
    if (Mode == LockMode::Read)
      Try = {hw::Access::Read};
    else if (Mode == LockMode::Write)
      Try = {hw::Access::Write};
    else
      Try = {hw::Access::ReadWrite, hw::Access::Read, hw::Access::Write};
    for (hw::Access M : Try) {
      std::string K = resKey(Mem, Text, M);
      if (T.Res.count(K) || Ctx.ProbeReserved.count(K))
        return K;
    }
    assert(false && "lock operation without a matching reservation");
    return "";
  };

  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    Ctx.Vars[A->name()] = Eval(*A->value());
    return FireResult::Fire;
  }

  case Stmt::Kind::Lock: {
    const auto *L = cast<LockStmt>(&S);
    hw::HazardLock *Lock = lockFor(P, L->mem());
    assert(Lock && "lock op on a memory without a lock");
    std::string Text = addrKey(*L->addr());
    uint64_t Addr = Eval(*L->addr()).zext();
    hw::Access M = accessFor(L->mode());

    switch (L->op()) {
    case LockOp::Reserve:
    case LockOp::Acquire: {
      std::string Key = resKey(L->mem(), Text, M);
      if (!Commit) {
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        if (!Lock->canReserveP(Probe, Addr, M)) {
          ++Stats.StallLock;
          return FireResult::Stall;
        }
        if (L->op() == LockOp::Acquire && !Lock->readyNowP(Probe, Addr, M)) {
          ++Stats.StallLock;
          return FireResult::Stall;
        }
        Ctx.ProbeReserved[Key] = {Lock, Addr, M};
        Probe.Reserved.emplace_back(Addr, M);
        return FireResult::Fire;
      }
      hw::ResId R = Lock->reserve(Addr, M);
      T.Res[Key] = R;
      T.ResInfo[R] = {L->mem(), Key, Addr, M, false, 0};
      return FireResult::Fire;
    }
    case LockOp::Block: {
      std::string Key = ResolveKey(L->mem(), Text, L->mode());
      if (!Commit) {
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        auto It = T.Res.find(Key);
        bool Ready;
        if (It != T.Res.end()) {
          Ready = Lock->readyP(Probe, It->second);
        } else {
          // Reserved earlier in this same stage: probe combinationally.
          // Its own entry must not count against itself.
          auto PR = Ctx.ProbeReserved.at(Key);
          hw::LockProbe Minus = Probe;
          for (auto RIt = Minus.Reserved.begin();
               RIt != Minus.Reserved.end(); ++RIt) {
            if (RIt->first == std::get<1>(PR) &&
                RIt->second == std::get<2>(PR)) {
              Minus.Reserved.erase(RIt);
              break;
            }
          }
          Ready = Lock->readyNowP(Minus, std::get<1>(PR), std::get<2>(PR));
        }
        if (!Ready) {
          ++Stats.StallLock;
          return FireResult::Stall;
        }
      }
      return FireResult::Fire;
    }
    case LockOp::Release: {
      if (!Commit) {
        std::string Key = ResolveKey(L->mem(), Text, L->mode());
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        auto It = T.Res.find(Key);
        if (It != T.Res.end()) {
          Probe.Released.push_back(It->second);
        } else {
          // Releasing a same-stage probe reservation: cancel it out.
          auto PR = Ctx.ProbeReserved.at(Key);
          for (auto RIt = Probe.Reserved.begin();
               RIt != Probe.Reserved.end(); ++RIt) {
            if (RIt->first == std::get<1>(PR) &&
                RIt->second == std::get<2>(PR)) {
              Probe.Reserved.erase(RIt);
              break;
            }
          }
          Ctx.ProbeReserved.erase(Key);
        }
        return FireResult::Fire;
      }
      std::string Key = ResolveKey(L->mem(), Text, L->mode());
      auto It = T.Res.find(Key);
      assert(It != T.Res.end() && "release without a live reservation");
      hw::ResId R = It->second;
      ResRec Rec = T.ResInfo.at(R);
      Lock->release(R);
      if (Rec.Mode != hw::Access::Read && Rec.Written)
        recordCommit(P, Rec.Mem, Rec.Addr, Rec.WrittenVal, T);
      T.Res.erase(It);
      T.ResInfo.erase(R);
      return FireResult::Fire;
    }
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::MemWrite: {
    const auto *W = cast<MemWriteStmt>(&S);
    if (!Commit) {
      // Evaluate for side-effect-free env consistency only.
      Eval(*W->addr());
      Eval(*W->value());
      return FireResult::Fire;
    }
    uint64_t Addr = Eval(*W->addr()).zext();
    Bits V = Eval(*W->value());
    hw::HazardLock *Lock = lockFor(P, W->mem());
    if (!Lock) {
      P.Mems.at(W->mem())->write(Addr, V);
      recordCommit(P, W->mem(), Addr, V.zext(), T);
      return FireResult::Fire;
    }
    std::string Text = addrKey(*W->addr());
    std::string Key;
    for (hw::Access M : {hw::Access::Write, hw::Access::ReadWrite}) {
      std::string K = resKey(W->mem(), Text, M);
      if (T.Res.count(K)) {
        Key = K;
        break;
      }
    }
    assert(!Key.empty() && "write to a locked memory without a write lock");
    hw::ResId R = T.Res.at(Key);
    Lock->write(R, V);
    ResRec &Rec = T.ResInfo.at(R);
    Rec.Written = true;
    Rec.WrittenVal = V.zext();
    Rec.Addr = Addr;
    return FireResult::Fire;
  }

  case Stmt::Kind::SyncRead: {
    const auto *Rd = cast<SyncReadStmt>(&S);
    uint64_t Addr = Eval(*Rd->addr()).zext();
    if (!Commit)
      return FireResult::Fire;
    hw::HazardLock *Lock = lockFor(P, Rd->mem());
    Bits V;
    if (Lock) {
      std::string Text = addrKey(*Rd->addr());
      std::string Key;
      for (hw::Access M : {hw::Access::Read, hw::Access::ReadWrite}) {
        std::string K = resKey(Rd->mem(), Text, M);
        if (T.Res.count(K)) {
          Key = K;
          break;
        }
      }
      assert(!Key.empty() && "sync read of locked memory without a lock");
      V = Lock->read(T.Res.at(Key));
    } else {
      V = P.Mems.at(Rd->mem())->read(Addr);
    }
    unsigned Latency = 1;
    auto LIt = Cfg.MemLatency.find(P.CP->Decl->Name + "." + Rd->mem());
    if (LIt != Cfg.MemLatency.end())
      Latency = LIt->second;
    Deliveries.push_back({Stats.Cycles + (Latency - 1), P.CP->Decl->Name,
                          T.Tid, Rd->name(), V});
    ++T.PendingResp;
    return FireResult::Fire;
  }

  case Stmt::Kind::PipeCall: {
    const auto *C = cast<PipeCallStmt>(&S);
    bool Recursive = C->pipe() == P.CP->Decl->Name;
    PipeInstance &Callee = pipe(C->pipe());

    if (!Commit) {
      if (C->isSpec() && !P.Spec.canAlloc()) {
        ++Stats.StallSpec;
        return FireResult::Stall;
      }
      unsigned Pending = pendingEnqCount(Callee, /*ToEntry=*/true, {});
      if (Callee.Entry.size() + Pending >= Callee.Entry.capacity()) {
        ++Stats.StallBackpressure;
        return FireResult::Stall;
      }
      for (const ExprPtr &A : C->args())
        Eval(*A);
      return FireResult::Fire;
    }

    Thread Child;
    Child.Tid = NextTid++;
    const PipeDecl *CalleeDecl = Callee.CP->Decl;
    std::vector<Bits> ArgV;
    for (unsigned I = 0, N = C->args().size(); I != N; ++I) {
      Bits V = Eval(*C->args()[I]);
      Child.Vars[CalleeDecl->Params[I].Name] = V;
      ArgV.push_back(V);
    }
    Child.Trace.Args = ArgV;
    if (C->isSpec()) {
      hw::SpecId Sid = P.Spec.alloc(ArgV[0]);
      Child.MySpec = Sid;
      T.Handles[C->resultName()] = Sid;
      ++T.UnresolvedSpec;
    } else if (!Recursive && C->hasResult()) {
      Child.HasCaller = true;
      Child.CallerPipe = P.CP->Decl->Name;
      Child.CallerTid = T.Tid;
      Child.CallerVar = C->resultName();
      ++T.PendingResp;
    }
    PendingEnqs.push_back({&Callee, /*ToEntry=*/true, {}, std::move(Child)});
    return FireResult::Fire;
  }

  case Stmt::Kind::Output: {
    const auto *O = cast<OutputStmt>(&S);
    if (!Commit) {
      Eval(*O->value());
      return FireResult::Fire;
    }
    Bits V = Eval(*O->value());
    T.Trace.Output = V;
    if (T.HasCaller)
      Deliveries.push_back(
          {Stats.Cycles, T.CallerPipe, T.CallerTid, T.CallerVar, V});
    return FireResult::Fire;
  }

  case Stmt::Kind::SpecCheck: {
    const auto *C = cast<SpecCheckStmt>(&S);
    if (T.MySpec == 0)
      return FireResult::Fire;
    hw::SpecStatus St = P.Spec.status(T.MySpec);
    if (St == hw::SpecStatus::Mispredicted)
      return FireResult::Kill;
    if (St == hw::SpecStatus::Pending)
      return C->isBlocking() ? (++Stats.StallSpec, FireResult::Stall)
                             : FireResult::Fire;
    // Correct: the thread learns it is non-speculative; free the entry.
    if (Commit) {
      P.Spec.free(T.MySpec);
      T.MySpec = 0;
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::Verify: {
    const auto *V = cast<VerifyStmt>(&S);
    if (!Commit) {
      // A mispredict respawns a corrected thread: require entry space.
      unsigned Pending = pendingEnqCount(P, /*ToEntry=*/true, {});
      if (P.Entry.size() + Pending >= P.Entry.capacity()) {
        ++Stats.StallBackpressure;
        return FireResult::Stall;
      }
      Eval(*V->actual());
      return FireResult::Fire;
    }
    Bits Actual = Eval(*V->actual());
    auto HIt = T.Handles.find(V->handle());
    assert(HIt != T.Handles.end() && "verify of an unspawned speculation");
    hw::SpecId Sid = HIt->second;
    bool Correct = P.Spec.verify(Sid, Actual);
    T.Handles.erase(HIt);
    assert(T.UnresolvedSpec > 0);
    --T.UnresolvedSpec;
    if (Correct) {
      for (auto &[Mem, Ck] : T.Ckpts)
        lockFor(P, Mem)->commitCheckpoint(Ck);
      T.Ckpts.clear();
    } else {
      for (auto &[Mem, Ck] : T.Ckpts) {
        lockFor(P, Mem)->rollback(Ck);
        lockFor(P, Mem)->commitCheckpoint(Ck);
      }
      T.Ckpts.clear();
      // Respawn the corrected, non-speculative thread.
      Thread Child;
      Child.Tid = NextTid++;
      Child.Vars[P.CP->Decl->Params[0].Name] = Actual;
      Child.Trace.Args = {Actual};
      PendingEnqs.push_back({&P, /*ToEntry=*/true, {}, std::move(Child)});
    }
    if (const ExternCallExpr *U = V->predictorUpdate()) {
      std::vector<Bits> Args;
      for (const ExprPtr &A : U->args())
        Args.push_back(Eval(*A));
      auto It = Externs.find(U->module());
      assert(It != Externs.end() && "unbound extern module");
      It->second->invoke(U->method(), Args);
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::Update: {
    const auto *U = cast<UpdateStmt>(&S);
    if (!Commit) {
      if (!P.Spec.canAlloc()) {
        ++Stats.StallSpec;
        return FireResult::Stall;
      }
      unsigned Pending = pendingEnqCount(P, /*ToEntry=*/true, {});
      if (P.Entry.size() + Pending >= P.Entry.capacity()) {
        ++Stats.StallBackpressure;
        return FireResult::Stall;
      }
      Eval(*U->newPred());
      return FireResult::Fire;
    }
    Bits NewPred = Eval(*U->newPred());
    auto HIt = T.Handles.find(U->handle());
    assert(HIt != T.Handles.end() && "update of an unspawned speculation");
    auto NewSid = P.Spec.update(HIt->second, NewPred);
    if (!NewSid)
      return FireResult::Fire; // prediction unchanged
    HIt->second = *NewSid;
    // Undo the old child's speculative lock state but keep the
    // checkpoints alive for the re-steered child.
    for (auto &[Mem, Ck] : T.Ckpts)
      lockFor(P, Mem)->rollback(Ck);
    Thread Child;
    Child.Tid = NextTid++;
    Child.MySpec = *NewSid;
    Child.Vars[P.CP->Decl->Params[0].Name] = NewPred;
    Child.Trace.Args = {NewPred};
    PendingEnqs.push_back({&P, /*ToEntry=*/true, {}, std::move(Child)});
    return FireResult::Fire;
  }

  default:
    assert(false && "statement kind cannot appear as a staged op");
    return FireResult::Fire;
  }
}

System::FireResult System::walkStage(PipeInstance &P, const Stage &S,
                                     Thread &T, WalkCtx &Ctx) {
  EvalHooks H = hooksFor(P, T, Ctx);
  for (const StagedOp &Op : S.Ops) {
    if (!evalGuard(Op.G, Ctx.Vars, *CP.AST, H))
      continue;
    FireResult R = walkOp(P, *Op.S, T, Ctx);
    if (R != FireResult::Fire)
      return R;
  }
  return FireResult::Fire;
}

void System::recordCommit(PipeInstance &P, const std::string &Mem,
                          uint64_t Addr, uint64_t Val, Thread &T) {
  T.Trace.Writes.emplace_back(Mem, Addr, Val);
  if (HaltWatch && std::get<0>(*HaltWatch) == P.CP->Decl->Name &&
      std::get<1>(*HaltWatch) == Mem && std::get<2>(*HaltWatch) == Addr)
    Halted = true;
}

void System::killThread(PipeInstance &P, Thread &&T) {
  ++Stats.Killed[P.CP->Decl->Name];
  for (LockRegion &Reg : P.Regions)
    if (Reg.OccupantTid == T.Tid)
      Reg.OccupantTid.reset();
  if (T.MySpec != 0)
    P.Spec.free(T.MySpec);
  // Remove the thread's coordination tags (it will never reach the joins).
  for (auto It = PendingTags.begin(); It != PendingTags.end();)
    It = (It->P == &P && It->Tid == T.Tid) ? PendingTags.erase(It)
                                           : std::next(It);
  for (auto &[Join, Tags] : P.TagQueues)
    Tags.erase(std::remove_if(Tags.begin(), Tags.end(),
                              [&](const TagTok &Tok) {
                                return Tok.Tid == T.Tid;
                              }),
               Tags.end());
}

void System::retireThread(PipeInstance &P, Thread &&T) {
  assert(T.Res.empty() && "thread retired holding lock reservations");
  assert(T.PendingResp == 0 && "thread retired with outstanding responses");
  assert(T.Handles.empty() && "thread retired with unresolved speculation");
  ++Stats.Retired[P.CP->Decl->Name];
  P.Retired.push_back(std::move(T.Trace));
}

System::Thread System::dequeueInput(PipeInstance &P, const Stage &S,
                                    unsigned PredIdx) {
  if (S.Id == P.CP->Graph.Entry)
    return P.Entry.deq();
  if (S.isJoin()) {
    P.TagQueues[S.Id].pop_front();
    return P.EdgeFifos.at({S.Preds[PredIdx], S.Id}).deq();
  }
  return P.EdgeFifos.at({S.Preds[0], S.Id}).deq();
}

void System::tryFireStage(PipeInstance &P, const Stage &S) {
  unsigned PredIdx = 0;
  Thread *T = stageInput(P, S, PredIdx);
  if (!T)
    return;

  if (T->PendingResp > 0) {
    ++Stats.StallResponse;
    return;
  }

  // Lock-region serialization: a thread may not enter a multi-stage
  // reservation region while another thread occupies it.
  for (const LockRegion &Reg : P.Regions) {
    if (S.Id == Reg.First && Reg.OccupantTid && *Reg.OccupantTid != T->Tid) {
      ++Stats.StallLock;
      return;
    }
  }

  // Probe pass: pure except for harmless lock-read bookkeeping.
  WalkCtx Probe;
  Probe.Mode = WalkMode::Probe;
  Probe.Vars = T->Vars;
  FireResult R = walkStage(P, S, *T, Probe);
  if (R == FireResult::Stall) {
    if (traceOn())
      std::fprintf(stderr, "  stall %s/%s tid=%llu (lock/spec/resp)\n",
                   P.CP->Decl->Name.c_str(), S.Name.c_str(),
                   (unsigned long long)T->Tid);
    return;
  }

  if (R == FireResult::Kill) {
    Thread Dead = dequeueInput(P, S, PredIdx);
    killThread(P, std::move(Dead));
    return;
  }

  // Back-pressure checks with the probe environment.
  const StageEdge *Succ = pickSuccessor(P, S, Probe.Vars);
  if (Succ) {
    auto Key = std::make_pair(Succ->From, Succ->To);
    auto &F = P.EdgeFifos.at(Key);
    if (F.size() + pendingEnqCount(P, false, Key) >= F.capacity()) {
      ++Stats.StallBackpressure;
      if (traceOn())
        std::fprintf(stderr, "  bp %s/%s tid=%llu edge %u->%u\n",
                     P.CP->Decl->Name.c_str(), S.Name.c_str(),
                     (unsigned long long)T->Tid, Succ->From, Succ->To);
      return;
    }
  }
  for (const Stage &J : P.CP->Graph.Stages) {
    if (J.ForkStage != S.Id)
      continue;
    auto &Q = P.TagQueues[J.Id];
    unsigned Pending = 0;
    for (const PendingTag &PT : PendingTags)
      if (PT.P == &P && PT.Join == J.Id)
        ++Pending;
    if (Q.size() + Pending >= Cfg.TagDepth) {
      ++Stats.StallBackpressure;
      return;
    }
  }

  // Commit pass.
  Thread Live = dequeueInput(P, S, PredIdx);
  WalkCtx Commit;
  Commit.Mode = WalkMode::Commit;
  Commit.Vars = std::move(Live.Vars);
  FireResult CR = walkStage(P, S, Live, Commit);
  assert(CR == FireResult::Fire && "probe and commit disagreed");
  (void)CR;
  Live.Vars = std::move(Commit.Vars);

  // Compiler-inserted checkpoints after the thread's final reservations.
  for (const auto &[Mem, CkStage] : P.CP->Spec.CheckpointStage) {
    if (CkStage != S.Id || Live.UnresolvedSpec == 0 || Live.Ckpts.count(Mem))
      continue;
    if (hw::HazardLock *L = lockFor(P, Mem))
      Live.Ckpts[Mem] = L->checkpoint();
  }

  // Coordination tags for joins forked here.
  EvalHooks H = hooksFor(P, Live, Commit);
  for (const Stage &J : P.CP->Graph.Stages) {
    if (J.ForkStage != S.Id)
      continue;
    for (const TagRule &TR : J.TagRules) {
      if (evalGuard(TR.G, Live.Vars, *CP.AST, H)) {
        PendingTags.push_back({&P, J.Id, TR.PredIndex, Live.Tid});
        break;
      }
    }
  }

  for (LockRegion &Reg : P.Regions) {
    if (S.Id == Reg.First)
      Reg.OccupantTid = Live.Tid;
    if (S.Id == Reg.Last && Reg.OccupantTid == Live.Tid)
      Reg.OccupantTid.reset();
  }

  ++Stats.StageFires;
  FiredThisCycle = true;
  if (traceOn())
    std::fprintf(stderr, "  fire %s/%s tid=%llu\n",
                 P.CP->Decl->Name.c_str(), S.Name.c_str(),
                 (unsigned long long)Live.Tid);

  if (Succ) {
    PendingEnqs.push_back(
        {&P, false, {Succ->From, Succ->To}, std::move(Live)});
  } else {
    retireThread(P, std::move(Live));
  }
}

//===----------------------------------------------------------------------===//
// Clock loop
//===----------------------------------------------------------------------===//

System::Thread *System::findThread(PipeInstance &P, uint64_t Tid) {
  for (Thread &T : P.Entry)
    if (T.Tid == Tid)
      return &T;
  for (auto &[Key, F] : P.EdgeFifos)
    for (Thread &T : F)
      if (T.Tid == Tid)
        return &T;
  for (PendingEnq &E : PendingEnqs)
    if (E.P == &P && E.T.Tid == Tid)
      return &E.T;
  return nullptr;
}

void System::applyEndOfCycle() {
  for (PendingEnq &E : PendingEnqs) {
    if (E.ToEntry)
      E.P->Entry.enq(std::move(E.T));
    else
      E.P->EdgeFifos.at(E.Edge).enq(std::move(E.T));
  }
  PendingEnqs.clear();
  for (PendingTag &T : PendingTags)
    T.P->TagQueues[T.Join].push_back({T.Tag, T.Tid});
  PendingTags.clear();

  for (auto It = Deliveries.begin(); It != Deliveries.end();) {
    if (It->DueCycle > Stats.Cycles) {
      ++It;
      continue;
    }
    PipeInstance &P = pipe(It->Pipe);
    if (Thread *T = findThread(P, It->Tid)) {
      T->Vars[It->Var] = It->Value;
      assert(T->PendingResp > 0);
      --T->PendingResp;
    }
    // else: the requester was squashed; drop the orphan response.
    It = Deliveries.erase(It);
    FiredThisCycle = true;
  }
}

void System::cycle() {
  assert(LocksBuilt && "call start() before cycling");
  FiredThisCycle = false;
  if (traceOn())
    std::fprintf(stderr, "-- cycle %llu --\n",
                 (unsigned long long)Stats.Cycles);
  for (auto &[Name, PI] : Pipes) {
    const StageGraph &G = PI->CP->Graph;
    for (unsigned Id = G.Stages.size(); Id-- > 0;)
      tryFireStage(*PI, G.Stages[Id]);
  }
  applyEndOfCycle();
  ++Stats.Cycles;
}

uint64_t System::run(uint64_t MaxCycles) {
  uint64_t Start = Stats.Cycles;
  uint64_t IdleStreak = 0;
  while (Stats.Cycles - Start < MaxCycles && !Halted) {
    cycle();
    if (FiredThisCycle) {
      IdleStreak = 0;
      continue;
    }
    // Nothing fired: either the system drained or it deadlocked.
    bool InFlight = !Deliveries.empty() || !PendingEnqs.empty();
    for (auto &[Name, PI] : Pipes) {
      if (!PI->Entry.empty())
        InFlight = true;
      for (auto &[K, F] : PI->EdgeFifos)
        if (!F.empty())
          InFlight = true;
    }
    if (!InFlight)
      break; // drained
    if (++IdleStreak > 8) {
      Stats.Deadlocked = true;
      break;
    }
  }
  return Stats.Cycles - Start;
}
