//===- System.cpp - Elaborated pipelined circuit executor ------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/System.h"

#include "backend/Fuse.h"
#include "hw/BypassQueue.h"
#include "hw/QueueLock.h"
#include "hw/RenameLock.h"
#include "passes/PathCondition.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

static bool traceOn() {
  static bool On = std::getenv("PDL_TRACE") != nullptr;
  return On;
}

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::backend;
using obs::StallCause;

namespace {

char modeChar(hw::Access M) {
  switch (M) {
  case hw::Access::Read:
    return 'R';
  case hw::Access::Write:
    return 'W';
  case hw::Access::ReadWrite:
    return 'X';
  }
  return '?';
}

hw::Access accessFor(LockMode M) {
  switch (M) {
  case LockMode::Read:
    return hw::Access::Read;
  case LockMode::Write:
    return hw::Access::Write;
  case LockMode::None:
    return hw::Access::ReadWrite;
  }
  return hw::Access::ReadWrite;
}

std::string resKey(const std::string &Mem, const std::string &AddrText,
                   hw::Access M) {
  return Mem + "#" + AddrText + "#" + modeChar(M);
}

} // namespace

System::System(const CompiledProgram &CP, ElabConfig Cfg)
    : CP(CP), Cfg(std::move(Cfg)) {
  assert(CP.ok() && "elaborating a program with errors");
  for (const auto &[Name, Pipe] : CP.Pipes) {
    auto PI = std::make_unique<PipeInstance>(this->Cfg.EntryDepth,
                                             this->Cfg.SpecCapacity);
    PI->CP = &Pipe;
    PI->Name = Name;
    for (const MemDecl &M : Pipe.Decl->Mems) {
      PI->Mems.emplace(M.Name, std::make_unique<hw::Memory>(
                                   M.Name, M.ElemType.width(), M.AddrWidth,
                                   M.IsSync));
      PI->MemIdx.emplace(M.Name, PI->MemNames.size());
      PI->MemNames.push_back(M.Name);
      PI->MemByIdx.push_back(PI->Mems.at(M.Name).get());
    }
    PI->LockByIdx.assign(PI->MemNames.size(), nullptr);
    buildMemModels(*PI);
    for (const Stage &S : Pipe.Graph.Stages) {
      for (const StageEdge &E : S.Succs)
        PI->EdgeFifos.emplace(std::make_pair(E.From, E.To),
                              hw::Fifo<Thread>(this->Cfg.FifoDepth));
    }
    // Multi-stage reservation regions are serialized (Section 4.1: "only
    // a single thread may execute inside a lock region at a time").
    for (const auto &[Mem, Stages] : Pipe.Locks.RegionStages) {
      if (Stages.size() < 2)
        continue; // single-stage regions are atomic by construction
      LockRegion R;
      R.Mem = Mem;
      R.First = *Stages.begin();
      R.Last = *Stages.rbegin();
      PI->Regions.push_back(R);
    }
    Pipes.emplace(Name, std::move(PI));
  }
  for (auto &[Name, PI] : Pipes) {
    PI->Index = static_cast<unsigned>(PipeSeq.size());
    PipeSeq.push_back(PI.get());
    obs::TraceMeta::PipeMeta PM;
    PM.Name = Name;
    for (const Stage &S : PI->CP->Graph.Stages)
      PM.Stages.push_back(S.Name);
    PM.Mems = PI->MemNames;
    for (const auto &[Edge, F] : PI->EdgeFifos) {
      (void)F;
      PM.Edges.push_back(Edge);
    }
    Meta.Pipes.push_back(std::move(PM));
  }
  // Resolve the per-cycle dense tables: per-stage FIFO views, fork->join
  // lists, tag queues, and the global firing order (pipes in handle order,
  // stages deepest-first). EdgeFifos map nodes and Stage storage are both
  // address-stable for the System's lifetime.
  for (PipeInstance *PI : PipeSeq) {
    const StageGraph &G = PI->CP->Graph;
    PI->TagQueues.resize(G.Stages.size());
    PI->PredFifos.resize(G.Stages.size());
    PI->SuccFifos.resize(G.Stages.size());
    PI->ForkJoins.resize(G.Stages.size());
    for (const Stage &S : G.Stages) {
      if (S.Id != G.Entry)
        for (unsigned PredId : S.Preds)
          PI->PredFifos[S.Id].push_back(&PI->EdgeFifos.at({PredId, S.Id}));
      for (const StageEdge &E : S.Succs)
        PI->SuccFifos[S.Id].push_back(&PI->EdgeFifos.at({E.From, E.To}));
      if (S.isJoin())
        PI->ForkJoins[S.ForkStage].push_back(&S);
    }
    for (unsigned Id = G.Stages.size(); Id-- > 0;)
      FireOrder.emplace_back(PI, &G.Stages[Id]);
  }
  // Bind the compiled bytecode circuit: reuse a shared one when supplied
  // (BatchRunner compiles once per core — pre-fused when the mode asks for
  // it, see cores::Core), otherwise compile (and, in fused mode, fuse) now.
  TreeMode = this->Cfg.EvalTree || std::getenv("PDL_EVAL_TREE") != nullptr;
  NativeMode =
      !TreeMode && (this->Cfg.EvalNative || std::getenv("PDL_EVAL_NATIVE"));
  FusedMode = !TreeMode && !NativeMode &&
              (this->Cfg.EvalFused || std::getenv("PDL_EVAL_FUSED"));
  if (this->Cfg.CompiledIR) {
    IR = this->Cfg.CompiledIR;
  } else {
    IR = bc::compileModule(CP);
    // The native tier emits from the fused lowering; a self-compiled
    // System has no TV certificate to offer native::attachModule, so under
    // NativeMode it runs that same fused lowering interpreted (the
    // documented fallback — cores::Core and pdlc are the attach points).
    if (FusedMode || NativeMode)
      IR = bc::fuseModule(*IR);
  }
  unsigned MaxFrame = 0;
  for (PipeInstance *PI : PipeSeq) {
    PI->Prog = IR->pipe(PI->Name);
    assert(PI->Prog && "pipe missing from compiled circuit");
    MaxFrame = std::max(MaxFrame, PI->Prog->FrameSize);
  }
  ProbeScratch.resize(MaxFrame);
  Dispatch.Sys = this;
  for (obs::TraceSink *S : this->Cfg.Sinks)
    if (S)
      attachSink(*S);
}

System::~System() { Bus.finish(); }

void System::finishTrace() { Bus.finish(); }

//===----------------------------------------------------------------------===//
// Handle resolution and accessors
//===----------------------------------------------------------------------===//

System::PipeInstance &System::pipe(const std::string &Name) {
  auto It = Pipes.find(Name);
  assert(It != Pipes.end() && "unknown pipe");
  return *It->second;
}

const System::PipeInstance &System::pipeFor(PipeHandle P) const {
  assert(P.valid() && P.Idx < PipeSeq.size() && "invalid pipe handle");
  return *PipeSeq[P.Idx];
}

PipeHandle System::pipeHandle(const std::string &Pipe) const {
  auto It = Pipes.find(Pipe);
  assert(It != Pipes.end() && "unknown pipe");
  return PipeHandle(It->second->Index);
}

MemHandle System::memHandle(const std::string &Pipe,
                            const std::string &Mem) const {
  return memHandle(pipeHandle(Pipe), Mem);
}

MemHandle System::memHandle(PipeHandle P, const std::string &Mem) const {
  const PipeInstance &PI = pipeFor(P);
  auto It = PI.MemIdx.find(Mem);
  assert(It != PI.MemIdx.end() && "unknown memory");
  return MemHandle(P.Idx, It->second);
}

const std::string &System::pipeName(PipeHandle P) const {
  return pipeFor(P).Name;
}

const std::string &System::memName(MemHandle M) const {
  const PipeInstance &PI = pipeFor(M.pipe());
  assert(M.Mem < PI.MemNames.size() && "invalid memory handle");
  return PI.MemNames[M.Mem];
}

hw::Memory &System::memory(MemHandle M) {
  const PipeInstance &PI = pipeFor(M.pipe());
  assert(M.Mem < PI.MemByIdx.size() && "invalid memory handle");
  return *PI.MemByIdx[M.Mem];
}

hw::HazardLock &System::lock(MemHandle M) {
  const PipeInstance &PI = pipeFor(M.pipe());
  assert(M.Mem < PI.LockByIdx.size() && "invalid memory handle");
  hw::HazardLock *L = PI.LockByIdx[M.Mem];
  assert(L && "memory has no lock (or start() not called)");
  return *L;
}

void System::bindExtern(const std::string &Name, hw::ExternModule *Module) {
  Externs[Name] = Module;
}

void System::setHaltOnWrite(MemHandle M, uint64_t Addr) {
  HaltWatch = {M.Pipe, M.Mem, Addr};
}

void System::elaborateLocks() {
  if (LocksBuilt)
    return;
  LocksBuilt = true;
  for (auto &[Name, PI] : Pipes) {
    const LockAnalysis &LA = PI->CP->Locks;
    for (const MemDecl &M : PI->CP->Decl->Mems) {
      // Only memories the pipe locks get a lock instance.
      if (!LA.ReadLocked.count(M.Name) && !LA.WriteLocked.count(M.Name))
        continue;
      hw::Memory &Mem = *PI->Mems.at(M.Name);
      LockKind Kind = Cfg.DefaultLock;
      auto It = Cfg.LockChoice.find(Name + "." + M.Name);
      if (It == Cfg.LockChoice.end())
        It = Cfg.LockChoice.find(M.Name);
      if (It != Cfg.LockChoice.end())
        Kind = It->second;
      std::unique_ptr<hw::HazardLock> L;
      switch (Kind) {
      case LockKind::Queue:
        L = std::make_unique<hw::QueueLock>(Mem);
        break;
      case LockKind::Bypass:
        L = std::make_unique<hw::BypassQueueLock>(Mem);
        break;
      case LockKind::Rename:
        L = std::make_unique<hw::RenameLock>(Mem);
        break;
      }
      PI->LockByIdx[PI->MemIdx.at(M.Name)] = L.get();
      PI->Locks.emplace(M.Name, std::move(L));
    }
  }
}

hw::HazardLock *System::lockFor(PipeInstance &P, const std::string &Mem) {
  auto It = P.Locks.find(Mem);
  return It == P.Locks.end() ? nullptr : It->second.get();
}

void System::buildMemModels(PipeInstance &P) {
  P.ModelByIdx.assign(P.MemNames.size(), nullptr);
  for (unsigned I = 0, N = P.MemNames.size(); I != N; ++I) {
    // Combinational memories answer in-cycle; no hierarchy in front of them.
    if (!P.MemByIdx[I]->isSync())
      continue;
    const std::string &MemName = P.MemNames[I];
    auto CIt = Cfg.MemModels.find(P.Name + "." + MemName);
    if (CIt == Cfg.MemModels.end())
      CIt = Cfg.MemModels.find(MemName);
    std::unique_ptr<mem::MemModel> M;
    if (CIt != Cfg.MemModels.end()) {
      const mem::MemConfig &C = CIt->second;
      if (C.K == mem::MemConfig::Kind::Fixed) {
        M = std::make_unique<mem::FixedLatency>(C.FixedLat, C.SinglePorted);
      } else {
        mem::MemModel *Next = nullptr;
        if (!C.ShareTag.empty()) {
          auto &Backing = SharedBackings[C.ShareTag];
          if (!Backing)
            Backing = std::make_unique<mem::FixedLatency>(
                C.ShareLatency, /*SinglePorted=*/true);
          Next = Backing.get();
        }
        M = std::make_unique<mem::SetAssocCache>(C.Cache, Next);
      }
    } else {
      // Legacy MemLatency shim, else the paper's always-hit default.
      unsigned Latency = 1;
      auto LIt = Cfg.MemLatency.find(P.Name + "." + MemName);
      if (LIt == Cfg.MemLatency.end())
        LIt = Cfg.MemLatency.find(MemName);
      if (LIt != Cfg.MemLatency.end())
        Latency = LIt->second;
      M = std::make_unique<mem::FixedLatency>(Latency);
    }
    P.ModelByIdx[I] = M.get();
    OwnedModels.push_back(std::move(M));
  }
}

const mem::MemModel *System::memModel(MemHandle M) const {
  const PipeInstance &PI = pipeFor(M.pipe());
  assert(M.Mem < PI.ModelByIdx.size() && "invalid memory handle");
  return PI.ModelByIdx[M.Mem];
}

bool System::canAccept(PipeHandle H) {
  PipeInstance &P = *PipeSeq[H.index()];
  return P.Entry.size() + pendingEnqCount(&P.Entry) < P.Entry.capacity();
}

void System::start(PipeHandle H, std::vector<Bits> Args) {
  elaborateLocks();
  IdleStreak = 0; // fresh work: restart the no-progress countdown
  PipeInstance &P = *PipeSeq[H.index()];
  const PipeDecl *Decl = P.CP->Decl;
  assert(Args.size() == Decl->Params.size() && "argument count mismatch");
  Thread T;
  T.Tid = NextTid++;
  T.Frame = P.Prog->InitFrame;
  for (unsigned I = 0, N = Args.size(); I != N; ++I)
    T.Frame[P.Prog->ParamSlots[I]] = Args[I];
  T.Trace.Args = Args;
  emitThreadEvent(obs::Event::Kind::ThreadSpawn, P, T.Tid);
  P.Entry.enq(std::move(T));
}

Bits System::archRead(MemHandle M, uint64_t Addr) {
  PipeInstance &P = *PipeSeq[M.Pipe];
  if (hw::HazardLock *L = P.LockByIdx[M.Mem])
    return L->archRead(Addr);
  return P.MemByIdx[M.Mem]->read(Addr);
}

const std::vector<ThreadTrace> &System::trace(PipeHandle P) const {
  return pipeFor(P).Retired;
}

//===----------------------------------------------------------------------===//
// Observability
//===----------------------------------------------------------------------===//

void System::FifoTap::onEnq(const Thread &T, size_t Depth) {
  Sys->Bus.emit(obs::Event::fifo(obs::Event::Kind::FifoEnq,
                                 Sys->Stats.Cycles, Pipe, From, To, T.Tid,
                                 Depth));
}

void System::FifoTap::onDeq(const Thread &T, size_t Depth) {
  Sys->Bus.emit(obs::Event::fifo(obs::Event::Kind::FifoDeq,
                                 Sys->Stats.Cycles, Pipe, From, To, T.Tid,
                                 Depth));
}

void System::installTaps() {
  if (TapsInstalled)
    return;
  TapsInstalled = true;
  for (PipeInstance *PI : PipeSeq) {
    auto MakeTap = [&](uint16_t From, uint16_t To) {
      auto Tap = std::make_unique<FifoTap>();
      Tap->Sys = this;
      Tap->Pipe = static_cast<uint16_t>(PI->Index);
      Tap->From = From;
      Tap->To = To;
      Taps.push_back(std::move(Tap));
      return Taps.back().get();
    };
    PI->Entry.setListener(MakeTap(obs::NoEdge, obs::NoEdge));
    for (auto &[Edge, F] : PI->EdgeFifos)
      F.setListener(MakeTap(static_cast<uint16_t>(Edge.first),
                            static_cast<uint16_t>(Edge.second)));
    unsigned Idx = PI->Index;
    PI->Spec.setObserver([this, Idx](hw::SpecId Id, hw::SpecStatus St) {
      Bus.emit(obs::Event::specResolve(Stats.Cycles,
                                       static_cast<uint16_t>(Idx), Id,
                                       St == hw::SpecStatus::Correct));
    });
  }
}

void System::attachSink(obs::TraceSink &S) {
  installTaps();
  Bus.attach(&S);
  S.begin(Meta);
}

void System::emitThreadEvent(obs::Event::Kind K, PipeInstance &P,
                             uint64_t Tid) {
  if (Bus.enabled())
    Bus.emit(obs::Event::thread(K, Stats.Cycles,
                                static_cast<uint16_t>(P.Index), Tid));
}

void System::noteOutcome(PipeInstance &P, const Stage &S, StallCause C,
                         uint64_t Tid, const std::string *CauseMem) {
  // Injected DropStageOutcome: the outcome never reaches the counters or
  // the trace bus (all counters skip together, so the executor's internal
  // balance assert stays consistent; the stall-balance monitor flags the
  // missing per-cycle outcome).
  if (C != StallCause::Idle &&
      consumeFault(hw::FaultKind::DropStageOutcome, P, Tid))
    return;
  switch (C) {
  case StallCause::None:
    ++Stats.StageFires;
    ++Stats.ProbeAttempts;
    break;
  case StallCause::Idle:
    break;
  case StallCause::Kill:
    ++Stats.StageKills;
    ++Stats.ProbeAttempts;
    break;
  case StallCause::Lock:
    ++Stats.StallLock;
    ++Stats.ProbeAttempts;
    break;
  case StallCause::Spec:
    ++Stats.StallSpec;
    ++Stats.ProbeAttempts;
    break;
  case StallCause::Response:
    ++Stats.StallResponse;
    ++Stats.ProbeAttempts;
    break;
  case StallCause::Backpressure:
    ++Stats.StallBackpressure;
    ++Stats.ProbeAttempts;
    break;
  }
  if (Bus.enabled()) {
    uint16_t Mem = obs::NoMem;
    if (C == StallCause::Lock && CauseMem) {
      auto It = P.MemIdx.find(*CauseMem);
      if (It != P.MemIdx.end())
        Mem = static_cast<uint16_t>(It->second);
    }
    Bus.emit(obs::Event::stageOutcome(Stats.Cycles,
                                      static_cast<uint16_t>(P.Index),
                                      static_cast<uint16_t>(S.Id), C, Tid,
                                      Mem));
  }
  if (traceOn() && C != StallCause::Idle)
    std::fprintf(stderr, "  %s %s/%s tid=%llu\n", obs::stallCauseName(C),
                 P.Name.c_str(), S.Name.c_str(), (unsigned long long)Tid);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

const char *backend::runOutcomeName(RunOutcome O) {
  switch (O) {
  case RunOutcome::Running:
    return "running";
  case RunOutcome::Halted:
    return "halted";
  case RunOutcome::Drained:
    return "drained";
  case RunOutcome::Deadlocked:
    return "deadlocked";
  case RunOutcome::TimedOut:
    return "timed_out";
  }
  return "?";
}

void System::noteFault(PipeInstance &P, hw::FaultKind K, uint64_t Tid) {
  ++Stats.FaultsInjected;
  if (Bus.enabled())
    Bus.emit(obs::Event::fault(Stats.Cycles, static_cast<uint16_t>(P.Index),
                               static_cast<uint64_t>(K), Tid));
}

System::ArmedFault *System::armedFault(hw::FaultKind K,
                                       const PipeInstance &P) {
  for (ArmedFault &F : Faults)
    if (!F.Fired && F.Plan.Kind == K &&
        (F.Plan.Pipe.empty() || F.Plan.Pipe == P.Name))
      return &F;
  return nullptr;
}

bool System::consumeFault(hw::FaultKind K, PipeInstance &P, uint64_t Tid,
                          const std::string *Mem) {
  ArmedFault *F = armedFault(K, P);
  if (!F)
    return false;
  if (Mem && !F->Plan.Mem.empty() && F->Plan.Mem != *Mem)
    return false;
  if (--F->Countdown > 0)
    return false;
  F->Fired = true;
  noteFault(P, K, Tid);
  return true;
}

bool System::rescueSquash(PipeInstance &P, uint64_t Tid) {
  for (ArmedFault &F : Faults) {
    if (F.Plan.Kind != hw::FaultKind::SkipSquash ||
        (!F.Plan.Pipe.empty() && F.Plan.Pipe != P.Name))
      continue;
    if (F.Fired)
      return F.RescuedTid == Tid;
    if (--F.Countdown > 0)
      return false;
    F.Fired = true;
    F.RescuedTid = Tid;
    noteFault(P, hw::FaultKind::SkipSquash, Tid);
    return true;
  }
  return false;
}

void System::armFault(const hw::FaultPlan &Plan) {
  elaborateLocks();
  PipeInstance &P = pipe(Plan.Pipe);
  auto FireNote = [this, &P](hw::FaultKind K) {
    return [this, &P, K] { noteFault(P, K, 0); };
  };
  switch (Plan.Kind) {
  case hw::FaultKind::FifoDropThread:
  case hw::FaultKind::FifoDupThread:
  case hw::FaultKind::FifoCorruptPayload: {
    hw::Fifo<Thread> *F = &P.Entry;
    if (!Plan.FromStage.empty() || !Plan.ToStage.empty()) {
      unsigned From = ~0u, To = ~0u;
      for (const Stage &S : P.CP->Graph.Stages) {
        if (S.Name == Plan.FromStage)
          From = S.Id;
        if (S.Name == Plan.ToStage)
          To = S.Id;
      }
      auto It = P.EdgeFifos.find({From, To});
      assert(It != P.EdgeFifos.end() && "fault plan names an unknown edge");
      F = &It->second;
    }
    if (Plan.Kind == hw::FaultKind::FifoDropThread) {
      F->armDropNext(Plan.Nth, FireNote(Plan.Kind));
    } else if (Plan.Kind == hw::FaultKind::FifoDupThread) {
      F->armDupNext(Plan.Nth, FireNote(Plan.Kind));
    } else {
      // Resolve the variable to its frame slot once, at arm time.
      uint16_t Slot = P.Prog->slotOf(Plan.Var);
      unsigned Bit = Plan.Bit;
      F->armCorruptNext(Plan.Nth, [this, &P, Slot, Bit](Thread &T) {
        if (Slot != bc::NoSlot) {
          Bits &V = T.Frame[Slot];
          V = Bits(V.zext() ^ (uint64_t(1) << Bit), V.width());
        }
        noteFault(P, hw::FaultKind::FifoCorruptPayload, T.Tid);
      });
    }
    HwArmedPlans.push_back(Plan);
    return;
  }
  case hw::FaultKind::HwDropLockRelease: {
    hw::HazardLock *L = lockFor(P, Plan.Mem);
    assert(L && "fault plan names a memory without a lock");
    L->armDropRelease(Plan.Nth, FireNote(Plan.Kind));
    HwArmedPlans.push_back(Plan);
    return;
  }
  case hw::FaultKind::SuppressMispredict:
    P.Spec.armSuppressMispredict(Plan.Nth, FireNote(Plan.Kind));
    HwArmedPlans.push_back(Plan);
    return;
  case hw::FaultKind::SkipCascade:
    P.Spec.armSkipCascade(Plan.Nth, FireNote(Plan.Kind));
    HwArmedPlans.push_back(Plan);
    return;
  case hw::FaultKind::DropLockRelease:
  case hw::FaultKind::SkipSquash:
  case hw::FaultKind::DropMemResponse:
  case hw::FaultKind::DoubleRollback:
  case hw::FaultKind::DropStageOutcome: {
    ArmedFault F;
    F.Plan = Plan;
    F.Countdown = Plan.Nth ? Plan.Nth : 1;
    Faults.push_back(std::move(F));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Evaluation hooks
//===----------------------------------------------------------------------===//

System::MemSite &System::memSite(PipeInstance &P, const std::string &Mem) {
  assert(LocksBuilt && "memory sites resolve after lock elaboration");
  auto [It, New] = MemSiteCache.try_emplace(&Mem);
  MemSite &MS = It->second;
  if (New) {
    MS.Idx = P.MemIdx.at(Mem);
    MS.M = P.MemByIdx[MS.Idx];
    MS.L = P.LockByIdx[MS.Idx];
    MS.Model = P.ModelByIdx[MS.Idx];
  }
  return MS;
}

const std::string &System::siteResKey(const std::string &Mem,
                                      const ast::Expr &Addr, hw::Access M) {
  std::array<std::string, 3> &Keys = ResKeyCache[&Addr];
  std::string &Key = Keys[static_cast<unsigned>(M)];
  if (Key.empty())
    Key = resKey(Mem, addrKey(Addr), M);
  return Key;
}

Bits System::hookReadMem(const MemReadExpr &Site, uint64_t Addr) {
  PipeInstance &P = *CurP;
  Thread &T = *CurT;
  WalkCtx &Ctx = *CurCtx;
  MemSite &MS = memSite(P, Site.mem());
  hw::HazardLock *L = MS.L;
  if (!L)
    return MS.M->read(Addr);
  bool Probe = Ctx.Mode == WalkMode::Probe;
  for (hw::Access M : {hw::Access::Read, hw::Access::ReadWrite}) {
    const std::string &Key = siteResKey(Site.mem(), *Site.addr(), M);
    auto It = T.Res.find(Key);
    if (It != T.Res.end())
      return Probe ? L->readP(Ctx.Probes[L], It->second)
                   : L->read(It->second);
    // Reserved earlier in this stage during the probe pass: peek the
    // value a fresh reservation would see.
    if (Probe && Ctx.ProbeReserved.count(Key))
      return L->peek(Addr, M);
  }
  assert(false && "combinational read of a locked memory without an "
                  "acquired reservation");
  return Bits(0, MS.M->elemWidth());
}

Bits System::hookCallExtern(const ExternCallExpr &Site, const Bits *Args,
                            unsigned NumArgs) {
  auto It = Externs.find(Site.module());
  assert(It != Externs.end() && "unbound extern module");
  ArgScratch.assign(Args, Args + NumArgs);
  auto R = It->second->invoke(Site.method(), ArgScratch);
  assert(R && "extern value method returned nothing");
  return *R;
}

const EvalHooks &System::hooksFor(PipeInstance &P, Thread &T, WalkCtx &Ctx) {
  CurP = &P;
  CurT = &T;
  CurCtx = &Ctx;
  if (HotHooks.ReadMem)
    return HotHooks;
  // Tree-mode shims over the shared hook bodies (the bytecode interpreter
  // reaches them through the virtual BcDispatch instead).
  HotHooks.ReadMem = [this](const MemReadExpr &Site, uint64_t Addr) {
    return hookReadMem(Site, Addr);
  };
  HotHooks.CallExtern = [this](const ExternCallExpr &Site,
                               const std::vector<Bits> &Args) {
    auto It = Externs.find(Site.module());
    assert(It != Externs.end() && "unbound extern module");
    auto R = It->second->invoke(Site.method(), Args);
    assert(R && "extern value method returned nothing");
    return *R;
  };
  return HotHooks;
}

//===----------------------------------------------------------------------===//
// Per-cycle stage firing
//===----------------------------------------------------------------------===//

unsigned System::pendingEnqCount(const hw::Fifo<Thread> *F) const {
  unsigned N = 0;
  for (const PendingEnq &E : PendingEnqs)
    if (E.F == F)
      ++N;
  return N;
}

System::Thread *System::stageInput(PipeInstance &P, const Stage &S,
                                   unsigned &PredIdx) {
  auto DrainDead = [&](hw::Fifo<Thread> &F) -> Thread * {
    while (!F.empty()) {
      Thread &T = F.front();
      if (T.MySpec != 0 &&
          P.Spec.status(T.MySpec) == hw::SpecStatus::Mispredicted) {
        if (rescueSquash(P, T.Tid))
          return &T; // injected SkipSquash: the dead thread sails on
        Thread Dead = F.deq();
        killThread(P, std::move(Dead));
        continue;
      }
      return &T;
    }
    return nullptr;
  };

  if (S.Id == P.CP->Graph.Entry) {
    PredIdx = ~0u;
    return DrainDead(P.Entry);
  }
  if (S.isJoin()) {
    std::deque<TagTok> &Tags = P.TagQueues[S.Id];
    while (!Tags.empty()) {
      TagTok Tok = Tags.front();
      assert(Tok.Tag < S.Preds.size() && "bad coordination tag");
      hw::Fifo<Thread> &F = *P.PredFifos[S.Id][Tok.Tag];
      if (F.empty())
        return nullptr; // the tagged thread has not arrived yet
      Thread &T = F.front();
      assert(T.Tid == Tok.Tid && "coordination tag out of sync");
      if (T.MySpec != 0 &&
          P.Spec.status(T.MySpec) == hw::SpecStatus::Mispredicted &&
          !rescueSquash(P, T.Tid)) {
        Thread Dead = F.deq();
        killThread(P, std::move(Dead)); // also purges its tag
        continue;
      }
      PredIdx = Tok.Tag;
      return &T;
    }
    return nullptr;
  }
  assert(S.Preds.size() == 1 && "non-join stage with multiple predecessors");
  PredIdx = 0;
  return DrainDead(*P.PredFifos[S.Id][0]);
}

const StageEdge *System::pickSuccessor(PipeInstance &P, const Stage &S,
                                       WalkCtx &Ctx) {
  if (S.Succs.empty())
    return nullptr;
  if (!TreeMode) {
    const bc::StageProg &SP = P.Prog->Stages[S.Id];
    for (size_t I = 0, N = S.Succs.size(); I != N; ++I)
      if (bc::execGuard(SP.EdgeGuards[I], Ctx.Frame, Dispatch))
        return &S.Succs[I];
    assert(false && "no successor edge guard held (guards must partition)");
    return nullptr;
  }
  Thread Scratch; // hooks need a thread; guards contain no mem reads
  WalkCtx TCtx;
  const EvalHooks &H = hooksFor(P, Scratch, TCtx);
  for (const StageEdge &E : S.Succs) {
    bool Taken = true;
    for (const GuardTerm &G : E.G) {
      if (evalExpr(*G.Cond, Ctx.TreeVars, *CP.AST, H).toBool() !=
          G.Polarity) {
        Taken = false;
        break;
      }
    }
    if (Taken)
      return &E;
  }
  assert(false && "no successor edge guard held (guards must partition)");
  return nullptr;
}

void System::bindWalkFrame(PipeInstance &P, Thread &T, WalkCtx &Ctx) {
  if (Ctx.Mode == WalkMode::Commit) {
    // The commit pass mutates architectural state, so it runs in place on
    // the thread's own frame — no copy at all.
    Ctx.Frame = T.Frame.data();
  } else {
    // The probe pass must leave the thread untouched on a stall: work on
    // the reusable scratch frame. Only the named-variable prefix needs
    // copying; scratch slots are defined before use by construction.
    std::copy(T.Frame.begin(), T.Frame.begin() + P.Prog->NumVars,
              ProbeScratch.begin());
    Ctx.Frame = ProbeScratch.data();
  }
  if (TreeMode) {
    Ctx.TreeVars = Env();
    for (unsigned I = 0, N = P.Prog->NumVars; I != N; ++I)
      Ctx.TreeVars[P.Prog->SlotNames[I]] = T.Frame[I];
  }
}

void System::syncWalkFrame(PipeInstance &P, Thread &T, WalkCtx &Ctx) {
  if (!TreeMode || Ctx.Mode != WalkMode::Commit)
    return;
  for (const auto &[Name, V] : Ctx.TreeVars) {
    uint16_t Slot = P.Prog->slotOf(Name);
    assert(Slot != bc::NoSlot && "tree walk bound an uncollected variable");
    T.Frame[Slot] = V;
  }
}

System::FireResult System::walkOp(PipeInstance &P, const Stmt &S,
                                  const bc::OpProg &OP, Thread &T,
                                  WalkCtx &Ctx) {
  bool Commit = Ctx.Mode == WalkMode::Commit;
  // Operand evaluation: the compiled bytecode program on the hot path, the
  // legacy tree walker in tree mode (hooks were bound by walkStage).
  auto Eval = [&](const bc::ExprProgram *BP, const Expr &E) {
    if (!TreeMode)
      return bc::exec(*BP, Ctx.Frame, Dispatch);
    return evalExpr(E, Ctx.TreeVars, *CP.AST, HotHooks);
  };
  // Writes a named variable in the walk's working state.
  auto Store = [&](uint16_t Slot, const std::string &Name, const Bits &V) {
    if (!TreeMode)
      Ctx.Frame[Slot] = V;
    else
      Ctx.TreeVars[Name] = V;
  };

  // Records the stall cause for the probe pass's outcome attribution (one
  // cause per stall; the first failing op wins since the walk stops).
  auto Stall = [&](StallCause C, const std::string *Mem = nullptr) {
    Ctx.Cause = C;
    Ctx.CauseMem = Mem;
    return FireResult::Stall;
  };

  // Resolves a lock operand to its reservation key, trying the exact mode
  // first, then the others (mode-less block/release).
  auto ResolveKey = [&](const std::string &Mem, const ast::Expr &Addr,
                        LockMode Mode) -> const std::string & {
    static const hw::Access TryRead[] = {hw::Access::Read};
    static const hw::Access TryWrite[] = {hw::Access::Write};
    static const hw::Access TryAll[] = {hw::Access::ReadWrite,
                                        hw::Access::Read, hw::Access::Write};
    const hw::Access *Try = TryAll;
    size_t N = 3;
    if (Mode == LockMode::Read) {
      Try = TryRead;
      N = 1;
    } else if (Mode == LockMode::Write) {
      Try = TryWrite;
      N = 1;
    }
    for (size_t I = 0; I != N; ++I) {
      const std::string &K = siteResKey(Mem, Addr, Try[I]);
      if (T.Res.count(K) || Ctx.ProbeReserved.count(K))
        return K;
    }
    assert(false && "lock operation without a matching reservation");
    return siteResKey(Mem, Addr, Try[0]);
  };

  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    Store(OP.Dest, A->name(), Eval(OP.E0, *A->value()));
    return FireResult::Fire;
  }

  case Stmt::Kind::Lock: {
    const auto *L = cast<LockStmt>(&S);
    MemSite &MS = memSite(P, L->mem());
    hw::HazardLock *Lock = MS.L;
    assert(Lock && "lock op on a memory without a lock");
    uint64_t Addr = Eval(OP.E0, *L->addr()).zext();
    hw::Access M = accessFor(L->mode());

    switch (L->op()) {
    case LockOp::Reserve:
    case LockOp::Acquire: {
      const std::string &Key = siteResKey(L->mem(), *L->addr(), M);
      if (!Commit) {
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        if (!Lock->canReserveP(Probe, Addr, M))
          return Stall(StallCause::Lock, &L->mem());
        if (L->op() == LockOp::Acquire && !Lock->readyNowP(Probe, Addr, M))
          return Stall(StallCause::Lock, &L->mem());
        Ctx.ProbeReserved[Key] = {Lock, Addr, M};
        Probe.Reserved.emplace_back(Addr, M);
        return FireResult::Fire;
      }
      hw::ResId R = Lock->reserve(Addr, M);
      T.Res[Key] = R;
      T.ResInfo[R] = {L->mem(), Key, MS.Idx, Addr, M, false, 0};
      if (Bus.enabled())
        Bus.emit(obs::Event::lock(obs::Event::Kind::LockReserve,
                                  Stats.Cycles,
                                  static_cast<uint16_t>(P.Index),
                                  static_cast<uint16_t>(MS.Idx), T.Tid,
                                  Addr));
      return FireResult::Fire;
    }
    case LockOp::Block: {
      const std::string &Key = ResolveKey(L->mem(), *L->addr(), L->mode());
      if (!Commit) {
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        auto It = T.Res.find(Key);
        bool Ready;
        if (It != T.Res.end()) {
          Ready = Lock->readyP(Probe, It->second);
        } else {
          // Reserved earlier in this same stage: probe combinationally.
          // Its own entry must not count against itself.
          auto PR = Ctx.ProbeReserved.at(Key);
          hw::LockProbe Minus = Probe;
          for (auto RIt = Minus.Reserved.begin();
               RIt != Minus.Reserved.end(); ++RIt) {
            if (RIt->first == std::get<1>(PR) &&
                RIt->second == std::get<2>(PR)) {
              Minus.Reserved.erase(RIt);
              break;
            }
          }
          Ready = Lock->readyNowP(Minus, std::get<1>(PR), std::get<2>(PR));
        }
        if (!Ready)
          return Stall(StallCause::Lock, &L->mem());
      }
      return FireResult::Fire;
    }
    case LockOp::Release: {
      if (!Commit) {
        const std::string &Key = ResolveKey(L->mem(), *L->addr(), L->mode());
        hw::LockProbe &Probe = Ctx.Probes[Lock];
        auto It = T.Res.find(Key);
        if (It != T.Res.end()) {
          Probe.Released.push_back(It->second);
        } else {
          // Releasing a same-stage probe reservation: cancel it out.
          auto PR = Ctx.ProbeReserved.at(Key);
          for (auto RIt = Probe.Reserved.begin();
               RIt != Probe.Reserved.end(); ++RIt) {
            if (RIt->first == std::get<1>(PR) &&
                RIt->second == std::get<2>(PR)) {
              Probe.Reserved.erase(RIt);
              break;
            }
          }
          Ctx.ProbeReserved.erase(Key);
        }
        return FireResult::Fire;
      }
      const std::string &Key = ResolveKey(L->mem(), *L->addr(), L->mode());
      auto It = T.Res.find(Key);
      assert(It != T.Res.end() && "release without a live reservation");
      hw::ResId R = It->second;
      ResRec Rec = T.ResInfo.at(R);
      if (consumeFault(hw::FaultKind::DropLockRelease, P, T.Tid, &Rec.Mem)) {
        // Injected fault: the release reaches the lock (the datapath stays
        // live, so probe and commit keep agreeing) but the completion is
        // lost on the way to the trace bus. The lock-discipline monitor
        // flags the unbalanced reserve when the thread retires.
        Lock->release(R);
        if (Rec.Mode != hw::Access::Read && Rec.Written)
          recordCommit(P, Rec.Mem, Rec.MemI, Rec.Addr, Rec.WrittenVal, T);
        T.Res.erase(It);
        T.ResInfo.erase(R);
        return FireResult::Fire;
      }
      Lock->release(R);
      if (Bus.enabled())
        Bus.emit(obs::Event::lock(obs::Event::Kind::LockRelease,
                                  Stats.Cycles,
                                  static_cast<uint16_t>(P.Index),
                                  static_cast<uint16_t>(Rec.MemI), T.Tid,
                                  Rec.Addr));
      if (Rec.Mode != hw::Access::Read && Rec.Written)
        recordCommit(P, Rec.Mem, Rec.MemI, Rec.Addr, Rec.WrittenVal, T);
      T.Res.erase(It);
      T.ResInfo.erase(R);
      return FireResult::Fire;
    }
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::MemWrite: {
    const auto *W = cast<MemWriteStmt>(&S);
    MemSite &MS = memSite(P, W->mem());
    unsigned MemI = MS.Idx;
    mem::MemModel *Model = MS.Model;
    if (!Commit) {
      uint64_t Addr = Eval(OP.E0, *W->addr()).zext();
      Eval(OP.E1, *W->value()); // hook-sequence consistency only
      if (Model && !Model->canAcceptWrite(Addr, Stats.Cycles)) {
        if (Bus.enabled())
          Bus.emit(obs::Event::memAccess(
              obs::Event::Kind::MemBackpressure, Stats.Cycles,
              static_cast<uint16_t>(P.Index), static_cast<uint16_t>(MemI),
              T.Tid, Addr));
        return Stall(StallCause::Backpressure, &W->mem());
      }
      return FireResult::Fire;
    }
    uint64_t Addr = Eval(OP.E0, *W->addr()).zext();
    Bits V = Eval(OP.E1, *W->value());
    // Stores are posted: the pipeline never waits on the returned latency,
    // but the model's tags/LRU/miss queue advance and the outcome is traced.
    if (Model) {
      mem::Access A = Model->write(Addr, Stats.Cycles);
      if (A.Out != mem::Outcome::Uncached && Bus.enabled())
        Bus.emit(obs::Event::memAccess(A.Out == mem::Outcome::Hit
                                           ? obs::Event::Kind::MemHit
                                           : obs::Event::Kind::MemMiss,
                                       Stats.Cycles,
                                       static_cast<uint16_t>(P.Index),
                                       static_cast<uint16_t>(MemI), T.Tid,
                                       Addr));
    }
    hw::HazardLock *Lock = MS.L;
    if (!Lock) {
      MS.M->write(Addr, V);
      recordCommit(P, W->mem(), MemI, Addr, V.zext(), T);
      return FireResult::Fire;
    }
    const std::string *Key = nullptr;
    for (hw::Access M : {hw::Access::Write, hw::Access::ReadWrite}) {
      const std::string &K = siteResKey(W->mem(), *W->addr(), M);
      if (T.Res.count(K)) {
        Key = &K;
        break;
      }
    }
    assert(Key && "write to a locked memory without a write lock");
    hw::ResId R = T.Res.at(*Key);
    Lock->write(R, V);
    ResRec &Rec = T.ResInfo.at(R);
    Rec.Written = true;
    Rec.WrittenVal = V.zext();
    Rec.Addr = Addr;
    return FireResult::Fire;
  }

  case Stmt::Kind::SyncRead: {
    const auto *Rd = cast<SyncReadStmt>(&S);
    uint64_t Addr = Eval(OP.E0, *Rd->addr()).zext();
    MemSite &MS = memSite(P, Rd->mem());
    unsigned MemI = MS.Idx;
    mem::MemModel *Model = MS.Model;
    if (!Commit) {
      // The hierarchy may refuse the request (miss queue full): the stage
      // stalls on backpressure and the memory is named in a dedicated event
      // so per-memory attribution survives the shared Backpressure column.
      if (Model && !Model->canAcceptRead(Addr, Stats.Cycles)) {
        if (Bus.enabled())
          Bus.emit(obs::Event::memAccess(
              obs::Event::Kind::MemBackpressure, Stats.Cycles,
              static_cast<uint16_t>(P.Index), static_cast<uint16_t>(MemI),
              T.Tid, Addr));
        return Stall(StallCause::Backpressure, &Rd->mem());
      }
      return FireResult::Fire;
    }
    hw::HazardLock *Lock = MS.L;
    Bits V;
    if (Lock) {
      const std::string *Key = nullptr;
      for (hw::Access M : {hw::Access::Read, hw::Access::ReadWrite}) {
        const std::string &K = siteResKey(Rd->mem(), *Rd->addr(), M);
        if (T.Res.count(K)) {
          Key = &K;
          break;
        }
      }
      assert(Key && "sync read of locked memory without a lock");
      V = Lock->read(T.Res.at(*Key));
    } else {
      V = MS.M->read(Addr);
    }
    unsigned Latency = 1;
    if (Model) {
      mem::Access A = Model->read(Addr, Stats.Cycles);
      Latency = A.Latency < 1 ? 1 : A.Latency;
      if (A.Out != mem::Outcome::Uncached && Bus.enabled())
        Bus.emit(obs::Event::memAccess(A.Out == mem::Outcome::Hit
                                           ? obs::Event::Kind::MemHit
                                           : obs::Event::Kind::MemMiss,
                                       Stats.Cycles,
                                       static_cast<uint16_t>(P.Index),
                                       static_cast<uint16_t>(MemI), T.Tid,
                                       Addr));
    }
    Deliveries.push_back(
        {Stats.Cycles + (Latency - 1), &P, T.Tid, OP.Dest, V});
    ++T.PendingResp;
    return FireResult::Fire;
  }

  case Stmt::Kind::PipeCall: {
    const auto *C = cast<PipeCallStmt>(&S);
    bool Recursive = C->pipe() == P.CP->Decl->Name;
    PipeInstance &Callee = pipe(C->pipe());

    if (!Commit) {
      if (C->isSpec() && !P.Spec.canAlloc())
        return Stall(StallCause::Spec);
      unsigned Pending = pendingEnqCount(&Callee.Entry);
      if (Callee.Entry.size() + Pending >= Callee.Entry.capacity())
        return Stall(StallCause::Backpressure);
      for (unsigned I = 0, N = C->args().size(); I != N; ++I)
        Eval(OP.Args[I], *C->args()[I]);
      return FireResult::Fire;
    }

    Thread Child;
    Child.Tid = NextTid++;
    Child.Frame = Callee.Prog->InitFrame;
    std::vector<Bits> ArgV;
    for (unsigned I = 0, N = C->args().size(); I != N; ++I) {
      Bits V = Eval(OP.Args[I], *C->args()[I]);
      Child.Frame[Callee.Prog->ParamSlots[I]] = V;
      ArgV.push_back(V);
    }
    Child.Trace.Args = ArgV;
    if (C->isSpec()) {
      hw::SpecId Sid = P.Spec.alloc(ArgV[0]);
      Child.MySpec = Sid;
      T.Handles[C->resultName()] = Sid;
      ++T.UnresolvedSpec;
      if (Bus.enabled())
        Bus.emit(obs::Event::specAlloc(Stats.Cycles,
                                       static_cast<uint16_t>(P.Index),
                                       Child.Tid, Sid));
    } else if (!Recursive && C->hasResult()) {
      Child.HasCaller = true;
      Child.CallerP = &P;
      Child.CallerTid = T.Tid;
      Child.CallerSlot = OP.Dest; // result slot in the caller's frame
      ++T.PendingResp;
    }
    emitThreadEvent(obs::Event::Kind::ThreadSpawn, Callee, Child.Tid);
    PendingEnqs.push_back({&Callee, &Callee.Entry, std::move(Child)});
    return FireResult::Fire;
  }

  case Stmt::Kind::Output: {
    const auto *O = cast<OutputStmt>(&S);
    if (!Commit) {
      Eval(OP.E0, *O->value());
      return FireResult::Fire;
    }
    Bits V = Eval(OP.E0, *O->value());
    T.Trace.Output = V;
    if (T.HasCaller)
      Deliveries.push_back(
          {Stats.Cycles, T.CallerP, T.CallerTid, T.CallerSlot, V});
    return FireResult::Fire;
  }

  case Stmt::Kind::SpecCheck: {
    const auto *C = cast<SpecCheckStmt>(&S);
    if (T.MySpec == 0)
      return FireResult::Fire;
    hw::SpecStatus St = P.Spec.status(T.MySpec);
    if (St == hw::SpecStatus::Mispredicted) {
      if (!rescueSquash(P, T.Tid))
        return FireResult::Kill;
      // Injected SkipSquash: the wrong-path thread treats its entry as
      // resolved-correct and keeps executing.
      if (Commit) {
        P.Spec.free(T.MySpec);
        T.MySpec = 0;
      }
      return FireResult::Fire;
    }
    if (St == hw::SpecStatus::Pending)
      return C->isBlocking() ? Stall(StallCause::Spec) : FireResult::Fire;
    // Correct: the thread learns it is non-speculative; free the entry.
    if (Commit) {
      P.Spec.free(T.MySpec);
      T.MySpec = 0;
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::Verify: {
    const auto *V = cast<VerifyStmt>(&S);
    if (!Commit) {
      // A mispredict respawns a corrected thread: require entry space.
      unsigned Pending = pendingEnqCount(&P.Entry);
      if (P.Entry.size() + Pending >= P.Entry.capacity())
        return Stall(StallCause::Backpressure);
      Eval(OP.E0, *V->actual());
      return FireResult::Fire;
    }
    Bits Actual = Eval(OP.E0, *V->actual());
    auto HIt = T.Handles.find(V->handle());
    assert(HIt != T.Handles.end() && "verify of an unspawned speculation");
    hw::SpecId Sid = HIt->second;
    if (!P.Spec.knows(Sid)) {
      // The child's entry is already gone: only a wrong-path thread kept
      // alive by an injected SkipSquash can get here, after its (squashed)
      // child freed the entry. Drop the resolution but keep the thread's
      // bookkeeping balanced so it can run on to retire, where the
      // spec-tree monitor flags it.
      bool Rescued = rescueSquash(P, T.Tid);
      (void)Rescued;
      assert(Rescued && "verify of an unknown speculation");
      T.Handles.erase(HIt);
      assert(T.UnresolvedSpec > 0);
      --T.UnresolvedSpec;
      for (auto &[Mem, Ck] : T.Ckpts)
        lockFor(P, Mem)->commitCheckpoint(Ck);
      T.Ckpts.clear();
      return FireResult::Fire;
    }
    bool Correct = P.Spec.verify(Sid, Actual);
    T.Handles.erase(HIt);
    assert(T.UnresolvedSpec > 0);
    --T.UnresolvedSpec;
    if (Correct) {
      for (auto &[Mem, Ck] : T.Ckpts)
        lockFor(P, Mem)->commitCheckpoint(Ck);
      T.Ckpts.clear();
    } else {
      for (auto &[Mem, Ck] : T.Ckpts) {
        lockFor(P, Mem)->rollback(Ck);
        lockFor(P, Mem)->commitCheckpoint(Ck);
        if (Bus.enabled())
          Bus.emit(obs::Event::specRollback(
              Stats.Cycles, static_cast<uint16_t>(P.Index),
              static_cast<uint16_t>(P.MemIdx.at(Mem)), T.Tid,
              /*Final=*/true));
      }
      if (!T.Ckpts.empty() &&
          consumeFault(hw::FaultKind::DoubleRollback, P, T.Tid)) {
        // Injected fault: report each checkpoint rolled back a second time.
        // The ckpt-once monitor must flag the repeated final rollback.
        for (auto &[Mem, Ck] : T.Ckpts) {
          (void)Ck;
          if (Bus.enabled())
            Bus.emit(obs::Event::specRollback(
                Stats.Cycles, static_cast<uint16_t>(P.Index),
                static_cast<uint16_t>(P.MemIdx.at(Mem)), T.Tid,
                /*Final=*/true));
        }
      }
      T.Ckpts.clear();
      // Respawn the corrected, non-speculative thread.
      Thread Child;
      Child.Tid = NextTid++;
      Child.Frame = P.Prog->InitFrame;
      Child.Frame[P.Prog->ParamSlots[0]] = Actual;
      Child.Trace.Args = {Actual};
      emitThreadEvent(obs::Event::Kind::ThreadSpawn, P, Child.Tid);
      PendingEnqs.push_back({&P, &P.Entry, std::move(Child)});
    }
    if (const ExternCallExpr *U = V->predictorUpdate()) {
      // The update method is void, so it cannot flow through the hook used
      // for value-producing extern calls: evaluate the compiled argument
      // programs and invoke the module directly.
      std::vector<Bits> Args;
      for (unsigned I = 0, N = U->args().size(); I != N; ++I)
        Args.push_back(Eval(OP.Args[I], *U->args()[I]));
      auto It = Externs.find(U->module());
      assert(It != Externs.end() && "unbound extern module");
      It->second->invoke(U->method(), Args);
    }
    return FireResult::Fire;
  }

  case Stmt::Kind::Update: {
    const auto *U = cast<UpdateStmt>(&S);
    if (!Commit) {
      if (!P.Spec.canAlloc())
        return Stall(StallCause::Spec);
      unsigned Pending = pendingEnqCount(&P.Entry);
      if (P.Entry.size() + Pending >= P.Entry.capacity())
        return Stall(StallCause::Backpressure);
      Eval(OP.E0, *U->newPred());
      return FireResult::Fire;
    }
    Bits NewPred = Eval(OP.E0, *U->newPred());
    auto HIt = T.Handles.find(U->handle());
    assert(HIt != T.Handles.end() && "update of an unspawned speculation");
    auto NewSid = P.Spec.update(HIt->second, NewPred);
    if (!NewSid)
      return FireResult::Fire; // prediction unchanged
    HIt->second = *NewSid;
    // Undo the old child's speculative lock state but keep the
    // checkpoints alive for the re-steered child.
    for (auto &[Mem, Ck] : T.Ckpts) {
      lockFor(P, Mem)->rollback(Ck);
      if (Bus.enabled())
        Bus.emit(obs::Event::specRollback(
            Stats.Cycles, static_cast<uint16_t>(P.Index),
            static_cast<uint16_t>(P.MemIdx.at(Mem)), T.Tid,
            /*Final=*/false));
    }
    Thread Child;
    Child.Tid = NextTid++;
    Child.MySpec = *NewSid;
    Child.Frame = P.Prog->InitFrame;
    Child.Frame[P.Prog->ParamSlots[0]] = NewPred;
    Child.Trace.Args = {NewPred};
    if (Bus.enabled())
      Bus.emit(obs::Event::specAlloc(Stats.Cycles,
                                     static_cast<uint16_t>(P.Index),
                                     Child.Tid, *NewSid));
    emitThreadEvent(obs::Event::Kind::ThreadSpawn, P, Child.Tid);
    PendingEnqs.push_back({&P, &P.Entry, std::move(Child)});
    return FireResult::Fire;
  }

  default:
    assert(false && "statement kind cannot appear as a staged op");
    return FireResult::Fire;
  }
}

System::FireResult System::walkStage(PipeInstance &P, const Stage &S,
                                     Thread &T, WalkCtx &Ctx) {
  // Bind the hook dispatch to this walk (three pointer stores).
  CurP = &P;
  CurT = &T;
  CurCtx = &Ctx;
  if (TreeMode)
    hooksFor(P, T, Ctx);
  const bc::StageProg &SP = P.Prog->Stages[S.Id];
  for (size_t I = 0, N = S.Ops.size(); I != N; ++I) {
    const StagedOp &Op = S.Ops[I];
    const bc::OpProg &OP = SP.Ops[I];
    bool Holds = TreeMode
                     ? evalGuard(Op.G, Ctx.TreeVars, *CP.AST, HotHooks)
                     : bc::execGuard(OP.Guard, Ctx.Frame, Dispatch);
    if (!Holds)
      continue;
    FireResult R = walkOp(P, *Op.S, OP, T, Ctx);
    if (R != FireResult::Fire)
      return R;
  }
  return FireResult::Fire;
}

void System::recordCommit(PipeInstance &P, const std::string &Mem,
                          unsigned MemI, uint64_t Addr, uint64_t Val,
                          Thread &T) {
  T.Trace.Writes.emplace_back(Mem, Addr, Val);
  if (HaltWatch && std::get<0>(*HaltWatch) == P.Index &&
      std::get<1>(*HaltWatch) == MemI && std::get<2>(*HaltWatch) == Addr) {
    if (!DrainOnHalt) {
      Halted = true;
    } else if (!HaltTid) {
      HaltTid = T.Tid;
      HaltCycle = Stats.Cycles;
    }
  }
}

void System::killThread(PipeInstance &P, Thread &&T) {
  if (!P.KilledCtr)
    P.KilledCtr = &Stats.Killed[P.CP->Decl->Name];
  ++*P.KilledCtr;
  emitThreadEvent(obs::Event::Kind::ThreadSquash, P, T.Tid);
  for (LockRegion &Reg : P.Regions)
    if (Reg.OccupantTid == T.Tid)
      Reg.OccupantTid.reset();
  if (T.MySpec != 0)
    P.Spec.free(T.MySpec);
  // Remove the thread's coordination tags (it will never reach the joins).
  for (auto It = PendingTags.begin(); It != PendingTags.end();)
    It = (It->P == &P && It->Tid == T.Tid) ? PendingTags.erase(It)
                                           : std::next(It);
  for (std::deque<TagTok> &Tags : P.TagQueues)
    Tags.erase(std::remove_if(Tags.begin(), Tags.end(),
                              [&](const TagTok &Tok) {
                                return Tok.Tid == T.Tid;
                              }),
               Tags.end());
}

void System::retireThread(PipeInstance &P, Thread &&T) {
  assert(T.Res.empty() && "thread retired holding lock reservations");
  assert(T.PendingResp == 0 && "thread retired with outstanding responses");
  assert(T.Handles.empty() && "thread retired with unresolved speculation");
  emitThreadEvent(obs::Event::Kind::ThreadRetire, P, T.Tid);
  // Threads younger than a pending halt store are past the architectural
  // end of the program: they drain, but neither count nor leave a trace.
  if (HaltTid && T.Tid > *HaltTid)
    return;
  if (!P.RetiredCtr)
    P.RetiredCtr = &Stats.Retired[P.CP->Decl->Name];
  ++*P.RetiredCtr;
  P.Retired.push_back(std::move(T.Trace));
}

System::Thread System::dequeueInput(PipeInstance &P, const Stage &S,
                                    unsigned PredIdx) {
  if (S.Id == P.CP->Graph.Entry)
    return P.Entry.deq();
  if (S.isJoin()) {
    P.TagQueues[S.Id].pop_front();
    return P.PredFifos[S.Id][PredIdx]->deq();
  }
  return P.PredFifos[S.Id][0]->deq();
}

void System::tryFireStage(PipeInstance &P, const Stage &S) {
  unsigned PredIdx = 0;
  Thread *T = stageInput(P, S, PredIdx);
  if (!T) {
    noteOutcome(P, S, StallCause::Idle, 0, nullptr);
    return;
  }

  if (T->PendingResp > 0) {
    noteOutcome(P, S, StallCause::Response, T->Tid, nullptr);
    return;
  }

  // Lock-region serialization: a thread may not enter a multi-stage
  // reservation region while another thread occupies it.
  for (const LockRegion &Reg : P.Regions) {
    if (S.Id == Reg.First && Reg.OccupantTid && *Reg.OccupantTid != T->Tid) {
      noteOutcome(P, S, StallCause::Lock, T->Tid, &Reg.Mem);
      return;
    }
  }

  // Probe pass: pure except for harmless lock-read bookkeeping. Runs on
  // the reusable scratch frame so a stall leaves the thread untouched.
  WalkCtx Probe;
  Probe.Mode = WalkMode::Probe;
  bindWalkFrame(P, *T, Probe);
  FireResult R = walkStage(P, S, *T, Probe);
  if (R == FireResult::Stall) {
    assert(Probe.Cause != StallCause::None && "stall without a cause");
    noteOutcome(P, S, Probe.Cause, T->Tid, Probe.CauseMem);
    return;
  }

  if (R == FireResult::Kill) {
    noteOutcome(P, S, StallCause::Kill, T->Tid, nullptr);
    Thread Dead = dequeueInput(P, S, PredIdx);
    killThread(P, std::move(Dead));
    return;
  }

  // Back-pressure checks with the probe frame.
  const StageEdge *Succ = pickSuccessor(P, S, Probe);
  hw::Fifo<Thread> *SuccF = nullptr;
  if (Succ) {
    SuccF = P.SuccFifos[S.Id][Succ - S.Succs.data()];
    if (SuccF->size() + pendingEnqCount(SuccF) >= SuccF->capacity()) {
      noteOutcome(P, S, StallCause::Backpressure, T->Tid, nullptr);
      return;
    }
  }
  for (const Stage *J : P.ForkJoins[S.Id]) {
    auto &Q = P.TagQueues[J->Id];
    unsigned Pending = 0;
    for (const PendingTag &PT : PendingTags)
      if (PT.P == &P && PT.Join == J->Id)
        ++Pending;
    if (Q.size() + Pending >= Cfg.TagDepth) {
      noteOutcome(P, S, StallCause::Backpressure, T->Tid, nullptr);
      return;
    }
  }

  // Commit pass: runs in place on the thread's own frame (zero copies).
  Thread Live = dequeueInput(P, S, PredIdx);
  WalkCtx Commit;
  Commit.Mode = WalkMode::Commit;
  bindWalkFrame(P, Live, Commit);
  FireResult CR = walkStage(P, S, Live, Commit);
  assert(CR == FireResult::Fire && "probe and commit disagreed");
  (void)CR;
  syncWalkFrame(P, Live, Commit);

  // Compiler-inserted checkpoints after the thread's final reservations.
  for (const auto &[Mem, CkStage] : P.CP->Spec.CheckpointStage) {
    if (CkStage != S.Id || Live.UnresolvedSpec == 0 || Live.Ckpts.count(Mem))
      continue;
    if (hw::HazardLock *L = lockFor(P, Mem))
      Live.Ckpts[Mem] = L->checkpoint();
  }

  // Coordination tags for joins forked here (the hook dispatch is still
  // bound to the commit walk: same pipe, thread, and context).
  for (const Stage *J : P.ForkJoins[S.Id]) {
    const bc::StageProg &JP = P.Prog->Stages[J->Id];
    for (size_t I = 0, N = J->TagRules.size(); I != N; ++I) {
      const TagRule &TR = J->TagRules[I];
      bool Holds = TreeMode
                       ? evalGuard(TR.G, Commit.TreeVars, *CP.AST, HotHooks)
                       : bc::execGuard(JP.TagGuards[I], Commit.Frame,
                                       Dispatch);
      if (Holds) {
        PendingTags.push_back({&P, J->Id, TR.PredIndex, Live.Tid});
        break;
      }
    }
  }

  for (LockRegion &Reg : P.Regions) {
    if (S.Id == Reg.First)
      Reg.OccupantTid = Live.Tid;
    if (S.Id == Reg.Last && Reg.OccupantTid == Live.Tid)
      Reg.OccupantTid.reset();
  }

  noteOutcome(P, S, StallCause::None, Live.Tid, nullptr);
  FiredThisCycle = true;

  if (Succ) {
    PendingEnqs.push_back({&P, SuccF, std::move(Live)});
  } else {
    retireThread(P, std::move(Live));
  }
}

//===----------------------------------------------------------------------===//
// Clock loop
//===----------------------------------------------------------------------===//

System::Thread *System::findThread(PipeInstance &P, uint64_t Tid) {
  for (Thread &T : P.Entry)
    if (T.Tid == Tid)
      return &T;
  for (auto &[Key, F] : P.EdgeFifos)
    for (Thread &T : F)
      if (T.Tid == Tid)
        return &T;
  for (PendingEnq &E : PendingEnqs)
    if (E.P == &P && E.T.Tid == Tid)
      return &E.T;
  return nullptr;
}

void System::applyEndOfCycle() {
  for (PendingEnq &E : PendingEnqs)
    E.F->enq(std::move(E.T));
  PendingEnqs.clear();
  for (PendingTag &T : PendingTags)
    T.P->TagQueues[T.Join].push_back({T.Tag, T.Tid});
  PendingTags.clear();

  for (auto It = Deliveries.begin(); It != Deliveries.end();) {
    if (It->DueCycle > Stats.Cycles) {
      ++It;
      continue;
    }
    PipeInstance &P = *It->P;
    if (consumeFault(hw::FaultKind::DropMemResponse, P, It->Tid)) {
      // Injected fault: the response vanishes. PendingResp stays high, so
      // the requester stalls on Response forever — an honest deadlock the
      // wait-for diagnosis attributes to the memory response.
      It = Deliveries.erase(It);
      continue;
    }
    if (Thread *T = findThread(P, It->Tid)) {
      T->Frame[It->Slot] = It->Value;
      assert(T->PendingResp > 0);
      --T->PendingResp;
    }
    // else: the requester was squashed; drop the orphan response.
    It = Deliveries.erase(It);
    FiredThisCycle = true;
  }

  // Attribution exactness: every probe attempt (a stage with an input
  // thread) resolved to exactly one of fire / kill / a typed stall cause.
  // Keeping this exact is what makes the per-stage matrix rows sum to
  // (cycles - fires); it must stay balanced as stall causes are added.
  assert(Stats.StallLock + Stats.StallSpec + Stats.StallResponse +
                 Stats.StallBackpressure ==
             Stats.ProbeAttempts - Stats.StageFires - Stats.StageKills &&
         "per-cause stall counters out of sync with probe attempts");
}

void System::cycle() {
  assert(LocksBuilt && "call start() before cycling");
  FiredThisCycle = false;
  if (Bus.enabled())
    Bus.emit(obs::Event::cycleBegin(Stats.Cycles));
  if (traceOn())
    std::fprintf(stderr, "-- cycle %llu --\n",
                 (unsigned long long)Stats.Cycles);
  for (const auto &[PI, S] : FireOrder)
    tryFireStage(*PI, *S);
  applyEndOfCycle();
  ++Stats.Cycles;
}

uint64_t System::run(uint64_t MaxCycles) {
  uint64_t Start = Stats.Cycles;
  bool Drained = false;
  while (Stats.Cycles - Start < MaxCycles && !Halted) {
    // Checkpoint cadence: fires before the next cycle executes, i.e. after
    // every post-cycle check for the previous cycle has run, so a restored
    // snapshot resumes exactly where an uninterrupted run() would be.
    if (CkptEvery && CkptHook && Stats.Cycles && Stats.Cycles % CkptEvery == 0)
      CkptHook(Stats.Cycles);
    cycle();
    if (HaltTid && !Halted) {
      // Drain mode: the halt store has committed; stop once no thread at
      // least as old as it is still in flight. The bound keeps a wedged
      // older thread from turning a halt into a timeout.
      bool OlderInFlight = false;
      for (PipeInstance *PI : PipeSeq) {
        for (const Thread &T : PI->Entry)
          OlderInFlight |= T.Tid <= *HaltTid;
        for (auto &[Edge, F] : PI->EdgeFifos)
          for (const Thread &T : F)
            OlderInFlight |= T.Tid <= *HaltTid;
      }
      for (const PendingEnq &E : PendingEnqs)
        OlderInFlight |= E.T.Tid <= *HaltTid;
      if (!OlderInFlight || Stats.Cycles - HaltCycle > 1024) {
        Halted = true;
        continue;
      }
    }
    if (FiredThisCycle) {
      IdleStreak = 0;
      continue;
    }
    // Nothing fired: either the system drained or it deadlocked.
    bool InFlight = !Deliveries.empty() || !PendingEnqs.empty();
    for (PipeInstance *PI : PipeSeq) {
      if (!PI->Entry.empty())
        InFlight = true;
      for (auto &[K, F] : PI->EdgeFifos)
        if (!F.empty())
          InFlight = true;
    }
    if (!InFlight) {
      Drained = true;
      break;
    }
    if (!Deliveries.empty()) {
      // A long-latency memory response is still in flight (cache miss);
      // the pipeline legitimately sits idle until it arrives.
      IdleStreak = 0;
      continue;
    }
    if (++IdleStreak > 8) {
      Stats.Deadlocked = true;
      Diag = diagnoseDeadlock();
      if (Bus.enabled())
        Bus.emit(obs::Event::deadlock(Stats.Cycles));
      break;
    }
  }
  Stats.Outcome = Halted              ? RunOutcome::Halted
                  : Stats.Deadlocked  ? RunOutcome::Deadlocked
                  : Drained           ? RunOutcome::Drained
                                      : RunOutcome::TimedOut;
  return Stats.Cycles - Start;
}

//===----------------------------------------------------------------------===//
// Deadlock diagnosis
//===----------------------------------------------------------------------===//

std::string System::stageOfThread(uint64_t Tid) const {
  for (const PipeInstance *PI : PipeSeq) {
    const StageGraph &G = PI->CP->Graph;
    for (const Thread &T : PI->Entry)
      if (T.Tid == Tid)
        return PI->Name + "/" + G.Stages[G.Entry].Name;
    for (const auto &[Edge, F] : PI->EdgeFifos)
      for (const Thread &T : F)
        if (T.Tid == Tid)
          return PI->Name + "/" + G.Stages[Edge.second].Name;
  }
  return "";
}

DeadlockDiagnosis System::diagnoseDeadlock() {
  DeadlockDiagnosis D;
  D.Cycle = Stats.Cycles;
  // Dead fronts were already drained during the idle streak, so probing the
  // stages here re-derives each stall without perturbing state.
  auto ForEachThread = [](PipeInstance &P, auto Fn) {
    for (Thread &T : P.Entry)
      Fn(T);
    for (auto &[K, F] : P.EdgeFifos) {
      (void)K;
      for (Thread &T : F)
        Fn(T);
    }
  };
  for (PipeInstance *PI : PipeSeq) {
    const StageGraph &G = PI->CP->Graph;
    for (unsigned Id = G.Stages.size(); Id-- > 0;) {
      const Stage &S = G.Stages[Id];
      unsigned PredIdx = 0;
      Thread *T = stageInput(*PI, S, PredIdx);
      if (!T) {
        // A join can be wedged with threads waiting on its predecessor
        // FIFOs but no coordination tag to select one.
        if (S.isJoin()) {
          uint64_t WaitTid = 0;
          for (unsigned PredId : S.Preds) {
            auto &F = PI->EdgeFifos.at({PredId, S.Id});
            if (!F.empty())
              WaitTid = F.front().Tid;
          }
          if (WaitTid && PI->TagQueues[S.Id].empty()) {
            WaitForEdge E;
            E.Pipe = PI->Name;
            E.Stage = S.Name;
            E.Tid = WaitTid;
            E.Cause = StallCause::Backpressure;
            E.Resource = "coordination-tag";
            D.Edges.push_back(std::move(E));
          }
        }
        continue;
      }
      WaitForEdge E;
      E.Pipe = PI->Name;
      E.Stage = S.Name;
      E.Tid = T->Tid;
      if (T->PendingResp > 0) {
        E.Cause = StallCause::Response;
        E.Resource = "memory-response";
        D.Edges.push_back(std::move(E));
        continue;
      }
      bool RegionBlocked = false;
      for (const LockRegion &Reg : PI->Regions) {
        if (S.Id == Reg.First && Reg.OccupantTid &&
            *Reg.OccupantTid != T->Tid) {
          E.Cause = StallCause::Lock;
          E.Resource = Reg.Mem;
          E.HolderTid = *Reg.OccupantTid;
          E.HolderStage = stageOfThread(E.HolderTid);
          D.Edges.push_back(E);
          RegionBlocked = true;
          break;
        }
      }
      if (RegionBlocked)
        continue;
      WalkCtx Probe;
      Probe.Mode = WalkMode::Probe;
      bindWalkFrame(*PI, *T, Probe);
      FireResult R = walkStage(*PI, S, *T, Probe);
      if (R != FireResult::Stall) {
        if (R != FireResult::Fire)
          continue; // killable input cannot wedge the stage
        // The ops would fire: the block must be downstream backpressure.
        const StageEdge *Succ = pickSuccessor(*PI, S, Probe);
        if (Succ) {
          auto &F = PI->EdgeFifos.at({Succ->From, Succ->To});
          if (F.size() >= F.capacity()) {
            E.Cause = StallCause::Backpressure;
            E.Resource = "fifo " + S.Name + "->" + G.Stages[Succ->To].Name;
            if (!F.empty()) {
              E.HolderTid = F.front().Tid;
              E.HolderStage = PI->Name + "/" + G.Stages[Succ->To].Name;
            }
            D.Edges.push_back(std::move(E));
          }
        }
        continue;
      }
      E.Cause = Probe.Cause;
      switch (Probe.Cause) {
      case StallCause::Lock: {
        E.Resource = Probe.CauseMem ? *Probe.CauseMem : "lock";
        // The holder: another thread of the pipe with a live reservation
        // on the same memory (the queue head blocking ours).
        ForEachThread(*PI, [&](Thread &O) {
          if (E.HolderTid || O.Tid == T->Tid)
            return;
          for (const auto &[R2, Rec] : O.ResInfo) {
            (void)R2;
            if (Rec.Mem == E.Resource) {
              E.HolderTid = O.Tid;
              E.HolderStage = stageOfThread(O.Tid);
              return;
            }
          }
        });
        break;
      }
      case StallCause::Spec: {
        E.Resource = "spec-table";
        // The holder: the parent still holding an unresolved handle on
        // this thread's speculation entry.
        if (T->MySpec)
          ForEachThread(*PI, [&](Thread &O) {
            if (E.HolderTid)
              return;
            for (const auto &[H, Sid] : O.Handles) {
              (void)H;
              if (Sid == T->MySpec) {
                E.HolderTid = O.Tid;
                E.HolderStage = stageOfThread(O.Tid);
                return;
              }
            }
          });
        break;
      }
      case StallCause::Backpressure:
        E.Resource = Probe.CauseMem ? *Probe.CauseMem : "downstream";
        break;
      case StallCause::Response:
        E.Resource = "memory-response";
        break;
      default:
        E.Resource = obs::stallCauseName(Probe.Cause);
        break;
      }
      D.Edges.push_back(std::move(E));
    }
  }

  // Close the loop: follow blocked-stage -> holder-stage links and report
  // the first cycle found.
  std::map<std::string, std::string> Next;
  for (const WaitForEdge &E : D.Edges)
    if (!E.HolderStage.empty())
      Next[E.Pipe + "/" + E.Stage] = E.HolderStage;
  for (const auto &[StartNode, Ignored] : Next) {
    (void)Ignored;
    std::vector<std::string> Path{StartNode};
    std::string Cur = StartNode;
    while (true) {
      auto It = Next.find(Cur);
      if (It == Next.end())
        break;
      Cur = It->second;
      if (Cur == StartNode) {
        D.WaitCycle = Path;
        break;
      }
      if (std::find(Path.begin(), Path.end(), Cur) != Path.end())
        break;
      Path.push_back(Cur);
    }
    if (!D.WaitCycle.empty())
      break;
  }
  return D;
}

std::string DeadlockDiagnosis::render() const {
  std::string Out =
      "deadlock wait-for graph (cycle " + std::to_string(Cycle) + "):\n";
  for (const WaitForEdge &E : Edges) {
    Out += "  " + E.Pipe + "/" + E.Stage;
    if (E.Tid)
      Out += " tid=" + std::to_string(E.Tid);
    Out += " blocked[";
    Out += obs::stallCauseName(E.Cause);
    Out += "] on " + E.Resource;
    if (E.HolderTid) {
      Out += " held by tid=" + std::to_string(E.HolderTid);
      if (!E.HolderStage.empty())
        Out += " at " + E.HolderStage;
    }
    Out += "\n";
  }
  if (!WaitCycle.empty()) {
    Out += "  cycle:";
    for (const std::string &N : WaitCycle)
      Out += " " + N + " ->";
    Out += " " + WaitCycle.front() + "\n";
  }
  return Out;
}

obs::Json DeadlockDiagnosis::toJsonValue() const {
  obs::Json Root = obs::Json::object();
  Root.set("cycle", obs::Json(Cycle));
  obs::Json EdgesJ = obs::Json::array();
  for (const WaitForEdge &E : Edges) {
    obs::Json EJ = obs::Json::object();
    EJ.set("pipe", obs::Json(E.Pipe));
    EJ.set("stage", obs::Json(E.Stage));
    EJ.set("tid", obs::Json(E.Tid));
    EJ.set("cause", obs::Json(std::string(obs::stallCauseName(E.Cause))));
    EJ.set("resource", obs::Json(E.Resource));
    EJ.set("holder_tid", obs::Json(E.HolderTid));
    EJ.set("holder_stage", obs::Json(E.HolderStage));
    EdgesJ.push(std::move(EJ));
  }
  Root.set("edges", std::move(EdgesJ));
  obs::Json CycleJ = obs::Json::array();
  for (const std::string &N : WaitCycle)
    CycleJ.push(obs::Json(N));
  Root.set("wait_cycle", std::move(CycleJ));
  return Root;
}
