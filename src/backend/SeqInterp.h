//===- SeqInterp.h - Sequential reference interpreter ----------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a PDL pipe under the one-instruction-at-a-time semantics of
/// Section 3: one thread runs to completion per iteration, lock and
/// speculation operations are erased, verify statements become the tail
/// call, and memory writes are buffered so no thread reads its own writes.
/// This is the correctness oracle the pipelined executor is compared
/// against, and also the fastest way to run PDL programs functionally.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_SEQINTERP_H
#define PDL_BACKEND_SEQINTERP_H

#include "backend/Bytecode.h"
#include "backend/Eval.h"
#include "hw/Extern.h"
#include "hw/Memory.h"
#include "pdl/AST.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace pdl {
namespace backend {

/// What one thread (instruction) did to architectural state.
struct ThreadTrace {
  std::vector<Bits> Args;
  /// Committed writes as (memory name, address, value). Sorted before
  /// comparison, since the pipelined core may release locks for different
  /// memories in a different order within one thread.
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> Writes;
  std::optional<Bits> Output;
};

class SeqInterpreter {
public:
  /// Builds storage for every memory of every pipe in \p Prog, namespaced
  /// as "pipe.mem", and compiles every pipe to the slot-indexed bytecode
  /// the interpreter runs (the tree walker remains available behind
  /// PDL_EVAL_TREE as a differential escape hatch).
  explicit SeqInterpreter(const ast::Program &Prog);

  /// Binds \p Module to the extern declaration \p Name.
  void bindExtern(const std::string &Name, hw::ExternModule *Module);

  /// Memory of \p Pipe named \p Mem (load programs/data through this).
  hw::Memory &memory(const std::string &Pipe, const std::string &Mem);

  /// Stops when a thread commits a write of any value to this location.
  void setHaltOnWrite(const std::string &Pipe, const std::string &Mem,
                      uint64_t Addr);

  /// Runs \p Pipe starting from \p Args for at most \p MaxThreads threads
  /// (iterations). Returns the per-thread traces, oldest first. Stops
  /// early when a thread terminates without a tail call, or at the
  /// halt-on-write address.
  std::vector<ThreadTrace> run(const std::string &Pipe,
                               std::vector<Bits> Args, uint64_t MaxThreads);

  /// True when the last run() stopped at the halt address (as opposed to
  /// exhausting MaxThreads).
  bool halted() const { return Halted; }

private:
  struct ThreadResult {
    std::optional<std::vector<Bits>> NextArgs;
    std::optional<Bits> Output;
  };

  /// Runs one thread of \p Pipe; commits buffered writes afterwards.
  ThreadResult runThread(const ast::PipeDecl &Pipe, std::vector<Bits> Args,
                        ThreadTrace &Trace);

  /// Legacy tree-walking statement loop (PDL_EVAL_TREE).
  void execList(const ast::PipeDecl &Pipe, const ast::StmtList &Stmts,
                Env &E, ThreadResult &R, ThreadTrace &Trace,
                std::vector<std::tuple<std::string, uint64_t, Bits>> &WBuf);

  /// Bytecode statement loop: same semantics, compiled operand programs
  /// over a dense frame.
  void execListC(const ast::PipeDecl &Pipe, const bc::PipeProgram &PP,
                 const ast::StmtList &Stmts, std::vector<Bits> &Frame,
                 ThreadResult &R, ThreadTrace &Trace,
                 std::vector<std::tuple<std::string, uint64_t, Bits>> &WBuf);

  /// bc::Hooks for the oracle: direct memory reads, extern dispatch.
  struct BcHooks final : bc::Hooks {
    SeqInterpreter *S = nullptr;
    const ast::PipeDecl *Pipe = nullptr;
    Bits readMem(const ast::MemReadExpr &Site, uint64_t Addr) override;
    Bits callExtern(const ast::ExternCallExpr &Site, const Bits *Args,
                    unsigned NumArgs) override;
  };

  const ast::Program &Prog;
  std::shared_ptr<const bc::ModuleIR> IR;
  std::map<std::string, std::unique_ptr<hw::Memory>> Mems;
  std::map<std::string, hw::ExternModule *> Externs;
  std::optional<std::tuple<std::string, uint64_t>> HaltWatch;
  bool Halted = false;
  bool TreeMode = false;
};

} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_SEQINTERP_H
