//===- BcGen.h - Seeded random bytecode program generator ------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of random-but-well-formed ExprPrograms, for property
/// testing the lowerings below the bytecode — superinstruction fusion
/// (Fuse.cpp) and native emission (Emit.cpp) — on shapes far outside what
/// the core matrix compiles to. Generated programs satisfy every invariant
/// bc::exec and the passes rely on: scratch slots are defined before read,
/// branches are forward-only, every path ends in a return, and widths agree
/// at each operation. Only pure opcodes are emitted (MemRead/Extern need
/// live AST sites, and fusion never touches them anyway); the generator is
/// biased toward the exact windows the fusion pass looks for, so all six
/// superinstructions fire across a modest corpus.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_BCGEN_H
#define PDL_BACKEND_BCGEN_H

#include "backend/Bytecode.h"

#include <cstdint>
#include <vector>

namespace pdl {
namespace backend {
namespace bc {

struct GenProgram {
  ExprProgram Prog;
  /// Slots [0, NumInputs) are read-only inputs the caller must initialise
  /// (randomFrame does); the rest is scratch the program defines itself.
  unsigned NumInputs = 0;
  /// Total frame size the program may touch.
  unsigned FrameSize = 0;
  /// Width of each input slot, so differential frames can be regenerated.
  std::vector<unsigned> InputWidths;
};

/// Generates one well-formed pure program from \p Seed. Deterministic:
/// equal seeds yield equal programs.
GenProgram genProgram(uint64_t Seed);

/// A random input frame for \p G (scratch slots default-initialised), from
/// an independent seed so one program can be probed at many points.
std::vector<Bits> randomFrame(const GenProgram &G, uint64_t Seed);

} // namespace bc
} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_BCGEN_H
