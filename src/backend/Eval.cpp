//===- Eval.cpp - PDL expression evaluation ---------------------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/Eval.h"

using namespace pdl;
using namespace pdl::ast;
using namespace pdl::backend;

namespace {

Bits evalBinary(const BinaryExpr &B, const Env &E, const Program &P,
                const EvalHooks &H) {
  Bits L = evalExpr(*B.lhs(), E, P, H);
  Bits R = evalExpr(*B.rhs(), E, P, H);
  bool Signed = B.lhs()->type().isSigned();
  switch (B.op()) {
  case BinaryOp::Add:
    return L.add(R);
  case BinaryOp::Sub:
    return L.sub(R);
  case BinaryOp::Mul:
    return L.mul(R);
  case BinaryOp::Div:
    return Signed ? L.sdiv(R) : L.udiv(R);
  case BinaryOp::Rem:
    return Signed ? L.srem(R) : L.urem(R);
  case BinaryOp::BitAnd:
    return L.and_(R);
  case BinaryOp::BitOr:
    return L.or_(R);
  case BinaryOp::BitXor:
    return L.xor_(R);
  case BinaryOp::Shl:
    return L.shl(R);
  case BinaryOp::Shr:
    return Signed ? L.ashr(R) : L.lshr(R);
  case BinaryOp::Eq:
    return L.eq(R);
  case BinaryOp::Ne:
    return L.ne(R);
  case BinaryOp::Lt:
    return Signed ? L.slt(R) : L.ult(R);
  case BinaryOp::Le:
    return Signed ? L.sle(R) : L.ule(R);
  case BinaryOp::Gt:
    return Signed ? R.slt(L) : R.ult(L);
  case BinaryOp::Ge:
    return Signed ? R.sle(L) : R.ule(L);
  case BinaryOp::LogicalAnd:
    return Bits(L.toBool() && R.toBool() ? 1 : 0, 1);
  case BinaryOp::LogicalOr:
    return Bits(L.toBool() || R.toBool() ? 1 : 0, 1);
  case BinaryOp::Concat:
    return L.concat(R);
  }
  assert(false && "unknown binary operator");
  return Bits();
}

} // namespace

Bits backend::evalExpr(const Expr &E, const Env &Env, const Program &Prog,
                       const EvalHooks &Hooks) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return Bits(cast<IntLitExpr>(&E)->value(), E.type().width());
  case Expr::Kind::BoolLit:
    return Bits(cast<BoolLitExpr>(&E)->value() ? 1 : 0, 1);
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(&E);
    auto It = Env.find(V->name());
    // Unbound names are don't-cares off the defining path: read as zero.
    return It != Env.end() ? It->second : Bits(0, E.type().width());
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Bits V = evalExpr(*U->operand(), Env, Prog, Hooks);
    switch (U->op()) {
    case UnaryOp::LogicalNot:
      return Bits(V.isZero() ? 1 : 0, 1);
    case UnaryOp::BitNot:
      return V.not_();
    case UnaryOp::Negate:
      return Bits(0, V.width()).sub(V);
    }
    break;
  }
  case Expr::Kind::Binary:
    return evalBinary(*cast<BinaryExpr>(&E), Env, Prog, Hooks);
  case Expr::Kind::Ternary: {
    const auto *T = cast<TernaryExpr>(&E);
    return evalExpr(*T->cond(), Env, Prog, Hooks).toBool()
               ? evalExpr(*T->thenExpr(), Env, Prog, Hooks)
               : evalExpr(*T->elseExpr(), Env, Prog, Hooks);
  }
  case Expr::Kind::Slice: {
    const auto *S = cast<SliceExpr>(&E);
    return evalExpr(*S->base(), Env, Prog, Hooks).slice(S->hi(), S->lo());
  }
  case Expr::Kind::MemRead: {
    const auto *M = cast<MemReadExpr>(&E);
    uint64_t Addr = evalExpr(*M->addr(), Env, Prog, Hooks).zext();
    assert(Hooks.ReadMem && "memory read without a ReadMem hook");
    return Hooks.ReadMem(*M, Addr);
  }
  case Expr::Kind::FuncCall: {
    const auto *C = cast<FuncCallExpr>(&E);
    const FuncDecl *F = Prog.findFunc(C->callee());
    assert(F && "call of unknown function survived type checking");
    backend::Env Locals;
    for (unsigned I = 0, N = C->args().size(); I != N; ++I)
      Locals[F->Params[I].Name] = evalExpr(*C->args()[I], Env, Prog, Hooks);
    for (const StmtPtr &S : F->Body) {
      if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
        Locals[A->name()] = evalExpr(*A->value(), Locals, Prog, Hooks);
        continue;
      }
      const auto *R = cast<ReturnStmt>(S.get());
      return evalExpr(*R->value(), Locals, Prog, Hooks);
    }
    assert(false && "def function without a return");
    break;
  }
  case Expr::Kind::ExternCall: {
    const auto *C = cast<ExternCallExpr>(&E);
    std::vector<Bits> Args;
    for (const ExprPtr &A : C->args())
      Args.push_back(evalExpr(*A, Env, Prog, Hooks));
    assert(Hooks.CallExtern && "extern call without a CallExtern hook");
    return Hooks.CallExtern(*C, Args);
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(&E);
    Bits V = evalExpr(*C->operand(), Env, Prog, Hooks);
    bool SrcSigned = C->operand()->type().isSigned();
    unsigned W = C->target().width();
    return SrcSigned ? V.sextTo(W) : V.zextTo(W);
  }
  }
  return Bits();
}

bool backend::evalGuard(const Guard &G, const Env &Env, const Program &Prog,
                        const EvalHooks &Hooks) {
  for (const GuardTerm &T : G) {
    bool V = evalExpr(*T.Cond, Env, Prog, Hooks).toBool();
    if (V != T.Polarity)
      return false;
  }
  return true;
}
