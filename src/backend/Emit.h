//===- Emit.h - C++ emission of compiled bytecode programs -----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The last lowering level below the fused bytecode: translate every
/// ExprProgram of a compiled module into one self-contained C++ translation
/// unit — branches as real `goto`s, pool constants inlined as literals, and
/// the six superinstructions expanded to their documented native form.
/// Slot widths are inferred statically (variable slots from their declared
/// widths, scratch from the defining opcode) so most operations compile to
/// raw 64-bit arithmetic with constant masks, and scratch slots are lowered
/// to C++ locals the system compiler can register-allocate. The emitted
/// source has no includes and no dependency on the PDL headers: values are
/// a layout-compatible mirror of pdl::Bits (verified at dlopen time by an
/// exported probe, see NativeCache.h), and the two opcodes that escape the
/// frame (MemRead / Extern) call back through host-registered C function
/// pointers, so a compiled artifact is reusable across processes.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_EMIT_H
#define PDL_BACKEND_EMIT_H

#include "backend/Bytecode.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace backend {
namespace native {

/// The emitted-artifact ABI, shared between Emit.cpp (which bakes it into
/// the generated TU) and NativeCache.cpp (which refuses to dispatch into a
/// shared object reporting anything else). Bump on any change to the value
/// mirror, the hook typedefs, or the thunk signature — and on any change
/// to the emission strategy itself: the version feeds moduleDigest, so a
/// bump is what retires cached artifacts built by an older emitter (the
/// digest covers the bytecode, not the generated source).
/// v2: static width inference + scratch-slot registerization.
constexpr unsigned kAbiVersion = 2;

/// What `pdl_native_abi()` must return: version tag fused with the value
/// mirror's size so a stale artifact from a different layout can never bind.
constexpr unsigned kAbiWord = (kAbiVersion << 8) | 16u /* sizeof(NB) */;

/// The value `pdl_native_probe()` writes, read back by the host as a Bits —
/// a runtime check that the emitted mirror and pdl::Bits agree on layout.
constexpr uint64_t kProbeValue = 0x1234abcdu;
constexpr unsigned kProbeWidth = 32;

/// Content digest of everything emission depends on: pipe names, the
/// instruction streams, constant pools, and hook-site counts, plus the ABI
/// version. Two modules with equal digests emit byte-identical TUs; the
/// digest (not the source) names on-disk artifacts.
uint64_t moduleDigest(const bc::ModuleIR &M);

struct EmitResult {
  /// The self-contained C++ translation unit.
  std::string Source;
  /// Exported symbol for each program, paired with the program it was
  /// emitted from, in emission order (pipes sorted by name, programs in
  /// deque order). The order is canonical: NativeCache both records it in
  /// artifact metadata and replays it when binding a cached artifact.
  std::vector<std::pair<std::string, const bc::ExprProgram *>> Symbols;
};

/// Emits the whole module. Pure; never fails (every opcode has an
/// expansion). Programs already carrying superinstructions emit their
/// expanded native form, so emitting a fused module is the expected path.
EmitResult emitModule(const bc::ModuleIR &M);

} // namespace native
} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_EMIT_H
