//===- BcGen.cpp - Seeded random bytecode program generator -----------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Programs are generated in SSA discipline — every op writes a fresh slot —
// which makes define-before-use trivial along every path and leaves the
// fusion pass's liveness oracle with real work (folded scratch defs are dead
// exactly when the generator never re-reads them, which it decides at
// random). Shapes are drawn from a pattern table biased toward the fusion
// windows: bare compares feeding branches, Const-feeds-binop pairs,
// diamond selects with Copy/Const arms, guard epilogues, and op-then-Ret
// tails. Two flavors alternate: guard programs (a chain of tests that each
// bail to a shared RetFalse, then RetTrue) and value programs (straight
// line ending in Ret).
//
//===----------------------------------------------------------------------===//

#include "backend/BcGen.h"

#include <cassert>

using namespace pdl;
using namespace pdl::backend;
using namespace pdl::backend::bc;

namespace {

/// splitmix64: tiny, seed-stable across platforms (std::mt19937 would do,
/// but its distribution adapters are not portable across standard libraries
/// and these corpora are shared through CI seeds).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed) {}
  uint64_t next() {
    uint64_t Z = (S += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  bool chance(unsigned Pct) { return below(100) < Pct; }
};

/// Interesting widths get extra weight: boundary widths shake out masking
/// and sign-extension bugs faster than a uniform draw.
unsigned pickWidth(Rng &R) {
  static const unsigned Hot[] = {1, 2, 7, 8, 16, 31, 32, 33, 63, 64};
  if (R.chance(60))
    return Hot[R.below(sizeof(Hot) / sizeof(Hot[0]))];
  return unsigned(1 + R.below(64));
}

/// Values biased toward the corners of a width-W domain.
uint64_t pickValue(Rng &R, unsigned W) {
  uint64_t Mask = W == 64 ? ~uint64_t(0) : (uint64_t(1) << W) - 1;
  switch (R.below(6)) {
  case 0:
    return 0;
  case 1:
    return Mask; // all ones
  case 2:
    return uint64_t(1) << (W - 1); // sign bit
  case 3:
    return (uint64_t(1) << (W - 1)) - (W == 1 ? 0 : 1); // max positive
  default:
    return R.next() & Mask;
  }
}

struct Builder {
  Rng R;
  std::vector<Insn> Code;
  std::vector<Bits> Pool;
  std::vector<unsigned> SlotW; // width of every defined slot

  explicit Builder(uint64_t Seed) : R(Seed) {}

  uint16_t freshSlot(unsigned W) {
    SlotW.push_back(W);
    return uint16_t(SlotW.size() - 1);
  }
  uint16_t anySlot() { return uint16_t(R.below(SlotW.size())); }
  /// A random slot sharing \p A's width (possibly A itself — B==C is legal).
  uint16_t sameWidthAs(uint16_t A) {
    std::vector<uint16_t> Cands;
    for (uint16_t I = 0; I != SlotW.size(); ++I)
      if (SlotW[I] == SlotW[A])
        Cands.push_back(I);
    return Cands[R.below(Cands.size())];
  }
  uint32_t poolConst(unsigned W) {
    Pool.emplace_back(pickValue(R, W), W);
    return uint32_t(Pool.size() - 1);
  }

  static bool isCmp(Op O) { return O >= Op::Eq && O <= Op::SLe; }

  /// A same-width two-source opcode (the isBin set minus Concat, whose
  /// width discipline is additive and handled as its own pattern).
  Op pickBin() {
    static const Op Bins[] = {Op::Add,  Op::Sub,  Op::Mul,  Op::UDiv,
                              Op::SDiv, Op::URem, Op::SRem, Op::And,
                              Op::Or,   Op::Xor,  Op::Shl,  Op::LShr,
                              Op::AShr, Op::Eq,   Op::Ne,   Op::ULt,
                              Op::ULe,  Op::SLt,  Op::SLe,  Op::LogAnd,
                              Op::LogOr};
    return Bins[R.below(sizeof(Bins) / sizeof(Bins[0]))];
  }

  unsigned resultWidth(Op O, uint16_t B) {
    if (isCmp(O) || O == Op::LogAnd || O == Op::LogOr)
      return 1;
    return SlotW[B];
  }

  void emitBinPair() {
    uint16_t B = anySlot(), C = sameWidthAs(B);
    Op O = pickBin();
    Code.push_back({O, freshSlot(resultWidth(O, B)), B, C, 0});
  }

  /// Const K ; bin A,B,K — the FusedBinK window (const randomly on either
  /// side). The K slot is never re-read, so one fixpoint pass substitutes
  /// the pool operand and the next drops the stranded Const.
  void emitBinConst() {
    uint16_t B = anySlot();
    Op O = pickBin();
    uint16_t K = freshSlot(SlotW[B]);
    Code.push_back({Op::Const, K, 0, 0, poolConst(SlotW[B])});
    if (R.chance(50))
      Code.push_back({O, freshSlot(resultWidth(O, B)), B, K, 0});
    else
      Code.push_back({O, freshSlot(resultWidth(O, K)), K, B, 0});
  }

  void emitUnary() {
    uint16_t B = anySlot();
    unsigned W = SlotW[B];
    switch (R.below(6)) {
    case 0:
      Code.push_back({Op::LogNot, freshSlot(1), B, 0, 0});
      break;
    case 1:
      Code.push_back({Op::BitNot, freshSlot(W), B, 0, 0});
      break;
    case 2:
      Code.push_back({Op::Neg, freshSlot(W), B, 0, 0});
      break;
    case 3: {
      unsigned Lo = unsigned(R.below(W)), Hi = Lo + unsigned(R.below(W - Lo));
      Code.push_back(
          {Op::Slice, freshSlot(Hi - Lo + 1), B, 0, (Hi << 16) | Lo});
      break;
    }
    case 4: {
      unsigned To = pickWidth(R); // zextTo truncates too — any width is legal
      Code.push_back({Op::ZExt, freshSlot(To), B, uint16_t(To), 0});
      break;
    }
    default: {
      unsigned To = pickWidth(R);
      Code.push_back({Op::SExt, freshSlot(To), B, uint16_t(To), 0});
      break;
    }
    }
  }

  void emitConcat() {
    // Find a pair whose widths sum within 64; give up quietly if the draw
    // is unlucky (another pattern runs instead).
    for (unsigned Try = 0; Try != 8; ++Try) {
      uint16_t B = anySlot(), C = anySlot();
      if (SlotW[B] + SlotW[C] <= 64) {
        Code.push_back({Op::Concat, freshSlot(SlotW[B] + SlotW[C]), B, C, 0});
        return;
      }
    }
    emitUnary();
  }

  /// The diamond FusedSelect looks for:
  ///   BrFalse c,Le ; then ; Jump Ld ; Le: else
  /// with both arms one Copy/Const writing the same fresh slot.
  void emitSelect() {
    uint16_t Cond = anySlot();
    unsigned W = pickWidth(R);
    uint16_t Dest = freshSlot(W);
    uint32_t Base = uint32_t(Code.size());
    Code.push_back({Op::BrFalse, 0, Cond, 0, Base + 3});
    auto Arm = [&]() -> Insn {
      if (R.chance(50))
        return {Op::Const, Dest, 0, 0, poolConst(W)};
      // Copy arm: needs an existing slot of width W (never Dest itself,
      // which is still undefined here); fall back to Const.
      for (unsigned Try = 0; Try != 8; ++Try) {
        uint16_t S = anySlot();
        if (S != Dest && SlotW[S] == W)
          return {Op::Copy, Dest, S, 0, 0};
      }
      return {Op::Const, Dest, 0, 0, poolConst(W)};
    };
    Code.push_back(Arm()); // then
    Code.push_back({Op::Jump, 0, 0, 0, Base + 4});
    Code.push_back(Arm()); // else
  }

  void emitComputeSection(unsigned N) {
    for (unsigned I = 0; I != N; ++I) {
      switch (R.below(10)) {
      case 0:
      case 1:
      case 2:
        emitBinPair();
        break;
      case 3:
      case 4:
        emitBinConst();
        break;
      case 5:
      case 6:
        emitUnary();
        break;
      case 7:
        emitConcat();
        break;
      case 8:
        emitSelect();
        break;
      default: {
        unsigned W = pickWidth(R);
        // A Const that may never be read again — DeadConst fold fodder.
        Code.push_back({Op::Const, freshSlot(W), 0, 0, poolConst(W)});
        break;
      }
      }
    }
  }
};

} // namespace

GenProgram bc::genProgram(uint64_t Seed) {
  Builder B(Seed);

  GenProgram G;
  G.NumInputs = unsigned(2 + B.R.below(5));
  for (unsigned I = 0; I != G.NumInputs; ++I) {
    // Pair up input widths often enough that same-width partners exist
    // from the first instruction on.
    unsigned W =
        (I && B.R.chance(40)) ? B.SlotW[B.R.below(I)] : pickWidth(B.R);
    B.freshSlot(W);
    G.InputWidths.push_back(W);
  }

  B.emitComputeSection(unsigned(3 + B.R.below(10)));

  if (B.R.chance(50)) {
    // Guard flavor: a chain of tests that each bail out to one shared
    // RetFalse. Earlier cmp+branch windows fuse to FusedCmpBr; the final
    // one, whose branch target is the RetFalse right past the fallthrough
    // RetTrue, fuses to FusedCmpRetBool (or FusedRetBool for a bare
    // branch).
    std::vector<size_t> FailBranches;
    unsigned Tests = unsigned(1 + B.R.below(4));
    for (unsigned T = 0; T != Tests; ++T) {
      Op Br = B.R.chance(50) ? Op::BrFalse : Op::BrTrue;
      if (B.R.chance(70)) {
        uint16_t X = B.anySlot(), Y = B.sameWidthAs(X);
        uint16_t D = B.freshSlot(1);
        Op Cmp = Op(unsigned(Op::Eq) + B.R.below(6));
        B.Code.push_back({Cmp, D, X, Y, 0});
        FailBranches.push_back(B.Code.size());
        B.Code.push_back({Br, 0, D, 0, 0});
      } else {
        FailBranches.push_back(B.Code.size());
        B.Code.push_back({Br, 0, B.anySlot(), 0, 0});
      }
    }
    B.Code.push_back({Op::RetTrue, 0, 0, 0, 0});
    uint32_t Fail = uint32_t(B.Code.size());
    B.Code.push_back({Op::RetFalse, 0, 0, 0, 0});
    for (size_t Ix : FailBranches)
      B.Code[Ix].Imm = Fail;
  } else if (B.R.chance(60)) {
    // Value flavor, FusedRetOp window: one last op, returned immediately.
    size_t Before = B.Code.size();
    switch (B.R.below(3)) {
    case 0:
      B.emitBinPair();
      break;
    case 1:
      B.emitUnary();
      break;
    default:
      B.emitConcat();
      break;
    }
    // The patterns above may emit helpers; return whatever slot the final
    // emitted instruction defined (all compute patterns end in a def).
    assert(B.Code.size() > Before && "compute pattern emitted nothing");
    (void)Before;
    B.Code.push_back({Op::Ret, 0, B.Code.back().A, 0, 0});
  } else {
    B.Code.push_back({Op::Ret, 0, B.anySlot(), 0, 0});
  }

  G.Prog.Code = std::move(B.Code);
  G.Prog.Pool = std::move(B.Pool);
  G.FrameSize = unsigned(B.SlotW.size());
  return G;
}

std::vector<Bits> bc::randomFrame(const GenProgram &G, uint64_t Seed) {
  Rng R(Seed ^ 0xa5a5a5a55a5a5a5aull);
  std::vector<Bits> Frame(G.FrameSize);
  for (unsigned I = 0; I != G.NumInputs; ++I)
    Frame[I] = Bits(pickValue(R, G.InputWidths[I]), G.InputWidths[I]);
  return Frame;
}
