//===- Compile.h - AST -> bytecode expression compiler ---------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers type-checked PDL expressions to the flat slot-indexed bytecode of
/// Bytecode.h, once per elaboration. The lowering is bit-for-bit faithful
/// to the tree walker in Eval.cpp — same operator semantics, same unbound-
/// read-as-zero rule, same hook-call sequence — with three optimisations
/// the tree cannot express:
///
///  - constant folding (literal-only subtrees collapse at compile time;
///    hooks never fold, so the observable call sequence is unchanged),
///  - common-subexpression elimination by value numbering within one
///    program (guard conjunctions and inlined `def` bodies are the big
///    winners), invalidated across ternary arms,
///  - guard short-circuiting: a stage-graph guard becomes one fused
///    conjunction program that bails to RetFalse on the first failing term.
///
/// Ternaries compile to real branches so only the taken arm's hook sites
/// execute, exactly like the tree walker. `def` functions are inlined with
/// a compile-time scope map (their bodies resolve names in function scope
/// only, matching Eval.cpp's Locals environment).
///
/// Faithfulness is not taken on trust: src/tv/ re-proves every compiled
/// program equal to its expression tree after each compilation. For
/// self-testing that validator, the environment variable PDL_TV_MUTATE
/// (values "cse-ternary", "guard-drop") seeds a deliberate miscompile —
/// dropped value-numbering invalidation across ternary arms, or a
/// neutralized guard short-circuit branch — which tv::validateModule must
/// reject. It is read per compiled pipe and intended only for tests.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_COMPILE_H
#define PDL_BACKEND_COMPILE_H

#include "backend/Bytecode.h"
#include "passes/Compiler.h"

#include <memory>

namespace pdl {
namespace backend {
namespace bc {

/// Compiles every pipe of \p CP, including the stage-graph mirrors the
/// pipelined executor walks (fused guards, per-op operand programs, edge
/// and tag-rule guards). The result is immutable and safe to share across
/// Systems and threads.
std::shared_ptr<const ModuleIR> compileModule(const CompiledProgram &CP);

/// Compiles statement-operand and if-condition programs only (no stage
/// mirrors) — enough for the sequential oracle, which walks the raw
/// statement lists.
std::shared_ptr<const ModuleIR> compileModule(const ast::Program &AST);

} // namespace bc
} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_COMPILE_H
