//===- NativeCache.cpp - Compile, cache, and dlopen emitted circuits ------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/NativeCache.h"

#include "backend/Emit.h"
#include "support/Persist.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pdl;
using namespace pdl::backend;
using namespace pdl::backend::bc;
using pdl::service::persist::decodeRecord;
using pdl::service::persist::encodeRecord;
using pdl::service::persist::ensureDir;
using pdl::service::persist::fnv1a64;
using pdl::service::persist::hexDigest;
using pdl::service::persist::kNativeArtifactMagic;
using pdl::service::persist::readFileBytes;
using pdl::service::persist::writeFileAtomic;

//===----------------------------------------------------------------------===//
// Mode, compiler discovery, stats
//===----------------------------------------------------------------------===//

namespace {

/// Compile flags baked into the cache key: changing them must miss.
constexpr const char *kFlags = "-O3 -fPIC -shared -w";

struct Counters {
  std::atomic<uint64_t> Compiles{0}, CacheHits{0}, Attached{0}, Fallbacks{0};
  std::atomic<uint64_t> CompileUs{0};
};
Counters &counters() {
  static Counters C;
  return C;
}

/// Runs `cmd --version` and returns the first output line, or "" when the
/// command cannot be executed. \p Cmd comes from a fixed list or from the
/// user's own PDL_NATIVE_CXX — the same trust level as $CXX in any build.
std::string versionLine(const std::string &Cmd) {
  std::string Shell = Cmd + " --version 2>/dev/null";
  FILE *P = popen(Shell.c_str(), "r");
  if (!P)
    return "";
  char Buf[256] = {0};
  std::string Line;
  if (std::fgets(Buf, sizeof Buf, P)) {
    Line = Buf;
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
  }
  // Drain so the child exits cleanly, then require success.
  while (std::fgets(Buf, sizeof Buf, P))
    ;
  if (pclose(P) != 0)
    return "";
  return Line;
}

struct Compiler {
  std::string Cmd;      // how to invoke it
  std::string Identity; // first --version line; "" = unusable
};

const Compiler &compiler() {
  static const Compiler C = [] {
    Compiler R;
    if (const char *Env = std::getenv("PDL_NATIVE_CXX")) {
      R.Cmd = Env;
      R.Identity = versionLine(R.Cmd);
      return R; // an override that fails to probe stays failed — no fallback
    }
    for (const char *Cand : {"c++", "g++", "clang++"}) {
      std::string Id = versionLine(Cand);
      if (!Id.empty()) {
        R.Cmd = Cand;
        R.Identity = Id;
        return R;
      }
    }
    return R;
  }();
  return C;
}

} // namespace

bool native::nativeModeRequested() {
  return std::getenv("PDL_EVAL_NATIVE") != nullptr &&
         std::getenv("PDL_EVAL_TREE") == nullptr;
}

const std::string &native::compilerIdentity() { return compiler().Identity; }

bool native::available() { return !compiler().Identity.empty(); }

std::string native::cacheDir() {
  if (const char *Env = std::getenv("PDL_NATIVE_CACHE_DIR"))
    return Env;
  const char *Tmp = std::getenv("TMPDIR");
  std::string Base = Tmp && *Tmp ? Tmp : "/tmp";
  return Base + "/pdl-native-" + std::to_string(uint64_t(getuid()));
}

native::Stats native::stats() {
  Counters &C = counters();
  Stats S;
  S.Compiles = C.Compiles.load();
  S.CacheHits = C.CacheHits.load();
  S.Attached = C.Attached.load();
  S.Fallbacks = C.Fallbacks.load();
  S.CompileMs = double(C.CompileUs.load()) / 1000.0;
  return S;
}

void native::resetStatsForTest() {
  Counters &C = counters();
  C.Compiles = 0;
  C.CacheHits = 0;
  C.Attached = 0;
  C.Fallbacks = 0;
  C.CompileUs = 0;
}

//===----------------------------------------------------------------------===//
// Hook trampolines
//===----------------------------------------------------------------------===//
//
// The emitted TU knows nothing about pdl::Bits or bc::Hooks: it calls back
// through two C function pointers registered by pdl_native_bind. The
// trampolines live on the host side, where the real types are visible, and
// index the program's site tables by integer — no AST addresses are ever
// baked into an artifact, which is what makes artifacts reusable across
// processes.

namespace {

// Host-side views of the emitted typedefs. NB* appears as void* here; the
// layouts are verified by the probe export before anything is called.
using MemFn = void (*)(void *Hooks, const void *Prog, unsigned Site,
                       unsigned long long Addr, void *Ret);
using ExtFn = void (*)(void *Hooks, const void *Prog, unsigned Site,
                       const void *Args, unsigned N, void *Ret);
using BindFn = void (*)(MemFn, ExtFn);
using AbiFn = unsigned (*)();
using ProbeFn = void (*)(void *);

void memTrampoline(void *Hooks, const void *Prog, unsigned Site,
                   unsigned long long Addr, void *Ret) {
  const ExprProgram &P = *static_cast<const ExprProgram *>(Prog);
  *static_cast<Bits *>(Ret) =
      static_cast<bc::Hooks *>(Hooks)->readMem(*P.MemSites[Site], Addr);
}

void extTrampoline(void *Hooks, const void *Prog, unsigned Site,
                   const void *Args, unsigned N, void *Ret) {
  const ExprProgram &P = *static_cast<const ExprProgram *>(Prog);
  *static_cast<Bits *>(Ret) = static_cast<bc::Hooks *>(Hooks)->callExtern(
      *P.ExternSites[Site], static_cast<const Bits *>(Args), N);
}

//===----------------------------------------------------------------------===//
// Artifact store
//===----------------------------------------------------------------------===//

std::string u64Str(uint64_t V) { return std::to_string(V); }

/// Opens and fully verifies an artifact: ABI word, layout probe, symbol
/// presence. Returns the dlopen handle (caller owns) with every symbol
/// resolved into \p Thunks, or null with \p Err.
void *openAndVerify(const std::string &SoPath,
                    const std::vector<std::string> &Syms,
                    std::vector<NativeThunk> &Thunks, std::string *Err) {
  void *H = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    if (Err)
      *Err = std::string("dlopen failed: ") + dlerror();
    return nullptr;
  }
  auto Fail = [&](const std::string &Msg) -> void * {
    if (Err)
      *Err = Msg;
    dlclose(H);
    return nullptr;
  };
  auto Abi = reinterpret_cast<AbiFn>(dlsym(H, "pdl_native_abi"));
  auto Probe = reinterpret_cast<ProbeFn>(dlsym(H, "pdl_native_probe"));
  auto Bind = reinterpret_cast<BindFn>(dlsym(H, "pdl_native_bind"));
  if (!Abi || !Probe || !Bind)
    return Fail("artifact missing an ABI export");
  if (Abi() != native::kAbiWord)
    return Fail("artifact ABI word mismatch");
  Bits ProbeOut;
  Probe(&ProbeOut);
  if (ProbeOut.zext() != native::kProbeValue ||
      ProbeOut.width() != native::kProbeWidth)
    return Fail("value layout probe mismatch (NB vs pdl::Bits)");
  Bind(&memTrampoline, &extTrampoline);
  Thunks.clear();
  Thunks.reserve(Syms.size());
  for (const std::string &S : Syms) {
    void *Fn = dlsym(H, S.c_str());
    if (!Fn)
      return Fail("artifact missing symbol " + S);
    Thunks.push_back(reinterpret_cast<NativeThunk>(Fn));
  }
  return H;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

} // namespace

//===----------------------------------------------------------------------===//
// attachModule
//===----------------------------------------------------------------------===//

bool native::attachModule(ModuleIR &M, const AttachOptions &O,
                          std::string *Err) {
  auto Degrade = [&](const std::string &Msg) {
    counters().Fallbacks++;
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!O.Certified)
    return Degrade("module '" + O.ModuleName +
                   "' has no strict TV certificate; refusing to emit");
  const Compiler &CC = compiler();
  if (CC.Identity.empty())
    return Degrade("no usable C++ compiler (PDL_NATIVE_CXX / c++ / g++ / "
                   "clang++)");

  // The certificate digest (and the module label it covers) is part of the
  // address: core kinds sharing one PDL source produce identical bytecode
  // but distinct attestations, and each attestation must bind its own
  // artifact descriptor.
  const uint64_t ModDigest = moduleDigest(M);
  const uint64_t Key = fnv1a64("native|" + u64Str(kAbiWord) + "|" +
                               CC.Identity + "|" + kFlags + "|" +
                               hexDigest(ModDigest) + "|" + O.ModuleName +
                               "|" + hexDigest(O.CertDigest));
  const std::string Dir = O.CacheDir.empty() ? cacheDir() : O.CacheDir;
  std::string DirErr;
  if (!ensureDir(Dir, &DirErr))
    return Degrade("cannot create artifact dir " + Dir + ": " + DirErr);
  const std::string Stem = Dir + "/" + hexDigest(Key);
  const std::string SoPath = Stem + ".so", MetaPath = Stem + ".meta";
  const std::string CppPath = Stem + ".cpp", LogPath = Stem + ".log";

  // The emission order is canonical (sorted pipes, deque order), so the
  // symbol list derived here matches the one a cached descriptor recorded.
  EmitResult Emitted = emitModule(M);
  std::vector<std::string> Syms;
  Syms.reserve(Emitted.Symbols.size());
  std::string SymList;
  for (const auto &[Sym, Prog] : Emitted.Symbols) {
    Syms.push_back(Sym);
    SymList += Sym;
    SymList += '\n';
  }

  // Warm path: descriptor + .so already on disk and fully consistent.
  bool CacheHit = false;
  if (fileExists(SoPath)) {
    if (std::optional<std::string> Bytes = readFileBytes(MetaPath)) {
      std::vector<std::string> Sec;
      std::string DecErr;
      if (decodeRecord(*Bytes, kNativeArtifactMagic, &Sec, &DecErr) &&
          Sec.size() == 5 && Sec[0] == u64Str(kAbiWord) &&
          Sec[1] == CC.Identity + "|" + kFlags &&
          Sec[2] == hexDigest(ModDigest) &&
          Sec[3] == hexDigest(O.CertDigest) && Sec[4] == SymList)
        CacheHit = true;
    }
  }

  if (!CacheHit) {
    // Cold path: write the TU, drive the compiler, publish atomically.
    std::string WErr;
    if (!writeFileAtomic(CppPath, Emitted.Source, &WErr))
      return Degrade("cannot write " + CppPath + ": " + WErr);
    const std::string TmpSo =
        SoPath + ".tmp." + std::to_string(uint64_t(getpid()));
    std::string Cmd = CC.Cmd + " " + kFlags + " -o " + TmpSo + " " + CppPath +
                      " > " + LogPath + " 2>&1";
    auto T0 = std::chrono::steady_clock::now();
    int Rc = std::system(Cmd.c_str());
    auto T1 = std::chrono::steady_clock::now();
    counters().CompileUs +=
        std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
            .count();
    if (Rc != 0) {
      ::unlink(TmpSo.c_str());
      std::string Log;
      if (std::optional<std::string> L = readFileBytes(LogPath))
        Log = L->substr(0, 400);
      return Degrade("native compile failed (" + CC.Cmd + " exit " +
                     std::to_string(Rc) + "): " + Log);
    }
    if (::rename(TmpSo.c_str(), SoPath.c_str()) != 0) {
      ::unlink(TmpSo.c_str());
      return Degrade("cannot publish " + SoPath + ": " +
                     std::strerror(errno));
    }
    std::string Meta = encodeRecord(
        kNativeArtifactMagic,
        {u64Str(kAbiWord), CC.Identity + "|" + kFlags, hexDigest(ModDigest),
         hexDigest(O.CertDigest), SymList});
    if (!writeFileAtomic(MetaPath, Meta, &WErr)) {
      ::unlink(SoPath.c_str());
      return Degrade("cannot write " + MetaPath + ": " + WErr);
    }
    counters().Compiles++;
  }

  std::vector<NativeThunk> Thunks;
  std::string OpenErr;
  void *Handle = openAndVerify(SoPath, Syms, Thunks, &OpenErr);
  if (!Handle && CacheHit) {
    // A stale or corrupt cached artifact is not fatal: evict and recompile
    // once by re-entering the cold path on a recursive call.
    ::unlink(SoPath.c_str());
    ::unlink(MetaPath.c_str());
    return attachModule(M, O, Err);
  }
  if (!Handle)
    return Degrade("artifact rejected: " + OpenErr);

  for (size_t I = 0; I != Emitted.Symbols.size(); ++I)
    const_cast<ExprProgram *>(Emitted.Symbols[I].second)->Native = Thunks[I];
  M.NativeLib = std::shared_ptr<void>(Handle, [](void *H) { dlclose(H); });
  M.NativeCompiler = CC.Identity;
  M.NativeCacheHit = CacheHit;
  if (CacheHit)
    counters().CacheHits++;
  counters().Attached++;
  return true;
}
