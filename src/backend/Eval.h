//===- Eval.h - PDL expression evaluation ----------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates type-checked PDL expressions over Bits values. Shared between
/// the sequential reference interpreter (the one-instruction-at-a-time
/// oracle) and the pipelined circuit executor; the two differ only in how
/// they service memory reads and extern calls, injected via EvalHooks.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_EVAL_H
#define PDL_BACKEND_EVAL_H

#include "passes/StageGraph.h"
#include "pdl/AST.h"
#include "support/Bits.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace pdl {
namespace backend {

/// A thread's value environment. Reads of names with no binding evaluate to
/// zero (hardware don't-care on paths that skipped the definition).
///
/// Stored as a flat insertion-ordered vector rather than a tree map: a
/// thread carries a handful of short (SSO) variable names, so a linear
/// probe beats pointer-chasing — and, decisive for the executor's per-cycle
/// probe pass which duplicates the environment, copying is one buffer
/// allocation instead of one node allocation per binding.
class Env {
public:
  using value_type = std::pair<std::string, Bits>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  iterator begin() { return Slots.begin(); }
  iterator end() { return Slots.end(); }
  const_iterator begin() const { return Slots.begin(); }
  const_iterator end() const { return Slots.end(); }
  size_t size() const { return Slots.size(); }
  bool empty() const { return Slots.empty(); }

  iterator find(const std::string &K) {
    iterator It = Slots.begin(), E = Slots.end();
    for (; It != E; ++It)
      if (It->first == K)
        break;
    return It;
  }
  const_iterator find(const std::string &K) const {
    return const_cast<Env *>(this)->find(K);
  }

  /// Returns the binding for \p K, creating a default-constructed Bits
  /// (value 0, width 1) if absent — same contract as the map it replaces.
  Bits &operator[](const std::string &K) {
    iterator It = find(K);
    if (It != Slots.end())
      return It->second;
    Slots.emplace_back(K, Bits());
    return Slots.back().second;
  }

private:
  std::vector<value_type> Slots;
};

struct EvalHooks {
  /// Services a combinational memory read. The expression node identifies
  /// the access site (the executor uses it to find the thread's lock
  /// reservation); \p Addr is the evaluated address.
  std::function<Bits(const ast::MemReadExpr &Site, uint64_t Addr)> ReadMem;

  /// Services an extern-module method call.
  std::function<Bits(const ast::ExternCallExpr &Site,
                     const std::vector<Bits> &Args)>
      CallExtern;
};

/// Evaluates \p E in \p Env. \p Prog resolves def-function calls.
Bits evalExpr(const ast::Expr &E, const Env &Env, const ast::Program &Prog,
              const EvalHooks &Hooks);

/// Evaluates a stage-graph guard (conjunction of branch conditions).
bool evalGuard(const Guard &G, const Env &Env, const ast::Program &Prog,
               const EvalHooks &Hooks);

} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_EVAL_H
