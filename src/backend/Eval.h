//===- Eval.h - PDL expression evaluation ----------------------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates type-checked PDL expressions over Bits values. Shared between
/// the sequential reference interpreter (the one-instruction-at-a-time
/// oracle) and the pipelined circuit executor; the two differ only in how
/// they service memory reads and extern calls, injected via EvalHooks.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_EVAL_H
#define PDL_BACKEND_EVAL_H

#include "passes/StageGraph.h"
#include "pdl/AST.h"
#include "support/Bits.h"

#include <functional>
#include <map>
#include <string>

namespace pdl {
namespace backend {

/// A thread's value environment. Reads of names with no binding evaluate to
/// zero (hardware don't-care on paths that skipped the definition).
using Env = std::map<std::string, Bits>;

struct EvalHooks {
  /// Services a combinational memory read. The expression node identifies
  /// the access site (the executor uses it to find the thread's lock
  /// reservation); \p Addr is the evaluated address.
  std::function<Bits(const ast::MemReadExpr &Site, uint64_t Addr)> ReadMem;

  /// Services an extern-module method call.
  std::function<Bits(const ast::ExternCallExpr &Site,
                     const std::vector<Bits> &Args)>
      CallExtern;
};

/// Evaluates \p E in \p Env. \p Prog resolves def-function calls.
Bits evalExpr(const ast::Expr &E, const Env &Env, const ast::Program &Prog,
              const EvalHooks &Hooks);

/// Evaluates a stage-graph guard (conjunction of branch conditions).
bool evalGuard(const Guard &G, const Env &Env, const ast::Program &Prog,
               const EvalHooks &Hooks);

} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_EVAL_H
