//===- Snapshot.cpp - Whole-system state serialization ---------------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// System::snapshot()/restore(): a versioned, digest-stamped, CRC-guarded
/// binary image of every piece of dynamic simulator state. The contract is
/// resume equivalence: restoring a snapshot into a freshly elaborated
/// System (same program, same ElabConfig, same externs bound) and running
/// it to completion produces byte-identical stats, traces, and events to a
/// run that was never interrupted. The crash-safe simulation service
/// (pdlsimd --checkpoint-every) is built on this.
///
/// Layout: [magic u32][version u32][configDigest u64][payload][crc32 u32],
/// where the CRC covers everything before it. Every container with
/// nondeterministic iteration order is serialized through a sorted view so
/// identical logical state always produces identical bytes — that is what
/// lets tests compare snapshots with memcmp.
///
/// Snapshots are taken at cycle boundaries only (outside cycle()), where
/// the deferred-enqueue and deferred-tag buffers are structurally empty;
/// only the delayed memory-response deliveries persist across cycles.
///
//===----------------------------------------------------------------------===//

#include "backend/System.h"

#include <algorithm>
#include <cassert>

using namespace pdl;
using namespace pdl::backend;
using support::BinReader;
using support::BinWriter;

namespace {

constexpr uint32_t kMagic = 0x50444C53;   // "PDLS"
constexpr uint32_t kVersion = 1;

uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void saveTrace(BinWriter &W, const ThreadTrace &T) {
  W.u32(static_cast<uint32_t>(T.Args.size()));
  for (const Bits &A : T.Args)
    W.bits(A);
  W.u32(static_cast<uint32_t>(T.Writes.size()));
  for (const auto &[Mem, Addr, Val] : T.Writes) {
    W.str(Mem);
    W.u64(Addr);
    W.u64(Val);
  }
  W.b(T.Output.has_value());
  if (T.Output)
    W.bits(*T.Output);
}

bool loadTrace(BinReader &R, ThreadTrace &T) {
  uint32_t NArgs = R.u32();
  T.Args.clear();
  for (uint32_t I = 0; I != NArgs && R.ok(); ++I)
    T.Args.push_back(R.bits());
  uint32_t NWrites = R.u32();
  T.Writes.clear();
  for (uint32_t I = 0; I != NWrites && R.ok(); ++I) {
    std::string Mem = R.str();
    uint64_t Addr = R.u64();
    uint64_t Val = R.u64();
    T.Writes.emplace_back(std::move(Mem), Addr, Val);
  }
  T.Output.reset();
  if (R.b())
    T.Output = R.bits();
  return R.ok();
}

void savePlan(BinWriter &W, const hw::FaultPlan &P) {
  W.str(hw::printFaultPlan(P));
}

bool loadPlan(BinReader &R, hw::FaultPlan &P) {
  std::string S = R.str();
  if (!R.ok())
    return false;
  std::optional<hw::FaultPlan> Parsed = hw::parseFaultPlan(S);
  if (!Parsed) {
    R.fail();
    return false;
  }
  P = *Parsed;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural digest
//===----------------------------------------------------------------------===//

uint64_t System::configDigest() const {
  BinWriter W;
  W.u32(kVersion);
  W.u32(Cfg.FifoDepth);
  W.u32(Cfg.EntryDepth);
  W.u32(Cfg.TagDepth);
  W.u32(Cfg.SpecCapacity);
  W.u8(static_cast<uint8_t>(Cfg.DefaultLock));
  W.b(TreeMode);
  W.b(FusedMode); // snapshot resume is same-mode, like TreeMode
  W.b(NativeMode); // the requested mode, even if attach degraded to fused
  W.u32(static_cast<uint32_t>(Cfg.LockChoice.size()));
  for (const auto &[Key, Kind] : Cfg.LockChoice) {
    W.str(Key);
    W.u8(static_cast<uint8_t>(Kind));
  }
  W.u32(static_cast<uint32_t>(Cfg.MemLatency.size()));
  for (const auto &[Key, Lat] : Cfg.MemLatency) {
    W.str(Key);
    W.u32(Lat);
  }
  W.u32(static_cast<uint32_t>(Cfg.MemModels.size()));
  for (const auto &[Key, MC] : Cfg.MemModels) {
    W.str(Key);
    W.u8(static_cast<uint8_t>(MC.K));
    W.u32(MC.FixedLat);
    W.b(MC.SinglePorted);
    W.u32(MC.Cache.Sets);
    W.u32(MC.Cache.Ways);
    W.u32(MC.Cache.LineElems);
    W.u32(MC.Cache.HitLatency);
    W.u32(MC.Cache.MissPenalty);
    W.u32(MC.Cache.WritebackPenalty);
    W.u32(MC.Cache.MshrCount);
    W.b(MC.Cache.WriteBack);
    W.str(MC.ShareTag);
    W.u32(MC.ShareLatency);
  }
  W.u32(static_cast<uint32_t>(PipeSeq.size()));
  for (const PipeInstance *PI : PipeSeq) {
    W.str(PI->Name);
    const StageGraph &G = PI->CP->Graph;
    W.u32(static_cast<uint32_t>(G.Stages.size()));
    for (const Stage &S : G.Stages)
      W.str(S.Name);
    W.u32(static_cast<uint32_t>(PI->Prog->InitFrame.size()));
    W.u32(static_cast<uint32_t>(PI->Mems.size()));
    for (const auto &[Name, M] : PI->Mems) {
      W.str(Name);
      W.u32(M->elemWidth());
      W.u32(M->addrWidth());
      W.b(M->isSync());
    }
  }
  return fnv1a64(W.buffer());
}

//===----------------------------------------------------------------------===//
// Per-component codecs
//===----------------------------------------------------------------------===//

void System::saveThread(BinWriter &W, const Thread &T) const {
  W.u64(T.Tid);
  W.u32(static_cast<uint32_t>(T.Frame.size()));
  for (const Bits &V : T.Frame)
    W.bits(V);
  W.u64(T.MySpec);
  W.u32(static_cast<uint32_t>(T.Res.size()));
  for (const auto &[Key, Id] : T.Res) {
    W.str(Key);
    W.u64(Id);
  }
  W.u32(static_cast<uint32_t>(T.ResInfo.size()));
  for (const auto &[Id, Rec] : T.ResInfo) {
    W.u64(Id);
    W.str(Rec.Mem);
    W.str(Rec.Key);
    W.u32(Rec.MemI);
    W.u64(Rec.Addr);
    W.u8(static_cast<uint8_t>(Rec.Mode));
    W.b(Rec.Written);
    W.u64(Rec.WrittenVal);
  }
  W.u32(static_cast<uint32_t>(T.Handles.size()));
  for (const auto &[Name, Id] : T.Handles) {
    W.str(Name);
    W.u64(Id);
  }
  W.u32(static_cast<uint32_t>(T.Ckpts.size()));
  for (const auto &[Mem, Id] : T.Ckpts) {
    W.str(Mem);
    W.u64(Id);
  }
  W.u32(T.UnresolvedSpec);
  W.u32(T.PendingResp);
  saveTrace(W, T.Trace);
  W.b(T.HasCaller);
  W.u32(T.CallerP ? T.CallerP->Index : ~0u);
  W.u64(T.CallerTid);
  W.u16(T.CallerSlot);
}

bool System::loadThread(BinReader &R, Thread &T) {
  T.Tid = R.u64();
  uint32_t FrameN = R.u32();
  if (!R.ok())
    return false;
  T.Frame.clear();
  T.Frame.reserve(FrameN);
  for (uint32_t I = 0; I != FrameN && R.ok(); ++I)
    T.Frame.push_back(R.bits());
  T.MySpec = R.u64();
  uint32_t NRes = R.u32();
  T.Res.clear();
  for (uint32_t I = 0; I != NRes && R.ok(); ++I) {
    std::string Key = R.str();
    T.Res[Key] = R.u64();
  }
  uint32_t NInfo = R.u32();
  T.ResInfo.clear();
  for (uint32_t I = 0; I != NInfo && R.ok(); ++I) {
    hw::ResId Id = R.u64();
    ResRec Rec;
    Rec.Mem = R.str();
    Rec.Key = R.str();
    Rec.MemI = R.u32();
    Rec.Addr = R.u64();
    uint8_t Mode = R.u8();
    if (Mode > 2)
      return false;
    Rec.Mode = static_cast<hw::Access>(Mode);
    Rec.Written = R.b();
    Rec.WrittenVal = R.u64();
    T.ResInfo[Id] = std::move(Rec);
  }
  uint32_t NHandles = R.u32();
  T.Handles.clear();
  for (uint32_t I = 0; I != NHandles && R.ok(); ++I) {
    std::string Name = R.str();
    T.Handles[Name] = R.u64();
  }
  uint32_t NCkpts = R.u32();
  T.Ckpts.clear();
  for (uint32_t I = 0; I != NCkpts && R.ok(); ++I) {
    std::string Mem = R.str();
    T.Ckpts[Mem] = R.u64();
  }
  T.UnresolvedSpec = R.u32();
  T.PendingResp = R.u32();
  if (!loadTrace(R, T.Trace))
    return false;
  T.HasCaller = R.b();
  uint32_t CallerIdx = R.u32();
  if (CallerIdx == ~0u) {
    T.CallerP = nullptr;
  } else {
    if (CallerIdx >= PipeSeq.size())
      return false;
    T.CallerP = PipeSeq[CallerIdx];
  }
  T.CallerTid = R.u64();
  T.CallerSlot = R.u16();
  return R.ok();
}

void System::saveStats(BinWriter &W) const {
  W.u64(Stats.Cycles);
  W.u32(static_cast<uint32_t>(Stats.Retired.size()));
  for (const auto &[Pipe, N] : Stats.Retired) {
    W.str(Pipe);
    W.u64(N);
  }
  W.u32(static_cast<uint32_t>(Stats.Killed.size()));
  for (const auto &[Pipe, N] : Stats.Killed) {
    W.str(Pipe);
    W.u64(N);
  }
  W.u64(Stats.StageFires);
  W.u64(Stats.ProbeAttempts);
  W.u64(Stats.StageKills);
  W.u64(Stats.StallLock);
  W.u64(Stats.StallSpec);
  W.u64(Stats.StallResponse);
  W.u64(Stats.StallBackpressure);
  W.b(Stats.Deadlocked);
  W.u8(static_cast<uint8_t>(Stats.Outcome));
  W.u64(Stats.FaultsInjected);
}

bool System::loadStats(BinReader &R) {
  Stats.Cycles = R.u64();
  uint32_t NRetired = R.u32();
  Stats.Retired.clear();
  for (uint32_t I = 0; I != NRetired && R.ok(); ++I) {
    std::string Pipe = R.str();
    Stats.Retired[Pipe] = R.u64();
  }
  uint32_t NKilled = R.u32();
  Stats.Killed.clear();
  for (uint32_t I = 0; I != NKilled && R.ok(); ++I) {
    std::string Pipe = R.str();
    Stats.Killed[Pipe] = R.u64();
  }
  Stats.StageFires = R.u64();
  Stats.ProbeAttempts = R.u64();
  Stats.StageKills = R.u64();
  Stats.StallLock = R.u64();
  Stats.StallSpec = R.u64();
  Stats.StallResponse = R.u64();
  Stats.StallBackpressure = R.u64();
  Stats.Deadlocked = R.b();
  uint8_t Outcome = R.u8();
  if (Outcome > static_cast<uint8_t>(RunOutcome::TimedOut))
    return false;
  Stats.Outcome = static_cast<RunOutcome>(Outcome);
  Stats.FaultsInjected = R.u64();
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Hardware-delegated fault arms
//===----------------------------------------------------------------------===//

uint64_t System::hwArmRemaining(const hw::FaultPlan &Plan) {
  PipeInstance &P = pipe(Plan.Pipe);
  switch (Plan.Kind) {
  case hw::FaultKind::FifoDropThread:
  case hw::FaultKind::FifoDupThread:
  case hw::FaultKind::FifoCorruptPayload: {
    hw::Fifo<Thread> *F = &P.Entry;
    if (!Plan.FromStage.empty() || !Plan.ToStage.empty()) {
      unsigned From = ~0u, To = ~0u;
      for (const Stage &S : P.CP->Graph.Stages) {
        if (S.Name == Plan.FromStage)
          From = S.Id;
        if (S.Name == Plan.ToStage)
          To = S.Id;
      }
      auto It = P.EdgeFifos.find({From, To});
      assert(It != P.EdgeFifos.end() && "fault plan names an unknown edge");
      F = &It->second;
    }
    if (Plan.Kind == hw::FaultKind::FifoDropThread)
      return F->dropArm();
    if (Plan.Kind == hw::FaultKind::FifoDupThread)
      return F->dupArm();
    return F->corruptArm();
  }
  case hw::FaultKind::HwDropLockRelease: {
    hw::HazardLock *L = lockFor(P, Plan.Mem);
    return L ? L->dropReleaseArm() : 0;
  }
  case hw::FaultKind::SuppressMispredict:
    return P.Spec.suppressArm();
  case hw::FaultKind::SkipCascade:
    return P.Spec.skipCascadeArm();
  default:
    return 0;
  }
}

//===----------------------------------------------------------------------===//
// snapshot()
//===----------------------------------------------------------------------===//

std::string System::snapshot() {
  elaborateLocks();
  // Cycle-boundary contract: the deferred-enqueue and deferred-tag buffers
  // are flushed by applyEndOfCycle() before Stats.Cycles advances; only
  // delayed memory-response deliveries legitimately cross a boundary.
  assert(PendingEnqs.empty() && PendingTags.empty() &&
         "snapshot taken mid-cycle");

  BinWriter W;
  W.u32(kMagic);
  W.u32(kVersion);
  W.u64(configDigest());

  saveStats(W);
  W.b(Halted);
  W.b(DrainOnHalt);
  W.b(HaltTid.has_value());
  W.u64(HaltTid.value_or(0));
  W.u64(HaltCycle);
  W.b(HaltWatch.has_value());
  if (HaltWatch) {
    W.u32(std::get<0>(*HaltWatch));
    W.u32(std::get<1>(*HaltWatch));
    W.u64(std::get<2>(*HaltWatch));
  }
  W.u64(NextTid);
  W.u64(IdleStreak);
  W.b(FiredThisCycle);

  W.u32(static_cast<uint32_t>(PipeSeq.size()));
  for (const PipeInstance *PI : PipeSeq) {
    W.str(PI->Name);
    W.u32(static_cast<uint32_t>(PI->Entry.size()));
    for (const Thread &T : PI->Entry)
      saveThread(W, T);
    W.u32(static_cast<uint32_t>(PI->EdgeFifos.size()));
    for (const auto &[Edge, F] : PI->EdgeFifos) {
      W.u32(Edge.first);
      W.u32(Edge.second);
      W.u32(static_cast<uint32_t>(F.size()));
      for (const Thread &T : F)
        saveThread(W, T);
    }
    W.u32(static_cast<uint32_t>(PI->TagQueues.size()));
    for (const std::deque<TagTok> &Tags : PI->TagQueues) {
      W.u32(static_cast<uint32_t>(Tags.size()));
      for (const TagTok &Tok : Tags) {
        W.u32(Tok.Tag);
        W.u64(Tok.Tid);
      }
    }
    W.u32(static_cast<uint32_t>(PI->Regions.size()));
    for (const LockRegion &Reg : PI->Regions) {
      W.b(Reg.OccupantTid.has_value());
      W.u64(Reg.OccupantTid.value_or(0));
    }
    W.u32(static_cast<uint32_t>(PI->Mems.size()));
    for (const auto &[Name, M] : PI->Mems) {
      W.str(Name);
      M->saveState(W);
    }
    W.u32(static_cast<uint32_t>(PI->Locks.size()));
    for (const auto &[Name, L] : PI->Locks) {
      W.str(Name);
      L->saveState(W);
    }
    PI->Spec.saveState(W);
    W.u32(static_cast<uint32_t>(PI->Retired.size()));
    for (const ThreadTrace &T : PI->Retired)
      saveTrace(W, T);
  }

  W.u32(static_cast<uint32_t>(Deliveries.size()));
  for (const Delivery &D : Deliveries) {
    W.u64(D.DueCycle);
    W.u32(D.P->Index);
    W.u64(D.Tid);
    W.u16(D.Slot);
    W.bits(D.Value);
  }

  W.u32(static_cast<uint32_t>(Externs.size()));
  for (const auto &[Name, Module] : Externs) {
    W.str(Name);
    Module->saveState(W);
  }

  W.u32(static_cast<uint32_t>(OwnedModels.size()));
  for (const auto &M : OwnedModels)
    M->saveState(W);
  W.u32(static_cast<uint32_t>(SharedBackings.size()));
  for (const auto &[Tag, M] : SharedBackings) {
    W.str(Tag);
    M->saveState(W);
  }

  W.u32(static_cast<uint32_t>(Faults.size()));
  for (const ArmedFault &F : Faults) {
    savePlan(W, F.Plan);
    W.u64(F.Countdown);
    W.b(F.Fired);
    W.u64(F.RescuedTid);
  }
  W.u32(static_cast<uint32_t>(HwArmedPlans.size()));
  for (const hw::FaultPlan &Plan : HwArmedPlans) {
    savePlan(W, Plan);
    W.u64(hwArmRemaining(Plan));
  }

  std::string Blob = W.take();
  uint32_t Crc = support::crc32(Blob);
  BinWriter Tail;
  Tail.u32(Crc);
  Blob += Tail.buffer();
  return Blob;
}

//===----------------------------------------------------------------------===//
// restore()
//===----------------------------------------------------------------------===//

bool System::restore(const std::string &Blob, std::string *Err) {
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (Blob.size() < 20)
    return Fail("snapshot truncated");
  BinReader Tail(Blob.data() + Blob.size() - 4, 4);
  if (support::crc32(Blob.data(), Blob.size() - 4) != Tail.u32())
    return Fail("snapshot CRC mismatch");

  BinReader R(Blob.data(), Blob.size() - 4);
  if (R.u32() != kMagic)
    return Fail("not a PDL snapshot");
  if (R.u32() != kVersion)
    return Fail("unsupported snapshot version");
  elaborateLocks();
  if (R.u64() != configDigest())
    return Fail("snapshot was taken under a different configuration");

  if (!loadStats(R))
    return Fail("corrupt stats section");
  Halted = R.b();
  DrainOnHalt = R.b();
  HaltTid.reset();
  bool HasHaltTid = R.b();
  uint64_t HaltTidV = R.u64();
  if (HasHaltTid)
    HaltTid = HaltTidV;
  HaltCycle = R.u64();
  HaltWatch.reset();
  if (R.b()) {
    uint32_t P = R.u32(), M = R.u32();
    uint64_t A = R.u64();
    if (P >= PipeSeq.size())
      return Fail("corrupt halt watch");
    HaltWatch = std::make_tuple(P, M, A);
  }
  NextTid = R.u64();
  IdleStreak = R.u64();
  FiredThisCycle = R.b();
  if (!R.ok())
    return Fail("snapshot truncated");

  PendingEnqs.clear();
  PendingTags.clear();
  Diag = DeadlockDiagnosis();

  if (R.u32() != PipeSeq.size())
    return Fail("pipe count mismatch");
  for (PipeInstance *PI : PipeSeq) {
    if (R.str() != PI->Name)
      return Fail("pipe name mismatch");
    // The lazily bound per-pipe counter pointers target Stats map nodes
    // that loadStats() just rebuilt; they re-bind on the next retire/kill.
    // Binding them eagerly here would insert zero-count entries for pipes
    // that never retire, perturbing the final-state byte image.
    PI->RetiredCtr = nullptr;
    PI->KilledCtr = nullptr;

    uint32_t NEntry = R.u32();
    if (!R.ok() || NEntry > PI->Entry.capacity())
      return Fail("corrupt entry queue");
    std::deque<Thread> Entry;
    for (uint32_t I = 0; I != NEntry; ++I) {
      Thread T;
      if (!loadThread(R, T))
        return Fail("corrupt thread");
      Entry.push_back(std::move(T));
    }
    PI->Entry.restoreItems(std::move(Entry));

    if (R.u32() != PI->EdgeFifos.size())
      return Fail("edge FIFO count mismatch");
    for (auto &[Edge, F] : PI->EdgeFifos) {
      if (R.u32() != Edge.first || R.u32() != Edge.second)
        return Fail("edge FIFO key mismatch");
      uint32_t N = R.u32();
      if (!R.ok() || N > F.capacity())
        return Fail("corrupt edge FIFO");
      std::deque<Thread> Items;
      for (uint32_t I = 0; I != N; ++I) {
        Thread T;
        if (!loadThread(R, T))
          return Fail("corrupt thread");
        Items.push_back(std::move(T));
      }
      F.restoreItems(std::move(Items));
    }

    if (R.u32() != PI->TagQueues.size())
      return Fail("tag queue count mismatch");
    for (std::deque<TagTok> &Tags : PI->TagQueues) {
      uint32_t N = R.u32();
      if (!R.ok())
        return Fail("corrupt tag queue");
      Tags.clear();
      for (uint32_t I = 0; I != N; ++I) {
        TagTok Tok;
        Tok.Tag = R.u32();
        Tok.Tid = R.u64();
        Tags.push_back(Tok);
      }
    }

    if (R.u32() != PI->Regions.size())
      return Fail("lock region count mismatch");
    for (LockRegion &Reg : PI->Regions) {
      Reg.OccupantTid.reset();
      bool Has = R.b();
      uint64_t Tid = R.u64();
      if (Has)
        Reg.OccupantTid = Tid;
    }

    if (R.u32() != PI->Mems.size())
      return Fail("memory count mismatch");
    for (auto &[Name, M] : PI->Mems) {
      if (R.str() != Name)
        return Fail("memory name mismatch");
      if (!M->loadState(R))
        return Fail("corrupt memory contents");
    }

    if (R.u32() != PI->Locks.size())
      return Fail("lock count mismatch");
    for (auto &[Name, L] : PI->Locks) {
      if (R.str() != Name)
        return Fail("lock name mismatch");
      if (!L->loadState(R))
        return Fail("corrupt lock state");
    }

    if (!PI->Spec.loadState(R))
      return Fail("corrupt speculation table");

    uint32_t NRetired = R.u32();
    if (!R.ok())
      return Fail("snapshot truncated");
    PI->Retired.clear();
    for (uint32_t I = 0; I != NRetired; ++I) {
      ThreadTrace T;
      if (!loadTrace(R, T))
        return Fail("corrupt retired trace");
      PI->Retired.push_back(std::move(T));
    }
  }

  uint32_t NDeliveries = R.u32();
  if (!R.ok())
    return Fail("snapshot truncated");
  Deliveries.clear();
  for (uint32_t I = 0; I != NDeliveries; ++I) {
    Delivery D;
    D.DueCycle = R.u64();
    uint32_t PIdx = R.u32();
    if (!R.ok() || PIdx >= PipeSeq.size())
      return Fail("corrupt delivery");
    D.P = PipeSeq[PIdx];
    D.Tid = R.u64();
    D.Slot = R.u16();
    D.Value = R.bits();
    Deliveries.push_back(std::move(D));
  }

  uint32_t NExterns = R.u32();
  if (!R.ok() || NExterns != Externs.size())
    return Fail("extern module set mismatch");
  for (auto &[Name, Module] : Externs) {
    if (R.str() != Name)
      return Fail("extern module set mismatch");
    if (!Module->loadState(R))
      return Fail("corrupt extern module state");
  }

  uint32_t NModels = R.u32();
  if (!R.ok() || NModels != OwnedModels.size())
    return Fail("memory model count mismatch");
  for (size_t I = 0; I != OwnedModels.size(); ++I)
    if (!OwnedModels[I]->loadState(R))
      return Fail(("corrupt memory model state (model " + std::to_string(I) +
                   ", " + OwnedModels[I]->kindName() + ")")
                      .c_str());
  uint32_t NShared = R.u32();
  if (!R.ok() || NShared != SharedBackings.size())
    return Fail("shared backing count mismatch");
  for (auto &[Tag, M] : SharedBackings) {
    if (R.str() != Tag)
      return Fail("shared backing tag mismatch");
    if (!M->loadState(R))
      return Fail("corrupt shared backing state");
  }

  uint32_t NFaults = R.u32();
  if (!R.ok())
    return Fail("snapshot truncated");
  Faults.clear();
  for (uint32_t I = 0; I != NFaults; ++I) {
    ArmedFault F;
    if (!loadPlan(R, F.Plan))
      return Fail("corrupt fault plan");
    F.Countdown = R.u64();
    F.Fired = R.b();
    F.RescuedTid = R.u64();
    Faults.push_back(std::move(F));
  }

  uint32_t NHwPlans = R.u32();
  if (!R.ok())
    return Fail("snapshot truncated");
  std::vector<std::pair<hw::FaultPlan, uint64_t>> Pending;
  for (uint32_t I = 0; I != NHwPlans; ++I) {
    hw::FaultPlan Plan;
    if (!loadPlan(R, Plan))
      return Fail("corrupt fault plan");
    uint64_t Remaining = R.u64();
    Pending.emplace_back(std::move(Plan), Remaining);
  }
  if (!R.done())
    return Fail(R.ok() ? "snapshot has trailing bytes"
                       : "snapshot truncated");

  // Re-arm hardware-delegated fault plans with their remaining counts
  // (already-fired arms stay disarmed; their effect is in the state).
  HwArmedPlans.clear();
  for (auto &[Plan, Remaining] : Pending) {
    if (Remaining == 0)
      continue;
    Plan.Nth = Remaining;
    armFault(Plan); // re-records the plan in HwArmedPlans
  }
  return true;
}
