//===- Fuse.h - Superinstruction fusion over the bytecode IR ----*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second lowering level below the portable bytecode: a peephole pass
/// that folds hot multi-instruction sequences into the basic-block
/// superinstructions of Bytecode.h (compare→branch, guard epilogues,
/// select diamonds, constant-operand binops, op→return tails). Fusion runs
/// after Compile.cpp's folding/CSE, is opt-in per consumer
/// (--eval=fused / PDL_EVAL_FUSED), and never changes frame layout, pool
/// contents, or hook-call order — so snapshots, golden digests, and the
/// service result bytes are identical in fused and bytecode mode.
///
/// Safety is not taken on trust: every fused module re-certifies under
/// src/tv/ (BcEval executes each superinstruction as its documented
/// expansion), and PDL_TV_MUTATE=fuse-window seeds the classic fusion
/// bugs — folding a compare whose result is still live past the branch,
/// and leaving a fused branch target in the pre-deletion index space —
/// which certification must refute.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_FUSE_H
#define PDL_BACKEND_FUSE_H

#include "backend/Bytecode.h"

#include <cstdint>
#include <memory>

namespace pdl {
namespace backend {
namespace bc {

/// Static fusion counters for one program or module, reported on bench and
/// fuzz rows as `fused_ops`.
struct FuseStats {
  uint64_t CmpBr = 0;      // compare + conditional branch
  uint64_t CmpRetBool = 0; // compare + guard epilogue (cmp;br;ret;ret)
  uint64_t RetBool = 0;    // branch + guard epilogue (br;ret;ret)
  uint64_t Select = 0;     // full ternary diamond with Copy/Const arms
  uint64_t BinK = 0;       // pool-constant operand folded into a binop
  uint64_t RetOp = 0;      // pure op + return of its result
  uint64_t DeadConst = 0;  // Const stores left dead by the folds above

  uint64_t fusedInsns() const {
    return CmpBr + CmpRetBool + RetBool + Select + BinK + RetOp;
  }
  uint64_t removedInsns() const {
    // Each superinstruction replaces its window; dead Consts vanish.
    return CmpBr + 2 * CmpRetBool + RetBool + 3 * Select + RetOp + DeadConst;
  }
  FuseStats &operator+=(const FuseStats &O) {
    CmpBr += O.CmpBr;
    CmpRetBool += O.CmpRetBool;
    RetBool += O.RetBool;
    Select += O.Select;
    BinK += O.BinK;
    RetOp += O.RetOp;
    DeadConst += O.DeadConst;
    return *this;
  }
};

/// Fuses one program. Pure: \p In is unchanged, the result shares no code
/// storage with it (Pool/site tables are copied — they are value tables).
/// Idempotent; a program with nothing to fuse comes back identical.
ExprProgram fuseProgram(const ExprProgram &In, FuseStats *Stats = nullptr);

/// Fuses every program of a compiled module, rebuilding the per-pipe
/// pointer tables (stage mirrors, ExprIndex) against the fused storage.
/// The input module is unchanged and remains independently usable — it is
/// the differential oracle for the fused artifact.
std::shared_ptr<const ModuleIR> fuseModule(const ModuleIR &In,
                                           FuseStats *Stats = nullptr);

/// True when the environment requests fused evaluation (PDL_EVAL_FUSED,
/// the pdlc/pdlsimd/pdlfuzz --eval=fused surface). PDL_EVAL_TREE takes
/// precedence where both are set — the tree walker bypasses the bytecode
/// entirely.
bool fusedModeRequested();

/// The dispatch strategy bc::exec was compiled with: "threaded" (computed
/// goto) or "switch" (PDL_NO_COMPUTED_GOTO or a non-GNU compiler).
const char *dispatchModeName();

} // namespace bc
} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_FUSE_H
