//===- Fuse.cpp - Superinstruction fusion over the bytecode IR --------------===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A single linear scan per program. Windows are only folded when
//
//  (a) no branch targets the interior of the window (branch targets are
//      precomputed; branches are forward-only), and
//  (b) every scratch store the fold drops is dead — the slot is never read
//      at a later index. Programs write scratch slots only (Bytecode.h
//      contract) and scratch is define-before-use per program, so a suffix
//      scan within the program is a sound liveness oracle.
//
// Guard epilogues need one extra care: every short-circuit branch of a
// fused guard conjunction targets the shared RetFalse, so that insn can be
// multi-predecessor. The epilogue folds therefore consume only the branch
// and its fallthrough RetTrue; the RetFalse stays put (unreachable when
// the fold took its last predecessor — one dead insn, never executed).
//
//===----------------------------------------------------------------------===//

#include "backend/Fuse.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

using namespace pdl;
using namespace pdl::backend;
using namespace pdl::backend::bc;

namespace {

bool isCmp(Op O) { return O >= Op::Eq && O <= Op::SLe; }

/// Two-source-slot pure ops whose constant operand FusedBinK can read from
/// the pool directly.
bool isBin(Op O) {
  return (O >= Op::Add && O <= Op::SLe) || O == Op::LogAnd || O == Op::LogOr ||
         O == Op::Concat;
}

/// Pure ops FusedRetOp may return directly (no hooks, no control flow).
bool isRetFusable(Op O) {
  return O == Op::Const || O == Op::Copy || isBin(O) || O == Op::LogNot ||
         O == Op::BitNot || O == Op::Neg || O == Op::Slice || O == Op::ZExt ||
         O == Op::SExt;
}

/// Calls \p Fn for every frame slot \p I reads. ZExt/SExt carry a width in
/// C, Slice packs bounds in Imm — neither is a slot.
template <class FnT> void forEachRead(const Insn &I, FnT Fn) {
  switch (I.Opc) {
  case Op::Const:
  case Op::Jump:
  case Op::RetTrue:
  case Op::RetFalse:
    break;
  case Op::Copy:
  case Op::LogNot:
  case Op::BitNot:
  case Op::Neg:
  case Op::Slice:
  case Op::ZExt:
  case Op::SExt:
  case Op::MemRead:
  case Op::BrFalse:
  case Op::BrTrue:
  case Op::Ret:
  case Op::FusedBinK:
  case Op::FusedRetBool:
    Fn(I.B);
    break;
  case Op::Extern:
    for (uint16_t K = 0; K != I.C; ++K)
      Fn(uint16_t(I.B + K));
    break;
  case Op::FusedSelect:
    Fn(I.B);
    if (!(I.Imm & (1u << 16)))
      Fn(I.C);
    if (!(I.Imm & (1u << 17)))
      Fn(uint16_t(I.Imm & 0xffff));
    break;
  case Op::FusedRetOp:
    // Conservative: treat both fields as reads (Const/unary sub-ops just
    // over-approximate, which only ever blocks a fold).
    Fn(I.B);
    Fn(I.C);
    break;
  default: // all two-source ops, incl. FusedCmpBr / FusedCmpRetBool
    Fn(I.B);
    Fn(I.C);
    break;
  }
}

/// True when \p I writes a frame slot (branches and returns do not).
bool writesSlot(const Insn &I) {
  switch (I.Opc) {
  case Op::BrFalse:
  case Op::BrTrue:
  case Op::Jump:
  case Op::Ret:
  case Op::RetTrue:
  case Op::RetFalse:
  case Op::FusedCmpBr:
  case Op::FusedCmpRetBool:
  case Op::FusedRetBool:
  case Op::FusedRetOp:
    return false;
  default:
    return true;
  }
}

bool hasBranchTarget(Op O) {
  return O == Op::BrFalse || O == Op::BrTrue || O == Op::Jump ||
         O == Op::FusedCmpBr;
}

/// The deliberate-miscompile switch for the translation validator's
/// self-test: PDL_TV_MUTATE=fuse-window seeds the two classic window bugs.
/// It fuses compare→branch windows even when the compare's destination is
/// still live past the branch (the later read sees stale or undefined
/// scratch), and it leaves fused compare-branch targets in the
/// pre-deletion index space (a stale remap). tv::validateModule must
/// refute the result whenever either bug changes behaviour.
bool fuseWindowMutation() {
  const char *E = std::getenv("PDL_TV_MUTATE");
  return E && std::strcmp(E, "fuse-window") == 0;
}

} // namespace

namespace {

/// One linear fold pass. Returns the number of folds performed (window
/// fusions, BinK substitutions, dead-Const drops); the caller iterates to
/// a fixpoint — e.g. a BinK substitution only strands its Const's last
/// read for the *next* pass's liveness scan to notice.
uint64_t fuseOnce(const ExprProgram &In, ExprProgram &Out, FuseStats &S,
                  bool Mutate) {
  const std::vector<Insn> &C = In.Code;
  const size_t N = C.size();
  uint64_t Folds = 0;

  // Predecessor counts per branch target, and the last index reading each
  // slot (suffix-liveness oracle).
  std::vector<uint32_t> Preds(N + 1, 0);
  std::map<uint16_t, size_t> LastRead;
  for (size_t I = 0; I != N; ++I) {
    if (hasBranchTarget(C[I].Opc) && C[I].Imm <= N)
      ++Preds[C[I].Imm];
    forEachRead(C[I], [&](uint16_t Slot) { LastRead[Slot] = I; });
  }
  auto DeadAfter = [&](uint16_t Slot, size_t Ix) {
    auto It = LastRead.find(Slot);
    return It == LastRead.end() || It->second <= Ix;
  };
  auto Interior = [&](size_t Begin, size_t End) { // any preds in (Begin,End)?
    for (size_t I = Begin + 1; I < End; ++I)
      if (Preds[I])
        return true;
    return false;
  };

  Out.Pool = In.Pool;
  Out.MemSites = In.MemSites;
  Out.ExternSites = In.ExternSites;
  Out.Code.clear();
  Out.Code.reserve(N);

  // Which pool constant a slot currently holds, for FusedBinK. Flow-
  // sensitive: reset at every branch target (the state could arrive along
  // several paths).
  std::map<uint16_t, uint32_t> SlotConst;

  std::vector<uint32_t> NewIx(N + 1, 0);
  size_t I = 0;
  while (I < N) {
    if (Preds[I])
      SlotConst.clear();
    NewIx[I] = uint32_t(Out.Code.size());
    const Insn &A = C[I];
    size_t Consumed = 1;
    Insn F{};

    // cmp D,B,C ; Br D,L ; RetTrue   (L: RetFalse)  ->  FusedCmpRetBool
    if (isCmp(A.Opc) && I + 2 < N &&
        (C[I + 1].Opc == Op::BrFalse || C[I + 1].Opc == Op::BrTrue) &&
        C[I + 1].B == A.A && C[I + 2].Opc == Op::RetTrue &&
        C[I + 1].Imm < N && C[C[I + 1].Imm].Opc == Op::RetFalse &&
        !Interior(I, I + 3) && (Mutate || DeadAfter(A.A, I + 1))) {
      F.Opc = Op::FusedCmpRetBool;
      F.A = uint16_t(unsigned(A.Opc) |
                     (C[I + 1].Opc == Op::BrTrue ? 0x100u : 0u));
      F.B = A.B;
      F.C = A.C;
      Consumed = 3;
      ++S.CmpRetBool;
      ++Folds;
    }
    // cmp D,B,C ; Br D,L    ->  FusedCmpBr
    else if (isCmp(A.Opc) && I + 1 < N &&
             (C[I + 1].Opc == Op::BrFalse || C[I + 1].Opc == Op::BrTrue) &&
             C[I + 1].B == A.A && !Interior(I, I + 2) &&
             (Mutate || DeadAfter(A.A, I + 1))) {
      F.Opc = Op::FusedCmpBr;
      F.A = uint16_t(unsigned(A.Opc) |
                     (C[I + 1].Opc == Op::BrTrue ? 0x100u : 0u));
      F.B = A.B;
      F.C = A.C;
      F.Imm = C[I + 1].Imm; // old target; remapped below
      Consumed = 2;
      ++S.CmpBr;
      ++Folds;
    }
    // Br B,L ; RetTrue   (L: RetFalse)  ->  FusedRetBool
    else if ((A.Opc == Op::BrFalse || A.Opc == Op::BrTrue) && I + 1 < N &&
             C[I + 1].Opc == Op::RetTrue && A.Imm < N &&
             C[A.Imm].Opc == Op::RetFalse && !Interior(I, I + 2)) {
      F.Opc = Op::FusedRetBool;
      F.A = A.Opc == Op::BrTrue ? 1 : 0;
      F.B = A.B;
      Consumed = 2;
      ++S.RetBool;
      ++Folds;
    }
    // BrFalse c,Le ; then ; Jump Ld ; Le: else   (Ld == Le+1)  ->  FusedSelect
    else if (A.Opc == Op::BrFalse && I + 3 < N && A.Imm == I + 3 &&
             C[I + 2].Opc == Op::Jump && C[I + 2].Imm == I + 4 &&
             Preds[I + 1] == 0 && Preds[I + 2] == 0 && Preds[I + 3] == 1 &&
             (C[I + 1].Opc == Op::Copy || C[I + 1].Opc == Op::Const) &&
             (C[I + 3].Opc == Op::Copy || C[I + 3].Opc == Op::Const) &&
             C[I + 1].A == C[I + 3].A) {
      const Insn &Then = C[I + 1], &Else = C[I + 3];
      uint32_t ThenOp = Then.Opc == Op::Const ? Then.Imm : Then.B;
      uint32_t ElseOp = Else.Opc == Op::Const ? Else.Imm : Else.B;
      if (ThenOp < 0x10000 && ElseOp < 0x10000) {
        F.Opc = Op::FusedSelect;
        F.A = Then.A;
        F.B = A.B;
        F.C = uint16_t(ThenOp);
        F.Imm = ElseOp | (Then.Opc == Op::Const ? 1u << 16 : 0) |
                (Else.Opc == Op::Const ? 1u << 17 : 0);
        Consumed = 4;
        ++S.Select;
      ++Folds;
      }
    }
    // pure op D,... ; Ret D  ->  FusedRetOp
    if (Consumed == 1 && isRetFusable(A.Opc) && I + 1 < N &&
        C[I + 1].Opc == Op::Ret && C[I + 1].B == A.A &&
        !Interior(I, I + 2) && DeadAfter(A.A, I + 1)) {
      F.Opc = Op::FusedRetOp;
      F.A = uint16_t(A.Opc);
      F.B = A.B;
      F.C = A.C;
      F.Imm = A.Imm;
      Consumed = 2;
      ++S.RetOp;
      ++Folds;
    }
    // Const whose destination is never read: left dead by an earlier BinK
    // substitution (or dead on arrival). Drop it.
    if (Consumed == 1 && A.Opc == Op::Const && DeadAfter(A.A, I)) {
      for (size_t K = I; K != I + 1; ++K)
        NewIx[K] = uint32_t(Out.Code.size());
      ++S.DeadConst;
      ++Folds;
      ++I;
      continue;
    }

    if (Consumed == 1) {
      F = A;
      // bin A,B,C where one operand holds a known pool constant -> FusedBinK.
      if (isBin(F.Opc)) {
        auto BIt = SlotConst.find(F.B), CIt = SlotConst.find(F.C);
        if (CIt != SlotConst.end()) {
          F = Insn{Op::FusedBinK, A.A, A.B, uint16_t(unsigned(A.Opc)),
                   CIt->second};
          ++S.BinK;
      ++Folds;
        } else if (BIt != SlotConst.end()) {
          F = Insn{Op::FusedBinK, A.A, A.C,
                   uint16_t(unsigned(A.Opc) | 0x100u), BIt->second};
          ++S.BinK;
      ++Folds;
        }
      }
    }

    // Track constant-holding slots and kill stale entries on overwrite.
    if (writesSlot(F))
      SlotConst.erase(F.A);
    if (A.Opc == Op::Const && Consumed == 1)
      SlotConst[A.A] = A.Imm;

    for (size_t K = I; K != I + Consumed; ++K)
      NewIx[K] = uint32_t(Out.Code.size());
    Out.Code.push_back(F);
    I += Consumed;
  }
  NewIx[N] = uint32_t(Out.Code.size());

  // Remap branch targets into the new index space. Consumed interior
  // indices were never branch targets (checked per window), so every
  // surviving target lands on an emitted instruction boundary. Under the
  // fuse-window mutation, freshly fused compare-branches keep their
  // pre-deletion target — the stale-remap half of the seeded bug (the
  // live-compare half above rarely has a window to bite in real modules).
  for (Insn &X : Out.Code)
    if (hasBranchTarget(X.Opc) && !(Mutate && X.Opc == Op::FusedCmpBr))
      X.Imm = NewIx[X.Imm];

  return Folds;
}

} // namespace

ExprProgram bc::fuseProgram(const ExprProgram &In, FuseStats *Stats) {
  FuseStats Local;
  FuseStats &S = Stats ? *Stats : Local;
  const bool Mutate = fuseWindowMutation();

  // Iterate to a fixpoint: deletions make new windows adjacent, and a BinK
  // substitution's stranded Const only reads as dead on the next scan.
  // Each pass either folds something or terminates the loop, and every
  // fold strictly shrinks the code or converts an op that no later pass
  // reconsiders, so this is finite (in practice 1–3 passes).
  ExprProgram Cur, Next;
  uint64_t Folds = fuseOnce(In, Cur, S, Mutate);
  while (Folds) {
    Folds = fuseOnce(Cur, Next, S, Mutate);
    if (Folds)
      std::swap(Cur, Next);
  }
  return Cur;
}

std::shared_ptr<const ModuleIR> bc::fuseModule(const ModuleIR &In,
                                               FuseStats *Stats) {
  auto Out = std::make_shared<ModuleIR>();
  for (const auto &[Name, PP] : In.Pipes) {
    PipeProgram &NP = Out->Pipes[Name];
    // Copy the value parts wholesale, then re-point every program pointer
    // (stage mirrors, ExprIndex) at the fused storage. Programs is a deque
    // so addresses are stable once emplaced.
    NP = PP;
    NP.Programs.clear();
    std::map<const ExprProgram *, const ExprProgram *> Remap;
    Remap[nullptr] = nullptr;
    for (const ExprProgram &EP : PP.Programs) {
      NP.Programs.push_back(fuseProgram(EP, Stats));
      Remap[&EP] = &NP.Programs.back();
    }
    auto Fix = [&](const ExprProgram *&P) {
      auto It = Remap.find(P);
      assert(It != Remap.end() && "program pointer outside module storage");
      P = It->second;
    };
    for (StageProg &SP : NP.Stages) {
      for (OpProg &OP : SP.Ops) {
        Fix(OP.Guard);
        Fix(OP.E0);
        Fix(OP.E1);
        for (const ExprProgram *&AP : OP.Args)
          Fix(AP);
      }
      for (const ExprProgram *&G : SP.EdgeGuards)
        Fix(G);
      for (const ExprProgram *&G : SP.TagGuards)
        Fix(G);
    }
    for (auto &[E, P] : NP.ExprIndex)
      Fix(P);
  }
  return Out;
}

bool bc::fusedModeRequested() {
  return std::getenv("PDL_EVAL_FUSED") != nullptr &&
         std::getenv("PDL_EVAL_TREE") == nullptr;
}

const char *bc::dispatchModeName() {
#if defined(__GNUC__) && !defined(PDL_NO_COMPUTED_GOTO)
  return "threaded";
#else
  return "switch";
#endif
}
