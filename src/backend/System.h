//===- System.h - Elaborated pipelined circuit executor --------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back half of the PDL compiler, standing in for the paper's BSV code
/// generation + RTL simulation (Section 5): a checked program elaborates
/// into an executable cycle-accurate circuit.
///
/// The execution model mirrors the paper's strategy one-to-one:
///  * each stage is one atomic rule, fired at most once per cycle;
///  * inter-stage edges are FIFOs (default depth 2, like the BSV default);
///    enqueues become visible the next cycle;
///  * rules run deepest-stage-first within a cycle so that lock writes and
///    speculation resolutions are combinationally visible to younger
///    threads in earlier stages — the two scheduling directives of §5.1;
///  * a rule stalls (does not fire) when: a block()ed lock is not ready, a
///    spec_barrier is unresolved, lock/speculation resources are exhausted,
///    a synchronous response is outstanding, or downstream FIFOs are full;
///  * stage rules are evaluated twice per firing: a pure probe pass that
///    decides fire/stall/kill, then a commit pass that applies effects --
///    this models the combinational stall logic of the generated circuit;
///  * out-of-order regions use per-join coordination-tag FIFOs fed by the
///    fork stage (Figure 2);
///  * misspeculated threads are squashed at stage entry and speculative
///    lock state is rolled back to the parent's checkpoint (Section 2.5).
///
/// Observability: every stage outcome (fire or a typed StallCause), thread
/// lifecycle step, FIFO move, lock reserve/release and speculation
/// resolution is emitted as a structured obs::Event to attached
/// obs::TraceSinks. With no sink attached emission is a single predictable
/// branch per site. Pipes and memories are addressed by interned
/// PipeHandle/MemHandle resolved once at elaboration; the string-keyed
/// accessors are retained as thin shims.
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_SYSTEM_H
#define PDL_BACKEND_SYSTEM_H

#include "backend/Compile.h"
#include "backend/Eval.h"
#include "backend/SeqInterp.h"
#include "hw/Extern.h"
#include "hw/Fault.h"
#include "hw/Fifo.h"
#include "hw/Lock.h"
#include "hw/SpecTable.h"
#include "mem/MemModel.h"
#include "obs/Json.h"
#include "obs/TraceSink.h"
#include "passes/Compiler.h"
#include "support/BinIO.h"

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pdl {
namespace backend {

enum class LockKind { Queue, Bypass, Rename };

/// How a run ended: the structured successor of the Halted/Deadlocked
/// booleans. `Running` until run() returns; `Drained` means every thread
/// retired without a halt-watch write; `TimedOut` means MaxCycles elapsed
/// with work still in flight.
enum class RunOutcome : uint8_t { Running, Halted, Drained, Deadlocked,
                                  TimedOut };

const char *runOutcomeName(RunOutcome O);

/// One blocked stage in the deadlock wait-for graph: which resource it
/// waits on and, when resolvable, the thread (and its current stage)
/// holding that resource.
struct WaitForEdge {
  std::string Pipe;
  std::string Stage;
  uint64_t Tid = 0; // the blocked thread (0 when no input thread)
  obs::StallCause Cause = obs::StallCause::None;
  std::string Resource;    // lock memory, "spec-table", a FIFO edge, ...
  uint64_t HolderTid = 0;  // 0 = no specific holding thread resolved
  std::string HolderStage; // "pipe/stage" where the holder sits
};

/// Captured by run() when it declares deadlock: every blocked stage, what
/// it waits for, and (when the holder chain closes) the cycle in the graph.
struct DeadlockDiagnosis {
  uint64_t Cycle = 0;
  std::vector<WaitForEdge> Edges;
  std::vector<std::string> WaitCycle; // "pipe/stage" nodes forming a cycle

  bool valid() const { return !Edges.empty(); }
  std::string render() const;
  obs::Json toJsonValue() const;
};

class System;

/// An interned reference to an elaborated pipe: resolved from its name
/// once, then O(1) to use. Obtained from System::pipeHandle().
class PipeHandle {
public:
  PipeHandle() = default;
  bool valid() const { return Idx != ~0u; }
  unsigned index() const { return Idx; }
  bool operator==(const PipeHandle &O) const { return Idx == O.Idx; }

private:
  friend class System;
  friend class MemHandle;
  explicit PipeHandle(unsigned Idx) : Idx(Idx) {}
  unsigned Idx = ~0u;
};

/// An interned reference to one memory of one pipe. Obtained from
/// System::memHandle().
class MemHandle {
public:
  MemHandle() = default;
  bool valid() const { return Pipe != ~0u; }
  PipeHandle pipe() const { return PipeHandle(Pipe); }
  unsigned index() const { return Mem; }
  bool operator==(const MemHandle &O) const {
    return Pipe == O.Pipe && Mem == O.Mem;
  }

private:
  friend class System;
  MemHandle(unsigned Pipe, unsigned Mem) : Pipe(Pipe), Mem(Mem) {}
  unsigned Pipe = ~0u;
  unsigned Mem = ~0u;
};

/// Elaboration parameters (the microarchitectural knobs outside the PDL
/// source: lock implementation choice, FIFO depths, table sizes) plus the
/// observability knobs.
struct ElabConfig {
  /// Lock implementation per "pipe.mem"; memories not listed get Default.
  std::map<std::string, LockKind> LockChoice;
  LockKind DefaultLock = LockKind::Bypass;
  unsigned FifoDepth = 2;
  unsigned EntryDepth = 4;
  unsigned TagDepth = 8;
  unsigned SpecCapacity = 8;
  /// Response latency (cycles) per synchronous "pipe.mem"; default 1
  /// (every access is a cache hit, as in the paper's evaluation).
  /// Deprecated shim: an entry here elaborates a mem::FixedLatency(N)
  /// model; MemModels below is the full-fidelity knob and wins on overlap.
  std::map<std::string, unsigned> MemLatency;
  /// Memory-hierarchy model per "pipe.mem" (falls back to the bare memory
  /// name, then to FixedLatency(1) — the paper's always-hit assumption).
  /// Cache configs sharing a non-empty ShareTag are elaborated over one
  /// shared single-ported backing (the L1I/L1D Hierarchy composition).
  std::map<std::string, mem::MemConfig> MemModels;
  /// Trace sinks attached at construction (equivalent to calling
  /// attachSink() on each). Caller-owned; must outlive the System.
  std::vector<obs::TraceSink *> Sinks;
  /// Pre-compiled bytecode circuit to share across Systems elaborated from
  /// the same CompiledProgram (sim::BatchRunner reuses one per core). When
  /// null the System compiles its own at construction. Must have been
  /// produced by bc::compileModule over the same CompiledProgram.
  std::shared_ptr<const bc::ModuleIR> CompiledIR;
  /// Evaluate expressions with the legacy tree walker instead of the
  /// compiled bytecode (differential escape hatch; also enabled by the
  /// PDL_EVAL_TREE environment variable).
  bool EvalTree = false;
  /// Run the superinstruction-fused lowering of the bytecode (backend/
  /// Fuse.h; also enabled by PDL_EVAL_FUSED). Ignored under EvalTree.
  /// When CompiledIR is supplied the caller is responsible for passing an
  /// already-fused circuit (cores::Core keys its shared cache by mode);
  /// otherwise the System fuses its self-compiled circuit. Results are
  /// byte-identical to bytecode mode by construction — fusion never
  /// changes frame layout or hook order.
  bool EvalFused = false;
  /// Run the natively compiled tier (backend/NativeCache.h; also enabled
  /// by PDL_EVAL_NATIVE). Ignored under EvalTree; outranks EvalFused.
  /// When CompiledIR is supplied the caller passes a fused circuit whose
  /// programs may carry attached native thunks (cores::Core certifies and
  /// attaches; see native::attachModule's certificate gate). A System that
  /// self-compiles under this flag runs the fused lowering uncompiled —
  /// attachment requires the TV certificate only the cores/pdlc layers can
  /// mint — which is the documented graceful-fallback behaviour, and
  /// byte-identical by construction.
  bool EvalNative = false;
};

/// Cheap always-on global counters. Retained for compatibility and for the
/// executor's internal attribution invariant; the structured per-pipe /
/// per-stage / per-cause view is obs::StatsReport, produced by an attached
/// obs::CounterSink.
struct SystemStats {
  uint64_t Cycles = 0;
  std::map<std::string, uint64_t> Retired; // per pipe
  std::map<std::string, uint64_t> Killed;  // squashed threads per pipe
  uint64_t StageFires = 0;
  /// Stage probes that had an input thread (fires + kills + stalls). The
  /// per-cause stall counters below must sum to
  /// ProbeAttempts - StageFires - StageKills every cycle; applyEndOfCycle
  /// asserts it so attribution stays exact as causes are added.
  uint64_t ProbeAttempts = 0;
  uint64_t StageKills = 0;    // input thread squashed at stage entry
  uint64_t StallLock = 0;     // block()/reserve resources
  uint64_t StallSpec = 0;     // spec_barrier / spec-table capacity
  uint64_t StallResponse = 0; // outstanding synchronous responses
  uint64_t StallBackpressure = 0;
  bool Deadlocked = false;
  /// Structured run outcome, set when run() returns.
  RunOutcome Outcome = RunOutcome::Running;
  /// Faults actually triggered by armed hw::FaultPlans (see armFault).
  uint64_t FaultsInjected = 0;
};

/// An elaborated, runnable system of pipelines.
class System {
public:
  System(const CompiledProgram &CP, ElabConfig Cfg);
  ~System();

  //===--------------------------------------------------------------------===//
  // Interned-handle API (primary): resolve names once at elaboration.
  //===--------------------------------------------------------------------===//

  /// Resolves a pipe name. Asserts the pipe exists.
  PipeHandle pipeHandle(const std::string &Pipe) const;

  /// Resolves one memory of a pipe. Asserts both exist.
  MemHandle memHandle(const std::string &Pipe, const std::string &Mem) const;
  MemHandle memHandle(PipeHandle P, const std::string &Mem) const;

  const std::string &pipeName(PipeHandle P) const;
  const std::string &memName(MemHandle M) const;

  /// Storage access (load programs before calling start()).
  hw::Memory &memory(MemHandle M);

  /// The memory-hierarchy timing model behind a synchronous memory, for
  /// reading its hit/miss/traffic stats; null for combinational memories.
  const mem::MemModel *memModel(MemHandle M) const;

  /// The lock instance guarding a memory (valid after start()).
  hw::HazardLock &lock(MemHandle M);

  /// Stops the simulation when a committed write hits this location.
  void setHaltOnWrite(MemHandle M, uint64_t Addr);

  /// True when \p P's entry queue can accept another start() request.
  bool canAccept(PipeHandle P);

  /// Spawns the initial thread of \p P (elaborates locks on first use).
  void start(PipeHandle P, std::vector<Bits> Args);

  /// Committed (retired) thread traces of \p P, oldest first.
  const std::vector<ThreadTrace> &trace(PipeHandle P) const;

  /// Reads committed architectural state through the lock (if any).
  Bits archRead(MemHandle M, uint64_t Addr);

  //===--------------------------------------------------------------------===//
  // String-keyed shims (deprecated): resolve the handle per call and
  // delegate. Kept so existing tests/benches keep compiling; new code
  // should intern handles once.
  //===--------------------------------------------------------------------===//

  hw::Memory &memory(const std::string &Pipe, const std::string &Mem) {
    return memory(memHandle(Pipe, Mem));
  }
  hw::HazardLock &lock(const std::string &Pipe, const std::string &Mem) {
    return lock(memHandle(Pipe, Mem));
  }
  void setHaltOnWrite(const std::string &Pipe, const std::string &Mem,
                      uint64_t Addr) {
    setHaltOnWrite(memHandle(Pipe, Mem), Addr);
  }
  /// With drain-on-halt, the halt store does not stop the clock at once:
  /// the system keeps cycling (bounded) until every thread at least as old
  /// as the halting one has left the pipeline, so that e.g. a load miss
  /// still waiting in writeback lands its architectural result. Threads
  /// younger than the halting store retire untraced and uncounted — they
  /// are past the architectural end of the program. Off by default; the
  /// differential harness enables it.
  void setDrainOnHalt(bool B) { DrainOnHalt = B; }
  bool canAccept(const std::string &Pipe) {
    return canAccept(pipeHandle(Pipe));
  }
  void start(const std::string &Pipe, std::vector<Bits> Args) {
    start(pipeHandle(Pipe), std::move(Args));
  }
  const std::vector<ThreadTrace> &trace(const std::string &Pipe) const {
    return trace(pipeHandle(Pipe));
  }
  Bits archRead(const std::string &Pipe, const std::string &Mem,
                uint64_t Addr) {
    return archRead(memHandle(Pipe, Mem), Addr);
  }

  void bindExtern(const std::string &Name, hw::ExternModule *Module);

  /// Advances one clock cycle.
  void cycle();

  /// Runs until halt, deadlock, or \p MaxCycles. Returns cycles consumed.
  uint64_t run(uint64_t MaxCycles);

  bool halted() const { return Halted; }
  const SystemStats &stats() const { return Stats; }

  //===--------------------------------------------------------------------===//
  // Snapshot / restore (src/backend/Snapshot.cpp)
  //===--------------------------------------------------------------------===//

  /// Digest of the elaborated structure (pipes, stages, memories, lock and
  /// model configuration). A snapshot only restores into a System whose
  /// digest matches — same program, same ElabConfig.
  uint64_t configDigest() const;

  /// Serializes the complete dynamic state — every in-flight thread, FIFO,
  /// lock, memory, spec table, timing model, predictor, pending delivery,
  /// armed fault and counter — as a versioned, digest-stamped, CRC-guarded
  /// blob. Must be taken at a cycle boundary (outside cycle()); resuming a
  /// restored System is byte-for-byte equivalent to never having stopped.
  std::string snapshot();

  /// Inverse of snapshot(): overwrites this System's dynamic state from
  /// \p Blob. The System must be freshly elaborated from the same program
  /// and ElabConfig (configDigest() match is enforced) with the same
  /// externs bound. Returns false — leaving no guarantees about partial
  /// state — on a truncated, corrupt, or mismatched blob; \p Err, when
  /// non-null, receives the reason.
  bool restore(const std::string &Blob, std::string *Err = nullptr);

  /// Arranges for \p Fn to run inside run() at every absolute-cycle
  /// multiple of \p Every (checkpoint cadence for crash-safe services).
  /// The hook must treat the System as read-only; taking a snapshot() is
  /// the intended use. Every = 0 disables.
  void setCheckpointHook(uint64_t Every, std::function<void(uint64_t)> Fn) {
    CkptEvery = Every;
    CkptHook = std::move(Fn);
  }

  //===--------------------------------------------------------------------===//
  // Verification harness
  //===--------------------------------------------------------------------===//

  /// Arms one seeded fault (src/hw/Fault.h) so the Nth matching operation
  /// is perturbed. Forces lock elaboration; call after construction, before
  /// or during the run. Triggered faults bump stats().FaultsInjected and
  /// emit an obs FaultInjected event.
  void armFault(const hw::FaultPlan &Plan);

  /// The wait-for-graph diagnosis captured when run() declared deadlock
  /// (invalid — no edges — otherwise).
  const DeadlockDiagnosis &deadlockDiagnosis() const { return Diag; }

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  /// The interning table events are expressed against.
  const obs::TraceMeta &traceMeta() const { return Meta; }

  /// Attaches \p S for the rest of this System's life: it receives
  /// begin(traceMeta()) now and every subsequent event. Caller-owned; must
  /// outlive the System (or outlive finishTrace()).
  void attachSink(obs::TraceSink &S);

  /// Delivers end() to attached sinks (idempotent; also run by ~System).
  void finishTrace();

private:
  struct PipeInstance;

  struct ResRec {
    std::string Mem;
    std::string Key; // full reservation key (mem#addrtext#mode)
    unsigned MemI = 0; // interned memory index of Mem
    uint64_t Addr = 0;
    hw::Access Mode = hw::Access::Read;
    bool Written = false;
    uint64_t WrittenVal = 0;
  };

  struct Thread {
    uint64_t Tid = 0;
    /// Dense value frame, laid out by the pipe's bc::PipeProgram: slots
    /// [0, NumVars) are the named variables, the rest per-walk scratch.
    std::vector<Bits> Frame;
    hw::SpecId MySpec = 0; // 0 = spawned non-speculatively
    std::map<std::string, hw::ResId> Res; // reservation key -> id
    std::map<hw::ResId, ResRec> ResInfo;
    std::map<std::string, hw::SpecId> Handles; // spec handle name -> entry
    std::map<std::string, hw::CkptId> Ckpts;   // memory -> checkpoint
    unsigned UnresolvedSpec = 0;
    unsigned PendingResp = 0;
    ThreadTrace Trace;
    // Cross-pipe request bookkeeping (set on callee threads).
    PipeInstance *CallerP = nullptr;
    uint64_t CallerTid = 0;
    uint16_t CallerSlot = bc::NoSlot; // result slot in the caller's frame
    bool HasCaller = false;
  };

  /// A coordination tag: which predecessor the tagged thread will use.
  struct TagTok {
    unsigned Tag = 0;
    uint64_t Tid = 0;
  };

  /// A multi-stage lock region (Section 4.1): reservations for one memory
  /// spanning stages [First, Last] must be made atomically per thread, so
  /// only one thread may occupy those stages at a time.
  struct LockRegion {
    std::string Mem;
    unsigned First = 0;
    unsigned Last = 0;
    std::optional<uint64_t> OccupantTid;
  };

  struct PipeInstance {
    const CompiledPipe *CP = nullptr;
    const bc::PipeProgram *Prog = nullptr; // compiled circuit for this pipe
    std::string Name;
    unsigned Index = 0; // position in PipeSeq == PipeHandle::index()
    std::vector<LockRegion> Regions;
    hw::Fifo<Thread> Entry;
    std::map<std::pair<unsigned, unsigned>, hw::Fifo<Thread>> EdgeFifos;
    std::vector<std::deque<TagTok>> TagQueues; // by join stage id
    /// Dense per-stage views into EdgeFifos (which stays the owner),
    /// resolved once at elaboration so the per-cycle path never touches
    /// the pair-keyed map: input FIFO per predecessor index and output
    /// FIFO per successor-edge index (matching Stage::Preds/Succs order).
    std::vector<std::vector<hw::Fifo<Thread> *>> PredFifos;
    std::vector<std::vector<hw::Fifo<Thread> *>> SuccFifos;
    /// Join stages forked from each stage (J.ForkStage == stage id), in
    /// stage-graph order — replaces the per-firing scan over all stages.
    std::vector<std::vector<const Stage *>> ForkJoins;
    /// Lazily bound Stats.Retired / Stats.Killed entries for this pipe
    /// (node addresses are stable), so retire/kill skip the string map.
    uint64_t *RetiredCtr = nullptr;
    uint64_t *KilledCtr = nullptr;
    std::map<std::string, std::unique_ptr<hw::Memory>> Mems;
    std::map<std::string, std::unique_ptr<hw::HazardLock>> Locks;
    /// Interning tables for the handle API and event emission.
    std::vector<std::string> MemNames;       // by interned index
    std::map<std::string, unsigned> MemIdx;  // name -> interned index
    std::vector<hw::Memory *> MemByIdx;      // by interned index
    std::vector<hw::HazardLock *> LockByIdx; // by interned index (or null)
    /// Timing model per interned memory index (null for combinational
    /// memories, which answer in the same cycle and have no hierarchy).
    std::vector<mem::MemModel *> ModelByIdx;
    hw::SpecTable Spec;
    std::vector<ThreadTrace> Retired;

    PipeInstance(unsigned EntryDepth, unsigned SpecCap)
        : Entry(EntryDepth), Spec(SpecCap) {}
  };

  /// Forwards one FIFO's enq/deq activity to the trace bus (installed only
  /// once a sink is attached).
  struct FifoTap : hw::Fifo<Thread>::Listener {
    System *Sys = nullptr;
    uint16_t Pipe = 0;
    uint16_t From = obs::NoEdge, To = obs::NoEdge;
    void onEnq(const Thread &T, size_t Depth) override;
    void onDeq(const Thread &T, size_t Depth) override;
  };

  enum class WalkMode { Probe, Commit };
  enum class FireResult { Fire, Stall, Kill };

  struct WalkCtx {
    WalkMode Mode;
    /// Working frame (the commit pass runs in place on the thread's own
    /// frame; the probe pass on a reusable scratch copy).
    Bits *Frame = nullptr;
    /// Tree-mode only (ElabConfig::EvalTree): a name-keyed view of the
    /// frame for the legacy evaluator; synced back by slot after commit.
    Env TreeVars;
    /// Probe pass only: why the stage stalled (set exactly when an op
    /// returns Stall) and, for lock stalls, the memory responsible.
    obs::StallCause Cause = obs::StallCause::None;
    const std::string *CauseMem = nullptr;
    /// Probe pass only: reservation keys created earlier in this stage,
    /// with their lock/address/mode, and per-lock probe state (same-stage
    /// releases and reserves) for stall computation.
    std::map<std::string, std::tuple<hw::HazardLock *, uint64_t, hw::Access>>
        ProbeReserved;
    std::map<hw::HazardLock *, hw::LockProbe> Probes;
  };

  PipeInstance &pipe(const std::string &Name);
  const PipeInstance &pipeFor(PipeHandle P) const;
  void elaborateLocks();

  /// Instantiates the timing model for every synchronous memory of \p P
  /// from Cfg.MemModels / Cfg.MemLatency (default FixedLatency(1)).
  void buildMemModels(PipeInstance &P);
  hw::HazardLock *lockFor(PipeInstance &P, const std::string &Mem);

  /// Dequeues squashed threads at the front of the stage's input, then
  /// returns the live input thread, or null if none.
  Thread *stageInput(PipeInstance &P, const Stage &S, unsigned &PredIdx);

  /// Removes and returns the stage's input thread (join stages also pop
  /// the coordination tag).
  Thread dequeueInput(PipeInstance &P, const Stage &S, unsigned PredIdx);

  FireResult walkStage(PipeInstance &P, const Stage &S, Thread &T,
                       WalkCtx &Ctx);
  FireResult walkOp(PipeInstance &P, const ast::Stmt &S, const bc::OpProg &OP,
                    Thread &T, WalkCtx &Ctx);

  /// Picks the successor edge whose guard holds (null if terminal stage).
  /// \p Ctx must hold the thread's values (probe frame or tree Env).
  const StageEdge *pickSuccessor(PipeInstance &P, const Stage &S,
                                 WalkCtx &Ctx);

  /// Points \p Ctx at the values of \p T: the probe pass copies the named
  /// variables into the reusable probe scratch frame, the commit pass runs
  /// in place on the thread's own frame. Tree mode builds the Env view.
  void bindWalkFrame(PipeInstance &P, Thread &T, WalkCtx &Ctx);
  /// Tree mode only: writes Ctx.TreeVars back into the thread frame after
  /// a commit walk (bytecode mode commits in place and needs no sync).
  void syncWalkFrame(PipeInstance &P, Thread &T, WalkCtx &Ctx);

  void tryFireStage(PipeInstance &P, const Stage &S);

  /// Books the single per-stage per-cycle outcome: updates the legacy
  /// counters and, when tracing, emits the StageOutcome event. \p CauseMem
  /// names the memory responsible for a Lock stall (may be null).
  void noteOutcome(PipeInstance &P, const Stage &S, obs::StallCause C,
                   uint64_t Tid, const std::string *CauseMem);

  void killThread(PipeInstance &P, Thread &&T);
  void retireThread(PipeInstance &P, Thread &&T);
  void recordCommit(PipeInstance &P, const std::string &Mem, unsigned MemI,
                    uint64_t Addr, uint64_t Val, Thread &T);

  void emitThreadEvent(obs::Event::Kind K, PipeInstance &P, uint64_t Tid);
  void installTaps();

  /// Rebinds the persistent evaluation hooks (HotHooks) to this walk's
  /// pipe/thread/context and returns them. The hooks close over the Cur*
  /// members only, so rebinding is three pointer stores — not two
  /// std::function heap allocations per stage walk.
  const EvalHooks &hooksFor(PipeInstance &P, Thread &T, WalkCtx &Ctx);

  /// Per-site memory resolution (interned index, storage, lock, timing
  /// model), cached against the AST's memory-name string whose address is
  /// stable and unique per site. Valid only after lock elaboration.
  struct MemSite {
    unsigned Idx = 0;
    hw::Memory *M = nullptr;
    hw::HazardLock *L = nullptr; // null when the memory is unlocked
    mem::MemModel *Model = nullptr;
  };
  MemSite &memSite(PipeInstance &P, const std::string &Mem);

  /// Reservation key for (mem, addr-expr, mode), built once per site and
  /// access mode: the same site always yields the same key, so the per-op
  /// string concatenations collapse into one cached lookup.
  const std::string &siteResKey(const std::string &Mem, const ast::Expr &Addr,
                                hw::Access M);

  // Deferred activity applied at end of cycle.
  struct PendingEnq {
    PipeInstance *P;
    hw::Fifo<Thread> *F; // &P->Entry or an edge FIFO of P
    Thread T;
  };
  struct PendingTag {
    PipeInstance *P;
    unsigned Join;
    unsigned Tag;
    uint64_t Tid;
  };
  struct Delivery {
    uint64_t DueCycle;
    PipeInstance *P;
    uint64_t Tid;
    uint16_t Slot; // destination in the thread's frame
    Bits Value;
  };

  unsigned pendingEnqCount(const hw::Fifo<Thread> *F) const;
  void applyEndOfCycle();
  Thread *findThread(PipeInstance &P, uint64_t Tid);

  /// One armed executor-level fault (hw-level kinds are delegated to the
  /// primitive's own arming hooks in armFault).
  struct ArmedFault {
    hw::FaultPlan Plan;
    uint64_t Countdown = 1;
    bool Fired = false;
    uint64_t RescuedTid = 0; // SkipSquash: the thread spared its squash
  };

  /// Accounting for a fault that actually triggered.
  void noteFault(PipeInstance &P, hw::FaultKind K, uint64_t Tid);
  ArmedFault *armedFault(hw::FaultKind K, const PipeInstance &P);
  /// Consumes one occurrence of \p K in \p P (commit-pass sites only, so
  /// probe and commit never disagree). Optional \p Mem filters lock faults.
  bool consumeFault(hw::FaultKind K, PipeInstance &P, uint64_t Tid,
                    const std::string *Mem = nullptr);
  /// SkipSquash: true when the squash of \p Tid should be suppressed.
  /// Sticky per thread so every squash point sees the same answer.
  bool rescueSquash(PipeInstance &P, uint64_t Tid);

  DeadlockDiagnosis diagnoseDeadlock();
  /// "pipe/stage" the thread would fire at next, or "" if not queued.
  std::string stageOfThread(uint64_t Tid) const;

  // Snapshot codec helpers (Snapshot.cpp).
  void saveThread(support::BinWriter &W, const Thread &T) const;
  bool loadThread(support::BinReader &R, Thread &T);
  void saveStats(support::BinWriter &W) const;
  bool loadStats(support::BinReader &R);
  /// Remaining armed count of a hw-delegated fault plan, read back from the
  /// primitive it was armed on (0 = already fired / disarmed).
  uint64_t hwArmRemaining(const hw::FaultPlan &Plan);

  const CompiledProgram &CP;
  ElabConfig Cfg;
  std::map<std::string, std::unique_ptr<PipeInstance>> Pipes;
  std::vector<PipeInstance *> PipeSeq; // by PipeHandle index (map order)
  /// The firing order, precomputed at elaboration: pipes in PipeSeq order,
  /// stages deepest-first within each pipe (the §5.1 scheduling directive).
  std::vector<std::pair<PipeInstance *, const Stage *>> FireOrder;
  /// Memoized reservation-key text per address-expression site; see
  /// siteResKey(). Indexed by hw::Access; empty string = not yet built.
  std::unordered_map<const ast::Expr *, std::array<std::string, 3>>
      ResKeyCache;
  std::unordered_map<const std::string *, MemSite> MemSiteCache;
  /// See hooksFor(): the lazily built hook pair and the walk they are
  /// currently bound to.
  EvalHooks HotHooks;
  PipeInstance *CurP = nullptr;
  Thread *CurT = nullptr;
  WalkCtx *CurCtx = nullptr;

  /// Shared hook bodies behind both dispatch mechanisms (the bytecode
  /// interpreter's virtual Hooks and tree mode's std::function EvalHooks).
  Bits hookReadMem(const ast::MemReadExpr &Site, uint64_t Addr);
  Bits hookCallExtern(const ast::ExternCallExpr &Site, const Bits *Args,
                      unsigned NumArgs);

  /// bc::Hooks impl for the bytecode interpreter: one virtual dispatch per
  /// mem-read / extern-call site, no std::function on the hot path.
  struct BcDispatch final : bc::Hooks {
    System *Sys = nullptr;
    Bits readMem(const ast::MemReadExpr &Site, uint64_t Addr) override {
      return Sys->hookReadMem(Site, Addr);
    }
    Bits callExtern(const ast::ExternCallExpr &Site, const Bits *Args,
                    unsigned NumArgs) override {
      return Sys->hookCallExtern(Site, Args, NumArgs);
    }
  };
  BcDispatch Dispatch;

  /// The compiled circuit (shared via ElabConfig::CompiledIR or owned).
  std::shared_ptr<const bc::ModuleIR> IR;
  /// Reusable probe-pass frame, sized to the largest pipe FrameSize.
  std::vector<Bits> ProbeScratch;
  /// Reusable argument buffer for extern invocations.
  std::vector<Bits> ArgScratch;
  /// Legacy tree-walking evaluation (ElabConfig::EvalTree / PDL_EVAL_TREE).
  bool TreeMode = false;
  /// Superinstruction-fused bytecode (ElabConfig::EvalFused /
  /// PDL_EVAL_FUSED). Recorded in configDigest like TreeMode: snapshot
  /// resume is same-mode.
  bool FusedMode = false;
  /// Natively compiled circuit requested (ElabConfig::EvalNative /
  /// PDL_EVAL_NATIVE). Recorded in configDigest like the other modes —
  /// the *requested* mode, even when the tier degraded to fused
  /// interpretation, so cross-mode restore refusal stays deterministic.
  bool NativeMode = false;
  std::map<std::string, hw::ExternModule *> Externs;
  std::vector<PendingEnq> PendingEnqs;
  std::vector<PendingTag> PendingTags;
  std::deque<Delivery> Deliveries;
  /// Storage for the elaborated memory-hierarchy models, plus the shared
  /// single-ported backings keyed by MemConfig::ShareTag.
  std::vector<std::unique_ptr<mem::MemModel>> OwnedModels;
  std::map<std::string, std::unique_ptr<mem::MemModel>> SharedBackings;
  /// (pipe index, interned memory index, address) of the halt watch.
  std::optional<std::tuple<unsigned, unsigned, uint64_t>> HaltWatch;
  std::vector<ArmedFault> Faults;
  /// Fault plans whose arming was delegated to a hardware primitive
  /// (FIFO / lock / spec-table arms). Recorded so snapshot() can read the
  /// remaining count back from the primitive and restore() can re-arm.
  std::vector<hw::FaultPlan> HwArmedPlans;
  DeadlockDiagnosis Diag;
  SystemStats Stats;
  obs::TraceBus Bus;
  obs::TraceMeta Meta;
  std::vector<std::unique_ptr<FifoTap>> Taps;
  bool TapsInstalled = false;
  bool Halted = false;
  bool DrainOnHalt = false;
  std::optional<uint64_t> HaltTid; // drain mode: the halting thread
  uint64_t HaltCycle = 0;          // cycle the halt store committed
  bool LocksBuilt = false;
  uint64_t NextTid = 1;
  bool FiredThisCycle = false;
  /// Consecutive no-progress cycles inside run(). A member (not a run()
  /// local) so a snapshot taken mid-streak resumes the same countdown to
  /// the deadlock declaration; reset by start().
  uint64_t IdleStreak = 0;
  /// Checkpoint cadence (setCheckpointHook): 0 = off.
  uint64_t CkptEvery = 0;
  std::function<void(uint64_t)> CkptHook;
};

} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_SYSTEM_H
