//===- System.h - Elaborated pipelined circuit executor --------*- C++ -*-===//
//
// Part of the PDL reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back half of the PDL compiler, standing in for the paper's BSV code
/// generation + RTL simulation (Section 5): a checked program elaborates
/// into an executable cycle-accurate circuit.
///
/// The execution model mirrors the paper's strategy one-to-one:
///  * each stage is one atomic rule, fired at most once per cycle;
///  * inter-stage edges are FIFOs (default depth 2, like the BSV default);
///    enqueues become visible the next cycle;
///  * rules run deepest-stage-first within a cycle so that lock writes and
///    speculation resolutions are combinationally visible to younger
///    threads in earlier stages — the two scheduling directives of §5.1;
///  * a rule stalls (does not fire) when: a block()ed lock is not ready, a
///    spec_barrier is unresolved, lock/speculation resources are exhausted,
///    a synchronous response is outstanding, or downstream FIFOs are full;
///  * stage rules are evaluated twice per firing: a pure probe pass that
///    decides fire/stall/kill, then a commit pass that applies effects --
///    this models the combinational stall logic of the generated circuit;
///  * out-of-order regions use per-join coordination-tag FIFOs fed by the
///    fork stage (Figure 2);
///  * misspeculated threads are squashed at stage entry and speculative
///    lock state is rolled back to the parent's checkpoint (Section 2.5).
///
//===----------------------------------------------------------------------===//

#ifndef PDL_BACKEND_SYSTEM_H
#define PDL_BACKEND_SYSTEM_H

#include "backend/Eval.h"
#include "backend/SeqInterp.h"
#include "hw/Extern.h"
#include "hw/Fifo.h"
#include "hw/Lock.h"
#include "hw/SpecTable.h"
#include "passes/Compiler.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pdl {
namespace backend {

enum class LockKind { Queue, Bypass, Rename };

/// Elaboration parameters (the microarchitectural knobs outside the PDL
/// source: lock implementation choice, FIFO depths, table sizes).
struct ElabConfig {
  /// Lock implementation per "pipe.mem"; memories not listed get Default.
  std::map<std::string, LockKind> LockChoice;
  LockKind DefaultLock = LockKind::Bypass;
  unsigned FifoDepth = 2;
  unsigned EntryDepth = 4;
  unsigned TagDepth = 8;
  unsigned SpecCapacity = 8;
  /// Response latency (cycles) per synchronous "pipe.mem"; default 1
  /// (every access is a cache hit, as in the paper's evaluation).
  std::map<std::string, unsigned> MemLatency;
};

struct SystemStats {
  uint64_t Cycles = 0;
  std::map<std::string, uint64_t> Retired; // per pipe
  std::map<std::string, uint64_t> Killed;  // squashed threads per pipe
  uint64_t StageFires = 0;
  uint64_t StallLock = 0;     // block()/reserve resources
  uint64_t StallSpec = 0;     // spec_barrier / spec-table capacity
  uint64_t StallResponse = 0; // outstanding synchronous responses
  uint64_t StallBackpressure = 0;
  bool Deadlocked = false;
};

/// An elaborated, runnable system of pipelines.
class System {
public:
  System(const CompiledProgram &CP, ElabConfig Cfg);
  ~System();

  /// Storage access (load programs before calling start()).
  hw::Memory &memory(const std::string &Pipe, const std::string &Mem);

  /// The lock instance guarding a memory (valid after start()).
  hw::HazardLock &lock(const std::string &Pipe, const std::string &Mem);

  void bindExtern(const std::string &Name, hw::ExternModule *Module);

  /// Stops the simulation when a committed write hits this location.
  void setHaltOnWrite(const std::string &Pipe, const std::string &Mem,
                      uint64_t Addr);

  /// True when \p Pipe's entry queue can accept another start() request.
  bool canAccept(const std::string &Pipe);

  /// Spawns the initial thread of \p Pipe (elaborates locks on first use).
  void start(const std::string &Pipe, std::vector<Bits> Args);

  /// Advances one clock cycle.
  void cycle();

  /// Runs until halt, deadlock, or \p MaxCycles. Returns cycles consumed.
  uint64_t run(uint64_t MaxCycles);

  bool halted() const { return Halted; }
  const SystemStats &stats() const { return Stats; }

  /// Committed (retired) thread traces of \p Pipe, oldest first.
  const std::vector<ThreadTrace> &trace(const std::string &Pipe) const;

  /// Reads committed architectural state through the lock (if any).
  Bits archRead(const std::string &Pipe, const std::string &Mem,
                uint64_t Addr);

private:
  struct ResRec {
    std::string Mem;
    std::string Key; // full reservation key (mem#addrtext#mode)
    uint64_t Addr = 0;
    hw::Access Mode = hw::Access::Read;
    bool Written = false;
    uint64_t WrittenVal = 0;
  };

  struct Thread {
    uint64_t Tid = 0;
    Env Vars;
    hw::SpecId MySpec = 0; // 0 = spawned non-speculatively
    std::map<std::string, hw::ResId> Res; // reservation key -> id
    std::map<hw::ResId, ResRec> ResInfo;
    std::map<std::string, hw::SpecId> Handles; // spec handle name -> entry
    std::map<std::string, hw::CkptId> Ckpts;   // memory -> checkpoint
    unsigned UnresolvedSpec = 0;
    unsigned PendingResp = 0;
    ThreadTrace Trace;
    // Cross-pipe request bookkeeping (set on callee threads).
    std::string CallerPipe;
    uint64_t CallerTid = 0;
    std::string CallerVar;
    bool HasCaller = false;
  };

  /// A coordination tag: which predecessor the tagged thread will use.
  struct TagTok {
    unsigned Tag = 0;
    uint64_t Tid = 0;
  };

  /// A multi-stage lock region (Section 4.1): reservations for one memory
  /// spanning stages [First, Last] must be made atomically per thread, so
  /// only one thread may occupy those stages at a time.
  struct LockRegion {
    std::string Mem;
    unsigned First = 0;
    unsigned Last = 0;
    std::optional<uint64_t> OccupantTid;
  };

  struct PipeInstance {
    const CompiledPipe *CP = nullptr;
    std::vector<LockRegion> Regions;
    hw::Fifo<Thread> Entry;
    std::map<std::pair<unsigned, unsigned>, hw::Fifo<Thread>> EdgeFifos;
    std::map<unsigned, std::deque<TagTok>> TagQueues; // join id -> tags
    std::map<std::string, std::unique_ptr<hw::Memory>> Mems;
    std::map<std::string, std::unique_ptr<hw::HazardLock>> Locks;
    hw::SpecTable Spec;
    std::vector<ThreadTrace> Retired;

    PipeInstance(unsigned EntryDepth, unsigned SpecCap)
        : Entry(EntryDepth), Spec(SpecCap) {}
  };

  enum class WalkMode { Probe, Commit };
  enum class FireResult { Fire, Stall, Kill };

  struct WalkCtx {
    WalkMode Mode;
    Env Vars; // working environment
    /// Probe pass only: reservation keys created earlier in this stage,
    /// with their lock/address/mode, and per-lock probe state (same-stage
    /// releases and reserves) for stall computation.
    std::map<std::string, std::tuple<hw::HazardLock *, uint64_t, hw::Access>>
        ProbeReserved;
    std::map<hw::HazardLock *, hw::LockProbe> Probes;
  };

  PipeInstance &pipe(const std::string &Name);
  void elaborateLocks();
  hw::HazardLock *lockFor(PipeInstance &P, const std::string &Mem);

  /// Dequeues squashed threads at the front of the stage's input, then
  /// returns the live input thread, or null if none.
  Thread *stageInput(PipeInstance &P, const Stage &S, unsigned &PredIdx);

  /// Removes and returns the stage's input thread (join stages also pop
  /// the coordination tag).
  Thread dequeueInput(PipeInstance &P, const Stage &S, unsigned PredIdx);

  FireResult walkStage(PipeInstance &P, const Stage &S, Thread &T,
                       WalkCtx &Ctx);
  FireResult walkOp(PipeInstance &P, const ast::Stmt &S, Thread &T,
                    WalkCtx &Ctx);

  /// Picks the successor edge whose guard holds (null if terminal stage).
  const StageEdge *pickSuccessor(PipeInstance &P, const Stage &S,
                                 const Env &Vars);

  void tryFireStage(PipeInstance &P, const Stage &S);
  void killThread(PipeInstance &P, Thread &&T);
  void retireThread(PipeInstance &P, Thread &&T);
  void recordCommit(PipeInstance &P, const std::string &Mem, uint64_t Addr,
                    uint64_t Val, Thread &T);

  EvalHooks hooksFor(PipeInstance &P, Thread &T, WalkCtx &Ctx);

  // Deferred activity applied at end of cycle.
  struct PendingEnq {
    PipeInstance *P;
    bool ToEntry;
    std::pair<unsigned, unsigned> Edge;
    Thread T;
  };
  struct PendingTag {
    PipeInstance *P;
    unsigned Join;
    unsigned Tag;
    uint64_t Tid;
  };
  struct Delivery {
    uint64_t DueCycle;
    std::string Pipe;
    uint64_t Tid;
    std::string Var;
    Bits Value;
  };

  unsigned pendingEnqCount(PipeInstance &P, bool ToEntry,
                           std::pair<unsigned, unsigned> Edge) const;
  void applyEndOfCycle();
  Thread *findThread(PipeInstance &P, uint64_t Tid);

  const CompiledProgram &CP;
  ElabConfig Cfg;
  std::map<std::string, std::unique_ptr<PipeInstance>> Pipes;
  std::map<std::string, hw::ExternModule *> Externs;
  std::vector<PendingEnq> PendingEnqs;
  std::vector<PendingTag> PendingTags;
  std::deque<Delivery> Deliveries;
  std::optional<std::tuple<std::string, std::string, uint64_t>> HaltWatch;
  SystemStats Stats;
  bool Halted = false;
  bool LocksBuilt = false;
  uint64_t NextTid = 1;
  bool FiredThisCycle = false;
};

} // namespace backend
} // namespace pdl

#endif // PDL_BACKEND_SYSTEM_H
